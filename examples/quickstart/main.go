// Quickstart: build a small corpus, train a syntax-enriched model and
// generate a Verilog module with speculative decoding.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/tokenizer"
)

func main() {
	// 1. Build a refined corpus (split → dedup → filter → parse-check).
	examples, stats := dataset.BuildCorpus(dataset.CorpusOptions{Seed: 7, Items: 2000})
	fmt.Println("corpus:", stats)

	// 2. Train a BPE tokenizer and the syntax-enriched ("Ours") model.
	var texts []string
	for _, ex := range examples {
		texts = append(texts, model.FormatPrompt(ex.Prompt)+ex.Code)
	}
	cfg := model.CodeLlamaSim()
	tk := tokenizer.Train(texts, cfg.VocabSize)
	m := model.Train(tk, cfg, model.SchemeOurs, examples)

	// 3. Generate with fragment-aligned speculative decoding.
	dec := core.NewDecoder(m)
	res := dec.Generate(
		"Create an 8-bit up-counter named counter_8bit with clock clk and synchronous reset rst. The count value is output on q.",
		core.Options{Mode: core.ModeOurs},
	)
	fmt.Println(res.Text)
	fmt.Printf("decoded in %d steps (%.2f tokens/step), simulated %.0f ms\n",
		res.Steps, res.MeanAccepted(), res.SimulatedMS)
}
