// Simulate: drive the event-driven Verilog simulator directly — a
// self-checking FSM testbench, the way benchmark functional checks run.
package main

import (
	"fmt"

	"repro/internal/verilog/sim"
)

const design = `
module tb;
  reg clk, rst, din;
  wire seen;
  seq_det_101 dut(.clk(clk), .rst(rst), .din(din), .seen(seen));
  always #5 clk = ~clk;
  reg [2:0] window;
  integer i, errors;
  reg [31:0] r;
  initial begin
    clk = 0; rst = 1; din = 0; errors = 0; window = 3'b000;
    @(posedge clk); #1 rst = 0;
    for (i = 0; i < 40; i = i + 1) begin
      @(negedge clk);
      r = $random;
      din = r[0];
      @(posedge clk); #1;
      window = {window[1:0], din};
      if (seen !== (window == 3'b101)) errors = errors + 1;
    end
    if (errors == 0) $display("TEST PASSED");
    else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule

module seq_det_101(input clk, input rst, input din, output seen);
  reg [1:0] state;
  localparam S0 = 2'd0, S1 = 2'd1, S2 = 2'd2, S3 = 2'd3;
  always @(posedge clk) begin
    if (rst) state <= S0;
    else begin
      case (state)
        S0: state <= din ? S1 : S0;
        S1: state <= din ? S1 : S2;
        S2: state <= din ? S3 : S0;
        S3: state <= din ? S1 : S2;
      endcase
    end
  end
  assign seen = (state == S3);
endmodule
`

func main() {
	res, err := sim.RunSource(design, "tb", sim.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Print(res.Output)
	fmt.Printf("finished at t=%d, passed=%v\n", res.Time, res.Passed())
}
