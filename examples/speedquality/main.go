// Speedquality: the paper's headline comparison in miniature — train
// all three schemes on the same corpus and compare decoding steps,
// simulated speed and output validity on one prompt (Fig. 5 style).
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/tokenizer"
	"repro/internal/verilog"
)

func main() {
	examples, _ := dataset.BuildCorpus(dataset.CorpusOptions{Seed: 3, Items: 2400})
	var texts []string
	for _, ex := range examples {
		texts = append(texts, model.FormatPrompt(ex.Prompt)+ex.Code)
	}
	cfg := model.CodeLlamaSim()
	tk := tokenizer.Train(texts, cfg.VocabSize)

	prompt := `Create a simple Verilog module named "data_register" that takes a 4-bit input data_in and assigns it to a 4-bit output data_out using a non-blocking assignment on the positive edge of the clock clk.`

	fmt.Printf("%-8s %6s %8s %12s %8s\n", "method", "steps", "tokens", "sim speed", "parses")
	for _, scheme := range []model.Scheme{model.SchemeOurs, model.SchemeMedusa, model.SchemeNTP} {
		m := model.Train(tk, cfg, scheme, examples)
		dec := core.NewDecoder(m)
		res := dec.Generate(prompt, core.Options{Mode: core.ModeForScheme(scheme)})
		fmt.Printf("%-8v %6d %8d %9.1f t/s %8v\n",
			scheme, res.Steps, len(res.CleanTokens), res.TokensPerSecond(),
			verilog.Check(res.Text) == nil)
	}
}
