// Example serve: embed the concurrent generation engine in-process —
// train a model, dispatch a micro-batched prompt burst over the worker
// pool, replay it to watch the LRU cache short-circuit, and stream one
// generation fragment-by-fragment.
package main

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/tokenizer"
)

func main() {
	// 1. Train the syntax-enriched model (same recipe as quickstart).
	examples, stats := dataset.BuildCorpus(dataset.CorpusOptions{Seed: 7, Items: 2000})
	fmt.Println("corpus:", stats)
	var texts []string
	for _, ex := range examples {
		texts = append(texts, model.FormatPrompt(ex.Prompt)+ex.Code)
	}
	cfg := model.CodeLlamaSim()
	tk := tokenizer.Train(texts, cfg.VocabSize)
	m := model.Train(tk, cfg, model.SchemeOurs, examples)

	// 2. Start an engine: a worker pool with micro-batching and an LRU
	// over completed generations. vgend serves exactly this over HTTP.
	eng := serve.NewEngine(m, serve.Config{Workers: 4, BatchSize: 8, CacheSize: 64})
	defer eng.Close()

	// 3. Dispatch a burst of eight prompts as one batch.
	prompts := make([]string, 8)
	reqs := make([]serve.Request, 8)
	for i := range reqs {
		prompts[i] = examples[i].Prompt
		reqs[i] = serve.Request{
			Prompt:  prompts[i],
			Options: core.Options{Mode: core.ModeOurs, Temperature: 0.4, Seed: int64(i)},
		}
	}
	for i, resp := range eng.GenerateBatch(context.Background(), reqs) {
		if resp.Err != nil {
			fmt.Printf("[%d] error: %v\n", i, resp.Err)
			continue
		}
		r := resp.Result
		fmt.Printf("[%d] %3d tokens in %2d steps (%.1f tok/s simulated, cached=%v)\n",
			i, len(r.CleanTokens), r.Steps, r.TokensPerSecond(), resp.Cached)
	}

	// 4. Replay the same batch: every generation is an LRU hit.
	for i, resp := range eng.GenerateBatch(context.Background(), reqs) {
		if resp.Err == nil && resp.Cached {
			fmt.Printf("[%d] served from cache\n", i)
		}
	}

	// 5. Stream one generation step-by-step: with fragment-aligned
	// stops every step delivers complete syntactic fragments.
	fmt.Println("\nstreaming data_register:")
	resp, err := eng.Generate(context.Background(), serve.Request{
		Prompt:  "Create a simple Verilog module named data_register that assigns a 4-bit input data_in to a 4-bit output data_out on the positive edge of clk.",
		Options: core.Options{Mode: core.ModeOurs},
		OnStep: func(ev core.StepEvent) {
			fmt.Printf("  step %2d: %2d tokens %q\n", ev.Step, len(ev.Tokens), ev.Text)
		},
	})
	if err != nil {
		fmt.Println("stream error:", err)
		return
	}
	fmt.Printf("done: %d steps, mean accepted %.2f\n", resp.Result.Steps, resp.Result.MeanAccepted())

	// 6. Engine metrics — what vgend exposes on GET /metrics.
	met := eng.Metrics()
	fmt.Printf("\nmetrics: requests=%d cacheHitRate=%.2f tok/s(wall)=%.0f tok/s(sim)=%.1f meanBatch=%.1f\n",
		met.Requests, met.CacheHitRate, met.TokensPerSecWall, met.TokensPerSecSim, met.MeanBatchSize)
}
