// Fragments: the paper's Fig. 3 and Fig. 4 worked examples — extract
// syntactically significant tokens, insert [FRAG] markers, and build
// the syntax-enriched label matrix with the parallel [IGNORE] sweep.
package main

import (
	"fmt"
	"sort"

	"repro/internal/frag"
	"repro/internal/tokenizer"
)

const src = `module data_register (
    input clk,
    input [3:0] data_in,
    output reg [3:0] data_out
);
    always @(posedge clk) begin
        data_out <= data_in;
    end
endmodule
`

func main() {
	// Fig. 3(B): significant tokens = AST keywords + extra keywords.
	set, err := frag.SignificantTokens(src)
	if err != nil {
		panic(err)
	}
	var toks []string
	for t := range set {
		if len(t) > 2 { // show the interesting ones
			toks = append(toks, t)
		}
	}
	sort.Strings(toks)
	fmt.Println("significant tokens:", toks)

	// Fig. 3(C): the [FRAG]-annotated source.
	annotated, _ := frag.InsertFrags(src)
	fmt.Println("\n--- [FRAG]-annotated ---")
	fmt.Println(annotated)

	// Fig. 4: the syntax-enriched label matrix.
	tk := tokenizer.Train([]string{src}, 400)
	ids, _ := frag.EncodeWithFrags(tk, src)
	labels := frag.BuildSyntaxEnrichedLabels(ids, 10)
	fr := frag.IgnoredFraction(labels)
	fmt.Println("--- [IGNORE] fraction per head (grows for later heads) ---")
	for i, f := range fr {
		who := "base"
		if i > 0 {
			who = fmt.Sprintf("head %d", i)
		}
		fmt.Printf("  %-7s %.3f\n", who, f)
	}
}
