# Targets mirror .github/workflows/ci.yml step for step, so a local
# `make ci` reproduces exactly what CI runs.

GO ?= go
# bash for pipefail: a failing benchmark must not hide behind tee.
SHELL := /bin/bash

# Coverage floor for the packages the prefix-trie cache lives in
# (internal/model + internal/serve). Recorded at 89.5% when the trie
# landed; CI fails below the floor so cache/fork coverage cannot rot.
COVER_FLOOR := 87.0
COVER_PKGS := ./internal/model/ ./internal/serve/
# Separate floor for the cluster layer (routing, shedding, breakers,
# hedged dispatch, stealing, autoscaling). Recorded at 89.8% when the
# elasticity tier landed.
CLUSTER_COVER_FLOOR := 80.0

.PHONY: build test race sched-soak golden differential adapt-gate grammar-gate cover fuzz bench loadgate chaos-gate chaos-soak trace-gate fmt fmt-check vet serve ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -shuffle=on ./...

# Continuous-scheduler churn soak: join/leave/preempt cycling, the
# step-wise decode API and the scheduler-mode byte-identity proof under
# the race detector with shuffled order. The explicit -timeout turns a
# wedged scheduler into a fast failure instead of a hung CI runner.
sched-soak:
	$(GO) test -race -shuffle=on -timeout 600s \
		-run 'TestContinuous|TestScheduler|TestStepwise|TestQueueFullBackpressure' \
		-v ./internal/serve/ ./internal/core/

# Byte-identical decode outputs through the drafter/verifier pipeline:
# the legacy modes against fixtures captured from the pre-refactor
# loop, plus the tree strategies pinned the day they landed. Regenerate
# deliberately with: go test -run TestGolden ./internal/core/ -update
golden:
	$(GO) test -run TestGolden -v ./internal/core/

# Byte-identical outputs across session-cache modes ({off, whole-prompt
# LRU, token-prefix trie} × the full strategy matrix, tree strategies
# included), across adapt modes ({controller off, shadow, applied} for
# fully-pinned requests), plus the tree losslessness proof (greedy
# lookup-tree == linear prompt-lookup == NTP, byte for byte): the gates
# that make the prefix cache, tree drafting and the speculation
# controller admissible at all.
differential:
	$(GO) test -run 'TestDifferentialCacheModes|TestDifferentialAdaptModes|TestTreeLosslessGate|TestForkedSessionByteIdentical|TestLookupTreeGreedyLossless' -v ./internal/experiments/ ./internal/core/

# The adaptive-speculation gate: (1) the load-sweep dominance claim —
# across swept load points the self-tuning controller must sit on the
# throughput/p95 frontier of the static (strategy, budget) grid,
# strictly beating some static pair at both extremes, on a
# deterministic simulation over measured decode profiles; (2) the
# adapt-mode differential (shadow/on byte-identical to off for pinned
# requests); (3) continuous-scheduler churn with the controller
# applied, under the race detector with shuffled order.
adapt-gate:
	$(GO) test -run 'TestLoadSweepControllerDominates|TestLoadSweepDeterministic|TestDifferentialAdaptModes' -v -timeout 600s ./internal/experiments/
	$(GO) test -race -shuffle=on -timeout 600s -run 'TestAdapt|TestContinuousAdaptChurn|TestParseAdaptModeTable' -v ./internal/serve/
	$(GO) test -race -shuffle=on -timeout 600s ./internal/core/spec/adapt/

# The grammar-constrained-drafting gate: (1) the accepted-length claim
# — grammar-pruned trees must beat plain ours-tree mean accepted length
# on the bench prompt schedule, with the oracle demonstrably engaged;
# (2) the losslessness proof — greedy grammar-lookup-tree byte streams
# equal NTP's, and grammar decodes are deterministic with stats; (3)
# the sim-pass-rate floor — testbench simulation pass rates of the
# grammar strategies never drop below their ungated counterparts'.
# (The cache-mode/adapt-mode differentials already cover the grammar
# strategies via the strategy matrix in the differential target.)
grammar-gate:
	$(GO) test -run 'TestGrammarBenchGrammarBeatsOursTree|TestSimBenchPassRateFloor' -v -timeout 600s ./internal/experiments/
	$(GO) test -run 'TestGrammarLookupTreeGreedyLossless|TestGrammarDecodeStatsAndDeterminism|TestGrammarAcceptsAtLeastOursTree' -v ./internal/core/
	$(GO) test -v ./internal/core/spec/grammar/

# The latency-under-load gate: short-request p95 with one long decode
# in flight must stay within 1.5x of unloaded under the continuous
# scheduler, while the micro-batch baseline must fail the same bound.
loadgate:
	$(GO) test -run TestLoadBenchLatencyGate -v -timeout 600s ./internal/experiments/

# The chaos recovery gate: with a replica killed (and, separately,
# wedged) mid-bench, the fleet must answer every request within
# protocol — zero client-visible errors beyond documented shedding —
# and after healing, short-request p99 must recover to within 1.5x of
# an unfaulted run. Fault injection is deterministic
# (serve.Config.StepFault wired to the experiments fault plane).
chaos-gate:
	$(GO) test -run 'TestChaosRecoveryGate|TestFaultPlaneKinds' -v -timeout 600s ./internal/experiments/

# Fault-injection churn under the race detector: the fault plane cycles
# kill/wedge/slow/error-rate across the replicas of a hedging, stealing,
# breaker-guarded fleet while clients hammer it, alongside the
# elasticity unit tier (breakers, hedges, stealing, autoscaling, drain,
# rolling swap). The explicit -timeout turns a wedged dispatch into a
# fast failure instead of a hung CI runner.
chaos-soak:
	$(GO) test -race -shuffle=on -timeout 600s \
		-run 'TestChaosChurnSoak|TestBreaker|TestHedge|TestSteal|TestAutoscale|TestDrain|TestRollingSwap|TestSwapUnknownModelRejected' \
		-v ./internal/experiments/ ./internal/cluster/

# The tracing gate: decode throughput with the span layer live must
# stay within 5% of tracing-off (tracing defaults on in vgend, so this
# is what keeps the default honest), tracing must not change a single
# generated byte, the span-tree shape and debug surface run under the
# race detector, and evalbench regenerates BENCH_10.json (the on/off
# throughput rows) for the CI artifact.
trace-gate:
	$(GO) test -run 'TestTraceOverheadGate|TestTraceByteIdentity' -v -timeout 600s ./internal/experiments/
	$(GO) test -race -timeout 600s \
		-run 'TestSpanTreeShape|TestRequestIDEchoedOnErrorPaths|TestDebugSurfaceHedgedWedgedPrimary|TestPhaseMetricsExposed' \
		-v ./internal/serve/ ./internal/cluster/
	$(GO) test -race -timeout 600s ./internal/trace/ ./internal/promtest/
	set -o pipefail; $(GO) run ./cmd/evalbench -quick -exp trace -json BENCH_10.json | tee trace_gate_output.txt

# Coverage gate over the prefix-cache packages: fails if total coverage
# of internal/model + internal/serve drops below COVER_FLOOR — then the
# same for the cluster layer against CLUSTER_COVER_FLOOR.
cover:
	$(GO) test -coverprofile=cover.out -covermode=atomic $(COVER_PKGS)
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	echo "model+serve coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
	{ echo "coverage below floor" >&2; exit 1; }
	$(GO) test -coverprofile=cover_cluster.out -covermode=atomic ./internal/cluster/
	@total=$$($(GO) tool cover -func=cover_cluster.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	echo "cluster coverage: $$total% (floor $(CLUSTER_COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(CLUSTER_COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
	{ echo "cluster coverage below floor" >&2; exit 1; }

# Native fuzzing smoke: the trie lookup/insert invariant, the Verilog
# lexer, the full parser (no-panic, *SyntaxError contract, and the
# prefix-soundness invariant the grammar oracle rests on) and the
# draft-tree arena (insert/walk/longest-accepted-path invariants),
# each for a short budget on top of the committed seed corpora
# (testdata/fuzz/). Run longer locally with -fuzztime.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzTrieLookupInsert -fuzztime $(FUZZTIME) ./internal/model/
	$(GO) test -run '^$$' -fuzz FuzzLexer -fuzztime $(FUZZTIME) ./internal/verilog/
	$(GO) test -run '^$$' -fuzz FuzzParser -fuzztime $(FUZZTIME) ./internal/verilog/
	$(GO) test -run '^$$' -fuzz FuzzDraftTree -fuzztime $(FUZZTIME) ./internal/core/spec/tree/

# Engine wall-clock throughput + strategy matrix + tree drafting +
# fleet routing + prefix-cache + scheduler-load smoke; CI uploads
# bench_output.txt as an artifact. Run `go test -bench=. ./...` for the
# full paper harness. The evalbench lines regenerate BENCH_7.json (the
# adaptive load sweep's structured rows) and BENCH_8.json (the grammar
# bench's accepted-length comparison plus the sim-pass-rate tier) —
# both uploaded by CI.
bench:
	set -o pipefail; $(GO) test -run '^$$' -bench='BenchmarkEngine|BenchmarkStrategyMatrix|BenchmarkTreeDraft|BenchmarkFleetRouting|BenchmarkPrefixBench|BenchmarkLoadBench' -benchtime=1x ./... | tee bench_output.txt
	set -o pipefail; $(GO) run ./cmd/evalbench -quick -exp sweep -json BENCH_7.json | tee -a bench_output.txt
	set -o pipefail; $(GO) run ./cmd/evalbench -quick -exp grammar,sim -json BENCH_8.json | tee -a bench_output.txt

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

vet:
	$(GO) vet ./...

# Train and serve the generation daemon on :8080.
serve:
	$(GO) run ./cmd/vgend

# Train once, serve a 4-replica fleet with the full shedding chain.
serve-fleet:
	$(GO) run ./cmd/vgend -replicas 4 -shed-policy deadline,priority,budget

ci: build fmt-check vet race sched-soak golden differential adapt-gate grammar-gate cover fuzz loadgate chaos-gate chaos-soak trace-gate bench
