# Targets mirror .github/workflows/ci.yml step for step, so a local
# `make ci` reproduces exactly what CI runs.

GO ?= go
# bash for pipefail: a failing benchmark must not hide behind tee.
SHELL := /bin/bash

.PHONY: build test race golden bench fmt fmt-check vet serve ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -shuffle=on ./...

# Byte-identical legacy-mode outputs through the drafter/verifier
# pipeline (fixtures captured from the pre-refactor loop). Regenerate
# deliberately with: go test -run TestGolden ./internal/core/ -update
golden:
	$(GO) test -run TestGolden -v ./internal/core/

# Engine wall-clock throughput + strategy matrix + fleet routing
# smoke; CI uploads bench_output.txt as an artifact. Run `go test
# -bench=. ./...` for the full paper harness.
bench:
	set -o pipefail; $(GO) test -run '^$$' -bench='BenchmarkEngine|BenchmarkStrategyMatrix|BenchmarkFleetRouting' -benchtime=1x ./... | tee bench_output.txt

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

vet:
	$(GO) vet ./...

# Train and serve the generation daemon on :8080.
serve:
	$(GO) run ./cmd/vgend

# Train once, serve a 4-replica fleet with the full shedding chain.
serve-fleet:
	$(GO) run ./cmd/vgend -replicas 4 -shed-policy deadline,priority,budget

ci: build fmt-check vet race golden bench
