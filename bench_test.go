// Package repro's root benchmarks regenerate every table and figure of
// the paper's evaluation section (go test -bench=. -benchmem) and the
// ablation studies DESIGN.md calls out. Each benchmark reports the
// reproduced quantities through b.ReportMetric, so `bench_output.txt`
// doubles as a results record:
//
//	BenchmarkTable1_*     — quality grid cells (pass@k, Pass Rate)
//	BenchmarkTable2_*     — simulated tokens/s + speedup per method
//	BenchmarkStrategyMatrix — tokens/s per decoding strategy (NTP,
//	                        Medusa, Ours, PromptLookup) in one harness
//	BenchmarkFig1         — speed vs pass@10 scatter points
//	BenchmarkFig5         — decoding steps on the data_register example
//	BenchmarkFig6         — the CodeT5p pass@5 slice
//	BenchmarkAblation*    — integrity check / label masking / heads / ε-δ
//	BenchmarkEngine*      — real wall-clock throughput of the decoder
//
// Benchmarks use a reduced-scale setup (see experiments.Quick and the
// constants below) so the full suite completes in minutes; cmd/evalbench
// runs the full-scale harness.
package main

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/tokenizer"
)

// benchItems is the corpus scale for in-repo benchmarks.
const benchItems = 3400

var (
	setupOnce sync.Once
	benchEx   []model.Example
	benchTk   *tokenizer.Tokenizer
	benchTk5p *tokenizer.Tokenizer
	models    map[string]*model.Model
)

func setup(b *testing.B) {
	b.Helper()
	setupOnce.Do(func() {
		benchEx, _ = dataset.BuildCorpus(dataset.CorpusOptions{Seed: 1, Items: benchItems})
		var texts []string
		limit := len(benchEx)
		if limit > 1500 {
			limit = 1500
		}
		for _, ex := range benchEx[:limit] {
			texts = append(texts, model.FormatPrompt(ex.Prompt)+ex.Code)
		}
		benchTk = tokenizer.Train(texts, model.CodeLlamaSim().VocabSize)
		benchTk5p = tokenizer.Train(texts, model.CodeT5pSim().VocabSize)
		models = map[string]*model.Model{}
		for _, scheme := range []model.Scheme{model.SchemeOurs, model.SchemeOursNoMask, model.SchemeMedusa, model.SchemeNTP} {
			models["CodeLlama/"+scheme.String()] = model.Train(benchTk, model.CodeLlamaSim(), scheme, benchEx)
		}
		for _, scheme := range []model.Scheme{model.SchemeOurs, model.SchemeMedusa, model.SchemeNTP} {
			models["CodeT5p/"+scheme.String()] = model.Train(benchTk5p, model.CodeT5pSim(), scheme, benchEx)
		}
	})
}

// evalQuality runs the reduced Table I protocol for one model/suite.
func evalQuality(m *model.Model, probs []bench.Problem, samples int) (fn, syn []metrics.PromptResult) {
	dec := core.NewDecoder(m)
	mode := core.ModeForScheme(m.Scheme())
	for pi, p := range probs {
		cF, cS := 0, 0
		for s := 0; s < samples; s++ {
			temp := 0.2
			if s%2 == 1 {
				temp = 0.6
			}
			res := dec.Generate(p.Prompt, core.Options{Mode: mode, Temperature: temp, Seed: int64(pi*100 + s)})
			if bench.CheckSyntax(res.Text) {
				cS++
				if bench.CheckFunction(res.Text, p) {
					cF++
				}
			}
		}
		fn = append(fn, metrics.PromptResult{N: samples, C: cF})
		syn = append(syn, metrics.PromptResult{N: samples, C: cS})
	}
	return fn, syn
}

func benchQualityCell(b *testing.B, modelKey, suite string) {
	setup(b)
	m := models[modelKey]
	probs := bench.RTLLM()
	if suite == "VGen" {
		probs = bench.VGen()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn, syn := evalQuality(m, probs, 4)
		b.ReportMetric(100*metrics.MeanPassAtK(fn, 1), "funcPass@1_%")
		b.ReportMetric(100*metrics.MeanPassAtK(fn, 4), "funcPass@4_%")
		b.ReportMetric(100*metrics.PassRate(fn), "funcRate_%")
		b.ReportMetric(100*metrics.MeanPassAtK(syn, 1), "synPass@1_%")
		b.ReportMetric(100*metrics.PassRate(syn), "synRate_%")
	}
}

// --- Table I (one benchmark per model × method × suite cell group) ---

func BenchmarkTable1_CodeLlama_Ours_RTLLM(b *testing.B) {
	benchQualityCell(b, "CodeLlama/Ours", "RTLLM")
}
func BenchmarkTable1_CodeLlama_Medusa_RTLLM(b *testing.B) {
	benchQualityCell(b, "CodeLlama/Medusa", "RTLLM")
}
func BenchmarkTable1_CodeLlama_NTP_RTLLM(b *testing.B) { benchQualityCell(b, "CodeLlama/NTP", "RTLLM") }
func BenchmarkTable1_CodeLlama_Ours_VGen(b *testing.B) { benchQualityCell(b, "CodeLlama/Ours", "VGen") }
func BenchmarkTable1_CodeLlama_Medusa_VGen(b *testing.B) {
	benchQualityCell(b, "CodeLlama/Medusa", "VGen")
}
func BenchmarkTable1_CodeLlama_NTP_VGen(b *testing.B) { benchQualityCell(b, "CodeLlama/NTP", "VGen") }
func BenchmarkTable1_CodeT5p_Ours_RTLLM(b *testing.B) { benchQualityCell(b, "CodeT5p/Ours", "RTLLM") }
func BenchmarkTable1_CodeT5p_Medusa_RTLLM(b *testing.B) {
	benchQualityCell(b, "CodeT5p/Medusa", "RTLLM")
}
func BenchmarkTable1_CodeT5p_NTP_RTLLM(b *testing.B)   { benchQualityCell(b, "CodeT5p/NTP", "RTLLM") }
func BenchmarkTable1_CodeT5p_Ours_VGen(b *testing.B)   { benchQualityCell(b, "CodeT5p/Ours", "VGen") }
func BenchmarkTable1_CodeT5p_Medusa_VGen(b *testing.B) { benchQualityCell(b, "CodeT5p/Medusa", "VGen") }
func BenchmarkTable1_CodeT5p_NTP_VGen(b *testing.B)    { benchQualityCell(b, "CodeT5p/NTP", "VGen") }

// --- Table II ---

func speedOf(m *model.Model, prompts []string, opts core.Options) float64 {
	dec := core.NewDecoder(m)
	var tokens []int
	var secs []float64
	for i, prompt := range prompts {
		greedy := dec.Generate(prompt, opts)
		sampled := dec.Generate(prompt, core.Options{Mode: opts.Mode, Strategy: opts.Strategy, Temperature: 0.8, Seed: int64(i), DisableIntegrity: opts.DisableIntegrity, TopK: opts.TopK, Epsilon: opts.Epsilon, Delta: opts.Delta})
		tokens = append(tokens, len(greedy.CleanTokens), len(sampled.CleanTokens))
		secs = append(secs, greedy.SimulatedMS/1000, sampled.SimulatedMS/1000)
	}
	return metrics.Speed(tokens, secs)
}

func speedPrompts() []string {
	var prompts []string
	for _, p := range bench.All() {
		prompts = append(prompts, p.Prompt)
	}
	return prompts
}

func benchSpeed(b *testing.B, modelName string) {
	setup(b)
	prompts := speedPrompts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ntp := speedOf(models[modelName+"/NTP"], prompts, core.Options{Mode: core.ModeNTP})
		medusa := speedOf(models[modelName+"/Medusa"], prompts, core.Options{Mode: core.ModeMedusa})
		ours := speedOf(models[modelName+"/Ours"], prompts, core.Options{Mode: core.ModeOurs})
		b.ReportMetric(ntp, "NTP_tok/s")
		b.ReportMetric(medusa, "Medusa_tok/s")
		b.ReportMetric(ours, "Ours_tok/s")
		b.ReportMetric(metrics.Speedup(medusa, ntp), "Medusa_speedup")
		b.ReportMetric(metrics.Speedup(ours, ntp), "Ours_speedup")
	}
}

func BenchmarkTable2_CodeLlama(b *testing.B) { benchSpeed(b, "CodeLlama") }
func BenchmarkTable2_CodeT5p(b *testing.B)   { benchSpeed(b, "CodeT5p") }

// --- Strategy matrix: every decoding strategy under one harness ---

// BenchmarkStrategyMatrix compares the canned drafter/verifier
// pairings — the legacy three plus self-speculative prompt lookup on
// the NTP backbone — reporting simulated tokens/s per strategy (CI
// smoke target for the pluggable pipeline).
func BenchmarkStrategyMatrix(b *testing.B) {
	setup(b)
	prompts := speedPrompts()
	// ntp leads so every later row can report its speedup against it.
	matrix := []struct{ scheme, strategy string }{
		{"NTP", "ntp"},
		{"Ours", "ours"},
		{"Medusa", "medusa"},
		{"NTP", "prompt-lookup"},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var ntp float64
		for _, entry := range matrix {
			m := models["CodeLlama/"+entry.scheme]
			s := speedOf(m, prompts, core.Options{Strategy: entry.strategy})
			label := (core.Options{Strategy: entry.strategy}).StrategyLabel()
			b.ReportMetric(s, label+"_tok/s")
			if entry.strategy == "ntp" {
				ntp = s
			}
			if ntp > 0 {
				b.ReportMetric(metrics.Speedup(s, ntp), label+"_speedup")
			}
		}
	}
}

// BenchmarkTreeDraft compares every tree-drafting strategy against its
// linear counterpart on the same trained model — the quantity token-
// tree drafting exists to raise is mean accepted length, reported per
// side together with draft nodes per step and node-budget utilization
// (CI smoke target for the tree subsystem; experiments.RunTreeBench is
// the full harness).
func BenchmarkTreeDraft(b *testing.B) {
	setup(b)
	prompts := speedPrompts()
	pairs := []struct{ scheme, linear, tree string }{
		{"Medusa", "medusa", "medusa-tree"},
		{"Ours", "ours", "ours-tree"},
		{"NTP", "prompt-lookup", "lookup-tree"},
	}
	side := func(m *model.Model, strategy string) (accepted, nodesPerStep, util float64) {
		dec := core.NewDecoder(m)
		var toks, steps, nodes, budget int
		for pi, prompt := range prompts {
			for _, opts := range []core.Options{
				{Strategy: strategy},
				{Strategy: strategy, Temperature: 0.8, Seed: int64(pi)},
			} {
				res := dec.Generate(prompt, opts)
				toks += len(res.Tokens)
				steps += res.Steps
				nodes += res.TreeNodes
				budget += res.TreeBudget
			}
		}
		if steps > 0 {
			accepted = float64(toks) / float64(steps)
			nodesPerStep = float64(nodes) / float64(steps)
		}
		if budget > 0 {
			util = float64(nodes) / float64(budget)
		}
		return accepted, nodesPerStep, util
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pairs {
			m := models["CodeLlama/"+p.scheme]
			linAccepted, _, _ := side(m, p.linear)
			treeAccepted, nodesPerStep, util := side(m, p.tree)
			label := (core.Options{Strategy: p.tree}).StrategyLabel()
			b.ReportMetric(linAccepted, label+"_linear_accepted")
			b.ReportMetric(treeAccepted, label+"_tree_accepted")
			b.ReportMetric(nodesPerStep, label+"_nodes/step")
			b.ReportMetric(util, label+"_budget_util")
		}
	}
}

// --- Fig. 1: speed vs pass@10(RTLLM) scatter ---

func BenchmarkFig1(b *testing.B) {
	setup(b)
	prompts := speedPrompts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, scheme := range []model.Scheme{model.SchemeOurs, model.SchemeMedusa, model.SchemeNTP} {
			m := models["CodeLlama/"+scheme.String()]
			speed := speedOf(m, prompts[:20], core.Options{Mode: core.ModeForScheme(scheme)})
			fn, _ := evalQuality(m, bench.RTLLM(), 4)
			b.ReportMetric(speed, scheme.String()+"_tok/s")
			b.ReportMetric(100*metrics.MeanPassAtK(fn, 4), scheme.String()+"_funcPass@4_%")
		}
	}
}

// --- Fig. 5: decoding steps on the worked example ---

func BenchmarkFig5(b *testing.B) {
	setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, scheme := range []model.Scheme{model.SchemeOurs, model.SchemeMedusa, model.SchemeNTP} {
			m := models["CodeLlama/"+scheme.String()]
			dec := core.NewDecoder(m)
			res := dec.Generate(experiments.Fig5Prompt, core.Options{Mode: core.ModeForScheme(scheme)})
			b.ReportMetric(float64(res.Steps), scheme.String()+"_steps")
		}
	}
}

// --- Fig. 6: CodeT5p pass@5 slice ---

func BenchmarkFig6(b *testing.B) {
	setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, scheme := range []model.Scheme{model.SchemeOurs, model.SchemeMedusa, model.SchemeNTP} {
			m := models["CodeT5p/"+scheme.String()]
			for _, suite := range []struct {
				name  string
				probs []bench.Problem
			}{{"RTLLM", bench.RTLLM()}, {"VGen", bench.VGen()}} {
				fn, syn := evalQuality(m, suite.probs, 4)
				b.ReportMetric(100*metrics.MeanPassAtK(fn, 4), scheme.String()+"_"+suite.name+"_func@4_%")
				b.ReportMetric(100*metrics.MeanPassAtK(syn, 4), scheme.String()+"_"+suite.name+"_syn@4_%")
			}
		}
	}
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationIntegrity isolates the [FRAG] integrity check:
// ModeOurs with and without truncation.
func BenchmarkAblationIntegrity(b *testing.B) {
	setup(b)
	m := models["CodeLlama/Ours"]
	prompts := speedPrompts()[:20]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		with := speedOf(m, prompts, core.Options{Mode: core.ModeOurs})
		without := speedOf(m, prompts, core.Options{Mode: core.ModeOurs, DisableIntegrity: true})
		fnW, synW := evalQuality(m, bench.RTLLM(), 2)
		b.ReportMetric(with, "with_tok/s")
		b.ReportMetric(without, "without_tok/s")
		b.ReportMetric(100*metrics.PassRate(fnW), "with_funcRate_%")
		b.ReportMetric(100*metrics.PassRate(synW), "with_synRate_%")
	}
}

// BenchmarkAblationLabels isolates the [IGNORE] masking: the Ours-nomask
// scheme trains on [FRAG] sequences with vanilla labels.
func BenchmarkAblationLabels(b *testing.B) {
	setup(b)
	prompts := speedPrompts()[:20]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		masked := speedOf(models["CodeLlama/Ours"], prompts, core.Options{Mode: core.ModeOurs})
		nomask := speedOf(models["CodeLlama/Ours-nomask"], prompts, core.Options{Mode: core.ModeOurs})
		b.ReportMetric(masked, "masked_tok/s")
		b.ReportMetric(nomask, "nomask_tok/s")
	}
}

// BenchmarkAblationHeads sweeps the head count (paper: the label scheme
// "increases the number of effective heads").
func BenchmarkAblationHeads(b *testing.B) {
	setup(b)
	prompts := speedPrompts()[:12]
	for _, heads := range []int{2, 4, 6, 10} {
		b.Run(fmt.Sprintf("heads=%d", heads), func(b *testing.B) {
			cfg := model.CodeLlamaSim()
			cfg.NumHeads = heads
			m := model.Train(benchTk, cfg, model.SchemeOurs, benchEx)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.ReportMetric(speedOf(m, prompts, core.Options{Mode: core.ModeOurs}), "tok/s")
			}
		})
	}
}

// BenchmarkAblationAcceptance sweeps the typical-acceptance thresholds.
func BenchmarkAblationAcceptance(b *testing.B) {
	setup(b)
	m := models["CodeLlama/Ours"]
	prompts := speedPrompts()[:12]
	for _, cfg := range []struct{ eps, delta float64 }{{0.1, 0.4}, {0.3, 1.2}, {0.6, 2.4}} {
		b.Run(fmt.Sprintf("eps=%.1f_delta=%.1f", cfg.eps, cfg.delta), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := speedOf(m, prompts, core.Options{Mode: core.ModeOurs, Epsilon: cfg.eps, Delta: cfg.delta})
				b.ReportMetric(s, "tok/s")
			}
		})
	}
}

// --- Fleet routing: measured wall-clock load scenario per routing
// policy (CI smoke target for the cluster layer). ---

// BenchmarkFleetRouting drives the shared-prefix workload at a
// 4-replica fleet once per routing policy and reports the fleet
// cache-hit rate, client-side p95 latency and requests/s — the table
// where prefix-affinity must beat random routing on cache hits.
func BenchmarkFleetRouting(b *testing.B) {
	setup(b)
	m := models["CodeLlama/Ours"]
	prompts := speedPrompts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.FleetBench(m, prompts, experiments.FleetBenchConfig{
			Replicas: 4, Clients: 6, Rounds: 8, Prompts: 6,
			Routers: []string{"prefix-affinity", "least-loaded", "round-robin", "random"},
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			b.ReportMetric(row.CacheHitRate, row.Router+"_hit_rate")
			b.ReportMetric(row.P95WallMS, row.Router+"_p95_ms")
			b.ReportMetric(row.ThroughputRPS, row.Router+"_rps")
		}
	}
}

// BenchmarkPrefixBench lands the prefix-cache comparison in the bench
// artifact: prompt tokens recomputed per cache mode on the shared-stem
// workload, plus the trie's partial-hit count. The trie row's
// recomputed column sitting far below the whole-prompt row's is the
// headline of the token-prefix trie cache.
func BenchmarkPrefixBench(b *testing.B) {
	setup(b)
	m := models["CodeLlama/Ours"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.PrefixBench(m, experiments.PrefixBenchConfig{})
		for _, row := range rows {
			b.ReportMetric(float64(row.TokensRecomputed), row.Mode+"_recomputed_toks")
			b.ReportMetric(row.HitRate, row.Mode+"_hit_rate")
			if row.Mode == "trie" {
				b.ReportMetric(float64(row.PartialHits), "trie_partial_hits")
			}
		}
	}
}

// --- Engine wall-clock benchmarks (real CPU throughput, not the cost
// model): tokens generated per real second of decoder work. ---

func benchEngine(b *testing.B, modelKey string, mode core.Mode) {
	setup(b)
	m := models[modelKey]
	dec := core.NewDecoder(m)
	prompt := bench.RTLLM()[12].Prompt
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		res := dec.Generate(prompt, core.Options{Mode: mode, Temperature: 0.4, Seed: int64(i)})
		total += len(res.Tokens)
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "wallclock_tok/s")
}

func BenchmarkEngineOurs(b *testing.B)   { benchEngine(b, "CodeLlama/Ours", core.ModeOurs) }
func BenchmarkEngineMedusa(b *testing.B) { benchEngine(b, "CodeLlama/Medusa", core.ModeMedusa) }
func BenchmarkEngineNTP(b *testing.B)    { benchEngine(b, "CodeLlama/NTP", core.ModeNTP) }

// BenchmarkSimulator measures the event-driven simulator on a
// register-file testbench (the functional-evaluation hot path).
func BenchmarkSimulator(b *testing.B) {
	p := bench.RTLLM()[24] // regfile_16x8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !bench.CheckFunction(p.Ref, p) {
			b.Fatal("reference failed")
		}
	}
}

// BenchmarkParser measures the front-end on the full benchmark corpus.
func BenchmarkParser(b *testing.B) {
	var srcs []string
	for _, p := range bench.All() {
		srcs = append(srcs, p.Ref, p.Testbench)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, src := range srcs {
			if !bench.CheckSyntax(src) {
				b.Fatal("reference failed to parse")
			}
		}
	}
}
