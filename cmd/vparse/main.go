// Command vparse syntax-checks Verilog files with the project's parser
// (the Stagira substitute) and optionally dumps the significant-token
// set and the [FRAG]-annotated source used by the syntax-enriched
// training scheme.
//
// Usage: vparse [-frags] [-tokens] file.v...
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/frag"
	"repro/internal/verilog"
)

func main() {
	showFrags := flag.Bool("frags", false, "print the [FRAG]-annotated source")
	showTokens := flag.Bool("tokens", false, "print the significant-token set")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: vparse [-frags] [-tokens] file.v...")
		os.Exit(2)
	}
	exit := 0
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			exit = 1
			continue
		}
		src := string(data)
		if err := verilog.Check(src); err != nil {
			fmt.Printf("%s: FAIL: %v\n", path, err)
			exit = 1
			continue
		}
		fmt.Printf("%s: OK\n", path)
		if *showTokens {
			set, err := frag.SignificantTokens(src)
			if err == nil {
				var toks []string
				for t := range set {
					toks = append(toks, t)
				}
				sort.Strings(toks)
				fmt.Printf("  significant tokens (%d): %v\n", len(toks), toks)
			}
		}
		if *showFrags {
			annotated, err := frag.InsertFrags(src)
			if err == nil {
				fmt.Println(annotated)
			}
		}
	}
	os.Exit(exit)
}
