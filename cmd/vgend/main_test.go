package main

import (
	"testing"

	"repro/internal/serve"
)

// TestParsePrefixCache pins the flag's three spellings: mode names,
// legacy entry counts (whole-prompt capacity, negative disables) and
// rejection of typos.
func TestParsePrefixCache(t *testing.T) {
	cases := []struct {
		in   string
		mode string
		size int
		err  bool
	}{
		{in: "trie", mode: serve.PrefixCacheTrie},
		{in: "whole", mode: serve.PrefixCacheWhole},
		{in: "off", mode: serve.PrefixCacheOff, size: -1},
		{in: "none", mode: serve.PrefixCacheOff, size: -1},
		{in: "128", mode: serve.PrefixCacheWhole, size: 128},
		{in: "-1", mode: serve.PrefixCacheOff, size: -1},
		{in: "0", mode: serve.PrefixCacheWhole, size: 0},
		{in: "lru", err: true},
		{in: "trie:64", err: true},
	}
	for _, c := range cases {
		mode, size, err := parsePrefixCache(c.in)
		if c.err {
			if err == nil {
				t.Errorf("%q: expected an error, got mode=%q size=%d", c.in, mode, size)
			}
			continue
		}
		if err != nil {
			t.Errorf("%q: %v", c.in, err)
			continue
		}
		if mode != c.mode || size != c.size {
			t.Errorf("%q: got (%q, %d), want (%q, %d)", c.in, mode, size, c.mode, c.size)
		}
	}
}
