// Command vgend is the Verilog generation daemon: it trains the
// simulated speculative-decoding model once at startup, then serves
// generations over HTTP through the internal/serve engine (worker
// pool, micro-batching, LRU cache).
//
// Endpoints:
//
//	POST /v1/generate  — {"prompt": "..."} or {"prompts": [...]};
//	                     {"strategy": "ntp"|"medusa"|"ours"|
//	                     "prompt-lookup"} routes the request to any
//	                     registered decoding strategy (default: the
//	                     legacy "mode" field, default "ours");
//	                     {"stream": true} switches to NDJSON streaming
//	                     of decoding steps (single prompt only).
//	GET  /healthz      — liveness plus model/pool identity.
//	GET  /metrics      — engine counters: requests, cache hit rate,
//	                     single-flight dedup hits, prefix-cache reuse,
//	                     tokens/s, mean accepted length per strategy.
//	                     JSON by default; ?format=prometheus (or a
//	                     Prometheus Accept header) selects the text
//	                     exposition format.
//
// Identical concurrent requests (same prompt, options and seed) are
// collapsed onto one decode by the engine's single-flight table, and
// prompt conditioning state is shared across requests through the
// prefix cache.
//
// Usage: vgend [-addr :8080] [-model codellama|codet5p] [-scheme ours]
// [-items 3400] [-workers N] [-queue N] [-batch N] [-cache N]
// [-prefix-cache N] [-no-dedup]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/tokenizer"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	modelName := flag.String("model", "codellama", "backbone: codellama or codet5p")
	schemeName := flag.String("scheme", "ours", "training scheme: ours, medusa or ntp")
	items := flag.Int("items", 3400, "corpus items to train on")
	seed := flag.Int64("seed", 1, "corpus/training seed")
	workers := flag.Int("workers", 0, "decoder workers (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 256, "request queue bound")
	batch := flag.Int("batch", 8, "micro-batch size")
	window := flag.Duration("batch-window", 2*time.Millisecond, "micro-batch linger")
	cache := flag.Int("cache", 512, "LRU cache entries (negative disables)")
	prefixCache := flag.Int("prefix-cache", 256, "prompt-session cache entries (negative disables)")
	noDedup := flag.Bool("no-dedup", false, "disable single-flight dedup of identical in-flight requests")
	flag.Parse()

	var cfg model.Config
	switch *modelName {
	case "codellama":
		cfg = model.CodeLlamaSim()
	case "codet5p":
		cfg = model.CodeT5pSim()
	default:
		fmt.Fprintf(os.Stderr, "unknown model %q (want codellama or codet5p)\n", *modelName)
		os.Exit(2)
	}
	var scheme model.Scheme
	switch *schemeName {
	case "ours":
		scheme = model.SchemeOurs
	case "medusa":
		scheme = model.SchemeMedusa
	case "ntp":
		scheme = model.SchemeNTP
	default:
		fmt.Fprintf(os.Stderr, "unknown scheme %q (want ours, medusa or ntp)\n", *schemeName)
		os.Exit(2)
	}

	fmt.Fprintf(os.Stderr, "# building corpus (%d items) and training %s/%v...\n", *items, cfg.Name, scheme)
	start := time.Now()
	examples, stats := dataset.BuildCorpus(dataset.CorpusOptions{Seed: *seed, Items: *items})
	var corpus []string
	limit := min(len(examples), 1500)
	for _, ex := range examples[:limit] {
		corpus = append(corpus, model.FormatPrompt(ex.Prompt)+ex.Code)
	}
	tk := tokenizer.Train(corpus, cfg.VocabSize)
	m := model.Train(tk, cfg, scheme, examples)
	fmt.Fprintf(os.Stderr, "# %s\n# trained in %s\n", stats, time.Since(start).Round(time.Millisecond))

	eng := serve.NewEngine(m, serve.Config{
		Workers:         *workers,
		QueueSize:       *queue,
		BatchSize:       *batch,
		BatchWindow:     *window,
		CacheSize:       *cache,
		PrefixCacheSize: *prefixCache,
		NoDedup:         *noDedup,
	})
	srv := &http.Server{Addr: *addr, Handler: serve.NewServer(eng).Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		fmt.Fprintln(os.Stderr, "# shutting down...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()

	fmt.Fprintf(os.Stderr, "# vgend serving %s/%v on %s (%d workers)\n", cfg.Name, scheme, *addr, eng.Workers())
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "vgend: %v\n", err)
		os.Exit(1)
	}
	// ListenAndServe returned ErrServerClosed, so Shutdown is in
	// flight; wait for it to finish draining handlers before tearing
	// the engine down.
	<-shutdownDone
	eng.Close()
}
