// Command vgend is the Verilog generation daemon: it trains the
// simulated speculative-decoding model(s) once at startup, then serves
// generations over HTTP — through a single internal/serve engine, or
// in fleet mode through an internal/cluster fleet of engine replicas
// with prefix-affinity routing and pluggable load shedding.
//
// Endpoints:
//
//	POST /v1/generate  — {"prompt": "..."} or {"prompts": [...]};
//	                     {"strategy": "ntp"|"medusa"|"ours"|
//	                     "prompt-lookup"} routes the request to any
//	                     registered decoding strategy (default: the
//	                     legacy "mode" field, default "ours");
//	                     {"model": "codellama"} targets one backbone in
//	                     fleet mode; {"priority": "high"|"normal"|
//	                     "low"} and {"client": "..."} feed the
//	                     load-shedding policies; {"stream": true}
//	                     switches to NDJSON streaming (single prompt).
//	GET  /healthz      — liveness plus model/pool (or fleet) identity.
//	GET  /metrics      — engine counters (fleet mode adds per-replica
//	                     detail, shed and routing counters). JSON by
//	                     default; ?format=prometheus (or a Prometheus
//	                     Accept header) selects the text exposition.
//	                     Tracing mode adds vgend_phase_seconds_total.
//	GET  /debug/requests — flight recorder: the last traces plus the
//	                     always-retained slowest ones; ?id= returns one
//	                     request's full span tree (-trace mode).
//	GET  /debug/trace  — one recorded trace as a raw JSON snapshot.
//	GET  /debug/pprof/ — net/http/pprof profiles (behind -pprof).
//
// Every response carries an X-Request-ID header (echoing the caller's,
// or minted); in tracing mode that ID keys the request's trace in the
// flight recorder, so a slow or failed request is debuggable from
// /debug/requests?id=<X-Request-ID> alone.
//
// Fleet mode starts when -replicas > 1, -models lists more than one
// spec (or one with a default strategy), a -shed-policy is set, a
// non-default -router is chosen, or any elasticity feature
// (-hedge-after, -steal, -autoscale) is enabled; with none of those
// the daemon runs the exact single-engine path of previous releases.
// Replica specs are model[:scheme[:default-strategy]], e.g.
//
//	vgend -replicas 4 -shed-policy deadline,priority,budget
//	vgend -models codellama:ours,codet5p:ntp:prompt-lookup -router prefix-affinity
//	vgend -replicas 3 -hedge-after 50ms -steal -autoscale -max-replicas 6
//
// Requests are routed per prefix-affinity consistent hashing (with a
// least-loaded fallback), so shared-prefix traffic concentrates where
// its caches are warm; shed requests always get an explicit 429/503
// with a Retry-After header.
//
// The fleet self-heals and scales: every replica carries a circuit
// breaker (consecutive faults open it, routing steers around it, a
// cooldown probe closes it again); -hedge-after races a second replica
// when the routed one is slow or wedged and fails over on replica
// faults; -steal lets idle replicas pull queued overflow from affinity
// hotspots; -autoscale grows the fleet on sustained queue-wait or shed
// pressure and shrinks it when idle, within [-min-replicas,
// -max-replicas]. All of it is observable via /metrics
// (vgend_fleet_scale_*, vgend_replica_breaker_*, hedge/failover/steal
// counters).
//
// Usage: vgend [-addr :8080] [-model codellama|codet5p] [-scheme ours]
// [-items 3400] [-workers N] [-queue N]
// [-scheduler continuous|microbatch] [-max-batch N] [-preempt-quantum N]
// [-batch N] [-cache N]
// [-prefix-cache trie|whole|off|N] [-prefix-cache-bytes N] [-no-dedup]
// [-tree-budget N] [-adapt off|shadow|on] [-replicas N] [-models specs]
// [-router prefix-affinity|least-loaded|round-robin|random]
// [-shed-policy none|deadline,priority,budget] [-budget-tps N]
// [-budget-burst N] [-hedge-after D] [-steal] [-autoscale]
// [-min-replicas N] [-max-replicas N] [-list-strategies]
// [-trace] [-pprof] [-log text|json|off]
//
// Dispatch defaults to the continuous scheduler: requests join and
// leave the running batch at every verification sweep, and a decode
// that holds a slot for -preempt-quantum sweeps while others wait is
// checkpointed (its session pages stay pinned in the prefix trie) and
// resumed later — long decodes cannot head-of-line-block short ones.
// -scheduler microbatch restores the legacy worker pool.
//
// The tree strategies (medusa-tree, lookup-tree, ours-tree, and the
// grammar-constrained grammar-tree / grammar-lookup-tree; see
// -list-strategies) draft a branching candidate tree per decoding
// step; -tree-budget sets the daemon-wide node budget for requests
// that do not carry their own "tree_budget" field. The grammar
// strategies additionally report oracle work through /metrics
// (grammar_pruned_nodes, grammar_draft_tokens).
//
// -adapt enables the self-tuning speculation controller per replica:
// "shadow" records the controller's decisions in /metrics without
// applying any, "on" additionally sizes draft-tree budgets from the
// measured accept-depth distribution, degrades drafting as load rises
// (tree → linear → no draft) and routes requests that named no
// strategy to the best-scoring drafter per prompt class. Requests
// that pin a strategy or budget are never overridden.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/tokenizer"
	"repro/internal/trace"
)

// replicaSpec is one parsed -models entry.
type replicaSpec struct {
	model, scheme, strategy string
}

func parseModelConfig(name string) (model.Config, error) {
	switch name {
	case "codellama":
		return model.CodeLlamaSim(), nil
	case "codet5p":
		return model.CodeT5pSim(), nil
	}
	return model.Config{}, fmt.Errorf("unknown model %q (want codellama or codet5p)", name)
}

func parseScheme(name string) (model.Scheme, error) {
	switch name {
	case "ours":
		return model.SchemeOurs, nil
	case "medusa":
		return model.SchemeMedusa, nil
	case "ntp":
		return model.SchemeNTP, nil
	}
	return 0, fmt.Errorf("unknown scheme %q (want ours, medusa or ntp)", name)
}

// parseModels splits -models ("codellama:ours,codet5p:ntp:prompt-lookup")
// into replica specs; defaults fill omitted fields.
func parseModels(s, defaultModel, defaultScheme string) ([]replicaSpec, error) {
	if s == "" {
		return []replicaSpec{{model: defaultModel, scheme: defaultScheme}}, nil
	}
	var specs []replicaSpec
	for _, entry := range strings.Split(s, ",") {
		parts := strings.Split(strings.TrimSpace(entry), ":")
		spec := replicaSpec{model: parts[0], scheme: defaultScheme}
		if len(parts) > 1 && parts[1] != "" {
			spec.scheme = parts[1]
		}
		if len(parts) > 2 && parts[2] != "" {
			spec.strategy = parts[2]
		}
		if len(parts) > 3 {
			return nil, fmt.Errorf("bad replica spec %q (want model[:scheme[:strategy]])", entry)
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "vgend: %v\n", err)
	os.Exit(2)
}

// newLogger maps -log onto a slog handler; "off" yields nil (no
// startup chatter, no request lines).
func newLogger(mode string) (*slog.Logger, error) {
	switch mode {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	case "off":
		return nil, nil
	}
	return nil, fmt.Errorf("unknown -log mode %q (want text, json or off)", mode)
}

// parsePrefixCache maps the -prefix-cache flag onto the serve config:
// the mode names trie/whole/off, or — for pre-trie deployments that
// passed an entry count — a bare integer selecting whole-prompt mode
// with that capacity (0 the default capacity, negative disables,
// matching the old flag exactly).
func parsePrefixCache(s string) (mode string, size int, err error) {
	if n, perr := strconv.Atoi(s); perr == nil {
		if n < 0 {
			return serve.PrefixCacheOff, -1, nil
		}
		return serve.PrefixCacheWhole, n, nil
	}
	mode, err = serve.ParsePrefixCacheMode(s)
	if mode == serve.PrefixCacheOff {
		size = -1
	}
	return mode, size, err
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	modelName := flag.String("model", "codellama", "backbone: codellama or codet5p")
	schemeName := flag.String("scheme", "ours", "training scheme: ours, medusa or ntp")
	items := flag.Int("items", 3400, "corpus items to train on")
	seed := flag.Int64("seed", 1, "corpus/training seed")
	workers := flag.Int("workers", 0, "decoder workers per replica (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 256, "request queue bound per replica")
	scheduler := flag.String("scheduler", serve.SchedContinuous,
		"dispatch architecture per replica: continuous (requests join/leave the running batch at every verification step, long decodes preempted) or microbatch (legacy worker pool)")
	maxBatch := flag.Int("max-batch", 0, "continuous scheduler: max decodes in the running batch (0 = 2*workers, min 8)")
	preemptQuantum := flag.Int("preempt-quantum", 0, "continuous scheduler: sweeps a decode may hold a slot while others wait (0 = 64, negative disables preemption)")
	batch := flag.Int("batch", 8, "micro-batch size (microbatch scheduler)")
	window := flag.Duration("batch-window", 2*time.Millisecond, "micro-batch linger (microbatch scheduler)")
	cache := flag.Int("cache", 512, "LRU cache entries per replica (negative disables)")
	prefixCache := flag.String("prefix-cache", "trie",
		"prompt-session cache per replica: trie (token-prefix trie, partial reuse), whole (whole-prompt LRU), off; a legacy integer selects whole mode with that capacity (negative disables)")
	prefixCacheBytes := flag.Int64("prefix-cache-bytes", 0, "trie prefix-cache byte budget per replica (0 = 64 MiB)")
	noDedup := flag.Bool("no-dedup", false, "disable single-flight dedup of identical in-flight requests")
	treeBudget := flag.Int("tree-budget", 0, "draft-tree node budget per step for tree strategies when the request sets none (0 = decoder default)")
	adaptFlag := flag.String("adapt", serve.AdaptOff,
		"adaptive speculation per replica: off, shadow (record controller decisions without applying them) or on (size tree budgets, degrade drafting under load, route default-strategy requests)")
	listStrategies := flag.Bool("list-strategies", false, "print the registered decoding strategies and exit")
	replicas := flag.Int("replicas", 1, "fleet size (replicas cycle through -models specs)")
	modelsFlag := flag.String("models", "", "replica specs model[:scheme[:strategy]], comma-separated (empty: -model/-scheme)")
	routerName := flag.String("router", "prefix-affinity", "fleet routing: prefix-affinity, least-loaded, round-robin or random")
	shedPolicy := flag.String("shed-policy", "none", "admission chain: none, or a comma list of deadline, priority, budget")
	budgetTPS := flag.Float64("budget-tps", 0, "budget policy: sustained tokens/s per client (0 = default)")
	budgetBurst := flag.Float64("budget-burst", 0, "budget policy: burst tokens per client (0 = default)")
	hedgeAfter := flag.Duration("hedge-after", 0, "fleet: race a second replica when the routed one hasn't answered within this wait (0 = no hedging)")
	steal := flag.Bool("steal", false, "fleet: let idle replicas steal queued overflow from affinity hotspots")
	autoscale := flag.Bool("autoscale", false, "fleet: scale the replica count with load, between -min-replicas and -max-replicas")
	minReplicas := flag.Int("min-replicas", 0, "autoscaler floor (0 = the starting replica count; requires -autoscale)")
	maxReplicas := flag.Int("max-replicas", 0, "autoscaler ceiling (0 = twice the floor; requires -autoscale)")
	traceOn := flag.Bool("trace", true, "per-request tracing: flight recorder behind /debug/requests and /debug/trace, vgend_phase_seconds_total in /metrics")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	logMode := flag.String("log", "text", "structured logging: text, json or off")
	flag.Parse()
	logger, err := newLogger(*logMode)
	if err != nil {
		fail(err)
	}
	logInfo := func(msg string, args ...any) {
		if logger != nil {
			logger.Info(msg, args...)
		}
	}
	if *listStrategies {
		fmt.Print(core.StrategyListing())
		return
	}
	if *treeBudget < 0 {
		fail(fmt.Errorf("-tree-budget must be >= 0, got %d", *treeBudget))
	}

	specs, err := parseModels(*modelsFlag, *modelName, *schemeName)
	if err != nil {
		fail(err)
	}
	// Validate every flag-derived choice before the expensive corpus
	// build: a typo must fail in milliseconds, not after training.
	type resolvedSpec struct {
		replicaSpec
		cfg model.Config
		sch model.Scheme
	}
	resolved := make([]resolvedSpec, len(specs))
	for i, spec := range specs {
		cfg, err := parseModelConfig(spec.model)
		if err != nil {
			fail(err)
		}
		scheme, err := parseScheme(spec.scheme)
		if err != nil {
			fail(err)
		}
		if spec.strategy != "" {
			if _, err := core.ResolveStrategy(spec.strategy, false); err != nil {
				fail(err)
			}
		}
		resolved[i] = resolvedSpec{replicaSpec: spec, cfg: cfg, sch: scheme}
	}
	prefixMode, prefixSize, err := parsePrefixCache(*prefixCache)
	if err != nil {
		fail(err)
	}
	schedMode, err := serve.ParseSchedulerMode(*scheduler)
	if err != nil {
		fail(err)
	}
	adaptMode, err := serve.ParseAdaptMode(*adaptFlag)
	if err != nil {
		fail(err)
	}
	policies, err := cluster.ParsePolicies(*shedPolicy, *budgetTPS, *budgetBurst)
	if err != nil {
		fail(err)
	}
	router, err := cluster.NewRouter(*routerName)
	if err != nil {
		fail(err)
	}
	if (*minReplicas != 0 || *maxReplicas != 0) && !*autoscale {
		fail(fmt.Errorf("-min-replicas/-max-replicas require -autoscale"))
	}
	// A non-default router is an explicit ask for the cluster layer,
	// even with one replica — silently ignoring it would leave the
	// operator believing a routing policy is active. So are the
	// resilience/elasticity features: hedging, stealing, autoscaling.
	fleetMode := *replicas > 1 || len(specs) > 1 || len(policies) > 0 ||
		specs[0].strategy != "" || *routerName != "prefix-affinity" ||
		*hedgeAfter > 0 || *steal || *autoscale
	n := *replicas
	if n < len(specs) {
		n = len(specs)
	}

	// One corpus; one tokenizer per backbone; one trained model per
	// distinct (backbone, scheme) pair — replicas sharing a pair share
	// the immutable trained model but keep their own engine and caches.
	logInfo("building corpus", "items", *items)
	start := time.Now()
	examples, stats := dataset.BuildCorpus(dataset.CorpusOptions{Seed: *seed, Items: *items})
	var corpus []string
	limit := min(len(examples), 1500)
	for _, ex := range examples[:limit] {
		corpus = append(corpus, model.FormatPrompt(ex.Prompt)+ex.Code)
	}
	toks := map[string]*tokenizer.Tokenizer{}
	trained := map[string]*model.Model{}
	for _, spec := range resolved {
		key := spec.model + "/" + spec.sch.String()
		if trained[key] != nil {
			continue
		}
		tk := toks[spec.model]
		if tk == nil {
			tk = tokenizer.Train(corpus, spec.cfg.VocabSize)
			toks[spec.model] = tk
		}
		logInfo("training model", "model", spec.cfg.Name, "scheme", spec.sch.String())
		trained[key] = model.Train(tk, spec.cfg, spec.sch, examples)
	}
	logInfo("training done", "corpus", fmt.Sprint(stats), "elapsed", time.Since(start).Round(time.Millisecond).String())

	engCfg := serve.Config{
		Workers:           *workers,
		QueueSize:         *queue,
		Scheduler:         schedMode,
		MaxBatch:          *maxBatch,
		PreemptQuantum:    *preemptQuantum,
		BatchSize:         *batch,
		BatchWindow:       *window,
		CacheSize:         *cache,
		PrefixCacheMode:   prefixMode,
		PrefixCacheSize:   prefixSize,
		PrefixCacheBytes:  *prefixCacheBytes,
		DefaultTreeBudget: *treeBudget,
		NoDedup:           *noDedup,
		Adapt:             adaptMode,
	}

	var backend serve.Backend
	var closeBackend func()
	if !fleetMode {
		// Single-engine path: byte-identical to previous releases, no
		// cluster layer in the request path at all.
		eng := serve.NewEngine(trained[resolved[0].model+"/"+resolved[0].sch.String()], engCfg)
		backend, closeBackend = eng, eng.Close
		logInfo("serving",
			"model", resolved[0].model, "scheme", resolved[0].scheme,
			"addr", *addr, "workers", eng.Workers())
	} else {
		replicaSpecs := make([]cluster.ReplicaSpec, n)
		for i := range replicaSpecs {
			spec := resolved[i%len(resolved)]
			replicaSpecs[i] = cluster.ReplicaSpec{
				Name:            fmt.Sprintf("r%d:%s/%s", i, spec.model, spec.scheme),
				Model:           trained[spec.model+"/"+spec.sch.String()],
				Engine:          engCfg,
				DefaultStrategy: spec.strategy,
			}
		}
		fleet, err := cluster.New(replicaSpecs, cluster.Config{
			Router:     router,
			Policies:   policies,
			HedgeAfter: *hedgeAfter,
			Steal:      *steal,
			Autoscale: cluster.AutoscaleConfig{
				Enabled: *autoscale,
				Min:     *minReplicas,
				Max:     *maxReplicas,
			},
		})
		if err != nil {
			fail(err)
		}
		backend, closeBackend = fleet, fleet.Close
		names := make([]string, 0, len(policies))
		for _, p := range policies {
			names = append(names, p.Name())
		}
		shed := "none"
		if len(names) > 0 {
			shed = strings.Join(names, ",")
		}
		elastic := ""
		if *hedgeAfter > 0 {
			elastic += fmt.Sprintf(", hedge %s", *hedgeAfter)
		}
		if *steal {
			elastic += ", steal"
		}
		if *autoscale {
			lo, hi := fleet.AutoscaleBounds()
			elastic += fmt.Sprintf(", autoscale %d..%d", lo, hi)
		}
		logInfo("serving fleet",
			"replicas", n, "router", router.Name(), "shed", shed,
			"elasticity", strings.TrimPrefix(elastic, ", "), "addr", *addr)
	}

	server := serve.NewBackendServer(backend).WithPprof(*pprofOn)
	if *traceOn {
		server = server.WithTracer(trace.New(trace.Config{}))
	}
	if logger != nil {
		server = server.WithLogger(logger)
	}
	srv := &http.Server{Addr: *addr, Handler: server.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		logInfo("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()

	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "vgend: %v\n", err)
		os.Exit(1)
	}
	// ListenAndServe returned ErrServerClosed, so Shutdown is in
	// flight; wait for it to finish draining handlers before tearing
	// the backend down.
	<-shutdownDone
	closeBackend()
}
