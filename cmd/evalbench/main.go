// Command evalbench regenerates the paper's tables and figures on the
// simulated substrate.
//
// Usage:
//
//	evalbench -exp table1|table2|matrix|tree|grammar|sim|fleet|prefix|load|sweep|diff|trace|fig1|fig5|fig6|all
//	          [-quick] [-items N] [-samples N] [-seed N] [-json BENCH_8.json]
//
// -quick selects the scaled-down setup (one model, one data size, few
// samples); the default is the full harness described in DESIGN.md.
// "matrix" runs the strategy matrix: every decoding strategy (the
// legacy three, self-speculative prompt lookup and the three
// tree-drafting lifts) under the Table II protocol, with measured
// wall-clock ms/token next to the simulated speedup. "tree" compares
// each tree strategy against its linear counterpart: mean accepted
// length, draft nodes per step and node-budget utilization. "grammar"
// compares each grammar-constrained strategy against the ungated tree
// drafter it extends: mean accepted length plus oracle pruning and
// construct-drafting rates. "sim" is the simulation-in-the-loop
// quality tier: greedy decodes of every benchmark problem are
// elaborated and run against their self-checking testbenches, and the
// rows report sim-pass rate next to syntax rate per strategy. "fleet"
// runs the multi-replica load scenario: measured wall-clock throughput
// and latency percentiles per routing policy. "prefix" compares
// session-preparation tokens recomputed across the three prefix-cache
// modes on a shared-stem workload; "diff" asserts all cache modes
// decode byte-identically across the strategy matrix AND that greedy
// lookup-tree byte streams equal linear prompt-lookup's (the tree
// losslessness proof). "sweep" runs the adaptive-speculation load
// sweep: offered load swept over every static (strategy, budget)
// configuration and over the live self-tuning controller, on decode
// profiles measured from real decodes. "trace" prices the tracing
// layer: the same decode workload runs with tracing off and on, the
// rows report best-of-N throughput for each, and the run fails if the
// two modes' generations are not byte-identical.
//
// -json writes the structured rows of the tree, grammar, sim, prefix,
// load, sweep and trace experiments (whichever ran) as one JSON
// document — CI writes BENCH_8.json and BENCH_10.json this way and
// uploads them as artifacts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

// benchDoc accumulates the structured rows of the experiments that
// emit them; -json serializes whichever fields were filled.
type benchDoc struct {
	Tree          []experiments.TreeBenchRow    `json:"tree,omitempty"`
	Grammar       []experiments.GrammarBenchRow `json:"grammar,omitempty"`
	Sim           []experiments.SimBenchRow     `json:"sim,omitempty"`
	Prefix        []experiments.PrefixBenchRow  `json:"prefix,omitempty"`
	Load          []experiments.LoadBenchRow    `json:"load,omitempty"`
	SweepProfiles []*experiments.SweepProfile   `json:"sweep_profiles,omitempty"`
	Sweep         []experiments.LoadSweepRow    `json:"sweep,omitempty"`
	Trace         []experiments.TraceBenchRow   `json:"trace,omitempty"`
}

func main() {
	exp := flag.String("exp", "all", "experiment: table1, table2, matrix, tree, grammar, sim, fleet, prefix, load, sweep, diff, trace, fig1, fig5, fig6 or all")
	quick := flag.Bool("quick", false, "scaled-down setup (fast smoke run)")
	items := flag.Int("items", 0, "override corpus item count")
	samples := flag.Int("samples", 0, "override samples per prompt per temperature")
	seed := flag.Int64("seed", 1, "corpus and sampling seed")
	temps := flag.String("temps", "", "override temperatures, comma-separated (e.g. 0.2,0.6)")
	sizes := flag.String("sizes", "", "override data-size numerators over 4 (e.g. 2,4)")
	speedPrompts := flag.Int("speedprompts", 0, "override Table II prompt count")
	jsonOut := flag.String("json", "", "write tree/grammar/sim/prefix/load/sweep rows as one JSON document to this path (e.g. BENCH_8.json)")
	flag.Parse()

	setup := experiments.Default()
	if *quick {
		setup = experiments.Quick()
	}
	if *items > 0 {
		setup.CorpusItems = *items
	}
	if *samples > 0 {
		setup.Samples = *samples
	}
	setup.Seed = *seed
	if *temps != "" {
		setup.Temps = nil
		for _, t := range strings.Split(*temps, ",") {
			var v float64
			fmt.Sscanf(t, "%g", &v)
			setup.Temps = append(setup.Temps, v)
		}
	}
	if *sizes != "" {
		setup.SizeNumerators = nil
		for _, t := range strings.Split(*sizes, ",") {
			var v int
			fmt.Sscanf(t, "%d", &v)
			setup.SizeNumerators = append(setup.SizeNumerators, v)
		}
	}
	if *speedPrompts > 0 {
		setup.SpeedPrompts = *speedPrompts
	}

	t0 := time.Now()
	fmt.Printf("# building corpus (%d items) and tokenizers...\n", setup.CorpusItems)
	runner := experiments.NewRunner(setup)
	fmt.Printf("# corpus ready in %v: %s\n\n", time.Since(t0).Round(time.Millisecond), runner.Stats())

	var t1 []experiments.QualityCell
	var t2 []experiments.SpeedRow
	var doc benchDoc

	// -exp accepts a comma-separated list ("grammar,sim"), so one run
	// can emit several experiments' rows into one JSON document.
	wanted := map[string]bool{}
	for _, name := range strings.Split(*exp, ",") {
		wanted[strings.TrimSpace(name)] = true
	}
	want := func(name string) bool { return wanted["all"] || wanted[name] }

	if want("table1") || want("fig1") || want("fig6") {
		fmt.Println("## Table I — quality of generated Verilog (percent)")
		t1 = runner.RunTable1()
		printTable1(t1)
	}
	if want("table2") || want("fig1") {
		fmt.Println("## Table II — generation speed")
		t2 = runner.RunTable2()
		printTable2(t2)
	}
	if want("matrix") {
		fmt.Println("## Strategy matrix — tokens/s per decoding strategy")
		printMatrix(runner.RunStrategyMatrix())
	}
	if want("tree") {
		fmt.Println("## Tree bench — mean accepted length, linear vs tree drafting")
		doc.Tree = runner.RunTreeBench()
		printTreeBench(doc.Tree)
	}
	if want("grammar") {
		fmt.Println("## Grammar bench — mean accepted length, ungated vs grammar-constrained tree drafting")
		doc.Grammar = runner.RunGrammarBench()
		printGrammarBench(doc.Grammar)
	}
	if want("sim") {
		fmt.Println("## Sim bench — testbench simulation pass rate per decoding strategy (greedy)")
		doc.Sim = runner.RunSimBench()
		printSimBench(doc.Sim)
	}
	if want("fleet") {
		fmt.Println("## Fleet bench — measured wall-clock throughput/latency per routing policy")
		rows, err := runner.RunFleetBench(experiments.FleetBenchConfig{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "fleet bench: %v\n", err)
			os.Exit(1)
		}
		printFleetBench(rows)
	}
	if want("prefix") {
		fmt.Println("## Prefix bench — session-prep tokens recomputed per prefix-cache mode (shared-stem workload)")
		doc.Prefix = runner.RunPrefixBench(experiments.PrefixBenchConfig{})
		for _, row := range doc.Prefix {
			fmt.Printf("  %-6s requests=%3d  prompt_toks=%6d  recomputed=%6d  saved=%6d  hits=%3d  partial=%3d  hit_rate=%.2f\n",
				row.Mode, row.Requests, row.PromptTokens, row.TokensRecomputed,
				row.TokensSaved, row.Hits, row.PartialHits, row.HitRate)
		}
		fmt.Println()
	}
	if want("load") {
		fmt.Println("## Load bench — short-request p95 with one long decode in flight, per scheduler")
		rows, err := runner.RunLoadBench(experiments.LoadBenchConfig{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "load bench: %v\n", err)
			os.Exit(1)
		}
		doc.Load = rows
		for _, row := range rows {
			fmt.Printf("  %-10s shorts=%3d  unloaded p95=%7.3fms  loaded p95=%7.3fms  ratio=%.2f  preemptions=%d  long_decodes=%d\n",
				row.Scheduler, row.Shorts, row.UnloadedP95MS, row.LoadedP95MS,
				row.LatencyRatio, row.Preemptions, row.LongDecodes)
		}
		fmt.Println()
	}
	if want("sweep") {
		fmt.Println("## Load sweep — adaptive speculation controller vs the static (strategy, budget) grid")
		rows, profiles, err := runner.RunLoadSweep(experiments.LoadSweepConfig{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "load sweep: %v\n", err)
			os.Exit(1)
		}
		doc.Sweep, doc.SweepProfiles = rows, profiles
		printLoadSweep(rows, profiles)
	}
	if want("trace") {
		fmt.Println("## Trace bench — decode throughput with tracing off vs on, plus byte-identity")
		rows, texts, err := runner.RunTraceBench(experiments.TraceBenchConfig{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace bench: %v\n", err)
			os.Exit(1)
		}
		doc.Trace = rows
		for _, row := range rows {
			fmt.Printf("  tracing=%-3s requests=%3d  repeats=%d  best=%8.2fms  tok/s=%8.1f  spans=%5d  dropped=%d\n",
				row.Tracing, row.Requests, row.Repeats, row.BestWallMS, row.TokensPerSec, row.Spans, row.Dropped)
		}
		if len(texts) == 2 {
			identical := len(texts[0]) == len(texts[1])
			for i := 0; identical && i < len(texts[0]); i++ {
				identical = texts[0][i] == texts[1][i]
			}
			fmt.Printf("  byte-identity: %d generations, identical=%v\n", len(texts[0]), identical)
			if !identical {
				fmt.Fprintln(os.Stderr, "trace bench: tracing changed generated bytes")
				os.Exit(1)
			}
		}
		fmt.Println()
	}
	if want("diff") {
		fmt.Println("## Differential — byte-identity of {off, whole, trie} session caches across the strategy matrix")
		report, err := runner.RunDiffTest(experiments.DiffConfig{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "differential: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  clean: %d cases byte-identical, %d mid-prompt forks exercised\n", report.Cases, report.PartialHits)
		lossless, err := runner.RunTreeLossless()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tree lossless: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  lossless: %d greedy lookup-tree cases byte-identical to prompt-lookup and NTP (steps %d vs %d vs %d)\n\n",
			lossless.Cases, lossless.StepsTree, lossless.StepsLinear, lossless.StepsNTP)
	}
	if want("fig1") && t1 != nil && t2 != nil {
		fmt.Println("## Fig. 1 — speed vs pass@10 (RTLLM, first model)")
		for _, pt := range experiments.Fig1(t1, t2, setup.Models[0].Name) {
			fmt.Printf("  %-8s speed=%8.2f tok/s  funcPass@10=%6.2f%%\n", pt.Method, pt.TokensPerSec, pt.FuncPass10)
		}
		fmt.Println()
	}
	if want("fig5") {
		fmt.Println("## Fig. 5 — decoding steps for the data_register example")
		for _, row := range runner.RunFig5() {
			fmt.Printf("  %-8s steps=%4d  cleanTokens=%4d\n", row.Method, row.Steps, row.Tokens)
		}
		fmt.Println()
	}
	if want("fig6") && t1 != nil {
		name := setup.Models[len(setup.Models)-1].Name
		fmt.Printf("## Fig. 6 — pass@5 slice (%s)\n", name)
		for _, c := range experiments.Fig6(t1, name) {
			fmt.Printf("  %-7s %-6s size=%-6s funcPass@5=%6.2f%%  synPass@5=%6.2f%%\n",
				c.Method, c.Benchmark, experiments.SizeLabel(c.DataSize), c.FuncPass5, c.SynPass5)
		}
		fmt.Println()
	}
	fmt.Printf("# total %v\n", time.Since(t0).Round(time.Second))
	known := map[string]bool{"all": true, "table1": true, "table2": true, "matrix": true,
		"tree": true, "grammar": true, "sim": true, "fleet": true, "prefix": true,
		"load": true, "sweep": true, "diff": true, "trace": true,
		"fig1": true, "fig5": true, "fig6": true}
	for name := range wanted {
		if !known[name] {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
	}
	if *jsonOut != "" {
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("# wrote %s\n", *jsonOut)
	}
}

// printLoadSweep renders the measured decode profiles, then the rows
// grouped per load point with the adaptive row last in each group.
func printLoadSweep(rows []experiments.LoadSweepRow, profiles []*experiments.SweepProfile) {
	fmt.Printf("  %-14s %9s %11s %8s %11s\n", "profile", "tok/step", "slots/step", "ms/tok", "nodes/step")
	for _, p := range profiles {
		fmt.Printf("  %-14s %9.2f %11.2f %8.2f %11.2f\n",
			p.Name(), p.TokPerStep, p.SlotsPerStep, p.MSPerTok, p.NodesPerStep)
	}
	fmt.Println()
	fmt.Printf("  %-5s %-14s %8s %8s %8s %9s %10s %11s %7s\n",
		"load", "config", "rps", "p50 ms", "p95 ms", "accepted", "decisions", "downgrades", "level")
	lastFrac := -1.0
	for _, r := range rows {
		if r.LoadFrac != lastFrac {
			fmt.Println("  " + strings.Repeat("-", 88))
			lastFrac = r.LoadFrac
		}
		extra := []string{"", "", ""}
		if r.Adaptive {
			extra = []string{
				fmt.Sprintf("%d", r.Decisions),
				fmt.Sprintf("%d", r.Downgrades),
				r.FinalLevel,
			}
		}
		fmt.Printf("  %-5.2f %-14s %8.2f %8.1f %8.1f %9.2f %10s %11s %7s\n",
			r.LoadFrac, r.Config, r.ThroughputRPS, r.P50MS, r.P95MS, r.MeanAccepted,
			extra[0], extra[1], extra[2])
	}
	fmt.Println()
}

func printMatrix(rows []experiments.StrategyRow) {
	fmt.Printf("%-14s %-8s %-13s %14s %9s %9s %12s\n", "model", "scheme", "strategy", "speed (tok/s)", "speedup", "accepted", "wall ms/tok")
	fmt.Println(strings.Repeat("-", 85))
	for _, r := range rows {
		fmt.Printf("%-14s %-8s %-13s %14.2f %9.2f %9.2f %12.4f\n",
			r.Model, r.Scheme, r.Strategy, r.TokensPerSec, r.Speedup, r.MeanAccepted, r.WallMSPerToken)
	}
	fmt.Println()
}

func printTreeBench(rows []experiments.TreeBenchRow) {
	fmt.Printf("%-14s %-8s %-12s %-12s %9s %9s %6s %11s %10s %6s\n",
		"model", "scheme", "linear", "tree", "lin acc", "tree acc", "gain", "nodes/step", "tree tok/s", "util")
	fmt.Println(strings.Repeat("-", 108))
	for _, r := range rows {
		fmt.Printf("%-14s %-8s %-12s %-12s %9.3f %9.3f %6.3f %11.1f %10.2f %6.2f\n",
			r.Model, r.Scheme, r.Linear, r.Tree, r.LinearAccepted, r.TreeAccepted,
			r.AcceptedGain, r.TreeNodesPerStep, r.TreeTokensPerSec, r.BudgetUtilization)
	}
	fmt.Println()
}

func printGrammarBench(rows []experiments.GrammarBenchRow) {
	fmt.Printf("%-14s %-8s %-12s %-20s %9s %9s %6s %12s %10s\n",
		"model", "scheme", "base", "grammar", "base acc", "gram acc", "gain", "pruned/step", "gtok/step")
	fmt.Println(strings.Repeat("-", 110))
	for _, r := range rows {
		fmt.Printf("%-14s %-8s %-12s %-20s %9.3f %9.3f %6.3f %12.2f %10.2f\n",
			r.Model, r.Scheme, r.Base, r.Grammar, r.BaseAccepted, r.GrammarAccepted,
			r.AcceptedGain, r.PrunedPerStep, r.GrammarTokensPerStep)
	}
	fmt.Println()
}

func printSimBench(rows []experiments.SimBenchRow) {
	fmt.Printf("%-14s %-8s %-20s %9s %10s %12s %11s %14s\n",
		"model", "scheme", "strategy", "problems", "syntax ok", "syntax rate", "sim passed", "sim-pass rate")
	fmt.Println(strings.Repeat("-", 104))
	for _, r := range rows {
		fmt.Printf("%-14s %-8s %-20s %9d %10d %11.1f%% %11d %13.1f%%\n",
			r.Model, r.Scheme, r.Strategy, r.Problems,
			r.SyntaxOK, r.SyntaxRate, r.SimPassed, r.SimPassRate)
	}
	fmt.Println()
}

func printFleetBench(rows []experiments.FleetBenchRow) {
	fmt.Printf("%-16s %8s %8s %9s %9s %8s %8s %8s %8s\n",
		"router", "requests", "hit-rate", "pfx-rate", "dedup", "rps", "p50 ms", "p95 ms", "p99 ms")
	fmt.Println(strings.Repeat("-", 92))
	for _, r := range rows {
		fmt.Printf("%-16s %8d %8.3f %9.3f %9d %8.1f %8.2f %8.2f %8.2f\n",
			r.Router, r.Requests, r.CacheHitRate, r.PrefixHitRate, r.DedupHits,
			r.ThroughputRPS, r.P50WallMS, r.P95WallMS, r.P99WallMS)
	}
	fmt.Println()
}

func printTable1(cells []experiments.QualityCell) {
	fmt.Printf("%-14s %-8s %-7s %-7s | %7s %7s %7s %7s | %7s %7s %7s %7s\n",
		"model", "size", "bench", "method",
		"f@1", "f@5", "f@10", "fRate", "s@1", "s@5", "s@10", "sRate")
	fmt.Println(strings.Repeat("-", 118))
	for _, c := range cells {
		fmt.Printf("%-14s %-8s %-7s %-7s | %7.2f %7.2f %7.2f %7.2f | %7.2f %7.2f %7.2f %7.2f\n",
			c.Model, experiments.SizeLabel(c.DataSize), c.Benchmark, c.Method,
			c.FuncPass1, c.FuncPass5, c.FuncPass10, c.FuncRate,
			c.SynPass1, c.SynPass5, c.SynPass10, c.SynRate)
	}
	fmt.Println()
}

func printTable2(rows []experiments.SpeedRow) {
	fmt.Printf("%-14s %-8s %14s %9s\n", "model", "method", "speed (tok/s)", "speedup")
	fmt.Println(strings.Repeat("-", 50))
	for _, r := range rows {
		fmt.Printf("%-14s %-8s %14.2f %9.2f\n", r.Model, r.Method, r.TokensPerSec, r.Speedup)
	}
	fmt.Println()
}
