package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestParseRetryAfter covers the header grammar RFC 9110 allows:
// delay-seconds, an HTTP-date, and the garbage a middlebox might
// substitute — which must fall back, never spin or stall forever.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 7, 30, 12, 0, 0, 0, time.UTC)
	fallback := 250 * time.Millisecond
	cases := []struct {
		value string
		want  time.Duration
	}{
		{"", fallback},
		{"0", 0},
		{"3", 3 * time.Second},
		{" 7 ", 7 * time.Second},
		{"-2", 0}, // negative delay: retry now
		{now.Add(2 * time.Second).UTC().Format(http.TimeFormat), 2 * time.Second},
		{now.Add(-time.Minute).UTC().Format(http.TimeFormat), 0}, // past date: retry now
		{"soon", fallback},
		{"1.5", fallback}, // fractional seconds are not in the grammar
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.value, now, fallback); got != c.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", c.value, got, c.want)
		}
	}
}

// TestReplayHonoursRetryAfter drives replayOne against a server that
// sheds twice with Retry-After before answering: the client must
// resubmit exactly per header and succeed.
func TestReplayHonoursRetryAfter(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": "shed"})
		case 2:
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": "queue full"})
		default:
			_ = json.NewEncoder(w).Encode(map[string]any{"text": "module m; endmodule"})
		}
	}))
	defer srv.Close()

	res := replayOne(srv.Client(), srv.URL, generateRequest{Prompt: "p"}, 5, 0, nil)
	if !res.ok {
		t.Fatal("replay did not succeed")
	}
	if res.retries != 2 {
		t.Fatalf("retries = %d, want 2", res.retries)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
}

// TestStreamShedAfterPartialOutputIsFailedAttempt pins the stream-mode
// retry accounting: a shed that arrives after step lines are already on
// the wire — as a 429 status with a partial NDJSON body, or as an
// in-stream error line under a 200 — is a failed attempt to back off
// and resubmit, never a success. A bare done line without a result must
// not pass for one either.
func TestStreamShedAfterPartialOutputIsFailedAttempt(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		enc := json.NewEncoder(w)
		switch calls.Add(1) {
		case 1:
			// Shed status, but with partial stream output in the body.
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			_ = enc.Encode(map[string]any{"step": 1, "text": "module m"})
			_ = enc.Encode(map[string]any{"step": 2, "text": "module m;"})
		case 2:
			// 200 with steps, then the shed arrives as a final error line.
			_ = enc.Encode(map[string]any{"step": 1, "text": "module m"})
			_ = enc.Encode(map[string]any{"done": true, "error": "serve: request queue full"})
		default:
			_ = enc.Encode(map[string]any{"step": 1, "text": "module m"})
			_ = enc.Encode(map[string]any{"done": true, "result": map[string]any{"text": "module m; endmodule"}})
		}
	}))
	defer srv.Close()

	res := replayOne(srv.Client(), srv.URL, generateRequest{Prompt: "p", Stream: true}, 5, 0, nil)
	if !res.ok {
		t.Fatal("replay did not succeed after shed attempts")
	}
	if res.retries != 2 {
		t.Fatalf("retries = %d, want 2 (both partial-output sheds must count as failed attempts)", res.retries)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
}

// TestStreamWithoutResultLineIsNotSuccess pins the other half of the
// accounting: partial output followed by a silent end of stream (no
// done line at all) is a terminal failure, not a delivered generation.
func TestStreamWithoutResultLineIsNotSuccess(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		enc := json.NewEncoder(w)
		_ = enc.Encode(map[string]any{"step": 1, "text": "module m"})
		_ = enc.Encode(map[string]any{"step": 2, "text": "module m;"})
	}))
	defer srv.Close()

	res := replayOne(srv.Client(), srv.URL, generateRequest{Prompt: "p", Stream: true}, 5, 0, nil)
	if res.ok {
		t.Fatal("replay claimed success from a stream that never delivered a result line")
	}
	if res.retries != 0 {
		t.Fatalf("retries = %d, want 0 (a broken stream is terminal, not a shed)", res.retries)
	}
}

// TestReplayGivesUpAtMaxRetries pins the bound: a permanently shedding
// server must not be hammered past -max-retries.
func TestReplayGivesUpAtMaxRetries(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer srv.Close()

	res := replayOne(srv.Client(), srv.URL, generateRequest{Prompt: "p"}, 2, 0, nil)
	if res.ok {
		t.Fatal("replay claimed success from a shedding server")
	}
	if res.retries != 2 {
		t.Fatalf("retries = %d, want 2", res.retries)
	}
	if got := calls.Load(); got != 3 { // initial + 2 retries
		t.Fatalf("server saw %d calls, want 3", got)
	}
}

// firedTimer is the injected hedge timer: a channel that is already
// hot, so the hedge launches on the select's first pass — no real
// sleeps anywhere in the hedging tests.
func firedTimer(time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	ch <- time.Time{}
	return ch
}

// TestHedgeFiredPrimaryWins: the hedge is launched (the timer fires
// while the primary is still on the wire), the hedge attempt fails
// terminally, and the primary then delivers — the request must succeed
// with zero retries, and the hedge's failure must not pre-empt the
// pending primary. The handler sequences the race: the primary blocks
// until the hedge has arrived, so the interleaving is pinned, not
// timing-dependent.
func TestHedgeFiredPrimaryWins(t *testing.T) {
	var calls atomic.Int64
	hedgeArrived := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1: // primary: wait out the hedge, then deliver
			<-hedgeArrived
			_ = json.NewEncoder(w).Encode(map[string]any{"text": "module m; endmodule"})
		default: // hedge: terminal failure
			close(hedgeArrived)
			w.WriteHeader(http.StatusInternalServerError)
		}
	}))
	defer srv.Close()

	res := replayOne(srv.Client(), srv.URL, generateRequest{Prompt: "p"}, 5, time.Millisecond, firedTimer)
	if !res.ok {
		t.Fatal("request failed although the primary delivered")
	}
	if res.retries != 0 {
		t.Fatalf("retries = %d, want 0 (the hedge's failure is not a shed)", res.retries)
	}
	if res.hedges != 1 {
		t.Fatalf("hedges = %d, want 1", res.hedges)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2 (primary + hedge)", got)
	}
}

// TestHedgeBothFailIsTerminal: when the primary and the hedge both
// fail terminally, the logical attempt is a terminal failure — no
// retry loop, no false success.
func TestHedgeBothFailIsTerminal(t *testing.T) {
	var calls atomic.Int64
	hedgeArrived := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			<-hedgeArrived // hold the primary until the hedge is in flight
		} else {
			close(hedgeArrived)
		}
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()

	res := replayOne(srv.Client(), srv.URL, generateRequest{Prompt: "p"}, 5, time.Millisecond, firedTimer)
	if res.ok {
		t.Fatal("replay claimed success although both attempts failed")
	}
	if res.retries != 0 {
		t.Fatalf("retries = %d, want 0 (terminal failures are not sheds)", res.retries)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2", got)
	}
}

// TestHedgeWinsAfterPrimaryShed: the primary comes back 429 while the
// hedge is still in flight — the shed must not stand as the attempt's
// verdict; the hedge's 200 wins and the request succeeds with zero
// retries and zero backoff sleeps.
func TestHedgeWinsAfterPrimaryShed(t *testing.T) {
	var calls atomic.Int64
	hedgeArrived := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1: // primary: shed once the hedge is racing
			<-hedgeArrived
			w.Header().Set("Retry-After", "30") // a sleep this long would blow the test timeout
			w.WriteHeader(http.StatusTooManyRequests)
		default: // hedge: delivers
			close(hedgeArrived)
			_ = json.NewEncoder(w).Encode(map[string]any{"text": "module m; endmodule"})
		}
	}))
	defer srv.Close()

	done := make(chan result, 1)
	go func() {
		done <- replayOne(srv.Client(), srv.URL, generateRequest{Prompt: "p"}, 5, time.Millisecond, firedTimer)
	}()
	var res result
	select {
	case res = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("replay hung — primary's 429 likely triggered its 30s backoff instead of yielding to the hedge")
	}
	if !res.ok {
		t.Fatal("request failed although the hedge delivered")
	}
	if res.retries != 0 {
		t.Fatalf("retries = %d, want 0 (the winning hedge cancels the shed verdict)", res.retries)
	}
	if res.hedges != 1 {
		t.Fatalf("hedges = %d, want 1", res.hedges)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2", got)
	}
}
