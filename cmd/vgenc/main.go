// Command vgenc is a minimal load client for the vgend daemon: it
// replays a prompt workload over POST /v1/generate with bounded
// concurrency, and — unlike a naive loop — honours the Retry-After
// header vgend attaches to every 429 (admission shed) and 503 (queue
// full) response, backing off exactly as long as the server asked
// before resubmitting. The daemon's load-shedding policies assume
// cooperating clients; this is the cooperating client.
//
// Usage:
//
//	vgenc [-addr http://localhost:8080] [-n 2] [-c 4] [-strategy NAME]
//	      [-model NAME] [-priority high|normal|low] [-client NAME]
//	      [-tree-budget N] [-max-retries 5] [-timeout 30s] [-stream]
//	      [-hedge-after D] [-long-every N] [-long-tokens 192] [prompt ...]
//
// Prompts come from the arguments; with none, a built-in shared-stem
// workload (the PrefixBench families) is replayed — the traffic shape
// the daemon's prefix caches and affinity routing are built for. -n
// repeats the whole list with fresh seeds; -c bounds in-flight
// requests. -stream consumes responses as NDJSON; a shed received after
// partial stream output counts as a failed attempt (backed off and
// resubmitted like any 429/503), never as a success. -hedge-after races
// a duplicate request when the first hasn't answered within the given
// duration — tail-latency insurance against a slow or wedged replica;
// the server's single-flight dedup absorbs the duplicate's decode cost.
// -long-every mixes a long decode into every Nth request — the load
// shape the daemon's continuous scheduler preempts around. Exit status
// is non-zero if any request ultimately failed.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// generateRequest mirrors the serve.GenerateRequest fields vgenc uses.
type generateRequest struct {
	Prompt       string `json:"prompt"`
	Strategy     string `json:"strategy,omitempty"`
	Model        string `json:"model,omitempty"`
	Priority     string `json:"priority,omitempty"`
	Client       string `json:"client,omitempty"`
	TreeBudget   int    `json:"tree_budget,omitempty"`
	MaxNewTokens int    `json:"max_new_tokens,omitempty"`
	Seed         int64  `json:"seed,omitempty"`
	Stream       bool   `json:"stream,omitempty"`
}

// ndjsonLine is one line of a streaming response — the subset of the
// server's streamLine the client needs to classify an attempt.
type ndjsonLine struct {
	Done   bool            `json:"done,omitempty"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// generateResult is the subset of the server's per-generation timing
// the client folds into its load summary: queue wait vs decode wall.
type generateResult struct {
	WallMS  float64 `json:"wall_ms"`
	QueueMS float64 `json:"queue_ms"`
}

// requestIDHeader is echoed by the server on every response — including
// sheds — and keys the request's trace in the server's flight recorder,
// so a failure printed with its ID is debuggable server-side via
// /debug/requests?id=<ID>.
const requestIDHeader = "X-Request-ID"

// reqID formats a response's request ID for failure diagnostics.
func reqID(id string) string {
	if id == "" {
		return ""
	}
	return " (request " + id + ")"
}

// defaultBackoff is the wait applied when a shed response carries no
// parseable Retry-After header (the daemon always sends one, but the
// client must not spin if a proxy strips it).
const defaultBackoff = time.Second

// parseRetryAfter interprets a Retry-After header value: delay-seconds
// ("3") or an HTTP-date, per RFC 9110 §10.2.3. Unparseable or missing
// values fall back to fallback; past dates and negative delays clamp
// to zero (retry immediately — the server's moment has passed).
func parseRetryAfter(value string, now time.Time, fallback time.Duration) time.Duration {
	value = strings.TrimSpace(value)
	if value == "" {
		return fallback
	}
	if secs, err := strconv.Atoi(value); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(value); err == nil {
		d := at.Sub(now)
		if d < 0 {
			return 0
		}
		return d
	}
	return fallback
}

// workload is the built-in shared-stem prompt set (PrefixBench's
// families, inlined so the client has no dependency on the repo's
// internal packages).
func workload() []string {
	stems := []string{
		"Please act as a professional Verilog designer. Create a synchronous FIFO named fifo_unit with clock clk, reset rst, write enable wen and read enable ren",
		"Please act as a professional Verilog designer. Create a module named alu_unit that takes two 8-bit operands a and b and an opcode op",
		"Please act as a professional Verilog designer. Create an up-down counter named cnt_unit with clock clk, reset rst and direction input dir",
	}
	tails := []string{"and a %d-bit data path.", "with a depth of %d entries."}
	var out []string
	for _, stem := range stems {
		for v, tail := range tails {
			out = append(out, stem+" "+fmt.Sprintf(tail, 4+v))
		}
	}
	return out
}

// result is one request's outcome.
type result struct {
	ok      bool
	retries int
	hedges  int
	wall    time.Duration
	// queueMS/decodeMS are the server-reported phase split for the
	// winning attempt (zero against servers that predate queue_ms).
	queueMS  float64
	decodeMS float64
}

// attemptOutcome classifies one HTTP exchange.
type attemptOutcome int

const (
	attemptOK   attemptOutcome = iota // final result received
	attemptShed                       // shed or queue-full: back off and resubmit
	attemptFail                       // terminal: transport error, bad status, broken stream
)

// retryableStreamError reports whether a final NDJSON error line names
// a shed or queue-full condition — the stream-mode equivalents of a 429
// or 503 status, delivered in-band because response headers were
// already on the wire.
func retryableStreamError(msg string) bool {
	return strings.Contains(msg, "queue full") || strings.Contains(msg, "request shed")
}

// attemptResult is one HTTP exchange's verdict: the outcome, the
// backoff hint for sheds, the server-echoed request ID (printed with
// failures so the operator can pull the request's trace from the
// daemon's /debug/requests?id=), and the server-reported phase timings
// on success.
type attemptResult struct {
	outcome  attemptOutcome
	backoff  time.Duration
	id       string
	queueMS  float64
	decodeMS float64
}

// attemptOnce performs one HTTP exchange and classifies it. For
// streaming requests the verdict must look past partial output: step
// lines already received do NOT make the attempt a success — a 429/503
// status, a final NDJSON error line, or a stream that ends without a
// result line all mean the generation was not delivered, however many
// bytes preceded the failure. Only an explicit final result line counts.
func attemptOnce(client *http.Client, addr string, req generateRequest) attemptResult {
	body, _ := json.Marshal(req)
	resp, err := client.Post(addr+"/v1/generate", "application/json", bytes.NewReader(body))
	if err != nil {
		fmt.Fprintf(os.Stderr, "vgenc: %v\n", err)
		return attemptResult{outcome: attemptFail}
	}
	defer resp.Body.Close()
	id := resp.Header.Get(requestIDHeader)
	backoff := parseRetryAfter(resp.Header.Get("Retry-After"), time.Now(), defaultBackoff)

	if !req.Stream {
		switch resp.StatusCode {
		case http.StatusOK:
			var out generateResult
			_ = json.NewDecoder(resp.Body).Decode(&out)
			_, _ = io.Copy(io.Discard, resp.Body)
			return attemptResult{outcome: attemptOK, id: id, queueMS: out.QueueMS, decodeMS: out.WallMS}
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			_, _ = io.Copy(io.Discard, resp.Body)
			return attemptResult{outcome: attemptShed, backoff: backoff, id: id}
		default:
			_, _ = io.Copy(io.Discard, resp.Body)
			fmt.Fprintf(os.Stderr, "vgenc: status %d%s\n", resp.StatusCode, reqID(id))
			return attemptResult{outcome: attemptFail, id: id}
		}
	}

	// Streaming: drain the NDJSON body before judging anything, keeping
	// only the final done line. The step-line count matters solely for
	// diagnostics — partial output is not a result.
	var final ndjsonLine
	sawDone, steps := false, 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var l ndjsonLine
		if json.Unmarshal(line, &l) != nil {
			continue
		}
		if l.Done {
			final, sawDone = l, true
		} else {
			steps++
		}
	}
	switch {
	case resp.StatusCode == http.StatusTooManyRequests, resp.StatusCode == http.StatusServiceUnavailable:
		// Shed after partial stream output is still a shed: the attempt
		// failed, whatever fragment of the decode made it onto the wire.
		if steps > 0 {
			fmt.Fprintf(os.Stderr, "vgenc: shed (status %d) after %d streamed steps; retrying%s\n", resp.StatusCode, steps, reqID(id))
		}
		return attemptResult{outcome: attemptShed, backoff: backoff, id: id}
	case resp.StatusCode != http.StatusOK:
		fmt.Fprintf(os.Stderr, "vgenc: status %d%s\n", resp.StatusCode, reqID(id))
		return attemptResult{outcome: attemptFail, id: id}
	case sawDone && final.Error == "" && final.Result != nil:
		var out generateResult
		_ = json.Unmarshal(final.Result, &out)
		return attemptResult{outcome: attemptOK, id: id, queueMS: out.QueueMS, decodeMS: out.WallMS}
	case sawDone && retryableStreamError(final.Error):
		if steps > 0 {
			fmt.Fprintf(os.Stderr, "vgenc: shed in-stream after %d steps (%s); retrying%s\n", steps, final.Error, reqID(id))
		}
		return attemptResult{outcome: attemptShed, backoff: backoff, id: id}
	case sawDone:
		fmt.Fprintf(os.Stderr, "vgenc: stream error: %s%s\n", final.Error, reqID(id))
		return attemptResult{outcome: attemptFail, id: id}
	default:
		fmt.Fprintf(os.Stderr, "vgenc: stream ended after %d steps without a result line%s\n", steps, reqID(id))
		return attemptResult{outcome: attemptFail, id: id}
	}
}

// attemptHedged performs one logical attempt with optional client-side
// hedging: when the first exchange hasn't concluded within hedgeAfter,
// an identical duplicate is raced against it and the first OK wins. A
// non-OK verdict (shed or terminal failure) only stands once every
// in-flight exchange has returned it — a primary's 429 must not
// pre-empt a hedge that is about to deliver the result. The loser is
// not cancelled: it carries the same (prompt, seed) request, so the
// server's single-flight dedup rides it on the winner's decode. The
// `after` timer is injectable so tests can fire the hedge without real
// sleeps; nil means time.After. Returns the winning attempt's verdict
// and whether a hedge was launched.
func attemptHedged(client *http.Client, addr string, req generateRequest, hedgeAfter time.Duration, after func(time.Duration) <-chan time.Time) (attemptResult, bool) {
	if hedgeAfter <= 0 {
		return attemptOnce(client, addr, req), false
	}
	if after == nil {
		after = time.After
	}
	ch := make(chan attemptResult, 2)
	run := func() {
		ch <- attemptOnce(client, addr, req)
	}
	go run()
	pending, hedged := 1, false
	timer := after(hedgeAfter)
	var last attemptResult
	for {
		select {
		case r := <-ch:
			pending--
			if r.outcome == attemptOK {
				return r, hedged
			}
			// Prefer reporting the retryable verdict: if one exchange
			// shed and the other failed terminally, the request is
			// still worth resubmitting.
			if last.outcome != attemptShed || r.outcome == attemptShed {
				last = r
			}
			if pending > 0 {
				continue // the other exchange may still deliver
			}
			return last, hedged
		case <-timer:
			timer = nil // time.After fires once; a nil channel blocks
			hedged = true
			pending++
			go run()
		}
	}
}

// replayOne submits one generation, backing off per Retry-After on shed
// responses — a 429/503 status or its in-stream equivalent — up to
// maxRetries resubmissions, hedging each attempt after hedgeAfter (0:
// no hedging; after nil: real timer).
func replayOne(client *http.Client, addr string, req generateRequest, maxRetries int, hedgeAfter time.Duration, after func(time.Duration) <-chan time.Time) result {
	start := time.Now()
	var res result
	for {
		a, hedged := attemptHedged(client, addr, req, hedgeAfter, after)
		if hedged {
			res.hedges++
		}
		switch a.outcome {
		case attemptOK:
			res.ok = true
			res.queueMS, res.decodeMS = a.queueMS, a.decodeMS
		case attemptShed:
			if res.retries < maxRetries {
				res.retries++
				time.Sleep(a.backoff)
				continue
			}
			fmt.Fprintf(os.Stderr, "vgenc: gave up after %d retries%s\n", res.retries, reqID(a.id))
		}
		res.wall = time.Since(start)
		return res
	}
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func percentileF(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[int(p*float64(len(sorted)-1))]
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "vgend base URL")
	n := flag.Int("n", 2, "repeats of the whole prompt list (fresh seeds per repeat)")
	c := flag.Int("c", 4, "concurrent in-flight requests")
	strategy := flag.String("strategy", "", "decoding strategy to request (empty: server default)")
	modelName := flag.String("model", "", "backbone to request in fleet mode")
	priority := flag.String("priority", "", "admission class: high, normal or low")
	clientName := flag.String("client", "vgenc", "client name for per-client budget policies")
	treeBudget := flag.Int("tree-budget", 0, "draft-tree node budget to request (0: server default)")
	maxRetries := flag.Int("max-retries", 5, "resubmissions per request after shed responses")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request HTTP timeout")
	hedgeAfter := flag.Duration("hedge-after", 0, "race a duplicate request after this wait (0: no hedging)")
	stream := flag.Bool("stream", false, "request NDJSON streaming responses")
	longEvery := flag.Int("long-every", 0, "make every Nth request a long decode (0: none)")
	longTokens := flag.Int("long-tokens", 192, "max_new_tokens for long decodes (with -long-every)")
	flag.Parse()

	prompts := flag.Args()
	if len(prompts) == 0 {
		prompts = workload()
	}
	var reqs []generateRequest
	for rep := 0; rep < *n; rep++ {
		for i, p := range prompts {
			req := generateRequest{
				Prompt: p, Strategy: *strategy, Model: *modelName,
				Priority: *priority, Client: *clientName, TreeBudget: *treeBudget,
				Seed: int64(rep*1000 + i), Stream: *stream,
			}
			// The mixed load shape the continuous scheduler is built
			// for: mostly short interactive requests with a periodic
			// long decode that the server must preempt around.
			if *longEvery > 0 && len(reqs)%*longEvery == *longEvery-1 {
				req.MaxNewTokens = *longTokens
			}
			reqs = append(reqs, req)
		}
	}

	client := &http.Client{Timeout: *timeout}
	sem := make(chan struct{}, max(*c, 1))
	results := make([]result, len(reqs))
	var wg sync.WaitGroup
	start := time.Now()
	for i, req := range reqs {
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			results[i] = replayOne(client, strings.TrimRight(*addr, "/"), req, *maxRetries, *hedgeAfter, nil)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var ok, failed int
	var retries, hedges atomic.Int64
	var walls []time.Duration
	var queueMS, decodeMS []float64
	for _, r := range results {
		if r.ok {
			ok++
			walls = append(walls, r.wall)
			queueMS = append(queueMS, r.queueMS)
			decodeMS = append(decodeMS, r.decodeMS)
		} else {
			failed++
		}
		retries.Add(int64(r.retries))
		hedges.Add(int64(r.hedges))
	}
	sort.Slice(walls, func(i, j int) bool { return walls[i] < walls[j] })
	sort.Float64s(queueMS)
	sort.Float64s(decodeMS)
	fmt.Printf("requests=%d ok=%d failed=%d retries=%d hedges=%d elapsed=%s rps=%.1f p50=%s p95=%s p99=%s\n",
		len(reqs), ok, failed, retries.Load(), hedges.Load(), elapsed.Round(time.Millisecond),
		float64(ok)/elapsed.Seconds(),
		percentile(walls, 0.50).Round(time.Millisecond), percentile(walls, 0.95).Round(time.Millisecond),
		percentile(walls, 0.99).Round(time.Millisecond))
	// The server-reported phase split: where successful requests spent
	// their time — queued behind the batch, or decoding. Zeros mean the
	// server predates the queue_ms response field.
	fmt.Printf("phases: queue p50=%.2fms p95=%.2fms | decode p50=%.2fms p95=%.2fms\n",
		percentileF(queueMS, 0.50), percentileF(queueMS, 0.95),
		percentileF(decodeMS, 0.50), percentileF(decodeMS, 0.95))
	if failed > 0 {
		os.Exit(1)
	}
}
