// Command vgenc is a minimal load client for the vgend daemon: it
// replays a prompt workload over POST /v1/generate with bounded
// concurrency, and — unlike a naive loop — honours the Retry-After
// header vgend attaches to every 429 (admission shed) and 503 (queue
// full) response, backing off exactly as long as the server asked
// before resubmitting. The daemon's load-shedding policies assume
// cooperating clients; this is the cooperating client.
//
// Usage:
//
//	vgenc [-addr http://localhost:8080] [-n 2] [-c 4] [-strategy NAME]
//	      [-model NAME] [-priority high|normal|low] [-client NAME]
//	      [-tree-budget N] [-max-retries 5] [-timeout 30s] [prompt ...]
//
// Prompts come from the arguments; with none, a built-in shared-stem
// workload (the PrefixBench families) is replayed — the traffic shape
// the daemon's prefix caches and affinity routing are built for. -n
// repeats the whole list with fresh seeds; -c bounds in-flight
// requests. Exit status is non-zero if any request ultimately failed.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// generateRequest mirrors the serve.GenerateRequest fields vgenc uses.
type generateRequest struct {
	Prompt     string `json:"prompt"`
	Strategy   string `json:"strategy,omitempty"`
	Model      string `json:"model,omitempty"`
	Priority   string `json:"priority,omitempty"`
	Client     string `json:"client,omitempty"`
	TreeBudget int    `json:"tree_budget,omitempty"`
	Seed       int64  `json:"seed,omitempty"`
}

// defaultBackoff is the wait applied when a shed response carries no
// parseable Retry-After header (the daemon always sends one, but the
// client must not spin if a proxy strips it).
const defaultBackoff = time.Second

// parseRetryAfter interprets a Retry-After header value: delay-seconds
// ("3") or an HTTP-date, per RFC 9110 §10.2.3. Unparseable or missing
// values fall back to fallback; past dates and negative delays clamp
// to zero (retry immediately — the server's moment has passed).
func parseRetryAfter(value string, now time.Time, fallback time.Duration) time.Duration {
	value = strings.TrimSpace(value)
	if value == "" {
		return fallback
	}
	if secs, err := strconv.Atoi(value); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(value); err == nil {
		d := at.Sub(now)
		if d < 0 {
			return 0
		}
		return d
	}
	return fallback
}

// workload is the built-in shared-stem prompt set (PrefixBench's
// families, inlined so the client has no dependency on the repo's
// internal packages).
func workload() []string {
	stems := []string{
		"Please act as a professional Verilog designer. Create a synchronous FIFO named fifo_unit with clock clk, reset rst, write enable wen and read enable ren",
		"Please act as a professional Verilog designer. Create a module named alu_unit that takes two 8-bit operands a and b and an opcode op",
		"Please act as a professional Verilog designer. Create an up-down counter named cnt_unit with clock clk, reset rst and direction input dir",
	}
	tails := []string{"and a %d-bit data path.", "with a depth of %d entries."}
	var out []string
	for _, stem := range stems {
		for v, tail := range tails {
			out = append(out, stem+" "+fmt.Sprintf(tail, 4+v))
		}
	}
	return out
}

// result is one request's outcome.
type result struct {
	ok      bool
	retries int
	wall    time.Duration
}

// replayOne submits one generation, backing off per Retry-After on 429
// and 503 up to maxRetries resubmissions.
func replayOne(client *http.Client, addr string, req generateRequest, maxRetries int) result {
	start := time.Now()
	var res result
	for {
		body, _ := json.Marshal(req)
		resp, err := client.Post(addr+"/v1/generate", "application/json", bytes.NewReader(body))
		if err != nil {
			fmt.Fprintf(os.Stderr, "vgenc: %v\n", err)
			res.wall = time.Since(start)
			return res
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			res.ok = true
			res.wall = time.Since(start)
			return res
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			if res.retries >= maxRetries {
				fmt.Fprintf(os.Stderr, "vgenc: gave up after %d retries (last status %d)\n", res.retries, resp.StatusCode)
				res.wall = time.Since(start)
				return res
			}
			res.retries++
			time.Sleep(parseRetryAfter(resp.Header.Get("Retry-After"), time.Now(), defaultBackoff))
		default:
			fmt.Fprintf(os.Stderr, "vgenc: status %d\n", resp.StatusCode)
			res.wall = time.Since(start)
			return res
		}
	}
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "vgend base URL")
	n := flag.Int("n", 2, "repeats of the whole prompt list (fresh seeds per repeat)")
	c := flag.Int("c", 4, "concurrent in-flight requests")
	strategy := flag.String("strategy", "", "decoding strategy to request (empty: server default)")
	modelName := flag.String("model", "", "backbone to request in fleet mode")
	priority := flag.String("priority", "", "admission class: high, normal or low")
	clientName := flag.String("client", "vgenc", "client name for per-client budget policies")
	treeBudget := flag.Int("tree-budget", 0, "draft-tree node budget to request (0: server default)")
	maxRetries := flag.Int("max-retries", 5, "resubmissions per request after shed responses")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request HTTP timeout")
	flag.Parse()

	prompts := flag.Args()
	if len(prompts) == 0 {
		prompts = workload()
	}
	var reqs []generateRequest
	for rep := 0; rep < *n; rep++ {
		for i, p := range prompts {
			reqs = append(reqs, generateRequest{
				Prompt: p, Strategy: *strategy, Model: *modelName,
				Priority: *priority, Client: *clientName, TreeBudget: *treeBudget,
				Seed: int64(rep*1000 + i),
			})
		}
	}

	client := &http.Client{Timeout: *timeout}
	sem := make(chan struct{}, max(*c, 1))
	results := make([]result, len(reqs))
	var wg sync.WaitGroup
	start := time.Now()
	for i, req := range reqs {
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			results[i] = replayOne(client, strings.TrimRight(*addr, "/"), req, *maxRetries)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var ok, failed int
	var retries atomic.Int64
	var walls []time.Duration
	for _, r := range results {
		if r.ok {
			ok++
			walls = append(walls, r.wall)
		} else {
			failed++
		}
		retries.Add(int64(r.retries))
	}
	sort.Slice(walls, func(i, j int) bool { return walls[i] < walls[j] })
	fmt.Printf("requests=%d ok=%d failed=%d retries=%d elapsed=%s rps=%.1f p50=%s p95=%s\n",
		len(reqs), ok, failed, retries.Load(), elapsed.Round(time.Millisecond),
		float64(ok)/elapsed.Seconds(),
		percentile(walls, 0.50).Round(time.Millisecond), percentile(walls, 0.95).Round(time.Millisecond))
	if failed > 0 {
		os.Exit(1)
	}
}
