// Command dataprep runs the paper's data-refinement pipeline (Fig. 2)
// over the synthetic raw corpus and reports per-stage statistics.
//
// Usage: dataprep [-items N] [-seed N] [-dump n]
package main

import (
	"flag"
	"fmt"

	"repro/internal/dataset"
)

func main() {
	items := flag.Int("items", 13600, "raw corpus items to generate")
	seed := flag.Int64("seed", 1, "generation seed")
	dump := flag.Int("dump", 0, "print the first n refined examples")
	flag.Parse()

	examples, stats := dataset.BuildCorpus(dataset.CorpusOptions{Seed: *seed, Items: *items})
	fmt.Println("pipeline:", stats)
	fmt.Printf("refined examples: %d\n", len(examples))
	for i := 0; i < *dump && i < len(examples); i++ {
		fmt.Printf("\n--- example %d ---\nprompt: %s\n%s", i, examples[i].Prompt, examples[i].Code)
	}
}
