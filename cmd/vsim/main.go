// Command vsim runs the event-driven simulator (the iverilog
// substitute) on one or more Verilog files. The top module is
// auto-detected (the module nobody instantiates) unless -top is given.
//
// Usage: vsim [-top tb] [-maxtime N] file.v...
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/verilog"
	"repro/internal/verilog/sim"
)

func main() {
	top := flag.String("top", "", "top module (default: auto-detect)")
	maxTime := flag.Uint64("maxtime", 0, "simulated time limit")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: vsim [-top tb] file.v...")
		os.Exit(2)
	}
	var sb strings.Builder
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			os.Exit(1)
		}
		sb.Write(data)
		sb.WriteString("\n")
	}
	f, err := verilog.Parse(sb.String())
	if err != nil {
		fmt.Fprintf(os.Stderr, "parse: %v\n", err)
		os.Exit(1)
	}
	res, err := sim.Run([]*verilog.SourceFile{f}, *top, sim.Options{MaxTime: *maxTime})
	if res != nil {
		fmt.Print(res.Output)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("-- finished at time %d (finish=%v)\n", res.Time, res.Finished)
}
