// Command vgen trains the simulated models on a synthetic corpus and
// generates Verilog for a prompt with the chosen scheme and decoding
// strategy — the quickest way to watch the speculative decoder work.
//
// Usage: vgen [-scheme ours|medusa|ntp] [-strategy NAME] [-tree-budget N]
// [-items N] [-temp T] "prompt"
//
// -strategy overrides the scheme's natural decoding mode with any
// registered strategy (vgen -list-strategies prints them all); e.g.
// "-scheme ntp -strategy prompt-lookup" accelerates the plain NTP
// backbone with self-speculative drafting, and "-strategy medusa-tree"
// drafts a branching candidate tree per step (-tree-budget caps its
// nodes).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/tokenizer"
)

func main() {
	schemeName := flag.String("scheme", "ours", "training scheme: ours, medusa or ntp")
	strategy := flag.String("strategy", "", "decoding strategy by registry name (default: the scheme's natural mode; see -list-strategies)")
	treeBudget := flag.Int("tree-budget", 0, "draft-tree node budget per step for tree strategies (0 = default)")
	items := flag.Int("items", 3400, "corpus items")
	temp := flag.Float64("temp", 0, "sampling temperature (0 = greedy)")
	seed := flag.Int64("seed", 1, "seed")
	listStrategies := flag.Bool("list-strategies", false, "print the registered decoding strategies and exit")
	flag.Parse()
	if *listStrategies {
		fmt.Print(core.StrategyListing())
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, `usage: vgen [-scheme ours] "Create an 8-bit counter named counter_8bit ..."`)
		os.Exit(2)
	}
	prompt := strings.Join(flag.Args(), " ")

	var scheme model.Scheme
	switch *schemeName {
	case "ours":
		scheme = model.SchemeOurs
	case "medusa":
		scheme = model.SchemeMedusa
	case "ntp":
		scheme = model.SchemeNTP
	default:
		fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *schemeName)
		os.Exit(2)
	}

	fmt.Fprintf(os.Stderr, "# building corpus (%d items) and training %v model...\n", *items, scheme)
	examples, stats := dataset.BuildCorpus(dataset.CorpusOptions{Seed: *seed, Items: *items})
	fmt.Fprintf(os.Stderr, "# %s\n", stats)
	var corpus []string
	limit := min(len(examples), 1500)
	for _, ex := range examples[:limit] {
		corpus = append(corpus, model.FormatPrompt(ex.Prompt)+ex.Code)
	}
	cfg := model.CodeLlamaSim()
	tk := tokenizer.Train(corpus, cfg.VocabSize)
	m := model.Train(tk, cfg, scheme, examples)

	if *strategy != "" {
		if _, err := core.ResolveStrategy(*strategy, false); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(2)
		}
	}
	dec := core.NewDecoder(m)
	res := dec.Generate(prompt, core.Options{
		Mode:        core.ModeForScheme(scheme),
		Strategy:    *strategy,
		Temperature: *temp,
		TreeBudget:  *treeBudget,
		Seed:        *seed,
	})
	fmt.Print(res.Text)
	if !strings.HasSuffix(res.Text, "\n") {
		fmt.Println()
	}
	fmt.Fprintf(os.Stderr, "# steps=%d tokens=%d mean-accepted=%.2f simulated=%.0fms (%.1f tok/s)\n",
		res.Steps, len(res.CleanTokens), res.MeanAccepted(), res.SimulatedMS, res.TokensPerSecond())
	if res.TreeNodes > 0 {
		fmt.Fprintf(os.Stderr, "# tree: %d draft nodes proposed, %.0f%% of the node budget\n",
			res.TreeNodes, 100*res.TreeUtilization())
	}
}
