package sim

import (
	"fmt"
	"strings"

	"repro/internal/verilog"
)

// execSysCall dispatches a system task statement.
func (c *procCtx) execSysCall(sc *Scope, v *verilog.SysCall) {
	switch v.Name {
	case "$display", "$strobe":
		c.writeOutput(c.formatArgs(sc, v.Args) + "\n")
	case "$write":
		c.writeOutput(c.formatArgs(sc, v.Args))
	case "$finish", "$stop":
		c.s.finished = true
		panic(finishToken{})
	case "$monitor", "$dumpfile", "$dumpvars", "$timeformat", "$readmemh", "$readmemb":
		// accepted and ignored (not needed by the benchmark contract)
	case "$error", "$fatal", "$warning", "$info":
		c.writeOutput(c.formatArgs(sc, v.Args) + "\n")
		if v.Name == "$fatal" {
			c.s.finished = true
			panic(finishToken{})
		}
	default:
		c.failf("unsupported system task %q", v.Name)
	}
}

func (c *procCtx) writeOutput(text string) {
	if c.s.out.Len()+len(text) > c.s.opts.MaxOutput {
		c.failf("output limit exceeded")
	}
	c.s.out.WriteString(text)
}

// formatArgs renders $display-style arguments: a leading string literal
// acts as a format string; otherwise values print as decimals.
func (c *procCtx) formatArgs(sc *Scope, args []verilog.Expr) string {
	if len(args) == 0 {
		return ""
	}
	if lit, ok := args[0].(*verilog.StringLit); ok {
		return c.formatString(sc, lit.Val, args[1:])
	}
	var parts []string
	for _, a := range args {
		parts = append(parts, c.formatValue(c.evalMust(sc, a), 'd'))
	}
	return strings.Join(parts, " ")
}

// formatString implements the %d/%b/%h/%o/%t/%s/%c/%m/%% directives.
func (c *procCtx) formatString(sc *Scope, format string, args []verilog.Expr) string {
	var sb strings.Builder
	ai := 0
	nextArg := func() (verilog.Expr, bool) {
		if ai < len(args) {
			a := args[ai]
			ai++
			return a, true
		}
		return nil, false
	}
	for i := 0; i < len(format); i++ {
		ch := format[i]
		if ch != '%' {
			sb.WriteByte(ch)
			continue
		}
		i++
		if i >= len(format) {
			sb.WriteByte('%')
			break
		}
		// Skip width/zero flags: %0d, %4b, ...
		for i < len(format) && (format[i] == '0' || (format[i] >= '1' && format[i] <= '9')) {
			i++
		}
		if i >= len(format) {
			break
		}
		spec := format[i]
		switch spec {
		case '%':
			sb.WriteByte('%')
		case 'm':
			sb.WriteString(sc.Name)
		case 't':
			// %t consumes its argument (usually $time) per the LRM.
			if a, ok := nextArg(); ok {
				v := c.evalMust(sc, a)
				sb.WriteString(fmt.Sprintf("%d", v.Uint64()))
			} else {
				sb.WriteString(fmt.Sprintf("%d", c.s.now))
			}
		case 's':
			a, ok := nextArg()
			if !ok {
				break
			}
			if lit, isLit := a.(*verilog.StringLit); isLit {
				sb.WriteString(lit.Val)
				break
			}
			v := c.evalMust(sc, a)
			// Render defined bytes as characters.
			var bytesOut []byte
			for sh := (v.W - 1) / 8 * 8; sh >= 0; sh -= 8 {
				b := byte(v.Uint64() >> uint(sh))
				if b != 0 {
					bytesOut = append(bytesOut, b)
				}
			}
			sb.Write(bytesOut)
		case 'c':
			a, ok := nextArg()
			if !ok {
				break
			}
			v := c.evalMust(sc, a)
			sb.WriteByte(byte(v.Uint64()))
		case 'd', 'b', 'h', 'x', 'o':
			a, ok := nextArg()
			if !ok {
				break
			}
			if spec == 'x' {
				spec = 'h'
			}
			v := c.evalMust(sc, a)
			sb.WriteString(c.formatValue(v, spec))
		default:
			// Unknown directive: emit verbatim.
			sb.WriteByte('%')
			sb.WriteByte(spec)
		}
	}
	return sb.String()
}

// formatValue renders a 4-state value in the given radix.
func (c *procCtx) formatValue(v Value, radix byte) string {
	switch radix {
	case 'd':
		if v.HasXZ() {
			if v.B&mask(v.W) == mask(v.W) && v.A&mask(v.W) == 0 {
				return "z"
			}
			return "x"
		}
		if v.Signed {
			return fmt.Sprintf("%d", v.Int64())
		}
		return fmt.Sprintf("%d", v.Uint64())
	case 'b':
		var sb strings.Builder
		for i := v.W - 1; i >= 0; i-- {
			a, b := v.Bit(i)
			switch {
			case b == 0 && a == 0:
				sb.WriteByte('0')
			case b == 0 && a == 1:
				sb.WriteByte('1')
			case b == 1 && a == 0:
				sb.WriteByte('z')
			default:
				sb.WriteByte('x')
			}
		}
		return sb.String()
	case 'o':
		return c.formatGrouped(v, 3)
	case 'h':
		return c.formatGrouped(v, 4)
	}
	return v.String()
}

// formatGrouped renders hex/octal digits; a group with any x (z) bit
// prints x (z).
func (c *procCtx) formatGrouped(v Value, bits int) string {
	n := (v.W + bits - 1) / bits
	var sb strings.Builder
	for g := n - 1; g >= 0; g-- {
		var da, db uint64
		for i := bits - 1; i >= 0; i-- {
			idx := g*bits + i
			var a, b uint64
			if idx < v.W {
				a, b = v.Bit(idx)
			}
			da = da<<1 | a
			db = db<<1 | b
		}
		switch {
		case db == 0:
			fmt.Fprintf(&sb, "%x", da)
		case da&db == db && da|db == da && da == db && da != 0:
			// all unknown bits with a=1: x
			sb.WriteByte('x')
		case da == 0:
			sb.WriteByte('z')
		default:
			sb.WriteByte('x')
		}
	}
	return sb.String()
}
