package sim

import (
	"repro/internal/verilog"
)

// nbaUpdate is a pending non-blocking assignment: target coordinates are
// resolved at schedule time per the LRM; the write lands in the NBA
// region of the current time slot (or a later slot for #d <= delays).
type nbaUpdate struct {
	sig  *Signal
	word int
	mask uint64 // bits of the word to overwrite
	a, b uint64 // new plane bits, pre-shifted
	noop bool   // invalid index at schedule time: discard silently
}

// store writes val to an lvalue. When nba is true the write is deferred
// to the NBA region; otherwise it takes effect immediately (blocking
// assignment / continuous assignment semantics).
func (s *Simulator) store(sc *Scope, lhs verilog.Expr, val Value, nba bool) error {
	upd, err := s.resolveStore(sc, lhs, val)
	if err != nil {
		return err
	}
	for _, u := range upd {
		if u.noop {
			continue
		}
		if nba {
			s.nbaQ = append(s.nbaQ, u)
		} else {
			s.applyUpdate(u)
		}
	}
	return nil
}

// resolveStore flattens an lvalue into word-level masked updates.
func (s *Simulator) resolveStore(sc *Scope, lhs verilog.Expr, val Value) ([]nbaUpdate, error) {
	switch v := lhs.(type) {
	case *verilog.Ident:
		sig := sc.lookup(v.Name)
		if sig == nil {
			return nil, rte(sc.Name, "unknown assignment target %q", v.Name)
		}
		if sig.IsArray {
			return nil, rte(sc.Name, "cannot assign whole memory %q", v.Name)
		}
		ev := val.Extend(sig.W)
		return []nbaUpdate{{sig: sig, word: 0, mask: mask(sig.W), a: ev.A & mask(sig.W), b: ev.B & mask(sig.W)}}, nil

	case *verilog.Index:
		id, ok := v.X.(*verilog.Ident)
		if !ok {
			return nil, rte(sc.Name, "unsupported nested lvalue index")
		}
		sig := sc.lookup(id.Name)
		if sig == nil {
			return nil, rte(sc.Name, "unknown assignment target %q", id.Name)
		}
		idx, err := s.eval(sc, v.Idx)
		if err != nil {
			return nil, err
		}
		if idx.HasXZ() {
			return []nbaUpdate{{noop: true}}, nil
		}
		i := int(idx.Int64())
		if sig.IsArray {
			wi := sig.wordIndex(i)
			if wi < 0 {
				return []nbaUpdate{{noop: true}}, nil
			}
			ev := val.Extend(sig.W)
			return []nbaUpdate{{sig: sig, word: wi, mask: mask(sig.W), a: ev.A & mask(sig.W), b: ev.B & mask(sig.W)}}, nil
		}
		off := sig.bitOffset(i)
		if off < 0 {
			return []nbaUpdate{{noop: true}}, nil
		}
		a, b := val.Bit(0)
		return []nbaUpdate{{sig: sig, word: 0, mask: 1 << uint(off), a: a << uint(off), b: b << uint(off)}}, nil

	case *verilog.RangeSel:
		id, ok := v.X.(*verilog.Ident)
		if !ok {
			return nil, rte(sc.Name, "unsupported nested lvalue range select")
		}
		sig := sc.lookup(id.Name)
		if sig == nil {
			return nil, rte(sc.Name, "unknown assignment target %q", id.Name)
		}
		if sig.IsArray {
			return nil, rte(sc.Name, "part-select on memory %q", id.Name)
		}
		msbV, err := s.eval(sc, v.MSB)
		if err != nil {
			return nil, err
		}
		lsbV, err := s.eval(sc, v.LSB)
		if err != nil {
			return nil, err
		}
		if msbV.HasXZ() || lsbV.HasXZ() {
			return []nbaUpdate{{noop: true}}, nil
		}
		hi := sig.bitOffset(int(msbV.Int64()))
		lo := sig.bitOffset(int(lsbV.Int64()))
		if hi < lo {
			hi, lo = lo, hi
		}
		if hi < 0 || lo < 0 {
			return []nbaUpdate{{noop: true}}, nil
		}
		w := hi - lo + 1
		ev := val.Extend(w)
		m := mask(w) << uint(lo)
		return []nbaUpdate{{sig: sig, word: 0, mask: m, a: (ev.A & mask(w)) << uint(lo), b: (ev.B & mask(w)) << uint(lo)}}, nil

	case *verilog.Concat:
		// MSB-first split of val across the parts.
		total := 0
		widths := make([]int, len(v.Parts))
		for i, p := range v.Parts {
			w, err := s.lvalueWidth(sc, p)
			if err != nil {
				return nil, err
			}
			widths[i] = w
			total += w
		}
		if total > 64 {
			return nil, rte(sc.Name, "lvalue concatenation wider than 64 bits")
		}
		ev := val.Extend(total)
		var out []nbaUpdate
		pos := total
		for i, p := range v.Parts {
			pos -= widths[i]
			part := Slice(ev, pos+widths[i]-1, pos)
			upd, err := s.resolveStore(sc, p, part)
			if err != nil {
				return nil, err
			}
			out = append(out, upd...)
		}
		return out, nil
	}
	return nil, rte(sc.Name, "unsupported lvalue %T", lhs)
}

// lvalueWidth returns the store width of an lvalue part.
func (s *Simulator) lvalueWidth(sc *Scope, lhs verilog.Expr) (int, error) {
	switch v := lhs.(type) {
	case *verilog.Ident:
		sig := sc.lookup(v.Name)
		if sig == nil {
			return 0, rte(sc.Name, "unknown assignment target %q", v.Name)
		}
		return sig.W, nil
	case *verilog.Index:
		if id, ok := v.X.(*verilog.Ident); ok {
			if sig := sc.lookup(id.Name); sig != nil && sig.IsArray {
				return sig.W, nil
			}
		}
		return 1, nil
	case *verilog.RangeSel:
		msbV, err := s.eval(sc, v.MSB)
		if err != nil {
			return 0, err
		}
		lsbV, err := s.eval(sc, v.LSB)
		if err != nil {
			return 0, err
		}
		if msbV.HasXZ() || lsbV.HasXZ() {
			return 0, rte(sc.Name, "x/z part-select bounds on lvalue")
		}
		hi, lo := int(msbV.Int64()), int(lsbV.Int64())
		if hi < lo {
			hi, lo = lo, hi
		}
		return hi - lo + 1, nil
	case *verilog.Concat:
		total := 0
		for _, p := range v.Parts {
			w, err := s.lvalueWidth(sc, p)
			if err != nil {
				return 0, err
			}
			total += w
		}
		return total, nil
	}
	return 0, rte(sc.Name, "unsupported lvalue %T", lhs)
}

// applyUpdate performs a masked word write and propagates the change.
func (s *Simulator) applyUpdate(u nbaUpdate) {
	if u.noop {
		return
	}
	cur := u.sig.Words[u.word]
	newA := cur.A&^u.mask | u.a
	newB := cur.B&^u.mask | u.b
	if newA == cur.A && newB == cur.B {
		return
	}
	old := cur
	cur.A, cur.B = newA, newB
	u.sig.Words[u.word] = cur
	s.propagate(u.sig, old, cur)
}

// setSignal writes a whole word of a signal and propagates.
func (s *Simulator) setSignal(sig *Signal, word int, v Value) {
	cur := sig.Words[word]
	ev := v.Extend(sig.W)
	m := mask(sig.W)
	if ev.A&m == cur.A&m && ev.B&m == cur.B&m {
		return
	}
	old := cur
	cur.A, cur.B = ev.A&m, ev.B&m
	sig.Words[word] = cur
	s.propagate(sig, old, cur)
}

// propagate queues combinational fanout and wakes procedural waiters
// whose sensitivity matches the change.
func (s *Simulator) propagate(sig *Signal, old, new Value) {
	for _, cp := range sig.combs {
		if !cp.queued {
			cp.queued = true
			s.combQ = append(s.combQ, cp)
		}
	}
	if len(sig.watchers) == 0 {
		return
	}
	kept := sig.watchers[:0]
	for _, w := range sig.watchers {
		if w.fired {
			continue // lazily drop stale entries
		}
		if s.checkWaiter(w, sig) {
			w.fired = true
			s.runnable = append(s.runnable, w.proc)
			continue
		}
		kept = append(kept, w)
	}
	sig.watchers = kept
}

// checkWaiter re-evaluates the sensitivity items of w that depend on sig
// and reports whether any of them triggered.
func (s *Simulator) checkWaiter(w *waiter, sig *Signal) bool {
	trig := false
	for _, item := range w.items {
		depends := false
		for _, d := range item.deps {
			if d == sig {
				depends = true
				break
			}
		}
		if !depends {
			continue
		}
		if item.anyChange {
			trig = true
			continue
		}
		nv, err := s.eval(item.sc, item.expr)
		if err != nil {
			continue // conservatively ignore: the process re-raises on wake
		}
		if edgeTriggered(item.edge, item.last, nv) {
			trig = true
		}
		item.last = nv
	}
	return trig
}

// edgeTriggered implements LRM edge semantics on the LSB for posedge and
// negedge, and any-change semantics for level sensitivity.
func edgeTriggered(edge int, old, new Value) bool {
	switch edge {
	case verilog.EdgeLevel:
		m := mask(old.W)
		if new.W > old.W {
			m = mask(new.W)
		}
		return old.A&m != new.A&m || old.B&m != new.B&m
	case verilog.EdgePos:
		oa, ob := old.Bit(0)
		na, nb := new.Bit(0)
		oldIs0 := oa == 0 && ob == 0
		oldIsXZ := ob == 1
		newIs1 := na == 1 && nb == 0
		newIsXZ := nb == 1
		return (oldIs0 && (newIs1 || newIsXZ)) || (oldIsXZ && newIs1)
	case verilog.EdgeNeg:
		oa, ob := old.Bit(0)
		na, nb := new.Bit(0)
		oldIs1 := oa == 1 && ob == 0
		oldIsXZ := ob == 1
		newIs0 := na == 0 && nb == 0
		newIsXZ := nb == 1
		return (oldIs1 && (newIs0 || newIsXZ)) || (oldIsXZ && newIs0)
	}
	return false
}
