// Package sim implements an event-driven simulator for the Verilog
// subset parsed by the parent verilog package: 4-state values up to 64
// bits, delta cycles with a separate non-blocking-assignment region,
// always/initial/assign processes, module hierarchy and the system tasks
// needed by self-checking testbenches ($display, $time, $finish, ...).
//
// It is the repository's substitute for Icarus Verilog in the paper's
// functional evaluation: a generated design is "functionally correct"
// when its benchmark testbench runs to completion and prints TEST PASSED.
package sim

import (
	"fmt"
	"strings"
)

// Value is a 4-state logic vector of width W (1..64). Bit i is decoded
// from the planes as: (A,B) = (0,0) -> 0, (1,0) -> 1, (0,1) -> z,
// (1,1) -> x. Signed records whether the value originated from a signed
// context; it controls extension and ordering.
type Value struct {
	W      int
	A, B   uint64
	Signed bool
}

func mask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}

// X returns an all-x value of width w.
func X(w int) Value { return Value{W: w, A: mask(w), B: mask(w)} }

// Z returns an all-z value of width w.
func Z(w int) Value { return Value{W: w, A: 0, B: mask(w)} }

// FromUint64 builds a fully defined value from the low w bits of v.
func FromUint64(v uint64, w int) Value { return Value{W: w, A: v & mask(w)} }

// FromInt64 builds a signed value from v truncated to w bits.
func FromInt64(v int64, w int) Value {
	return Value{W: w, A: uint64(v) & mask(w), Signed: true}
}

// Bool converts a truth value to a 1-bit Value.
func Bool(b bool) Value {
	if b {
		return FromUint64(1, 1)
	}
	return FromUint64(0, 1)
}

// IsDefined reports whether no bit is x or z.
func (v Value) IsDefined() bool { return v.B == 0 }

// HasXZ reports whether any bit is x or z.
func (v Value) HasXZ() bool { return v.B != 0 }

// Uint64 returns the defined bits of v as an unsigned integer
// (x/z bits read as 0).
func (v Value) Uint64() uint64 { return v.A &^ v.B & mask(v.W) }

// Int64 returns v as an integer. Signed values sign-extend from bit
// W-1; unsigned values convert directly (an unsigned 4'b1000 is 8, not
// -8 — this matters for memory addressing).
func (v Value) Int64() int64 {
	u := v.Uint64()
	if v.Signed && v.W < 64 && u&(uint64(1)<<uint(v.W-1)) != 0 {
		u |= ^mask(v.W)
	}
	return int64(u)
}

// Truth implements Verilog truthiness: true when any bit is a defined 1;
// unknown (x) when no defined 1 exists but some bit is x/z.
// The second result reports whether the truth value is known.
func (v Value) Truth() (bool, bool) {
	if v.A&^v.B&mask(v.W) != 0 {
		return true, true
	}
	if v.B&mask(v.W) != 0 {
		return false, false
	}
	return false, true
}

// Bit returns the (a,b) planes of bit i, or x when out of range.
func (v Value) Bit(i int) (uint64, uint64) {
	if i < 0 || i >= v.W {
		return 1, 1
	}
	return v.A >> uint(i) & 1, v.B >> uint(i) & 1
}

// Extend returns v extended or truncated to width w. Signed values
// sign-extend (replicating the MSB's 4-state planes); unsigned values
// zero-extend.
func (v Value) Extend(w int) Value {
	if w == v.W {
		return v
	}
	out := Value{W: w, Signed: v.Signed}
	if w < v.W {
		out.A = v.A & mask(w)
		out.B = v.B & mask(w)
		return out
	}
	out.A, out.B = v.A&mask(v.W), v.B&mask(v.W)
	if v.W > 0 {
		ta, tb := v.Bit(v.W - 1)
		if v.Signed || tb == 1 {
			// Sign-extend; x/z MSBs also propagate per LRM.
			ext := mask(w) &^ mask(v.W)
			if tb == 1 {
				out.B |= ext
				if ta == 1 {
					out.A |= ext
				}
			} else if v.Signed && ta == 1 {
				out.A |= ext
			}
		}
	}
	return out
}

// Eq234 reports exact 4-state equality (the === operator).
func (v Value) EqExact(o Value) bool {
	w := v.W
	if o.W > w {
		w = o.W
	}
	a := v.Extend(w)
	b := o.Extend(w)
	return a.A&mask(w) == b.A&mask(w) && a.B&mask(w) == b.B&mask(w)
}

// String renders the value as a binary literal for diagnostics.
func (v Value) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d'b", v.W)
	for i := v.W - 1; i >= 0; i-- {
		a, b := v.Bit(i)
		switch {
		case b == 0 && a == 0:
			sb.WriteByte('0')
		case b == 0 && a == 1:
			sb.WriteByte('1')
		case b == 1 && a == 0:
			sb.WriteByte('z')
		default:
			sb.WriteByte('x')
		}
	}
	return sb.String()
}

// --- Bitwise operations with x/z propagation ---

// Not computes ~v; x/z bits produce x.
func Not(v Value) Value {
	m := mask(v.W)
	a := ^v.A & m
	// x/z inputs -> x output (a=1,b=1).
	a |= v.B
	return Value{W: v.W, A: a, B: v.B}
}

func binWidth(x, y Value) int {
	if x.W > y.W {
		return x.W
	}
	return y.W
}

// And computes x & y with 0-dominance: 0 & anything = 0.
func And(x, y Value) Value {
	w := binWidth(x, y)
	x, y = x.Extend(w), y.Extend(w)
	m := mask(w)
	defX, defY := ^x.B&m, ^y.B&m
	zeroX := defX &^ x.A // defined zeros of x
	zeroY := defY &^ y.A
	ones := (x.A & defX) & (y.A & defY)
	zero := zeroX | zeroY
	unk := m &^ (ones | zero)
	return Value{W: w, A: ones | unk, B: unk}
}

// Or computes x | y with 1-dominance: 1 | anything = 1.
func Or(x, y Value) Value {
	w := binWidth(x, y)
	x, y = x.Extend(w), y.Extend(w)
	m := mask(w)
	defX, defY := ^x.B&m, ^y.B&m
	ones := (x.A & defX) | (y.A & defY)
	zero := (defX &^ x.A) & (defY &^ y.A)
	unk := m &^ (ones | zero)
	return Value{W: w, A: ones | unk, B: unk}
}

// Xor computes x ^ y; any x/z bit produces x.
func Xor(x, y Value) Value {
	w := binWidth(x, y)
	x, y = x.Extend(w), y.Extend(w)
	m := mask(w)
	unk := (x.B | y.B) & m
	a := (x.A ^ y.A) & m
	a = a&^unk | unk
	return Value{W: w, A: a, B: unk}
}

// Xnor computes ~(x ^ y).
func Xnor(x, y Value) Value { return Not(Xor(x, y)) }

// --- Reductions ---

// ReduceAnd returns &v as a 1-bit value.
func ReduceAnd(v Value) Value {
	m := mask(v.W)
	if (^v.B&m)&^v.A != 0 { // any defined 0
		return Bool(false)
	}
	if v.B&m != 0 {
		return X(1)
	}
	return Bool(v.A&m == m)
}

// ReduceOr returns |v as a 1-bit value.
func ReduceOr(v Value) Value {
	m := mask(v.W)
	if v.A&^v.B&m != 0 { // any defined 1
		return Bool(true)
	}
	if v.B&m != 0 {
		return X(1)
	}
	return Bool(false)
}

// ReduceXor returns ^v as a 1-bit value.
func ReduceXor(v Value) Value {
	m := mask(v.W)
	if v.B&m != 0 {
		return X(1)
	}
	n := 0
	for bits := v.A & m; bits != 0; bits &= bits - 1 {
		n++
	}
	return Bool(n%2 == 1)
}

// --- Arithmetic (x/z anywhere poisons the result, per LRM) ---

func bothSigned(x, y Value) bool { return x.Signed && y.Signed }

// Add computes x + y modulo 2^w.
func Add(x, y Value) Value {
	w := binWidth(x, y)
	if x.HasXZ() || y.HasXZ() {
		return X(w)
	}
	sg := bothSigned(x, y)
	xe, ye := x.Extend(w), y.Extend(w)
	return Value{W: w, A: (xe.A + ye.A) & mask(w), Signed: sg}
}

// Sub computes x - y modulo 2^w.
func Sub(x, y Value) Value {
	w := binWidth(x, y)
	if x.HasXZ() || y.HasXZ() {
		return X(w)
	}
	sg := bothSigned(x, y)
	xe, ye := x.Extend(w), y.Extend(w)
	return Value{W: w, A: (xe.A - ye.A) & mask(w), Signed: sg}
}

// Neg computes -x modulo 2^w.
func Neg(x Value) Value {
	if x.HasXZ() {
		return X(x.W)
	}
	return Value{W: x.W, A: (-x.A) & mask(x.W), Signed: x.Signed}
}

// Mul computes x * y modulo 2^w.
func Mul(x, y Value) Value {
	w := binWidth(x, y)
	if x.HasXZ() || y.HasXZ() {
		return X(w)
	}
	sg := bothSigned(x, y)
	if sg {
		return Value{W: w, A: uint64(x.Extend(w).Int64()*y.Extend(w).Int64()) & mask(w), Signed: true}
	}
	return Value{W: w, A: (x.Uint64() * y.Uint64()) & mask(w)}
}

// Div computes x / y; division by zero yields x (all-unknown).
func Div(x, y Value) Value {
	w := binWidth(x, y)
	if x.HasXZ() || y.HasXZ() || y.Uint64() == 0 {
		return X(w)
	}
	if bothSigned(x, y) {
		return Value{W: w, A: uint64(x.Extend(w).Int64()/y.Extend(w).Int64()) & mask(w), Signed: true}
	}
	return Value{W: w, A: (x.Uint64() / y.Uint64()) & mask(w)}
}

// Mod computes x % y; modulo by zero yields x (all-unknown).
func Mod(x, y Value) Value {
	w := binWidth(x, y)
	if x.HasXZ() || y.HasXZ() || y.Uint64() == 0 {
		return X(w)
	}
	if bothSigned(x, y) {
		return Value{W: w, A: uint64(x.Extend(w).Int64()%y.Extend(w).Int64()) & mask(w), Signed: true}
	}
	return Value{W: w, A: (x.Uint64() % y.Uint64()) & mask(w)}
}

// Pow computes x ** y (unsigned exponentiation modulo 2^w).
func Pow(x, y Value) Value {
	w := binWidth(x, y)
	if x.HasXZ() || y.HasXZ() {
		return X(w)
	}
	base := x.Uint64()
	exp := y.Uint64()
	r := uint64(1)
	for i := uint64(0); i < exp && i < 64; i++ {
		r = r * base & mask(w)
	}
	return Value{W: w, A: r & mask(w)}
}

// --- Shifts ---

// Shl computes x << n.
func Shl(x, n Value) Value {
	if n.HasXZ() {
		return X(x.W)
	}
	sh := n.Uint64()
	if sh >= 64 {
		return Value{W: x.W}
	}
	return Value{W: x.W, A: x.A << sh & mask(x.W), B: x.B << sh & mask(x.W), Signed: x.Signed}
}

// Shr computes x >> n (logical).
func Shr(x, n Value) Value {
	if n.HasXZ() {
		return X(x.W)
	}
	sh := n.Uint64()
	if sh >= 64 {
		return Value{W: x.W}
	}
	m := mask(x.W)
	return Value{W: x.W, A: (x.A & m) >> sh, B: (x.B & m) >> sh, Signed: x.Signed}
}

// Sshr computes x >>> n: arithmetic when x is signed, else logical.
func Sshr(x, n Value) Value {
	if !x.Signed {
		return Shr(x, n)
	}
	if n.HasXZ() {
		return X(x.W)
	}
	sh := n.Uint64()
	if sh >= uint64(x.W) {
		sh = uint64(x.W)
	}
	ta, tb := x.Bit(x.W - 1)
	out := Shr(x, FromUint64(sh, 32))
	if sh > 0 {
		ext := mask(x.W) &^ mask(x.W-int(sh))
		if tb == 1 {
			out.B |= ext
			if ta == 1 {
				out.A |= ext
			}
		} else if ta == 1 {
			out.A |= ext
		}
	}
	out.Signed = true
	return out
}

// --- Comparisons ---

// EqLogical computes == (x/z anywhere yields x).
func EqLogical(x, y Value) Value {
	if x.HasXZ() || y.HasXZ() {
		return X(1)
	}
	w := binWidth(x, y)
	if bothSigned(x, y) {
		return Bool(x.Extend(w).Int64() == y.Extend(w).Int64())
	}
	return Bool(x.Extend(w).Uint64() == y.Extend(w).Uint64())
}

// Less computes x < y (x/z anywhere yields x).
func Less(x, y Value) Value {
	if x.HasXZ() || y.HasXZ() {
		return X(1)
	}
	w := binWidth(x, y)
	if bothSigned(x, y) {
		return Bool(x.Extend(w).Int64() < y.Extend(w).Int64())
	}
	return Bool(x.Extend(w).Uint64() < y.Extend(w).Uint64())
}

// Merge implements the ternary operator's x-merge: where the two arms
// agree on a defined bit the result keeps it, otherwise the bit is x.
func Merge(x, y Value) Value {
	w := binWidth(x, y)
	xe, ye := x.Extend(w), y.Extend(w)
	m := mask(w)
	same := ^(xe.A ^ ye.A) & ^(xe.B | ye.B) & m
	a := xe.A & same
	unk := m &^ same
	return Value{W: w, A: a | unk, B: unk}
}

// Concat joins parts MSB-first into one vector.
func Concat(parts []Value) Value {
	w := 0
	for _, p := range parts {
		w += p.W
	}
	if w > 64 {
		return X(64)
	}
	out := Value{W: w}
	sh := w
	for _, p := range parts {
		sh -= p.W
		out.A |= (p.A & mask(p.W)) << uint(sh)
		out.B |= (p.B & mask(p.W)) << uint(sh)
	}
	return out
}

// Slice extracts bits [hi:lo] of v (hi >= lo); out-of-range bits read x.
func Slice(v Value, hi, lo int) Value {
	w := hi - lo + 1
	if w <= 0 {
		return X(1)
	}
	if w > 64 {
		return X(64)
	}
	out := Value{W: w}
	for i := 0; i < w; i++ {
		a, b := v.Bit(lo + i)
		out.A |= a << uint(i)
		out.B |= b << uint(i)
	}
	return out
}
