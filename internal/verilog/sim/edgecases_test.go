package sim

import (
	"strings"
	"testing"
)

// Edge cases the benchmark contract leans on: testbench system tasks
// ($display/$finish), X/Z propagation through conditionals, and
// zero-delay (#0) event ordering. Each test pins behavior a generated
// design or testbench could plausibly trip over; a regression here
// silently corrupts the sim-pass-rate column of the quality tier.

// TestFinishHaltsFreeRunningClock pins $finish against the classic
// free-running clock: without the halt the always block toggles
// forever, so the simulation ending at the $finish time with Finished
// set is the whole reason testbenches terminate at all.
func TestFinishHaltsFreeRunningClock(t *testing.T) {
	r := mustRun(t, `
module tb;
    reg clk = 0;
    integer edges = 0;
    always #5 clk = ~clk;
    always @(posedge clk) edges = edges + 1;
    initial begin
        #23;
        $display("edges=%0d", edges);
        $finish;
    end
endmodule`, "tb")
	if !r.Finished {
		t.Fatal("Finished not set after $finish")
	}
	if r.Time != 23 {
		t.Fatalf("simulation ended at %d, want 23", r.Time)
	}
	if !strings.Contains(r.Output, "edges=2") {
		t.Fatalf("posedges at 5 and 15 expected before #23: output %q", r.Output)
	}
}

// TestFinishStopsStatementsAfterIt pins that $finish aborts the rest
// of its own block and every other process immediately: nothing
// scheduled after the halt may write output.
func TestFinishStopsStatementsAfterIt(t *testing.T) {
	r := mustRun(t, `
module tb;
    initial begin
        #10 $display("late");
    end
    initial begin
        $display("TEST PASSED");
        $finish;
        $display("unreachable");
    end
endmodule`, "tb")
	if !r.Passed() {
		t.Fatalf("output %q missing TEST PASSED", r.Output)
	}
	for _, banned := range []string{"unreachable", "late"} {
		if strings.Contains(r.Output, banned) {
			t.Errorf("output after $finish leaked: %q in %q", banned, r.Output)
		}
	}
}

// TestDisplayVersusWriteNewlines pins the newline contract the
// pass-marker scan depends on: $display appends one, $write does not,
// and messages land in simulation-time order.
func TestDisplayVersusWriteNewlines(t *testing.T) {
	r := mustRun(t, `
module tb;
    initial begin
        $write("TEST ");
        $write("PAS");
        $display("SED");
        #5 $display("t=%0t", $time);
        $finish;
    end
endmodule`, "tb")
	if !strings.Contains(r.Output, "TEST PASSED\nt=5\n") {
		t.Fatalf("output %q, want writes joined on one line then timed line", r.Output)
	}
}

// TestXConditionTakesElseBranch pins if-statement semantics on
// unknowns: a condition evaluating to x (an uninitialized reg) is not
// true, so the else branch runs — the behavior reset-polling
// testbenches rely on before the first clock edge.
func TestXConditionTakesElseBranch(t *testing.T) {
	r := mustRun(t, `
module tb;
    reg u;
    reg [1:0] y;
    initial begin
        if (u) y = 2'd1;
        else y = 2'd2;
        $display("y=%0d u=%b", y, u);
        $finish;
    end
endmodule`, "tb")
	if !strings.Contains(r.Output, "y=2 u=x") {
		t.Fatalf("output %q, want else branch on x condition", r.Output)
	}
}

// TestTernaryXMergesArms pins conditional-expression semantics on
// unknowns: an x selector merges the two arms bitwise — bits where the
// arms agree stay defined, bits where they differ go x. Both an
// uninitialized reg (x) and an undriven wire (z) must select this way.
func TestTernaryXMergesArms(t *testing.T) {
	r := mustRun(t, `
module tb;
    reg u;
    wire undriven;
    wire [3:0] agree = u ? 4'b1010 : 4'b1010;
    wire [3:0] mixed = u ? 4'b1100 : 4'b1010;
    wire [3:0] viaz  = undriven ? 4'b0110 : 4'b0101;
    initial begin
        #1 $display("agree=%b mixed=%b viaz=%b", agree, mixed, viaz);
        $finish;
    end
endmodule`, "tb")
	if !strings.Contains(r.Output, "agree=1010 mixed=1xx0 viaz=01xx") {
		t.Fatalf("output %q, want bitwise arm merge under x/z selectors", r.Output)
	}
}

// TestCaseSelectorWithXZ pins case-statement semantics on unknowns: a
// plain case compares with === (an x selector matches an x item, not
// the default), while casex treats x bits as wildcards and matches the
// first arm.
func TestCaseSelectorWithXZ(t *testing.T) {
	r := mustRun(t, `
module tb;
    reg u;
    reg [7:0] exact, wild;
    initial begin
        case (u)
            1'b0: exact = "0";
            1'b1: exact = "1";
            1'bx: exact = "x";
            default: exact = "d";
        endcase
        casex (u)
            1'b0: wild = "0";
            1'b1: wild = "1";
            default: wild = "d";
        endcase
        $display("exact=%c wild=%c", exact, wild);
        $finish;
    end
endmodule`, "tb")
	if !strings.Contains(r.Output, "exact=x wild=0") {
		t.Fatalf("output %q, want === match for case and wildcard for casex", r.Output)
	}
}

// TestZeroDelayOrderingSeesSameTimeWrites pins #0 semantics: a process
// that yields with #0 resumes in the same time slot but after the
// currently runnable processes, so it observes time-zero blocking
// writes made by sibling initial blocks — in either declaration order.
func TestZeroDelayOrderingSeesSameTimeWrites(t *testing.T) {
	r := mustRun(t, `
module tb;
    reg before_flag = 0;
    reg after_flag = 0;
    initial begin
        #0;
        $display("sees before=%b after=%b at t=%0t", before_flag, after_flag, $time);
        $finish;
    end
    initial before_flag = 1;
    initial after_flag = 1;
endmodule`, "tb")
	if !strings.Contains(r.Output, "sees before=1 after=1 at t=0") {
		t.Fatalf("output %q, want #0 resume after same-time blocking writes", r.Output)
	}
}

// TestZeroDelayObservesNonblockingUpdates pins the region ordering of
// the scheduler: nonblocking updates scheduled in the active region
// apply once the slot's runnable processes drain, and a #0 yield lands
// after that — so the resumed process reads the post-NBA value while a
// same-slot blocking read still sees the old one.
func TestZeroDelayObservesNonblockingUpdates(t *testing.T) {
	r := mustRun(t, `
module tb;
    reg [3:0] q = 4'd0;
    initial begin
        q <= 4'd7;
        $display("immediate q=%0d", q);
        #0 $display("after-zero q=%0d", q);
        $finish;
    end
endmodule`, "tb")
	if !strings.Contains(r.Output, "immediate q=0") {
		t.Fatalf("output %q: blocking read overtook the nonblocking update", r.Output)
	}
	if !strings.Contains(r.Output, "after-zero q=7") {
		t.Fatalf("output %q: #0 resumed before the NBA region applied", r.Output)
	}
}
