package sim

import (
	"strings"
	"testing"

	"repro/internal/verilog"
)

func mustRun(t *testing.T, src, top string) *Result {
	t.Helper()
	r, err := RunSource(src, top, Options{})
	if err != nil {
		t.Fatalf("RunSource: %v (output so far: %q)", err, outOf(r))
	}
	return r
}

func outOf(r *Result) string {
	if r == nil {
		return ""
	}
	return r.Output
}

func TestValueBasics(t *testing.T) {
	v := FromUint64(0b1010, 4)
	if v.Uint64() != 10 || v.HasXZ() {
		t.Fatalf("v = %v", v)
	}
	x := X(4)
	if !x.HasXZ() || x.IsDefined() {
		t.Fatalf("x = %v", x)
	}
	if got := v.String(); got != "4'b1010" {
		t.Errorf("String = %q", got)
	}
	if got := X(2).String(); got != "2'bxx" {
		t.Errorf("X String = %q", got)
	}
	if got := Z(2).String(); got != "2'bzz" {
		t.Errorf("Z String = %q", got)
	}
}

func TestValueSignExtension(t *testing.T) {
	v := FromInt64(-3, 4) // 4'b1101 signed
	e := v.Extend(8)
	if e.Int64() != -3 {
		t.Errorf("sign extend: got %d, want -3", e.Int64())
	}
	u := FromUint64(0b1101, 4)
	eu := u.Extend(8)
	if eu.Uint64() != 0b1101 {
		t.Errorf("zero extend: got %d", eu.Uint64())
	}
}

func TestValueLogicTables(t *testing.T) {
	zero := FromUint64(0, 1)
	one := FromUint64(1, 1)
	x := X(1)
	// AND dominance: 0 & x = 0
	if got := And(zero, x); got.HasXZ() || got.A != 0 {
		t.Errorf("0&x = %v", got)
	}
	if got := And(one, x); !got.HasXZ() {
		t.Errorf("1&x = %v, want x", got)
	}
	// OR dominance: 1 | x = 1
	if got := Or(one, x); got.HasXZ() || got.A != 1 {
		t.Errorf("1|x = %v", got)
	}
	if got := Or(zero, x); !got.HasXZ() {
		t.Errorf("0|x = %v, want x", got)
	}
	if got := Xor(one, x); !got.HasXZ() {
		t.Errorf("1^x = %v, want x", got)
	}
	if got := Not(x); !got.HasXZ() {
		t.Errorf("~x = %v, want x", got)
	}
}

func TestValueArithmeticXPoison(t *testing.T) {
	if got := Add(FromUint64(1, 4), X(4)); !got.HasXZ() {
		t.Errorf("1+x = %v, want x", got)
	}
	if got := Div(FromUint64(8, 4), FromUint64(0, 4)); !got.HasXZ() {
		t.Errorf("8/0 = %v, want x", got)
	}
	if got := Add(FromUint64(9, 4), FromUint64(9, 4)); got.Uint64() != 2 {
		t.Errorf("9+9 mod 16 = %d, want 2", got.Uint64())
	}
}

func TestSimpleDFF(t *testing.T) {
	src := `
module tb;
  reg clk;
  reg [3:0] d;
  wire [3:0] q;
  dff dut(.clk(clk), .d(d), .q(q));
  initial begin
    clk = 0; d = 4'd5;
    #10;
    if (q !== 4'd5) $display("TEST FAILED q=%d", q);
    else $display("TEST PASSED");
    $finish;
  end
  always #2 clk = ~clk;
endmodule
module dff(input clk, input [3:0] d, output reg [3:0] q);
  always @(posedge clk) q <= d;
endmodule`
	r := mustRun(t, src, "tb")
	if !r.Passed() {
		t.Fatalf("output: %q", r.Output)
	}
	if !r.Finished {
		t.Error("expected $finish")
	}
}

func TestNBASwapSemantics(t *testing.T) {
	// The canonical NBA test: both registers read pre-clock values.
	src := `
module tb;
  reg clk;
  reg [7:0] a, b;
  initial begin
    clk = 0; a = 8'd1; b = 8'd2;
    #5 clk = 1;
    #1;
    if (a === 8'd2 && b === 8'd1) $display("TEST PASSED");
    else $display("TEST FAILED a=%d b=%d", a, b);
    $finish;
  end
  always @(posedge clk) a <= b;
  always @(posedge clk) b <= a;
endmodule`
	r := mustRun(t, src, "tb")
	if !r.Passed() {
		t.Fatalf("output: %q", r.Output)
	}
}

func TestBlockingVsNonblockingOrder(t *testing.T) {
	src := `
module tb;
  reg clk;
  reg [7:0] a, b, c;
  initial begin
    clk = 0; a = 8'd1;
    #5 clk = 1;
    #1;
    // blocking: b sees updated a; NBA c sees pre-clock a
    if (b === 8'd42 && c === 8'd1) $display("TEST PASSED");
    else $display("TEST FAILED b=%d c=%d", b, c);
    $finish;
  end
  always @(posedge clk) begin
    c <= a;
    a = 8'd42;
    b = a;
  end
endmodule`
	r := mustRun(t, src, "tb")
	if !r.Passed() {
		t.Fatalf("output: %q", r.Output)
	}
}

func TestCombinationalAlwaysStar(t *testing.T) {
	src := `
module tb;
  reg [3:0] a, b;
  reg [1:0] sel;
  wire [3:0] y;
  mux4 dut(.a(a), .b(b), .sel(sel), .y(y));
  initial begin
    a = 4'd3; b = 4'd12; sel = 2'b00;
    #1;
    if (y !== 4'd3) begin $display("TEST FAILED y=%d", y); $finish; end
    sel = 2'b01;
    #1;
    if (y !== 4'd12) begin $display("TEST FAILED y=%d", y); $finish; end
    sel = 2'b10;
    #1;
    if (y !== 4'd15) begin $display("TEST FAILED y=%d", y); $finish; end
    $display("TEST PASSED");
    $finish;
  end
endmodule
module mux4(input [3:0] a, b, input [1:0] sel, output reg [3:0] y);
  always @(*) begin
    case (sel)
      2'b00: y = a;
      2'b01: y = b;
      default: y = a | b;
    endcase
  end
endmodule`
	r := mustRun(t, src, "tb")
	if !r.Passed() {
		t.Fatalf("output: %q", r.Output)
	}
}

func TestContinuousAssignChain(t *testing.T) {
	src := `
module tb;
  reg [7:0] a;
  wire [7:0] b, c, d;
  assign b = a + 8'd1;
  assign c = b * 8'd2;
  assign d = c - 8'd3;
  initial begin
    a = 8'd10;
    #1;
    if (d === 8'd19) $display("TEST PASSED");
    else $display("TEST FAILED d=%d", d);
    $finish;
  end
endmodule`
	r := mustRun(t, src, "tb")
	if !r.Passed() {
		t.Fatalf("output: %q", r.Output)
	}
}

func TestCounterWithAsyncReset(t *testing.T) {
	src := `
module tb;
  reg clk, rst;
  wire [7:0] q;
  counter dut(.clk(clk), .rst(rst), .q(q));
  always #5 clk = ~clk;
  initial begin
    clk = 0; rst = 1;
    #12 rst = 0;
    #100; // 10 rising edges after reset deassert
    if (q === 8'd10) $display("TEST PASSED");
    else $display("TEST FAILED q=%d", q);
    $finish;
  end
endmodule
module counter(input clk, rst, output reg [7:0] q);
  always @(posedge clk or posedge rst)
    if (rst) q <= 8'd0;
    else q <= q + 8'd1;
endmodule`
	r := mustRun(t, src, "tb")
	if !r.Passed() {
		t.Fatalf("output: %q", r.Output)
	}
}

func TestMemoryRegisterFile(t *testing.T) {
	src := `
module tb;
  reg clk, we;
  reg [3:0] waddr, raddr;
  reg [7:0] wdata;
  wire [7:0] rdata;
  regfile dut(.clk(clk), .we(we), .waddr(waddr), .raddr(raddr), .wdata(wdata), .rdata(rdata));
  integer i;
  integer errors;
  always #5 clk = ~clk;
  initial begin
    clk = 0; we = 1; errors = 0;
    // Drive on the negative edge so the DUT's posedge sample is
    // race-free (standard testbench practice).
    for (i = 0; i < 16; i = i + 1) begin
      @(negedge clk);
      waddr = i[3:0]; wdata = i[7:0] * 8'd3;
      @(posedge clk); #1;
    end
    we = 0;
    for (i = 0; i < 16; i = i + 1) begin
      raddr = i[3:0];
      #1;
      if (rdata !== i[7:0] * 8'd3) errors = errors + 1;
    end
    if (errors == 0) $display("TEST PASSED");
    else $display("TEST FAILED errors=%d", errors);
    $finish;
  end
endmodule
module regfile(input clk, we, input [3:0] waddr, raddr, input [7:0] wdata, output [7:0] rdata);
  reg [7:0] mem [0:15];
  always @(posedge clk) if (we) mem[waddr] <= wdata;
  assign rdata = mem[raddr];
endmodule`
	r := mustRun(t, src, "tb")
	if !r.Passed() {
		t.Fatalf("output: %q", r.Output)
	}
}

func TestHierarchyTwoLevels(t *testing.T) {
	src := `
module tb;
  reg [3:0] a, b;
  wire [4:0] sum;
  adder4 dut(.a(a), .b(b), .sum(sum));
  initial begin
    a = 4'd9; b = 4'd8;
    #1;
    if (sum === 5'd17) $display("TEST PASSED");
    else $display("TEST FAILED sum=%d", sum);
    $finish;
  end
endmodule
module adder4(input [3:0] a, b, output [4:0] sum);
  wire [3:0] s;
  wire [3:0] c;
  fa f0(.a(a[0]), .b(b[0]), .cin(1'b0), .s(s[0]), .cout(c[0]));
  fa f1(.a(a[1]), .b(b[1]), .cin(c[0]), .s(s[1]), .cout(c[1]));
  fa f2(.a(a[2]), .b(b[2]), .cin(c[1]), .s(s[2]), .cout(c[2]));
  fa f3(.a(a[3]), .b(b[3]), .cin(c[2]), .s(s[3]), .cout(c[3]));
  assign sum = {c[3], s};
endmodule
module fa(input a, b, cin, output s, cout);
  assign s = a ^ b ^ cin;
  assign cout = (a & b) | (a & cin) | (b & cin);
endmodule`
	r := mustRun(t, src, "tb")
	if !r.Passed() {
		t.Fatalf("output: %q", r.Output)
	}
}

func TestPartSelectAndConcatStores(t *testing.T) {
	src := `
module tb;
  reg [7:0] v;
  reg [3:0] hi, lo;
  initial begin
    v = 8'h00;
    v[3:0] = 4'hA;
    v[7:4] = 4'h5;
    {hi, lo} = v;
    if (v === 8'h5A && hi === 4'h5 && lo === 4'hA) $display("TEST PASSED");
    else $display("TEST FAILED v=%h hi=%h lo=%h", v, hi, lo);
    $finish;
  end
endmodule`
	r := mustRun(t, src, "tb")
	if !r.Passed() {
		t.Fatalf("output: %q", r.Output)
	}
}

func TestBitSelectStoreAndRead(t *testing.T) {
	src := `
module tb;
  reg [7:0] v;
  integer i;
  initial begin
    v = 8'd0;
    for (i = 0; i < 8; i = i + 2) v[i] = 1'b1;
    if (v === 8'b01010101) $display("TEST PASSED");
    else $display("TEST FAILED v=%b", v);
    $finish;
  end
endmodule`
	r := mustRun(t, src, "tb")
	if !r.Passed() {
		t.Fatalf("output: %q", r.Output)
	}
}

func TestCasezWildcards(t *testing.T) {
	src := `
module tb;
  reg [3:0] req;
  wire [1:0] grant;
  prio dut(.req(req), .grant(grant));
  initial begin
    req = 4'b1000; #1;
    if (grant !== 2'd3) begin $display("TEST FAILED g=%d", grant); $finish; end
    req = 4'b0110; #1;
    if (grant !== 2'd1) begin $display("TEST FAILED g=%d", grant); $finish; end
    req = 4'b0001; #1;
    if (grant !== 2'd0) begin $display("TEST FAILED g=%d", grant); $finish; end
    $display("TEST PASSED");
    $finish;
  end
endmodule
module prio(input [3:0] req, output reg [1:0] grant);
  always @(*)
    casez (req)
      4'bzzz1: grant = 2'd0;
      4'bzz10: grant = 2'd1;
      4'bz100: grant = 2'd2;
      4'b1000: grant = 2'd3;
      default: grant = 2'd0;
    endcase
endmodule`
	r := mustRun(t, src, "tb")
	if !r.Passed() {
		t.Fatalf("output: %q", r.Output)
	}
}

func TestSignedArithmetic(t *testing.T) {
	src := `
module tb;
  reg signed [7:0] a, b;
  wire signed [7:0] q;
  assign q = a >>> 2;
  initial begin
    a = -8'sd20; b = 8'sd3;
    #1;
    if (q === -8'sd5 && (a < b)) $display("TEST PASSED");
    else $display("TEST FAILED q=%d", q);
    $finish;
  end
endmodule`
	r := mustRun(t, src, "tb")
	if !r.Passed() {
		t.Fatalf("output: %q", r.Output)
	}
}

func TestDisplayFormatting(t *testing.T) {
	src := `
module tb;
  reg [7:0] v;
  initial begin
    v = 8'hA5;
    $display("d=%d b=%b h=%h", v, v, v);
    $display("time=%0t pct=%%", $time);
    $write("no");
    $write("newline");
    $display("");
    $finish;
  end
endmodule`
	r := mustRun(t, src, "tb")
	want := "d=165 b=10100101 h=a5\ntime=0 pct=%\nnonewline\n"
	if r.Output != want {
		t.Fatalf("output = %q, want %q", r.Output, want)
	}
}

func TestXPropagationBeforeReset(t *testing.T) {
	src := `
module tb;
  reg clk;
  reg [3:0] d;
  wire [3:0] q;
  dff dut(.clk(clk), .d(d), .q(q));
  initial begin
    clk = 0; d = 4'd7;
    // before any clock edge q must be x
    if (q === 4'bxxxx) $display("TEST PASSED");
    else $display("TEST FAILED q=%b", q);
    $finish;
  end
endmodule
module dff(input clk, input [3:0] d, output reg [3:0] q);
  always @(posedge clk) q <= d;
endmodule`
	r := mustRun(t, src, "tb")
	if !r.Passed() {
		t.Fatalf("output: %q", r.Output)
	}
}

func TestRepeatAndEventWait(t *testing.T) {
	src := `
module tb;
  reg clk;
  integer n;
  always #5 clk = ~clk;
  initial begin
    clk = 0; n = 0;
    repeat (4) begin
      @(posedge clk);
      n = n + 1;
    end
    if (n === 32'd4 && $time == 35) $display("TEST PASSED");
    else $display("TEST FAILED n=%0d t=%0t", n, $time);
    $finish;
  end
endmodule`
	r := mustRun(t, src, "tb")
	if !r.Passed() {
		t.Fatalf("output: %q", r.Output)
	}
}

func TestWhileLoop(t *testing.T) {
	src := `
module tb;
  integer i, sum;
  initial begin
    i = 0; sum = 0;
    while (i < 10) begin
      sum = sum + i;
      i = i + 1;
    end
    if (sum === 32'd45) $display("TEST PASSED");
    else $display("TEST FAILED sum=%0d", sum);
    $finish;
  end
endmodule`
	r := mustRun(t, src, "tb")
	if !r.Passed() {
		t.Fatalf("output: %q", r.Output)
	}
}

func TestRunawayAlwaysDetected(t *testing.T) {
	src := `
module tb;
  reg a;
  always a = ~a;
endmodule`
	_, err := RunSource(src, "tb", Options{})
	if err == nil {
		t.Fatal("expected runaway-loop error")
	}
}

func TestZeroDelayOscillationDetected(t *testing.T) {
	// A combinational ring with defined values oscillates in zero time.
	// (With x inputs a 4-state simulator settles at x instead, so the
	// loop must be enabled from a defined constant.)
	src := `
module tb;
  reg en;
  wire a, b;
  assign a = en ? ~b : 1'b0;
  assign b = a;
  initial begin
    en = 0;
    #1 en = 1;
    #1 $finish;
  end
endmodule`
	_, err := RunSource(src, "tb", Options{})
	if err == nil {
		t.Fatal("expected oscillation error")
	}
	if !strings.Contains(err.Error(), "oscillation") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestMaxTimeLimit(t *testing.T) {
	src := `
module tb;
  reg clk;
  always #5 clk = ~clk;
  initial clk = 0;
endmodule`
	_, err := RunSource(src, "tb", Options{MaxTime: 1000})
	if err == nil {
		t.Fatal("expected max-time error for clock with no $finish")
	}
	if !strings.Contains(err.Error(), "max time") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestFindTop(t *testing.T) {
	src := `
module tb; dut u(); endmodule
module dut; endmodule`
	f, err := verilog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	top, err := FindTop([]*verilog.SourceFile{f})
	if err != nil {
		t.Fatal(err)
	}
	if top != "tb" {
		t.Fatalf("top = %q, want tb", top)
	}
}

func TestUnknownModuleError(t *testing.T) {
	src := `module tb; ghost u(.a(1'b0)); endmodule`
	_, err := RunSource(src, "tb", Options{})
	if err == nil {
		t.Fatal("expected unknown module error")
	}
}

func TestTernaryXMerge(t *testing.T) {
	src := `
module tb;
  reg s;
  reg [3:0] a, b;
  wire [3:0] y;
  assign y = s ? a : b;
  initial begin
    a = 4'b1100; b = 4'b1010;
    // s is x: bits where a and b agree stay defined, others go x
    #1;
    if (y === 4'b1xx0) $display("TEST PASSED");
    else $display("TEST FAILED y=%b", y);
    $finish;
  end
endmodule`
	r := mustRun(t, src, "tb")
	if !r.Passed() {
		t.Fatalf("output: %q", r.Output)
	}
}

func TestShiftRegisterNonANSI(t *testing.T) {
	src := `
module tb;
  reg clk, din;
  wire [3:0] q;
  shreg dut(clk, din, q);
  always #5 clk = ~clk;
  initial begin
    clk = 0;
    din = 1; @(posedge clk);
    din <= 0; @(posedge clk);
    din <= 1; @(posedge clk);
    din <= 1; @(posedge clk);
    #1;
    // Samples are 1,0,1,1 LSB-first: q = 4'b1011.
    if (q === 4'b1011) $display("TEST PASSED");
    else $display("TEST FAILED q=%b", q);
    $finish;
  end
endmodule
module shreg(clk, din, q);
  input clk, din;
  output [3:0] q;
  reg [3:0] q;
  always @(posedge clk) q <= {q[2:0], din};
endmodule`
	r := mustRun(t, src, "tb")
	if !r.Passed() {
		t.Fatalf("output: %q", r.Output)
	}
}

func TestFSMSequenceDetector(t *testing.T) {
	// Detects pattern 101 on din (Moore machine).
	src := `
module tb;
  reg clk, rst, din;
  wire seen;
  det101 dut(.clk(clk), .rst(rst), .din(din), .seen(seen));
  always #5 clk = ~clk;
  integer errors;
  initial begin
    clk = 0; rst = 1; din = 0; errors = 0;
    @(posedge clk); #1 rst = 0;
    // Drive on negedges so posedge samples are race-free.
    @(negedge clk) din = 1;
    @(negedge clk) din = 0;
    @(negedge clk) din = 1;
    @(posedge clk); #1;
    if (seen !== 1'b1) errors = errors + 1;
    @(negedge clk) din = 0;
    @(posedge clk); #1;
    if (seen !== 1'b0) errors = errors + 1;
    if (errors == 0) $display("TEST PASSED");
    else $display("TEST FAILED errors=%0d", errors);
    $finish;
  end
endmodule
module det101(input clk, rst, din, output seen);
  reg [1:0] state;
  localparam S0 = 2'd0, S1 = 2'd1, S10 = 2'd2, S101 = 2'd3;
  always @(posedge clk or posedge rst) begin
    if (rst) state <= S0;
    else begin
      case (state)
        S0:   state <= din ? S1 : S0;
        S1:   state <= din ? S1 : S10;
        S10:  state <= din ? S101 : S0;
        S101: state <= din ? S1 : S10;
      endcase
    end
  end
  assign seen = (state == S101);
endmodule`
	r := mustRun(t, src, "tb")
	if !r.Passed() {
		t.Fatalf("output: %q", r.Output)
	}
}

func TestNBADelayedAssignment(t *testing.T) {
	src := `
module tb;
  reg [3:0] q;
  initial begin
    q = 4'd0;
    q <= #10 4'd9;
    #5;
    if (q !== 4'd0) begin $display("TEST FAILED early q=%d", q); $finish; end
    #6;
    if (q === 4'd9) $display("TEST PASSED");
    else $display("TEST FAILED q=%d", q);
    $finish;
  end
endmodule`
	r := mustRun(t, src, "tb")
	if !r.Passed() {
		t.Fatalf("output: %q", r.Output)
	}
}

func TestReductionOperators(t *testing.T) {
	src := `
module tb;
  reg [3:0] v;
  initial begin
    v = 4'b1011;
    if ((&v) === 1'b0 && (|v) === 1'b1 && (^v) === 1'b1 &&
        (~&v) === 1'b1 && (~|v) === 1'b0 && (~^v) === 1'b0)
      $display("TEST PASSED");
    else
      $display("TEST FAILED");
    $finish;
  end
endmodule`
	r := mustRun(t, src, "tb")
	if !r.Passed() {
		t.Fatalf("output: %q", r.Output)
	}
}

func TestReplicationAndConcat(t *testing.T) {
	src := `
module tb;
  reg [1:0] a;
  wire [7:0] y;
  assign y = {4{a}};
  initial begin
    a = 2'b10;
    #1;
    if (y === 8'b10101010) $display("TEST PASSED");
    else $display("TEST FAILED y=%b", y);
    $finish;
  end
endmodule`
	r := mustRun(t, src, "tb")
	if !r.Passed() {
		t.Fatalf("output: %q", r.Output)
	}
}

func TestParameterizedModule(t *testing.T) {
	src := `
module tb;
  reg [7:0] d;
  wire [7:0] q;
  reg clk;
  pipe dut(.clk(clk), .d(d), .q(q));
  always #5 clk = ~clk;
  initial begin
    clk = 0; d = 8'd77;
    @(posedge clk); @(posedge clk); #1;
    if (q === 8'd77) $display("TEST PASSED");
    else $display("TEST FAILED q=%d", q);
    $finish;
  end
endmodule
module pipe #(parameter W = 8) (input clk, input [W-1:0] d, output reg [W-1:0] q);
  reg [W-1:0] mid;
  always @(posedge clk) begin
    mid <= d;
    q <= mid;
  end
endmodule`
	r := mustRun(t, src, "tb")
	if !r.Passed() {
		t.Fatalf("output: %q", r.Output)
	}
}

func TestForeverClockWithDisableByFinish(t *testing.T) {
	src := `
module tb;
  reg clk;
  initial begin
    clk = 0;
    forever #5 clk = ~clk;
  end
  initial begin
    #43;
    if (clk === 1'b0) $display("TEST PASSED");
    else $display("TEST FAILED clk=%b", clk);
    $finish;
  end
endmodule`
	r := mustRun(t, src, "tb")
	if !r.Passed() {
		t.Fatalf("output: %q", r.Output)
	}
}

func TestContextWidthCarry(t *testing.T) {
	// {cout, sum} = a + b + cin must keep the carry (context-determined
	// widening per the LRM).
	src := `
module tb;
  reg [7:0] a, b;
  reg cin;
  wire [7:0] sum;
  wire cout;
  assign {cout, sum} = a + b + cin;
  initial begin
    a = 8'd200; b = 8'd100; cin = 1'b1;
    #1;
    if (cout === 1'b1 && sum === 8'd45) $display("TEST PASSED");
    else $display("TEST FAILED cout=%b sum=%d", cout, sum);
    $finish;
  end
endmodule`
	r := mustRun(t, src, "tb")
	if !r.Passed() {
		t.Fatalf("output: %q", r.Output)
	}
}

func TestComparisonWidening(t *testing.T) {
	src := `
module tb;
  reg [7:0] a, b;
  initial begin
    a = 8'd200; b = 8'd100;
    // (a+b) compared against an unsized literal keeps the carry.
    if ((a + b) == 300) $display("TEST PASSED");
    else $display("TEST FAILED");
    $finish;
  end
endmodule`
	r := mustRun(t, src, "tb")
	if !r.Passed() {
		t.Fatalf("output: %q", r.Output)
	}
}

func TestCasexWildcards(t *testing.T) {
	src := `
module tb;
  reg [3:0] v;
  reg [1:0] y;
  initial begin
    v = 4'b1010;
    casex (v)
      4'b1xx0: y = 2'd1;
      default: y = 2'd0;
    endcase
    if (y === 2'd1) $display("TEST PASSED");
    else $display("TEST FAILED y=%d", y);
    $finish;
  end
endmodule`
	r := mustRun(t, src, "tb")
	if !r.Passed() {
		t.Fatalf("output: %q", r.Output)
	}
}

func TestDisplayStringAndChar(t *testing.T) {
	src := `
module tb;
  initial begin
    $display("msg=%s ch=%c", "hi", 65);
    $finish;
  end
endmodule`
	r := mustRun(t, src, "tb")
	if r.Output != "msg=hi ch=A\n" {
		t.Fatalf("output = %q", r.Output)
	}
}

func TestSignedDisplayNegative(t *testing.T) {
	src := `
module tb;
  reg signed [7:0] x;
  initial begin
    x = -8'sd42;
    $display("x=%d", x);
    $finish;
  end
endmodule`
	r := mustRun(t, src, "tb")
	if !strings.Contains(r.Output, "x=-42") {
		t.Fatalf("output = %q", r.Output)
	}
}

func TestTernaryNestedAndShift(t *testing.T) {
	src := `
module tb;
  reg [7:0] a;
  wire [7:0] y;
  assign y = (a > 8'd100) ? (a >> 1) : (a < 8'd10 ? a << 2 : a);
  initial begin
    a = 8'd200; #1;
    if (y !== 8'd100) begin $display("TEST FAILED 1"); $finish; end
    a = 8'd4; #1;
    if (y !== 8'd16) begin $display("TEST FAILED 2"); $finish; end
    a = 8'd50; #1;
    if (y !== 8'd50) begin $display("TEST FAILED 3"); $finish; end
    $display("TEST PASSED");
    $finish;
  end
endmodule`
	r := mustRun(t, src, "tb")
	if !r.Passed() {
		t.Fatalf("output: %q", r.Output)
	}
}

func TestUnconnectedPortStaysX(t *testing.T) {
	src := `
module tb;
  wire y;
  buf_cell u(.a(), .y(y));
  initial begin
    #1;
    if (y === 1'bx) $display("TEST PASSED");
    else $display("TEST FAILED y=%b", y);
    $finish;
  end
endmodule
module buf_cell(input a, output y);
  assign y = a;
endmodule`
	r := mustRun(t, src, "tb")
	if !r.Passed() {
		t.Fatalf("output: %q", r.Output)
	}
}
