package sim

import (
	"fmt"
	"sort"

	"repro/internal/verilog"
)

// ElabError reports an elaboration failure (unknown module, unsupported
// construct, non-constant parameter, ...).
type ElabError struct {
	Where string
	Msg   string
}

// Error implements the error interface.
func (e *ElabError) Error() string { return fmt.Sprintf("sim: %s: %s", e.Where, e.Msg) }

// Signal is an elaborated net, variable or memory.
type Signal struct {
	Name   string // hierarchical name, e.g. "tb.dut.q"
	W      int
	Signed bool
	Kind   verilog.NetKind
	// Declared bit range; Left/Right preserve source order for index
	// mapping ([7:0] vs [0:7]).
	Left, Right int
	IsArray     bool
	ALo, AHi    int // normalized array bounds, ALo <= AHi
	Words       []Value

	combs    []*CombProc // static fanout: continuous assignments to re-run
	watchers []*waiter   // procedural processes waiting on this signal
	id       int
}

// bitOffset maps a source bit index to a physical offset (0 = LSB of
// storage), or -1 when out of the declared range.
func (s *Signal) bitOffset(i int) int {
	if s.Left >= s.Right {
		off := i - s.Right
		if off < 0 || off >= s.W {
			return -1
		}
		return off
	}
	off := s.Right - i
	if off < 0 || off >= s.W {
		return -1
	}
	return off
}

// wordIndex maps a source array index to a Words offset, or -1.
func (s *Signal) wordIndex(i int) int {
	if !s.IsArray {
		return -1
	}
	if i < s.ALo || i > s.AHi {
		return -1
	}
	return i - s.ALo
}

// CombProc is a combinational process: a continuous assignment or a
// port-connection shim, re-evaluated whenever one of its dependencies
// changes.
type CombProc struct {
	name   string
	run    func(sim *Simulator) error
	queued bool
	id     int
}

// procKind distinguishes always from initial processes.
type procKind int

const (
	procAlways procKind = iota
	procInitial
)

// Proc is a procedural process (always or initial block) executed by a
// dedicated goroutine in lockstep with the scheduler.
type Proc struct {
	name  string
	kind  procKind
	scope *Scope
	body  verilog.Stmt
	// starSens holds the precomputed @* sensitivity of the body.
	starSens []*Signal

	resume chan bool // true = run, false = kill
	report chan procReport
	id     int
}

type reportKind int

const (
	reportBlockedEvent reportKind = iota
	reportBlockedDelay
	reportDone
	reportError
)

type procReport struct {
	kind  reportKind
	sens  []*sensWait
	delay uint64
	err   error
}

// sensWait is one armed sensitivity entry of a blocked process.
type sensWait struct {
	edge int // verilog.EdgeLevel/Pos/Neg
	// anyChange short-circuits expression re-evaluation: any write to a
	// dep signal triggers (used by @* sensitivity).
	anyChange bool
	expr      verilog.Expr
	sc        *Scope
	last      Value
	deps      []*Signal
}

// waiter links a blocked process to the signals that may wake it.
type waiter struct {
	proc  *Proc
	items []*sensWait
	fired bool
}

// Scope is an elaborated module instance: its signals, parameter values
// and child instances.
type Scope struct {
	Name    string
	Module  *verilog.Module
	Parent  *Scope
	Signals map[string]*Signal
	Params  map[string]int64
	Kids    []*Scope
}

// lookup resolves a name in this scope only (no upward search: the
// supported subset has no cross-module hierarchical references).
func (sc *Scope) lookup(name string) *Signal { return sc.Signals[name] }

// Design is a fully elaborated hierarchy ready for simulation.
type Design struct {
	Top     *Scope
	Signals []*Signal
	Combs   []*CombProc
	Procs   []*Proc
}

// Elaborate builds a Design from the modules of one or more parsed
// source files, instantiating top as the root.
func Elaborate(files []*verilog.SourceFile, top string) (*Design, error) {
	lib := map[string]*verilog.Module{}
	for _, f := range files {
		for _, m := range f.Modules {
			if _, dup := lib[m.Name]; dup {
				return nil, &ElabError{Where: m.Name, Msg: "duplicate module definition"}
			}
			lib[m.Name] = m
		}
	}
	mod, ok := lib[top]
	if !ok {
		return nil, &ElabError{Where: top, Msg: "top module not found"}
	}
	d := &Design{}
	e := &elaborator{lib: lib, d: d, depth: 0}
	sc, err := e.instantiate(mod, top, nil)
	if err != nil {
		return nil, err
	}
	d.Top = sc
	return d, nil
}

// FindTop returns the name of a module that is never instantiated by
// another module in the files — the natural testbench top. When several
// candidates exist the lexically smallest is returned for determinism.
func FindTop(files []*verilog.SourceFile) (string, error) {
	defined := map[string]bool{}
	used := map[string]bool{}
	for _, f := range files {
		for _, m := range f.Modules {
			defined[m.Name] = true
			for _, it := range m.Items {
				if inst, ok := it.(*verilog.Instance); ok {
					used[inst.ModName] = true
				}
			}
		}
	}
	var tops []string
	for name := range defined {
		if !used[name] {
			tops = append(tops, name)
		}
	}
	if len(tops) == 0 {
		return "", &ElabError{Where: "design", Msg: "no top-level module (instantiation cycle?)"}
	}
	sort.Strings(tops)
	return tops[0], nil
}

type elaborator struct {
	lib   map[string]*verilog.Module
	d     *Design
	depth int
}

const maxHierDepth = 64

func (e *elaborator) instantiate(mod *verilog.Module, name string, parent *Scope) (*Scope, error) {
	if e.depth++; e.depth > maxHierDepth {
		return nil, &ElabError{Where: name, Msg: "instantiation too deep (recursive modules?)"}
	}
	defer func() { e.depth-- }()

	sc := &Scope{
		Name:    name,
		Module:  mod,
		Parent:  parent,
		Signals: map[string]*Signal{},
		Params:  map[string]int64{},
	}
	if parent != nil {
		parent.Kids = append(parent.Kids, sc)
	}

	// Pass 1: parameters, then port signals, then net declarations.
	for _, it := range mod.Items {
		pd, ok := it.(*verilog.ParamDecl)
		if !ok {
			continue
		}
		for i, pn := range pd.Names {
			v, err := e.constExpr(sc, pd.Values[i])
			if err != nil {
				return nil, err
			}
			sc.Params[pn] = v
		}
	}
	for _, port := range mod.Ports {
		w, left, right := 1, 0, 0
		if port.HasRng {
			w, left, right = port.Rng.Width(), port.Rng.MSB, port.Rng.LSB
		}
		e.addSignal(sc, port.Name, w, left, right, port.Kind, port.Signed, false, 0, 0)
	}
	for _, it := range mod.Items {
		nd, ok := it.(*verilog.NetDecl)
		if !ok {
			continue
		}
		w, left, right := 1, 0, 0
		if nd.Kind == verilog.NetInteger {
			w, left, right = 32, 31, 0
		}
		if nd.HasRng {
			w, left, right = nd.Rng.Width(), nd.Rng.MSB, nd.Rng.LSB
		}
		for _, dn := range nd.Names {
			if dn.IsArray {
				lo, hi := dn.ARng.MSB, dn.ARng.LSB
				if lo > hi {
					lo, hi = hi, lo
				}
				if hi-lo+1 > 1<<20 {
					return nil, &ElabError{Where: sc.Name + "." + dn.Name, Msg: "memory too large"}
				}
				e.addSignal(sc, dn.Name, w, left, right, nd.Kind, nd.Signed, true, lo, hi)
				continue
			}
			e.addSignal(sc, dn.Name, w, left, right, nd.Kind, nd.Signed, false, 0, 0)
		}
	}

	// Pass 2: behaviour.
	for _, it := range mod.Items {
		switch item := it.(type) {
		case *verilog.ParamDecl, *verilog.NetDecl:
			// handled above (initializers handled at sim start)
		case *verilog.ContAssign:
			if err := e.addContAssign(sc, item); err != nil {
				return nil, err
			}
		case *verilog.AlwaysBlock:
			if err := e.addProc(sc, procAlways, item.Body, fmt.Sprintf("%s.always@%d", sc.Name, item.Line)); err != nil {
				return nil, err
			}
		case *verilog.InitialBlock:
			if err := e.addProc(sc, procInitial, item.Body, fmt.Sprintf("%s.initial@%d", sc.Name, item.Line)); err != nil {
				return nil, err
			}
		case *verilog.Instance:
			if err := e.addInstance(sc, item); err != nil {
				return nil, err
			}
		default:
			return nil, &ElabError{Where: sc.Name, Msg: fmt.Sprintf("unsupported module item %T", it)}
		}
	}
	return sc, nil
}

func (e *elaborator) addSignal(sc *Scope, name string, w, left, right int, kind verilog.NetKind, signed, isArray bool, alo, ahi int) *Signal {
	if old, ok := sc.Signals[name]; ok {
		// Port re-declared by a body NetDecl: merge kind/sign/width.
		old.Kind = kind
		old.Signed = old.Signed || signed
		if w > 1 && old.W == 1 {
			old.W, old.Left, old.Right = w, left, right
			old.Words = []Value{X(w)}
		}
		if isArray {
			old.IsArray, old.ALo, old.AHi = true, alo, ahi
			old.Words = make([]Value, ahi-alo+1)
			for i := range old.Words {
				old.Words[i] = X(w)
			}
		}
		return old
	}
	s := &Signal{
		Name: sc.Name + "." + name, W: w, Signed: signed, Kind: kind,
		Left: left, Right: right, IsArray: isArray, ALo: alo, AHi: ahi,
		id: len(e.d.Signals),
	}
	n := 1
	if isArray {
		n = ahi - alo + 1
	}
	s.Words = make([]Value, n)
	for i := range s.Words {
		s.Words[i] = X(w)
	}
	s.Words[0].Signed = signed
	sc.Signals[name] = s
	e.d.Signals = append(e.d.Signals, s)
	return s
}

func (e *elaborator) addContAssign(sc *Scope, ca *verilog.ContAssign) error {
	deps := map[*Signal]bool{}
	if err := collectExprDeps(sc, ca.RHS, deps); err != nil {
		return err
	}
	if err := collectLHSIndexDeps(sc, ca.LHS, deps); err != nil {
		return err
	}
	lhs, rhs := ca.LHS, ca.RHS
	scope := sc
	cp := &CombProc{
		name: fmt.Sprintf("%s.assign@%d", sc.Name, ca.Line),
		id:   len(e.d.Combs),
	}
	cp.run = func(s *Simulator) error {
		w, err := s.lvalueWidth(scope, lhs)
		if err != nil {
			return err
		}
		v, err := s.evalCtx(scope, rhs, w)
		if err != nil {
			return err
		}
		return s.store(scope, lhs, v, false)
	}
	e.d.Combs = append(e.d.Combs, cp)
	for dep := range deps {
		dep.combs = append(dep.combs, cp)
	}
	// Evaluate once at time zero even if no dependency ever changes.
	return nil
}

func (e *elaborator) addProc(sc *Scope, kind procKind, body verilog.Stmt, name string) error {
	p := &Proc{name: name, kind: kind, scope: sc, body: body, id: len(e.d.Procs)}
	// Precompute @* sensitivity: every signal read by the body.
	deps := map[*Signal]bool{}
	if err := collectStmtDeps(sc, body, deps); err != nil {
		return err
	}
	for dep := range deps {
		p.starSens = append(p.starSens, dep)
	}
	sort.Slice(p.starSens, func(i, j int) bool { return p.starSens[i].id < p.starSens[j].id })
	e.d.Procs = append(e.d.Procs, p)
	return nil
}

func (e *elaborator) addInstance(sc *Scope, inst *verilog.Instance) error {
	mod, ok := e.lib[inst.ModName]
	if !ok {
		return &ElabError{Where: sc.Name, Msg: fmt.Sprintf("unknown module %q", inst.ModName)}
	}
	child, err := e.instantiate(mod, sc.Name+"."+inst.InstName, sc)
	if err != nil {
		return err
	}

	// Pair up connections with ports.
	conns := make([]verilog.Connection, len(mod.Ports))
	if inst.ByName {
		byName := map[string]verilog.Connection{}
		for _, c := range inst.Conns {
			byName[c.Port] = c
		}
		for i, port := range mod.Ports {
			if c, ok := byName[port.Name]; ok {
				conns[i] = c
				delete(byName, port.Name)
			}
		}
		for name := range byName {
			return &ElabError{Where: sc.Name, Msg: fmt.Sprintf("instance %s connects unknown port %q of %s", inst.InstName, name, mod.Name)}
		}
	} else {
		if len(inst.Conns) > len(mod.Ports) {
			return &ElabError{Where: sc.Name, Msg: fmt.Sprintf("instance %s has %d connections for %d ports", inst.InstName, len(inst.Conns), len(mod.Ports))}
		}
		copy(conns, inst.Conns)
	}

	for i, port := range mod.Ports {
		conn := conns[i]
		if conn.Expr == nil {
			continue // unconnected: inner side stays x
		}
		inner := child.lookup(port.Name)
		if inner == nil {
			return &ElabError{Where: child.Name, Msg: fmt.Sprintf("port %q has no signal", port.Name)}
		}
		switch port.Dir {
		case verilog.PortInput:
			deps := map[*Signal]bool{}
			if err := collectExprDeps(sc, conn.Expr, deps); err != nil {
				return err
			}
			expr := conn.Expr
			outer := sc
			cp := &CombProc{
				name: fmt.Sprintf("%s.port_in.%s", child.Name, port.Name),
				id:   len(e.d.Combs),
			}
			cp.run = func(s *Simulator) error {
				v, err := s.eval(outer, expr)
				if err != nil {
					return err
				}
				s.setSignal(inner, 0, v.Extend(inner.W))
				return nil
			}
			e.d.Combs = append(e.d.Combs, cp)
			for dep := range deps {
				dep.combs = append(dep.combs, cp)
			}
		case verilog.PortOutput:
			if err := checkLValue(conn.Expr); err != nil {
				return &ElabError{Where: sc.Name, Msg: fmt.Sprintf("output port %q connected to non-lvalue: %v", port.Name, err)}
			}
			expr := conn.Expr
			outer := sc
			cp := &CombProc{
				name: fmt.Sprintf("%s.port_out.%s", child.Name, port.Name),
				id:   len(e.d.Combs),
			}
			cp.run = func(s *Simulator) error {
				return s.store(outer, expr, inner.Words[0], false)
			}
			e.d.Combs = append(e.d.Combs, cp)
			inner.combs = append(inner.combs, cp)
			// LHS indices may also move the target.
			deps := map[*Signal]bool{}
			if err := collectLHSIndexDeps(sc, conn.Expr, deps); err != nil {
				return err
			}
			for dep := range deps {
				dep.combs = append(dep.combs, cp)
			}
		default:
			return &ElabError{Where: sc.Name, Msg: "inout ports are not supported"}
		}
	}
	return nil
}

// constExpr folds a constant expression using the scope's parameters.
func (e *elaborator) constExpr(sc *Scope, expr verilog.Expr) (int64, error) {
	switch v := expr.(type) {
	case *verilog.Number:
		if v.B != 0 {
			return 0, &ElabError{Where: sc.Name, Msg: "x/z in constant expression"}
		}
		return int64(v.A), nil
	case *verilog.Ident:
		if val, ok := sc.Params[v.Name]; ok {
			return val, nil
		}
		return 0, &ElabError{Where: sc.Name, Msg: fmt.Sprintf("%q is not a parameter", v.Name)}
	case *verilog.Unary:
		x, err := e.constExpr(sc, v.X)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case "-":
			return -x, nil
		case "+":
			return x, nil
		case "~":
			return ^x, nil
		case "!":
			if x == 0 {
				return 1, nil
			}
			return 0, nil
		}
	case *verilog.Binary:
		x, err := e.constExpr(sc, v.X)
		if err != nil {
			return 0, err
		}
		y, err := e.constExpr(sc, v.Y)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case "+":
			return x + y, nil
		case "-":
			return x - y, nil
		case "*":
			return x * y, nil
		case "/":
			if y != 0 {
				return x / y, nil
			}
		case "<<":
			return x << uint(y&63), nil
		case ">>":
			return int64(uint64(x) >> uint(y&63)), nil
		}
	case *verilog.Ternary:
		c, err := e.constExpr(sc, v.Cond)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return e.constExpr(sc, v.TrueE)
		}
		return e.constExpr(sc, v.FalseE)
	}
	return 0, &ElabError{Where: sc.Name, Msg: "unsupported constant expression"}
}

// checkLValue verifies that an expression has lvalue shape.
func checkLValue(e verilog.Expr) error {
	switch v := e.(type) {
	case *verilog.Ident:
		return nil
	case *verilog.Index:
		return checkLValue(v.X)
	case *verilog.RangeSel:
		return checkLValue(v.X)
	case *verilog.Concat:
		for _, p := range v.Parts {
			if err := checkLValue(p); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("%T cannot be assigned", e)
}

// collectExprDeps records every signal read by e into deps.
func collectExprDeps(sc *Scope, e verilog.Expr, deps map[*Signal]bool) error {
	switch v := e.(type) {
	case nil:
		return nil
	case *verilog.Ident:
		if _, isParam := sc.Params[v.Name]; isParam {
			return nil
		}
		sig := sc.lookup(v.Name)
		if sig == nil {
			return &ElabError{Where: sc.Name, Msg: fmt.Sprintf("unknown identifier %q", v.Name)}
		}
		deps[sig] = true
		return nil
	case *verilog.Number, *verilog.StringLit:
		return nil
	case *verilog.Unary:
		return collectExprDeps(sc, v.X, deps)
	case *verilog.Binary:
		if err := collectExprDeps(sc, v.X, deps); err != nil {
			return err
		}
		return collectExprDeps(sc, v.Y, deps)
	case *verilog.Ternary:
		if err := collectExprDeps(sc, v.Cond, deps); err != nil {
			return err
		}
		if err := collectExprDeps(sc, v.TrueE, deps); err != nil {
			return err
		}
		return collectExprDeps(sc, v.FalseE, deps)
	case *verilog.Concat:
		for _, p := range v.Parts {
			if err := collectExprDeps(sc, p, deps); err != nil {
				return err
			}
		}
		return nil
	case *verilog.Repl:
		if err := collectExprDeps(sc, v.Count, deps); err != nil {
			return err
		}
		return collectExprDeps(sc, v.X, deps)
	case *verilog.Index:
		if err := collectExprDeps(sc, v.X, deps); err != nil {
			return err
		}
		return collectExprDeps(sc, v.Idx, deps)
	case *verilog.RangeSel:
		if err := collectExprDeps(sc, v.X, deps); err != nil {
			return err
		}
		if err := collectExprDeps(sc, v.MSB, deps); err != nil {
			return err
		}
		return collectExprDeps(sc, v.LSB, deps)
	case *verilog.SysFuncCall:
		for _, a := range v.Args {
			if err := collectExprDeps(sc, a, deps); err != nil {
				return err
			}
		}
		return nil
	}
	return &ElabError{Where: sc.Name, Msg: fmt.Sprintf("unsupported expression %T", e)}
}

// collectLHSIndexDeps records signals read by index/range expressions on
// the left-hand side (the target can move when they change).
func collectLHSIndexDeps(sc *Scope, e verilog.Expr, deps map[*Signal]bool) error {
	switch v := e.(type) {
	case *verilog.Ident:
		return nil
	case *verilog.Index:
		if err := collectExprDeps(sc, v.Idx, deps); err != nil {
			return err
		}
		return collectLHSIndexDeps(sc, v.X, deps)
	case *verilog.RangeSel:
		if err := collectExprDeps(sc, v.MSB, deps); err != nil {
			return err
		}
		if err := collectExprDeps(sc, v.LSB, deps); err != nil {
			return err
		}
		return collectLHSIndexDeps(sc, v.X, deps)
	case *verilog.Concat:
		for _, p := range v.Parts {
			if err := collectLHSIndexDeps(sc, p, deps); err != nil {
				return err
			}
		}
		return nil
	}
	return &ElabError{Where: sc.Name, Msg: fmt.Sprintf("unsupported lvalue %T", e)}
}

// collectStmtDeps records every signal read anywhere in a statement —
// the @* sensitivity approximation (slightly wider than the LRM's, which
// is harmless: extra wakeups converge to the same values).
func collectStmtDeps(sc *Scope, s verilog.Stmt, deps map[*Signal]bool) error {
	switch v := s.(type) {
	case nil:
		return nil
	case *verilog.Block:
		for _, st := range v.Stmts {
			if err := collectStmtDeps(sc, st, deps); err != nil {
				return err
			}
		}
		return nil
	case *verilog.Assign:
		if err := collectExprDeps(sc, v.RHS, deps); err != nil {
			return err
		}
		return collectLHSIndexDeps(sc, v.LHS, deps)
	case *verilog.If:
		if err := collectExprDeps(sc, v.Cond, deps); err != nil {
			return err
		}
		if err := collectStmtDeps(sc, v.Then, deps); err != nil {
			return err
		}
		return collectStmtDeps(sc, v.Else, deps)
	case *verilog.Case:
		if err := collectExprDeps(sc, v.Expr, deps); err != nil {
			return err
		}
		for _, item := range v.Items {
			for _, e := range item.Exprs {
				if err := collectExprDeps(sc, e, deps); err != nil {
					return err
				}
			}
			if err := collectStmtDeps(sc, item.Body, deps); err != nil {
				return err
			}
		}
		return nil
	case *verilog.For:
		if err := collectStmtDeps(sc, v.Init, deps); err != nil {
			return err
		}
		if err := collectExprDeps(sc, v.Cond, deps); err != nil {
			return err
		}
		if err := collectStmtDeps(sc, v.Step, deps); err != nil {
			return err
		}
		return collectStmtDeps(sc, v.Body, deps)
	case *verilog.While:
		if err := collectExprDeps(sc, v.Cond, deps); err != nil {
			return err
		}
		return collectStmtDeps(sc, v.Body, deps)
	case *verilog.Repeat:
		if err := collectExprDeps(sc, v.Count, deps); err != nil {
			return err
		}
		return collectStmtDeps(sc, v.Body, deps)
	case *verilog.Forever:
		return collectStmtDeps(sc, v.Body, deps)
	case *verilog.DelayStmt:
		return collectStmtDeps(sc, v.Body, deps)
	case *verilog.EventCtrlStmt:
		for _, item := range v.Items {
			if err := collectExprDeps(sc, item.Expr, deps); err != nil {
				return err
			}
		}
		return collectStmtDeps(sc, v.Body, deps)
	case *verilog.SysCall:
		for _, a := range v.Args {
			if err := collectExprDeps(sc, a, deps); err != nil {
				return err
			}
		}
		return nil
	case *verilog.NullStmt:
		return nil
	}
	return &ElabError{Where: sc.Name, Msg: fmt.Sprintf("unsupported statement %T", s)}
}
