package sim

import (
	"container/heap"
	"strings"

	"repro/internal/verilog"
)

// Options controls resource limits for a simulation run. Zero values
// select the defaults.
type Options struct {
	// MaxTime aborts the run when simulated time would exceed it.
	MaxTime uint64
	// MaxSteps caps the total number of process activations plus
	// combinational evaluations (runaway protection).
	MaxSteps int
	// MaxDeltas caps activity within a single time slot (zero-delay
	// oscillation protection).
	MaxDeltas int
	// MaxOutput caps the number of bytes $display may produce.
	MaxOutput int
}

func (o Options) withDefaults() Options {
	if o.MaxTime == 0 {
		o.MaxTime = 4_000_000
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 4_000_000
	}
	if o.MaxDeltas == 0 {
		o.MaxDeltas = 100_000
	}
	if o.MaxOutput == 0 {
		o.MaxOutput = 1 << 20
	}
	return o
}

// Result summarizes a finished simulation.
type Result struct {
	// Time is the simulated time at which the run ended.
	Time uint64
	// Output is everything written by $display/$write.
	Output string
	// Finished reports whether $finish was executed (as opposed to
	// event exhaustion).
	Finished bool
}

// Passed reports whether the testbench printed the TEST PASSED marker —
// the functional-correctness contract used by the benchmark suites.
func (r *Result) Passed() bool {
	return strings.Contains(r.Output, "TEST PASSED")
}

// timedEvent is a heap entry: either a process wake-up or a deferred
// function (delayed non-blocking updates).
type timedEvent struct {
	t    uint64
	seq  int
	proc *Proc
	fn   func(*Simulator)
}

type eventHeap []timedEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(timedEvent)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// procState tracks the lifecycle of a procedural goroutine.
type procState int

const (
	stateBlocked procState = iota // waiting on resume channel
	stateDone                     // goroutine exited
)

// Simulator executes an elaborated Design.
type Simulator struct {
	d    *Design
	opts Options

	now      uint64
	events   eventHeap
	seq      int
	runnable []*Proc
	combQ    []*CombProc
	nbaQ     []nbaUpdate

	states map[*Proc]procState

	out      strings.Builder
	finished bool
	steps    int
	rng      uint64
	err      error
}

// New creates a simulator for a design.
func New(d *Design, opts Options) *Simulator {
	return &Simulator{d: d, opts: opts.withDefaults(), states: map[*Proc]procState{}, rng: 0x9E3779B97F4A7C15}
}

// Run elaborates files, finds or uses the given top module, and runs the
// simulation to completion. It is the package's convenience entry point.
func Run(files []*verilog.SourceFile, top string, opts Options) (*Result, error) {
	var err error
	if top == "" {
		top, err = FindTop(files)
		if err != nil {
			return nil, err
		}
	}
	d, err := Elaborate(files, top)
	if err != nil {
		return nil, err
	}
	return New(d, opts).Run()
}

// RunSource parses src and simulates it (top auto-detected when empty).
func RunSource(src, top string, opts Options) (*Result, error) {
	f, err := verilog.Parse(src)
	if err != nil {
		return nil, err
	}
	return Run([]*verilog.SourceFile{f}, top, opts)
}

// Run executes the design until $finish, event exhaustion or a resource
// limit. The returned error is non-nil for runtime failures and limit
// violations; the Result is still returned when available.
func (s *Simulator) Run() (*Result, error) {
	defer s.killAll()

	// Apply declaration initializers (integer i = 0; style).
	if err := s.applyDeclInits(s.d.Top); err != nil {
		return nil, err
	}

	// Time zero: every combinational process evaluates once, every
	// procedural process starts.
	for _, cp := range s.d.Combs {
		cp.queued = true
		s.combQ = append(s.combQ, cp)
	}
	for _, p := range s.d.Procs {
		s.startProc(p)
		s.runnable = append(s.runnable, p)
	}

	for {
		if err := s.runTimeSlot(); err != nil {
			return s.result(), err
		}
		if s.finished || len(s.events) == 0 {
			return s.result(), nil
		}
		next := s.events[0].t
		if next > s.opts.MaxTime {
			return s.result(), rte("scheduler", "simulation exceeded max time %d", s.opts.MaxTime)
		}
		s.now = next
		for len(s.events) > 0 && s.events[0].t == s.now {
			ev := heap.Pop(&s.events).(timedEvent)
			if ev.fn != nil {
				ev.fn(s)
				continue
			}
			s.runnable = append(s.runnable, ev.proc)
		}
	}
}

func (s *Simulator) result() *Result {
	return &Result{Time: s.now, Output: s.out.String(), Finished: s.finished}
}

// runTimeSlot drains the active region (combinational + procedural) and
// the NBA region repeatedly until the slot is quiet.
func (s *Simulator) runTimeSlot() error {
	deltas := 0
	bumpDelta := func() error {
		deltas++
		if deltas > s.opts.MaxDeltas {
			return rte("scheduler", "zero-delay oscillation: %d deltas at time %d", deltas, s.now)
		}
		return nil
	}
	for {
		progress := false
		for len(s.combQ) > 0 {
			cp := s.combQ[0]
			s.combQ = s.combQ[1:]
			cp.queued = false
			if err := cp.run(s); err != nil {
				return err
			}
			progress = true
			if err := s.countStep(); err != nil {
				return err
			}
			if err := bumpDelta(); err != nil {
				return err
			}
		}
		if s.finished {
			return nil
		}
		if len(s.runnable) > 0 {
			p := s.runnable[0]
			s.runnable = s.runnable[1:]
			if err := s.resumeProc(p); err != nil {
				return err
			}
			progress = true
			if s.finished {
				return nil
			}
		} else if len(s.nbaQ) > 0 {
			q := s.nbaQ
			s.nbaQ = nil
			for _, u := range q {
				s.applyUpdate(u)
			}
			progress = true
		}
		if !progress {
			return nil
		}
		if err := bumpDelta(); err != nil {
			return err
		}
	}
}

func (s *Simulator) countStep() error {
	s.steps++
	if s.steps > s.opts.MaxSteps {
		return rte("scheduler", "step limit %d exceeded at time %d", s.opts.MaxSteps, s.now)
	}
	return nil
}

func (s *Simulator) applyDeclInits(sc *Scope) error {
	for _, it := range sc.Module.Items {
		nd, ok := it.(*verilog.NetDecl)
		if !ok {
			continue
		}
		for _, dn := range nd.Names {
			if dn.Init == nil {
				continue
			}
			v, err := s.eval(sc, dn.Init)
			if err != nil {
				return err
			}
			sig := sc.lookup(dn.Name)
			if sig != nil && !sig.IsArray {
				s.setSignal(sig, 0, v)
			}
		}
	}
	for _, kid := range sc.Kids {
		if err := s.applyDeclInits(kid); err != nil {
			return err
		}
	}
	return nil
}

// --- Procedural process goroutines (lockstep handshake) ---

// killToken and finishToken are panic sentinels used inside process
// goroutines; they never escape this package.
type killToken struct{}
type finishToken struct{}

// simPanic wraps a runtime error raised inside a process goroutine.
type simPanic struct{ err error }

func (s *Simulator) startProc(p *Proc) {
	p.resume = make(chan bool)
	p.report = make(chan procReport)
	s.states[p] = stateBlocked
	go func() {
		if !<-p.resume {
			return
		}
		ctx := &procCtx{s: s, p: p}
		defer func() {
			r := recover()
			switch r := r.(type) {
			case nil:
				p.report <- procReport{kind: reportDone}
			case killToken:
				// scheduler told us to die: exit silently
			case finishToken:
				p.report <- procReport{kind: reportDone}
			case simPanic:
				p.report <- procReport{kind: reportError, err: r.err}
			default:
				panic(r)
			}
		}()
		for {
			before := ctx.blockCount
			ctx.exec(p.scope, p.body)
			if p.kind == procInitial {
				return
			}
			if ctx.blockCount == before {
				panic(simPanic{rte(p.name, "always block executes without any timing control")})
			}
		}
	}()
}

// resumeProc hands control to a process goroutine and handles its report.
func (s *Simulator) resumeProc(p *Proc) error {
	if s.states[p] == stateDone {
		return nil
	}
	if err := s.countStep(); err != nil {
		return err
	}
	p.resume <- true
	rep := <-p.report
	switch rep.kind {
	case reportDone:
		s.states[p] = stateDone
	case reportError:
		s.states[p] = stateDone
		return rep.err
	case reportBlockedDelay:
		s.seq++
		heap.Push(&s.events, timedEvent{t: s.now + rep.delay, seq: s.seq, proc: p})
	case reportBlockedEvent:
		w := &waiter{proc: p, items: rep.sens}
		seen := map[*Signal]bool{}
		for _, item := range rep.sens {
			for _, dep := range item.deps {
				if !seen[dep] {
					seen[dep] = true
					dep.watchers = append(dep.watchers, w)
				}
			}
		}
	}
	return nil
}

// killAll terminates every still-blocked process goroutine.
func (s *Simulator) killAll() {
	for p, st := range s.states {
		if st == stateBlocked {
			p.resume <- false
			s.states[p] = stateDone
		}
	}
}

// scheduleAt registers fn to run at absolute time t.
func (s *Simulator) scheduleAt(t uint64, fn func(*Simulator)) {
	s.seq++
	heap.Push(&s.events, timedEvent{t: t, seq: s.seq, fn: fn})
}
