package sim

import (
	"fmt"

	"repro/internal/verilog"
)

// RuntimeError reports a failure during simulation (unsupported dynamic
// construct, width overflow, runaway loop, ...).
type RuntimeError struct {
	Where string
	Msg   string
}

// Error implements the error interface.
func (e *RuntimeError) Error() string { return fmt.Sprintf("sim: %s: %s", e.Where, e.Msg) }

func rte(where, format string, args ...any) error {
	return &RuntimeError{Where: where, Msg: fmt.Sprintf(format, args...)}
}

// exprWidth computes the self-determined bit length of an expression
// (LRM table 5-22 subset). Replication counts and part-select bounds
// are evaluated, so the result can depend on current signal values.
func (s *Simulator) exprWidth(sc *Scope, e verilog.Expr) (int, error) {
	switch v := e.(type) {
	case *verilog.Number:
		return v.Width, nil
	case *verilog.StringLit:
		if len(v.Val) == 0 {
			return 8, nil
		}
		return 8 * len(v.Val), nil
	case *verilog.Ident:
		if _, ok := sc.Params[v.Name]; ok {
			return 32, nil
		}
		sig := sc.lookup(v.Name)
		if sig == nil {
			return 0, rte(sc.Name, "unknown identifier %q", v.Name)
		}
		return sig.W, nil
	case *verilog.Unary:
		switch v.Op {
		case "~", "-", "+":
			return s.exprWidth(sc, v.X)
		default: // reductions and !
			return 1, nil
		}
	case *verilog.Binary:
		switch v.Op {
		case "+", "-", "*", "/", "%", "&", "|", "^", "~^", "^~":
			wx, err := s.exprWidth(sc, v.X)
			if err != nil {
				return 0, err
			}
			wy, err := s.exprWidth(sc, v.Y)
			if err != nil {
				return 0, err
			}
			if wy > wx {
				wx = wy
			}
			return wx, nil
		case "<<", ">>", "<<<", ">>>", "**":
			return s.exprWidth(sc, v.X)
		default: // comparisons, logical ops
			return 1, nil
		}
	case *verilog.Ternary:
		wx, err := s.exprWidth(sc, v.TrueE)
		if err != nil {
			return 0, err
		}
		wy, err := s.exprWidth(sc, v.FalseE)
		if err != nil {
			return 0, err
		}
		if wy > wx {
			wx = wy
		}
		return wx, nil
	case *verilog.Concat:
		total := 0
		for _, p := range v.Parts {
			w, err := s.exprWidth(sc, p)
			if err != nil {
				return 0, err
			}
			total += w
		}
		return total, nil
	case *verilog.Repl:
		cnt, err := s.eval(sc, v.Count)
		if err != nil {
			return 0, err
		}
		w, err := s.exprWidth(sc, v.X)
		if err != nil {
			return 0, err
		}
		return int(cnt.Uint64()) * w, nil
	case *verilog.Index:
		if id, ok := v.X.(*verilog.Ident); ok {
			if sig := sc.lookup(id.Name); sig != nil && sig.IsArray {
				return sig.W, nil
			}
		}
		return 1, nil
	case *verilog.RangeSel:
		msbV, err := s.eval(sc, v.MSB)
		if err != nil {
			return 0, err
		}
		lsbV, err := s.eval(sc, v.LSB)
		if err != nil {
			return 0, err
		}
		hi, lo := int(msbV.Int64()), int(lsbV.Int64())
		if hi < lo {
			hi, lo = lo, hi
		}
		return hi - lo + 1, nil
	case *verilog.SysFuncCall:
		return 32, nil
	}
	return 0, rte(sc.Name, "unsupported expression %T", e)
}

// evalCtx evaluates e with a context width (LRM context-determined
// sizing): arithmetic/bitwise operands widen to the context before the
// operation so carries and borrows are preserved, e.g. in
// {cout, sum} = a + b + cin.
func (s *Simulator) evalCtx(sc *Scope, e verilog.Expr, w int) (Value, error) {
	switch v := e.(type) {
	case *verilog.Binary:
		switch v.Op {
		case "+", "-", "*", "/", "%", "&", "|", "^", "~^", "^~":
			x, err := s.evalCtx(sc, v.X, w)
			if err != nil {
				return Value{}, err
			}
			y, err := s.evalCtx(sc, v.Y, w)
			if err != nil {
				return Value{}, err
			}
			return applyBin(v.Op, x, y), nil
		case "<<", ">>", "<<<", ">>>":
			x, err := s.evalCtx(sc, v.X, w)
			if err != nil {
				return Value{}, err
			}
			n, err := s.eval(sc, v.Y)
			if err != nil {
				return Value{}, err
			}
			return applyBin(v.Op, x, n), nil
		}
	case *verilog.Unary:
		switch v.Op {
		case "~":
			x, err := s.evalCtx(sc, v.X, w)
			if err != nil {
				return Value{}, err
			}
			return Not(x), nil
		case "-":
			x, err := s.evalCtx(sc, v.X, w)
			if err != nil {
				return Value{}, err
			}
			return Neg(x), nil
		case "+":
			return s.evalCtx(sc, v.X, w)
		}
	case *verilog.Ternary:
		c, err := s.eval(sc, v.Cond)
		if err != nil {
			return Value{}, err
		}
		t, known := c.Truth()
		if !known {
			a, err := s.evalCtx(sc, v.TrueE, w)
			if err != nil {
				return Value{}, err
			}
			b, err := s.evalCtx(sc, v.FalseE, w)
			if err != nil {
				return Value{}, err
			}
			return Merge(a, b), nil
		}
		if t {
			return s.evalCtx(sc, v.TrueE, w)
		}
		return s.evalCtx(sc, v.FalseE, w)
	}
	out, err := s.eval(sc, e)
	if err != nil {
		return Value{}, err
	}
	if out.W < w {
		out = out.Extend(w)
	}
	return out, nil
}

// applyBin dispatches a context-widened binary operation.
func applyBin(op string, x, y Value) Value {
	switch op {
	case "+":
		return Add(x, y)
	case "-":
		return Sub(x, y)
	case "*":
		return Mul(x, y)
	case "/":
		return Div(x, y)
	case "%":
		return Mod(x, y)
	case "&":
		return And(x, y)
	case "|":
		return Or(x, y)
	case "^":
		return Xor(x, y)
	case "~^", "^~":
		return Xnor(x, y)
	case "<<", "<<<":
		return Shl(x, y)
	case ">>":
		return Shr(x, y)
	case ">>>":
		return Sshr(x, y)
	}
	return X(x.W)
}

// eval computes the current value of an expression in a scope.
func (s *Simulator) eval(sc *Scope, e verilog.Expr) (Value, error) {
	switch v := e.(type) {
	case *verilog.Number:
		return Value{W: v.Width, A: v.A, B: v.B, Signed: v.Signed}, nil

	case *verilog.StringLit:
		// Verilog string literals are bit vectors of 8 bits per char.
		if len(v.Val) > 8 {
			return Value{}, rte(sc.Name, "string literal longer than 8 chars in expression")
		}
		var a uint64
		for i := 0; i < len(v.Val); i++ {
			a = a<<8 | uint64(v.Val[i])
		}
		w := 8 * len(v.Val)
		if w == 0 {
			w = 8
		}
		return FromUint64(a, w), nil

	case *verilog.Ident:
		if pv, ok := sc.Params[v.Name]; ok {
			return FromInt64(pv, 32), nil
		}
		sig := sc.lookup(v.Name)
		if sig == nil {
			return Value{}, rte(sc.Name, "unknown identifier %q", v.Name)
		}
		if sig.IsArray {
			return Value{}, rte(sc.Name, "memory %q used without an index", v.Name)
		}
		out := sig.Words[0]
		out.Signed = sig.Signed
		return out, nil

	case *verilog.Unary:
		x, err := s.eval(sc, v.X)
		if err != nil {
			return Value{}, err
		}
		switch v.Op {
		case "+":
			return x, nil
		case "-":
			return Neg(x), nil
		case "~":
			return Not(x), nil
		case "!":
			t, known := x.Truth()
			if !known {
				return X(1), nil
			}
			return Bool(!t), nil
		case "&":
			return ReduceAnd(x), nil
		case "|":
			return ReduceOr(x), nil
		case "^":
			return ReduceXor(x), nil
		case "~&":
			return Not(ReduceAnd(x)), nil
		case "~|":
			return Not(ReduceOr(x)), nil
		case "~^", "^~":
			return Not(ReduceXor(x)), nil
		}
		return Value{}, rte(sc.Name, "unsupported unary operator %q", v.Op)

	case *verilog.Binary:
		return s.evalBinary(sc, v)

	case *verilog.Ternary:
		c, err := s.eval(sc, v.Cond)
		if err != nil {
			return Value{}, err
		}
		t, known := c.Truth()
		if !known {
			a, err := s.eval(sc, v.TrueE)
			if err != nil {
				return Value{}, err
			}
			b, err := s.eval(sc, v.FalseE)
			if err != nil {
				return Value{}, err
			}
			return Merge(a, b), nil
		}
		if t {
			return s.eval(sc, v.TrueE)
		}
		return s.eval(sc, v.FalseE)

	case *verilog.Concat:
		parts := make([]Value, len(v.Parts))
		w := 0
		for i, p := range v.Parts {
			pv, err := s.eval(sc, p)
			if err != nil {
				return Value{}, err
			}
			parts[i] = pv
			w += pv.W
		}
		if w > 64 {
			return Value{}, rte(sc.Name, "concatenation wider than 64 bits")
		}
		return Concat(parts), nil

	case *verilog.Repl:
		cnt, err := s.eval(sc, v.Count)
		if err != nil {
			return Value{}, err
		}
		if cnt.HasXZ() {
			return Value{}, rte(sc.Name, "x/z replication count")
		}
		n := int(cnt.Uint64())
		xv, err := s.eval(sc, v.X)
		if err != nil {
			return Value{}, err
		}
		if n < 0 || n*xv.W > 64 {
			return Value{}, rte(sc.Name, "replication wider than 64 bits")
		}
		parts := make([]Value, n)
		for i := range parts {
			parts[i] = xv
		}
		if n == 0 {
			return Value{W: 0}, nil
		}
		return Concat(parts), nil

	case *verilog.Index:
		// Memory word read?
		if id, ok := v.X.(*verilog.Ident); ok {
			if sig := sc.lookup(id.Name); sig != nil && sig.IsArray {
				idx, err := s.eval(sc, v.Idx)
				if err != nil {
					return Value{}, err
				}
				if idx.HasXZ() {
					return X(sig.W), nil
				}
				wi := sig.wordIndex(int(idx.Int64()))
				if wi < 0 {
					return X(sig.W), nil
				}
				out := sig.Words[wi]
				out.Signed = sig.Signed
				return out, nil
			}
		}
		base, err := s.eval(sc, v.X)
		if err != nil {
			return Value{}, err
		}
		idx, err := s.eval(sc, v.Idx)
		if err != nil {
			return Value{}, err
		}
		if idx.HasXZ() {
			return X(1), nil
		}
		off := int(idx.Int64())
		if id, ok := v.X.(*verilog.Ident); ok {
			if sig := sc.lookup(id.Name); sig != nil {
				off = sig.bitOffset(off)
			}
		}
		if off < 0 || off >= base.W {
			return X(1), nil
		}
		a, b := base.Bit(off)
		return Value{W: 1, A: a, B: b}, nil

	case *verilog.RangeSel:
		base, err := s.eval(sc, v.X)
		if err != nil {
			return Value{}, err
		}
		msbV, err := s.eval(sc, v.MSB)
		if err != nil {
			return Value{}, err
		}
		lsbV, err := s.eval(sc, v.LSB)
		if err != nil {
			return Value{}, err
		}
		if msbV.HasXZ() || lsbV.HasXZ() {
			return X(1), nil
		}
		hi, lo := int(msbV.Int64()), int(lsbV.Int64())
		if id, ok := v.X.(*verilog.Ident); ok {
			if sig := sc.lookup(id.Name); sig != nil {
				hi, lo = sig.bitOffset(hi), sig.bitOffset(lo)
			}
		}
		if hi < lo {
			hi, lo = lo, hi
		}
		return Slice(base, hi, lo), nil

	case *verilog.SysFuncCall:
		return s.evalSysFunc(sc, v)
	}
	return Value{}, rte(sc.Name, "unsupported expression %T", e)
}

func (s *Simulator) evalBinary(sc *Scope, v *verilog.Binary) (Value, error) {
	// Short-circuitable logical operators.
	if v.Op == "&&" || v.Op == "||" {
		x, err := s.eval(sc, v.X)
		if err != nil {
			return Value{}, err
		}
		y, err := s.eval(sc, v.Y)
		if err != nil {
			return Value{}, err
		}
		xt, xk := x.Truth()
		yt, yk := y.Truth()
		if v.Op == "&&" {
			switch {
			case xk && !xt, yk && !yt:
				return Bool(false), nil
			case xk && yk:
				return Bool(xt && yt), nil
			default:
				return X(1), nil
			}
		}
		switch {
		case xk && xt, yk && yt:
			return Bool(true), nil
		case xk && yk:
			return Bool(xt || yt), nil
		default:
			return X(1), nil
		}
	}

	// Comparisons size both operands to the larger side's width
	// (context-determined), so (a+b) == 300 keeps the carry.
	switch v.Op {
	case "==", "!=", "===", "!==", "<", ">", "<=", ">=":
		wx, err := s.exprWidth(sc, v.X)
		if err != nil {
			return Value{}, err
		}
		wy, err := s.exprWidth(sc, v.Y)
		if err != nil {
			return Value{}, err
		}
		if wy > wx {
			wx = wy
		}
		x, err := s.evalCtx(sc, v.X, wx)
		if err != nil {
			return Value{}, err
		}
		y, err := s.evalCtx(sc, v.Y, wx)
		if err != nil {
			return Value{}, err
		}
		return compareBin(v.Op, x, y), nil
	}

	x, err := s.eval(sc, v.X)
	if err != nil {
		return Value{}, err
	}
	y, err := s.eval(sc, v.Y)
	if err != nil {
		return Value{}, err
	}
	switch v.Op {
	case "+":
		return Add(x, y), nil
	case "-":
		return Sub(x, y), nil
	case "*":
		return Mul(x, y), nil
	case "/":
		return Div(x, y), nil
	case "%":
		return Mod(x, y), nil
	case "**":
		return Pow(x, y), nil
	case "&":
		return And(x, y), nil
	case "|":
		return Or(x, y), nil
	case "^":
		return Xor(x, y), nil
	case "~^", "^~":
		return Xnor(x, y), nil
	case "<<":
		return Shl(x, y), nil
	case ">>":
		return Shr(x, y), nil
	case "<<<":
		return Shl(x, y), nil
	case ">>>":
		return Sshr(x, y), nil
	}
	return Value{}, rte(sc.Name, "unsupported binary operator %q", v.Op)
}

// compareBin dispatches a width-matched comparison.
func compareBin(op string, x, y Value) Value {
	switch op {
	case "==":
		return EqLogical(x, y)
	case "!=":
		eq := EqLogical(x, y)
		if eq.HasXZ() {
			return eq
		}
		return Bool(eq.A == 0)
	case "===":
		return Bool(x.EqExact(y))
	case "!==":
		return Bool(!x.EqExact(y))
	case "<":
		return Less(x, y)
	case ">":
		return Less(y, x)
	case "<=":
		gt := Less(y, x)
		if gt.HasXZ() {
			return gt
		}
		return Bool(gt.A == 0)
	case ">=":
		lt := Less(x, y)
		if lt.HasXZ() {
			return lt
		}
		return Bool(lt.A == 0)
	}
	return X(1)
}

func (s *Simulator) evalSysFunc(sc *Scope, v *verilog.SysFuncCall) (Value, error) {
	switch v.Name {
	case "$time", "$stime", "$realtime":
		return FromUint64(s.now, 64), nil
	case "$random":
		// xorshift64*: deterministic across runs.
		s.rng ^= s.rng << 13
		s.rng ^= s.rng >> 7
		s.rng ^= s.rng << 17
		out := FromUint64(s.rng*2685821657736338717>>32, 32)
		out.Signed = true
		return out, nil
	case "$signed":
		if len(v.Args) != 1 {
			return Value{}, rte(sc.Name, "$signed wants 1 argument")
		}
		x, err := s.eval(sc, v.Args[0])
		if err != nil {
			return Value{}, err
		}
		x.Signed = true
		return x, nil
	case "$unsigned":
		if len(v.Args) != 1 {
			return Value{}, rte(sc.Name, "$unsigned wants 1 argument")
		}
		x, err := s.eval(sc, v.Args[0])
		if err != nil {
			return Value{}, err
		}
		x.Signed = false
		return x, nil
	case "$clog2":
		if len(v.Args) != 1 {
			return Value{}, rte(sc.Name, "$clog2 wants 1 argument")
		}
		x, err := s.eval(sc, v.Args[0])
		if err != nil {
			return Value{}, err
		}
		if x.HasXZ() {
			return X(32), nil
		}
		n := x.Uint64()
		r := 0
		for (uint64(1) << uint(r)) < n {
			r++
		}
		return FromUint64(uint64(r), 32), nil
	}
	return Value{}, rte(sc.Name, "unsupported system function %q", v.Name)
}
