package sim

import (
	"repro/internal/verilog"
)

// procCtx is the per-goroutine execution context of a procedural block.
// All its methods run on the process goroutine; they communicate with
// the scheduler only through block().
type procCtx struct {
	s          *Simulator
	p          *Proc
	blockCount int
	loopGuard  int
}

// maxLoopGuard caps statements executed between two blocking points,
// catching zero-time infinite loops inside a single activation.
const maxLoopGuard = 2_000_000

func (c *procCtx) fail(err error)           { panic(simPanic{err}) }
func (c *procCtx) failf(f string, a ...any) { c.fail(rte(c.p.name, f, a...)) }

func (c *procCtx) guard() {
	c.loopGuard++
	if c.loopGuard > maxLoopGuard {
		c.failf("runaway loop without timing control")
	}
}

// evalMust evaluates an expression, panicking on error.
func (c *procCtx) evalMust(sc *Scope, e verilog.Expr) Value {
	v, err := c.s.eval(sc, e)
	if err != nil {
		c.fail(err)
	}
	return v
}

// block reports rep to the scheduler and parks until resumed.
func (c *procCtx) block(rep procReport) {
	c.p.report <- rep
	if !<-c.p.resume {
		panic(killToken{})
	}
	c.blockCount++
	c.loopGuard = 0
}

func (c *procCtx) waitDelay(d uint64) {
	c.block(procReport{kind: reportBlockedDelay, delay: d})
}

func (c *procCtx) waitEvent(items []*sensWait) {
	if len(items) == 0 {
		c.failf("event control with empty sensitivity")
	}
	c.block(procReport{kind: reportBlockedEvent, sens: items})
}

// exec interprets one statement.
func (c *procCtx) exec(sc *Scope, st verilog.Stmt) {
	if st == nil {
		return
	}
	c.guard()
	switch v := st.(type) {
	case *verilog.NullStmt:

	case *verilog.Block:
		for _, s := range v.Stmts {
			c.exec(sc, s)
		}

	case *verilog.Assign:
		w, err := c.s.lvalueWidth(sc, v.LHS)
		if err != nil {
			c.fail(err)
		}
		val, err := c.s.evalCtx(sc, v.RHS, w)
		if err != nil {
			c.fail(err)
		}
		switch {
		case v.NonBlocking && v.Delay != nil:
			// q <= #d rhs: resolve target now, land at now+d.
			d := c.evalMust(sc, v.Delay)
			upd, err := c.s.resolveStore(sc, v.LHS, val)
			if err != nil {
				c.fail(err)
			}
			t := c.s.now + d.Uint64()
			c.s.scheduleAt(t, func(s *Simulator) {
				s.nbaQ = append(s.nbaQ, upd...)
			})
		case v.NonBlocking:
			if err := c.s.store(sc, v.LHS, val, true); err != nil {
				c.fail(err)
			}
		case v.Delay != nil:
			// x = #d rhs: RHS evaluated before the wait per LRM.
			d := c.evalMust(sc, v.Delay)
			c.waitDelay(d.Uint64())
			if err := c.s.store(sc, v.LHS, val, false); err != nil {
				c.fail(err)
			}
		default:
			if err := c.s.store(sc, v.LHS, val, false); err != nil {
				c.fail(err)
			}
		}

	case *verilog.If:
		cond := c.evalMust(sc, v.Cond)
		if t, _ := cond.Truth(); t {
			c.exec(sc, v.Then)
		} else {
			c.exec(sc, v.Else)
		}

	case *verilog.Case:
		c.execCase(sc, v)

	case *verilog.For:
		c.exec(sc, v.Init)
		for {
			cond := c.evalMust(sc, v.Cond)
			t, _ := cond.Truth()
			if !t {
				break
			}
			c.exec(sc, v.Body)
			c.exec(sc, v.Step)
			c.guard()
		}

	case *verilog.While:
		for {
			cond := c.evalMust(sc, v.Cond)
			t, _ := cond.Truth()
			if !t {
				break
			}
			c.exec(sc, v.Body)
			c.guard()
		}

	case *verilog.Repeat:
		cnt := c.evalMust(sc, v.Count)
		if cnt.HasXZ() {
			return
		}
		n := cnt.Int64()
		for i := int64(0); i < n; i++ {
			c.exec(sc, v.Body)
			c.guard()
		}

	case *verilog.Forever:
		for {
			before := c.blockCount
			c.exec(sc, v.Body)
			if c.blockCount == before {
				c.failf("forever loop without timing control")
			}
			if c.s.finished {
				panic(finishToken{})
			}
		}

	case *verilog.DelayStmt:
		d := c.evalMust(sc, v.Delay)
		if d.HasXZ() {
			c.failf("x/z delay value")
		}
		c.waitDelay(d.Uint64())
		c.exec(sc, v.Body)

	case *verilog.EventCtrlStmt:
		var items []*sensWait
		if v.Star {
			// @*: wake on any change of any signal the body reads.
			// anyChange avoids re-evaluating expressions, which also
			// makes memory reads (mem[addr]) work in @* blocks.
			for _, sig := range c.p.starSens {
				items = append(items, &sensWait{
					edge:      verilog.EdgeLevel,
					anyChange: true,
					sc:        sc,
					deps:      []*Signal{sig},
				})
			}
			// A @* with nothing to read can never wake: treat as error.
			if len(items) == 0 {
				c.failf("@* with no readable signals")
			}
		} else {
			for _, it := range v.Items {
				deps := map[*Signal]bool{}
				if err := collectExprDeps(sc, it.Expr, deps); err != nil {
					c.fail(err)
				}
				sw := &sensWait{edge: it.Edge, expr: it.Expr, sc: sc, last: c.evalMust(sc, it.Expr)}
				for d := range deps {
					sw.deps = append(sw.deps, d)
				}
				items = append(items, sw)
			}
		}
		c.waitEvent(items)
		c.exec(sc, v.Body)

	case *verilog.SysCall:
		c.execSysCall(sc, v)

	default:
		c.failf("unsupported statement %T", st)
	}
}

// localName recovers the scope-local name of a signal (its hierarchical
// name minus the scope prefix).
func localName(sc *Scope, sig *Signal) string {
	prefix := sc.Name + "."
	if len(sig.Name) > len(prefix) && sig.Name[:len(prefix)] == prefix {
		return sig.Name[len(prefix):]
	}
	return sig.Name
}

func (c *procCtx) execCase(sc *Scope, v *verilog.Case) {
	// Per the LRM, all case expressions size to the widest involved.
	w, err := c.s.exprWidth(sc, v.Expr)
	if err != nil {
		c.fail(err)
	}
	for _, item := range v.Items {
		for _, e := range item.Exprs {
			iw, err := c.s.exprWidth(sc, e)
			if err != nil {
				c.fail(err)
			}
			if iw > w {
				w = iw
			}
		}
	}
	sel, err := c.s.evalCtx(sc, v.Expr, w)
	if err != nil {
		c.fail(err)
	}
	var deflt *verilog.CaseItem
	for _, item := range v.Items {
		if item.Default {
			deflt = item
			continue
		}
		for _, e := range item.Exprs {
			ev, err := c.s.evalCtx(sc, e, w)
			if err != nil {
				c.fail(err)
			}
			if caseMatch(v.Kind, sel, ev) {
				c.exec(sc, item.Body)
				return
			}
		}
	}
	if deflt != nil {
		c.exec(sc, deflt.Body)
	}
}

// caseMatch implements case/casez/casex comparison. For casez, z bits in
// either operand are wildcards; for casex, x and z bits are wildcards.
func caseMatch(kind verilog.CaseKind, sel, item Value) bool {
	w := sel.W
	if item.W > w {
		w = item.W
	}
	a, b := sel.Extend(w), item.Extend(w)
	var wild uint64
	switch kind {
	case verilog.CaseExact:
		return a.A&mask(w) == b.A&mask(w) && a.B&mask(w) == b.B&mask(w)
	case verilog.CaseZ:
		// z = (a=0,b=1)
		wild = (^a.A & a.B) | (^b.A & b.B)
	case verilog.CaseX:
		wild = a.B | b.B
	}
	m := mask(w) &^ wild
	return a.A&m == b.A&m && a.B&m == b.B&m
}
