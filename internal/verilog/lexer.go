package verilog

import (
	"fmt"
	"strings"
)

// SyntaxError describes a lexing or parsing failure with its position.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("verilog: %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Lexer scans Verilog source text into tokens. Comments are skipped;
// compiler-directive lines are emitted as TokDirective tokens so callers
// can ignore or record them.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the entire input, excluding the final EOF token.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return toks, err
		}
		if t.Kind == TokEOF {
			return toks, nil
		}
		toks = append(toks, t)
	}
}

func (l *Lexer) errf(format string, args ...any) error {
	return &SyntaxError{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || c == '$' || (c >= '0' && c <= '9')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isBaseDigit(c byte) bool {
	switch {
	case c >= '0' && c <= '9', c >= 'a' && c <= 'f', c >= 'A' && c <= 'F':
		return true
	case c == 'x', c == 'X', c == 'z', c == 'Z', c == '?', c == '_':
		return true
	}
	return false
}

// skipSpaceAndComments consumes whitespace, // and /* */ comments.
func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			startLine, startCol := l.line, l.col
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return &SyntaxError{Line: startLine, Col: startCol, Msg: "unterminated block comment"}
			}
		default:
			return nil
		}
	}
	return nil
}

// multi-character operators, longest first.
var multiOps = []string{
	"<<<", ">>>", "===", "!==",
	"<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"~&", "~|", "~^", "^~", "**",
}

// Next returns the next token, or a TokEOF token at end of input.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Line: l.line, Col: l.col}, nil
	}
	line, col := l.line, l.col
	c := l.peek()

	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentCont(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.pos]
		kind := TokIdent
		if IsKeyword(text) {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Line: line, Col: col}, nil

	case c == '\\': // escaped identifier: backslash up to whitespace
		l.advance()
		start := l.pos
		for l.pos < len(l.src) && l.peek() != ' ' && l.peek() != '\t' && l.peek() != '\n' && l.peek() != '\r' {
			l.advance()
		}
		if l.pos == start {
			return Token{}, l.errf("empty escaped identifier")
		}
		return Token{Kind: TokIdent, Text: l.src[start:l.pos], Line: line, Col: col}, nil

	case c == '$':
		l.advance()
		start := l.pos
		for l.pos < len(l.src) && isIdentCont(l.peek()) {
			l.advance()
		}
		if l.pos == start {
			return Token{}, l.errf("bare '$'")
		}
		return Token{Kind: TokSysName, Text: "$" + l.src[start:l.pos], Line: line, Col: col}, nil

	case c == '`':
		// Compiler directive: consume through end of line.
		start := l.pos
		for l.pos < len(l.src) && l.peek() != '\n' {
			l.advance()
		}
		return Token{Kind: TokDirective, Text: strings.TrimSpace(l.src[start:l.pos]), Line: line, Col: col}, nil

	case c == '"':
		l.advance()
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, l.errf("unterminated string literal")
			}
			ch := l.advance()
			if ch == '"' {
				break
			}
			if ch == '\\' {
				if l.pos >= len(l.src) {
					return Token{}, l.errf("unterminated escape in string")
				}
				esc := l.advance()
				switch esc {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '\\':
					sb.WriteByte('\\')
				case '"':
					sb.WriteByte('"')
				default:
					sb.WriteByte(esc)
				}
				continue
			}
			sb.WriteByte(ch)
		}
		return Token{Kind: TokString, Text: sb.String(), Line: line, Col: col}, nil

	case isDigit(c) || c == '\'':
		return l.lexNumber(line, col)
	}

	// Operators and punctuation.
	rest := l.src[l.pos:]
	for _, op := range multiOps {
		if strings.HasPrefix(rest, op) {
			for range op {
				l.advance()
			}
			return Token{Kind: TokOp, Text: op, Line: line, Col: col}, nil
		}
	}
	switch c {
	case '+', '-', '*', '/', '%', '<', '>', '!', '~', '&', '|', '^', '=':
		l.advance()
		return Token{Kind: TokOp, Text: string(c), Line: line, Col: col}, nil
	case '(', ')', '[', ']', '{', '}', ';', ',', ':', '.', '#', '@', '?':
		l.advance()
		return Token{Kind: TokPunct, Text: string(c), Line: line, Col: col}, nil
	}
	return Token{}, l.errf("unexpected character %q", string(c))
}

// lexNumber scans decimal literals and based literals such as 4'b10_x0,
// 8'hFF, 'd15. The size part, if present, has already not been consumed.
func (l *Lexer) lexNumber(line, col int) (Token, error) {
	start := l.pos
	for l.pos < len(l.src) && (isDigit(l.peek()) || l.peek() == '_') {
		l.advance()
	}
	// Optional base part.
	if l.peek() == '\'' {
		l.advance()
		if l.peek() == 's' || l.peek() == 'S' {
			l.advance()
		}
		switch l.peek() {
		case 'b', 'B', 'o', 'O', 'd', 'D', 'h', 'H':
			l.advance()
		default:
			return Token{}, l.errf("invalid number base %q", string(l.peek()))
		}
		ndigits := 0
		for l.pos < len(l.src) && isBaseDigit(l.peek()) {
			l.advance()
			ndigits++
		}
		if ndigits == 0 {
			return Token{}, l.errf("based literal missing digits")
		}
	} else if l.pos == start {
		return Token{}, l.errf("malformed number")
	}
	return Token{Kind: TokNumber, Text: l.src[start:l.pos], Line: line, Col: col}, nil
}
