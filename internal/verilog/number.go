package verilog

import (
	"fmt"
	"strings"
)

// MaxWidth is the widest vector the front-end and simulator support.
// All benchmark designs and the synthetic corpus stay within it.
const MaxWidth = 64

// ParseNumberLiteral parses a Verilog integer literal (sized, based or
// plain decimal) into a Number node. Underscores are permitted between
// digits. x and z digits are supported in binary, octal and hex bases;
// '?' is an alias for z.
func ParseNumberLiteral(text string, line int) (*Number, error) {
	n := &Number{Line: line, Text: text, Width: 32}
	s := text
	apos := strings.IndexByte(s, '\'')
	if apos < 0 {
		// Plain decimal.
		var v uint64
		digits := 0
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '_' {
				continue
			}
			if c < '0' || c > '9' {
				return nil, fmt.Errorf("verilog: invalid decimal literal %q", text)
			}
			v = v*10 + uint64(c-'0')
			digits++
		}
		if digits == 0 {
			return nil, fmt.Errorf("verilog: empty decimal literal %q", text)
		}
		n.A = v
		n.Signed = true // unsized decimals are signed per LRM
		return n, nil
	}

	// Optional size prefix.
	if apos > 0 {
		size := 0
		for i := 0; i < apos; i++ {
			c := s[i]
			if c == '_' {
				continue
			}
			if c < '0' || c > '9' {
				return nil, fmt.Errorf("verilog: invalid size in literal %q", text)
			}
			size = size*10 + int(c-'0')
		}
		if size <= 0 || size > MaxWidth {
			return nil, fmt.Errorf("verilog: unsupported literal width %d in %q (max %d)", size, text, MaxWidth)
		}
		n.Width = size
		n.Sized = true
	}
	rest := s[apos+1:]
	if rest == "" {
		return nil, fmt.Errorf("verilog: truncated literal %q", text)
	}
	if rest[0] == 's' || rest[0] == 'S' {
		n.Signed = true
		rest = rest[1:]
	}
	if rest == "" {
		return nil, fmt.Errorf("verilog: truncated literal %q", text)
	}
	base := rest[0]
	digits := rest[1:]
	var bitsPer int
	switch base {
	case 'b', 'B':
		bitsPer = 1
	case 'o', 'O':
		bitsPer = 3
	case 'h', 'H':
		bitsPer = 4
	case 'd', 'D':
		var v uint64
		ndig := 0
		for i := 0; i < len(digits); i++ {
			c := digits[i]
			if c == '_' {
				continue
			}
			if c < '0' || c > '9' {
				return nil, fmt.Errorf("verilog: invalid decimal digit %q in %q", string(c), text)
			}
			v = v*10 + uint64(c-'0')
			ndig++
		}
		if ndig == 0 {
			return nil, fmt.Errorf("verilog: empty decimal literal %q", text)
		}
		n.A = maskTo(v, n.Width)
		return n, nil
	default:
		return nil, fmt.Errorf("verilog: invalid base %q in %q", string(base), text)
	}

	var a, b uint64
	nbits := 0
	for i := 0; i < len(digits); i++ {
		c := digits[i]
		if c == '_' {
			continue
		}
		var da, db uint64
		switch {
		case c == 'x' || c == 'X':
			da = (1 << bitsPer) - 1
			db = (1 << bitsPer) - 1
		case c == 'z' || c == 'Z' || c == '?':
			da = 0
			db = (1 << bitsPer) - 1
		default:
			v, err := hexDigit(c)
			if err != nil || v >= (1<<bitsPer) {
				return nil, fmt.Errorf("verilog: invalid digit %q for base in %q", string(c), text)
			}
			da = v
		}
		if nbits+bitsPer > MaxWidth {
			return nil, fmt.Errorf("verilog: literal %q exceeds %d bits", text, MaxWidth)
		}
		a = a<<bitsPer | da
		b = b<<bitsPer | db
		nbits += bitsPer
	}
	if nbits == 0 {
		return nil, fmt.Errorf("verilog: based literal %q has no digits", text)
	}
	if !n.Sized {
		n.Width = 32
	}
	// Extend per LRM: if the leading digit is x or z, the extension
	// fills with x/z; otherwise zero-extend. Then truncate to width.
	if nbits > 0 && nbits < n.Width {
		topA := a >> (nbits - 1) & 1
		topB := b >> (nbits - 1) & 1
		if topB == 1 {
			ext := maskBits(n.Width) &^ maskBits(nbits)
			b |= ext
			if topA == 1 {
				a |= ext
			}
		}
	}
	n.A = maskTo(a, n.Width)
	n.B = maskTo(b, n.Width)
	return n, nil
}

func hexDigit(c byte) (uint64, error) {
	switch {
	case c >= '0' && c <= '9':
		return uint64(c - '0'), nil
	case c >= 'a' && c <= 'f':
		return uint64(c-'a') + 10, nil
	case c >= 'A' && c <= 'F':
		return uint64(c-'A') + 10, nil
	}
	return 0, fmt.Errorf("bad hex digit %q", string(c))
}

// maskBits returns a mask with the low w bits set (w in 0..64).
func maskBits(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}

// maskTo truncates v to w bits.
func maskTo(v uint64, w int) uint64 { return v & maskBits(w) }
