package verilog_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/verilog"
)

func TestCheckPrefixHandCases(t *testing.T) {
	cases := []struct {
		src  string
		want verilog.PrefixStatus
	}{
		// Viable prefixes, cut at every kind of seam.
		{"", verilog.PrefixValid},
		{"  \n", verilog.PrefixValid},
		{"module", verilog.PrefixValid},
		{"module ", verilog.PrefixValid},
		{"module m", verilog.PrefixValid},
		{"module m(", verilog.PrefixValid},
		{"module m(input a", verilog.PrefixValid},
		{"module m(input a, output y);", verilog.PrefixValid},
		{"module m(input a, output y); assign y = a", verilog.PrefixValid},
		{"module m(input a, output y); assign y = a;", verilog.PrefixValid},
		{"module m; always @(", verilog.PrefixValid},
		{"module m; always @(posedge clk) begin", verilog.PrefixValid},
		{"module m; wire [3:0", verilog.PrefixValid},
		{"module m; wire w = 4'b", verilog.PrefixValid},          // pending based literal
		{"module m; initial $display(\"hi", verilog.PrefixValid}, // pending string
		{"module m; /* comment", verilog.PrefixValid},            // pending block comment
		{"module m; initial $", verilog.PrefixValid},             // pending sysname
		{"module m; alw", verilog.PrefixValid},                   // mid-keyword cut
		{"module m; assign y <", verilog.PrefixValid},            // operator could grow to <=
		{"module m; endmodule mod", verilog.PrefixValid},         // "mod" may grow into "module"

		// Complete sources.
		{"module m(input a, output y); assign y = a; endmodule", verilog.PrefixComplete},
		{"module m; endmodule", verilog.PrefixComplete},
		{"module m; endmodule\n", verilog.PrefixComplete},
		{"module a; endmodule module b; endmodule", verilog.PrefixComplete},

		// No continuation can help these.
		{"wire w;", verilog.PrefixInvalid},                // no module
		{"module m;; endmodule", verilog.PrefixInvalid},   // stray ';' item
		{"module m(input a)) ", verilog.PrefixInvalid},    // unbalanced ')'
		{"module m; assign = a; ", verilog.PrefixInvalid}, // missing lvalue
		{"module m; always @() ", verilog.PrefixInvalid},  // empty sensitivity list
		{"module m; wire 4'b0; ", verilog.PrefixInvalid},  // number where ident expected
		{"module m; assign y = a b; ", verilog.PrefixInvalid},
		{"module m; wire w = 4'q", verilog.PrefixInvalid}, // bad base before the end
	}
	for _, tc := range cases {
		if got := verilog.CheckPrefix(tc.src); got != tc.want {
			t.Errorf("CheckPrefix(%q) = %v, want %v", tc.src, got, tc.want)
		}
	}
}

// TestCheckPrefixCompleteAgreesWithCheck pins the anchor invariant:
// a source that passes the full parse gate must classify Complete,
// and one that fails it must never classify Complete.
func TestCheckPrefixCompleteAgreesWithCheck(t *testing.T) {
	for _, p := range bench.All() {
		for name, src := range map[string]string{"ref": p.Ref, "tb": p.Testbench} {
			ok := verilog.Check(src) == nil
			st := verilog.CheckPrefix(src)
			if ok && st != verilog.PrefixComplete {
				t.Errorf("%s/%s: Check passes but CheckPrefix = %v", p.ID, name, st)
			}
			if !ok && st == verilog.PrefixComplete {
				t.Errorf("%s/%s: Check fails but CheckPrefix = complete", p.ID, name)
			}
		}
	}
}

// TestCheckPrefixMonotoneOnBenchCorpus is the soundness property the
// draft pruner rests on: every byte-level prefix of a source that
// parses must classify Valid or Complete — if any prefix of a valid
// module reported Invalid, the oracle would prune a branch the model
// was entitled to take. Every reference design and testbench in the
// bench corpus is swept at every byte.
func TestCheckPrefixMonotoneOnBenchCorpus(t *testing.T) {
	checked := 0
	for _, p := range bench.All() {
		for name, src := range map[string]string{"ref": p.Ref, "tb": p.Testbench} {
			if verilog.Check(src) != nil {
				continue // only parsable sources carry the invariant
			}
			for i := 0; i <= len(src); i++ {
				if st := verilog.CheckPrefix(src[:i]); st == verilog.PrefixInvalid {
					t.Fatalf("%s/%s: prefix of %d/%d bytes classified invalid:\n%q",
						p.ID, name, i, len(src), tail(src[:i], 60))
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no parsable bench sources — the sweep checked nothing")
	}
}

func tail(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return "…" + s[len(s)-n:]
}

func TestLexPrefixSeams(t *testing.T) {
	pl := verilog.LexPrefix("assign y = a; // trailing comment")
	if pl.Err != nil || pl.Pending {
		t.Fatalf("unexpected err=%v pending=%v", pl.Err, pl.Pending)
	}
	if len(pl.Toks) != 5 {
		t.Fatalf("got %d tokens, want 5", len(pl.Toks))
	}
	// Ends must advance and stop before the comment.
	last := 0
	for i, e := range pl.Ends {
		if e <= last {
			t.Fatalf("Ends[%d]=%d does not advance past %d", i, e, last)
		}
		last = e
	}
	if want := len("assign y = a;"); last != want {
		t.Fatalf("final token ends at %d, want %d", last, want)
	}

	for _, src := range []string{"\"open", "/* open", "4'b", "$", "\\"} {
		if pl := verilog.LexPrefix(src); !pl.Pending || pl.Err != nil {
			t.Errorf("LexPrefix(%q): pending=%v err=%v, want pending", src, pl.Pending, pl.Err)
		}
	}
	if pl := verilog.LexPrefix("4'q + 1"); pl.Pending || pl.Err == nil {
		t.Errorf("LexPrefix(4'q...): pending=%v err=%v, want hard error", pl.Pending, pl.Err)
	}
}
