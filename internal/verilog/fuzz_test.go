package verilog

import (
	"strings"
	"testing"
)

// FuzzLexer feeds arbitrary source text to the lexer and checks its
// contract rather than its output: it must never panic or loop, every
// token must carry sane positions and non-empty spelling where the
// grammar promises one, and errors must be *SyntaxError with a real
// position. Lexing is the front door of the syntax pass-rate metric, so
// a crash here would take down the whole evaluation pipeline on one
// malformed generation.
func FuzzLexer(f *testing.F) {
	f.Add("")
	f.Add("module m(input a, output y); assign y = a; endmodule")
	f.Add("wire [7:0] w = 8'hFF; // comment\n")
	f.Add("/* unterminated")
	f.Add("\"string with \\\" escape\"")
	f.Add("4'b10_x0 + 'd15 ** 2")
	f.Add("`define X 1\n\\escaped$id $display(\"hi\")")
	f.Add("\x00\xff\x80 emoji: ⏚")
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := Lex(src)
		if err != nil {
			se, ok := err.(*SyntaxError)
			if !ok {
				t.Fatalf("error is %T, want *SyntaxError", err)
			}
			if se.Line < 1 || se.Col < 1 {
				t.Fatalf("error position %d:%d out of range", se.Line, se.Col)
			}
		}
		prevLine, prevCol := 1, 1
		for i, tok := range toks {
			if tok.Kind == TokEOF {
				t.Fatalf("token %d: EOF leaked into the token stream", i)
			}
			if tok.Line < 1 || tok.Col < 1 {
				t.Fatalf("token %d: position %d:%d out of range", i, tok.Line, tok.Col)
			}
			if tok.Line < prevLine || (tok.Line == prevLine && tok.Col < prevCol) {
				t.Fatalf("token %d: position %d:%d precedes %d:%d", i, tok.Line, tok.Col, prevLine, prevCol)
			}
			prevLine, prevCol = tok.Line, tok.Col
			switch tok.Kind {
			case TokIdent, TokKeyword, TokNumber, TokOp, TokPunct, TokSysName, TokDirective:
				if tok.Kind != TokDirective && tok.Text == "" {
					t.Fatalf("token %d: kind %v with empty text", i, tok.Kind)
				}
			case TokString:
				// Empty strings are legal ("").
			default:
				t.Fatalf("token %d: unknown kind %v", i, tok.Kind)
			}
			if tok.Kind == TokKeyword && !IsKeyword(tok.Text) {
				t.Fatalf("token %d: keyword kind for non-keyword %q", i, tok.Text)
			}
			if tok.Kind == TokIdent && IsKeyword(tok.Text) {
				t.Fatalf("token %d: identifier kind for keyword %q", i, tok.Text)
			}
			if tok.Kind == TokDirective && !strings.HasPrefix(tok.Text, "`") {
				t.Fatalf("token %d: directive %q missing backtick", i, tok.Text)
			}
		}
	})
}
