package verilog

// This file defines the abstract syntax tree for the supported Verilog
// subset. The tree is deliberately close to the concrete syntax: the
// fragment layer (package frag) walks it to collect syntactically
// significant tokens, and the simulator (package verilog/sim) elaborates
// it directly.

// Node is implemented by every AST node.
type Node interface {
	// Pos returns the 1-based source line the node starts on.
	Pos() int
}

// SourceFile is a parsed compilation unit: a list of modules plus any
// compiler directives encountered.
type SourceFile struct {
	Modules    []*Module
	Directives []string
}

// Pos implements Node.
func (f *SourceFile) Pos() int {
	if len(f.Modules) > 0 {
		return f.Modules[0].Pos()
	}
	return 1
}

// PortDir is a port direction.
type PortDir int

// Port directions.
const (
	PortInput PortDir = iota
	PortOutput
	PortInout
)

// String returns the Verilog spelling of the direction.
func (d PortDir) String() string {
	switch d {
	case PortInput:
		return "input"
	case PortOutput:
		return "output"
	case PortInout:
		return "inout"
	}
	return "?"
}

// NetKind distinguishes variable kinds in declarations.
type NetKind int

// Net kinds.
const (
	NetWire NetKind = iota
	NetReg
	NetInteger
)

// String returns the Verilog spelling of the net kind.
func (k NetKind) String() string {
	switch k {
	case NetWire:
		return "wire"
	case NetReg:
		return "reg"
	case NetInteger:
		return "integer"
	}
	return "?"
}

// Range is a bit range [MSB:LSB] with constant bounds.
type Range struct {
	MSB, LSB int
}

// Width returns the number of bits the range spans.
func (r Range) Width() int {
	if r.MSB >= r.LSB {
		return r.MSB - r.LSB + 1
	}
	return r.LSB - r.MSB + 1
}

// Port is a module port declaration (ANSI or non-ANSI style normalized).
type Port struct {
	Line   int
	Dir    PortDir
	Kind   NetKind // wire (default) or reg
	Signed bool
	HasRng bool
	Rng    Range
	Name   string
}

// Pos implements Node.
func (p *Port) Pos() int { return p.Line }

// Module is a module declaration.
type Module struct {
	Line  int
	Name  string
	Ports []*Port
	Items []Item
}

// Pos implements Node.
func (m *Module) Pos() int { return m.Line }

// PortByName returns the port with the given name, or nil.
func (m *Module) PortByName(name string) *Port {
	for _, p := range m.Ports {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Item is a module-level item (declaration, assign, always, ...).
type Item interface {
	Node
	item()
}

// NetDecl declares one or more nets/variables, optionally with a memory
// (1-D array) dimension: reg [7:0] mem [0:15];
type NetDecl struct {
	Line   int
	Kind   NetKind
	Signed bool
	HasRng bool
	Rng    Range
	Names  []DeclName
}

// DeclName is a single declared name with optional array bounds and
// initializer (initializers only permitted on module-level integers in
// this subset; they are applied at time zero).
type DeclName struct {
	Name    string
	IsArray bool
	ARng    Range
	Init    Expr // may be nil
}

// Pos implements Node.
func (d *NetDecl) Pos() int { return d.Line }
func (d *NetDecl) item()    {}

// ParamDecl declares parameters or localparams with constant values.
type ParamDecl struct {
	Line       int
	Localparam bool
	Names      []string
	Values     []Expr
}

// Pos implements Node.
func (d *ParamDecl) Pos() int { return d.Line }
func (d *ParamDecl) item()    {}

// ContAssign is a continuous assignment: assign [#d] lhs = rhs;
type ContAssign struct {
	Line  int
	Delay Expr // may be nil
	LHS   Expr
	RHS   Expr
}

// Pos implements Node.
func (a *ContAssign) Pos() int { return a.Line }
func (a *ContAssign) item()    {}

// AlwaysBlock is an always construct with its body statement. The body
// usually starts with an event control (@(...)), represented as an
// EventCtrlStmt.
type AlwaysBlock struct {
	Line int
	Body Stmt
}

// Pos implements Node.
func (a *AlwaysBlock) Pos() int { return a.Line }
func (a *AlwaysBlock) item()    {}

// InitialBlock is an initial construct.
type InitialBlock struct {
	Line int
	Body Stmt
}

// Pos implements Node.
func (a *InitialBlock) Pos() int { return a.Line }
func (a *InitialBlock) item()    {}

// Instance is a module instantiation with named or positional
// connections.
type Instance struct {
	Line     int
	ModName  string
	InstName string
	ByName   bool
	Conns    []Connection
}

// Connection is one port connection of an Instance.
type Connection struct {
	Port string // empty for positional
	Expr Expr   // may be nil for unconnected
}

// Pos implements Node.
func (a *Instance) Pos() int { return a.Line }
func (a *Instance) item()    {}

// --- Statements ---

// Stmt is a procedural statement.
type Stmt interface {
	Node
	stmt()
}

// Block is a begin/end sequence with an optional label.
type Block struct {
	Line  int
	Label string
	Stmts []Stmt
}

// Pos implements Node.
func (s *Block) Pos() int { return s.Line }
func (s *Block) stmt()    {}

// Assign is a procedural assignment. NonBlocking selects <= vs =. An
// optional intra-assignment delay (x = #5 y) is ignored by the
// simulator but accepted by the parser.
type Assign struct {
	Line        int
	NonBlocking bool
	LHS         Expr
	Delay       Expr // may be nil
	RHS         Expr
}

// Pos implements Node.
func (s *Assign) Pos() int { return s.Line }
func (s *Assign) stmt()    {}

// If is an if/else statement. Else may be nil.
type If struct {
	Line int
	Cond Expr
	Then Stmt // may be nil (empty statement)
	Else Stmt // may be nil
}

// Pos implements Node.
func (s *If) Pos() int { return s.Line }
func (s *If) stmt()    {}

// CaseKind distinguishes case/casez/casex.
type CaseKind int

// Case kinds.
const (
	CaseExact CaseKind = iota
	CaseZ
	CaseX
)

// CaseItem is one arm of a case statement; a nil/empty Exprs slice with
// Default=true marks the default arm.
type CaseItem struct {
	Line    int
	Default bool
	Exprs   []Expr
	Body    Stmt // may be nil
}

// Case is a case statement.
type Case struct {
	Line  int
	Kind  CaseKind
	Expr  Expr
	Items []*CaseItem
}

// Pos implements Node.
func (s *Case) Pos() int { return s.Line }
func (s *Case) stmt()    {}

// For is a for loop: for (init; cond; step) body.
type For struct {
	Line int
	Init *Assign
	Cond Expr
	Step *Assign
	Body Stmt
}

// Pos implements Node.
func (s *For) Pos() int { return s.Line }
func (s *For) stmt()    {}

// While is a while loop.
type While struct {
	Line int
	Cond Expr
	Body Stmt
}

// Pos implements Node.
func (s *While) Pos() int { return s.Line }
func (s *While) stmt()    {}

// Repeat is a repeat(n) loop.
type Repeat struct {
	Line  int
	Count Expr
	Body  Stmt
}

// Pos implements Node.
func (s *Repeat) Pos() int { return s.Line }
func (s *Repeat) stmt()    {}

// Forever is a forever loop (testbench clock generators).
type Forever struct {
	Line int
	Body Stmt
}

// Pos implements Node.
func (s *Forever) Pos() int { return s.Line }
func (s *Forever) stmt()    {}

// DelayStmt is #expr stmt (stmt may be nil for a bare delay).
type DelayStmt struct {
	Line  int
	Delay Expr
	Body  Stmt // may be nil
}

// Pos implements Node.
func (s *DelayStmt) Pos() int { return s.Line }
func (s *DelayStmt) stmt()    {}

// SensItem is one entry of a sensitivity list.
type SensItem struct {
	Edge int // 0 = level, 1 = posedge, 2 = negedge
	Expr Expr
}

// Edge constants for SensItem.
const (
	EdgeLevel = 0
	EdgePos   = 1
	EdgeNeg   = 2
)

// EventCtrlStmt is @(...) stmt or @* stmt. Star marks @* / @(*).
type EventCtrlStmt struct {
	Line  int
	Star  bool
	Items []SensItem
	Body  Stmt // may be nil
}

// Pos implements Node.
func (s *EventCtrlStmt) Pos() int { return s.Line }
func (s *EventCtrlStmt) stmt()    {}

// SysCall is a system task invocation statement like $display(...).
type SysCall struct {
	Line int
	Name string
	Args []Expr
}

// Pos implements Node.
func (s *SysCall) Pos() int { return s.Line }
func (s *SysCall) stmt()    {}

// NullStmt is a lone semicolon.
type NullStmt struct{ Line int }

// Pos implements Node.
func (s *NullStmt) Pos() int { return s.Line }
func (s *NullStmt) stmt()    {}

// --- Expressions ---

// Expr is an expression node.
type Expr interface {
	Node
	expr()
}

// Ident is a name reference.
type Ident struct {
	Line int
	Name string
}

// Pos implements Node.
func (e *Ident) Pos() int { return e.Line }
func (e *Ident) expr()    {}

// Number is an integer literal with 4-state planes: bit i is 0 when
// (A>>i,B>>i) = (0,0), 1 for (1,0), z for (0,1) and x for (1,1).
type Number struct {
	Line   int
	Text   string
	Width  int // declared width; 32 for unsized
	Sized  bool
	Signed bool
	A, B   uint64
}

// Pos implements Node.
func (e *Number) Pos() int { return e.Line }
func (e *Number) expr()    {}

// StringLit is a string literal expression (testbench messages).
type StringLit struct {
	Line int
	Val  string
}

// Pos implements Node.
func (e *StringLit) Pos() int { return e.Line }
func (e *StringLit) expr()    {}

// Unary is a prefix operator application: ! ~ & | ^ ~& ~| ~^ + -.
type Unary struct {
	Line int
	Op   string
	X    Expr
}

// Pos implements Node.
func (e *Unary) Pos() int { return e.Line }
func (e *Unary) expr()    {}

// Binary is an infix operator application.
type Binary struct {
	Line int
	Op   string
	X, Y Expr
}

// Pos implements Node.
func (e *Binary) Pos() int { return e.Line }
func (e *Binary) expr()    {}

// Ternary is cond ? a : b.
type Ternary struct {
	Line   int
	Cond   Expr
	TrueE  Expr
	FalseE Expr
}

// Pos implements Node.
func (e *Ternary) Pos() int { return e.Line }
func (e *Ternary) expr()    {}

// Concat is {a, b, c}.
type Concat struct {
	Line  int
	Parts []Expr
}

// Pos implements Node.
func (e *Concat) Pos() int { return e.Line }
func (e *Concat) expr()    {}

// Repl is {n{expr}} replication.
type Repl struct {
	Line  int
	Count Expr
	X     Expr
}

// Pos implements Node.
func (e *Repl) Pos() int { return e.Line }
func (e *Repl) expr()    {}

// Index is a bit-select or memory word select: x[i].
type Index struct {
	Line int
	X    Expr
	Idx  Expr
}

// Pos implements Node.
func (e *Index) Pos() int { return e.Line }
func (e *Index) expr()    {}

// RangeSel is a constant part-select x[msb:lsb].
type RangeSel struct {
	Line     int
	X        Expr
	MSB, LSB Expr
}

// Pos implements Node.
func (e *RangeSel) Pos() int { return e.Line }
func (e *RangeSel) expr()    {}

// SysFuncCall is a system function in expression position ($time,
// $random, $signed, $unsigned).
type SysFuncCall struct {
	Line int
	Name string
	Args []Expr
}

// Pos implements Node.
func (e *SysFuncCall) Pos() int { return e.Line }
func (e *SysFuncCall) expr()    {}
