package verilog

import "testing"

// FuzzParser feeds arbitrary source text to the full parser and checks
// its contract: it must never panic or loop, a failure must be a
// *SyntaxError with a message, success must produce a module-bearing
// AST that Check agrees with, and — the invariant the grammar-drafting
// oracle rests on — no byte prefix of a parsable source may ever be
// condemned by CheckPrefix, and CheckPrefix itself must classify
// without crashing on whatever the mutator produces.
func FuzzParser(f *testing.F) {
	f.Add("")
	f.Add("module m; endmodule")
	f.Add("module m(input a, output y); assign y = a | ~a; endmodule")
	f.Add("module m(input clk, rst, input [7:0] d, output reg [7:0] q);\nalways @(posedge clk or posedge rst) begin\n  if (rst) q <= 8'b0;\n  else q <= d;\nend\nendmodule")
	f.Add("module m; parameter W = 4; wire [W-1:0] w; endmodule")
	f.Add("module m(input [1:0] s, output reg y);\nalways @(*) begin\n  case (s)\n    2'b00: y = 1'b0;\n    default: y = 1'b1;\n  endcase\nend\nendmodule")
	f.Add("module m(input a, output y); assign y =")
	f.Add("module m(input a")
	f.Add("`timescale 1ns/1ps\nmodule tb; initial begin $display(\"TEST PASSED\"); $finish; end endmodule")
	f.Add("module ; endmodule")
	f.Add("endmodule module")
	f.Add("module m; wire [3:0] w = {2{2'b01}}; endmodule")
	f.Fuzz(func(t *testing.T, src string) {
		file, err := Parse(src)
		if err != nil {
			se, ok := err.(*SyntaxError)
			if !ok {
				t.Fatalf("error is %T, want *SyntaxError", err)
			}
			if se.Msg == "" {
				t.Fatal("error with empty message")
			}
		} else {
			if file == nil || len(file.Modules) == 0 {
				t.Fatal("successful parse produced no modules")
			}
		}
		if cerr := Check(src); (cerr == nil) != (err == nil) {
			t.Fatalf("Check error %v disagrees with Parse error %v", cerr, err)
		}

		// CheckPrefix classifies arbitrary text without crashing, and
		// agrees with the parser on complete sources.
		st := CheckPrefix(src)
		if err == nil && st != PrefixComplete {
			t.Fatalf("parsable source classified %v, want complete", st)
		}

		// Prefix soundness: a parsable source reached its final state
		// through parsable-prefix territory — no cut point may be
		// condemned, or the drafting oracle would prune the very branch
		// the model is decoding. Bounded so the fuzzer spends its budget
		// on diverse inputs rather than one long sweep.
		if err == nil && len(src) <= 160 {
			for i := 0; i <= len(src); i++ {
				if got := CheckPrefix(src[:i]); got == PrefixInvalid {
					t.Fatalf("prefix %q of parsable source condemned", src[:i])
				}
			}
		}
	})
}
