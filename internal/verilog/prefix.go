package verilog

// Prefix-parsability: the incremental-syntax primitives behind
// grammar-constrained drafting (internal/core/spec/grammar). A decode
// in progress is a source file cut off mid-stream; the question the
// draft pruner needs answered is not "does this parse?" but "could any
// continuation of this parse?". Two observations make that answerable
// with the existing lexer and parser, unchanged:
//
//   - The lexer fails at the very end of the input exactly when more
//     text could still complete the current token (unterminated string
//     or block comment, a based literal still missing its digits, a
//     bare '$' or '\'). A lexing error strictly before the end can
//     never be repaired by appending — LexPrefix turns that position
//     test into a Pending flag.
//
//   - The parser is LL recursive descent and never backtracks, so when
//     it errors while positioned at end-of-input the consumed tokens
//     were a viable prefix (some continuation exists), while an error
//     at an interior token condemns the stream no matter what follows.
//     CheckTokenPrefix turns that into a PrefixStatus.
//
// The one wrinkle is the seam: a prefix may end inside what will
// become a longer token ("alw" → "always", "<" → "<="), so a final
// token that touches end-of-input and whose kind can grow is judged
// optimistically — dropped before the parse check when keeping it
// would condemn the stream. The classification is deliberately lenient
// (a handful of constant-folding errors at end-of-input report Valid
// for streams no continuation can fix); the drafting layer only ever
// uses Invalid to prune, so leniency costs pruning power, never
// correctness.

// PrefixStatus classifies a source prefix.
type PrefixStatus int

const (
	// PrefixInvalid: no continuation can make the text parse.
	PrefixInvalid PrefixStatus = iota
	// PrefixValid: the text is a viable proper prefix — it does not
	// parse as-is, but appending text may complete it.
	PrefixValid
	// PrefixComplete: the text parses as a complete source file as-is
	// (it may still be extended, e.g. with another module).
	PrefixComplete
)

// String names the status for diagnostics.
func (s PrefixStatus) String() string {
	switch s {
	case PrefixInvalid:
		return "invalid"
	case PrefixValid:
		return "valid"
	case PrefixComplete:
		return "complete"
	}
	return "unknown"
}

// PrefixLex is the result of lexing a possibly-truncated source
// prefix: the complete tokens, where each one's bytes end, and whether
// the input stops inside an unfinished token.
type PrefixLex struct {
	// Toks are the complete tokens scanned before the end (or before
	// the unfinished tail).
	Toks []Token
	// Ends holds, parallel to Toks, the byte offset just past each
	// token's spelling — the seam an incremental re-lex resumes from.
	Ends []int
	// Pending reports that the input ends inside an unfinished token
	// (unterminated string or block comment, a based literal missing
	// digits, ...) that appending more text could complete.
	Pending bool
	// Err is the lexing error when the failure cannot be repaired by
	// appending text; always nil when Pending is true.
	Err error
}

// LexPrefix scans src as a source prefix: like Lex, but a failure at
// the very end of the input is reported as Pending instead of an
// error, since more text could complete the token being scanned.
func LexPrefix(src string) PrefixLex {
	lx := NewLexer(src)
	var pl PrefixLex
	for {
		t, err := lx.Next()
		if err != nil {
			// The lexer stops advancing the moment a token goes wrong,
			// so "consumed everything" means the error is the cut
			// itself, not the text.
			if lx.pos >= len(src) {
				pl.Pending = true
			} else {
				pl.Err = err
			}
			return pl
		}
		if t.Kind == TokEOF {
			return pl
		}
		pl.Toks = append(pl.Toks, t)
		pl.Ends = append(pl.Ends, lx.pos)
	}
}

// ExtendableKind reports whether appending bytes directly after a
// token of this kind could grow it into a different, longer token
// ("alw"+"ays", "4'b1"+"0", "<"+"="). Punctuation is always a single
// rune and a closed string cannot reopen; everything else can grow.
func ExtendableKind(k TokenKind) bool {
	switch k {
	case TokPunct, TokString:
		return false
	}
	return true
}

// CheckPrefix classifies src as a prefix of a parsable source file.
func CheckPrefix(src string) PrefixStatus {
	pl := LexPrefix(src)
	if pl.Err != nil {
		return PrefixInvalid
	}
	st := CheckTokenPrefix(pl.Toks, pl.Pending)
	if st == PrefixInvalid && !pl.Pending {
		// The final token touches the end of the input and could still
		// grow into something else — judge only the stable stream.
		if n := len(pl.Toks); n > 0 && pl.Ends[n-1] == len(src) && ExtendableKind(pl.Toks[n-1].Kind) {
			st = CheckTokenPrefix(pl.Toks[:n-1], true)
		}
	}
	return st
}

// CheckTokenPrefix reports whether toks could begin a parsable source
// file. open marks a stream whose tail is still growing (the source
// ended mid-token, or the caller dropped an extendable final token):
// an open stream that parses completely is only Valid, since the text
// behind it is not complete as written.
func CheckTokenPrefix(toks []Token, open bool) PrefixStatus {
	p := &Parser{toks: toks}
	_, err := p.parseSourceFile()
	switch {
	case err == nil && !open:
		return PrefixComplete
	case err == nil:
		return PrefixValid
	case p.pos >= len(p.toks):
		// Every parse error raised while positioned at end-of-input —
		// "unexpected end of input inside module", "unterminated
		// begin/end block", "expected ';', found end of input" — means
		// the tokens consumed so far were viable.
		return PrefixValid
	}
	return PrefixInvalid
}
