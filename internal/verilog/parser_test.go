package verilog

import (
	"strings"
	"testing"
)

const dataRegisterSrc = `
// 4-bit data register from the paper's running example (Fig. 3/5).
module data_register (
    input clk,
    input [3:0] data_in,
    output reg [3:0] data_out
);
    always @(posedge clk) begin
        data_out <= data_in;
    end
endmodule
`

func TestLexBasics(t *testing.T) {
	toks, err := Lex("module m; assign x = 4'b10x0 + y; endmodule")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	var kinds []TokenKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
		texts = append(texts, tk.Text)
	}
	want := []string{"module", "m", ";", "assign", "x", "=", "4'b10x0", "+", "y", ";", "endmodule"}
	if len(texts) != len(want) {
		t.Fatalf("token count = %d, want %d (%v)", len(texts), len(want), texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
	if kinds[0] != TokKeyword || kinds[1] != TokIdent || kinds[6] != TokNumber {
		t.Errorf("unexpected kinds: %v", kinds)
	}
}

func TestLexComments(t *testing.T) {
	src := `
// line comment
module /* block
   comment */ m;
endmodule`
	toks, err := Lex(src)
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	if len(toks) != 4 {
		t.Fatalf("got %d tokens, want 4: %v", len(toks), toks)
	}
}

func TestLexUnterminatedComment(t *testing.T) {
	if _, err := Lex("module m; /* oops"); err == nil {
		t.Fatal("expected error for unterminated block comment")
	}
}

func TestLexUnterminatedString(t *testing.T) {
	if _, err := Lex("$display(\"no end"); err == nil {
		t.Fatal("expected error for unterminated string")
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := Lex("<<< >>> === !== << >> <= >= == != && || ~& ~| ~^ ^~ ** + - * / % < > ! ~ & | ^ =")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	want := strings.Fields("<<< >>> === !== << >> <= >= == != && || ~& ~| ~^ ^~ ** + - * / % < > ! ~ & | ^ =")
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(want))
	}
	for i, w := range want {
		if toks[i].Text != w || toks[i].Kind != TokOp {
			t.Errorf("token %d = %v, want op %q", i, toks[i], w)
		}
	}
}

func TestLexDirective(t *testing.T) {
	toks, err := Lex("`timescale 1ns/1ps\nmodule m; endmodule")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	if toks[0].Kind != TokDirective || !strings.HasPrefix(toks[0].Text, "`timescale") {
		t.Fatalf("directive not lexed: %v", toks[0])
	}
}

func TestNumberLiterals(t *testing.T) {
	cases := []struct {
		text  string
		width int
		a, b  uint64
	}{
		{"42", 32, 42, 0},
		{"4'b1010", 4, 0b1010, 0},
		{"4'b10x0", 4, 0b1010, 0b0010},
		{"4'bz", 4, 0, 0b1111},
		{"8'hFF", 8, 0xFF, 0},
		{"8'hzz", 8, 0, 0xFF},
		{"6'o17", 6, 0o17, 0},
		{"16'd1000", 16, 1000, 0},
		{"3'd7", 3, 7, 0},
		{"1'b1", 1, 1, 0},
		{"32'hDEAD_BEEF", 32, 0xDEADBEEF, 0},
		{"4'b?", 4, 0, 0b1111},
	}
	for _, c := range cases {
		n, err := ParseNumberLiteral(c.text, 1)
		if err != nil {
			t.Errorf("%s: %v", c.text, err)
			continue
		}
		if n.Width != c.width || n.A != c.a || n.B != c.b {
			t.Errorf("%s: got width=%d a=%b b=%b, want width=%d a=%b b=%b",
				c.text, n.Width, n.A, n.B, c.width, c.a, c.b)
		}
	}
}

func TestNumberLiteralErrors(t *testing.T) {
	for _, text := range []string{"4'", "4'q1010", "'b", "4'b2", "200'b1", "4'dxz"} {
		if _, err := ParseNumberLiteral(text, 1); err == nil {
			t.Errorf("%s: expected error", text)
		}
	}
}

func TestParseDataRegister(t *testing.T) {
	f, err := Parse(dataRegisterSrc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(f.Modules) != 1 {
		t.Fatalf("got %d modules, want 1", len(f.Modules))
	}
	m := f.Modules[0]
	if m.Name != "data_register" {
		t.Errorf("module name = %q", m.Name)
	}
	if len(m.Ports) != 3 {
		t.Fatalf("got %d ports, want 3", len(m.Ports))
	}
	if m.Ports[0].Name != "clk" || m.Ports[0].Dir != PortInput {
		t.Errorf("port 0 = %+v", m.Ports[0])
	}
	dout := m.PortByName("data_out")
	if dout == nil || dout.Dir != PortOutput || dout.Kind != NetReg || !dout.HasRng || dout.Rng.Width() != 4 {
		t.Errorf("data_out = %+v", dout)
	}
	if len(m.Items) != 1 {
		t.Fatalf("got %d items, want 1 always block", len(m.Items))
	}
	alw, ok := m.Items[0].(*AlwaysBlock)
	if !ok {
		t.Fatalf("item 0 is %T, want *AlwaysBlock", m.Items[0])
	}
	ec, ok := alw.Body.(*EventCtrlStmt)
	if !ok {
		t.Fatalf("always body is %T, want *EventCtrlStmt", alw.Body)
	}
	if len(ec.Items) != 1 || ec.Items[0].Edge != EdgePos {
		t.Errorf("sensitivity = %+v", ec.Items)
	}
	blk, ok := ec.Body.(*Block)
	if !ok || len(blk.Stmts) != 1 {
		t.Fatalf("block = %+v", ec.Body)
	}
	asg, ok := blk.Stmts[0].(*Assign)
	if !ok || !asg.NonBlocking {
		t.Fatalf("stmt = %+v", blk.Stmts[0])
	}
}

func TestParseNonANSIPorts(t *testing.T) {
	src := `
module counter(clk, rst, q);
  input clk, rst;
  output [7:0] q;
  reg [7:0] q;
  always @(posedge clk or posedge rst)
    if (rst) q <= 8'd0; else q <= q + 1;
endmodule`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	m := f.Modules[0]
	q := m.PortByName("q")
	if q == nil || q.Dir != PortOutput || !q.HasRng || q.Rng.Width() != 8 {
		t.Fatalf("q = %+v", q)
	}
}

func TestParseParameters(t *testing.T) {
	src := `
module p #(parameter WIDTH = 8, DEPTH = 4) (
  input [WIDTH-1:0] d,
  output [WIDTH-1:0] q
);
  localparam HALF = WIDTH / 2;
  wire [HALF-1:0] lo;
  assign lo = d[HALF-1:0];
  assign q = {d[WIDTH-1:HALF], lo};
endmodule`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	m := f.Modules[0]
	d := m.PortByName("d")
	if d == nil || d.Rng.Width() != 8 {
		t.Fatalf("d = %+v", d)
	}
}

func TestParseCaseAndFor(t *testing.T) {
	src := `
module alu(input [1:0] op, input [3:0] a, b, output reg [3:0] y);
  integer i;
  always @(*) begin
    case (op)
      2'b00: y = a + b;
      2'b01: y = a - b;
      2'b10, 2'b11: y = a & b;
      default: y = 4'b0;
    endcase
    for (i = 0; i < 4; i = i + 1) begin
      y = y ^ (a >> i);
    end
  end
endmodule`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	m := f.Modules[0]
	// 'a, b' in one decl: both ports carried.
	if m.PortByName("b") == nil {
		t.Fatal("port b missing")
	}
	var foundCase, foundFor bool
	alw := m.Items[1].(*AlwaysBlock)
	ec := alw.Body.(*EventCtrlStmt)
	if !ec.Star {
		t.Error("expected @(*) star sensitivity")
	}
	blk := ec.Body.(*Block)
	for _, s := range blk.Stmts {
		switch s.(type) {
		case *Case:
			foundCase = true
		case *For:
			foundFor = true
		}
	}
	if !foundCase || !foundFor {
		t.Errorf("case=%v for=%v", foundCase, foundFor)
	}
}

func TestParseInstanceNamedAndPositional(t *testing.T) {
	src := `
module top(input a, b, output y1, y2);
  and2 u1 (.x(a), .y(b), .z(y1));
  and2 u2 (a, b, y2);
endmodule
module and2(input x, y, output z);
  assign z = x & y;
endmodule`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	top := f.Modules[0]
	u1 := top.Items[0].(*Instance)
	if !u1.ByName || len(u1.Conns) != 3 || u1.Conns[0].Port != "x" {
		t.Errorf("u1 = %+v", u1)
	}
	u2 := top.Items[1].(*Instance)
	if u2.ByName || len(u2.Conns) != 3 {
		t.Errorf("u2 = %+v", u2)
	}
}

func TestParseTestbenchConstructs(t *testing.T) {
	src := `
module tb;
  reg clk, rst;
  reg [7:0] want;
  wire [7:0] q;
  integer errors;
  counter dut(.clk(clk), .rst(rst), .q(q));
  always #5 clk = ~clk;
  initial begin
    clk = 0; rst = 1; errors = 0;
    #12 rst = 0;
    repeat (10) begin
      @(posedge clk);
      #1;
      if (q !== want) begin
        errors = errors + 1;
        $display("mismatch at %0t: q=%d want=%d", $time, q, want);
      end
    end
    if (errors == 0) $display("TEST PASSED");
    else $display("TEST FAILED");
    $finish;
  end
endmodule
module counter(input clk, rst, output reg [7:0] q);
  always @(posedge clk) if (rst) q <= 0; else q <= q + 1;
endmodule`
	if err := Check(src); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestParseConcatRepl(t *testing.T) {
	src := `
module c(input [3:0] a, output [15:0] y, output [7:0] z);
  assign y = {4{a}};
  assign z = {a, a[3:2], a[1], 1'b0};
endmodule`
	if err := Check(src); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                                  // no module
		"module",                            // truncated
		"module m; wire w",                  // missing semicolon/endmodule
		"module m; assign = 1; endmodule",   // missing lhs
		"module m(input [7:0 a); endmodule", // malformed range
		"module m; always begin end",        // missing endmodule
		"module m; case endcase endmodule",
		"wire w;", // top-level decl
	}
	for _, src := range cases {
		if err := Check(src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func TestParseTernaryPrecedence(t *testing.T) {
	src := `
module t(input s, input [3:0] a, b, output [3:0] y);
  assign y = s ? a + 1 : b - 1;
endmodule`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ca := f.Modules[0].Items[0].(*ContAssign)
	if _, ok := ca.RHS.(*Ternary); !ok {
		t.Fatalf("RHS is %T, want ternary", ca.RHS)
	}
}

func TestParseSignedDecl(t *testing.T) {
	src := `
module s(input signed [7:0] a, output signed [7:0] y);
  wire signed [7:0] t;
  assign t = -a;
  assign y = t >>> 1;
endmodule`
	if err := Check(src); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestParseMemoryDecl(t *testing.T) {
	src := `
module ram(input clk, we, input [3:0] addr, input [7:0] din, output reg [7:0] dout);
  reg [7:0] mem [0:15];
  always @(posedge clk) begin
    if (we) mem[addr] <= din;
    dout <= mem[addr];
  end
endmodule`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	d := f.Modules[0].Items[0].(*NetDecl)
	if !d.Names[0].IsArray || d.Names[0].ARng.Width() != 16 {
		t.Fatalf("mem decl = %+v", d.Names[0])
	}
}
