// Package verilog implements a lexer, abstract syntax tree and
// recursive-descent parser for a synthesizable subset of Verilog-2001,
// plus the testbench constructs needed to run self-checking benches
// (initial blocks, delays, system tasks).
//
// It is the repository's substitute for the Stagira incremental Verilog
// parser used by the paper: it performs corpus syntax checking, produces
// the ASTs from which syntactically significant tokens are extracted
// (package frag), and provides the elaboration input for the event-driven
// simulator (package verilog/sim).
package verilog

import "fmt"

// TokenKind classifies a lexical token.
type TokenKind int

// Token kinds produced by the Lexer.
const (
	// TokEOF marks the end of input.
	TokEOF TokenKind = iota
	// TokIdent is an identifier (possibly escaped).
	TokIdent
	// TokKeyword is a reserved Verilog keyword.
	TokKeyword
	// TokNumber is an integer literal, sized or unsized (e.g. 4'b10x0, 42).
	TokNumber
	// TokString is a double-quoted string literal.
	TokString
	// TokSysName is a system task or function name (e.g. $display).
	TokSysName
	// TokOp is an operator such as +, <=, ===, <<<.
	TokOp
	// TokPunct is punctuation: ( ) [ ] { } ; , : . # @ ?
	TokPunct
	// TokDirective is a compiler directive line (e.g. `timescale 1ns/1ps).
	TokDirective
)

// String returns a human-readable kind name.
func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokIdent:
		return "identifier"
	case TokKeyword:
		return "keyword"
	case TokNumber:
		return "number"
	case TokString:
		return "string"
	case TokSysName:
		return "system-name"
	case TokOp:
		return "operator"
	case TokPunct:
		return "punctuation"
	case TokDirective:
		return "directive"
	}
	return "unknown"
}

// Token is a single lexical token with source position information.
type Token struct {
	Kind TokenKind
	Text string
	Line int // 1-based line number
	Col  int // 1-based column number
}

// String renders the token for diagnostics.
func (t Token) String() string {
	return fmt.Sprintf("%s %q @%d:%d", t.Kind, t.Text, t.Line, t.Col)
}

// keywords is the reserved-word set recognized by the lexer. It covers
// the supported subset plus common reserved words that must not be
// treated as identifiers.
var keywords = map[string]bool{
	"module": true, "endmodule": true, "input": true, "output": true,
	"inout": true, "wire": true, "reg": true, "integer": true,
	"parameter": true, "localparam": true, "assign": true,
	"always": true, "initial": true, "begin": true, "end": true,
	"if": true, "else": true, "case": true, "casez": true, "casex": true,
	"endcase": true, "default": true, "for": true, "while": true,
	"repeat": true, "forever": true, "posedge": true, "negedge": true,
	"or": true, "and": true, "not": true, "nand": true, "nor": true,
	"xor": true, "xnor": true, "buf": true, "signed": true,
	"unsigned": true, "function": true, "endfunction": true,
	"task": true, "endtask": true, "generate": true, "endgenerate": true,
	"genvar": true, "real": true, "time": true, "event": true,
	"wait": true, "fork": true, "join": true, "disable": true,
	"supply0": true, "supply1": true, "tri": true, "vectored": true,
	"scalared": true, "specify": true, "endspecify": true,
	"defparam": true, "primitive": true, "endprimitive": true,
	"table": true, "endtable": true,
}

// IsKeyword reports whether s is a reserved Verilog word.
func IsKeyword(s string) bool { return keywords[s] }
