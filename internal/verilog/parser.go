package verilog

import (
	"fmt"
)

// Parser converts a token stream into a SourceFile. It performs the
// constant folding needed to resolve ranges and parameter values, so the
// resulting AST carries concrete bit widths.
type Parser struct {
	toks   []Token
	pos    int
	params map[string]int64
}

// Parse lexes and parses a complete Verilog source text.
func Parse(src string) (*SourceFile, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.parseSourceFile()
}

// Check reports whether src parses without error. It is the corpus
// syntax gate (the paper's "Stagira parser pass/fail" check).
func Check(src string) error {
	_, err := Parse(src)
	return err
}

func (p *Parser) cur() Token {
	if p.pos >= len(p.toks) {
		return Token{Kind: TokEOF}
	}
	return p.toks[p.pos]
}

func (p *Parser) at(kind TokenKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && t.Text == text
}

func (p *Parser) atKeyword(kw string) bool { return p.at(TokKeyword, kw) }

func (p *Parser) next() Token {
	t := p.cur()
	p.pos++
	return t
}

func (p *Parser) accept(kind TokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(kind TokenKind, text string) (Token, error) {
	t := p.cur()
	if t.Kind != kind || t.Text != text {
		return t, p.errAt(t, "expected %q, found %s", text, describe(t))
	}
	p.pos++
	return t, nil
}

func (p *Parser) expectIdent() (Token, error) {
	t := p.cur()
	if t.Kind != TokIdent {
		return t, p.errAt(t, "expected identifier, found %s", describe(t))
	}
	p.pos++
	return t, nil
}

func describe(t Token) string {
	if t.Kind == TokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.Text)
}

func (p *Parser) errAt(t Token, format string, args ...any) error {
	return &SyntaxError{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) parseSourceFile() (*SourceFile, error) {
	f := &SourceFile{}
	for {
		t := p.cur()
		switch {
		case t.Kind == TokEOF:
			if len(f.Modules) == 0 {
				return nil, p.errAt(t, "no module found")
			}
			return f, nil
		case t.Kind == TokDirective:
			f.Directives = append(f.Directives, t.Text)
			p.pos++
		case t.Kind == TokKeyword && t.Text == "module":
			m, err := p.parseModule()
			if err != nil {
				return nil, err
			}
			f.Modules = append(f.Modules, m)
		default:
			return nil, p.errAt(t, "expected 'module', found %s", describe(t))
		}
	}
}

func (p *Parser) parseModule() (*Module, error) {
	p.params = map[string]int64{}
	kw, err := p.expect(TokKeyword, "module")
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	m := &Module{Line: kw.Line, Name: name.Text}

	// Optional #(parameter ...) header.
	if p.accept(TokPunct, "#") {
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		for {
			if p.accept(TokKeyword, "parameter") {
				// fallthrough to name=value list below
			}
			pn, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokOp, "="); err != nil {
				return nil, err
			}
			val, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			cv, err := p.evalConst(val)
			if err != nil {
				return nil, err
			}
			p.params[pn.Text] = cv
			m.Items = append(m.Items, &ParamDecl{Line: pn.Line, Names: []string{pn.Text}, Values: []Expr{val}})
			if p.accept(TokPunct, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
	}

	// Port header: ANSI (directions inline) or non-ANSI (names only).
	if p.accept(TokPunct, "(") {
		if !p.at(TokPunct, ")") {
			if err := p.parsePortHeader(m); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}

	for {
		t := p.cur()
		if t.Kind == TokEOF {
			return nil, p.errAt(t, "unexpected end of input inside module %q", m.Name)
		}
		if p.accept(TokKeyword, "endmodule") {
			return m, nil
		}
		items, err := p.parseModuleItem(m)
		if err != nil {
			return nil, err
		}
		m.Items = append(m.Items, items...)
	}
}

// parsePortHeader parses the parenthesized port list. When it sees a
// direction keyword it parses ANSI declarations; bare identifiers give
// non-ANSI placeholder ports completed later by body declarations.
func (p *Parser) parsePortHeader(m *Module) error {
	// Current ANSI declaration state, inherited by subsequent names.
	dir := PortInput
	kind := NetWire
	signed := false
	hasRng := false
	var rng Range
	sawDir := false
	for {
		t := p.cur()
		if t.Kind == TokKeyword && (t.Text == "input" || t.Text == "output" || t.Text == "inout") {
			sawDir = true
			p.pos++
			switch t.Text {
			case "input":
				dir = PortInput
			case "output":
				dir = PortOutput
			default:
				dir = PortInout
			}
			kind = NetWire
			signed = false
			hasRng = false
			if p.accept(TokKeyword, "reg") {
				kind = NetReg
			} else if p.accept(TokKeyword, "wire") {
				kind = NetWire
			}
			if p.accept(TokKeyword, "signed") {
				signed = true
			}
			if p.at(TokPunct, "[") {
				r, err := p.parseRange()
				if err != nil {
					return err
				}
				hasRng, rng = true, r
			}
		}
		nameTok, err := p.expectIdent()
		if err != nil {
			return err
		}
		port := &Port{Line: nameTok.Line, Name: nameTok.Text}
		if sawDir {
			port.Dir, port.Kind, port.Signed, port.HasRng, port.Rng = dir, kind, signed, hasRng, rng
		}
		m.Ports = append(m.Ports, port)
		if p.accept(TokPunct, ",") {
			continue
		}
		return nil
	}
}

func (p *Parser) parseModuleItem(m *Module) ([]Item, error) {
	t := p.cur()
	switch {
	case t.Kind == TokDirective:
		p.pos++
		return nil, nil
	case t.Kind == TokKeyword:
		switch t.Text {
		case "input", "output", "inout":
			return p.parsePortDecl(m)
		case "wire", "reg", "integer", "tri", "supply0", "supply1":
			d, err := p.parseNetDecl()
			if err != nil {
				return nil, err
			}
			return []Item{d}, nil
		case "parameter", "localparam":
			d, err := p.parseParamDecl()
			if err != nil {
				return nil, err
			}
			return []Item{d}, nil
		case "assign":
			return p.parseContAssigns()
		case "always":
			p.pos++
			body, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			return []Item{&AlwaysBlock{Line: t.Line, Body: body}}, nil
		case "initial":
			p.pos++
			body, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			return []Item{&InitialBlock{Line: t.Line, Body: body}}, nil
		default:
			return nil, p.errAt(t, "unsupported module item %q", t.Text)
		}
	case t.Kind == TokIdent:
		inst, err := p.parseInstance()
		if err != nil {
			return nil, err
		}
		return []Item{inst}, nil
	}
	return nil, p.errAt(t, "unexpected %s in module body", describe(t))
}

// parsePortDecl handles body-level port declarations (non-ANSI style),
// updating the header's port records in place.
func (p *Parser) parsePortDecl(m *Module) ([]Item, error) {
	t := p.next() // input/output/inout
	var dir PortDir
	switch t.Text {
	case "input":
		dir = PortInput
	case "output":
		dir = PortOutput
	default:
		dir = PortInout
	}
	kind := NetWire
	if p.accept(TokKeyword, "reg") {
		kind = NetReg
	} else if p.accept(TokKeyword, "wire") {
		kind = NetWire
	}
	signed := p.accept(TokKeyword, "signed")
	hasRng := false
	var rng Range
	if p.at(TokPunct, "[") {
		r, err := p.parseRange()
		if err != nil {
			return nil, err
		}
		hasRng, rng = true, r
	}
	for {
		nameTok, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		port := m.PortByName(nameTok.Text)
		if port == nil {
			// Tolerate declarations for ports not in the header
			// (some generated code does this); add them.
			port = &Port{Line: nameTok.Line, Name: nameTok.Text}
			m.Ports = append(m.Ports, port)
		}
		port.Dir, port.Kind, port.Signed, port.HasRng, port.Rng = dir, kind, signed, hasRng, rng
		if p.accept(TokPunct, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}
	return nil, nil
}

func (p *Parser) parseRange() (Range, error) {
	if _, err := p.expect(TokPunct, "["); err != nil {
		return Range{}, err
	}
	msbE, err := p.parseExpr()
	if err != nil {
		return Range{}, err
	}
	if _, err := p.expect(TokPunct, ":"); err != nil {
		return Range{}, err
	}
	lsbE, err := p.parseExpr()
	if err != nil {
		return Range{}, err
	}
	if _, err := p.expect(TokPunct, "]"); err != nil {
		return Range{}, err
	}
	msb, err := p.evalConst(msbE)
	if err != nil {
		return Range{}, err
	}
	lsb, err := p.evalConst(lsbE)
	if err != nil {
		return Range{}, err
	}
	r := Range{MSB: int(msb), LSB: int(lsb)}
	if r.Width() > MaxWidth {
		return Range{}, p.errAt(p.cur(), "range [%d:%d] wider than supported %d bits", r.MSB, r.LSB, MaxWidth)
	}
	return r, nil
}

func (p *Parser) parseNetDecl() (*NetDecl, error) {
	t := p.next()
	d := &NetDecl{Line: t.Line}
	switch t.Text {
	case "wire", "tri", "supply0", "supply1":
		d.Kind = NetWire
	case "reg":
		d.Kind = NetReg
	case "integer":
		d.Kind = NetInteger
	}
	d.Signed = p.accept(TokKeyword, "signed") || d.Kind == NetInteger
	if p.at(TokPunct, "[") {
		r, err := p.parseRange()
		if err != nil {
			return nil, err
		}
		d.HasRng, d.Rng = true, r
	}
	for {
		nameTok, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		dn := DeclName{Name: nameTok.Text}
		if p.at(TokPunct, "[") {
			r, err := p.parseRange()
			if err != nil {
				return nil, err
			}
			dn.IsArray, dn.ARng = true, r
		}
		if p.accept(TokOp, "=") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			dn.Init = e
		}
		d.Names = append(d.Names, dn)
		if p.accept(TokPunct, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *Parser) parseParamDecl() (*ParamDecl, error) {
	t := p.next()
	d := &ParamDecl{Line: t.Line, Localparam: t.Text == "localparam"}
	// Optional range on parameters is accepted and ignored.
	if p.at(TokPunct, "[") {
		if _, err := p.parseRange(); err != nil {
			return nil, err
		}
	}
	for {
		nameTok, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, "="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		cv, err := p.evalConst(val)
		if err != nil {
			return nil, err
		}
		p.params[nameTok.Text] = cv
		d.Names = append(d.Names, nameTok.Text)
		d.Values = append(d.Values, val)
		if p.accept(TokPunct, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *Parser) parseContAssigns() ([]Item, error) {
	t, err := p.expect(TokKeyword, "assign")
	if err != nil {
		return nil, err
	}
	var delay Expr
	if p.accept(TokPunct, "#") {
		delay, err = p.parseDelayValue()
		if err != nil {
			return nil, err
		}
	}
	var items []Item
	for {
		lhs, err := p.parseLValue()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, "="); err != nil {
			return nil, err
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		items = append(items, &ContAssign{Line: t.Line, Delay: delay, LHS: lhs, RHS: rhs})
		if p.accept(TokPunct, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}
	return items, nil
}

func (p *Parser) parseInstance() (*Instance, error) {
	mod, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	// Parameter overrides are accepted and ignored: #( ... )
	if p.accept(TokPunct, "#") {
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		depth := 1
		for depth > 0 {
			t := p.next()
			switch {
			case t.Kind == TokEOF:
				return nil, p.errAt(t, "unterminated parameter override")
			case t.Kind == TokPunct && t.Text == "(":
				depth++
			case t.Kind == TokPunct && t.Text == ")":
				depth--
			}
		}
	}
	inst, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	out := &Instance{Line: mod.Line, ModName: mod.Text, InstName: inst.Text}
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	if p.accept(TokPunct, ")") {
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return out, nil
	}
	if p.at(TokPunct, ".") {
		out.ByName = true
		for {
			if _, err := p.expect(TokPunct, "."); err != nil {
				return nil, err
			}
			port, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, "("); err != nil {
				return nil, err
			}
			var e Expr
			if !p.at(TokPunct, ")") {
				e, err = p.parseExpr()
				if err != nil {
					return nil, err
				}
			}
			if _, err := p.expect(TokPunct, ")"); err != nil {
				return nil, err
			}
			out.Conns = append(out.Conns, Connection{Port: port.Text, Expr: e})
			if p.accept(TokPunct, ",") {
				continue
			}
			break
		}
	} else {
		for {
			var e Expr
			var err error
			if !p.at(TokPunct, ",") && !p.at(TokPunct, ")") {
				e, err = p.parseExpr()
				if err != nil {
					return nil, err
				}
			}
			out.Conns = append(out.Conns, Connection{Expr: e})
			if p.accept(TokPunct, ",") {
				continue
			}
			break
		}
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}
	return out, nil
}

// --- Statements ---

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case t.Kind == TokPunct && t.Text == ";":
		p.pos++
		return &NullStmt{Line: t.Line}, nil
	case t.Kind == TokPunct && t.Text == "#":
		p.pos++
		d, err := p.parseDelayValue()
		if err != nil {
			return nil, err
		}
		// A bare "#5;" has a null body.
		if p.accept(TokPunct, ";") {
			return &DelayStmt{Line: t.Line, Delay: d}, nil
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &DelayStmt{Line: t.Line, Delay: d, Body: body}, nil
	case t.Kind == TokPunct && t.Text == "@":
		return p.parseEventCtrl()
	case t.Kind == TokKeyword:
		switch t.Text {
		case "begin":
			return p.parseBlock()
		case "if":
			return p.parseIf()
		case "case", "casez", "casex":
			return p.parseCase()
		case "for":
			return p.parseFor()
		case "while":
			p.pos++
			if _, err := p.expect(TokPunct, "("); err != nil {
				return nil, err
			}
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, ")"); err != nil {
				return nil, err
			}
			body, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			return &While{Line: t.Line, Cond: cond, Body: body}, nil
		case "repeat":
			p.pos++
			if _, err := p.expect(TokPunct, "("); err != nil {
				return nil, err
			}
			cnt, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, ")"); err != nil {
				return nil, err
			}
			body, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			return &Repeat{Line: t.Line, Count: cnt, Body: body}, nil
		case "forever":
			p.pos++
			body, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			return &Forever{Line: t.Line, Body: body}, nil
		}
		return nil, p.errAt(t, "unsupported statement keyword %q", t.Text)
	case t.Kind == TokSysName:
		p.pos++
		call := &SysCall{Line: t.Line, Name: t.Text}
		if p.accept(TokPunct, "(") {
			if !p.at(TokPunct, ")") {
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, e)
					if p.accept(TokPunct, ",") {
						continue
					}
					break
				}
			}
			if _, err := p.expect(TokPunct, ")"); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return call, nil
	case t.Kind == TokIdent || (t.Kind == TokPunct && t.Text == "{"):
		return p.parseAssignStmt()
	}
	return nil, p.errAt(t, "unexpected %s at start of statement", describe(t))
}

func (p *Parser) parseBlock() (Stmt, error) {
	t, err := p.expect(TokKeyword, "begin")
	if err != nil {
		return nil, err
	}
	b := &Block{Line: t.Line}
	if p.accept(TokPunct, ":") {
		lbl, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		b.Label = lbl.Text
	}
	for {
		if p.accept(TokKeyword, "end") {
			return b, nil
		}
		if p.cur().Kind == TokEOF {
			return nil, p.errAt(p.cur(), "unterminated begin/end block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
}

func (p *Parser) parseIf() (Stmt, error) {
	t, err := p.expect(TokKeyword, "if")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	thenS, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	out := &If{Line: t.Line, Cond: cond, Then: thenS}
	if p.accept(TokKeyword, "else") {
		elseS, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out.Else = elseS
	}
	return out, nil
}

func (p *Parser) parseCase() (Stmt, error) {
	t := p.next()
	kind := CaseExact
	switch t.Text {
	case "casez":
		kind = CaseZ
	case "casex":
		kind = CaseX
	}
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	sel, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	c := &Case{Line: t.Line, Kind: kind, Expr: sel}
	for {
		if p.accept(TokKeyword, "endcase") {
			return c, nil
		}
		if p.cur().Kind == TokEOF {
			return nil, p.errAt(p.cur(), "unterminated case statement")
		}
		item := &CaseItem{Line: p.cur().Line}
		if p.accept(TokKeyword, "default") {
			item.Default = true
			p.accept(TokPunct, ":")
		} else {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				item.Exprs = append(item.Exprs, e)
				if p.accept(TokPunct, ",") {
					continue
				}
				break
			}
			if _, err := p.expect(TokPunct, ":"); err != nil {
				return nil, err
			}
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		item.Body = body
		c.Items = append(c.Items, item)
	}
}

func (p *Parser) parseFor() (Stmt, error) {
	t, err := p.expect(TokKeyword, "for")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	init, err := p.parsePlainAssign()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}
	step, err := p.parsePlainAssign()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &For{Line: t.Line, Init: init, Cond: cond, Step: step, Body: body}, nil
}

// parsePlainAssign parses "lvalue = expr" without the trailing
// semicolon (for-loop init and step clauses).
func (p *Parser) parsePlainAssign() (*Assign, error) {
	lhs, err := p.parseLValue()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if _, err := p.expect(TokOp, "="); err != nil {
		return nil, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &Assign{Line: t.Line, LHS: lhs, RHS: rhs}, nil
}

func (p *Parser) parseEventCtrl() (Stmt, error) {
	t, err := p.expect(TokPunct, "@")
	if err != nil {
		return nil, err
	}
	ec := &EventCtrlStmt{Line: t.Line}
	if p.accept(TokOp, "*") {
		ec.Star = true
	} else {
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		if p.accept(TokOp, "*") {
			ec.Star = true
		} else {
			for {
				item := SensItem{Edge: EdgeLevel}
				if p.accept(TokKeyword, "posedge") {
					item.Edge = EdgePos
				} else if p.accept(TokKeyword, "negedge") {
					item.Edge = EdgeNeg
				}
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				item.Expr = e
				ec.Items = append(ec.Items, item)
				if p.accept(TokKeyword, "or") || p.accept(TokPunct, ",") {
					continue
				}
				break
			}
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
	}
	// The body may be empty when the event control ends a statement
	// sequence like "@(posedge clk);".
	if p.accept(TokPunct, ";") {
		return ec, nil
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	ec.Body = body
	return ec, nil
}

func (p *Parser) parseAssignStmt() (Stmt, error) {
	lhs, err := p.parseLValue()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	nonBlocking := false
	switch {
	case p.accept(TokOp, "="):
	case p.accept(TokOp, "<="):
		nonBlocking = true
	default:
		return nil, p.errAt(t, "expected '=' or '<=' in assignment, found %s", describe(t))
	}
	var delay Expr
	if p.accept(TokPunct, "#") {
		delay, err = p.parseDelayValue()
		if err != nil {
			return nil, err
		}
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}
	return &Assign{Line: t.Line, NonBlocking: nonBlocking, LHS: lhs, Delay: delay, RHS: rhs}, nil
}

// parseLValue parses a variable lvalue: an identifier with optional
// selects, or a concatenation of lvalues.
func (p *Parser) parseLValue() (Expr, error) {
	t := p.cur()
	if p.accept(TokPunct, "{") {
		c := &Concat{Line: t.Line}
		for {
			e, err := p.parseLValue()
			if err != nil {
				return nil, err
			}
			c.Parts = append(c.Parts, e)
			if p.accept(TokPunct, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(TokPunct, "}"); err != nil {
			return nil, err
		}
		return c, nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return p.parseSelects(&Ident{Line: name.Line, Name: name.Text})
}

// parseSelects attaches [i] and [m:l] selects to a primary.
func (p *Parser) parseSelects(base Expr) (Expr, error) {
	for p.at(TokPunct, "[") {
		open := p.next()
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.accept(TokPunct, ":") {
			second, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, "]"); err != nil {
				return nil, err
			}
			base = &RangeSel{Line: open.Line, X: base, MSB: first, LSB: second}
			continue
		}
		if _, err := p.expect(TokPunct, "]"); err != nil {
			return nil, err
		}
		base = &Index{Line: open.Line, X: base, Idx: first}
	}
	return base, nil
}

func (p *Parser) parseDelayValue() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokNumber:
		p.pos++
		return p.numberLiteral(t)
	case t.Kind == TokIdent:
		p.pos++
		return &Ident{Line: t.Line, Name: t.Text}, nil
	case t.Kind == TokPunct && t.Text == "(":
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errAt(t, "expected delay value, found %s", describe(t))
}

// --- Expressions: precedence climbing ---

// binary operator precedence levels; higher binds tighter.
var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4, "^~": 4, "~^": 4,
	"&":  5,
	"==": 6, "!=": 6, "===": 6, "!==": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8, "<<<": 8, ">>>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
	"**": 11,
}

func (p *Parser) parseExpr() (Expr, error) {
	return p.parseTernary()
}

func (p *Parser) parseTernary() (Expr, error) {
	cond, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if !p.at(TokPunct, "?") {
		return cond, nil
	}
	q := p.next()
	trueE, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ":"); err != nil {
		return nil, err
	}
	falseE, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	return &Ternary{Line: q.Line, Cond: cond, TrueE: trueE, FalseE: falseE}, nil
}

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokOp {
			return lhs, nil
		}
		prec, ok := binPrec[t.Text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Line: t.Line, Op: t.Text, X: lhs, Y: rhs}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.Kind == TokOp {
		switch t.Text {
		case "!", "~", "&", "|", "^", "~&", "~|", "~^", "^~", "+", "-":
			p.pos++
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &Unary{Line: t.Line, Op: t.Text, X: x}, nil
		}
	}
	return p.parsePrimary()
}

// numberLiteral parses a number token's spelling, wrapping the
// literal-level error into a positioned *SyntaxError so Parse's error
// contract holds on malformed literals the lexer accepted.
func (p *Parser) numberLiteral(t Token) (Expr, error) {
	n, err := ParseNumberLiteral(t.Text, t.Line)
	if err != nil {
		return nil, p.errAt(t, "%v", err)
	}
	return n, nil
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokNumber:
		p.pos++
		return p.numberLiteral(t)
	case t.Kind == TokString:
		p.pos++
		return &StringLit{Line: t.Line, Val: t.Text}, nil
	case t.Kind == TokIdent:
		p.pos++
		return p.parseSelects(&Ident{Line: t.Line, Name: t.Text})
	case t.Kind == TokSysName:
		p.pos++
		call := &SysFuncCall{Line: t.Line, Name: t.Text}
		if p.accept(TokPunct, "(") {
			if !p.at(TokPunct, ")") {
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, e)
					if p.accept(TokPunct, ",") {
						continue
					}
					break
				}
			}
			if _, err := p.expect(TokPunct, ")"); err != nil {
				return nil, err
			}
		}
		return call, nil
	case t.Kind == TokPunct && t.Text == "(":
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return p.parseSelects(e)
	case t.Kind == TokPunct && t.Text == "{":
		p.pos++
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		// Replication {N{expr}}.
		if p.at(TokPunct, "{") {
			p.pos++
			inner, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			rep := &Repl{Line: t.Line, Count: first, X: inner}
			// Allow {N{a,b}} by wrapping extra parts in a concat.
			if p.at(TokPunct, ",") {
				c := &Concat{Line: t.Line, Parts: []Expr{inner}}
				for p.accept(TokPunct, ",") {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					c.Parts = append(c.Parts, e)
				}
				rep.X = c
			}
			if _, err := p.expect(TokPunct, "}"); err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, "}"); err != nil {
				return nil, err
			}
			return rep, nil
		}
		c := &Concat{Line: t.Line, Parts: []Expr{first}}
		for p.accept(TokPunct, ",") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			c.Parts = append(c.Parts, e)
		}
		if _, err := p.expect(TokPunct, "}"); err != nil {
			return nil, err
		}
		return c, nil
	}
	return nil, p.errAt(t, "unexpected %s in expression", describe(t))
}

// evalConst folds a constant expression using the module's parameter
// environment. It implements 2-state arithmetic only; x/z digits in
// constant contexts are an error.
func (p *Parser) evalConst(e Expr) (int64, error) {
	switch v := e.(type) {
	case *Number:
		if v.B != 0 {
			return 0, &SyntaxError{Line: v.Line, Msg: "x/z digits not allowed in constant expression"}
		}
		return int64(v.A), nil
	case *Ident:
		if val, ok := p.params[v.Name]; ok {
			return val, nil
		}
		return 0, &SyntaxError{Line: v.Line, Msg: fmt.Sprintf("identifier %q is not a constant parameter", v.Name)}
	case *Unary:
		x, err := p.evalConst(v.X)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case "-":
			return -x, nil
		case "+":
			return x, nil
		case "~":
			return ^x, nil
		case "!":
			if x == 0 {
				return 1, nil
			}
			return 0, nil
		}
		return 0, &SyntaxError{Line: v.Line, Msg: fmt.Sprintf("unary %q not allowed in constant expression", v.Op)}
	case *Binary:
		x, err := p.evalConst(v.X)
		if err != nil {
			return 0, err
		}
		y, err := p.evalConst(v.Y)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case "+":
			return x + y, nil
		case "-":
			return x - y, nil
		case "*":
			return x * y, nil
		case "/":
			if y == 0 {
				return 0, &SyntaxError{Line: v.Line, Msg: "division by zero in constant expression"}
			}
			return x / y, nil
		case "%":
			if y == 0 {
				return 0, &SyntaxError{Line: v.Line, Msg: "modulo by zero in constant expression"}
			}
			return x % y, nil
		case "<<":
			return x << uint(y&63), nil
		case ">>":
			return int64(uint64(x) >> uint(y&63)), nil
		case "**":
			r := int64(1)
			for i := int64(0); i < y; i++ {
				r *= x
			}
			return r, nil
		case "==":
			return b2i(x == y), nil
		case "!=":
			return b2i(x != y), nil
		case "<":
			return b2i(x < y), nil
		case "<=":
			return b2i(x <= y), nil
		case ">":
			return b2i(x > y), nil
		case ">=":
			return b2i(x >= y), nil
		case "&":
			return x & y, nil
		case "|":
			return x | y, nil
		case "^":
			return x ^ y, nil
		case "&&":
			return b2i(x != 0 && y != 0), nil
		case "||":
			return b2i(x != 0 || y != 0), nil
		}
		return 0, &SyntaxError{Line: v.Line, Msg: fmt.Sprintf("operator %q not allowed in constant expression", v.Op)}
	case *Ternary:
		c, err := p.evalConst(v.Cond)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return p.evalConst(v.TrueE)
		}
		return p.evalConst(v.FalseE)
	}
	return 0, &SyntaxError{Line: e.Pos(), Msg: "expression is not constant"}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
