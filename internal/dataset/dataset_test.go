package dataset

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/verilog"
)

func TestAllFamiliesProduceParseableCode(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, f := range Families() {
		for trial := 0; trial < 25; trial++ {
			it := f.gen(r)
			if err := verilog.Check(it.Code); err != nil {
				t.Fatalf("family %s trial %d produced unparsable code: %v\n%s",
					f.name, trial, err, it.Code)
			}
			if it.Desc == "" {
				t.Fatalf("family %s produced empty description", f.name)
			}
			if it.Family == "" {
				t.Fatalf("family %s did not tag its items", f.name)
			}
		}
	}
}

func TestGenerateRawDeterminism(t *testing.T) {
	a, _, _ := GenerateRaw(CorpusOptions{Seed: 9, Items: 60})
	b, _, _ := GenerateRaw(CorpusOptions{Seed: 9, Items: 60})
	if len(a) != len(b) {
		t.Fatalf("file counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("file %d differs between identical seeds", i)
		}
	}
	c, _, _ := GenerateRaw(CorpusOptions{Seed: 10, Items: 60})
	same := 0
	for i := 0; i < len(a) && i < len(c); i++ {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestSplitModules(t *testing.T) {
	file := `// header comment
module a(input x, output y);
  assign y = x;
endmodule

// module b is mentioned in this comment
module b(input x, output y);
  assign y = ~x;
endmodule
`
	mods := SplitModules(file)
	if len(mods) != 2 {
		t.Fatalf("got %d modules, want 2: %q", len(mods), mods)
	}
	if !strings.Contains(mods[0], "module a") || !strings.Contains(mods[1], "module b") {
		t.Fatalf("wrong split: %q", mods)
	}
}

func TestSplitModulesTruncated(t *testing.T) {
	mods := SplitModules("module broken (\n input clk,\n")
	if len(mods) != 0 {
		t.Fatalf("truncated module should not split: %q", mods)
	}
}

func TestFilterModule(t *testing.T) {
	if FilterModule("// only\n// comments\n") {
		t.Fatal("comment-only text passed filter")
	}
	if FilterModule("module x(); // no endmodule") {
		t.Fatal("incomplete module passed filter")
	}
	if !FilterModule("module x();\nassign a = b;\nendmodule\n") {
		t.Fatal("good module failed filter")
	}
	if FilterModule("// c1\n// c2\n// c3\n// c4\nmodule x();\nendmodule\n") {
		t.Fatal("mostly-comments module passed filter")
	}
}

func TestModuleNameOf(t *testing.T) {
	cases := map[string]string{
		"module foo (input a);\nendmodule":           "foo",
		"module bar(input a);\nendmodule":            "bar",
		"module baz;\nendmodule":                     "baz",
		"module qux #(parameter W=2) ();\nendmodule": "qux",
	}
	for src, want := range cases {
		if got := moduleNameOf(src); got != want {
			t.Errorf("moduleNameOf(%q) = %q, want %q", src, got, want)
		}
	}
}

func TestDeduplicateExactCopies(t *testing.T) {
	base := `module dup(input clk, input [7:0] d, output reg [7:0] q);
  always @(posedge clk) q <= d;
endmodule
`
	other := `module other(input a, b, output y);
  assign y = a ^ b;
endmodule
`
	docs := []string{base, other, base, base}
	keep := Deduplicate(docs)
	if len(keep) != 2 {
		t.Fatalf("kept %d docs, want 2 (indices %v)", len(keep), keep)
	}
	if keep[0] != 0 || keep[1] != 1 {
		t.Fatalf("kept wrong indices: %v", keep)
	}
}

func TestDeduplicateKeepsDistinct(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var docs []string
	for i := 0; i < 30; i++ {
		f := Families()[i%len(Families())]
		docs = append(docs, f.gen(r).Code)
	}
	keep := Deduplicate(docs)
	if len(keep) < 25 {
		t.Fatalf("dedup too aggressive: kept %d of 30 distinct docs", len(keep))
	}
}

func TestDescribe(t *testing.T) {
	src := `module widget(input clk, input [7:0] din, output reg [7:0] dout);
  always @(posedge clk) dout <= din;
endmodule
`
	desc, err := Describe(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"widget", "8-bit din", "8-bit dout", "clocked"} {
		if !strings.Contains(desc, want) {
			t.Errorf("description missing %q: %s", want, desc)
		}
	}
}

func TestBuildCorpusPipeline(t *testing.T) {
	examples, stats := BuildCorpus(CorpusOptions{Seed: 5, Items: 300})
	if stats.RawFiles == 0 || stats.SplitModules == 0 {
		t.Fatalf("stats empty: %+v", stats)
	}
	// Junk injection must be filtered out.
	if stats.AfterFilter >= stats.SplitModules+5 {
		t.Fatalf("filter did nothing: %+v", stats)
	}
	// Duplicate injection must be removed.
	if stats.AfterDedup >= stats.AfterFilter {
		t.Fatalf("dedup removed nothing despite injected duplicates: %+v", stats)
	}
	if stats.SyntaxClean == 0 || len(examples) != stats.SyntaxClean {
		t.Fatalf("no clean examples: %+v", stats)
	}
	if stats.WithSummaries == 0 || stats.Described == 0 {
		t.Fatalf("both description paths should be exercised: %+v", stats)
	}
	// All surviving code parses.
	for i, ex := range examples {
		if err := verilog.Check(ex.Code); err != nil {
			t.Fatalf("example %d unparsable after refinement: %v", i, err)
		}
		if ex.Prompt == "" {
			t.Fatalf("example %d has no description", i)
		}
	}
}

func TestSubsetFractions(t *testing.T) {
	examples, _ := BuildCorpus(CorpusOptions{Seed: 6, Items: 200})
	quarter := Subset(examples, 1, 4)
	half := Subset(examples, 2, 4)
	if len(quarter) != len(examples)/4 || len(half) != len(examples)/2 {
		t.Fatalf("subset sizes wrong: %d %d of %d", len(quarter), len(half), len(examples))
	}
	// Prefix property (incremental training depends on it).
	for i := range quarter {
		if quarter[i].Code != half[i].Code {
			t.Fatal("subsets are not prefixes")
		}
	}
}
