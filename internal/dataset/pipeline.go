package dataset

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/model"
	"repro/internal/verilog"
)

// CorpusOptions controls synthetic corpus generation.
type CorpusOptions struct {
	// Seed drives all randomness (corpus generation is deterministic).
	Seed int64
	// Items is the number of module items to generate before
	// refinement (the paper's 136,134; default 13,600 — a 1/10-scale
	// corpus that trains in seconds while preserving family coverage).
	Items int
	// DupFraction injects exact duplicates into the raw files to
	// exercise the MinHash deduplication stage (GitHub scrapes are full
	// of vendored copies). Default 0.08.
	DupFraction float64
	// JunkFiles injects comment-only and truncated files to exercise
	// the filtering stages. Default 0.05 of file count.
	JunkFiles float64
}

func (o CorpusOptions) withDefaults() CorpusOptions {
	if o.Items == 0 {
		o.Items = 13600
	}
	if o.DupFraction == 0 {
		o.DupFraction = 0.08
	}
	if o.JunkFiles == 0 {
		o.JunkFiles = 0.05
	}
	return o
}

// Stats reports what each refinement stage did (the paper's Fig. 2
// pipeline observability).
type Stats struct {
	RawFiles      int
	SplitModules  int
	AfterFilter   int
	AfterDedup    int
	SyntaxClean   int
	WithSummaries int // items whose semantic summary survived (MG-Verilog/RTLCoder analogue)
	Described     int // items described structurally (GPT-4 analogue)
}

// String renders a one-line pipeline summary.
func (s Stats) String() string {
	return fmt.Sprintf("files=%d modules=%d filtered=%d deduped=%d clean=%d (summaries=%d, described=%d)",
		s.RawFiles, s.SplitModules, s.AfterFilter, s.AfterDedup, s.SyntaxClean, s.WithSummaries, s.Described)
}

// GenerateRaw produces the synthetic "GitHub scrape": raw .v file
// contents (several modules per file, injected duplicates and junk) and
// a side table of semantic summaries keyed by module name for the
// corpus fraction that models MG-Verilog/RTLCoder (whose items already
// carry summaries, §III-A).
func GenerateRaw(opts CorpusOptions) ([]string, map[string]string, Stats) {
	opts = opts.withDefaults()
	r := rand.New(rand.NewSource(opts.Seed))
	fams := Families()

	items := make([]Item, 0, opts.Items)
	for len(items) < opts.Items {
		f := fams[r.Intn(len(fams))]
		items = append(items, f.gen(r))
	}

	// ~60% of items keep their semantic summary (the MG-Verilog /
	// RTLCoder share); the rest will be described structurally (the
	// GPT-4 share).
	summaries := map[string]string{}
	for _, it := range items {
		if r.Float64() < 0.6 {
			summaries[moduleNameOf(it.Code)] = it.Desc
		}
	}

	// Bundle into files of 1..4 modules, injecting duplicates.
	var files []string
	var cur strings.Builder
	n := 0
	target := 1 + r.Intn(4)
	flush := func() {
		if cur.Len() > 0 {
			files = append(files, cur.String())
			cur.Reset()
			n = 0
			target = 1 + r.Intn(4)
		}
	}
	for _, it := range items {
		cur.WriteString(it.Code)
		cur.WriteString("\n")
		if r.Float64() < opts.DupFraction {
			cur.WriteString(it.Code) // vendored duplicate
			cur.WriteString("\n")
		}
		n++
		if n >= target {
			flush()
		}
	}
	flush()

	// Junk files: comment-only and truncated modules.
	junk := int(float64(len(files)) * opts.JunkFiles)
	for i := 0; i < junk; i++ {
		if i%2 == 0 {
			files = append(files, "// placeholder file\n// nothing but comments here\n// (c) 2024\n")
		} else {
			files = append(files, "module broken_thing (\n    input clk,\n// file truncated mid-port-list\n")
		}
	}
	r.Shuffle(len(files), func(i, j int) { files[i], files[j] = files[j], files[i] })

	return files, summaries, Stats{RawFiles: len(files)}
}

// SplitModules extracts complete module...endmodule texts from a file.
func SplitModules(file string) []string {
	var out []string
	rest := file
	for {
		start := strings.Index(rest, "module ")
		if start < 0 {
			return out
		}
		// Reject matches inside line comments.
		lineStart := strings.LastIndexByte(rest[:start], '\n') + 1
		if strings.HasPrefix(strings.TrimSpace(rest[lineStart:start]), "//") {
			rest = rest[start+7:]
			continue
		}
		end := strings.Index(rest[start:], "endmodule")
		if end < 0 {
			return out
		}
		out = append(out, rest[start:start+end+len("endmodule")]+"\n")
		rest = rest[start+end+len("endmodule"):]
	}
}

// FilterModule applies the §III-A completeness/comment filters: the
// non-comment text must contain both module and endmodule, and the file
// must not be mostly comments.
func FilterModule(src string) bool {
	lines := strings.Split(src, "\n")
	comment, code := 0, 0
	var codeText strings.Builder
	for _, ln := range lines {
		t := strings.TrimSpace(ln)
		if t == "" {
			continue
		}
		if strings.HasPrefix(t, "//") {
			comment++
			continue
		}
		code++
		// Strip trailing line comments so "// no endmodule" does not
		// count as structure.
		if i := strings.Index(t, "//"); i >= 0 {
			t = t[:i]
		}
		codeText.WriteString(t)
		codeText.WriteString("\n")
	}
	body := codeText.String()
	if !strings.Contains(body, "module") || !strings.Contains(body, "endmodule") {
		return false
	}
	return code > 0 && comment <= code
}

// moduleNameOf extracts the declared name of the first module.
func moduleNameOf(src string) string {
	idx := strings.Index(src, "module")
	if idx < 0 {
		return ""
	}
	rest := strings.TrimSpace(src[idx+len("module"):])
	for i := 0; i < len(rest); i++ {
		c := rest[i]
		if c == ' ' || c == '(' || c == ';' || c == '\n' || c == '\t' || c == '#' {
			return rest[:i]
		}
	}
	return rest
}

// Describe is the GPT-4 substitute: it generates a structural
// functional description from the parsed module interface (name, port
// directions and widths) plus coarse behavioural cues (clocked vs
// combinational, presence of case/if structure).
func Describe(src string) (string, error) {
	f, err := verilog.Parse(src)
	if err != nil {
		return "", err
	}
	m := f.Modules[0]
	var ins, outs []string
	for _, p := range m.Ports {
		w := 1
		if p.HasRng {
			w = p.Rng.Width()
		}
		pd := p.Name
		if w > 1 {
			pd = fmt.Sprintf("%d-bit %s", w, p.Name)
		}
		if p.Dir == verilog.PortInput {
			ins = append(ins, pd)
		} else {
			outs = append(outs, pd)
		}
	}
	kind := "combinational"
	hasCase := false
	for _, it := range m.Items {
		if alw, ok := it.(*verilog.AlwaysBlock); ok {
			if ec, ok := alw.Body.(*verilog.EventCtrlStmt); ok && !ec.Star {
				for _, s := range ec.Items {
					if s.Edge != verilog.EdgeLevel {
						kind = "clocked"
					}
				}
			}
		}
	}
	if strings.Contains(src, "case") {
		hasCase = true
	}
	d := fmt.Sprintf("Implement the Verilog module %s with inputs %s and outputs %s. It is a %s design",
		m.Name, strings.Join(ins, ", "), strings.Join(outs, ", "), kind)
	if hasCase {
		d += " using case-based selection"
	}
	d += "."
	return d, nil
}

// Refine runs the full Fig. 2 refinement over raw files: split, filter,
// dedup, syntax-check, then attach descriptions (stored summaries when
// available, structural descriptions otherwise). The result is the
// cleaned, described corpus.
func Refine(files []string, summaries map[string]string, stats Stats) ([]Item, Stats) {
	stats.RawFiles = len(files)

	var mods []string
	for _, f := range files {
		mods = append(mods, SplitModules(f)...)
	}
	stats.SplitModules = len(mods)

	var filtered []string
	for _, m := range mods {
		if FilterModule(m) {
			filtered = append(filtered, m)
		}
	}
	stats.AfterFilter = len(filtered)

	keep := Deduplicate(filtered)
	deduped := make([]string, 0, len(keep))
	for _, i := range keep {
		deduped = append(deduped, filtered[i])
	}
	stats.AfterDedup = len(deduped)

	var out []Item
	for _, src := range deduped {
		if verilog.Check(src) != nil {
			continue // syntax gate (Stagira substitute)
		}
		name := moduleNameOf(src)
		if desc, ok := summaries[name]; ok {
			out = append(out, Item{Desc: desc, Code: src, Family: "summarized"})
			stats.WithSummaries++
			continue
		}
		desc, err := Describe(src)
		if err != nil {
			continue
		}
		out = append(out, Item{Desc: desc, Code: src, Family: "described"})
		stats.Described++
	}
	stats.SyntaxClean = len(out)
	return out, stats
}

// BuildCorpus is the one-call path: generate raw files, refine them,
// and return training examples plus stats.
func BuildCorpus(opts CorpusOptions) ([]model.Example, Stats) {
	files, summaries, stats := GenerateRaw(opts)
	items, stats := Refine(files, summaries, stats)
	examples := make([]model.Example, len(items))
	for i, it := range items {
		examples[i] = model.Example{Prompt: it.Desc, Code: it.Code}
	}
	return examples, stats
}

// Subset returns the first fraction of examples (numerator/denominator)
// — the paper's 1/4, 2/4, 3/4, 4/4 data-size sweep. Examples are
// already shuffled by construction, so prefixes are unbiased samples,
// and prefix subsets allow incremental training.
func Subset(examples []model.Example, numerator, denominator int) []model.Example {
	n := len(examples) * numerator / denominator
	return examples[:n]
}
