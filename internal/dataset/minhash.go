package dataset

import (
	"hash/fnv"
)

// minhashSize is the signature length (number of hash permutations).
const minhashSize = 64

// lshBands × lshRows must equal minhashSize; documents sharing any band
// become dedup candidates.
const (
	lshBands = 16
	lshRows  = 4
)

// shingleSize is the word-shingle width used for Jaccard similarity.
const shingleSize = 3

// jaccardThreshold marks a candidate pair as duplicate (§III-A uses
// MinHash + Jaccard; 0.85 is the conventional near-duplicate cut).
const jaccardThreshold = 0.92

// shingles returns the set of hashed word 3-grams of a document.
func shingles(text string) map[uint64]bool {
	words := fields(text)
	out := map[uint64]bool{}
	for i := 0; i+shingleSize <= len(words); i++ {
		h := fnv.New64a()
		for j := 0; j < shingleSize; j++ {
			h.Write([]byte(words[i+j]))
			h.Write([]byte{0})
		}
		out[h.Sum64()] = true
	}
	return out
}

// fields splits on whitespace without allocating per-rune.
func fields(s string) []string {
	var out []string
	start := -1
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
			continue
		}
		if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		out = append(out, s[start:])
	}
	return out
}

// signature computes the MinHash signature of a shingle set using
// minhashSize cheap xorshift-derived permutations.
func signature(sh map[uint64]bool) [minhashSize]uint64 {
	var sig [minhashSize]uint64
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	for s := range sh {
		x := s
		for i := 0; i < minhashSize; i++ {
			// Per-permutation mixing: multiply-xorshift with distinct
			// odd constants.
			v := (x ^ uint64(i)*0x9E3779B97F4A7C15) * 0xBF58476D1CE4E5B9
			v ^= v >> 27
			v *= 0x94D049BB133111EB
			v ^= v >> 31
			if v < sig[i] {
				sig[i] = v
			}
		}
	}
	return sig
}

// estJaccard estimates Jaccard similarity from two signatures.
func estJaccard(a, b [minhashSize]uint64) float64 {
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	return float64(same) / float64(minhashSize)
}

// Deduplicate removes near-duplicate documents (Jaccard ≥ threshold on
// MinHash signatures, candidates found via LSH banding), keeping the
// first occurrence. It returns the surviving indices in input order.
func Deduplicate(docs []string) []int {
	sigs := make([][minhashSize]uint64, len(docs))
	for i, d := range docs {
		sigs[i] = signature(shingles(d))
	}
	buckets := map[uint64][]int{}
	dropped := make([]bool, len(docs))
	for i := range docs {
		if dropped[i] {
			continue
		}
		for b := 0; b < lshBands; b++ {
			h := fnv.New64a()
			for r := 0; r < lshRows; r++ {
				v := sigs[i][b*lshRows+r]
				var buf [8]byte
				for k := 0; k < 8; k++ {
					buf[k] = byte(v >> uint(8*k))
				}
				h.Write(buf[:])
			}
			key := h.Sum64() ^ uint64(b)<<56
			for _, j := range buckets[key] {
				if !dropped[i] && !dropped[j] && estJaccard(sigs[i], sigs[j]) >= jaccardThreshold {
					dropped[i] = true
				}
			}
			buckets[key] = append(buckets[key], i)
		}
	}
	var keep []int
	for i := range docs {
		if !dropped[i] {
			keep = append(keep, i)
		}
	}
	return keep
}
