// Package dataset builds the training corpus and implements the paper's
// data-refinement pipeline (§III-A, Fig. 2 left panel).
//
// The paper scrapes 136k Verilog items from GitHub, MG-Verilog and
// RTLCoder; offline we substitute a parameterised synthetic generator
// with ~two dozen RTL module families (registers, counters, muxes,
// ALUs, FSMs, FIFOs, ...) producing randomized identifiers, widths and
// coding styles. The refinement pipeline itself — module splitting,
// MinHash/Jaccard deduplication, comment/completeness filtering, parser
// syntax gating and description generation — is implemented in full and
// runs over the synthetic raw files exactly as it would over scraped
// ones.
package dataset

import (
	"fmt"
	"math/rand"
	"strings"
)

// Item is one corpus entry: a Verilog module with its natural-language
// description and the family that produced it (for diagnostics).
type Item struct {
	Desc   string
	Code   string
	Family string
}

// family is a named generator of random corpus items.
type family struct {
	name string
	gen  func(r *rand.Rand) Item
}

// identity pools used across families.
var (
	namePrefixes = []string{"", "", "", "my_", "u_", "top_", "core_"}
	nameSuffixes = []string{"", "", "", "0", "1", "2", "_unit", "_mod", "_blk"}
	clkNames     = []string{"clk", "clk", "clk", "clock", "clk_in"}
	rstNames     = []string{"rst", "reset", "rst_n", "arst"}
	dataInNames  = []string{"data_in", "din", "d", "in_data", "a_in"}
	dataOutNames = []string{"data_out", "dout", "q", "out_data", "y_out"}
	widths       = []int{1, 2, 4, 4, 8, 8, 8, 16, 16, 32}
)

func pick(r *rand.Rand, pool []string) string { return pool[r.Intn(len(pool))] }

func pickW(r *rand.Rand) int { return widths[r.Intn(len(widths))] }

func modName(r *rand.Rand, base string) string {
	return pick(r, namePrefixes) + base + pick(r, nameSuffixes)
}

// modNameW sometimes appends width-style suffixes (adder_8bit,
// counter_16, mux4) — the naming convention ubiquitous in scraped RTL,
// and the reason benchmark names like adder_8bit are assemblable.
func modNameW(r *rand.Rand, base string, w int) string {
	switch r.Intn(5) {
	case 0:
		return pick(r, namePrefixes) + base + fmt.Sprintf("_%dbit", w)
	case 1:
		return base + fmt.Sprintf("_%dbit", w)
	case 2:
		return base + fmt.Sprintf("_%d", w)
	default:
		return modName(r, base)
	}
}

// rng returns "[w-1:0] " for w>1, "" otherwise.
func rng(w int) string {
	if w <= 1 {
		return ""
	}
	return fmt.Sprintf("[%d:0] ", w-1)
}

// phrase picks a description template and fills it.
func phrase(r *rand.Rand, options []string, args ...any) string {
	return fmt.Sprintf(options[r.Intn(len(options))], args...)
}

// commentWords feed the random header comments that give scraped-code
// texture (and keep legitimate same-family variants below the MinHash
// duplicate threshold).
var commentWords = []string{
	"synthesizable", "tested", "simple", "basic", "parameterless",
	"behavioral", "rtl", "fpga", "asic", "verified", "draft", "core",
	"block", "logic", "design", "unit", "component", "stage",
}

// withHeader optionally prefixes code with a randomized comment banner.
func withHeader(r *rand.Rand, code, famName string) string {
	if r.Intn(3) != 0 {
		return code
	}
	w1 := commentWords[r.Intn(len(commentWords))]
	w2 := commentWords[r.Intn(len(commentWords))]
	return fmt.Sprintf("// %s %s %s\n%s", w1, w2, famName, code)
}

// Families returns the full set of module-family generators, each
// wrapped with the randomized header decorator.
func Families() []family {
	out := make([]family, len(allFamilies))
	for i, f := range allFamilies {
		f := f
		out[i] = family{name: f.name, gen: func(r *rand.Rand) Item {
			it := f.gen(r)
			it.Code = withHeader(r, it.Code, f.name)
			return it
		}}
	}
	return out
}

var allFamilies = []family{
	{"register", genRegister},
	{"counter", genCounter},
	{"mux2", genMux2},
	{"mux4", genMux4},
	{"decoder", genDecoder},
	{"priority_encoder", genPriorityEncoder},
	{"adder", genAdder},
	{"subtractor", genSubtractor},
	{"comparator", genComparator},
	{"alu", genALU},
	{"shift_register", genShiftRegister},
	{"gray_converter", genGray},
	{"parity", genParity},
	{"edge_detector", genEdgeDetector},
	{"clock_divider", genClockDivider},
	{"fsm_detector", genFSMDetector},
	{"register_file", genRegisterFile},
	{"fifo", genFIFO},
	{"logic_unit", genLogicUnit},
	{"seven_segment", genSevenSegment},
	{"pwm", genPWM},
	{"saturating_counter", genSatCounter},
	{"barrel_shifter", genBarrelShifter},
	{"minmax", genMinMax},
	{"abs_value", genAbs},
	{"accumulator", genAccumulator},
	{"gate", genGate},
	{"gate2", genGate},
	{"buffer", genBuffer},
	{"half_adder", genHalfAdder},
	{"full_adder", genFullAdder},
	{"dff", genDFFVariants},
	{"dff2", genDFFVariants},
	{"d_latch", genDLatch},
	{"multiplier", genMultiplier},
	{"mod_counter", genModCounter},
	{"en_register", genEnableRegister},
}

func genRegister(r *rand.Rand) Item {
	w := pickW(r)
	name := modNameW(r, "data_register", w)
	clk := pick(r, clkNames)
	din := pick(r, dataInNames)
	dout := pick(r, dataOutNames)
	hasRst := r.Intn(2) == 0
	rst := pick(r, rstNames[:2])

	var b strings.Builder
	fmt.Fprintf(&b, "module %s (\n    input %s,\n", name, clk)
	if hasRst {
		fmt.Fprintf(&b, "    input %s,\n", rst)
	}
	fmt.Fprintf(&b, "    input %s%s,\n    output reg %s%s\n);\n", rng(w), din, rng(w), dout)
	if hasRst {
		fmt.Fprintf(&b, "    always @(posedge %s) begin\n        if (%s) %s <= %d'd0;\n        else %s <= %s;\n    end\nendmodule\n",
			clk, rst, dout, w, dout, din)
	} else {
		fmt.Fprintf(&b, "    always @(posedge %s) begin\n        %s <= %s;\n    end\nendmodule\n", clk, dout, din)
	}
	desc := phrase(r, []string{
		"Create a %d-bit data register named %s that captures %s into %s on the rising edge of %s.",
		"Write a %d-bit register module %s storing input %s to output %s at each positive edge of %s.",
		"Design a simple %d-bit register called %s. Input %s is transferred to output %s on every rising clock edge of %s.",
	}, w, name, din, dout, clk)
	if hasRst {
		desc += fmt.Sprintf(" It has a synchronous reset %s that clears the output.", rst)
	}
	return Item{Desc: desc, Code: b.String(), Family: "register"}
}

func genCounter(r *rand.Rand) Item {
	w := pickW(r)
	if w == 1 {
		w = 4
	}
	clk := pick(r, clkNames)
	rst := pick(r, rstNames[:2])
	down := r.Intn(4) == 0
	base := "counter"
	if down || r.Intn(4) == 0 {
		base = pick(r, []string{"counter", "updown_counter", "updown_counter"})
	}
	name := modNameW(r, base, w)
	hasEn := r.Intn(2) == 0
	q := pick(r, []string{"q", "count", "cnt", "value"})

	var b strings.Builder
	fmt.Fprintf(&b, "module %s (\n    input %s,\n    input %s,\n", name, clk, rst)
	if hasEn {
		b.WriteString("    input en,\n")
	}
	fmt.Fprintf(&b, "    output reg %s%s\n);\n", rng(w), q)
	op := "+"
	if down {
		op = "-"
	}
	fmt.Fprintf(&b, "    always @(posedge %s) begin\n        if (%s) %s <= %d'd0;\n", clk, rst, q, w)
	if hasEn {
		fmt.Fprintf(&b, "        else if (en) %s <= %s %s %d'd1;\n", q, q, op, w)
	} else {
		fmt.Fprintf(&b, "        else %s <= %s %s %d'd1;\n", q, q, op, w)
	}
	b.WriteString("    end\nendmodule\n")

	dir := "up"
	if down {
		dir = "down"
	}
	desc := fmt.Sprintf("Design a %d-bit %s-counter named %s with clock %s and synchronous reset %s. The count value is output on %s.", w, dir, name, clk, rst, q)
	if hasEn {
		desc += " Counting advances only while the enable input en is high."
	}
	return Item{Desc: desc, Code: b.String(), Family: "counter"}
}

func genMux2(r *rand.Rand) Item {
	w := pickW(r)
	name := modNameW(r, "mux2to1", w)
	y := pick(r, []string{"y", "out", "mux_out"})
	style := r.Intn(2)
	var b strings.Builder
	fmt.Fprintf(&b, "module %s (\n    input %sa,\n    input %sb,\n    input sel,\n    output %s%s%s\n);\n",
		name, rng(w), rng(w), map[int]string{0: "", 1: "reg "}[style], rng(w), y)
	if style == 0 {
		fmt.Fprintf(&b, "    assign %s = sel ? b : a;\nendmodule\n", y)
	} else {
		fmt.Fprintf(&b, "    always @(*) begin\n        if (sel) %s = b;\n        else %s = a;\n    end\nendmodule\n", y, y)
	}
	desc := phrase(r, []string{
		"Create a %d-bit 2-to-1 multiplexer named %s selecting between inputs a and b with sel; the result drives %s.",
		"Implement module %s, a %[1]d-bit wide two to one mux. When sel is high output %[3]s equals b, otherwise a.",
	}, w, name, y)
	return Item{Desc: desc, Code: b.String(), Family: "mux2"}
}

func genMux4(r *rand.Rand) Item {
	w := pickW(r)
	name := modNameW(r, "mux4to1", w)
	var b strings.Builder
	fmt.Fprintf(&b, "module %s (\n    input %sd0,\n    input %sd1,\n    input %sd2,\n    input %sd3,\n    input [1:0] sel,\n    output reg %sy\n);\n",
		name, rng(w), rng(w), rng(w), rng(w), rng(w))
	b.WriteString("    always @(*) begin\n        case (sel)\n")
	b.WriteString("            2'b00: y = d0;\n            2'b01: y = d1;\n            2'b10: y = d2;\n            default: y = d3;\n")
	b.WriteString("        endcase\n    end\nendmodule\n")
	desc := fmt.Sprintf("Design a %d-bit 4-to-1 multiplexer called %s. A 2-bit select sel chooses one of d0, d1, d2, d3 to drive output y.", w, name)
	return Item{Desc: desc, Code: b.String(), Family: "mux4"}
}

func genDecoder(r *rand.Rand) Item {
	n := 2 + r.Intn(2) // 2-to-4 or 3-to-8
	out := 1 << n
	name := modName(r, pick(r, []string{fmt.Sprintf("decoder%dto%d", n, out), fmt.Sprintf("decoder_%dto%d", n, out)}))
	hasEn := r.Intn(2) == 0
	var b strings.Builder
	fmt.Fprintf(&b, "module %s (\n    input [%d:0] sel,\n", name, n-1)
	if hasEn {
		b.WriteString("    input en,\n")
	}
	fmt.Fprintf(&b, "    output reg [%d:0] y\n);\n", out-1)
	b.WriteString("    always @(*) begin\n")
	if hasEn {
		fmt.Fprintf(&b, "        if (!en) y = %d'd0;\n        else y = %d'd1 << sel;\n", out, out)
	} else {
		fmt.Fprintf(&b, "        y = %d'd1 << sel;\n", out)
	}
	b.WriteString("    end\nendmodule\n")
	desc := fmt.Sprintf("Implement a %d-to-%d one-hot decoder named %s: output bit sel of y goes high.", n, out, name)
	if hasEn {
		desc += " All outputs are low when the enable en is deasserted."
	}
	return Item{Desc: desc, Code: b.String(), Family: "decoder"}
}

func genPriorityEncoder(r *rand.Rand) Item {
	name := modNameW(r, "priority_encoder", 4)
	var b strings.Builder
	fmt.Fprintf(&b, "module %s (\n    input [3:0] req,\n    output reg [1:0] grant,\n    output reg valid\n);\n", name)
	b.WriteString(`    always @(*) begin
        valid = 1'b1;
        casez (req)
            4'b1zzz: grant = 2'd3;
            4'b01zz: grant = 2'd2;
            4'b001z: grant = 2'd1;
            4'b0001: grant = 2'd0;
            default: begin grant = 2'd0; valid = 1'b0; end
        endcase
    end
endmodule
`)
	desc := fmt.Sprintf("Create a 4-bit priority encoder named %s. The highest set bit of req is encoded on grant, and valid indicates any request.", name)
	return Item{Desc: desc, Code: b.String(), Family: "priority_encoder"}
}

func genAdder(r *rand.Rand) Item {
	w := pickW(r)
	if w == 1 {
		w = 8
	}
	name := modNameW(r, "adder", w)
	hasCarry := r.Intn(2) == 0
	var b strings.Builder
	if hasCarry {
		fmt.Fprintf(&b, "module %s (\n    input %sa,\n    input %sb,\n    input cin,\n    output %ssum,\n    output cout\n);\n",
			name, rng(w), rng(w), rng(w))
		fmt.Fprintf(&b, "    assign {cout, sum} = a + b + cin;\nendmodule\n")
	} else {
		fmt.Fprintf(&b, "module %s (\n    input %sa,\n    input %sb,\n    output %ssum\n);\n", name, rng(w), rng(w), rng(w))
		b.WriteString("    assign sum = a + b;\nendmodule\n")
	}
	desc := fmt.Sprintf("Design a %d-bit adder module named %s computing sum = a + b.", w, name)
	if hasCarry {
		desc = fmt.Sprintf("Design a %d-bit adder with carry named %s: it adds a, b and carry-in cin, producing sum and carry-out cout.", w, name)
	}
	return Item{Desc: desc, Code: b.String(), Family: "adder"}
}

func genSubtractor(r *rand.Rand) Item {
	w := pickW(r)
	if w == 1 {
		w = 8
	}
	name := modNameW(r, pick(r, []string{"subtractor", "sub", "sub"}), w)
	var b strings.Builder
	fmt.Fprintf(&b, "module %s (\n    input %sa,\n    input %sb,\n    output %sdiff,\n    output borrow\n);\n",
		name, rng(w), rng(w), rng(w))
	b.WriteString("    assign diff = a - b;\n    assign borrow = (a < b);\nendmodule\n")
	desc := fmt.Sprintf("Implement a %d-bit subtractor named %s producing diff = a - b and a borrow flag when a is less than b.", w, name)
	return Item{Desc: desc, Code: b.String(), Family: "subtractor"}
}

func genComparator(r *rand.Rand) Item {
	w := pickW(r)
	name := modNameW(r, "comparator", w)
	var b strings.Builder
	fmt.Fprintf(&b, "module %s (\n    input %sa,\n    input %sb,\n    output eq,\n    output gt,\n    output lt\n);\n",
		name, rng(w), rng(w))
	b.WriteString("    assign eq = (a == b);\n    assign gt = (a > b);\n    assign lt = (a < b);\nendmodule\n")
	desc := fmt.Sprintf("Create a %d-bit comparator named %s with equality output eq, greater-than output gt and less-than output lt for inputs a and b.", w, name)
	return Item{Desc: desc, Code: b.String(), Family: "comparator"}
}

func genALU(r *rand.Rand) Item {
	w := pickW(r)
	if w < 4 {
		w = 8
	}
	name := modNameW(r, "alu", w)
	var b strings.Builder
	fmt.Fprintf(&b, "module %s (\n    input [1:0] op,\n    input %sa,\n    input %sb,\n    output reg %sy\n);\n",
		name, rng(w), rng(w), rng(w))
	b.WriteString(`    always @(*) begin
        case (op)
            2'b00: y = a + b;
            2'b01: y = a - b;
            2'b10: y = a & b;
            default: y = a | b;
        endcase
    end
endmodule
`)
	desc := fmt.Sprintf("Implement a %d-bit ALU named %s. Opcode op selects add (00), subtract (01), bitwise and (10) or bitwise or (11) of a and b onto y.", w, name)
	return Item{Desc: desc, Code: b.String(), Family: "alu"}
}

func genShiftRegister(r *rand.Rand) Item {
	w := pickW(r)
	if w < 4 {
		w = 4
	}
	name := modNameW(r, pick(r, []string{"shift_register", "shift_reg", "shift_reg"}), w)
	clk := pick(r, clkNames)
	left := r.Intn(2) == 0
	var b strings.Builder
	fmt.Fprintf(&b, "module %s (\n    input %s,\n    input din,\n    output reg %sq\n);\n", name, clk, rng(w))
	if left {
		fmt.Fprintf(&b, "    always @(posedge %s) q <= {q[%d:0], din};\nendmodule\n", clk, w-2)
	} else {
		fmt.Fprintf(&b, "    always @(posedge %s) q <= {din, q[%d:1]};\nendmodule\n", clk, w-1)
	}
	dir := "left"
	if !left {
		dir = "right"
	}
	desc := fmt.Sprintf("Design a %d-bit %s-shifting shift register named %s. Serial input din enters on each rising edge of %s; the parallel state appears on q.", w, dir, name, clk)
	return Item{Desc: desc, Code: b.String(), Family: "shift_register"}
}

func genGray(r *rand.Rand) Item {
	w := pickW(r)
	if w < 4 {
		w = 4
	}
	name := modNameW(r, "bin2gray", w)
	var b strings.Builder
	fmt.Fprintf(&b, "module %s (\n    input %sbin,\n    output %sgray\n);\n", name, rng(w), rng(w))
	b.WriteString("    assign gray = bin ^ (bin >> 1);\nendmodule\n")
	desc := fmt.Sprintf("Create a %d-bit binary to Gray code converter named %s: gray equals bin xor bin shifted right by one.", w, name)
	return Item{Desc: desc, Code: b.String(), Family: "gray_converter"}
}

func genParity(r *rand.Rand) Item {
	w := pickW(r)
	if w < 4 {
		w = 8
	}
	name := modNameW(r, pick(r, []string{"parity_gen", "parity", "parity"}), w)
	odd := r.Intn(2) == 0
	var b strings.Builder
	fmt.Fprintf(&b, "module %s (\n    input %sdata,\n    output parity\n);\n", name, rng(w))
	if odd {
		b.WriteString("    assign parity = ~(^data);\nendmodule\n")
	} else {
		b.WriteString("    assign parity = ^data;\nendmodule\n")
	}
	kind := "even"
	if odd {
		kind = "odd"
	}
	desc := fmt.Sprintf("Implement a %d-bit %s parity generator named %s computing the parity of the data input.", w, kind, name)
	return Item{Desc: desc, Code: b.String(), Family: "parity"}
}

func genEdgeDetector(r *rand.Rand) Item {
	name := modName(r, "edge_detector")
	clk := pick(r, clkNames)
	var b strings.Builder
	fmt.Fprintf(&b, "module %s (\n    input %s,\n    input sig,\n    output pulse\n);\n    reg sig_d;\n", name, clk)
	fmt.Fprintf(&b, "    always @(posedge %s) sig_d <= sig;\n    assign pulse = sig & ~sig_d;\nendmodule\n", clk)
	desc := fmt.Sprintf("Design a rising-edge detector named %s: output pulse is high for one cycle of %s whenever input sig transitions from low to high.", name, clk)
	return Item{Desc: desc, Code: b.String(), Family: "edge_detector"}
}

func genClockDivider(r *rand.Rand) Item {
	n := []int{2, 4, 8, 16}[r.Intn(4)]
	name := pick(r, []string{modName(r, "clk_div"), fmt.Sprintf("clk_div%d", n)})
	var b strings.Builder
	bits := 1
	for (1 << bits) < n {
		bits++
	}
	fmt.Fprintf(&b, "module %s (\n    input clk,\n    input rst,\n    output clk_out\n);\n    reg [%d:0] cnt;\n", name, bits-1)
	fmt.Fprintf(&b, "    always @(posedge clk) begin\n        if (rst) cnt <= %d'd0;\n        else cnt <= cnt + %d'd1;\n    end\n", bits, bits)
	fmt.Fprintf(&b, "    assign clk_out = cnt[%d];\nendmodule\n", bits-1)
	desc := fmt.Sprintf("Create a divide-by-%d clock divider named %s with synchronous reset rst; clk_out toggles at 1/%d of the clk frequency.", n, name, n)
	return Item{Desc: desc, Code: b.String(), Family: "clock_divider"}
}

func genFSMDetector(r *rand.Rand) Item {
	pattern := []string{"101", "110", "011"}[r.Intn(3)]
	name := pick(r, []string{modName(r, "seq_detector"), "seq_det_" + pattern, "seq_detector_" + pattern})
	var b strings.Builder
	fmt.Fprintf(&b, "module %s (\n    input clk,\n    input rst,\n    input din,\n    output seen\n);\n", name)
	b.WriteString("    reg [1:0] state;\n    localparam S0 = 2'd0, S1 = 2'd1, S2 = 2'd2, S3 = 2'd3;\n")
	b.WriteString("    always @(posedge clk) begin\n        if (rst) state <= S0;\n        else begin\n            case (state)\n")
	// Build transitions for the chosen 3-bit overlapping detector.
	p0 := pattern[0] == '1'
	p1 := pattern[1] == '1'
	p2 := pattern[2] == '1'
	t := func(cond bool, yes, no string) string {
		if cond {
			return fmt.Sprintf("din ? %s : %s", yes, no)
		}
		return fmt.Sprintf("din ? %s : %s", no, yes)
	}
	// S0: nothing matched; S1: first symbol matched; S2: two matched;
	// S3: full match (output state).
	b.WriteString(fmt.Sprintf("                S0: state <= %s;\n", t(p0, "S1", "S0")))
	b.WriteString(fmt.Sprintf("                S1: state <= %s;\n", t(p1, "S2", restart(p0, p1))))
	b.WriteString(fmt.Sprintf("                S2: state <= %s;\n", t(p2, "S3", restart2(p0, p1, p2))))
	b.WriteString(fmt.Sprintf("                S3: state <= %s;\n", t(p0, "S1", "S0")))
	b.WriteString("            endcase\n        end\n    end\n")
	b.WriteString("    assign seen = (state == S3);\nendmodule\n")
	desc := fmt.Sprintf("Design a Moore sequence detector named %s that raises seen for one cycle after observing the bit pattern %s on din (with synchronous reset rst).", name, pattern)
	return Item{Desc: desc, Code: b.String(), Family: "fsm_detector"}
}

// restart computes the fallback state after a mismatch at position 1.
func restart(p0, p1 bool) string {
	// The mismatching symbol is !p1; if it could restart the pattern
	// (equals p0), fall to S1, else to S0.
	if p0 == !p1 {
		return "S1"
	}
	return "S0"
}

// restart2 computes the fallback state after a mismatch at position 2.
func restart2(p0, p1, p2 bool) string {
	// Mismatching symbol is !p2; check overlap with prefix.
	if p1 == p0 && !p2 == p1 {
		return "S2"
	}
	if !p2 == p0 {
		return "S1"
	}
	return "S0"
}

func genRegisterFile(r *rand.Rand) Item {
	w := []int{8, 16, 32}[r.Intn(3)]
	depth := []int{8, 16}[r.Intn(2)]
	abits := 3
	if depth == 16 {
		abits = 4
	}
	name := pick(r, []string{modName(r, "register_file"), fmt.Sprintf("regfile_%dx%d", depth, w), modName(r, "regfile")})
	var b strings.Builder
	fmt.Fprintf(&b, "module %s (\n    input clk,\n    input we,\n    input [%d:0] waddr,\n    input [%d:0] raddr,\n    input %swdata,\n    output %srdata\n);\n",
		name, abits-1, abits-1, rng(w), rng(w))
	fmt.Fprintf(&b, "    reg %smem [0:%d];\n", rng(w), depth-1)
	b.WriteString("    always @(posedge clk) begin\n        if (we) mem[waddr] <= wdata;\n    end\n")
	b.WriteString("    assign rdata = mem[raddr];\nendmodule\n")
	desc := fmt.Sprintf("Implement a %d-entry register file named %s with %d-bit words, write port (we, waddr, wdata) clocked on clk and combinational read port (raddr, rdata).", depth, name, w)
	return Item{Desc: desc, Code: b.String(), Family: "register_file"}
}

func genFIFO(r *rand.Rand) Item {
	w := []int{8, 16}[r.Intn(2)]
	name := pick(r, []string{modName(r, "sync_fifo"), fmt.Sprintf("fifo_8x%d", w), modName(r, "fifo")})
	var b strings.Builder
	fmt.Fprintf(&b, "module %s (\n    input clk,\n    input rst,\n    input push,\n    input pop,\n    input %sdin,\n    output %sdout,\n    output empty,\n    output full\n);\n",
		name, rng(w), rng(w))
	fmt.Fprintf(&b, "    reg %smem [0:7];\n    reg [3:0] count;\n    reg [2:0] rptr, wptr;\n", rng(w))
	b.WriteString(`    always @(posedge clk) begin
        if (rst) begin
            count <= 4'd0;
            rptr <= 3'd0;
            wptr <= 3'd0;
        end else begin
            if (push && !full) begin
                mem[wptr] <= din;
                wptr <= wptr + 3'd1;
                if (!(pop && !empty)) count <= count + 4'd1;
            end
            if (pop && !empty) begin
                rptr <= rptr + 3'd1;
                if (!(push && !full)) count <= count - 4'd1;
            end
        end
    end
    assign dout = mem[rptr];
    assign empty = (count == 4'd0);
    assign full = (count == 4'd8);
endmodule
`)
	desc := fmt.Sprintf("Design an 8-deep synchronous FIFO named %s with %d-bit data, push/pop handshakes, empty and full flags, and synchronous reset rst.", name, w)
	return Item{Desc: desc, Code: b.String(), Family: "fifo"}
}

func genLogicUnit(r *rand.Rand) Item {
	w := pickW(r)
	name := modNameW(r, "logic_unit", w)
	var b strings.Builder
	fmt.Fprintf(&b, "module %s (\n    input %sa,\n    input %sb,\n    output %sand_o,\n    output %sor_o,\n    output %sxor_o,\n    output %snot_a\n);\n",
		name, rng(w), rng(w), rng(w), rng(w), rng(w), rng(w))
	b.WriteString("    assign and_o = a & b;\n    assign or_o = a | b;\n    assign xor_o = a ^ b;\n    assign not_a = ~a;\nendmodule\n")
	desc := fmt.Sprintf("Create a %d-bit combinational logic unit named %s producing and_o, or_o, xor_o of a and b plus not_a.", w, name)
	return Item{Desc: desc, Code: b.String(), Family: "logic_unit"}
}

func genSevenSegment(r *rand.Rand) Item {
	name := modName(r, "seven_seg")
	var b strings.Builder
	fmt.Fprintf(&b, "module %s (\n    input [3:0] digit,\n    output reg [6:0] seg\n);\n", name)
	b.WriteString(`    always @(*) begin
        case (digit)
            4'd0: seg = 7'b1111110;
            4'd1: seg = 7'b0110000;
            4'd2: seg = 7'b1101101;
            4'd3: seg = 7'b1111001;
            4'd4: seg = 7'b0110011;
            4'd5: seg = 7'b1011011;
            4'd6: seg = 7'b1011111;
            4'd7: seg = 7'b1110000;
            4'd8: seg = 7'b1111111;
            4'd9: seg = 7'b1111011;
            default: seg = 7'b0000000;
        endcase
    end
endmodule
`)
	desc := fmt.Sprintf("Implement a BCD seven-segment decoder named %s mapping the 4-bit digit to segment pattern seg (active high, blank for values above 9).", name)
	return Item{Desc: desc, Code: b.String(), Family: "seven_segment"}
}

func genPWM(r *rand.Rand) Item {
	w := []int{4, 8}[r.Intn(2)]
	name := modNameW(r, "pwm", w)
	var b strings.Builder
	fmt.Fprintf(&b, "module %s (\n    input clk,\n    input rst,\n    input %sduty,\n    output pwm_out\n);\n    reg %scnt;\n", name, rng(w), rng(w))
	fmt.Fprintf(&b, "    always @(posedge clk) begin\n        if (rst) cnt <= %d'd0;\n        else cnt <= cnt + %d'd1;\n    end\n", w, w)
	b.WriteString("    assign pwm_out = (cnt < duty);\nendmodule\n")
	desc := fmt.Sprintf("Create a %d-bit PWM generator named %s: a free-running counter compares against duty, and pwm_out is high while the counter is below it.", w, name)
	return Item{Desc: desc, Code: b.String(), Family: "pwm"}
}

func genSatCounter(r *rand.Rand) Item {
	w := []int{2, 3, 4}[r.Intn(3)]
	maxV := (1 << w) - 1
	name := modNameW(r, "sat_counter", w)
	var b strings.Builder
	fmt.Fprintf(&b, "module %s (\n    input clk,\n    input rst,\n    input inc,\n    input dec,\n    output reg %scnt\n);\n", name, rng(w))
	fmt.Fprintf(&b, `    always @(posedge clk) begin
        if (rst) cnt <= %d'd0;
        else if (inc && !dec && cnt != %d'd%d) cnt <= cnt + %d'd1;
        else if (dec && !inc && cnt != %d'd0) cnt <= cnt - %d'd1;
    end
endmodule
`, w, w, maxV, w, w, w)
	desc := fmt.Sprintf("Design a %d-bit saturating up/down counter named %s: inc increments up to %d, dec decrements down to 0, and simultaneous requests hold the value.", w, name, maxV)
	return Item{Desc: desc, Code: b.String(), Family: "saturating_counter"}
}

func genBarrelShifter(r *rand.Rand) Item {
	w := []int{8, 16}[r.Intn(2)]
	sh := 3
	if w == 16 {
		sh = 4
	}
	name := modNameW(r, "barrel_shifter", w)
	left := r.Intn(2) == 0
	var b strings.Builder
	fmt.Fprintf(&b, "module %s (\n    input %sdata,\n    input [%d:0] amount,\n    output %sresult\n);\n", name, rng(w), sh-1, rng(w))
	if left {
		b.WriteString("    assign result = data << amount;\nendmodule\n")
	} else {
		b.WriteString("    assign result = data >> amount;\nendmodule\n")
	}
	dir := "left"
	if !left {
		dir = "right"
	}
	desc := fmt.Sprintf("Implement a %d-bit %s barrel shifter named %s shifting data by amount positions.", w, dir, name)
	return Item{Desc: desc, Code: b.String(), Family: "barrel_shifter"}
}

func genMinMax(r *rand.Rand) Item {
	w := pickW(r)
	name := modNameW(r, "minmax", w)
	var b strings.Builder
	fmt.Fprintf(&b, "module %s (\n    input %sa,\n    input %sb,\n    output %smin_o,\n    output %smax_o\n);\n",
		name, rng(w), rng(w), rng(w), rng(w))
	b.WriteString("    assign min_o = (a < b) ? a : b;\n    assign max_o = (a > b) ? a : b;\nendmodule\n")
	desc := fmt.Sprintf("Create a %d-bit min/max unit named %s producing the smaller input on min_o and the larger on max_o.", w, name)
	return Item{Desc: desc, Code: b.String(), Family: "minmax"}
}

func genAbs(r *rand.Rand) Item {
	w := []int{8, 16}[r.Intn(2)]
	name := modNameW(r, pick(r, []string{"abs_value", "abs", "abs"}), w)
	var b strings.Builder
	fmt.Fprintf(&b, "module %s (\n    input signed %sx,\n    output %sy\n);\n", name, rng(w), rng(w))
	fmt.Fprintf(&b, "    assign y = (x < 0) ? -x : x;\nendmodule\n")
	desc := fmt.Sprintf("Implement an absolute-value unit named %s for a signed %d-bit input x, producing the magnitude on y.", name, w)
	return Item{Desc: desc, Code: b.String(), Family: "abs_value"}
}

func genAccumulator(r *rand.Rand) Item {
	w := []int{8, 16, 32}[r.Intn(3)]
	name := modNameW(r, "accumulator", w)
	var b strings.Builder
	fmt.Fprintf(&b, "module %s (\n    input clk,\n    input rst,\n    input en,\n    input %sdin,\n    output reg %sacc\n);\n", name, rng(w), rng(w))
	fmt.Fprintf(&b, "    always @(posedge clk) begin\n        if (rst) acc <= %d'd0;\n        else if (en) acc <= acc + din;\n    end\nendmodule\n", w)
	desc := fmt.Sprintf("Design a %d-bit accumulator named %s that adds din into acc on each enabled rising clock edge, with synchronous reset rst.", w, name)
	return Item{Desc: desc, Code: b.String(), Family: "accumulator"}
}

// gateSpecs drive the basic-gate family shared by teaching repositories
// everywhere (and by VGen-style benchmarks).
var gateSpecs = []struct {
	kind string
	expr string
	desc string
}{
	{"and", "a & b", "2-input and gate"},
	{"or", "a | b", "2-input or gate"},
	{"xor", "a ^ b", "2-input xor gate"},
	{"nand", "~(a & b)", "2-input nand gate"},
	{"nor", "~(a | b)", "2-input nor gate"},
	{"xnor", "~(a ^ b)", "2-input xnor gate"},
}

func genGate(r *rand.Rand) Item {
	g := gateSpecs[r.Intn(len(gateSpecs))]
	name := modName(r, g.kind+"_gate")
	out := pick(r, []string{"out", "y", "out"})
	var b strings.Builder
	fmt.Fprintf(&b, "module %s(input a, input b, output %s);\n    assign %s = %s;\nendmodule\n",
		name, out, out, strings.ReplaceAll(g.expr, "out", out))
	desc := phrase(r, []string{
		"Implement a %s named %s driving output %s from inputs a and b.",
		"Write a %s module called %s with inputs a, b and output %s.",
	}, g.desc, name, out)
	return Item{Desc: desc, Code: b.String(), Family: "gate"}
}

func genBuffer(r *rand.Rand) Item {
	name := modName(r, pick(r, []string{"buffer", "simple_wire", "inverter"}))
	invert := strings.Contains(name, "inv") || r.Intn(3) == 0
	in := pick(r, []string{"in_a", "a", "din", "sig_in"})
	out := pick(r, []string{"out_a", "y", "dout", "sig_out"})
	var b strings.Builder
	expr := in
	kind := "wire that connects"
	if invert {
		expr = "~" + in
		kind = "inverter that drives the complement of"
	}
	fmt.Fprintf(&b, "module %s(input %s, output %s);\n    assign %s = %s;\nendmodule\n",
		name, in, out, out, expr)
	desc := fmt.Sprintf("Implement a simple %s input %s to output %s, as module %s.", kind, in, out, name)
	return Item{Desc: desc, Code: b.String(), Family: "buffer"}
}

func genHalfAdder(r *rand.Rand) Item {
	name := modName(r, "half_adder")
	var b strings.Builder
	fmt.Fprintf(&b, "module %s(input a, input b, output s, output c);\n    assign s = a ^ b;\n    assign c = a & b;\nendmodule\n", name)
	desc := fmt.Sprintf("Implement a half adder named %s: sum s is a xor b, carry c is a and b.", name)
	return Item{Desc: desc, Code: b.String(), Family: "half_adder"}
}

func genFullAdder(r *rand.Rand) Item {
	name := modName(r, "full_adder")
	var b strings.Builder
	style := r.Intn(2)
	if style == 0 {
		fmt.Fprintf(&b, "module %s(input a, input b, input cin, output s, output cout);\n    assign s = a ^ b ^ cin;\n    assign cout = (a & b) | (a & cin) | (b & cin);\nendmodule\n", name)
	} else {
		fmt.Fprintf(&b, "module %s(input a, input b, input cin, output s, output cout);\n    assign {cout, s} = a + b + cin;\nendmodule\n", name)
	}
	desc := fmt.Sprintf("Implement a one-bit full adder named %s with inputs a, b, cin and outputs s (sum) and cout (carry out).", name)
	return Item{Desc: desc, Code: b.String(), Family: "full_adder"}
}

func genDFFVariants(r *rand.Rand) Item {
	name := modName(r, pick(r, []string{"dff", "d_flip_flop", "dff_rst", "t_ff"}))
	clk := pick(r, clkNames[:3])
	var b strings.Builder
	var desc string
	switch {
	case strings.Contains(name, "t_ff"):
		fmt.Fprintf(&b, "module %s(input %s, input rst, input t, output reg q);\n    always @(posedge %s) begin\n        if (rst) q <= 1'b0;\n        else if (t) q <= ~q;\n    end\nendmodule\n", name, clk, clk)
		desc = fmt.Sprintf("Implement a T flip-flop named %s with synchronous reset rst: q toggles on the rising edge of %s when t is high.", name, clk)
	case strings.Contains(name, "rst"):
		fmt.Fprintf(&b, "module %s(input %s, input rst, input d, output reg q);\n    always @(posedge %s) begin\n        if (rst) q <= 1'b0;\n        else q <= d;\n    end\nendmodule\n", name, clk, clk)
		desc = fmt.Sprintf("Implement a D flip-flop with synchronous reset named %s: on the rising edge of %s, q clears when rst is high, else captures d.", name, clk)
	default:
		fmt.Fprintf(&b, "module %s(input %s, input d, output reg q);\n    always @(posedge %s) q <= d;\nendmodule\n", name, clk, clk)
		desc = fmt.Sprintf("Implement a D flip-flop named %s capturing d into q on the rising edge of %s.", name, clk)
	}
	return Item{Desc: desc, Code: b.String(), Family: "dff"}
}

func genDLatch(r *rand.Rand) Item {
	name := modName(r, "d_latch")
	var b strings.Builder
	fmt.Fprintf(&b, "module %s(input d, input en, output reg q);\n    always @(*) begin\n        if (en) q = d;\n    end\nendmodule\n", name)
	desc := fmt.Sprintf("Implement a level-sensitive D latch named %s: while en is high q follows d, otherwise q holds.", name)
	return Item{Desc: desc, Code: b.String(), Family: "d_latch"}
}

func genMultiplier(r *rand.Rand) Item {
	w := []int{2, 4, 4, 8}[r.Intn(4)]
	name := modNameW(r, pick(r, []string{"mult", "multiplier", "mult"}), w)
	var b strings.Builder
	fmt.Fprintf(&b, "module %s (\n    input %sa,\n    input %sb,\n    output %sp\n);\n    assign p = a * b;\nendmodule\n",
		name, rng(w), rng(w), rng(2*w))
	desc := fmt.Sprintf("Implement a combinational %d-bit multiplier named %s producing the %d-bit product p of a and b.", w, name, 2*w)
	return Item{Desc: desc, Code: b.String(), Family: "multiplier"}
}

func genModCounter(r *rand.Rand) Item {
	modN := []int{10, 10, 12, 6, 100}[r.Intn(5)]
	w := 4
	if modN > 16 {
		w = 7
	}
	name := pick(r, []string{fmt.Sprintf("counter_mod%d", modN), modName(r, "mod_counter"), fmt.Sprintf("mod%d_counter", modN)})
	q := pick(r, []string{"q", "count", "cnt"})
	var b strings.Builder
	fmt.Fprintf(&b, "module %s (\n    input clk,\n    input rst,\n    output reg %s%s\n);\n", name, rng(w), q)
	fmt.Fprintf(&b, "    always @(posedge clk) begin\n        if (rst) %s <= %d'd0;\n        else if (%s == %d'd%d) %s <= %d'd0;\n        else %s <= %s + %d'd1;\n    end\nendmodule\n",
		q, w, q, w, modN-1, q, w, q, q, w)
	desc := fmt.Sprintf("Design a modulo-%d (BCD-style) counter named %s: %s increments each rising clock edge and wraps from %d back to 0, with synchronous reset rst.", modN, name, q, modN-1)
	return Item{Desc: desc, Code: b.String(), Family: "mod_counter"}
}

func genEnableRegister(r *rand.Rand) Item {
	w := pickW(r)
	name := pick(r, []string{fmt.Sprintf("register_%dbit_en", w), modNameW(r, "register", w), modName(r, "en_register")})
	clk := pick(r, clkNames[:3])
	var b strings.Builder
	fmt.Fprintf(&b, "module %s (\n    input %s,\n    input en,\n    input %sd,\n    output reg %sq\n);\n", name, clk, rng(w), rng(w))
	fmt.Fprintf(&b, "    always @(posedge %s) begin\n        if (en) q <= d;\n    end\nendmodule\n", clk)
	desc := fmt.Sprintf("Implement an %d-bit register with enable named %s: on each rising edge of %s, q captures d only while en is high, otherwise it holds.", w, name, clk)
	return Item{Desc: desc, Code: b.String(), Family: "en_register"}
}
