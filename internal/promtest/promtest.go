// Package promtest validates Prometheus text exposition (version
// 0.0.4) bodies in tests: metric-name and label-name validity, label
// value quoting/escaping, sample value syntax, and the presence of one
// HELP/TYPE pair per family before its first sample. It is a test
// helper, not a scraper — it checks the contract a real Prometheus
// server would enforce, so a malformed family fails CI instead of
// silently dropping from dashboards.
package promtest

import (
	"fmt"
	"strconv"
	"strings"
)

// metricNameValid reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func metricNameValid(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// labelNameValid reports whether s matches [a-zA-Z_][a-zA-Z0-9_]*.
func labelNameValid(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// family is one metric family's declared metadata.
type family struct {
	help, typ string
	samples   int
}

var validTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true,
	"summary": true, "untyped": true,
}

// Lint checks a full exposition body and returns every violation
// found (nil for a clean body).
func Lint(text string) []error {
	var errs []error
	fams := map[string]*family{}
	fam := func(name string) *family {
		f := fams[name]
		if f == nil {
			f = &family{}
			fams[name] = f
		}
		return f
	}
	for ln, line := range strings.Split(text, "\n") {
		bad := func(format string, args ...any) {
			errs = append(errs, fmt.Errorf("line %d: %s: %q", ln+1, fmt.Sprintf(format, args...), line))
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				bad("comment is neither HELP nor TYPE")
				continue
			}
			name := fields[2]
			if !metricNameValid(name) {
				bad("invalid metric name %q in %s", name, fields[1])
				continue
			}
			f := fam(name)
			if f.samples > 0 {
				bad("%s for %s appears after its samples", fields[1], name)
			}
			switch fields[1] {
			case "HELP":
				if f.help != "" {
					bad("duplicate HELP for %s", name)
				}
				if len(fields) < 4 || strings.TrimSpace(fields[3]) == "" {
					bad("empty HELP text for %s", name)
				} else {
					f.help = fields[3]
				}
			case "TYPE":
				if f.typ != "" {
					bad("duplicate TYPE for %s", name)
				}
				if len(fields) < 4 || !validTypes[strings.TrimSpace(fields[3])] {
					bad("invalid TYPE for %s", name)
				} else {
					f.typ = strings.TrimSpace(fields[3])
				}
			}
			continue
		}
		name, rest, lerrs := parseSample(line)
		for _, e := range lerrs {
			errs = append(errs, fmt.Errorf("line %d: %w: %q", ln+1, e, line))
		}
		if name == "" {
			continue
		}
		// Histograms/summaries declare the base family; _bucket/_sum/
		// _count samples belong to it.
		famName := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && fams[base] != nil {
				famName = base
				break
			}
		}
		f := fam(famName)
		f.samples++
		_ = rest
	}
	for name, f := range fams {
		if f.samples == 0 {
			errs = append(errs, fmt.Errorf("family %s declared but has no samples", name))
			continue
		}
		if f.help == "" {
			errs = append(errs, fmt.Errorf("family %s has samples but no HELP", name))
		}
		if f.typ == "" {
			errs = append(errs, fmt.Errorf("family %s has samples but no TYPE", name))
		}
	}
	return errs
}

// Families returns the family names that carry at least one sample.
func Families(text string) []string {
	fams := map[string]bool{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, _, _ := parseSample(line)
		if name != "" {
			fams[name] = true
		}
	}
	out := make([]string, 0, len(fams))
	for name := range fams {
		out = append(out, name)
	}
	return out
}

// parseSample splits one sample line into metric name and the
// remainder, validating the label block and the value.
func parseSample(line string) (name, rest string, errs []error) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", "", []error{fmt.Errorf("sample has no value")}
	}
	name = line[:i]
	if !metricNameValid(name) {
		errs = append(errs, fmt.Errorf("invalid metric name %q", name))
	}
	rest = line[i:]
	if strings.HasPrefix(rest, "{") {
		var lerrs []error
		rest, lerrs = parseLabels(rest)
		errs = append(errs, lerrs...)
	}
	value := strings.TrimSpace(rest)
	// A trailing timestamp is legal: "value timestamp".
	if sp := strings.IndexByte(value, ' '); sp >= 0 {
		ts := value[sp+1:]
		value = value[:sp]
		if _, err := strconv.ParseInt(ts, 10, 64); err != nil {
			errs = append(errs, fmt.Errorf("invalid timestamp %q", ts))
		}
	}
	switch value {
	case "+Inf", "-Inf", "NaN":
	default:
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			errs = append(errs, fmt.Errorf("invalid sample value %q", value))
		}
	}
	return name, rest, errs
}

// parseLabels consumes a {name="value",...} block, validating label
// names and the \\, \" and \n escapes inside quoted values. Returns
// what follows the closing brace.
func parseLabels(s string) (rest string, errs []error) {
	s = s[1:] // consume '{'
	for {
		if s == "" {
			return "", append(errs, fmt.Errorf("unterminated label block"))
		}
		if s[0] == '}' {
			return s[1:], errs
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return "", append(errs, fmt.Errorf("label without '='"))
		}
		lname := strings.TrimSuffix(s[:eq], " ")
		if !labelNameValid(lname) {
			errs = append(errs, fmt.Errorf("invalid label name %q", lname))
		}
		s = s[eq+1:]
		if s == "" || s[0] != '"' {
			return "", append(errs, fmt.Errorf("label value for %q not quoted", lname))
		}
		s = s[1:]
		closed := false
		for i := 0; i < len(s); i++ {
			if s[i] == '\\' {
				if i+1 >= len(s) {
					return "", append(errs, fmt.Errorf("dangling escape in label %q", lname))
				}
				switch s[i+1] {
				case '\\', '"', 'n':
					i++ // escaped character consumed
				default:
					errs = append(errs, fmt.Errorf("invalid escape \\%c in label %q", s[i+1], lname))
					i++
				}
				continue
			}
			if s[i] == '"' {
				s = s[i+1:]
				closed = true
				break
			}
		}
		if !closed {
			return "", append(errs, fmt.Errorf("unterminated value for label %q", lname))
		}
		if strings.HasPrefix(s, ",") {
			s = s[1:]
			s = strings.TrimPrefix(s, " ")
			continue
		}
		if !strings.HasPrefix(s, "}") {
			return "", append(errs, fmt.Errorf("junk after label %q", lname))
		}
	}
}
