package promtest

import (
	"strings"
	"testing"
)

func TestLintAcceptsWellFormedExposition(t *testing.T) {
	text := strings.Join([]string{
		`# HELP vgend_requests_total Total requests.`,
		`# TYPE vgend_requests_total counter`,
		`vgend_requests_total 42`,
		`# HELP vgend_info Identity.`,
		`# TYPE vgend_info gauge`,
		`vgend_info{model="code\"llama\\sim",scheme="ours"} 1`,
		`# HELP vgend_phase_seconds_total Phase seconds.`,
		`# TYPE vgend_phase_seconds_total counter`,
		`vgend_phase_seconds_total{phase="decode"} 0.25`,
		`vgend_phase_seconds_total{phase="queue"} 1e-05`,
		``,
	}, "\n")
	if errs := Lint(text); len(errs) != 0 {
		t.Fatalf("clean exposition flagged: %v", errs)
	}
	fams := Families(text)
	if len(fams) != 3 {
		t.Fatalf("families = %v, want 3", fams)
	}
}

func TestLintFlagsViolations(t *testing.T) {
	cases := map[string]string{
		"sample without HELP/TYPE": `orphan_total 1`,
		"invalid metric name": strings.Join([]string{
			`# HELP 9bad Bad.`,
			`# TYPE 9bad counter`,
			`9bad 1`}, "\n"),
		"invalid TYPE": strings.Join([]string{
			`# HELP x_total X.`,
			`# TYPE x_total speedometer`,
			`x_total 1`}, "\n"),
		"unescaped quote in label": strings.Join([]string{
			`# HELP x_info X.`,
			`# TYPE x_info gauge`,
			`x_info{name="a"b"} 1`}, "\n"),
		"unquoted label value": strings.Join([]string{
			`# HELP x_info X.`,
			`# TYPE x_info gauge`,
			`x_info{name=abc} 1`}, "\n"),
		"invalid escape": strings.Join([]string{
			`# HELP x_info X.`,
			`# TYPE x_info gauge`,
			`x_info{name="a\q"} 1`}, "\n"),
		"bad sample value": strings.Join([]string{
			`# HELP x_total X.`,
			`# TYPE x_total counter`,
			`x_total banana`}, "\n"),
		"bad label name": strings.Join([]string{
			`# HELP x_info X.`,
			`# TYPE x_info gauge`,
			`x_info{9name="a"} 1`}, "\n"),
		"metadata after samples": strings.Join([]string{
			`# HELP x_total X.`,
			`x_total 1`,
			`# TYPE x_total counter`}, "\n"),
		"duplicate HELP": strings.Join([]string{
			`# HELP x_total X.`,
			`# HELP x_total Y.`,
			`# TYPE x_total counter`,
			`x_total 1`}, "\n"),
	}
	for name, text := range cases {
		if errs := Lint(text); len(errs) == 0 {
			t.Errorf("%s: lint found nothing wrong in %q", name, text)
		}
	}
}
