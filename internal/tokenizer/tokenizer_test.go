package tokenizer

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

var sampleCorpus = []string{
	"module data_register (\n    input clk,\n    input [3:0] data_in,\n    output reg [3:0] data_out\n);\n    always @(posedge clk) begin\n        data_out <= data_in;\n    end\nendmodule\n",
	"module counter(input clk, rst, output reg [7:0] q);\n  always @(posedge clk) if (rst) q <= 0; else q <= q + 1;\nendmodule\n",
	"module mux2to1(input a, b, sel, output y);\n  assign y = sel ? b : a;\nendmodule\n",
}

func TestTrainGrowsVocab(t *testing.T) {
	tk := Train(sampleCorpus, 400)
	if tk.VocabSize() <= NumSpecial+256 {
		t.Fatalf("vocab did not grow: %d", tk.VocabSize())
	}
	if tk.VocabSize() > 400 {
		t.Fatalf("vocab exceeded target: %d", tk.VocabSize())
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	tk := Train(sampleCorpus, 350)
	for _, doc := range sampleCorpus {
		ids := tk.Encode(doc)
		if got := tk.Decode(ids); got != doc {
			t.Fatalf("roundtrip mismatch:\n got %q\nwant %q", got, doc)
		}
	}
}

func TestRoundtripProperty(t *testing.T) {
	tk := Train(sampleCorpus, 320)
	f := func(s string) bool {
		// Byte-level fallback guarantees lossless roundtrip for any
		// byte string.
		return tk.Decode(tk.Encode(s)) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTrainingDeterminism(t *testing.T) {
	a := Train(sampleCorpus, 350)
	b := Train(sampleCorpus, 350)
	if a.VocabSize() != b.VocabSize() {
		t.Fatalf("sizes differ: %d vs %d", a.VocabSize(), b.VocabSize())
	}
	doc := sampleCorpus[0]
	if !reflect.DeepEqual(a.Encode(doc), b.Encode(doc)) {
		t.Fatal("two identical trainings tokenize differently")
	}
}

func TestMergesCompress(t *testing.T) {
	small := Train(sampleCorpus, NumSpecial+256) // bytes only
	big := Train(sampleCorpus, 500)
	doc := sampleCorpus[0]
	if len(big.Encode(doc)) >= len(small.Encode(doc)) {
		t.Fatalf("merges should compress: %d vs %d tokens",
			len(big.Encode(doc)), len(small.Encode(doc)))
	}
}

func TestSpecialTokens(t *testing.T) {
	tk := Train(sampleCorpus, 300)
	if !IsSpecial(FragID) || !IsSpecial(EosID) || IsSpecial(NumSpecial) {
		t.Fatal("IsSpecial misclassifies")
	}
	if tk.Token(FragID) != "[FRAG]" || tk.Token(PadID) != "[PAD]" || tk.Token(IgnoreID) != "[IGNORE]" {
		t.Fatalf("special names wrong: %q %q %q", tk.Token(FragID), tk.Token(PadID), tk.Token(IgnoreID))
	}
	ids := []int{FragID}
	ids = append(ids, tk.Encode("module")...)
	ids = append(ids, FragID)
	if got := tk.Decode(ids); got != "[FRAG]module[FRAG]" {
		t.Fatalf("Decode = %q", got)
	}
	if got := tk.DecodeClean(ids); got != "module" {
		t.Fatalf("DecodeClean = %q", got)
	}
}

func TestEncodeWithMarkers(t *testing.T) {
	tk := Train(sampleCorpus, 300)
	ids := tk.EncodeWithMarkers("wire x;")
	if ids[0] != BosID || ids[len(ids)-1] != EosID {
		t.Fatalf("markers missing: %v", ids)
	}
}

func TestPretokenize(t *testing.T) {
	got := pretokenize("assign y_out = a1 + 3'b101;")
	want := []string{"assign", " ", "y_out", " ", "=", " ", "a1", " ", "+", " ", "3", "'", "b101", ";"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("pretokenize = %q, want %q", got, want)
	}
}

func TestPretokenizeNoCrossBoundaryMerges(t *testing.T) {
	// Train heavily on "ab" pairs split by space; the merge must never
	// produce a token containing the space boundary.
	corpus := []string{strings.Repeat("ab ab ", 50)}
	tk := Train(corpus, NumSpecial+256+10)
	for _, p := range tk.pieces[256:] {
		if strings.ContainsAny(p, " ") && len(p) > 1 && p != "  " && !allSame(p) {
			t.Fatalf("merge crossed word boundary: %q", p)
		}
	}
}

func allSame(s string) bool {
	for i := 1; i < len(s); i++ {
		if s[i] != s[0] {
			return false
		}
	}
	return true
}

func TestVerilogIdentifierStaysWhole(t *testing.T) {
	// Common identifiers in a large corpus should become single tokens.
	corpus := make([]string, 0, 60)
	for i := 0; i < 60; i++ {
		corpus = append(corpus, "input clk, output reg data_out; always @(posedge clk) data_out <= 1;\n")
	}
	tk := Train(corpus, 600)
	ids := tk.Encode("posedge")
	if len(ids) != 1 {
		t.Fatalf("'posedge' encodes to %d tokens (%v), want 1", len(ids), ids)
	}
}
