// Package tokenizer implements a trainable byte-pair-encoding (BPE)
// tokenizer in the style used by the paper's backbone models. The paper
// argues that plain BPE fragments meaningful Verilog structures; this
// package provides exactly that baseline tokenization, on top of which
// the frag package overlays [FRAG]-aligned syntax information.
//
// Token id space:
//
//	0..NumSpecial-1   reserved special tokens ([FRAG], [PAD], [IGNORE],
//	                  <bos>, <eos>, <unk>)
//	NumSpecial..+255  single bytes
//	above             learned merges
package tokenizer

import (
	"fmt"
	"sort"
	"strings"
)

// Reserved special-token ids.
const (
	// FragID is the [FRAG] marker aligning decoding stops with
	// syntactically significant tokens (paper §III-C).
	FragID = 0
	// PadID pads head labels to the base label length (paper Fig. 4).
	PadID = 1
	// IgnoreID marks label positions excluded from loss (paper Fig. 4).
	IgnoreID = 2
	// BosID begins every training / generation sequence.
	BosID = 3
	// EosID ends every training / generation sequence.
	EosID = 4
	// UnkID stands in for bytes outside the training distribution.
	UnkID = 5
	// NumSpecial is the count of reserved ids.
	NumSpecial = 6
)

// specialNames maps reserved ids to their display spelling.
var specialNames = [NumSpecial]string{"[FRAG]", "[PAD]", "[IGNORE]", "<bos>", "<eos>", "<unk>"}

// IsSpecial reports whether id is one of the reserved special tokens.
func IsSpecial(id int) bool { return id >= 0 && id < NumSpecial }

// Tokenizer is a trained BPE vocabulary.
type Tokenizer struct {
	// pieces[id] is the byte string of each token (specials excluded).
	pieces []string
	// ranks maps a merged pair to the id of the merged token; lower id
	// means the merge was learned earlier and applies first.
	ranks map[[2]int]int
}

// VocabSize returns the total number of token ids, including specials.
func (t *Tokenizer) VocabSize() int { return NumSpecial + len(t.pieces) }

// Token renders a token id as text ([FRAG] etc. for specials).
func (t *Tokenizer) Token(id int) string {
	if IsSpecial(id) {
		return specialNames[id]
	}
	i := id - NumSpecial
	if i < 0 || i >= len(t.pieces) {
		return fmt.Sprintf("<bad:%d>", id)
	}
	return t.pieces[i]
}

// pretokenize splits text into BPE word units: identifier runs, digit
// runs, whitespace runs and single punctuation bytes. Merges never
// cross unit boundaries, mirroring the word-boundary behaviour of
// production BPE tokenizers.
func pretokenize(text string) []string {
	var out []string
	i := 0
	n := len(text)
	class := func(c byte) int {
		switch {
		case c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'):
			return 1
		case c >= '0' && c <= '9':
			return 2
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			return 3
		default:
			return 0
		}
	}
	for i < n {
		c := class(text[i])
		if c == 0 {
			out = append(out, text[i:i+1])
			i++
			continue
		}
		j := i + 1
		if c == 1 {
			// Identifier run: letters may be followed by digits too
			// (a1, b101, data_out2).
			for j < n && (class(text[j]) == 1 || class(text[j]) == 2) {
				j++
			}
		} else {
			for j < n && class(text[j]) == c {
				j++
			}
		}
		out = append(out, text[i:j])
		i = j
	}
	return out
}

// Encode tokenizes text into BPE ids (no <bos>/<eos> are added).
func (t *Tokenizer) Encode(text string) []int {
	var out []int
	for _, word := range pretokenize(text) {
		out = append(out, t.encodeWord(word)...)
	}
	return out
}

// EncodeWithMarkers wraps Encode with <bos> ... <eos>.
func (t *Tokenizer) EncodeWithMarkers(text string) []int {
	ids := []int{BosID}
	ids = append(ids, t.Encode(text)...)
	return append(ids, EosID)
}

func (t *Tokenizer) encodeWord(word string) []int {
	ids := make([]int, 0, len(word))
	for i := 0; i < len(word); i++ {
		ids = append(ids, NumSpecial+int(word[i]))
	}
	// Repeatedly apply the earliest-learned merge present.
	for len(ids) >= 2 {
		best, bestAt := -1, -1
		for i := 0; i+1 < len(ids); i++ {
			if id, ok := t.ranks[[2]int{ids[i], ids[i+1]}]; ok {
				if best == -1 || id < best {
					best, bestAt = id, i
				}
			}
		}
		if best == -1 {
			break
		}
		ids[bestAt] = best
		ids = append(ids[:bestAt+1], ids[bestAt+2:]...)
	}
	return ids
}

// Decode renders token ids back into text. Special tokens render as
// their bracketed names; use DecodeClean to drop them.
func (t *Tokenizer) Decode(ids []int) string {
	var sb strings.Builder
	for _, id := range ids {
		sb.WriteString(t.Token(id))
	}
	return sb.String()
}

// DecodeClean renders ids dropping all special tokens — the "cleaned
// code" of the paper's Fig. 2 output path.
func (t *Tokenizer) DecodeClean(ids []int) string {
	var sb strings.Builder
	for _, id := range ids {
		if IsSpecial(id) {
			continue
		}
		sb.WriteString(t.Token(id))
	}
	return sb.String()
}

// Train learns a BPE vocabulary of the given total size (including the
// reserved specials and the 256 byte tokens) from a corpus. Ties in
// pair frequency break lexicographically so training is deterministic.
func Train(corpus []string, vocabSize int) *Tokenizer {
	t := &Tokenizer{ranks: map[[2]int]int{}}
	for b := 0; b < 256; b++ {
		t.pieces = append(t.pieces, string([]byte{byte(b)}))
	}
	if vocabSize <= t.VocabSize() {
		return t
	}

	// Collect word frequencies.
	wordFreq := map[string]int{}
	for _, doc := range corpus {
		for _, w := range pretokenize(doc) {
			wordFreq[w]++
		}
	}
	type word struct {
		ids  []int
		freq int
	}
	words := make([]word, 0, len(wordFreq))
	keys := make([]string, 0, len(wordFreq))
	for w := range wordFreq {
		keys = append(keys, w)
	}
	sort.Strings(keys)
	for _, w := range keys {
		if len(w) < 2 {
			continue
		}
		ids := make([]int, len(w))
		for i := 0; i < len(w); i++ {
			ids[i] = NumSpecial + int(w[i])
		}
		words = append(words, word{ids: ids, freq: wordFreq[w]})
	}

	pairCount := map[[2]int]int{}
	recount := func() {
		clear(pairCount)
		for _, w := range words {
			for i := 0; i+1 < len(w.ids); i++ {
				pairCount[[2]int{w.ids[i], w.ids[i+1]}] += w.freq
			}
		}
	}
	recount()

	for t.VocabSize() < vocabSize {
		// Pick the most frequent pair; break ties by token text.
		var best [2]int
		bestN := 0
		for p, n := range pairCount {
			if n > bestN {
				best, bestN = p, n
				continue
			}
			if n == bestN && n > 0 {
				if t.Token(p[0])+t.Token(p[1]) < t.Token(best[0])+t.Token(best[1]) {
					best = p
				}
			}
		}
		if bestN < 2 {
			break // nothing worth merging
		}
		newID := t.VocabSize()
		t.pieces = append(t.pieces, t.Token(best[0])+t.Token(best[1]))
		t.ranks[best] = newID

		// Apply the merge in place and update pair counts locally.
		for wi := range words {
			w := &words[wi]
			for i := 0; i+1 < len(w.ids); i++ {
				if w.ids[i] != best[0] || w.ids[i+1] != best[1] {
					continue
				}
				if i > 0 {
					pairCount[[2]int{w.ids[i-1], w.ids[i]}] -= w.freq
					pairCount[[2]int{w.ids[i-1], newID}] += w.freq
				}
				if i+2 < len(w.ids) {
					pairCount[[2]int{w.ids[i+1], w.ids[i+2]}] -= w.freq
					pairCount[[2]int{newID, w.ids[i+2]}] += w.freq
				}
				w.ids[i] = newID
				w.ids = append(w.ids[:i+1], w.ids[i+2:]...)
			}
		}
		delete(pairCount, best)
	}
	return t
}
