package cluster

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/serve"
)

// Satellite edge-case coverage for router.go and shed.go: rendezvous
// determinism and tie behavior, the spill escape hatch at saturation,
// admission-chain ordering, and Retry-After value bounds.

// TestRendezvousDeterministicAndOrderIndependent: the rendezvous pick
// is a pure function of (key, candidate names) — repeated calls agree,
// and the candidate ordering never matters (the property that makes
// affinity survive replica list churn from scaling).
func TestRendezvousDeterministicAndOrderIndependent(t *testing.T) {
	f := newFleet(t, 5, nil, nil, serve.Config{Workers: 1, CacheSize: -1})
	reps := f.Replicas()
	router := newPrefixAffinity()
	perms := [][]int{
		{0, 1, 2, 3, 4},
		{4, 3, 2, 1, 0},
		{2, 0, 4, 1, 3},
		{3, 4, 0, 2, 1},
	}
	for _, key := range []string{"", "a", "module adder(", "module adder(input a, input b", "xyzzy"} {
		want := ""
		for _, perm := range perms {
			cands := make([]*Replica, len(perm))
			for i, p := range perm {
				cands[i] = reps[p]
			}
			got := router.Pick(key, cands).Name()
			if want == "" {
				want = got
			}
			if got != want {
				t.Errorf("key %q: pick %q under order %v, want %q (order-dependent rendezvous)", key, got, perm, want)
			}
		}
		// Determinism across repeated calls.
		cands := f.Replicas()
		if a, b := router.Pick(key, cands), router.Pick(key, cands); a != b {
			t.Errorf("key %q: repeated picks disagree (%s vs %s)", key, a.Name(), b.Name())
		}
	}
}

// TestRendezvousScoreTies: routeScore ties are broken by candidate
// order (strict > keeps the earlier winner) — pinned on a synthetic
// exact tie: a replica compared against itself under two aliases.
func TestRendezvousScoreTies(t *testing.T) {
	// Same name → identical score by construction; first occurrence
	// must win for every key, whichever twin comes first.
	f := newFleet(t, 2, nil, nil, serve.Config{Workers: 1, CacheSize: -1})
	r := f.Replicas()[0]
	twin := &Replica{name: r.Name()}
	twin.eng.Store(r.Engine()) // Pick reads load via the engine
	router := newPrefixAffinity()
	for _, key := range []string{"", "a", "tie-break"} {
		if got := router.Pick(key, []*Replica{r, twin}); got != r {
			t.Errorf("key %q: tie broken toward the later candidate", key)
		}
		if got := router.Pick(key, []*Replica{twin, r}); got != twin {
			t.Errorf("key %q: tie broken toward the later candidate (twin first)", key)
		}
	}
}

// TestLeastLoadedSaturationTies: with every replica equally saturated
// there is no better sibling — leastLoaded keeps fleet order and the
// affinity router stays affine rather than spilling (2*least < load
// can never hold when loads are equal).
func TestLeastLoadedSaturationTies(t *testing.T) {
	f := newFleet(t, 4, nil, nil, serve.Config{Workers: 1, CacheSize: -1})
	reps := f.Replicas()
	for _, r := range reps {
		r.inflight.Add(int64(spillMinLoad + 4)) // uniformly saturated, above spillMinLoad
	}
	defer func() {
		for _, r := range reps {
			r.inflight.Add(-int64(spillMinLoad + 4))
		}
	}()
	if got := leastLoaded(reps); got != reps[0] {
		t.Errorf("uniform saturation: leastLoaded picked %s, want fleet-order first %s", got.Name(), reps[0].Name())
	}
	router := newPrefixAffinity()
	for _, key := range []string{"a", "b", "c", "d", "e", "f"} {
		affineWant := router.Pick(key, reps)
		_ = affineWant
	}
	_, spills := router.Stats()
	if spills != 0 {
		t.Errorf("uniformly saturated fleet spilled %d picks — spill must need an idle sibling", spills)
	}

	// And the spill fires exactly when it should: affine drowning,
	// sibling near-idle.
	spillRouter := newPrefixAffinity()
	key := "spill-me"
	affine := spillRouter.Pick(key, reps) // all equal: stays affine
	affine.inflight.Add(64)
	defer affine.inflight.Add(-64)
	least := leastLoaded(reps)
	if got := spillRouter.Pick(key, reps); got != least {
		t.Errorf("drowning affine replica not spilled (got %s, want %s)", got.Name(), least.Name())
	}
	if _, spills := spillRouter.Stats(); spills != 1 {
		t.Errorf("spill counter = %d, want 1", spills)
	}
}

// recordPolicy is a fake ShedPolicy that logs its consultations.
type recordPolicy struct {
	name   string
	refuse bool
	calls  *[]string
}

func (p recordPolicy) Name() string { return p.name }
func (p recordPolicy) Admit(_ context.Context, _ serve.Request, load Load) error {
	*p.calls = append(*p.calls, p.name)
	if p.refuse {
		return &serve.ShedError{Policy: p.name, Reason: "refused by test", RetryAfter: retryAfterFor(load)}
	}
	return nil
}

// TestAdmissionChainOrdering: policies run in chain order, the first
// refusal wins (later policies are never consulted for that request),
// and the shed is accounted to the refusing policy.
func TestAdmissionChainOrdering(t *testing.T) {
	_, prompts := fixture(t)
	var calls []string
	chain := []ShedPolicy{
		recordPolicy{name: "first", calls: &calls},
		recordPolicy{name: "second", refuse: true, calls: &calls},
		recordPolicy{name: "third", calls: &calls},
	}
	f := newFleet(t, 1, nil, chain, serve.Config{Workers: 1, CacheSize: -1})

	_, err := f.TryGenerate(context.Background(), serve.Request{Prompt: prompts[0], Options: testOptions(0)})
	var se *serve.ShedError
	if !errors.As(err, &se) || se.Policy != "second" {
		t.Fatalf("err=%v, want shed by policy %q", err, "second")
	}
	want := []string{"first", "second"}
	if fmt.Sprint(calls) != fmt.Sprint(want) {
		t.Errorf("admission consultations %v, want %v (first refusal must end the chain)", calls, want)
	}
	m := f.Metrics()
	if m.ShedByPolicy["second"] != 1 {
		t.Errorf("shed accounted to %v, want second=1", m.ShedByPolicy)
	}
	if m.ShedByPolicy["first"] != 0 || m.ShedByPolicy["third"] != 0 {
		t.Errorf("non-refusing policies charged: %v", m.ShedByPolicy)
	}
}

// TestRetryAfterBounds is the table-driven Retry-After contract: the
// hint is the estimated queue wait floored at one second (sub-second
// hints would round to a meaningless 0 in the header), and estWait
// itself scales backlog / workers × mean decode time.
func TestRetryAfterBounds(t *testing.T) {
	cases := []struct {
		name      string
		load      Load
		wantWait  time.Duration // estWait
		wantRetry time.Duration // retryAfterFor
	}{
		{
			name:      "no decode history yet",
			load:      Load{Inflight: 10, Workers: 2},
			wantWait:  0,
			wantRetry: time.Second, // floor
		},
		{
			name:      "no workers",
			load:      Load{Inflight: 10, MeanDecodeMS: 100},
			wantWait:  0,
			wantRetry: time.Second,
		},
		{
			name:      "light backlog stays sub-second, hint floors",
			load:      Load{Inflight: 2, Workers: 2, MeanDecodeMS: 100},
			wantWait:  100 * time.Millisecond,
			wantRetry: time.Second,
		},
		{
			name:      "zero inflight still charges one wave",
			load:      Load{Inflight: 0, Workers: 4, MeanDecodeMS: 200},
			wantWait:  50 * time.Millisecond,
			wantRetry: time.Second,
		},
		{
			name:      "deep backlog surfaces the real wait",
			load:      Load{Inflight: 40, Workers: 2, MeanDecodeMS: 150},
			wantWait:  3 * time.Second,
			wantRetry: 3 * time.Second,
		},
		{
			name:      "exactly one second floors (strict > in retryAfterFor)",
			load:      Load{Inflight: 10, Workers: 1, MeanDecodeMS: 100},
			wantWait:  time.Second,
			wantRetry: time.Second,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.load.estWait(); got != tc.wantWait {
				t.Errorf("estWait=%v, want %v", got, tc.wantWait)
			}
			got := retryAfterFor(tc.load)
			if got != tc.wantRetry {
				t.Errorf("retryAfterFor=%v, want %v", got, tc.wantRetry)
			}
			if got < time.Second {
				t.Errorf("Retry-After %v below the 1s floor", got)
			}
			// The client-facing rendering must be >= 1 as well.
			se := &serve.ShedError{RetryAfter: got}
			if se.RetryAfterSeconds() < 1 {
				t.Errorf("RetryAfterSeconds=%d < 1", se.RetryAfterSeconds())
			}
		})
	}
}
