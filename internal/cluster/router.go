package cluster

import (
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
)

// Router picks the replica that serves one request from the candidates
// that carry the requested model. Candidates are never empty and arrive
// in fleet order, so index-based tie-breaks are deterministic.
type Router interface {
	// Name is the flag/metrics spelling of the policy.
	Name() string
	// Pick chooses a replica for the routing key (the request's prompt
	// prefix — see affinityKey).
	Pick(key string, candidates []*Replica) *Replica
}

// NewRouter resolves a routing policy by its flag spelling.
func NewRouter(name string) (Router, error) {
	switch name {
	case "", "prefix-affinity":
		return newPrefixAffinity(), nil
	case "least-loaded":
		return leastLoadedRouter{}, nil
	case "round-robin":
		return &roundRobinRouter{}, nil
	case "random":
		return newRandomRouter(1), nil
	}
	return nil, fmt.Errorf("unknown router %q (want prefix-affinity, least-loaded, round-robin or random)", name)
}

// affinityPrefixLen bounds how much of the prompt feeds the routing
// hash. Hashing only a prefix sends prompts that share their opening —
// retries, n-samples-per-prompt sweeps, templated families — to the
// same replica, which is where per-replica caches (result LRU, prefix
// GenCache, single-flight table) can actually hit.
const affinityPrefixLen = 96

// affinityKey derives the routing key for a prompt.
func affinityKey(prompt string) string {
	if len(prompt) > affinityPrefixLen {
		return prompt[:affinityPrefixLen]
	}
	return prompt
}

// routeScore is the rendezvous weight of (key, replica): FNV-1a (the
// stdlib hasher — no crypto needed, only spread) over the key and the
// replica name with a separator byte between them.
func routeScore(key, name string) uint64 {
	h := fnv.New64a()
	_, _ = io.WriteString(h, key)
	_, _ = h.Write([]byte{0})
	_, _ = io.WriteString(h, name)
	return h.Sum64()
}

// prefixAffinity is consistent hashing in rendezvous (highest-random-
// weight) form: each (key, replica) pair gets a score and the highest
// score wins. Rendezvous gives the two properties the fleet needs with
// no ring state: a key maps to the same replica on every request, and
// adding or removing a replica remaps only the keys that hashed to it.
// A loaded-affine escape hatch falls back to the least-loaded replica
// when the affine one is drowning while siblings idle — affinity is a
// cache optimization, not a correctness rule, and pinning a hot prefix
// to a wedged replica would turn the optimization into a hotspot.
type prefixAffinity struct {
	affine atomic.Uint64 // picks that stayed on the affine replica
	spill  atomic.Uint64 // picks that fell back to least-loaded
}

func newPrefixAffinity() *prefixAffinity { return &prefixAffinity{} }

func (p *prefixAffinity) Name() string { return "prefix-affinity" }

func (p *prefixAffinity) Pick(key string, candidates []*Replica) *Replica {
	best := candidates[0]
	bestScore := routeScore(key, best.name)
	for _, r := range candidates[1:] {
		if s := routeScore(key, r.name); s > bestScore {
			best, bestScore = r, s
		}
	}
	// Spill when the affine replica has a real backlog and some sibling
	// is at most half as loaded: the handoff cost (cold caches there)
	// is then smaller than the queueing cost here.
	if load := best.load(); load > spillMinLoad {
		least := leastLoaded(candidates)
		if least != best && 2*least.load() < load {
			p.spill.Add(1)
			return least
		}
	}
	p.affine.Add(1)
	return best
}

// Stats reports how many picks stayed affine vs spilled to the
// least-loaded fallback.
func (p *prefixAffinity) Stats() (affine, spill uint64) {
	return p.affine.Load(), p.spill.Load()
}

// spillMinLoad is the backlog (queued + inflight) below which the
// affine replica is always kept: tiny queues drain faster than a cold
// cache rebuilds.
const spillMinLoad = 4

// leastLoaded returns the candidate with the smallest backlog, ties
// broken by fleet order (deterministic).
func leastLoaded(candidates []*Replica) *Replica {
	best := candidates[0]
	bestLoad := best.load()
	for _, r := range candidates[1:] {
		if l := r.load(); l < bestLoad {
			best, bestLoad = r, l
		}
	}
	return best
}

// leastLoadedRouter always picks the smallest backlog — the classic
// load balancer, blind to cache locality.
type leastLoadedRouter struct{}

func (leastLoadedRouter) Name() string { return "least-loaded" }
func (leastLoadedRouter) Pick(_ string, candidates []*Replica) *Replica {
	return leastLoaded(candidates)
}

// roundRobinRouter cycles through candidates regardless of key or load.
type roundRobinRouter struct {
	n atomic.Uint64
}

func (*roundRobinRouter) Name() string { return "round-robin" }
func (r *roundRobinRouter) Pick(_ string, candidates []*Replica) *Replica {
	return candidates[(r.n.Add(1)-1)%uint64(len(candidates))]
}

// randomRouter picks uniformly at random — the routing-policy control
// in the fleet bench (what prefix affinity must beat on cache hits).
// Seeded so bench runs are reproducible.
type randomRouter struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newRandomRouter(seed int64) *randomRouter {
	return &randomRouter{rng: rand.New(rand.NewSource(seed))}
}

func (*randomRouter) Name() string { return "random" }
func (r *randomRouter) Pick(_ string, candidates []*Replica) *Replica {
	r.mu.Lock()
	defer r.mu.Unlock()
	return candidates[r.rng.Intn(len(candidates))]
}
