package cluster

import (
	"sync"
	"sync/atomic"
	"time"
)

// breakerState is the classic three-state circuit: Closed passes
// traffic and counts consecutive failures; Open fails fast for a
// cooldown; HalfOpen admits a single probe whose outcome decides
// between closing again and re-opening.
type breakerState int32

const (
	BreakerClosed breakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is one replica's circuit breaker. Failures are replica
// faults only — injected faults, decode errors, and wedge-timeout
// signals (a hedge winning because this replica never answered). Shed,
// backpressure and client cancellation are protocol outcomes and count
// as neutral: they release a half-open probe without moving the state.
type breaker struct {
	mu       sync.Mutex
	state    breakerState
	failures int       // consecutive failures while closed
	probes   int       // outstanding half-open probes (capped at 1)
	openedAt time.Time // when the circuit last tripped

	threshold int           // consecutive failures that trip the circuit
	cooldown  time.Duration // open dwell before the first probe
	now       func() time.Time

	opens atomic.Uint64 // times the circuit tripped open
}

const (
	defaultBreakerThreshold = 3
	defaultBreakerCooldown  = time.Second
)

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	if threshold <= 0 {
		threshold = defaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = defaultBreakerCooldown
	}
	if now == nil {
		now = time.Now
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// ready is the router's non-consuming peek: can this replica take a
// request right now? Open circuits answer no until the cooldown
// elapses; half-open circuits answer no while a probe is out.
func (b *breaker) ready() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		return b.now().Sub(b.openedAt) >= b.cooldown
	default: // half-open
		return b.probes == 0
	}
}

// allow consumes a dispatch slot: it transitions a cooled-down open
// circuit to half-open and reserves the probe. Every true return must
// be balanced by exactly one onSuccess/onFailure/onNeutral.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probes = 1
		return true
	default: // half-open
		if b.probes > 0 {
			return false
		}
		b.probes = 1
		return true
	}
}

// onSuccess records a served request: it closes a half-open circuit
// and clears the failure streak.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	if b.state == BreakerHalfOpen {
		b.state = BreakerClosed
		b.probes = 0
	}
}

// onFailure records a replica fault: it extends the failure streak
// (tripping at the threshold) and re-opens a half-open circuit whose
// probe just failed.
func (b *breaker) onFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.trip()
		}
	case BreakerHalfOpen:
		b.trip()
	case BreakerOpen:
		// Late failure from before the trip: the circuit is already
		// doing its job. Don't refresh openedAt — recovery stays
		// deterministic at openedAt+cooldown.
	}
}

// onNeutral records a protocol outcome (shed, backpressure, client
// cancellation): it releases a half-open probe without judging the
// replica either way.
func (b *breaker) onNeutral() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen && b.probes > 0 {
		b.probes--
	}
}

// trip opens the circuit (caller holds b.mu).
func (b *breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.failures = 0
	b.probes = 0
	b.opens.Add(1)
}

// reset returns the breaker to a pristine closed state (used after a
// model swap installs a fresh engine).
func (b *breaker) reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.failures = 0
	b.probes = 0
}

// snapshot reports the current state and the open-trip count.
func (b *breaker) snapshot() (breakerState, uint64) {
	b.mu.Lock()
	st := b.state
	b.mu.Unlock()
	return st, b.opens.Load()
}
