package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/serve"
	"repro/internal/trace"
)

// This file is the resilient dispatch path between routing and the
// replica engines: hedged retries (race a second replica when the
// first is slow), failover (retry a sibling when a replica faults),
// and work stealing (idle replicas pull overflow from affinity
// hotspots). With hedging off and one replica it degenerates to a
// single engine call — the byte-identity guarantee rides on that.

// maxDispatchReplicas bounds how many distinct replicas one request
// may race concurrently across hedges and failovers;
// maxDispatchAttempts bounds total attempts including re-admissions of
// replicas whose earlier attempt concluded (a fault that migrates
// across the fleet can burn every distinct replica once without any
// replica being persistently bad — the re-admission budget is what
// lets such a request still land).
const (
	maxDispatchReplicas = 3
	maxDispatchAttempts = 2 * maxDispatchReplicas
)

// outcome is one attempt's result.
type outcome struct {
	resp *serve.Response
	err  error
	r    *Replica
	// span is the attempt's trace span (nil untraced); the dispatch
	// loop marks the winner on it. Attr writes stay safe after End.
	span *trace.Span
}

// Attempt roles, recorded on attempt spans so a flight-recorder entry
// names why each replica was tried.
const (
	rolePrimary  = "primary"
	roleHedge    = "hedge"
	roleFailover = "failover"
	roleSteal    = "steal"
)

// outcomeLabel classifies one attempt's result for its span.
func outcomeLabel(resp *serve.Response, err error) string {
	e := firstErr(resp, err)
	var shed *serve.ShedError
	switch {
	case e == nil:
		return "ok"
	case errors.As(e, &shed):
		return "shed"
	case errors.Is(e, serve.ErrQueueFull):
		return "queue_full"
	case errors.Is(e, context.Canceled), errors.Is(e, context.DeadlineExceeded):
		return "canceled"
	case errors.Is(e, serve.ErrClosed):
		return "closed"
	default:
		return "fault"
	}
}

// sendTraced wraps send in an attempt span: replica, role and outcome
// attrs, with the span threaded into the engine's context so queue and
// decode spans nest under the attempt that caused them. Each attempt
// goroutine owns its span end-to-end — a hedged loser ends its span
// after the trace finished, which the recorder renders correctly.
func (f *Fleet) sendTraced(ctx context.Context, req serve.Request, r *Replica, wait bool, role string) (*serve.Response, error, *trace.Span) {
	var sp *trace.Span
	if tr := trace.FromContext(ctx); tr != nil {
		sp = tr.Start(trace.SpanFromContext(ctx), trace.KindAttempt, r.name)
		sp.SetAttr("replica", r.name)
		sp.SetAttr("role", role)
		ctx = trace.ContextWithSpan(ctx, sp)
	}
	resp, err := f.send(ctx, req, r, wait)
	if sp != nil {
		sp.SetAttr("outcome", outcomeLabel(resp, err))
		if resp != nil && resp.Cached {
			sp.SetAttr("cached", "true")
		}
		sp.End()
	}
	return resp, err, sp
}

// send submits req to one replica's engine with its default-strategy
// substitution applied.
func (f *Fleet) send(ctx context.Context, req serve.Request, r *Replica, wait bool) (*serve.Response, error) {
	// The breaker's dispatch-side transition: a cooled-down open
	// circuit moves to half-open here and this request becomes its
	// probe. The return value is deliberately ignored — routing already
	// filtered on ready(), and when no sibling qualifies the fleet
	// serves through a tripped breaker rather than failing the client.
	r.breaker.allow()
	r.serving.Add(1)
	defer r.serving.Add(-1)
	eng := r.Engine()
	if wait {
		return eng.Generate(ctx, withDefaultStrategy(req, r))
	}
	return eng.TryGenerate(ctx, withDefaultStrategy(req, r))
}

// firstErr collapses the two error channels of an engine call: the
// submission error, else the decode error riding in the response.
func firstErr(resp *serve.Response, err error) error {
	if err != nil {
		return err
	}
	if resp != nil {
		return resp.Err
	}
	return nil
}

// neutralOutcome reports protocol outcomes that judge the traffic, not
// the replica: shed, backpressure, routing misses and cancellation
// (the client's or a hedge loser's).
func neutralOutcome(err error) bool {
	var shed *serve.ShedError
	if errors.As(err, &shed) {
		return true
	}
	return errors.Is(err, serve.ErrQueueFull) ||
		errors.Is(err, serve.ErrClosed) ||
		errors.Is(err, serve.ErrUnknownModel) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// recordBreaker folds one attempt's outcome into the replica's
// circuit: success closes, replica faults count toward tripping,
// protocol outcomes only release a half-open probe.
func (f *Fleet) recordBreaker(r *Replica, resp *serve.Response, err error) {
	switch e := firstErr(resp, err); {
	case e == nil:
		r.breaker.onSuccess()
	case neutralOutcome(e):
		r.breaker.onNeutral()
	default:
		r.breaker.onFailure()
	}
}

// retryable reports whether an attempt's outcome warrants trying a
// sibling: replica faults and draining races, but never success, shed
// (the protocol answer), backpressure, or a dead client.
func retryable(resp *serve.Response, err error, ctx context.Context) bool {
	e := firstErr(resp, err)
	if e == nil || ctx.Err() != nil {
		return false
	}
	var shed *serve.ShedError
	if errors.As(e, &shed) {
		return false
	}
	if errors.Is(e, serve.ErrQueueFull) || errors.Is(e, serve.ErrUnknownModel) {
		return false
	}
	return true
}

// pickAlternate chooses an untried, serveable sibling carrying the
// same model as the primary, by rendezvous order for the key — the
// consistent "second choice" every hedge and failover of this prompt
// family agrees on. Nil when no sibling qualifies or the dispatch
// budget is spent.
func (f *Fleet) pickAlternate(key string, primary *Replica, tried map[string]bool) *Replica {
	if len(tried) >= maxDispatchReplicas {
		return nil
	}
	cands, err := f.candidates(primary.ModelName())
	if err != nil {
		return nil
	}
	pool := make([]*Replica, 0, len(cands))
	for _, r := range cands {
		if !tried[r.name] && r.serveable() {
			pool = append(pool, r)
		}
	}
	if len(pool) == 0 {
		return nil
	}
	return f.router.Pick(key, pool)
}

// pickRetry re-admits previously tried replicas once their attempt has
// concluded: when the untried budget is spent but some attempt never
// concludes (a wedged replica holds its attempt until cancellation), a
// healed, breaker-readmitted sibling is the only way to answer a
// client that has no deadline of its own.
func (f *Fleet) pickRetry(key string, primary *Replica, outstanding map[string]bool) *Replica {
	cands, err := f.candidates(primary.ModelName())
	if err != nil {
		return nil
	}
	pool := make([]*Replica, 0, len(cands))
	for _, r := range cands {
		if !outstanding[r.name] && r.serveable() {
			pool = append(pool, r)
		}
	}
	if len(pool) == 0 {
		return nil
	}
	return f.router.Pick(key, pool)
}

// exhausted converts a spent retry budget into the documented shed
// protocol: the fleet currently cannot serve this request, retry after
// a breaker cooldown. Only multi-replica fleets speak it — a lone
// replica forwards its engine's own answer untouched (the pre-fleet
// contract). The cause rides in the reason so operators see what the
// retries died on.
func (f *Fleet) exhausted(primary *Replica, err error) error {
	if cands, cerr := f.candidates(primary.ModelName()); cerr != nil || len(cands) < 2 {
		return err
	}
	cooldown := f.cfg.BreakerCooldown
	if cooldown <= 0 {
		cooldown = defaultBreakerCooldown
	}
	return &serve.ShedError{
		Policy:     "fleet",
		Reason:     fmt.Sprintf("retry budget exhausted across replicas: %v", err),
		RetryAfter: cooldown,
	}
}

// dispatch runs one routed request with hedging and failover. It
// reports the winning response and the replica that produced it; role
// names the first attempt on its span (primary, or steal when a
// stealer serves work routed elsewhere). The primary's inflight
// counter is owned by the caller (route incremented it); alternates
// are accounted here.
func (f *Fleet) dispatch(ctx context.Context, req serve.Request, primary *Replica, wait bool, role string) (*serve.Response, *Replica, error) {
	key := affinityKey(req.Prompt)
	tried := map[string]bool{primary.name: true}

	if f.cfg.HedgeAfter <= 0 {
		// Sequential path: no goroutines, no timers. A lone replica
		// sees exactly one engine call — byte-identical to pre-fleet.
		resp, err, sp := f.sendTraced(ctx, req, primary, wait, role)
		f.recordBreaker(primary, resp, err)
		served := primary
		attempts := 1
		for retryable(resp, err, ctx) {
			if attempts >= maxDispatchAttempts {
				return resp, served, f.exhausted(primary, err)
			}
			alt := f.pickAlternate(key, primary, tried)
			if alt == nil {
				// Untried siblings are spent; re-admit concluded ones
				// the breakers have readmitted (nothing is outstanding
				// on this path — every attempt has concluded).
				alt = f.pickRetry(key, primary, map[string]bool{})
			}
			if alt == nil {
				return resp, served, f.exhausted(primary, err)
			}
			tried[alt.name] = true
			attempts++
			f.elastic.failovers.Add(1)
			alt.inflight.Add(1)
			resp, err, sp = f.sendTraced(ctx, req, alt, wait, roleFailover)
			alt.inflight.Add(-1)
			f.recordBreaker(alt, resp, err)
			served = alt
		}
		sp.SetAttr("won", "true")
		return resp, served, err
	}

	// Hedged path: race attempts under one cancellable context; the
	// first conclusive outcome wins and cancels the rest.
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan outcome, maxDispatchReplicas+1)
	launch := func(r *Replica, counted bool, role string) {
		go func() {
			if counted {
				r.inflight.Add(1)
				defer r.inflight.Add(-1)
			}
			resp, err, sp := f.sendTraced(actx, req, r, wait, role)
			f.recordBreaker(r, resp, err)
			ch <- outcome{resp, err, r, sp}
		}()
	}
	launch(primary, false, role)
	pending := 1
	attempts := 1
	primaryDone := false
	outstanding := map[string]bool{primary.name: true}
	hedgeLaunched := map[string]bool{}
	timer := time.NewTimer(f.cfg.HedgeAfter)
	defer timer.Stop()
	var last outcome
	for {
		select {
		case o := <-ch:
			pending--
			delete(outstanding, o.r.name)
			if o.r == primary {
				primaryDone = true
			}
			if !retryable(o.resp, o.err, ctx) {
				o.span.SetAttr("won", "true")
				if o.r != primary && hedgeLaunched[o.r.name] {
					f.elastic.hedgeWins.Add(1)
				}
				if o.r != primary && !primaryDone {
					// An alternate answered while the primary still
					// hasn't: the wedge-timeout signal. The primary's
					// own attempt will resolve as a neutral
					// cancellation once actx dies, so this is its only
					// failure record.
					primary.breaker.onFailure()
				}
				return o.resp, o.r, o.err
			}
			last = o
			if pending > 0 {
				continue // the other attempts may still win
			}
			// Every attempt in flight has faulted: fail over now
			// rather than waiting for the hedge timer — untried
			// siblings first, then breaker-readmitted retries of
			// concluded ones. A spent budget (or an empty pool) is the
			// protocol answer, not the raw fault.
			var alt *Replica
			if attempts < maxDispatchAttempts {
				if alt = f.pickAlternate(key, primary, tried); alt == nil {
					alt = f.pickRetry(key, primary, outstanding)
				}
			}
			if alt == nil {
				return last.resp, last.r, f.exhausted(primary, last.err)
			}
			tried[alt.name] = true
			outstanding[alt.name] = true
			attempts++
			f.elastic.failovers.Add(1)
			launch(alt, true, roleFailover)
			pending++
		case <-timer.C:
			// Each firing may race one more replica, bounded by the
			// outstanding-attempt and total-attempt budgets: untried
			// siblings first, then — once the untried budget is spent
			// on attempts that never conclude (a wedged replica holds
			// its attempt until actx dies) — previously tried siblings
			// that have concluded and been readmitted by their
			// breakers. The timer always rearms: a no-candidate moment
			// (every sibling's breaker open) can resolve one cooldown
			// later, and without the rearm a wedged primary would pin
			// this request forever.
			if len(outstanding) < maxDispatchReplicas && attempts < maxDispatchAttempts {
				alt := f.pickAlternate(key, primary, tried)
				if alt == nil {
					alt = f.pickRetry(key, primary, outstanding)
				}
				if alt != nil {
					tried[alt.name] = true
					outstanding[alt.name] = true
					hedgeLaunched[alt.name] = true
					attempts++
					f.elastic.hedges.Add(1)
					launch(alt, true, roleHedge)
					pending++
				}
			}
			timer.Reset(f.cfg.HedgeAfter)
		case <-ctx.Done():
			// Client gone: abandon the race (attempts unwind via actx
			// into the buffered channel).
			return nil, primary, ctx.Err()
		}
	}
}

// --- work stealing ---

// stealQueueCap bounds the fleet-wide overflow queue; a full queue
// falls back to direct dispatch on the routed replica.
const stealQueueCap = 64

// stealJob is one routed request parked on the fleet-wide queue for
// whichever replica frees up first (possibly the routed one itself).
type stealJob struct {
	ctx    context.Context
	req    serve.Request
	routed *Replica // the affinity choice, for steal accounting
	wait   bool
	// claimed guarantees exactly-once service between stealers and the
	// submitter's fallback paths.
	claimed atomic.Bool
	done    chan outcome
}

func (j *stealJob) claim() bool { return j.claimed.CompareAndSwap(false, true) }

// stealThreshold is the routed replica's backlog above which a request
// is offered to the steal queue instead of pinned to affinity.
func stealThreshold(r *Replica) int {
	w := r.Engine().Workers()
	if w < 1 {
		w = 1
	}
	return 2 * w
}

// stealCapacity is the load below which an idle replica pulls stolen
// work.
func stealCapacity(r *Replica) int {
	w := r.Engine().Workers()
	if w < 1 {
		w = 1
	}
	return w
}

// serveRouted runs a routed request: steal-queue diversion when the
// routed replica is backlogged and stealing is on, otherwise (and as
// the fallback) hedged dispatch.
func (f *Fleet) serveRouted(ctx context.Context, req serve.Request, r *Replica, wait bool) (*serve.Response, *Replica, error) {
	if f.stealq == nil || r.load() <= stealThreshold(r) {
		return f.dispatch(ctx, req, r, wait, rolePrimary)
	}
	job := &stealJob{ctx: ctx, req: req, routed: r, wait: wait, done: make(chan outcome, 1)}
	select {
	case f.stealq <- job:
	default:
		// Overflow queue full: the fleet is saturated everywhere,
		// queue on the routed replica as usual.
		return f.dispatch(ctx, req, r, wait, rolePrimary)
	}
	select {
	case o := <-job.done:
		return o.resp, o.r, o.err
	case <-ctx.Done():
		if job.claim() {
			return nil, r, ctx.Err()
		}
		o := <-job.done // a stealer won the claim; its answer is coming
		return o.resp, o.r, o.err
	case <-f.quit:
		if job.claim() {
			return f.dispatch(ctx, req, r, wait, rolePrimary)
		}
		o := <-job.done
		return o.resp, o.r, o.err
	}
}

// startStealer launches one replica's steal loop (caller must hold no
// locks that Close waits on).
func (f *Fleet) startStealer(r *Replica) {
	f.wg.Add(1)
	go f.stealer(r)
}

// stealer pulls overflow work whenever its replica has spare capacity.
// The poll tick bounds how stale the capacity check can be; the claim
// CAS keeps service exactly-once against the submitter's fallbacks.
func (f *Fleet) stealer(r *Replica) {
	defer f.wg.Done()
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-f.quit:
			return
		default:
		}
		// Capacity is engine-local (queued + actually submitted), not
		// the fleet-level inflight — jobs parked on the steal queue
		// count against their routed replica's inflight and would
		// otherwise starve its own stealer forever.
		busy := r.Engine().QueueDepth() + int(r.serving.Load())
		if !r.serveable() || busy >= stealCapacity(r) {
			select {
			case <-f.quit:
				return
			case <-tick.C:
			}
			continue
		}
		select {
		case <-f.quit:
			return
		case job := <-f.stealq:
			if !job.claim() {
				continue
			}
			role := rolePrimary
			if r != job.routed {
				role = roleSteal
			}
			r.inflight.Add(1)
			resp, served, err := f.dispatch(job.ctx, job.req, r, job.wait, role)
			r.inflight.Add(-1)
			if served != job.routed {
				f.elastic.steals.Add(1)
				served.stolen.Add(1)
			}
			job.done <- outcome{resp, err, served, nil}
		case <-tick.C:
		}
	}
}
