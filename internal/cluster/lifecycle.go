package cluster

import (
	"context"
	"fmt"
	"time"

	"repro/internal/model"
	"repro/internal/serve"
)

// This file is the replica lifecycle: graceful drain (stop admitting,
// finish what's queued), rolling model swap (drain → restart the
// engine on a new model → rejoin), and the add/remove primitives the
// autoscaler drives. Through all of it, clients see at most the
// documented shed/backpressure protocol: a draining replica is
// invisible to the router, in-flight work completes, and a request
// that races onto a closing engine gets ErrClosed — which dispatch
// treats as retryable and fails over to a sibling.

// drainPoll is the cadence at which Drain re-checks for quiescence.
const drainPoll = 2 * time.Millisecond

// Drain marks the replica draining — the router stops sending it new
// work — and blocks until its queue and in-flight requests have fully
// drained, the context dies, or the fleet shuts down. On failure the
// replica is left draining; callers own re-activation.
func (f *Fleet) Drain(ctx context.Context, r *Replica) error {
	if r.state.CompareAndSwap(stateActive, stateDraining) {
		f.elastic.drains.Add(1)
	}
	for {
		if r.inflight.Load() == 0 && r.Engine().QueueDepth() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-f.quit:
			return serve.ErrClosed
		case <-time.After(drainPoll):
		}
	}
}

// Activate returns a drained (or still-draining) replica to service.
func (f *Fleet) Activate(r *Replica) {
	r.state.Store(stateActive)
}

// SwapModel rolls the whole fleet onto a new model, one replica at a
// time: drain → close the old engine → start a fresh engine (same
// sizing, same admission hook) on the new model → rejoin the routing
// set. At every instant all but one replica are serving, so a
// multi-replica fleet upgrades with zero client-visible errors beyond
// the shed protocol. On error the current replica is reactivated
// as-is and the roll stops.
func (f *Fleet) SwapModel(ctx context.Context, m *model.Model) error {
	if m == nil {
		return fmt.Errorf("cluster: swap needs a model")
	}
	for _, r := range f.Replicas() {
		if err := f.swapReplica(ctx, r, m); err != nil {
			f.Activate(r)
			return fmt.Errorf("cluster: swap %s: %w", r.name, err)
		}
	}
	return nil
}

// swapReplica swaps one member's engine onto a new model.
func (f *Fleet) swapReplica(ctx context.Context, r *Replica, m *model.Model) error {
	if err := f.Drain(ctx, r); err != nil {
		return err
	}
	r.Engine().Close()
	engCfg := r.engCfg
	if len(f.policies) > 0 {
		engCfg.Admit = f.admitFunc(r)
	}
	eng := serve.NewEngine(m, engCfg)

	f.mu.Lock()
	f.dropFromModelIndexLocked(r)
	r.mu.Lock()
	r.modelName = m.Config().Name
	r.scheme = m.Scheme().String()
	r.mu.Unlock()
	r.eng.Store(eng)
	for _, key := range modelKeys(m.Config().Name) {
		f.byModel[key] = append(f.byModel[key], r)
	}
	f.mu.Unlock()

	// Fresh engine, fresh record: whatever tripped the old circuit
	// died with the old engine.
	r.breaker.reset()
	f.elastic.swaps.Add(1)
	f.Activate(r)
	return nil
}

// dropFromModelIndexLocked removes r from every byModel bucket (caller
// holds f.mu).
func (f *Fleet) dropFromModelIndexLocked(r *Replica) {
	for key, reps := range f.byModel {
		keep := reps[:0]
		for _, o := range reps {
			if o != r {
				keep = append(keep, o)
			}
		}
		if len(keep) == 0 {
			delete(f.byModel, key)
		} else {
			f.byModel[key] = keep
		}
	}
}

// addReplica clones the fleet template into a new autoscaled member
// and puts it in service. Rendezvous routing remaps only the keys that
// hash to the newcomer, so existing affinity (and its warm caches)
// survives a scale-up.
func (f *Fleet) addReplica() (*Replica, error) {
	spec := f.template
	f.mu.Lock()
	id := f.nextID
	f.nextID++
	f.mu.Unlock()
	name := fmt.Sprintf("auto%d:%s/%s", id, spec.Model.Config().Name, spec.Model.Scheme().String())
	r, err := f.buildReplica(spec, name, true)
	if err != nil {
		return nil, err
	}
	if f.stealq != nil {
		f.startStealer(r)
	}
	f.elastic.scaleUps.Add(1)
	return r, nil
}

// removeReplica unregisters r from routing (caller has already drained
// it).
func (f *Fleet) removeReplica(r *Replica) {
	f.mu.Lock()
	defer f.mu.Unlock()
	keep := f.replicas[:0]
	for _, o := range f.replicas {
		if o != r {
			keep = append(keep, o)
		}
	}
	f.replicas = keep
	f.dropFromModelIndexLocked(r)
}

// scaleDownVictim picks the most recently added autoscaled, active
// replica — only what the autoscaler added is ever removed, so the
// configured fleet floor is structural, not just a number.
func (f *Fleet) scaleDownVictim() *Replica {
	f.mu.RLock()
	defer f.mu.RUnlock()
	for i := len(f.replicas) - 1; i >= 0; i-- {
		if r := f.replicas[i]; r.scaled && r.state.Load() == stateActive {
			return r
		}
	}
	return nil
}

// retireReplica drains the victim in the background, then removes and
// closes it. If the fleet shuts down mid-drain the victim is left in
// place for Close to drain normally. The draining transition happens
// synchronously so the caller's next victim scan cannot re-pick it.
func (f *Fleet) retireReplica(r *Replica) {
	if !r.state.CompareAndSwap(stateActive, stateDraining) {
		return // already draining or being retired
	}
	f.elastic.drains.Add(1)
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		if err := f.Drain(context.Background(), r); err != nil {
			return // fleet closing; Close owns the engine now
		}
		f.removeReplica(r)
		r.Engine().Close()
		f.elastic.scaleDowns.Add(1)
	}()
}
