package cluster

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/promtest"
	"repro/internal/serve"
	"repro/internal/trace"
)

// TestFleetPrometheusExpositionWellFormed sweeps the fleet server's
// text exposition — per-replica families, shed counters, breaker and
// elasticity gauges, plus the tracer's phase family — through the
// promtest linter. The fleet body is the richest exposition the daemon
// can emit (replica names land in label values), so this is where a
// label-escaping regression would surface first.
func TestFleetPrometheusExpositionWellFormed(t *testing.T) {
	_, prompts := fixture(t)
	policies, err := ParsePolicies("priority", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := newFleet(t, 2, nil, policies, serve.Config{Workers: 1, CacheSize: 8})
	ts := httptest.NewServer(serve.NewBackendServer(f).WithTracer(trace.New(trace.Config{})).Handler())
	defer ts.Close()

	for seed := int64(0); seed < 3; seed++ {
		if _, err := f.Generate(context.Background(), serve.Request{Prompt: prompts[int(seed)%3], Options: testOptions(seed)}); err != nil {
			t.Fatal(err)
		}
	}
	// One traced HTTP request so the phase family materializes too.
	if _, resp := postGen(t, ts.URL, "promsweep", prompts[0], 9); resp.StatusCode != http.StatusOK {
		t.Fatalf("traced request status = %d", resp.StatusCode)
	}

	client := http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	text := buf.String()

	for _, lintErr := range promtest.Lint(text) {
		t.Error(lintErr)
	}
	fams := promtest.Families(text)
	for _, want := range []string{"vgend_fleet_replicas", "vgend_phase_seconds_total"} {
		found := false
		for _, fam := range fams {
			if fam == want {
				found = true
			}
		}
		if !found {
			t.Errorf("family %s missing from the fleet exposition (got %v)", want, fams)
		}
	}
}
