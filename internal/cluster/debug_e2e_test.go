package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/trace"
)

// This file is the end-to-end proof of the debug surface's core
// promise: a hedged request whose primary replica wedged must be fully
// debuggable from GET /debug/requests?id=<X-Request-ID> alone — the
// losing primary attempt, the winning hedge attempt, and the queue and
// decode phases of the request, all in one recorded span tree.

// postGen submits one generation over HTTP, echoing back the decoded
// body and the raw response (body already closed; headers/status only).
func postGen(t *testing.T, url, id, prompt string, seed int64) (map[string]any, *http.Response) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{
		"prompt": prompt, "mode": "ours", "temperature": 0.6,
		"max_new_tokens": 48, "seed": seed,
	})
	req, err := http.NewRequest(http.MethodPost, url+"/v1/generate", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if id != "" {
		req.Header.Set("X-Request-ID", id)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return out, resp
}

// fetchTrace pulls one recorded trace from the flight recorder.
func fetchTrace(t *testing.T, url, id string) (trace.Snapshot, string, int) {
	t.Helper()
	resp, err := http.Get(url + "/debug/requests?id=" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Trace trace.Snapshot `json:"trace"`
		Tree  string         `json:"tree"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&body)
	return body.Trace, body.Tree, resp.StatusCode
}

// attr returns a span attribute's value ("" when absent).
func attr(sp trace.SpanSnapshot, key string) string {
	for _, a := range sp.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// descendsFrom walks the parent chain of spans[i] looking for anc.
func descendsFrom(spans []trace.SpanSnapshot, i, anc int) bool {
	for i >= 0 && i < len(spans) {
		if i == anc {
			return true
		}
		i = spans[i].Parent
	}
	return false
}

func TestDebugSurfaceHedgedWedgedPrimary(t *testing.T) {
	_, prompts := fixture(t)
	f, faults := newFaultyFleet(t, 2,
		Config{HedgeAfter: 15 * time.Millisecond},
		serve.Config{Workers: 1, CacheSize: -1})
	tracer := trace.New(trace.Config{})
	ts := httptest.NewServer(serve.NewBackendServer(f).WithTracer(tracer).Handler())
	defer ts.Close()

	// Warmup probe: learn where affinity routes this prompt, then wedge
	// exactly that replica so the next request's primary attempt hangs.
	warm, wresp := postGen(t, ts.URL, "warmup", prompts[1], 0)
	if wresp.StatusCode != http.StatusOK {
		t.Fatalf("warmup status = %d", wresp.StatusCode)
	}
	routed, _ := warm["replica"].(string)
	if routed == "" {
		t.Fatal("warmup response named no replica")
	}
	_, fault := replicaByName(t, f, faults, routed)
	fault.set(faultWedge)

	const id = "e2e-wedged-primary"
	out, resp := postGen(t, ts.URL, id, prompts[1], 1)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged request status = %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != id {
		t.Fatalf("X-Request-ID echoed %q, want %q", got, id)
	}
	if served, _ := out["replica"].(string); served == routed || served == "" {
		t.Fatalf("served by %q, want a hedge sibling of wedged %q", served, routed)
	}

	// The losing primary's span closes only when the request context
	// dies and its wedged decode unwinds; the recorder snapshots live
	// traces, so poll until the full story is visible.
	var snap trace.Snapshot
	var tree string
	var primary, winner *trace.SpanSnapshot
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap, tree, _ = fetchTrace(t, ts.URL, id)
		primary, winner = nil, nil
		for i := range snap.Spans {
			sp := snap.Spans[i]
			if sp.Kind != trace.KindAttempt {
				continue
			}
			if attr(sp, "role") == "primary" && sp.EndMS >= 0 {
				primary = &snap.Spans[i]
			}
			if attr(sp, "won") == "true" {
				winner = &snap.Spans[i]
			}
		}
		if (primary != nil && winner != nil) || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	if snap.ID != id {
		t.Fatalf("recorded trace id = %q, want %q", snap.ID, id)
	}
	if snap.Status != "200" {
		t.Errorf("trace status = %q, want %q\n%s", snap.Status, "200", tree)
	}
	if len(snap.Spans) == 0 || snap.Spans[0].Kind != trace.KindRequest {
		t.Fatalf("root span kind = %v, want request\n%s", snap.Spans, tree)
	}
	if got := attr(snap.Spans[0], "status"); got != "200" {
		t.Errorf("root status attr = %q, want 200\n%s", got, tree)
	}
	var router *trace.SpanSnapshot
	for i := range snap.Spans {
		if snap.Spans[i].Kind == trace.KindRouter {
			router = &snap.Spans[i]
		}
	}
	if router == nil {
		t.Fatalf("no router span recorded\n%s", tree)
	}
	if got := attr(*router, "replica"); got != routed {
		t.Errorf("router chose %q, warmup said %q\n%s", got, routed, tree)
	}

	// The losing primary attempt: on the wedged replica, closed, and
	// not OK — its decode died with the request context.
	if primary == nil {
		t.Fatalf("no closed primary attempt span\n%s", tree)
	}
	if got := attr(*primary, "replica"); got != routed {
		t.Errorf("primary attempt on %q, want wedged %q\n%s", got, routed, tree)
	}
	if got := attr(*primary, "outcome"); got == "" || got == "ok" {
		t.Errorf("primary outcome = %q, want a non-ok verdict\n%s", got, tree)
	}
	if attr(*primary, "won") == "true" {
		t.Errorf("wedged primary marked as winner\n%s", tree)
	}

	// The winning hedge attempt: a sibling replica, outcome ok.
	if winner == nil {
		t.Fatalf("no attempt span marked won=true\n%s", tree)
	}
	if got := attr(*winner, "role"); got != "hedge" {
		t.Errorf("winner role = %q, want hedge\n%s", got, tree)
	}
	if got := attr(*winner, "outcome"); got != "ok" {
		t.Errorf("winner outcome = %q, want ok\n%s", got, tree)
	}
	if got := attr(*winner, "replica"); got == routed {
		t.Errorf("winner on the wedged replica %q\n%s", got, tree)
	}

	// Queue and decode phases nested under the winning attempt: the
	// request's time split, readable from the debug endpoint alone.
	var queue, decode *trace.SpanSnapshot
	for i := range snap.Spans {
		sp := snap.Spans[i]
		if !descendsFrom(snap.Spans, i, winner.Index) {
			continue
		}
		switch sp.Kind {
		case trace.KindQueue:
			queue = &snap.Spans[i]
		case trace.KindDecode:
			decode = &snap.Spans[i]
		}
	}
	if queue == nil {
		t.Fatalf("no queue span under the winning attempt\n%s", tree)
	}
	if attr(*queue, "wait_us") == "" {
		t.Errorf("queue span carries no wait_us attr\n%s", tree)
	}
	if decode == nil {
		t.Fatalf("no decode span under the winning attempt\n%s", tree)
	}
	if attr(*decode, "tokens") == "" || attr(*decode, "sweeps") == "" {
		t.Errorf("decode span missing tokens/sweeps attrs\n%s", tree)
	}
	if decode.DurMS < 0 {
		t.Errorf("decode span still open\n%s", tree)
	}

	// The raw-trace endpoint serves the same snapshot.
	rresp, err := http.Get(ts.URL + "/debug/trace?id=" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Errorf("/debug/trace status = %d", rresp.StatusCode)
	}
	var raw trace.Snapshot
	if err := json.NewDecoder(rresp.Body).Decode(&raw); err != nil {
		t.Fatalf("/debug/trace body: %v", err)
	}
	if raw.ID != id || len(raw.Spans) != len(snap.Spans) {
		t.Errorf("/debug/trace snapshot diverges: id=%q spans=%d, want id=%q spans=%d",
			raw.ID, len(raw.Spans), id, len(snap.Spans))
	}
}
