// Package cluster is the serving fleet above internal/serve: N
// replicas — each its own serve.Engine wrapping its own model instance
// (possibly different backbones, training schemes or default decoding
// strategies) — behind one front door.
//
// Three concerns live here and nowhere else:
//
//   - Routing: which replica serves a request. The default policy is
//     prefix-affinity consistent hashing (rendezvous form) with a
//     least-loaded fallback, so shared-prefix workloads concentrate on
//     one replica where its result LRU, prefix GenCache and
//     single-flight table can actually hit; round-robin, random and
//     pure least-loaded routers exist for comparison and as the
//     fleet-bench control group.
//   - Admission: whether a routed request may enter its replica's
//     queue. Pluggable ShedPolicy chains (deadline, priority classes,
//     per-client token budgets) run inside the engine's Admit hook —
//     after the single-flight registration — so a shed leader
//     publishes its drop and followers retry on their own behalf. A
//     shed request always gets an explicit error carrying a
//     Retry-After hint; nothing is dropped silently.
//   - Aggregation: fleet-level metrics — per-replica engine snapshots
//     plus fleet-wide sums, shed/routing counters and a decode-time
//     EWMA — in JSON and Prometheus forms.
//
// A Fleet implements serve.Backend, so cmd/vgend serves it over the
// same HTTP handlers as a single engine. With one replica and no
// policies the fleet adds nothing to the decode path: outputs are
// byte-identical to the bare engine's (pinned by TestSingleReplicaByteIdentical).
package cluster

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/serve"
)

// ReplicaSpec describes one fleet member before construction.
type ReplicaSpec struct {
	// Name identifies the replica in routing, metrics and responses
	// (defaults to "r<i>:<model>/<scheme>").
	Name string
	// Model is the trained backbone this replica decodes with.
	// Replicas may share one *model.Model (it is read-only after
	// training); each still gets its own engine and caches.
	Model *model.Model
	// Engine sizes the replica's serve.Engine. The Admit hook is owned
	// by the fleet and must be nil here.
	Engine serve.Config
	// DefaultStrategy, when set, replaces the fleet-wide default for
	// requests that named neither a mode nor a strategy (see
	// serve.Request.NoExplicitStrategy). Explicit choices always win.
	DefaultStrategy string
}

// Config assembles a Fleet.
type Config struct {
	// Router picks replicas (default: prefix-affinity).
	Router Router
	// Policies is the admission chain, applied in order; empty admits
	// everything (the engines' queue-full backstop still rejects).
	Policies []ShedPolicy
}

// Replica is one running fleet member.
type Replica struct {
	name            string
	modelName       string
	scheme          string
	defaultStrategy string
	eng             *serve.Engine

	routed   atomic.Uint64 // requests routed here
	inflight atomic.Int64  // routed and not yet answered
}

// Name returns the replica's identity.
func (r *Replica) Name() string { return r.name }

// Engine exposes the replica's engine (tests and the fleet bench read
// its metrics directly).
func (r *Replica) Engine() *serve.Engine { return r.eng }

// load is the replica's current backlog: queued plus routed-but-
// unanswered requests. Routers order replicas by it.
func (r *Replica) load() int {
	return r.eng.QueueDepth() + int(r.inflight.Load())
}

// Fleet owns the replicas and fronts them with routing and admission.
type Fleet struct {
	replicas []*Replica
	byModel  map[string][]*Replica
	router   Router
	policies []ShedPolicy

	st fleetStats
}

// fleetStats accumulates fleet-level counters under one mutex.
type fleetStats struct {
	mu             sync.Mutex
	requests       uint64
	shedByPolicy   map[string]uint64
	shedByPriority map[string]uint64
	unknownModel   uint64
	// meanDecodeMS is an EWMA of completed decode wall times; admission
	// deadline math runs on it.
	meanDecodeMS float64
}

// New builds and starts a fleet. Each spec's engine is created here so
// the fleet can install its admission hook; specs must not set one.
func New(specs []ReplicaSpec, cfg Config) (*Fleet, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("cluster: fleet needs at least one replica")
	}
	if cfg.Router == nil {
		cfg.Router = newPrefixAffinity()
	}
	f := &Fleet{
		byModel:  map[string][]*Replica{},
		router:   cfg.Router,
		policies: cfg.Policies,
	}
	f.st.shedByPolicy = map[string]uint64{}
	f.st.shedByPriority = map[string]uint64{}
	for i, spec := range specs {
		if spec.Model == nil {
			return nil, fmt.Errorf("cluster: replica %d has no model", i)
		}
		if spec.Engine.Admit != nil {
			return nil, fmt.Errorf("cluster: replica %d sets Engine.Admit (owned by the fleet)", i)
		}
		if spec.DefaultStrategy != "" {
			if _, err := core.ResolveStrategy(spec.DefaultStrategy, false); err != nil {
				return nil, fmt.Errorf("cluster: replica %d: %w", i, err)
			}
		}
		r := &Replica{
			modelName:       spec.Model.Config().Name,
			scheme:          spec.Model.Scheme().String(),
			defaultStrategy: spec.DefaultStrategy,
		}
		r.name = spec.Name
		if r.name == "" {
			r.name = fmt.Sprintf("r%d:%s/%s", i, r.modelName, r.scheme)
		}
		engCfg := spec.Engine
		if len(f.policies) > 0 {
			engCfg.Admit = f.admitFunc(r)
		}
		r.eng = serve.NewEngine(spec.Model, engCfg)
		f.replicas = append(f.replicas, r)
		for _, key := range modelKeys(r.modelName) {
			f.byModel[key] = append(f.byModel[key], r)
		}
	}
	return f, nil
}

// modelKeys lists the spellings a replica's model answers to: the
// config name, case-folded, plus the daemon-flag alias without the
// "-sim" suffix ("CodeT5p-sim" serves both "codet5p-sim" and
// "codet5p").
func modelKeys(name string) []string {
	lower := strings.ToLower(name)
	keys := []string{lower}
	if trimmed := strings.TrimSuffix(lower, "-sim"); trimmed != lower {
		keys = append(keys, trimmed)
	}
	return keys
}

// Replicas exposes the fleet members in construction order.
func (f *Fleet) Replicas() []*Replica { return f.replicas }

// Router reports the active routing policy's name.
func (f *Fleet) Router() string { return f.router.Name() }

// Close drains and stops every replica engine.
func (f *Fleet) Close() {
	for _, r := range f.replicas {
		r.eng.Close()
	}
}

// admitFunc binds the policy chain to one replica: the engine calls it
// for every submission that would consume a queue slot.
func (f *Fleet) admitFunc(r *Replica) func(ctx context.Context, req serve.Request) error {
	return func(ctx context.Context, req serve.Request) error {
		load := f.loadAt(r)
		for _, p := range f.policies {
			if err := p.Admit(ctx, req, load); err != nil {
				f.st.mu.Lock()
				f.st.shedByPolicy[p.Name()]++
				f.st.shedByPriority[req.Priority.String()]++
				f.st.mu.Unlock()
				return err
			}
		}
		return nil
	}
}

// loadAt snapshots the admission Load for one replica.
func (f *Fleet) loadAt(r *Replica) Load {
	l := Load{
		QueueDepth: r.eng.QueueDepth(),
		QueueCap:   r.eng.QueueCap(),
		Workers:    r.eng.Workers(),
		Inflight:   int(r.inflight.Load()),
	}
	for _, o := range f.replicas {
		l.FleetQueueDepth += o.eng.QueueDepth()
		l.FleetInflight += int(o.inflight.Load())
	}
	f.st.mu.Lock()
	l.MeanDecodeMS = f.st.meanDecodeMS
	f.st.mu.Unlock()
	return l
}

// candidates returns the replicas serving the request's model (all of
// them for an empty model), or an ErrUnknownModel-wrapped error.
func (f *Fleet) candidates(modelName string) ([]*Replica, error) {
	if modelName == "" {
		return f.replicas, nil
	}
	if reps := f.byModel[strings.ToLower(modelName)]; len(reps) > 0 {
		return reps, nil
	}
	f.st.mu.Lock()
	f.st.unknownModel++
	f.st.mu.Unlock()
	return nil, fmt.Errorf("%w: %q", serve.ErrUnknownModel, modelName)
}

// route picks the serving replica and applies its default-strategy
// substitution to the request. The replica's inflight counter is
// incremented HERE, not at submission, so load-aware routers see each
// routed-but-not-yet-submitted request — in particular, items earlier
// in a batch raise the load later items are routed by. Every caller
// must decrement after the engine answers.
func (f *Fleet) route(req serve.Request) (*Replica, serve.Request, error) {
	f.st.mu.Lock()
	f.st.requests++
	f.st.mu.Unlock()
	cands, err := f.candidates(req.Model)
	if err != nil {
		return nil, req, err
	}
	r := f.router.Pick(affinityKey(req.Prompt), cands)
	if r.defaultStrategy != "" && req.NoExplicitStrategy {
		req.Options.Strategy = r.defaultStrategy
		req.Options.Mode = 0
	}
	r.routed.Add(1)
	r.inflight.Add(1)
	return r, req, nil
}

// observe folds one outcome into the fleet's decode-time EWMA.
func (f *Fleet) observe(resp *serve.Response) {
	if resp == nil || resp.Err != nil || resp.Cached || resp.Deduped || resp.Wall <= 0 {
		return
	}
	wallMS := float64(resp.Wall) / float64(time.Millisecond)
	f.st.mu.Lock()
	if f.st.meanDecodeMS == 0 {
		f.st.meanDecodeMS = wallMS
	} else {
		f.st.meanDecodeMS = 0.8*f.st.meanDecodeMS + 0.2*wallMS
	}
	f.st.mu.Unlock()
}

// tag returns a per-caller copy of resp carrying the serving replica's
// name. A copy, not a mutation: the engine may still share the
// original with single-flight followers.
func tag(resp *serve.Response, r *Replica) *serve.Response {
	if resp == nil {
		return nil
	}
	tagged := *resp
	tagged.Replica = r.name
	return &tagged
}

// Generate routes one request and blocks for a queue slot if the
// replica is saturated (admission policies still apply).
func (f *Fleet) Generate(ctx context.Context, req serve.Request) (*serve.Response, error) {
	return f.generate(ctx, req, true)
}

// TryGenerate implements serve.Backend: Generate with fail-fast
// backpressure.
func (f *Fleet) TryGenerate(ctx context.Context, req serve.Request) (*serve.Response, error) {
	return f.generate(ctx, req, false)
}

func (f *Fleet) generate(ctx context.Context, req serve.Request, wait bool) (*serve.Response, error) {
	r, req, err := f.route(req)
	if err != nil {
		return nil, err
	}
	defer r.inflight.Add(-1)
	var resp *serve.Response
	if wait {
		resp, err = r.eng.Generate(ctx, req)
	} else {
		resp, err = r.eng.TryGenerate(ctx, req)
	}
	f.observe(resp)
	return tag(resp, r), err
}

// GenerateBatch routes every item, dispatches the per-replica groups
// concurrently (each through the engine's own batch path, so items
// within a group are in flight together), and reassembles responses
// index-for-index.
func (f *Fleet) GenerateBatch(ctx context.Context, reqs []serve.Request) []*serve.Response {
	return f.generateBatch(ctx, reqs, true)
}

// TryGenerateBatch implements serve.Backend: GenerateBatch with
// fail-fast backpressure per item.
func (f *Fleet) TryGenerateBatch(ctx context.Context, reqs []serve.Request) []*serve.Response {
	return f.generateBatch(ctx, reqs, false)
}

func (f *Fleet) generateBatch(ctx context.Context, reqs []serve.Request, wait bool) []*serve.Response {
	out := make([]*serve.Response, len(reqs))
	groups := map[*Replica][]int{}
	routed := make([]serve.Request, len(reqs))
	for i, req := range reqs {
		r, rr, err := f.route(req)
		if err != nil {
			out[i] = &serve.Response{Err: err}
			continue
		}
		routed[i] = rr
		groups[r] = append(groups[r], i)
	}
	var wg sync.WaitGroup
	for r, idxs := range groups {
		wg.Add(1)
		go func(r *Replica, idxs []int) {
			defer wg.Done()
			// route already counted these items into inflight.
			defer r.inflight.Add(int64(-len(idxs)))
			sub := make([]serve.Request, len(idxs))
			for j, i := range idxs {
				sub[j] = routed[i]
			}
			var resps []*serve.Response
			if wait {
				resps = r.eng.GenerateBatch(ctx, sub)
			} else {
				resps = r.eng.TryGenerateBatch(ctx, sub)
			}
			for j, i := range idxs {
				f.observe(resps[j])
				out[i] = tag(resps[j], r)
			}
		}(r, idxs)
	}
	wg.Wait()
	return out
}
