// Package cluster is the serving fleet above internal/serve: N
// replicas — each its own serve.Engine wrapping its own model instance
// (possibly different backbones, training schemes or default decoding
// strategies) — behind one front door.
//
// Four concerns live here and nowhere else:
//
//   - Routing: which replica serves a request. The default policy is
//     prefix-affinity consistent hashing (rendezvous form) with a
//     least-loaded fallback, so shared-prefix workloads concentrate on
//     one replica where its result LRU, prefix GenCache and
//     single-flight table can actually hit; round-robin, random and
//     pure least-loaded routers exist for comparison and as the
//     fleet-bench control group.
//   - Admission: whether a routed request may enter its replica's
//     queue. Pluggable ShedPolicy chains (deadline, priority classes,
//     per-client token budgets) run inside the engine's Admit hook —
//     after the single-flight registration — so a shed leader
//     publishes its drop and followers retry on their own behalf. A
//     shed request always gets an explicit error carrying a
//     Retry-After hint; nothing is dropped silently.
//   - Resilience and elasticity: per-replica circuit breakers route
//     traffic away from faulting members (dispatch.go), hedged retries
//     cover the latency tail of a wedged replica, work stealing
//     rebalances affinity hotspots, replicas drain gracefully and swap
//     models without a restart (lifecycle.go), and an autoscaler grows
//     and shrinks the fleet on queue-wait and shed pressure
//     (autoscale.go).
//   - Aggregation: fleet-level metrics — per-replica engine snapshots
//     plus fleet-wide sums, shed/routing/breaker/scale counters and a
//     decode-time EWMA — in JSON and Prometheus forms.
//
// A Fleet implements serve.Backend, so cmd/vgend serves it over the
// same HTTP handlers as a single engine. With one replica, no policies
// and hedging off, the fleet adds nothing to the decode path: outputs
// are byte-identical to the bare engine's (pinned by
// TestSingleReplicaByteIdentical).
package cluster

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/trace"
)

// ReplicaSpec describes one fleet member before construction.
type ReplicaSpec struct {
	// Name identifies the replica in routing, metrics and responses
	// (defaults to "r<i>:<model>/<scheme>").
	Name string
	// Model is the trained backbone this replica decodes with.
	// Replicas may share one *model.Model (it is read-only after
	// training); each still gets its own engine and caches.
	Model *model.Model
	// Engine sizes the replica's serve.Engine. The Admit hook is owned
	// by the fleet and must be nil here.
	Engine serve.Config
	// DefaultStrategy, when set, replaces the fleet-wide default for
	// requests that named neither a mode nor a strategy (see
	// serve.Request.NoExplicitStrategy). Explicit choices always win.
	DefaultStrategy string
}

// Config assembles a Fleet.
type Config struct {
	// Router picks replicas (default: prefix-affinity).
	Router Router
	// Policies is the admission chain, applied in order; empty admits
	// everything (the engines' queue-full backstop still rejects).
	Policies []ShedPolicy
	// HedgeAfter, when positive, races a second replica for any request
	// the first hasn't answered within this duration — latency-tail
	// cover for a slow or wedged member. A hedge winning by timeout is
	// the wedge signal that feeds the loser's circuit breaker. Zero
	// disables hedging (and keeps the single-replica path byte-
	// identical to the bare engine).
	HedgeAfter time.Duration
	// BreakerThreshold is the consecutive-failure count that trips a
	// replica's circuit open (default 3); BreakerCooldown is the open
	// dwell before a half-open probe (default 1s). Breakers are always
	// on — with no faults they never trip.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Steal enables work stealing: a routed request whose replica is
	// backlogged is offered to a fleet-wide queue that any idle replica
	// may serve, so prefix-affinity hotspots shed overflow to idle
	// siblings instead of queueing behind the hot set.
	Steal bool
	// Autoscale grows and shrinks the fleet at runtime (autoscale.go).
	Autoscale AutoscaleConfig
}

// Replica lifecycle states (Replica.state).
const (
	stateActive int32 = iota
	stateDraining
)

// Replica is one running fleet member.
type Replica struct {
	name            string
	defaultStrategy string
	engCfg          serve.Config // rebuild recipe for model swaps

	// mu guards the swap-mutable identity fields.
	mu        sync.Mutex
	modelName string
	scheme    string

	eng     atomic.Pointer[serve.Engine]
	state   atomic.Int32 // stateActive / stateDraining
	breaker *breaker
	scaled  bool // added by the autoscaler (only these scale back down)

	routed   atomic.Uint64 // requests routed here
	inflight atomic.Int64  // routed and not yet answered
	serving  atomic.Int64  // submitted to this replica's engine right now
	stolen   atomic.Uint64 // requests served here that were routed elsewhere
}

// Name returns the replica's identity.
func (r *Replica) Name() string { return r.name }

// Engine exposes the replica's engine (tests and the fleet bench read
// its metrics directly).
func (r *Replica) Engine() *serve.Engine { return r.eng.Load() }

// ModelName reports the replica's current model (swap-safe).
func (r *Replica) ModelName() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.modelName
}

func (r *Replica) schemeName() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.scheme
}

// Draining reports whether the replica has stopped admitting new work.
func (r *Replica) Draining() bool { return r.state.Load() == stateDraining }

// load is the replica's current backlog: queued plus routed-but-
// unanswered requests. Routers order replicas by it.
func (r *Replica) load() int {
	return r.Engine().QueueDepth() + int(r.inflight.Load())
}

// serveable reports whether the router may send new work here: active
// and with a circuit that would admit a request.
func (r *Replica) serveable() bool {
	return r.state.Load() == stateActive && r.breaker.ready()
}

// Fleet owns the replicas and fronts them with routing, admission and
// the resilience machinery.
type Fleet struct {
	// mu guards the member set (replicas, byModel, nextID) against
	// scaling and swaps; the hot path takes it only to snapshot.
	mu       sync.RWMutex
	replicas []*Replica
	byModel  map[string][]*Replica
	nextID   int

	router   Router
	policies []ShedPolicy
	cfg      Config
	template ReplicaSpec // clone source for autoscaled replicas

	stealq chan *stealJob
	quit   chan struct{}
	wg     sync.WaitGroup
	auto   *autoscaler

	st      fleetStats
	elastic elasticStats
}

// fleetStats accumulates fleet-level counters under one mutex.
type fleetStats struct {
	mu             sync.Mutex
	requests       uint64
	shedByPolicy   map[string]uint64
	shedByPriority map[string]uint64
	unknownModel   uint64
	// meanDecodeMS is an EWMA of completed decode wall times; admission
	// deadline math runs on it.
	meanDecodeMS float64
}

// elasticStats counts the resilience machinery's actions (lock-free:
// every field is written from hot paths).
type elasticStats struct {
	hedges     atomic.Uint64 // hedge attempts launched
	hedgeWins  atomic.Uint64 // hedges that answered before the primary
	failovers  atomic.Uint64 // retries on a sibling after a replica fault
	steals     atomic.Uint64 // requests served by a non-routed replica
	drains     atomic.Uint64 // drains started
	swaps      atomic.Uint64 // completed model swaps
	scaleUps   atomic.Uint64 // autoscaler replica additions
	scaleDowns atomic.Uint64 // autoscaler replica removals
}

func (f *Fleet) shedTotal() uint64 {
	f.st.mu.Lock()
	defer f.st.mu.Unlock()
	var n uint64
	for _, v := range f.st.shedByPolicy {
		n += v
	}
	return n
}

// New builds and starts a fleet. Each spec's engine is created here so
// the fleet can install its admission hook; specs must not set one.
func New(specs []ReplicaSpec, cfg Config) (*Fleet, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("cluster: fleet needs at least one replica")
	}
	if cfg.Router == nil {
		cfg.Router = newPrefixAffinity()
	}
	f := &Fleet{
		byModel:  map[string][]*Replica{},
		router:   cfg.Router,
		policies: cfg.Policies,
		cfg:      cfg,
		template: specs[0],
		quit:     make(chan struct{}),
	}
	f.st.shedByPolicy = map[string]uint64{}
	f.st.shedByPriority = map[string]uint64{}
	for i, spec := range specs {
		if spec.Model == nil {
			return nil, fmt.Errorf("cluster: replica %d has no model", i)
		}
		name := spec.Name
		if name == "" {
			name = fmt.Sprintf("r%d:%s/%s", i, spec.Model.Config().Name, spec.Model.Scheme().String())
		}
		if _, err := f.buildReplica(spec, name, false); err != nil {
			return nil, fmt.Errorf("cluster: replica %d: %w", i, err)
		}
	}
	f.nextID = len(specs)
	if cfg.Steal {
		f.stealq = make(chan *stealJob, stealQueueCap)
		f.mu.RLock()
		for _, r := range f.replicas {
			f.startStealer(r)
		}
		f.mu.RUnlock()
	}
	if cfg.Autoscale.Enabled {
		a, err := newAutoscaler(f, cfg.Autoscale)
		if err != nil {
			f.Close()
			return nil, err
		}
		f.auto = a
	}
	return f, nil
}

// buildReplica constructs, registers and starts one member. The name
// must be unique; callers outside New must not hold f.mu.
func (f *Fleet) buildReplica(spec ReplicaSpec, name string, scaled bool) (*Replica, error) {
	if spec.Model == nil {
		return nil, fmt.Errorf("no model")
	}
	if spec.Engine.Admit != nil {
		return nil, fmt.Errorf("sets Engine.Admit (owned by the fleet)")
	}
	if spec.DefaultStrategy != "" {
		if _, err := core.ResolveStrategy(spec.DefaultStrategy, false); err != nil {
			return nil, err
		}
	}
	r := &Replica{
		name:            name,
		modelName:       spec.Model.Config().Name,
		scheme:          spec.Model.Scheme().String(),
		defaultStrategy: spec.DefaultStrategy,
		engCfg:          spec.Engine,
		scaled:          scaled,
		breaker:         newBreaker(f.cfg.BreakerThreshold, f.cfg.BreakerCooldown, nil),
	}
	engCfg := spec.Engine
	if len(f.policies) > 0 {
		engCfg.Admit = f.admitFunc(r)
	}
	r.eng.Store(serve.NewEngine(spec.Model, engCfg))
	f.mu.Lock()
	f.replicas = append(f.replicas, r)
	for _, key := range modelKeys(r.modelName) {
		f.byModel[key] = append(f.byModel[key], r)
	}
	f.mu.Unlock()
	return r, nil
}

// modelKeys lists the spellings a replica's model answers to: the
// config name, case-folded, plus the daemon-flag alias without the
// "-sim" suffix ("CodeT5p-sim" serves both "codet5p-sim" and
// "codet5p").
func modelKeys(name string) []string {
	lower := strings.ToLower(name)
	keys := []string{lower}
	if trimmed := strings.TrimSuffix(lower, "-sim"); trimmed != lower {
		keys = append(keys, trimmed)
	}
	return keys
}

// Replicas snapshots the fleet members in construction order.
func (f *Fleet) Replicas() []*Replica {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]*Replica, len(f.replicas))
	copy(out, f.replicas)
	return out
}

// Router reports the active routing policy's name.
func (f *Fleet) Router() string { return f.router.Name() }

// Close stops the background machinery (stealers, autoscaler, pending
// scale-downs), then drains and stops every replica engine.
func (f *Fleet) Close() {
	close(f.quit)
	f.wg.Wait()
	for _, r := range f.Replicas() {
		r.Engine().Close()
	}
}

// admitFunc binds the policy chain to one replica: the engine calls it
// for every submission that would consume a queue slot.
func (f *Fleet) admitFunc(r *Replica) func(ctx context.Context, req serve.Request) error {
	return func(ctx context.Context, req serve.Request) error {
		load := f.loadAt(r)
		for _, p := range f.policies {
			if err := p.Admit(ctx, req, load); err != nil {
				f.st.mu.Lock()
				f.st.shedByPolicy[p.Name()]++
				f.st.shedByPriority[req.Priority.String()]++
				f.st.mu.Unlock()
				return err
			}
		}
		return nil
	}
}

// loadAt snapshots the admission Load for one replica.
func (f *Fleet) loadAt(r *Replica) Load {
	eng := r.Engine()
	l := Load{
		QueueDepth: eng.QueueDepth(),
		QueueCap:   eng.QueueCap(),
		Workers:    eng.Workers(),
		Inflight:   int(r.inflight.Load()),
	}
	for _, o := range f.Replicas() {
		l.FleetQueueDepth += o.Engine().QueueDepth()
		l.FleetInflight += int(o.inflight.Load())
	}
	f.st.mu.Lock()
	l.MeanDecodeMS = f.st.meanDecodeMS
	f.st.mu.Unlock()
	return l
}

// candidates returns the replicas serving the request's model (all of
// them for an empty model), or an ErrUnknownModel-wrapped error.
func (f *Fleet) candidates(modelName string) ([]*Replica, error) {
	f.mu.RLock()
	var reps []*Replica
	if modelName == "" {
		reps = f.replicas
	} else {
		reps = f.byModel[strings.ToLower(modelName)]
	}
	cands := make([]*Replica, len(reps))
	copy(cands, reps)
	f.mu.RUnlock()
	if len(cands) > 0 {
		return cands, nil
	}
	f.st.mu.Lock()
	f.st.unknownModel++
	f.st.mu.Unlock()
	return nil, fmt.Errorf("%w: %q", serve.ErrUnknownModel, modelName)
}

// serveableOf filters candidates to members the router may use: active
// and breaker-ready. When none qualify the full set comes back —
// availability beats purity; a fleet of open breakers still serves.
func serveableOf(cands []*Replica) []*Replica {
	ok := make([]*Replica, 0, len(cands))
	for _, r := range cands {
		if r.serveable() {
			ok = append(ok, r)
		}
	}
	if len(ok) == 0 {
		return cands
	}
	return ok
}

// route picks the serving replica. The replica's inflight counter is
// incremented HERE, not at submission, so load-aware routers see each
// routed-but-not-yet-submitted request — in particular, items earlier
// in a batch raise the load later items are routed by. Every caller
// must decrement after the engine answers.
func (f *Fleet) route(ctx context.Context, req serve.Request) (*Replica, error) {
	f.st.mu.Lock()
	f.st.requests++
	f.st.mu.Unlock()
	var sp *trace.Span
	if tr := trace.FromContext(ctx); tr != nil {
		sp = tr.Start(trace.SpanFromContext(ctx), trace.KindRouter, f.router.Name())
	}
	cands, err := f.candidates(req.Model)
	if err != nil {
		sp.SetAttr("outcome", "unknown_model")
		sp.End()
		return nil, err
	}
	r := f.router.Pick(affinityKey(req.Prompt), serveableOf(cands))
	sp.SetAttr("replica", r.name)
	sp.SetAttrInt("candidates", int64(len(cands)))
	sp.End()
	r.routed.Add(1)
	r.inflight.Add(1)
	return r, nil
}

// withDefaultStrategy applies the serving replica's default-strategy
// substitution — at send time, not route time, because hedges and
// failovers may serve on a different replica than the routed one.
func withDefaultStrategy(req serve.Request, r *Replica) serve.Request {
	if r.defaultStrategy != "" && req.NoExplicitStrategy {
		req.Options.Strategy = r.defaultStrategy
		req.Options.Mode = 0
	}
	return req
}

// observe folds one outcome into the fleet's decode-time EWMA.
func (f *Fleet) observe(resp *serve.Response) {
	if resp == nil || resp.Err != nil || resp.Cached || resp.Deduped || resp.Wall <= 0 {
		return
	}
	wallMS := float64(resp.Wall) / float64(time.Millisecond)
	f.st.mu.Lock()
	if f.st.meanDecodeMS == 0 {
		f.st.meanDecodeMS = wallMS
	} else {
		f.st.meanDecodeMS = 0.8*f.st.meanDecodeMS + 0.2*wallMS
	}
	f.st.mu.Unlock()
}

// tag returns a per-caller copy of resp carrying the serving replica's
// name. A copy, not a mutation: the engine may still share the
// original with single-flight followers.
func tag(resp *serve.Response, r *Replica) *serve.Response {
	if resp == nil {
		return nil
	}
	tagged := *resp
	tagged.Replica = r.name
	return &tagged
}

// Generate routes one request and blocks for a queue slot if the
// replica is saturated (admission policies still apply).
func (f *Fleet) Generate(ctx context.Context, req serve.Request) (*serve.Response, error) {
	return f.generate(ctx, req, true)
}

// TryGenerate implements serve.Backend: Generate with fail-fast
// backpressure.
func (f *Fleet) TryGenerate(ctx context.Context, req serve.Request) (*serve.Response, error) {
	return f.generate(ctx, req, false)
}

func (f *Fleet) generate(ctx context.Context, req serve.Request, wait bool) (*serve.Response, error) {
	r, err := f.route(ctx, req)
	if err != nil {
		return nil, err
	}
	defer r.inflight.Add(-1)
	resp, served, err := f.serveRouted(ctx, req, r, wait)
	f.observe(resp)
	return tag(resp, served), err
}

// GenerateBatch routes every item, dispatches the per-replica groups
// concurrently (each through the engine's own batch path, so items
// within a group are in flight together), and reassembles responses
// index-for-index. Batches are not hedged — they are the bench/bulk
// path; per-request hedging covers the interactive tail.
func (f *Fleet) GenerateBatch(ctx context.Context, reqs []serve.Request) []*serve.Response {
	return f.generateBatch(ctx, reqs, true)
}

// TryGenerateBatch implements serve.Backend: GenerateBatch with
// fail-fast backpressure per item.
func (f *Fleet) TryGenerateBatch(ctx context.Context, reqs []serve.Request) []*serve.Response {
	return f.generateBatch(ctx, reqs, false)
}

func (f *Fleet) generateBatch(ctx context.Context, reqs []serve.Request, wait bool) []*serve.Response {
	out := make([]*serve.Response, len(reqs))
	groups := map[*Replica][]int{}
	for i, req := range reqs {
		r, err := f.route(ctx, req)
		if err != nil {
			out[i] = &serve.Response{Err: err}
			continue
		}
		groups[r] = append(groups[r], i)
	}
	var wg sync.WaitGroup
	for r, idxs := range groups {
		wg.Add(1)
		go func(r *Replica, idxs []int) {
			defer wg.Done()
			// route already counted these items into inflight.
			defer r.inflight.Add(int64(-len(idxs)))
			sub := make([]serve.Request, len(idxs))
			for j, i := range idxs {
				sub[j] = withDefaultStrategy(reqs[i], r)
			}
			eng := r.Engine()
			var resps []*serve.Response
			if wait {
				resps = eng.GenerateBatch(ctx, sub)
			} else {
				resps = eng.TryGenerateBatch(ctx, sub)
			}
			for j, i := range idxs {
				f.recordBreaker(r, resps[j], nil)
				f.observe(resps[j])
				out[i] = tag(resps[j], r)
			}
		}(r, idxs)
	}
	wg.Wait()
	return out
}
