package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

// --- fault plane for in-package tests ---

// faultKind is the injectable failure mode of one replica's engine.
type faultKind int32

const (
	faultNone  faultKind = iota
	faultKill            // every decode fails immediately
	faultWedge           // every decode blocks until its context dies
)

// testFault is one replica's controllable fault, wired in as the
// engine's StepFault hook.
type testFault struct{ mode atomic.Int32 }

func (tf *testFault) set(k faultKind) { tf.mode.Store(int32(k)) }

func (tf *testFault) hook(ctx context.Context) error {
	switch faultKind(tf.mode.Load()) {
	case faultKill:
		return errors.New("injected: replica fault")
	case faultWedge:
		<-ctx.Done()
		return ctx.Err()
	}
	return nil
}

// newFaultyFleet builds n identical replicas whose engines each carry
// a controllable fault hook.
func newFaultyFleet(tb testing.TB, n int, cfg Config, engCfg serve.Config) (*Fleet, []*testFault) {
	tb.Helper()
	m, _ := fixture(tb)
	faults := make([]*testFault, n)
	specs := make([]ReplicaSpec, n)
	for i := range specs {
		faults[i] = &testFault{}
		ec := engCfg
		ec.StepFault = faults[i].hook
		specs[i] = ReplicaSpec{Model: m, Engine: ec}
	}
	f, err := New(specs, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(f.Close)
	return f, faults
}

// replicaByName finds a fleet member and its fault handle.
func replicaByName(tb testing.TB, f *Fleet, faults []*testFault, name string) (*Replica, *testFault) {
	tb.Helper()
	for i, r := range f.Replicas() {
		if r.Name() == name {
			return r, faults[i]
		}
	}
	tb.Fatalf("no replica named %q", name)
	return nil, nil
}

// eventually polls cond until it holds or the deadline passes.
func eventually(tb testing.TB, d time.Duration, what string, cond func() bool) {
	tb.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	tb.Fatalf("timed out waiting for %s", what)
}

// --- circuit breaker ---

// TestBreakerStateMachine drives the closed/open/half-open cycle with
// an injected clock: consecutive failures trip the circuit, the
// cooldown gates the probe, the probe's outcome decides recovery, and
// neutral outcomes release the probe without judging the replica.
func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(3, time.Second, func() time.Time { return now })

	if !b.ready() || !b.allow() {
		t.Fatal("fresh breaker must pass traffic")
	}
	b.onSuccess()

	// Two failures: still closed (threshold 3); an interleaved success
	// resets the streak.
	b.onFailure()
	b.onFailure()
	if st, _ := b.snapshot(); st != BreakerClosed {
		t.Fatalf("state after 2 failures = %v, want closed", st)
	}
	b.onSuccess()
	b.onFailure()
	b.onFailure()
	if st, _ := b.snapshot(); st != BreakerClosed {
		t.Fatal("success must reset the consecutive-failure streak")
	}

	// Third consecutive failure trips it.
	b.onFailure()
	if st, opens := b.snapshot(); st != BreakerOpen || opens != 1 {
		t.Fatalf("state=%v opens=%d, want open/1", st, opens)
	}
	if b.ready() || b.allow() {
		t.Fatal("open breaker inside cooldown must fail fast")
	}

	// Cooldown elapses: exactly one probe passes.
	now = now.Add(time.Second)
	if !b.ready() {
		t.Fatal("cooled-down breaker must offer a probe")
	}
	if !b.allow() {
		t.Fatal("first probe must be admitted")
	}
	if b.ready() || b.allow() {
		t.Fatal("half-open breaker must admit only one probe at a time")
	}
	// Neutral outcome (the probe was shed): slot released, state held.
	b.onNeutral()
	if st, _ := b.snapshot(); st != BreakerHalfOpen {
		t.Fatalf("state after neutral probe = %v, want half-open", st)
	}
	if !b.allow() {
		t.Fatal("released probe slot must re-admit")
	}
	// Failed probe: straight back to open.
	b.onFailure()
	if st, opens := b.snapshot(); st != BreakerOpen || opens != 2 {
		t.Fatalf("state=%v opens=%d after failed probe, want open/2", st, opens)
	}

	// Second recovery: successful probe closes it for good.
	now = now.Add(time.Second)
	if !b.allow() {
		t.Fatal("second probe must be admitted")
	}
	b.onSuccess()
	if st, _ := b.snapshot(); st != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", st)
	}
	if !b.ready() || !b.allow() {
		t.Fatal("recovered breaker must pass traffic")
	}
}

// TestBreakerRoutesAround: a killed replica's circuit opens after the
// failure threshold and the router stops sending it traffic; every
// client request still succeeds via failover. After the fault heals
// and the cooldown elapses, a probe closes the circuit and affinity
// resumes.
func TestBreakerRoutesAround(t *testing.T) {
	_, prompts := fixture(t)
	f, faults := newFaultyFleet(t, 3,
		Config{BreakerThreshold: 2, BreakerCooldown: 300 * time.Millisecond},
		serve.Config{Workers: 1, CacheSize: -1})

	// Discover the affine replica for this prompt family.
	first, err := f.Generate(context.Background(), serve.Request{Prompt: prompts[0], Options: testOptions(0)})
	if err != nil {
		t.Fatal(err)
	}
	affine, fault := replicaByName(t, f, faults, first.Replica)
	fault.set(faultKill)

	for seed := int64(1); seed <= 6; seed++ {
		resp, err := f.Generate(context.Background(), serve.Request{Prompt: prompts[0], Options: testOptions(seed)})
		if err != nil {
			t.Fatalf("seed %d: client saw fault: %v", seed, err)
		}
		if resp.Replica == affine.Name() {
			t.Fatalf("seed %d: served by the killed replica", seed)
		}
	}
	if _, opens := affine.breaker.snapshot(); opens == 0 {
		t.Error("killed replica breaker never tripped")
	}
	m := f.Metrics()
	if m.Failovers < 2 {
		t.Errorf("failovers=%d, want >=2 (threshold failures before the trip)", m.Failovers)
	}
	// Once open, traffic routes around the dead member — at most the
	// occasional half-open probe (which fails over transparently) may
	// still land there.
	routedBefore := affine.routed.Load()
	for seed := int64(7); seed <= 9; seed++ {
		if _, err := f.Generate(context.Background(), serve.Request{Prompt: prompts[0], Options: testOptions(seed)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := affine.routed.Load(); got > routedBefore+2 {
		t.Errorf("open-circuit replica still taking traffic (%d -> %d)", routedBefore, got)
	}

	// Heal, wait out the cooldown, and confirm the probe closes the
	// circuit and affinity returns.
	fault.set(faultNone)
	time.Sleep(320 * time.Millisecond)
	eventually(t, 2*time.Second, "breaker to close and affinity to resume", func() bool {
		resp, err := f.Generate(context.Background(), serve.Request{Prompt: prompts[0], Options: testOptions(99)})
		if err != nil {
			return false
		}
		st, _ := affine.breaker.snapshot()
		return st == BreakerClosed && resp.Replica == affine.Name()
	})
}

// TestHedgeCoversWedgedReplica: a wedged replica (decodes hang until
// cancelled) never answers, but clients don't wait for it — the hedge
// fires after HedgeAfter, a sibling serves the request, and the
// hedge-win-by-timeout signal opens the wedged member's circuit.
func TestHedgeCoversWedgedReplica(t *testing.T) {
	_, prompts := fixture(t)
	f, faults := newFaultyFleet(t, 3,
		Config{HedgeAfter: 20 * time.Millisecond, BreakerThreshold: 2, BreakerCooldown: 150 * time.Millisecond},
		serve.Config{Workers: 1, CacheSize: -1})

	first, err := f.Generate(context.Background(), serve.Request{Prompt: prompts[1], Options: testOptions(0)})
	if err != nil {
		t.Fatal(err)
	}
	wedged, fault := replicaByName(t, f, faults, first.Replica)
	fault.set(faultWedge)

	for seed := int64(1); seed <= 4; seed++ {
		start := time.Now()
		resp, err := f.Generate(context.Background(), serve.Request{Prompt: prompts[1], Options: testOptions(seed)})
		if err != nil {
			t.Fatalf("seed %d: client saw wedge: %v", seed, err)
		}
		if resp.Replica == wedged.Name() {
			t.Fatalf("seed %d: answered by the wedged replica", seed)
		}
		if waited := time.Since(start); waited > 5*time.Second {
			t.Fatalf("seed %d: hedge did not cover the wedge (waited %s)", seed, waited)
		}
	}
	m := f.Metrics()
	if m.Hedges == 0 || m.HedgeWins == 0 {
		t.Errorf("hedges=%d hedge_wins=%d, want both > 0", m.Hedges, m.HedgeWins)
	}
	// The circuit must have tripped on the wedge-timeout signals. (It
	// may already be half-open again at snapshot time if a cooldown
	// elapsed — probing is allowed, judging is what matters.)
	if st, opens := wedged.breaker.snapshot(); opens == 0 || st == BreakerClosed {
		t.Errorf("wedged replica breaker state=%v opens=%d, want tripped", st, opens)
	}

	// Heal and recover: after the cooldown a probe closes the circuit.
	fault.set(faultNone)
	eventually(t, 3*time.Second, "wedged replica to rejoin", func() bool {
		resp, err := f.Generate(context.Background(), serve.Request{Prompt: prompts[1], Options: testOptions(50)})
		if err != nil {
			return false
		}
		return resp.Replica == wedged.Name()
	})
}

// --- autoscaler ---

// TestAutoscaleUpAndDown drives the controller with manual ticks:
// sustained per-replica backlog adds a member (after UpPatience ticks
// and not during cooldown), a sustained idle fleet removes the
// autoscaled member again, and the configured floor holds.
func TestAutoscaleUpAndDown(t *testing.T) {
	f, _ := newFaultyFleet(t, 1, Config{Autoscale: AutoscaleConfig{
		Enabled:      true,
		Min:          1,
		Max:          2,
		Interval:     -1, // manual ticks only
		UpLoad:       2,
		UpPatience:   2,
		DownPatience: 2,
		Cooldown:     1,
	}}, serve.Config{Workers: 1, CacheSize: -1})

	base := f.Replicas()[0]
	base.inflight.Add(4) // synthetic sustained backlog

	f.AutoscaleTick() // vote 1
	if got := len(f.Replicas()); got != 1 {
		t.Fatalf("scaled up after one tick (%d replicas) — no hysteresis", got)
	}
	f.AutoscaleTick() // vote 2 -> scale up
	if got := len(f.Replicas()); got != 2 {
		t.Fatalf("replicas=%d after sustained pressure, want 2", got)
	}
	if m := f.Metrics(); m.ScaleUps != 1 {
		t.Errorf("scale_ups=%d, want 1", m.ScaleUps)
	}
	added := f.Replicas()[1]
	if !added.scaled {
		t.Error("added replica not marked autoscaled")
	}

	// At Max: further pressure must not add more.
	f.AutoscaleTick() // cooldown tick
	f.AutoscaleTick()
	f.AutoscaleTick()
	if got := len(f.Replicas()); got != 2 {
		t.Fatalf("replicas=%d, autoscaler exceeded Max=2", got)
	}

	// Idle: the autoscaled member drains away; the floor member stays.
	base.inflight.Add(-4)
	for i := 0; i < 6; i++ {
		f.AutoscaleTick()
	}
	eventually(t, 2*time.Second, "scale-down drain to finish", func() bool {
		return len(f.Replicas()) == 1
	})
	if f.Replicas()[0] != base {
		t.Error("scale-down removed the configured replica, not the autoscaled one")
	}
	if m := f.Metrics(); m.ScaleDowns != 1 {
		t.Errorf("scale_downs=%d, want 1", m.ScaleDowns)
	}
	// Fully idle forever: never dips below Min.
	for i := 0; i < 8; i++ {
		f.AutoscaleTick()
	}
	if got := len(f.Replicas()); got != 1 {
		t.Errorf("replicas=%d, autoscaler violated Min=1", got)
	}
}

// --- drain and rolling swap ---

// TestDrainExcludesFromRouting: a draining replica receives no new
// routes, and Activate returns it to the candidate set.
func TestDrainExcludesFromRouting(t *testing.T) {
	_, prompts := fixture(t)
	f := newFleet(t, 2, nil, nil, serve.Config{Workers: 1, CacheSize: -1})
	r0 := f.Replicas()[0]

	if err := f.Drain(context.Background(), r0); err != nil {
		t.Fatalf("drain of an idle replica: %v", err)
	}
	routedBefore := r0.routed.Load()
	for seed := int64(0); seed < 6; seed++ {
		for p := 0; p < 4; p++ {
			if _, err := f.Generate(context.Background(), serve.Request{Prompt: prompts[p], Options: testOptions(seed)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := r0.routed.Load(); got != routedBefore {
		t.Errorf("draining replica routed %d new requests", got-routedBefore)
	}
	if m := f.Metrics(); m.Drains != 1 || m.PerReplica[0].State != "draining" {
		t.Errorf("drains=%d state=%q, want 1/draining", m.Drains, m.PerReplica[0].State)
	}

	f.Activate(r0)
	eventually(t, 2*time.Second, "reactivated replica to route", func() bool {
		for p := 0; p < 8; p++ {
			if _, err := f.Generate(context.Background(), serve.Request{Prompt: prompts[p], Options: testOptions(123)}); err != nil {
				t.Fatal(err)
			}
		}
		return r0.routed.Load() > routedBefore
	})
}

// TestRollingSwapZeroErrors is the rolling-upgrade guarantee: with
// client traffic in flight, SwapModel drains and restarts each replica
// on the new model one at a time, and no client ever sees an error
// (the other replica absorbs routed work; races onto a closing engine
// fail over transparently).
func TestRollingSwapZeroErrors(t *testing.T) {
	_, prompts := fixture(t)
	m2 := fixNTP // same backbone name, different training scheme
	f := newFleet(t, 2, nil, nil, serve.Config{Workers: 2, CacheSize: -1})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var clientErrs atomic.Uint64
	var served atomic.Uint64
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for seed := int64(0); ; seed++ {
				select {
				case <-stop:
					return
				default:
				}
				// Explicit strategy: valid under both training schemes.
				_, err := f.Generate(context.Background(), serve.Request{
					Prompt:  prompts[c%8],
					Options: testOptions(seed*4 + int64(c)),
				})
				if err != nil {
					clientErrs.Add(1)
				} else {
					served.Add(1)
				}
			}
		}(c)
	}

	// Let traffic establish, then roll the fleet onto the new model.
	time.Sleep(30 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := f.SwapModel(ctx, m2); err != nil {
		t.Fatalf("rolling swap: %v", err)
	}
	time.Sleep(30 * time.Millisecond)
	close(stop)
	wg.Wait()

	if n := clientErrs.Load(); n != 0 {
		t.Errorf("%d client-visible errors during the rolling swap, want 0", n)
	}
	if served.Load() == 0 {
		t.Fatal("no requests served around the swap")
	}
	fm := f.Metrics()
	if fm.Swaps != 2 {
		t.Errorf("swaps=%d, want 2", fm.Swaps)
	}
	for _, pr := range fm.PerReplica {
		if pr.Scheme != "NTP" {
			t.Errorf("replica %s still on scheme %s after swap", pr.Name, pr.Scheme)
		}
		if pr.State != "active" {
			t.Errorf("replica %s left %s after swap", pr.Name, pr.State)
		}
	}
	// The swapped fleet still serves its model aliases.
	if _, err := f.Generate(context.Background(), serve.Request{Prompt: prompts[0], Model: "codet5p", Options: testOptions(7)}); err != nil {
		t.Errorf("model alias broken after swap: %v", err)
	}
}

// --- work stealing ---

// TestStealRebalances: when prefix affinity concentrates a burst on
// one replica, idle siblings pull the overflow — some requests are
// served by a replica other than the routed one, and all succeed.
func TestStealRebalances(t *testing.T) {
	_, prompts := fixture(t)
	f, _ := newFaultyFleet(t, 3, Config{Steal: true}, serve.Config{Workers: 1, CacheSize: -1})

	const burst = 18
	var wg sync.WaitGroup
	errs := make([]error, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// One prompt family, distinct seeds: all affinity-routed to
			// one replica, none collapsible by single-flight.
			_, errs[i] = f.Generate(context.Background(), serve.Request{Prompt: prompts[2], Options: testOptions(int64(i))})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	m := f.Metrics()
	if m.Steals == 0 {
		t.Fatal("hot burst produced zero steals — idle siblings never helped")
	}
	var stolen uint64
	for _, pr := range m.PerReplica {
		stolen += pr.Stolen
	}
	if stolen != m.Steals {
		t.Errorf("per-replica stolen sum %d != fleet steals %d", stolen, m.Steals)
	}
}

// TestStealJobContextCancel: a job parked on the steal queue whose
// client gives up is answered with the context error, exactly once.
func TestStealJobContextCancel(t *testing.T) {
	_, prompts := fixture(t)
	f, faults := newFaultyFleet(t, 1, Config{Steal: true}, serve.Config{Workers: 1, QueueSize: 8, CacheSize: -1})
	// Wedge the only replica so nothing drains and jobs pile up.
	faults[0].set(faultWedge)

	var wg sync.WaitGroup
	outcomes := make([]error, 6)
	ctx, cancel := context.WithCancel(context.Background())
	for i := range outcomes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, outcomes[i] = f.Generate(ctx, serve.Request{Prompt: prompts[3], Options: testOptions(int64(i))})
		}(i)
	}
	time.Sleep(20 * time.Millisecond)
	cancel()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled steal jobs never unblocked their clients")
	}
	for i, err := range outcomes {
		if err == nil {
			t.Errorf("request %d: nil error from a wedged single-replica fleet", i)
		} else if !errors.Is(err, context.Canceled) {
			t.Errorf("request %d: %v, want context.Canceled", i, err)
		}
	}
	faults[0].set(faultNone)
}

// TestSwapUnknownModelRejected documents the SwapModel contract.
func TestSwapUnknownModelRejected(t *testing.T) {
	f := newFleet(t, 1, nil, nil, serve.Config{Workers: 1, CacheSize: -1})
	if err := f.SwapModel(context.Background(), nil); err == nil {
		t.Error("nil-model swap accepted")
	}
	_ = fmt.Sprintf("%v", f.Metrics().Swaps)
}
