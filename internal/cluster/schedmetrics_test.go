package cluster

import (
	"context"
	"strings"
	"testing"

	"repro/internal/serve"
)

// TestFleetAggregatesSchedulerMetrics pins the fleet roll-up of the
// continuous-scheduler observability: sweep/preemption counters and
// batch-slot gauges sum across replicas, the derived occupancies
// recompute over the sums, and the per-replica scheduler families
// appear in the fleet's Prometheus exposition.
func TestFleetAggregatesSchedulerMetrics(t *testing.T) {
	_, prompts := fixture(t)
	f := newFleet(t, 2, &roundRobinRouter{}, nil, serve.Config{Workers: 1, MaxBatch: 2, CacheSize: -1})
	for i := 0; i < 6; i++ {
		req := serve.Request{Prompt: prompts[i], Options: testOptions(int64(i))}
		if resp, err := f.Generate(context.Background(), req); err != nil || resp.Err != nil {
			t.Fatalf("request %d: %v / %v", i, err, resp.Err)
		}
	}

	fm := f.Metrics()
	if fm.Fleet.Scheduler != serve.SchedContinuous {
		t.Fatalf("uniform fleet scheduler = %q, want %q", fm.Fleet.Scheduler, serve.SchedContinuous)
	}
	var sweeps, leases uint64
	var maxBatch int
	var weightedOcc float64
	replicasWithSweeps := 0
	for _, r := range fm.PerReplica {
		if r.Engine.Sweeps > 0 {
			replicasWithSweeps++
		}
		sweeps += r.Engine.Sweeps
		leases += r.Engine.PrefixCacheLeases
		maxBatch += r.Engine.SchedMaxBatch
		weightedOcc += r.Engine.MeanSweepOccupancy * float64(r.Engine.Sweeps)
	}
	if replicasWithSweeps < 2 {
		t.Fatalf("only %d replicas swept; aggregation untested", replicasWithSweeps)
	}
	if fm.Fleet.Sweeps != sweeps || fm.Fleet.SchedMaxBatch != maxBatch {
		t.Fatalf("fleet sweeps/slots %d/%d, per-replica sums %d/%d",
			fm.Fleet.Sweeps, fm.Fleet.SchedMaxBatch, sweeps, maxBatch)
	}
	if fm.Fleet.PrefixCacheLeases != leases || leases == 0 {
		t.Fatalf("fleet leases %d, per-replica sum %d (want equal, nonzero)", fm.Fleet.PrefixCacheLeases, leases)
	}
	if want := weightedOcc / float64(sweeps); fm.Fleet.MeanSweepOccupancy != want {
		t.Fatalf("fleet sweep occupancy %f, want %f (sweep-weighted)", fm.Fleet.MeanSweepOccupancy, want)
	}
	// Quiesced fleet: no decode in flight, so nothing pinned anywhere.
	if fm.Fleet.SchedRunning != 0 || fm.Fleet.SchedParked != 0 || fm.Fleet.PrefixCachePinnedPages != 0 {
		t.Fatalf("quiesced fleet holds residency: %+v", fm.Fleet)
	}

	var sb strings.Builder
	f.WritePrometheusTo(&sb, 1)
	body := sb.String()
	for _, want := range []string{
		`vgend_sched_info{scheduler="continuous"} 1`,
		"vgend_sched_sweeps_total ",
		`vgend_replica_sched_occupancy{replica="r0:`,
		`vgend_replica_sched_preemptions_total{replica="r1:`,
		`vgend_replica_prefix_pinned_pages{replica="r0:`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("fleet exposition missing %q", want)
		}
	}
}

// TestAggregateMixedSchedulers pins the identity rule on synthetic
// snapshots: a fleet split between continuous and micro-batch replicas
// must report "mixed", and the scheduler sums must not depend on mode.
func TestAggregateMixedSchedulers(t *testing.T) {
	a := aggregate([]serve.Metrics{
		{Scheduler: serve.SchedContinuous, SchedMaxBatch: 4, Sweeps: 30, MeanSweepOccupancy: 2.0, Preemptions: 3, Resumes: 3},
		{Scheduler: serve.SchedMicroBatch, SchedMaxBatch: 0, Sweeps: 0},
		{Scheduler: serve.SchedContinuous, SchedMaxBatch: 2, Sweeps: 10, MeanSweepOccupancy: 1.0, Preemptions: 1, Resumes: 1},
	})
	if a.Scheduler != "mixed" {
		t.Fatalf("heterogeneous fleet scheduler = %q, want mixed", a.Scheduler)
	}
	if a.SchedMaxBatch != 6 || a.Sweeps != 40 || a.Preemptions != 4 || a.Resumes != 4 {
		t.Fatalf("scheduler sums wrong: %+v", a)
	}
	// (2.0*30 + 1.0*10) / 40 = 1.75
	if a.MeanSweepOccupancy != 1.75 {
		t.Fatalf("sweep-weighted occupancy %f, want 1.75", a.MeanSweepOccupancy)
	}
}
