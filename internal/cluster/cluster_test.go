package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/tokenizer"
)

// The fixture trains one small model shared by every test; fleets and
// engines are cheap, models are not.
var (
	fixOnce    sync.Once
	fixModel   *model.Model // CodeT5p-sim / Ours
	fixNTP     *model.Model // CodeT5p-sim / NTP
	fixLlama   *model.Model // CodeLlama-sim / NTP (second backbone for model routing)
	fixPrompts []string
)

func fixture(tb testing.TB) (*model.Model, []string) {
	tb.Helper()
	fixOnce.Do(func() {
		examples, _ := dataset.BuildCorpus(dataset.CorpusOptions{Seed: 1, Items: 700})
		var texts []string
		for _, ex := range examples {
			texts = append(texts, model.FormatPrompt(ex.Prompt)+ex.Code)
		}
		cfg := model.CodeT5pSim()
		tk := tokenizer.Train(texts, cfg.VocabSize)
		fixModel = model.Train(tk, cfg, model.SchemeOurs, examples)
		fixNTP = model.Train(tk, cfg, model.SchemeNTP, examples)
		llamaCfg := model.CodeLlamaSim()
		fixLlama = model.Train(tokenizer.Train(texts, llamaCfg.VocabSize), llamaCfg, model.SchemeNTP, examples)
		for _, ex := range examples[:24] {
			fixPrompts = append(fixPrompts, ex.Prompt)
		}
	})
	return fixModel, fixPrompts
}

func testOptions(seed int64) core.Options {
	return core.Options{Mode: core.ModeOurs, Temperature: 0.6, MaxNewTokens: 48, Seed: seed}
}

// newFleet builds a fleet of n identical replicas over the fixture
// model with the given router and policies.
func newFleet(tb testing.TB, n int, router Router, policies []ShedPolicy, engCfg serve.Config) *Fleet {
	tb.Helper()
	m, _ := fixture(tb)
	specs := make([]ReplicaSpec, n)
	for i := range specs {
		specs[i] = ReplicaSpec{Model: m, Engine: engCfg}
	}
	f, err := New(specs, Config{Router: router, Policies: policies})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(f.Close)
	return f
}

// TestSingleReplicaByteIdentical is the golden determinism gate at the
// fleet layer: a 1-replica fleet must produce byte-identical output to
// the bare decoder for every legacy mode — the cluster layer adds
// routing and admission, never decoding behavior.
func TestSingleReplicaByteIdentical(t *testing.T) {
	m, prompts := fixture(t)
	f := newFleet(t, 1, nil, nil, serve.Config{Workers: 2, CacheSize: -1})
	dec := core.NewDecoder(m)
	for _, mode := range []core.Mode{core.ModeNTP, core.ModeMedusa, core.ModeOurs} {
		for i, prompt := range prompts[:4] {
			opts := core.Options{Mode: mode, Temperature: 0.4, MaxNewTokens: 48, Seed: int64(i)}
			resp, err := f.Generate(context.Background(), serve.Request{Prompt: prompt, Options: opts})
			if err != nil {
				t.Fatalf("mode %v prompt %d: %v", mode, i, err)
			}
			direct := dec.Generate(prompt, opts)
			if resp.Result.Text != direct.Text {
				t.Errorf("mode %v prompt %d: fleet output diverges from direct decode", mode, i)
			}
			if resp.Result.Steps != direct.Steps {
				t.Errorf("mode %v prompt %d: steps %d != %d", mode, i, resp.Result.Steps, direct.Steps)
			}
			if resp.Replica == "" {
				t.Errorf("response missing serving replica name")
			}
		}
	}
}

// TestPrefixAffinityConcentrates pins the routing invariant the caches
// depend on: every request for one prompt lands on one replica.
func TestPrefixAffinityConcentrates(t *testing.T) {
	_, prompts := fixture(t)
	f := newFleet(t, 4, nil, nil, serve.Config{Workers: 1, CacheSize: -1})
	for seed := int64(0); seed < 6; seed++ {
		if _, err := f.Generate(context.Background(), serve.Request{Prompt: prompts[0], Options: testOptions(seed)}); err != nil {
			t.Fatal(err)
		}
	}
	nonzero := 0
	for _, r := range f.Replicas() {
		if r.routed.Load() > 0 {
			nonzero++
			if got := r.routed.Load(); got != 6 {
				t.Errorf("affine replica routed %d, want 6", got)
			}
		}
	}
	if nonzero != 1 {
		t.Errorf("one prompt spread over %d replicas, want 1", nonzero)
	}
	// The shared prompt means the affine replica's prefix cache misses
	// once and hits five times — the concentration payoff.
	fm := f.Metrics()
	if fm.Fleet.PrefixCacheHits != 5 || fm.Fleet.PrefixCacheMisses != 1 {
		t.Errorf("prefix cache hits=%d misses=%d, want 5/1", fm.Fleet.PrefixCacheHits, fm.Fleet.PrefixCacheMisses)
	}
	if fm.AffinityPicks != 6 || fm.SpillPicks != 0 {
		t.Errorf("affinity picks=%d spill=%d, want 6/0", fm.AffinityPicks, fm.SpillPicks)
	}
}

// TestAffinityBeatsRandomOnCacheHits is the fleet-bench headline as a
// correctness gate: for a shared-prefix workload (repeated prompts and
// seeds), prefix-affinity routing yields a strictly better result-LRU
// hit rate than random routing, because repeats of one prompt all land
// where its result is cached.
func TestAffinityBeatsRandomOnCacheHits(t *testing.T) {
	_, prompts := fixture(t)
	run := func(router Router) float64 {
		f := newFleet(t, 4, router, nil, serve.Config{Workers: 2, CacheSize: 64})
		for rep := 0; rep < 6; rep++ {
			for p := 0; p < 8; p++ {
				req := serve.Request{Prompt: prompts[p], Options: testOptions(int64(p))}
				if _, err := f.Generate(context.Background(), req); err != nil {
					t.Fatal(err)
				}
			}
		}
		return f.Metrics().Fleet.CacheHitRate
	}
	affinity := run(newPrefixAffinity())
	random := run(newRandomRouter(1))
	if affinity <= random {
		t.Fatalf("affinity hit rate %.3f not better than random %.3f", affinity, random)
	}
	// 8 prompts × 6 repeats through affinity: exactly one miss per
	// prompt, everything else hits.
	if want := 40.0 / 48.0; affinity < want-1e-9 {
		t.Errorf("affinity hit rate %.3f, want %.3f", affinity, want)
	}
}

// TestModelRouting: requests naming a model reach only replicas
// serving it; unknown names fail loudly with ErrUnknownModel.
func TestModelRouting(t *testing.T) {
	m, prompts := fixture(t)
	f, err := New([]ReplicaSpec{
		{Name: "a", Model: m, Engine: serve.Config{Workers: 1, CacheSize: -1}},
		{Name: "b", Model: fixLlama, Engine: serve.Config{Workers: 1, CacheSize: -1}},
	}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Every codellama request must land on replica b — the daemon-flag
	// spelling and the config name both route.
	for i, name := range []string{"codellama", "CodeLlama-sim", "codellama", "codellama-sim"} {
		resp, err := f.Generate(context.Background(), serve.Request{
			Prompt: prompts[i], Model: name, Options: core.Options{Strategy: "ntp", MaxNewTokens: 32},
		})
		if err != nil {
			t.Fatalf("model %q: %v", name, err)
		}
		if resp.Replica != "b" {
			t.Errorf("model %q served by %q, want b", name, resp.Replica)
		}
	}
	if got := f.Replicas()[0].routed.Load(); got != 0 {
		t.Errorf("codet5p replica served %d codellama requests", got)
	}
	if _, err := f.Generate(context.Background(), serve.Request{Prompt: prompts[0], Model: "gpt4"}); !errors.Is(err, serve.ErrUnknownModel) {
		t.Errorf("unknown model err=%v, want ErrUnknownModel", err)
	}
	if got := f.Metrics().UnknownModel; got != 1 {
		t.Errorf("unknown_model=%d, want 1", got)
	}
}

// TestReplicaDefaultStrategy: a replica configured with its own
// default strategy substitutes it for requests that named nothing, and
// never overrides an explicit choice.
func TestReplicaDefaultStrategy(t *testing.T) {
	_, prompts := fixture(t)
	f, err := New([]ReplicaSpec{
		{Model: fixNTP, Engine: serve.Config{Workers: 1, CacheSize: -1}, DefaultStrategy: "prompt-lookup"},
	}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// No explicit choice: the replica default applies.
	resp, err := f.Generate(context.Background(), serve.Request{
		Prompt: prompts[0], Options: core.Options{Mode: core.ModeOurs, MaxNewTokens: 32}, NoExplicitStrategy: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Strategy != "PromptLookup" {
		t.Errorf("defaulted request decoded with %q, want PromptLookup", resp.Strategy)
	}
	// Explicit choice: untouched.
	resp, err = f.Generate(context.Background(), serve.Request{
		Prompt: prompts[0], Options: core.Options{Strategy: "ntp", MaxNewTokens: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Strategy != "NTP" {
		t.Errorf("explicit request decoded with %q, want NTP", resp.Strategy)
	}
	// An unknown default is a construction error, not a decode-time one.
	if _, err := New([]ReplicaSpec{{Model: fixNTP, DefaultStrategy: "warp"}}, Config{}); err == nil {
		t.Error("unknown DefaultStrategy accepted at construction")
	}
}

// TestMixedPriorityLoadAccounted is the acceptance scenario: a
// 4-replica fleet under concurrent mixed-priority fail-fast load (tiny
// queues, priority shedding active) must account for every request —
// each one either succeeds or returns an explicit shed/backpressure
// error carrying a Retry-After hint. Nothing may vanish. Run with
// -race in CI.
func TestMixedPriorityLoadAccounted(t *testing.T) {
	_, prompts := fixture(t)
	f := newFleet(t, 4, nil, []ShedPolicy{PriorityPolicy{}},
		serve.Config{Workers: 1, QueueSize: 2, BatchSize: 1, CacheSize: -1})

	const clients = 32
	priorities := []serve.Priority{serve.PriorityHigh, serve.PriorityNormal, serve.PriorityLow}
	type outcome struct {
		ok   bool
		err  error
		resp *serve.Response
	}
	outcomes := make([]outcome, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			resp, err := f.TryGenerate(context.Background(), serve.Request{
				Prompt:   prompts[c%len(prompts)],
				Options:  testOptions(int64(c)),
				Priority: priorities[c%len(priorities)],
			})
			outcomes[c] = outcome{ok: err == nil, err: err, resp: resp}
		}(c)
	}
	wg.Wait()

	served, shed, rejected := 0, 0, 0
	for c, o := range outcomes {
		switch {
		case o.ok:
			if o.resp == nil || o.resp.Result == nil || o.resp.Result.Text == "" {
				t.Errorf("client %d: success without a result", c)
			}
			served++
		default:
			var se *serve.ShedError
			switch {
			case errors.As(o.err, &se):
				if se.RetryAfterSeconds() < 1 {
					t.Errorf("client %d: shed without a Retry-After hint: %v", c, o.err)
				}
				shed++
			case errors.Is(o.err, serve.ErrQueueFull):
				rejected++
			default:
				t.Errorf("client %d: unexplained failure: %v", c, o.err)
			}
		}
	}
	if served+shed+rejected != clients {
		t.Fatalf("accounting leak: served=%d shed=%d rejected=%d of %d", served, shed, rejected, clients)
	}
	if served == 0 {
		t.Error("no request served at all")
	}
	fm := f.Metrics()
	if fm.Shed != uint64(shed) {
		t.Errorf("fleet shed=%d, clients saw %d", fm.Shed, shed)
	}
	if shed > 0 {
		if fm.ShedByPolicy["priority"] != uint64(shed) {
			t.Errorf("shed_by_policy[priority]=%d, want %d", fm.ShedByPolicy["priority"], shed)
		}
		if fm.ShedByPriority["high"] > 0 {
			t.Errorf("high-priority requests shed by the priority policy: %v", fm.ShedByPriority)
		}
	}
}

// TestQueueWaitVisible: queue-wait time (a satellite of the fleet PR)
// accumulates in engine metrics and aggregates across the fleet.
func TestQueueWaitVisible(t *testing.T) {
	_, prompts := fixture(t)
	f := newFleet(t, 2, nil, nil, serve.Config{Workers: 1, CacheSize: -1})
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			_, _ = f.Generate(context.Background(), serve.Request{Prompt: prompts[c%4], Options: testOptions(int64(c))})
		}(c)
	}
	wg.Wait()
	fm := f.Metrics()
	if fm.Fleet.QueueWaitSeconds <= 0 {
		t.Errorf("queue wait sum %f, want > 0", fm.Fleet.QueueWaitSeconds)
	}
	if fm.Fleet.QueueWaitMaxSeconds <= 0 || fm.Fleet.QueueWaitMaxSeconds > fm.Fleet.QueueWaitSeconds {
		t.Errorf("queue wait max %f out of range (sum %f)", fm.Fleet.QueueWaitMaxSeconds, fm.Fleet.QueueWaitSeconds)
	}
}

// TestRoundRobinSpreads sanity-checks the comparison router.
func TestRoundRobinSpreads(t *testing.T) {
	_, prompts := fixture(t)
	f := newFleet(t, 3, &roundRobinRouter{}, nil, serve.Config{Workers: 1, CacheSize: -1})
	for i := 0; i < 6; i++ {
		if _, err := f.Generate(context.Background(), serve.Request{Prompt: prompts[0], Options: testOptions(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range f.Replicas() {
		if got := r.routed.Load(); got != 2 {
			t.Errorf("replica %s routed %d, want 2", r.Name(), got)
		}
	}
}

// TestBatchRoutesAndReassembles: fleet batches split per replica and
// come back index-aligned.
func TestBatchRoutesAndReassembles(t *testing.T) {
	m, prompts := fixture(t)
	f := newFleet(t, 3, nil, nil, serve.Config{Workers: 2, CacheSize: -1})
	reqs := make([]serve.Request, 12)
	for i := range reqs {
		reqs[i] = serve.Request{Prompt: prompts[i%6], Options: testOptions(int64(i))}
	}
	resps := f.GenerateBatch(context.Background(), reqs)
	dec := core.NewDecoder(m)
	for i, resp := range resps {
		if resp.Err != nil {
			t.Fatalf("item %d: %v", i, resp.Err)
		}
		direct := dec.Generate(reqs[i].Prompt, reqs[i].Options)
		if resp.Result.Text != direct.Text {
			t.Errorf("item %d diverges from direct decode", i)
		}
	}
	var routed uint64
	for _, r := range f.Replicas() {
		routed += r.routed.Load()
	}
	if routed != 12 {
		t.Errorf("routed %d, want 12", routed)
	}
}

// TestBatchLoadVisibleToRouter: items earlier in one batch must raise
// the load later items are routed by — otherwise a load-aware router
// sees an idle fleet for every item and concentrates the whole batch
// on one replica. With inflight counted at routing time, least-loaded
// splits an idle fleet's batch evenly.
func TestBatchLoadVisibleToRouter(t *testing.T) {
	_, prompts := fixture(t)
	f := newFleet(t, 3, leastLoadedRouter{}, nil, serve.Config{Workers: 2, CacheSize: -1})
	reqs := make([]serve.Request, 12)
	for i := range reqs {
		reqs[i] = serve.Request{Prompt: prompts[i%6], Options: testOptions(int64(i))}
	}
	for i, resp := range f.GenerateBatch(context.Background(), reqs) {
		if resp.Err != nil {
			t.Fatalf("item %d: %v", i, resp.Err)
		}
	}
	for _, r := range f.Replicas() {
		if got := r.routed.Load(); got != 4 {
			t.Errorf("replica %s routed %d of 12, want an even 4", r.Name(), got)
		}
	}
}

// TestBudgetPolicyStructLiteral: the exported fields invite literal
// construction, which must behave like NewBudgetPolicy instead of
// panicking on the nil bucket map / clock.
func TestBudgetPolicyStructLiteral(t *testing.T) {
	p := &BudgetPolicy{TokensPerSec: 100, Burst: 150}
	req := serve.Request{Client: "lit", Options: core.Options{MaxNewTokens: 100}}
	if err := p.Admit(context.Background(), req, Load{}); err != nil {
		t.Fatalf("first literal-policy admission failed: %v", err)
	}
	err := p.Admit(context.Background(), req, Load{})
	var se *serve.ShedError
	if !errors.As(err, &se) || se.Policy != "budget" {
		t.Fatalf("second admission: err=%v, want budget shed", err)
	}
}

func TestNewRouterNames(t *testing.T) {
	for _, name := range []string{"", "prefix-affinity", "least-loaded", "round-robin", "random"} {
		if _, err := NewRouter(name); err != nil {
			t.Errorf("NewRouter(%q): %v", name, err)
		}
	}
	if _, err := NewRouter("warp"); err == nil {
		t.Error("unknown router accepted")
	}
}

func TestParsePolicies(t *testing.T) {
	ps, err := ParsePolicies("deadline,priority,budget", 0, 0)
	if err != nil || len(ps) != 3 {
		t.Fatalf("chain parse: %v (%d policies)", err, len(ps))
	}
	wantNames := []string{"deadline", "priority", "budget"}
	for i, p := range ps {
		if p.Name() != wantNames[i] {
			t.Errorf("policy %d = %q, want %q", i, p.Name(), wantNames[i])
		}
	}
	if ps, err := ParsePolicies("none", 0, 0); err != nil || ps != nil {
		t.Errorf("none: %v %v", ps, err)
	}
	if _, err := ParsePolicies("warp", 0, 0); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestFleetConstructionErrors(t *testing.T) {
	m, _ := fixture(t)
	if _, err := New(nil, Config{}); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := New([]ReplicaSpec{{Model: nil}}, Config{}); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := New([]ReplicaSpec{{Model: m, Engine: serve.Config{
		Admit: func(context.Context, serve.Request) error { return nil },
	}}}, Config{}); err == nil {
		t.Error("caller-owned Admit hook accepted")
	}
}

func TestShedErrorRendering(t *testing.T) {
	se := &serve.ShedError{Policy: "budget", Reason: "over budget", RetryAfter: 1500 * time.Millisecond}
	if se.RetryAfterSeconds() != 2 {
		t.Errorf("RetryAfterSeconds=%d, want 2 (ceil)", se.RetryAfterSeconds())
	}
	if (&serve.ShedError{}).RetryAfterSeconds() != 1 {
		t.Error("zero RetryAfter must floor to 1s")
	}
	if msg := se.Error(); msg == "" || !errors.As(error(se), new(*serve.ShedError)) {
		t.Errorf("ShedError not error-shaped: %q", msg)
	}
	_ = fmt.Sprintf("%v", se)
}
