package cluster

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/serve"
)

// TestFleetAggregatesTreeMetrics pins the fleet roll-up of the
// tree-drafting observability: the acceptance-depth histogram and the
// node-budget counters sum element-for-element across replicas, the
// utilization recomputes over the sums, and the new families appear in
// the fleet's Prometheus exposition.
func TestFleetAggregatesTreeMetrics(t *testing.T) {
	_, prompts := fixture(t)
	// Round-robin spreads the decodes so more than one replica holds
	// histogram mass — otherwise the sum check proves nothing.
	f := newFleet(t, 2, &roundRobinRouter{}, nil, serve.Config{Workers: 1, CacheSize: -1})
	for i := 0; i < 6; i++ {
		req := serve.Request{
			Prompt:  prompts[i],
			Options: core.Options{Strategy: "ours-tree", MaxNewTokens: 24, Seed: int64(i)},
		}
		if resp, err := f.Generate(context.Background(), req); err != nil || resp.Err != nil {
			t.Fatalf("request %d: %v / %v", i, err, resp.Err)
		}
	}

	fm := f.Metrics()
	if len(fm.Fleet.AcceptDepthHist) != serve.AcceptDepthBuckets {
		t.Fatalf("fleet histogram has %d buckets, want %d", len(fm.Fleet.AcceptDepthHist), serve.AcceptDepthBuckets)
	}
	var nodes, budget uint64
	sum := make([]uint64, serve.AcceptDepthBuckets)
	replicasWithMass := 0
	for _, r := range fm.PerReplica {
		var mass uint64
		for i, v := range r.Engine.AcceptDepthHist {
			sum[i] += v
			mass += v
		}
		if mass > 0 {
			replicasWithMass++
		}
		nodes += r.Engine.TreeNodes
		budget += r.Engine.TreeBudget
	}
	if replicasWithMass < 2 {
		t.Fatalf("only %d replicas decoded; aggregation untested", replicasWithMass)
	}
	for i := range sum {
		if fm.Fleet.AcceptDepthHist[i] != sum[i] {
			t.Fatalf("fleet bucket %d = %d, per-replica sum %d", i, fm.Fleet.AcceptDepthHist[i], sum[i])
		}
	}
	if fm.Fleet.TreeNodes != nodes || fm.Fleet.TreeBudget != budget {
		t.Fatalf("fleet tree totals %d/%d, per-replica sums %d/%d",
			fm.Fleet.TreeNodes, fm.Fleet.TreeBudget, nodes, budget)
	}
	if budget == 0 {
		t.Fatal("no tree budget accounted across the fleet")
	}
	if want := float64(nodes) / float64(budget); fm.Fleet.TreeBudgetUtilization != want {
		t.Fatalf("fleet utilization %f, want %f (recomputed over sums)", fm.Fleet.TreeBudgetUtilization, want)
	}
	if st := fm.Fleet.PerStrategy["OursTree"]; st.TreeNodes != nodes || st.TreeBudget != budget {
		t.Fatalf("per-strategy aggregate %d/%d, want %d/%d", st.TreeNodes, st.TreeBudget, nodes, budget)
	}

	var sb strings.Builder
	f.WritePrometheusTo(&sb, 1)
	body := sb.String()
	for _, want := range []string{
		`vgend_accept_depth_total{depth="1"} `,
		"vgend_tree_nodes_total ",
		"vgend_tree_budget_utilization ",
		`vgend_strategy_tree_nodes_total{strategy="OursTree"} `,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("fleet exposition missing %q", want)
		}
	}
}
