package cluster

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/serve"
)

// ReplicaMetrics is one replica's slice of a fleet snapshot.
type ReplicaMetrics struct {
	Name   string `json:"name"`
	Model  string `json:"model"`
	Scheme string `json:"scheme"`
	// DefaultStrategy is the replica's substitution for requests that
	// named no strategy (empty = fleet default).
	DefaultStrategy string `json:"default_strategy,omitempty"`
	// Routed counts requests the router sent here; Inflight is how many
	// of them are not yet answered; Stolen counts requests served here
	// that were routed elsewhere (work stealing).
	Routed   uint64 `json:"routed"`
	Inflight int64  `json:"inflight"`
	Stolen   uint64 `json:"stolen"`
	// State is the lifecycle state ("active" or "draining");
	// BreakerState is the circuit state ("closed", "open",
	// "half-open") and BreakerOpens counts its trips.
	State        string `json:"state"`
	BreakerState string `json:"breaker_state"`
	BreakerOpens uint64 `json:"breaker_opens"`
	// Engine is the replica engine's own snapshot.
	Engine serve.Metrics `json:"engine"`
}

// Metrics is a point-in-time fleet snapshot: per-replica detail plus
// fleet-wide aggregates.
type Metrics struct {
	Router   string `json:"router"`
	Replicas int    `json:"replicas"`
	// Requests counts fleet submissions (before routing/admission).
	Requests uint64 `json:"requests"`
	// Shed* count admission drops; UnknownModel counts routing failures.
	Shed           uint64            `json:"shed"`
	ShedByPolicy   map[string]uint64 `json:"shed_by_policy"`
	ShedByPriority map[string]uint64 `json:"shed_by_priority"`
	UnknownModel   uint64            `json:"unknown_model"`
	// AffinityPicks/SpillPicks split prefix-affinity routing decisions
	// (zero for other routers).
	AffinityPicks uint64 `json:"affinity_picks"`
	SpillPicks    uint64 `json:"spill_picks"`
	// MeanDecodeMS is the decode-time EWMA admission math runs on.
	MeanDecodeMS float64 `json:"mean_decode_ms"`
	// Resilience counters: hedges launched/won, failovers to a sibling
	// after a fault, requests served by a non-routed replica (steals),
	// drains started and model swaps completed.
	Hedges    uint64 `json:"hedges"`
	HedgeWins uint64 `json:"hedge_wins"`
	Failovers uint64 `json:"failovers"`
	Steals    uint64 `json:"steals"`
	Drains    uint64 `json:"drains"`
	Swaps     uint64 `json:"swaps"`
	// Autoscaler actions and bounds (bounds zero when autoscaling is
	// off).
	ScaleUps     uint64 `json:"scale_ups"`
	ScaleDowns   uint64 `json:"scale_downs"`
	AutoscaleMin int    `json:"autoscale_min,omitempty"`
	AutoscaleMax int    `json:"autoscale_max,omitempty"`
	// Fleet aggregates every replica engine's counters (rates
	// recomputed over the sums).
	Fleet serve.Metrics `json:"fleet"`
	// PerReplica lists each member in fleet order.
	PerReplica []ReplicaMetrics `json:"per_replica"`
}

// routerStats is implemented by routers that split their decisions
// (prefix affinity's affine vs spill counters).
type routerStats interface {
	Stats() (affine, spill uint64)
}

// Metrics snapshots the fleet.
func (f *Fleet) Metrics() Metrics {
	replicas := f.Replicas()
	m := Metrics{
		Router:         f.router.Name(),
		Replicas:       len(replicas),
		ShedByPolicy:   map[string]uint64{},
		ShedByPriority: map[string]uint64{},
		Hedges:         f.elastic.hedges.Load(),
		HedgeWins:      f.elastic.hedgeWins.Load(),
		Failovers:      f.elastic.failovers.Load(),
		Steals:         f.elastic.steals.Load(),
		Drains:         f.elastic.drains.Load(),
		Swaps:          f.elastic.swaps.Load(),
		ScaleUps:       f.elastic.scaleUps.Load(),
		ScaleDowns:     f.elastic.scaleDowns.Load(),
	}
	m.AutoscaleMin, m.AutoscaleMax = f.AutoscaleBounds()
	f.st.mu.Lock()
	m.Requests = f.st.requests
	m.UnknownModel = f.st.unknownModel
	m.MeanDecodeMS = f.st.meanDecodeMS
	for k, v := range f.st.shedByPolicy {
		m.ShedByPolicy[k] = v
		m.Shed += v
	}
	for k, v := range f.st.shedByPriority {
		m.ShedByPriority[k] = v
	}
	f.st.mu.Unlock()
	if rs, ok := f.router.(routerStats); ok {
		m.AffinityPicks, m.SpillPicks = rs.Stats()
	}
	engines := make([]serve.Metrics, 0, len(replicas))
	for _, r := range replicas {
		em := r.Engine().Metrics()
		engines = append(engines, em)
		state := "active"
		if r.Draining() {
			state = "draining"
		}
		bst, opens := r.breaker.snapshot()
		m.PerReplica = append(m.PerReplica, ReplicaMetrics{
			Name:            r.name,
			Model:           r.ModelName(),
			Scheme:          r.schemeName(),
			DefaultStrategy: r.defaultStrategy,
			Routed:          r.routed.Load(),
			Inflight:        r.inflight.Load(),
			Stolen:          r.stolen.Load(),
			State:           state,
			BreakerState:    bst.String(),
			BreakerOpens:    opens,
			Engine:          em,
		})
	}
	m.Fleet = aggregate(engines)
	return m
}

// aggregate folds per-replica engine snapshots into one fleet-wide
// engine-shaped snapshot: counters sum, populations sum, and the
// derived rates are recomputed over the sums. Two means are only
// recoverable as weighted combinations of exposed fields —
// MeanAccepted weighted by steps, TokensPerSecSim via the implied
// simulated seconds — which is exactly how the per-engine values were
// derived in the first place.
func aggregate(ms []serve.Metrics) serve.Metrics {
	var a serve.Metrics
	a.PerStrategy = map[string]serve.StrategyMetrics{}
	var steps, accepted, simSeconds, sweepOcc float64
	stratSteps := map[string]float64{}
	stratAccepted := map[string]float64{}
	stratSimSeconds := map[string]float64{}
	for _, m := range ms {
		a.Requests += m.Requests
		a.Completed += m.Completed
		a.Canceled += m.Canceled
		a.Failed += m.Failed
		a.Rejected += m.Rejected
		a.Shed += m.Shed
		a.QueueWaitSeconds += m.QueueWaitSeconds
		if m.QueueWaitMaxSeconds > a.QueueWaitMaxSeconds {
			a.QueueWaitMaxSeconds = m.QueueWaitMaxSeconds
		}
		a.CacheHits += m.CacheHits
		a.CacheMisses += m.CacheMisses
		a.CacheEntries += m.CacheEntries
		a.DedupHits += m.DedupHits
		a.Inflight += m.Inflight
		a.PrefixCacheHits += m.PrefixCacheHits
		a.PrefixCachePartialHits += m.PrefixCachePartialHits
		a.PrefixCacheMisses += m.PrefixCacheMisses
		a.PrefixCacheTokensSaved += m.PrefixCacheTokensSaved
		a.PrefixCacheEntries += m.PrefixCacheEntries
		a.Batches += m.Batches
		a.QueueDepth += m.QueueDepth
		a.Workers += m.Workers
		// Scheduler identity: uniform fleets report their mode, mixed
		// fleets say so instead of pretending one replica speaks for all.
		switch {
		case a.Scheduler == "":
			a.Scheduler = m.Scheduler
		case a.Scheduler != m.Scheduler:
			a.Scheduler = "mixed"
		}
		// Adapt mode aggregates like Scheduler: uniform fleets report
		// the mode, mixed fleets say so. Counters sum; the ladder rung
		// and smoothed signals report the hottest replica (a fleet is
		// as degraded as its most-loaded member).
		switch {
		case a.Adapt == "":
			a.Adapt = m.Adapt
		case a.Adapt != m.Adapt:
			a.Adapt = "mixed"
		}
		if m.AdaptLevel > a.AdaptLevel {
			a.AdaptLevel = m.AdaptLevel
			a.AdaptLevelName = m.AdaptLevelName
		}
		if m.AdaptOccupancy > a.AdaptOccupancy {
			a.AdaptOccupancy = m.AdaptOccupancy
		}
		if m.AdaptQueueFrac > a.AdaptQueueFrac {
			a.AdaptQueueFrac = m.AdaptQueueFrac
		}
		if m.AdaptQueueWaitMS > a.AdaptQueueWaitMS {
			a.AdaptQueueWaitMS = m.AdaptQueueWaitMS
		}
		a.AdaptDecisions += m.AdaptDecisions
		a.AdaptReroutes += m.AdaptReroutes
		a.AdaptBudgetResizes += m.AdaptBudgetResizes
		a.AdaptDowngrades += m.AdaptDowngrades
		a.AdaptExplorations += m.AdaptExplorations
		a.AdaptLevelChanges += m.AdaptLevelChanges
		a.AdaptShadowed += m.AdaptShadowed
		a.SchedMaxBatch += m.SchedMaxBatch
		a.SchedRunning += m.SchedRunning
		a.SchedParked += m.SchedParked
		a.Sweeps += m.Sweeps
		a.Preemptions += m.Preemptions
		a.Resumes += m.Resumes
		sweepOcc += m.MeanSweepOccupancy * float64(m.Sweeps)
		a.PrefixCachePinnedPages += m.PrefixCachePinnedPages
		a.PrefixCachePinnedBytes += m.PrefixCachePinnedBytes
		a.PrefixCacheLeases += m.PrefixCacheLeases
		a.CleanTokens += m.CleanTokens
		a.Steps += m.Steps
		a.WallSeconds += m.WallSeconds
		a.TreeNodes += m.TreeNodes
		a.TreeBudget += m.TreeBudget
		a.GrammarPrunedNodes += m.GrammarPrunedNodes
		a.GrammarDraftTokens += m.GrammarDraftTokens
		if len(m.AcceptDepthHist) > 0 {
			if len(a.AcceptDepthHist) < len(m.AcceptDepthHist) {
				grown := make([]uint64, len(m.AcceptDepthHist))
				copy(grown, a.AcceptDepthHist)
				a.AcceptDepthHist = grown
			}
			for i, v := range m.AcceptDepthHist {
				a.AcceptDepthHist[i] += v
			}
		}
		a.MeanBatchSize += m.MeanBatchSize * float64(m.Batches)
		steps += float64(m.Steps)
		accepted += m.MeanAccepted * float64(m.Steps)
		if m.TokensPerSecSim > 0 {
			simSeconds += float64(m.CleanTokens) / m.TokensPerSecSim
		}
		for name, sm := range m.PerStrategy {
			agg := a.PerStrategy[name]
			agg.Requests += sm.Requests
			agg.Completed += sm.Completed
			agg.CacheHits += sm.CacheHits
			agg.DedupHits += sm.DedupHits
			agg.TreeNodes += sm.TreeNodes
			agg.TreeBudget += sm.TreeBudget
			agg.GrammarPrunedNodes += sm.GrammarPrunedNodes
			agg.GrammarDraftTokens += sm.GrammarDraftTokens
			if len(sm.AcceptDepthHist) > 0 {
				if len(agg.AcceptDepthHist) < len(sm.AcceptDepthHist) {
					grown := make([]uint64, len(sm.AcceptDepthHist))
					copy(grown, agg.AcceptDepthHist)
					agg.AcceptDepthHist = grown
				}
				for i, v := range sm.AcceptDepthHist {
					agg.AcceptDepthHist[i] += v
				}
			}
			// Recover this engine's per-strategy clean tokens from its
			// simulated speed, as above.
			if sm.TokensPerSecSim > 0 && sm.MeanAccepted > 0 {
				// steps are not exposed per strategy; weight by completed
				// decodes instead (each decode contributes one mean).
				w := float64(sm.Completed)
				stratSteps[name] += w
				stratAccepted[name] += sm.MeanAccepted * w
				stratSimSeconds[name] += w / sm.TokensPerSecSim
			}
			a.PerStrategy[name] = agg
		}
	}
	if lookups := a.CacheHits + a.CacheMisses; lookups > 0 {
		a.CacheHitRate = float64(a.CacheHits) / float64(lookups)
	}
	if lookups := a.PrefixCacheHits + a.PrefixCachePartialHits + a.PrefixCacheMisses; lookups > 0 {
		a.PrefixCacheHitRate = float64(a.PrefixCacheHits+a.PrefixCachePartialHits) / float64(lookups)
	}
	if a.Batches > 0 {
		a.MeanBatchSize /= float64(a.Batches)
	} else {
		a.MeanBatchSize = 0
	}
	if steps > 0 {
		a.MeanAccepted = accepted / steps
	}
	if a.SchedMaxBatch > 0 {
		a.SchedOccupancy = float64(a.SchedRunning) / float64(a.SchedMaxBatch)
	}
	if a.Sweeps > 0 {
		a.MeanSweepOccupancy = sweepOcc / float64(a.Sweeps)
	}
	if a.WallSeconds > 0 {
		a.TokensPerSecWall = float64(a.CleanTokens) / a.WallSeconds
	}
	if simSeconds > 0 {
		a.TokensPerSecSim = float64(a.CleanTokens) / simSeconds
	}
	if a.TreeBudget > 0 {
		a.TreeBudgetUtilization = float64(a.TreeNodes) / float64(a.TreeBudget)
	}
	for name, agg := range a.PerStrategy {
		if w := stratSteps[name]; w > 0 {
			agg.MeanAccepted = stratAccepted[name] / w
		}
		// Per-strategy simulated speed: completed-weighted harmonic
		// combination (approximate — per-strategy token counts are not
		// exposed — but consistent across replicas of similar traffic).
		if s := stratSimSeconds[name]; s > 0 {
			agg.TokensPerSecSim = stratSteps[name] / s
		}
		if agg.TreeBudget > 0 {
			agg.TreeBudgetUtilization = float64(agg.TreeNodes) / float64(agg.TreeBudget)
		}
		a.PerStrategy[name] = agg
	}
	a.PerMode = a.PerStrategy
	return a
}

// Healthz implements serve.Backend: fleet liveness with per-replica
// identity (the uptime key is added by the handler).
func (f *Fleet) Healthz() map[string]any {
	members := f.Replicas()
	replicas := make([]map[string]any, 0, len(members))
	for _, r := range members {
		eng := r.Engine()
		state := "active"
		if r.Draining() {
			state = "draining"
		}
		bst, _ := r.breaker.snapshot()
		replicas = append(replicas, map[string]any{
			"name":        r.name,
			"model":       r.ModelName(),
			"scheme":      r.schemeName(),
			"workers":     eng.Workers(),
			"queue_depth": eng.QueueDepth(),
			"state":       state,
			"breaker":     bst.String(),
		})
	}
	seen := map[string]bool{}
	var models []string
	for _, r := range members {
		name := r.ModelName()
		if !seen[name] {
			seen[name] = true
			models = append(models, name)
		}
	}
	sort.Strings(models)
	return map[string]any{
		"status":   "ok",
		"router":   f.router.Name(),
		"models":   models,
		"replicas": replicas,
	}
}

// MetricsBody implements serve.Backend: the JSON /metrics body (sans
// uptime).
func (f *Fleet) MetricsBody() map[string]any {
	return map[string]any{"cluster": f.Metrics()}
}

// WritePrometheusTo implements serve.Backend: the fleet-wide aggregate
// in the engine's exposition shape (so single-engine dashboards keep
// working against a fleet), followed by fleet-only families labelled
// per replica / policy / priority.
func (f *Fleet) WritePrometheusTo(w io.Writer, uptimeS float64) {
	m := f.Metrics()
	modelNames := ""
	for i, r := range m.PerReplica {
		if i > 0 {
			modelNames += ","
		}
		modelNames += r.Model
	}
	serve.WriteEnginePrometheus(w, m.Fleet, uptimeS, modelNames)

	g := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP vgend_fleet_%s %s\n# TYPE vgend_fleet_%s gauge\nvgend_fleet_%s %g\n", name, help, name, name, v)
	}
	c := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP vgend_fleet_%s %s\n# TYPE vgend_fleet_%s counter\nvgend_fleet_%s %d\n", name, help, name, name, v)
	}
	fmt.Fprintf(w, "# HELP vgend_fleet_info Fleet identity (value is always 1).\n# TYPE vgend_fleet_info gauge\nvgend_fleet_info{router=%q} 1\n", m.Router)
	g("replicas", "Fleet replica count.", float64(m.Replicas))
	c("requests_total", "Fleet submissions before routing/admission.", m.Requests)
	c("shed_total", "Admission-control drops across all policies.", m.Shed)
	c("unknown_model_total", "Requests naming a model no replica serves.", m.UnknownModel)
	c("affinity_picks_total", "Prefix-affinity picks kept on the affine replica.", m.AffinityPicks)
	c("spill_picks_total", "Prefix-affinity picks spilled to least-loaded.", m.SpillPicks)
	g("mean_decode_ms", "EWMA of decode wall time (admission estimate).", m.MeanDecodeMS)
	// Resilience families.
	c("hedges_total", "Hedged attempts launched against a second replica.", m.Hedges)
	c("hedge_wins_total", "Hedges that answered before the primary replica.", m.HedgeWins)
	c("failovers_total", "Retries on a sibling after a replica fault.", m.Failovers)
	c("steals_total", "Requests served by a non-routed replica (work stealing).", m.Steals)
	c("drains_total", "Replica drains started.", m.Drains)
	c("swaps_total", "Rolling model swaps completed.", m.Swaps)
	// Autoscaler family (vgend_fleet_scale_*).
	c("scale_ups_total", "Replicas added by the autoscaler.", m.ScaleUps)
	c("scale_downs_total", "Replicas removed by the autoscaler.", m.ScaleDowns)
	g("scale_replicas", "Current fleet size as the autoscaler sees it.", float64(m.Replicas))
	if m.AutoscaleMax > 0 {
		g("scale_min_replicas", "Autoscaler fleet-size floor.", float64(m.AutoscaleMin))
		g("scale_max_replicas", "Autoscaler fleet-size ceiling.", float64(m.AutoscaleMax))
	}

	labelled := func(name, help, labelKey string, vals map[string]uint64) {
		if len(vals) == 0 {
			return
		}
		keys := make([]string, 0, len(vals))
		for k := range vals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(w, "# HELP vgend_fleet_%s %s\n# TYPE vgend_fleet_%s counter\n", name, help, name)
		for _, k := range keys {
			fmt.Fprintf(w, "vgend_fleet_%s{%s=%q} %d\n", name, labelKey, k, vals[k])
		}
	}
	labelled("shed_by_policy_total", "Admission drops per shedding policy.", "policy", m.ShedByPolicy)
	labelled("shed_by_priority_total", "Admission drops per priority class.", "priority", m.ShedByPriority)

	fmt.Fprintf(w, "# HELP vgend_replica_routed_total Requests routed per replica.\n# TYPE vgend_replica_routed_total counter\n")
	for _, r := range m.PerReplica {
		fmt.Fprintf(w, "vgend_replica_routed_total{replica=%q,model=%q} %d\n", r.Name, r.Model, r.Routed)
	}
	// Breaker and lifecycle families (vgend_replica_breaker_*).
	fmt.Fprintf(w, "# HELP vgend_replica_breaker_state Circuit state per replica (0 closed, 1 open, 2 half-open).\n# TYPE vgend_replica_breaker_state gauge\n")
	for _, r := range m.PerReplica {
		v := 0
		switch r.BreakerState {
		case "open":
			v = 1
		case "half-open":
			v = 2
		}
		fmt.Fprintf(w, "vgend_replica_breaker_state{replica=%q,state=%q} %d\n", r.Name, r.BreakerState, v)
	}
	fmt.Fprintf(w, "# HELP vgend_replica_breaker_opens_total Circuit trips per replica.\n# TYPE vgend_replica_breaker_opens_total counter\n")
	for _, r := range m.PerReplica {
		fmt.Fprintf(w, "vgend_replica_breaker_opens_total{replica=%q} %d\n", r.Name, r.BreakerOpens)
	}
	fmt.Fprintf(w, "# HELP vgend_replica_draining Replica lifecycle state (1 = draining).\n# TYPE vgend_replica_draining gauge\n")
	for _, r := range m.PerReplica {
		v := 0
		if r.State == "draining" {
			v = 1
		}
		fmt.Fprintf(w, "vgend_replica_draining{replica=%q} %d\n", r.Name, v)
	}
	fmt.Fprintf(w, "# HELP vgend_replica_stolen_total Requests served here that were routed elsewhere.\n# TYPE vgend_replica_stolen_total counter\n")
	for _, r := range m.PerReplica {
		fmt.Fprintf(w, "vgend_replica_stolen_total{replica=%q} %d\n", r.Name, r.Stolen)
	}
	fmt.Fprintf(w, "# HELP vgend_replica_queue_depth Queued requests per replica.\n# TYPE vgend_replica_queue_depth gauge\n")
	for _, r := range m.PerReplica {
		fmt.Fprintf(w, "vgend_replica_queue_depth{replica=%q} %d\n", r.Name, r.Engine.QueueDepth)
	}
	fmt.Fprintf(w, "# HELP vgend_replica_cache_hit_rate Result-LRU hit rate per replica.\n# TYPE vgend_replica_cache_hit_rate gauge\n")
	for _, r := range m.PerReplica {
		fmt.Fprintf(w, "vgend_replica_cache_hit_rate{replica=%q} %g\n", r.Name, r.Engine.CacheHitRate)
	}
	// The affinity router's concentration payoff is session reuse, and
	// with the prefix trie most of that reuse is partial — so the
	// per-replica rate counts partial hits, not just exact ones.
	fmt.Fprintf(w, "# HELP vgend_replica_prefix_hit_rate Prompt-session reuse rate per replica (exact + partial prefix hits).\n# TYPE vgend_replica_prefix_hit_rate gauge\n")
	for _, r := range m.PerReplica {
		fmt.Fprintf(w, "vgend_replica_prefix_hit_rate{replica=%q} %g\n", r.Name, r.Engine.PrefixCacheHitRate)
	}
	fmt.Fprintf(w, "# HELP vgend_replica_prefix_tokens_saved_total Prompt tokens whose session preparation reuse skipped, per replica.\n# TYPE vgend_replica_prefix_tokens_saved_total counter\n")
	for _, r := range m.PerReplica {
		fmt.Fprintf(w, "vgend_replica_prefix_tokens_saved_total{replica=%q} %d\n", r.Name, r.Engine.PrefixCacheTokensSaved)
	}
	// Continuous-scheduler visibility per replica: where the batch slots
	// are full (hot replicas) and where long decodes are being displaced.
	fmt.Fprintf(w, "# HELP vgend_replica_sched_occupancy Running decodes over batch slots, per replica.\n# TYPE vgend_replica_sched_occupancy gauge\n")
	for _, r := range m.PerReplica {
		fmt.Fprintf(w, "vgend_replica_sched_occupancy{replica=%q,scheduler=%q} %g\n", r.Name, r.Engine.Scheduler, r.Engine.SchedOccupancy)
	}
	fmt.Fprintf(w, "# HELP vgend_replica_sched_preemptions_total Decodes preempted (parked with pages pinned), per replica.\n# TYPE vgend_replica_sched_preemptions_total counter\n")
	for _, r := range m.PerReplica {
		fmt.Fprintf(w, "vgend_replica_sched_preemptions_total{replica=%q} %d\n", r.Name, r.Engine.Preemptions)
	}
	fmt.Fprintf(w, "# HELP vgend_replica_prefix_pinned_pages Session pages pinned by in-flight/parked decode leases, per replica.\n# TYPE vgend_replica_prefix_pinned_pages gauge\n")
	for _, r := range m.PerReplica {
		fmt.Fprintf(w, "vgend_replica_prefix_pinned_pages{replica=%q} %d\n", r.Name, r.Engine.PrefixCachePinnedPages)
	}
	// Adaptive-speculation visibility per replica: which members have
	// degraded their draft budgets and how many decisions each
	// controller has made.
	fmt.Fprintf(w, "# HELP vgend_replica_adapt_level Load-degradation rung per replica (0 tree, 1 linear, 2 nodraft).\n# TYPE vgend_replica_adapt_level gauge\n")
	for _, r := range m.PerReplica {
		fmt.Fprintf(w, "vgend_replica_adapt_level{replica=%q,mode=%q} %d\n", r.Name, r.Engine.Adapt, r.Engine.AdaptLevel)
	}
	fmt.Fprintf(w, "# HELP vgend_replica_adapt_decisions_total Speculation-controller decisions per replica.\n# TYPE vgend_replica_adapt_decisions_total counter\n")
	for _, r := range m.PerReplica {
		fmt.Fprintf(w, "vgend_replica_adapt_decisions_total{replica=%q} %d\n", r.Name, r.Engine.AdaptDecisions)
	}
}
