package cluster

import (
	"context"
	"strings"
	"testing"

	"repro/internal/serve"
)

// TestFleetAggregatesAdaptMetrics pins the fleet roll-up of the
// speculation-controller observability: decision counters sum across
// replicas, the per-strategy accept-depth histograms sum element-wise,
// and the per-replica adapt families appear in the fleet exposition.
func TestFleetAggregatesAdaptMetrics(t *testing.T) {
	_, prompts := fixture(t)
	f := newFleet(t, 2, &roundRobinRouter{}, nil, serve.Config{
		Workers: 1, MaxBatch: 2, CacheSize: -1, NoDedup: true, Adapt: serve.AdaptShadow,
	})
	for i := 0; i < 6; i++ {
		req := serve.Request{Prompt: prompts[i], Options: testOptions(int64(i))}
		if resp, err := f.Generate(context.Background(), req); err != nil || resp.Err != nil {
			t.Fatalf("request %d: %v / %v", i, err, resp.Err)
		}
	}

	fm := f.Metrics()
	if fm.Fleet.Adapt != serve.AdaptShadow {
		t.Fatalf("uniform fleet adapt mode = %q, want %q", fm.Fleet.Adapt, serve.AdaptShadow)
	}
	var decisions, shadowed uint64
	replicasWithDecisions := 0
	for _, r := range fm.PerReplica {
		if r.Engine.AdaptDecisions > 0 {
			replicasWithDecisions++
		}
		decisions += r.Engine.AdaptDecisions
		shadowed += r.Engine.AdaptShadowed
	}
	if replicasWithDecisions < 2 {
		t.Fatalf("only %d replicas decided; aggregation untested", replicasWithDecisions)
	}
	if fm.Fleet.AdaptDecisions != decisions || decisions != 6 {
		t.Fatalf("fleet decisions %d, per-replica sum %d, want 6", fm.Fleet.AdaptDecisions, decisions)
	}
	if fm.Fleet.AdaptShadowed != shadowed || shadowed != decisions {
		t.Fatalf("fleet shadowed %d, want every decision (%d) shadowed", fm.Fleet.AdaptShadowed, decisions)
	}

	// Per-strategy accept-depth histogram: fleet buckets are the
	// element-wise per-replica sums.
	for name, agg := range fm.Fleet.PerStrategy {
		if len(agg.AcceptDepthHist) == 0 {
			t.Fatalf("strategy %s: fleet lost the accept-depth histogram", name)
		}
		sum := make([]uint64, len(agg.AcceptDepthHist))
		for _, r := range fm.PerReplica {
			for i, v := range r.Engine.PerStrategy[name].AcceptDepthHist {
				sum[i] += v
			}
		}
		for i := range sum {
			if sum[i] != agg.AcceptDepthHist[i] {
				t.Fatalf("strategy %s bucket %d: fleet %d, per-replica sum %d", name, i, agg.AcceptDepthHist[i], sum[i])
			}
		}
	}

	var sb strings.Builder
	f.WritePrometheusTo(&sb, 1)
	body := sb.String()
	for _, want := range []string{
		`vgend_adapt_info{mode="shadow"} 1`,
		"vgend_adapt_decisions_total 6",
		`vgend_replica_adapt_level{replica="r0:`,
		`vgend_replica_adapt_decisions_total{replica="r1:`,
		`vgend_strategy_accept_depth_total{strategy="Ours",depth="1"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("fleet exposition missing %q", want)
		}
	}
}

// TestAggregateMixedAdapt pins the identity rule and the
// hottest-replica gauges on synthetic snapshots.
func TestAggregateMixedAdapt(t *testing.T) {
	a := aggregate([]serve.Metrics{
		{Adapt: serve.AdaptOn, AdaptLevel: 1, AdaptLevelName: "linear", AdaptOccupancy: 0.9, AdaptDecisions: 10, AdaptReroutes: 4, AdaptLevelChanges: 2},
		{Adapt: serve.AdaptOff, AdaptLevel: 0, AdaptOccupancy: 0.2},
		{Adapt: serve.AdaptOn, AdaptLevel: 0, AdaptOccupancy: 0.5, AdaptDecisions: 5, AdaptReroutes: 1},
	})
	if a.Adapt != "mixed" {
		t.Fatalf("heterogeneous fleet adapt = %q, want mixed", a.Adapt)
	}
	if a.AdaptLevel != 1 || a.AdaptLevelName != "linear" {
		t.Fatalf("fleet level %d/%q, want hottest replica's 1/linear", a.AdaptLevel, a.AdaptLevelName)
	}
	if a.AdaptOccupancy != 0.9 {
		t.Fatalf("fleet adapt occupancy %f, want max 0.9", a.AdaptOccupancy)
	}
	if a.AdaptDecisions != 15 || a.AdaptReroutes != 5 || a.AdaptLevelChanges != 2 {
		t.Fatalf("adapt sums wrong: %+v", a)
	}
}
