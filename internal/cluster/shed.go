package cluster

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/serve"
)

// Load is the snapshot an admission policy decides on: the routed
// replica's backlog plus fleet-wide aggregates. All quantities are
// read at admission time — policies must tolerate slight staleness
// (counters move while they look).
type Load struct {
	// QueueDepth / QueueCap / Workers / Inflight describe the routed
	// replica: queued requests, queue capacity, decoder workers, and
	// requests currently inside the engine (queued or decoding).
	QueueDepth int
	QueueCap   int
	Workers    int
	Inflight   int
	// FleetQueueDepth and FleetInflight aggregate over every replica.
	FleetQueueDepth int
	FleetInflight   int
	// MeanDecodeMS is the fleet's EWMA of recent decode wall times —
	// the per-request service-time estimate deadline math runs on
	// (zero until the first decode completes).
	MeanDecodeMS float64
}

// estWait estimates how long until the admitting request completes:
// the replica's backlog (Inflight already counts the request itself —
// the fleet increments before submission) served in worker-sized
// waves, at the mean decode time per wave.
func (l Load) estWait() time.Duration {
	if l.MeanDecodeMS <= 0 || l.Workers <= 0 {
		return 0
	}
	backlog := l.Inflight
	if backlog < 1 {
		backlog = 1
	}
	waves := float64(backlog) / float64(l.Workers)
	return time.Duration(waves * l.MeanDecodeMS * float64(time.Millisecond))
}

// ShedPolicy decides whether a routed request may enter its replica's
// queue. A non-nil return must be a *serve.ShedError so the HTTP layer
// can answer 429 + Retry-After; policies run in chain order and the
// first refusal wins.
type ShedPolicy interface {
	// Name is the flag/metrics spelling of the policy.
	Name() string
	// Admit returns nil to accept the request or a *serve.ShedError to
	// drop it.
	Admit(ctx context.Context, req serve.Request, load Load) error
}

// ParsePolicies resolves a comma-separated policy chain ("none",
// "deadline", "priority", "budget", or combinations like
// "deadline,priority"). budgetTPS/budgetBurst parameterize the budget
// policy when it appears.
func ParsePolicies(spec string, budgetTPS, budgetBurst float64) ([]ShedPolicy, error) {
	if spec == "" || spec == "none" {
		return nil, nil
	}
	var out []ShedPolicy
	for _, name := range strings.Split(spec, ",") {
		switch strings.TrimSpace(name) {
		case "deadline":
			out = append(out, DeadlinePolicy{})
		case "priority":
			out = append(out, PriorityPolicy{})
		case "budget":
			out = append(out, NewBudgetPolicy(budgetTPS, budgetBurst))
		case "none", "":
			// explicit no-op entries are allowed in a chain
		default:
			return nil, fmt.Errorf("unknown shed policy %q (want none, deadline, priority or budget)", name)
		}
	}
	return out, nil
}

// retryAfterFor turns a backlog estimate into a client backoff hint
// (floored at one second: sub-second hints round to a meaningless 0 in
// the Retry-After header).
func retryAfterFor(load Load) time.Duration {
	if wait := load.estWait(); wait > time.Second {
		return wait
	}
	return time.Second
}

// DeadlinePolicy sheds requests that cannot meet their own deadline:
// when the context's deadline expires before the estimated queue wait
// elapses, decoding would only produce a result nobody is waiting for.
// Dropping at admission returns the error while the client can still
// act on it and spends zero decode work on the corpse. Requests
// without a deadline are always admitted.
type DeadlinePolicy struct{}

// Name implements ShedPolicy.
func (DeadlinePolicy) Name() string { return "deadline" }

// Admit implements ShedPolicy.
func (DeadlinePolicy) Admit(ctx context.Context, _ serve.Request, load Load) error {
	deadline, ok := ctx.Deadline()
	if !ok {
		return nil
	}
	wait := load.estWait()
	if wait == 0 || time.Now().Add(wait).Before(deadline) {
		return nil
	}
	return &serve.ShedError{
		Policy:     "deadline",
		Reason:     fmt.Sprintf("estimated queue wait %s exceeds the request deadline", wait.Round(time.Millisecond)),
		RetryAfter: retryAfterFor(load),
	}
}

// PriorityPolicy sheds by admission class as the routed replica's
// queue fills: low-priority requests stop being admitted at half
// occupancy, normal ones near saturation, and high-priority requests
// ride until the queue-full backstop itself rejects them. The
// occupancy thresholds leave headroom so the classes above always find
// slots the class below was denied.
type PriorityPolicy struct{}

// Occupancy thresholds (queued / capacity) above which a class sheds.
const (
	priorityLowSheds    = 0.5
	priorityNormalSheds = 0.85
)

// Name implements ShedPolicy.
func (PriorityPolicy) Name() string { return "priority" }

// Admit implements ShedPolicy.
func (PriorityPolicy) Admit(_ context.Context, req serve.Request, load Load) error {
	if load.QueueCap <= 0 {
		return nil
	}
	occupancy := float64(load.QueueDepth) / float64(load.QueueCap)
	limit := 0.0
	switch req.Priority {
	case serve.PriorityLow:
		limit = priorityLowSheds
	case serve.PriorityNormal:
		limit = priorityNormalSheds
	default: // PriorityHigh: only the queue-full backstop sheds it
		return nil
	}
	if occupancy < limit {
		return nil
	}
	return &serve.ShedError{
		Policy:     "priority",
		Reason:     fmt.Sprintf("%s-priority admission suspended at %.0f%% queue occupancy", req.Priority, 100*occupancy),
		RetryAfter: retryAfterFor(load),
	}
}

// BudgetPolicy throttles each client to a sustained token rate with a
// burst allowance — one token bucket per Request.Client, charged at
// admission by the request's token budget (MaxNewTokens, or a default
// when unbounded). It is the fairness policy: one chatty client
// exhausts its own bucket, not the fleet.
type BudgetPolicy struct {
	// TokensPerSec refills each bucket; Burst caps it.
	TokensPerSec float64
	Burst        float64
	// DefaultCost charges requests that set no MaxNewTokens.
	DefaultCost float64

	mu      sync.Mutex
	buckets map[string]*bucket
	now     func() time.Time // injectable clock for tests
}

type bucket struct {
	tokens float64
	last   time.Time
}

// Budget policy defaults: a client may burst three default-cost
// requests, then sustain one per DefaultCost/TokensPerSec seconds.
const (
	defaultBudgetTPS   = 400
	defaultBudgetBurst = 1200
	defaultTokenCost   = 400
)

// NewBudgetPolicy builds a per-client token-budget policy; zero
// arguments select the defaults.
func NewBudgetPolicy(tokensPerSec, burst float64) *BudgetPolicy {
	if tokensPerSec <= 0 {
		tokensPerSec = defaultBudgetTPS
	}
	if burst <= 0 {
		burst = defaultBudgetBurst
	}
	return &BudgetPolicy{
		TokensPerSec: tokensPerSec,
		Burst:        burst,
		DefaultCost:  defaultTokenCost,
		buckets:      map[string]*bucket{},
		now:          time.Now,
	}
}

// Name implements ShedPolicy.
func (p *BudgetPolicy) Name() string { return "budget" }

// Admit implements ShedPolicy.
func (p *BudgetPolicy) Admit(_ context.Context, req serve.Request, _ Load) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	// Lazy defaults so a struct-literal BudgetPolicy (the exported
	// fields invite it) works like a NewBudgetPolicy one instead of
	// panicking on the nil map/clock or dividing by a zero rate.
	if p.TokensPerSec <= 0 {
		p.TokensPerSec = defaultBudgetTPS
	}
	if p.Burst <= 0 {
		p.Burst = defaultBudgetBurst
	}
	if p.DefaultCost <= 0 {
		p.DefaultCost = defaultTokenCost
	}
	if p.buckets == nil {
		p.buckets = map[string]*bucket{}
	}
	if p.now == nil {
		p.now = time.Now
	}
	cost := float64(req.Options.MaxNewTokens)
	if cost <= 0 {
		cost = p.DefaultCost
	}
	now := p.now()
	// Bound the table: a client census beyond this is either a test
	// artifact or an abuse pattern; resetting forgives at worst one
	// burst per client, it never blocks anyone.
	if len(p.buckets) > 8192 {
		p.buckets = map[string]*bucket{}
	}
	b := p.buckets[req.Client]
	if b == nil {
		b = &bucket{tokens: p.Burst, last: now}
		p.buckets[req.Client] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * p.TokensPerSec
	if b.tokens > p.Burst {
		b.tokens = p.Burst
	}
	b.last = now
	if b.tokens >= cost {
		b.tokens -= cost
		return nil
	}
	wait := time.Duration((cost - b.tokens) / p.TokensPerSec * float64(time.Second))
	return &serve.ShedError{
		Policy:     "budget",
		Reason:     fmt.Sprintf("client %q over its token budget (%.0f tokens short)", req.Client, cost-b.tokens),
		RetryAfter: wait,
	}
}
