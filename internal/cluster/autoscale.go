package cluster

import (
	"fmt"
	"sync"
	"time"
)

// The autoscaler grows and shrinks the fleet on the signals the
// cluster already measures: queue-wait time accumulating in the
// replica engines and admission sheds. Like the adapt controller's
// score-gated rungs, every action needs sustained evidence (patience
// ticks) and is followed by a cooldown, so one bursty tick can never
// flap the fleet size.

// AutoscaleConfig tunes the replica autoscaler.
type AutoscaleConfig struct {
	// Enabled turns the autoscaler on.
	Enabled bool
	// Min and Max clamp the fleet size. Min defaults to the configured
	// replica count; Max defaults to 2× Min.
	Min, Max int
	// Interval is the sampling cadence (default 250ms). Zero or
	// negative disables the background ticker — Tick is then driven
	// manually (deterministic tests).
	Interval time.Duration
	// UpLoad is the mean per-replica backlog (queued + inflight) that
	// votes to scale up (default 2× the template's workers).
	UpLoad float64
	// UpPatience ticks of sustained pressure add a replica (default 2);
	// DownPatience ticks of a fully idle fleet remove one (default 8).
	UpPatience, DownPatience int
	// Cooldown ticks after any action during which no further action is
	// taken (default 4) — the hysteresis gap.
	Cooldown int
}

func (c AutoscaleConfig) withDefaults(baseReplicas, workers int) AutoscaleConfig {
	if c.Min <= 0 {
		c.Min = baseReplicas
	}
	if c.Max <= 0 {
		c.Max = 2 * c.Min
	}
	if c.Interval == 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.UpLoad <= 0 {
		if workers < 1 {
			workers = 1
		}
		c.UpLoad = float64(2 * workers)
	}
	if c.UpPatience <= 0 {
		c.UpPatience = 2
	}
	if c.DownPatience <= 0 {
		c.DownPatience = 8
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 4
	}
	return c
}

// autoscaler holds the controller state between ticks.
type autoscaler struct {
	f   *Fleet
	cfg AutoscaleConfig

	mu            sync.Mutex
	upVotes       int
	downVotes     int
	cooldown      int
	lastSheds     uint64
	lastQueueWait float64
}

func newAutoscaler(f *Fleet, cfg AutoscaleConfig) (*autoscaler, error) {
	cfg = cfg.withDefaults(len(f.Replicas()), f.template.Engine.Workers)
	if cfg.Max < cfg.Min {
		return nil, fmt.Errorf("cluster: autoscale max %d < min %d", cfg.Max, cfg.Min)
	}
	if len(f.Replicas()) > cfg.Max {
		return nil, fmt.Errorf("cluster: %d replicas exceed autoscale max %d", len(f.Replicas()), cfg.Max)
	}
	a := &autoscaler{f: f, cfg: cfg, lastSheds: f.shedTotal()}
	if cfg.Interval > 0 {
		f.wg.Add(1)
		go a.loop()
	}
	return a, nil
}

func (a *autoscaler) loop() {
	defer a.f.wg.Done()
	t := time.NewTicker(a.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-a.f.quit:
			return
		case <-t.C:
			a.f.AutoscaleTick()
		}
	}
}

// AutoscaleTick samples the fleet and takes at most one scaling
// action. Exported so tests (and operators driving Interval<=0) can
// step the controller deterministically; a no-op without autoscaling.
func (f *Fleet) AutoscaleTick() {
	if f.auto != nil {
		f.auto.tick()
	}
}

func (a *autoscaler) tick() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.cooldown > 0 {
		a.cooldown--
		return
	}

	reps := a.f.Replicas()
	active := 0
	totalLoad := 0
	queueWait := 0.0
	for _, r := range reps {
		if r.state.Load() == stateActive {
			active++
		}
		totalLoad += r.load()
		queueWait += r.Engine().Metrics().QueueWaitSeconds
	}
	if active == 0 {
		return
	}
	sheds := a.f.shedTotal()
	shedDelta := sheds - a.lastSheds
	a.lastSheds = sheds
	waitDelta := queueWait - a.lastQueueWait
	a.lastQueueWait = queueWait
	perReplica := float64(totalLoad) / float64(active)

	// Pressure: sustained backlog, requests shed, or queue-wait still
	// accumulating. Idle: nothing queued, nothing waiting, nothing shed.
	pressure := perReplica >= a.cfg.UpLoad || shedDelta > 0 ||
		(waitDelta > 0 && perReplica >= a.cfg.UpLoad/2)
	idle := totalLoad == 0 && shedDelta == 0 && waitDelta == 0

	switch {
	case pressure:
		a.upVotes++
		a.downVotes = 0
	case idle:
		a.downVotes++
		a.upVotes = 0
	default:
		a.upVotes = 0
		a.downVotes = 0
	}

	if a.upVotes >= a.cfg.UpPatience && len(reps) < a.cfg.Max {
		if _, err := a.f.addReplica(); err == nil {
			a.upVotes = 0
			a.cooldown = a.cfg.Cooldown
		}
		return
	}
	if a.downVotes >= a.cfg.DownPatience && len(reps) > a.cfg.Min {
		if victim := a.f.scaleDownVictim(); victim != nil {
			a.f.retireReplica(victim)
			a.downVotes = 0
			a.cooldown = a.cfg.Cooldown
		}
	}
}

// AutoscaleBounds reports the configured (min, max) fleet size, or
// (0, 0) when autoscaling is off.
func (f *Fleet) AutoscaleBounds() (int, int) {
	if f.auto == nil {
		return 0, 0
	}
	return f.auto.cfg.Min, f.auto.cfg.Max
}
