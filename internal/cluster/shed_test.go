package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
)

func asShed(t *testing.T, err error) *serve.ShedError {
	t.Helper()
	var se *serve.ShedError
	if !errors.As(err, &se) {
		t.Fatalf("err=%v, want *serve.ShedError", err)
	}
	return se
}

func TestPriorityPolicyThresholds(t *testing.T) {
	p := PriorityPolicy{}
	ctx := context.Background()
	load := func(depth int) Load { return Load{QueueDepth: depth, QueueCap: 100, Workers: 2} }
	cases := []struct {
		prio  serve.Priority
		depth int
		shed  bool
	}{
		{serve.PriorityLow, 49, false},
		{serve.PriorityLow, 50, true},
		{serve.PriorityNormal, 84, false},
		{serve.PriorityNormal, 85, true},
		{serve.PriorityHigh, 99, false}, // only the queue-full backstop sheds high
	}
	for _, tc := range cases {
		err := p.Admit(ctx, serve.Request{Priority: tc.prio}, load(tc.depth))
		if got := err != nil; got != tc.shed {
			t.Errorf("priority %v at depth %d: shed=%v, want %v (%v)", tc.prio, tc.depth, got, tc.shed, err)
		}
		if err != nil {
			if se := asShed(t, err); se.Policy != "priority" || se.RetryAfterSeconds() < 1 {
				t.Errorf("malformed shed error: %+v", se)
			}
		}
	}
}

func TestDeadlinePolicy(t *testing.T) {
	p := DeadlinePolicy{}
	// Backlog of 20 in-flight over 1 worker at 50ms each ≈ 1.05s wait.
	load := Load{QueueDepth: 20, QueueCap: 32, Workers: 1, Inflight: 20, MeanDecodeMS: 50}

	// No deadline: always admitted.
	if err := p.Admit(context.Background(), serve.Request{}, load); err != nil {
		t.Errorf("no-deadline request shed: %v", err)
	}
	// Generous deadline: admitted.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := p.Admit(ctx, serve.Request{}, load); err != nil {
		t.Errorf("meetable deadline shed: %v", err)
	}
	// Hopeless deadline: shed with a useful hint.
	tight, cancel2 := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel2()
	se := asShed(t, p.Admit(tight, serve.Request{}, load))
	if se.Policy != "deadline" || se.RetryAfterSeconds() < 1 {
		t.Errorf("malformed deadline shed: %+v", se)
	}
	// Cold fleet (no decode-time estimate yet): never sheds.
	if err := p.Admit(tight, serve.Request{}, Load{QueueDepth: 20, Workers: 1}); err != nil {
		t.Errorf("cold-estimate request shed: %v", err)
	}
}

func TestBudgetPolicyBucket(t *testing.T) {
	p := NewBudgetPolicy(100, 300) // 100 tok/s, 300 burst
	now := time.Unix(0, 0)
	p.now = func() time.Time { return now }
	ctx := context.Background()
	req := func(client string, maxTokens int) serve.Request {
		return serve.Request{Client: client, Options: core.Options{MaxNewTokens: maxTokens}}
	}

	// Burst covers two 150-token requests, the third sheds.
	if err := p.Admit(ctx, req("alice", 150), Load{}); err != nil {
		t.Fatalf("first: %v", err)
	}
	if err := p.Admit(ctx, req("alice", 150), Load{}); err != nil {
		t.Fatalf("second: %v", err)
	}
	se := asShed(t, p.Admit(ctx, req("alice", 150), Load{}))
	if se.Policy != "budget" {
		t.Errorf("policy %q, want budget", se.Policy)
	}
	// 150 tokens short at 100 tok/s → retry in ~1.5s, reported as 2.
	if got := se.RetryAfterSeconds(); got != 2 {
		t.Errorf("RetryAfterSeconds=%d, want 2", got)
	}
	// Budgets are per client: bob is unaffected by alice's burn.
	if err := p.Admit(ctx, req("bob", 150), Load{}); err != nil {
		t.Fatalf("bob: %v", err)
	}
	// Refill: two seconds later alice fits again.
	now = now.Add(2 * time.Second)
	if err := p.Admit(ctx, req("alice", 150), Load{}); err != nil {
		t.Fatalf("post-refill: %v", err)
	}
	// Unbounded requests charge the default cost.
	if NewBudgetPolicy(0, 0).DefaultCost <= 0 {
		t.Error("default cost not set")
	}
}

// TestDedupLeaderShedFollowerRetriesFleet is the satellite scenario at
// the fleet layer: two identical concurrent requests hit one replica
// (affinity guarantees it); the admission policy sheds the
// single-flight leader while the follower is already waiting on its
// flight. The follower must retry on its own behalf — and succeed once
// admission clears — rather than inherit the leader's shed error.
func TestDedupLeaderShedFollowerRetriesFleet(t *testing.T) {
	m, prompts := fixture(t)
	gate := make(chan struct{})
	shedFirst := &gatedPolicy{gate: gate, seen: make(chan struct{})}
	f, err := New(
		[]ReplicaSpec{{Model: m, Engine: serve.Config{Workers: 1, QueueSize: 16, BatchSize: 1, CacheSize: -1}}},
		Config{Policies: []ShedPolicy{shedFirst}})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	req := serve.Request{Prompt: prompts[0], Options: testOptions(7)}
	leaderErr := make(chan error, 1)
	go func() {
		_, err := f.Generate(context.Background(), req)
		leaderErr <- err
	}()
	// The leader is inside admission (holding its flight) once the
	// policy has seen it.
	shedFirst.waitSeen(t)

	followerDone := make(chan *serve.Response, 1)
	followerErr := make(chan error, 1)
	go func() {
		resp, err := f.Generate(context.Background(), req)
		followerDone <- resp
		followerErr <- err
	}()
	// The follower has joined the leader's flight once dedup registers.
	waitFor(t, func() bool { return f.Replicas()[0].Engine().Metrics().DedupHits == 1 }, "follower join")

	close(gate) // admission now sheds the leader

	if err := <-leaderErr; asShed(t, err).Policy != "gated" {
		t.Fatalf("leader err=%v, want gated shed", err)
	}
	if err := <-followerErr; err != nil {
		t.Fatalf("follower inherited the leader's shed: %v", err)
	}
	resp := <-followerDone
	if resp == nil || resp.Result == nil || resp.Result.Text == "" {
		t.Fatalf("follower got no result: %+v", resp)
	}
	direct := core.NewDecoder(m).Generate(prompts[0], testOptions(7))
	if resp.Result.Text != direct.Text {
		t.Error("follower's retried decode diverges from direct decode")
	}
	em := f.Replicas()[0].Engine().Metrics()
	if em.Shed != 1 {
		t.Errorf("engine shed=%d, want 1 (the leader only)", em.Shed)
	}
}

// gatedPolicy sheds exactly its first admission — after blocking until
// released, so the test can arrange a follower join in the window
// between flight registration and the shed.
type gatedPolicy struct {
	gate chan struct{}
	seen chan struct{}
	once atomic.Bool
}

func (g *gatedPolicy) Name() string { return "gated" }
func (g *gatedPolicy) Admit(_ context.Context, _ serve.Request, _ Load) error {
	if !g.once.CompareAndSwap(false, true) {
		return nil
	}
	close(g.seen)
	<-g.gate
	return &serve.ShedError{Policy: "gated", Reason: "test", RetryAfter: time.Second}
}
func (g *gatedPolicy) waitSeen(t *testing.T) {
	t.Helper()
	select {
	case <-g.seen:
	case <-time.After(10 * time.Second):
		t.Fatal("admission never saw the leader")
	}
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	for deadline := time.Now().Add(10 * time.Second); ; {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never happened", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFleetHTTP drives a fleet through the shared HTTP layer: priority
// and budget sheds surface as 429 + Retry-After, model routing and the
// replica field work end to end, and /healthz and /metrics take the
// fleet shape (including the Prometheus exposition's fleet families).
func TestFleetHTTP(t *testing.T) {
	m, prompts := fixture(t)
	budget := NewBudgetPolicy(1, 100) // one ~100-token request, then shed
	f, err := New(
		[]ReplicaSpec{
			{Name: "a", Model: m, Engine: serve.Config{Workers: 2, CacheSize: -1}},
			{Name: "b", Model: m, Engine: serve.Config{Workers: 2, CacheSize: -1}},
		},
		Config{Policies: []ShedPolicy{budget}})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(serve.NewBackendServer(f).Handler())
	t.Cleanup(func() {
		srv.Close()
		f.Close()
	})
	post := func(body serve.GenerateRequest) *http.Response {
		t.Helper()
		raw, _ := json.Marshal(body)
		resp, err := http.Post(srv.URL+"/v1/generate", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// First request fits the burst.
	ok := post(serve.GenerateRequest{Prompt: prompts[0], MaxNewTokens: 64, Seed: 1, Client: "alice", Priority: "high", Model: "codet5p"})
	if ok.StatusCode != http.StatusOK {
		t.Fatalf("first request: status %d", ok.StatusCode)
	}
	var got serve.GenerateResult
	if err := json.NewDecoder(ok.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	ok.Body.Close()
	if got.Replica == "" {
		t.Errorf("fleet response missing replica: %+v", got)
	}
	// Second request is over budget: explicit 429 with Retry-After.
	shed := post(serve.GenerateRequest{Prompt: prompts[1], MaxNewTokens: 64, Seed: 2, Client: "alice"})
	io.Copy(io.Discard, shed.Body)
	shed.Body.Close()
	if shed.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed request: status %d, want 429", shed.StatusCode)
	}
	if shed.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	// Unknown model: 400.
	bad := post(serve.GenerateRequest{Prompt: prompts[0], Model: "gpt4", Client: "bob"})
	io.Copy(io.Discard, bad.Body)
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown model: status %d, want 400", bad.StatusCode)
	}
	// Unknown priority: 400.
	badPrio := post(serve.GenerateRequest{Prompt: prompts[0], Priority: "urgent", Client: "bob"})
	io.Copy(io.Discard, badPrio.Body)
	badPrio.Body.Close()
	if badPrio.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown priority: status %d, want 400", badPrio.StatusCode)
	}

	// /healthz lists the replicas.
	hz, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status   string           `json:"status"`
		Router   string           `json:"router"`
		Models   []string         `json:"models"`
		Replicas []map[string]any `json:"replicas"`
	}
	if err := json.NewDecoder(hz.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if health.Status != "ok" || health.Router != "prefix-affinity" || len(health.Replicas) != 2 {
		t.Errorf("healthz: %+v", health)
	}

	// JSON /metrics takes the cluster shape.
	mr, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mb struct {
		Cluster Metrics `json:"cluster"`
	}
	if err := json.NewDecoder(mr.Body).Decode(&mb); err != nil {
		t.Fatal(err)
	}
	mr.Body.Close()
	if mb.Cluster.Replicas != 2 || mb.Cluster.Shed != 1 || mb.Cluster.ShedByPolicy["budget"] != 1 {
		t.Errorf("cluster metrics: %+v", mb.Cluster)
	}

	// Prometheus exposition carries both aggregate and fleet families.
	pr, err := http.Get(srv.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(pr.Body)
	pr.Body.Close()
	body := string(raw)
	for _, want := range []string{
		"vgend_requests_total",
		"vgend_fleet_replicas 2",
		"vgend_fleet_shed_total 1",
		`vgend_fleet_shed_by_policy_total{policy="budget"} 1`,
		`vgend_replica_routed_total{replica="a"`,
		"vgend_queue_wait_seconds_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
