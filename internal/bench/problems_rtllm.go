package bench

// RTLLM returns the RTLLM-like suite: 29 natural-language design
// problems in the flavour of the RTLLM benchmark (arithmetic blocks,
// counters, FSMs, memories), each with a reference design and a
// self-checking testbench. The suite size matches RTLLM's 29 designs so
// Pass Rate granularity (multiples of 1/29 = 3.45%) is comparable.
func RTLLM() []Problem { return rtllmProblems }

var rtllmProblems = []Problem{
	{
		ID: "rtllm/adder_8bit", Suite: "RTLLM", Module: "adder_8bit",
		Prompt: "Please act as a professional Verilog designer. Implement an 8-bit adder module named adder_8bit with carry. Inputs: a (8-bit), b (8-bit), cin. Outputs: sum (8-bit), cout. The design computes {cout, sum} = a + b + cin.",
		Ref: `module adder_8bit (
    input [7:0] a,
    input [7:0] b,
    input cin,
    output [7:0] sum,
    output cout
);
    assign {cout, sum} = a + b + cin;
endmodule
`,
		Testbench: `module tb;
  reg [7:0] a, b;
  reg cin;
  wire [7:0] sum;
  wire cout;
  integer i, errors;
  reg [8:0] want;
  adder_8bit dut(.a(a), .b(b), .cin(cin), .sum(sum), .cout(cout));
  initial begin
    errors = 0;
    for (i = 0; i < 60; i = i + 1) begin
      a = $random; b = $random; cin = i[0];
      #1;
      want = {1'b0, a} + {1'b0, b} + {8'd0, cin};
      if ({cout, sum} !== want) errors = errors + 1;
    end
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
	{
		ID: "rtllm/adder_16bit", Suite: "RTLLM", Module: "adder_16bit",
		Prompt: "Please act as a professional Verilog designer. Implement a 16-bit adder module named adder_16bit. Inputs: a (16-bit), b (16-bit). Output: sum (16-bit). The design computes sum = a + b.",
		Ref: `module adder_16bit (
    input [15:0] a,
    input [15:0] b,
    output [15:0] sum
);
    assign sum = a + b;
endmodule
`,
		Testbench: `module tb;
  reg [15:0] a, b;
  wire [15:0] sum;
  integer i, errors;
  adder_16bit dut(.a(a), .b(b), .sum(sum));
  initial begin
    errors = 0;
    for (i = 0; i < 60; i = i + 1) begin
      a = $random; b = $random;
      #1;
      if (sum !== (a + b)) errors = errors + 1;
    end
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
	{
		ID: "rtllm/sub_8bit", Suite: "RTLLM", Module: "sub_8bit",
		Prompt: "Please act as a professional Verilog designer. Implement an 8-bit subtractor module named sub_8bit. Inputs: a (8-bit), b (8-bit). Outputs: diff (8-bit) which equals a - b, and borrow which is high when a is less than b.",
		Ref: `module sub_8bit (
    input [7:0] a,
    input [7:0] b,
    output [7:0] diff,
    output borrow
);
    assign diff = a - b;
    assign borrow = (a < b);
endmodule
`,
		Testbench: `module tb;
  reg [7:0] a, b;
  wire [7:0] diff;
  wire borrow;
  integer i, errors;
  sub_8bit dut(.a(a), .b(b), .diff(diff), .borrow(borrow));
  initial begin
    errors = 0;
    for (i = 0; i < 60; i = i + 1) begin
      a = $random; b = $random;
      #1;
      if (diff !== (a - b)) errors = errors + 1;
      if (borrow !== (a < b)) errors = errors + 1;
    end
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
	{
		ID: "rtllm/mult_4bit", Suite: "RTLLM", Module: "mult_4bit",
		Prompt: "Please act as a professional Verilog designer. Implement a combinational 4-bit multiplier module named mult_4bit. Inputs: a (4-bit), b (4-bit). Output: p (8-bit) equal to the product a * b.",
		Ref: `module mult_4bit (
    input [3:0] a,
    input [3:0] b,
    output [7:0] p
);
    assign p = a * b;
endmodule
`,
		Testbench: `module tb;
  reg [3:0] a, b;
  wire [7:0] p;
  integer i, j, errors;
  reg [7:0] want;
  mult_4bit dut(.a(a), .b(b), .p(p));
  initial begin
    errors = 0;
    for (i = 0; i < 16; i = i + 1) begin
      for (j = 0; j < 16; j = j + 1) begin
        a = i[3:0]; b = j[3:0];
        #1;
        want = i[7:0] * j[7:0];
        if (p !== want) errors = errors + 1;
      end
    end
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
	{
		ID: "rtllm/comparator_8bit", Suite: "RTLLM", Module: "comparator_8bit",
		Prompt: "Please act as a professional Verilog designer. Implement an 8-bit comparator module named comparator_8bit. Inputs: a (8-bit), b (8-bit). Outputs: eq (a equals b), gt (a greater than b), lt (a less than b).",
		Ref: `module comparator_8bit (
    input [7:0] a,
    input [7:0] b,
    output eq,
    output gt,
    output lt
);
    assign eq = (a == b);
    assign gt = (a > b);
    assign lt = (a < b);
endmodule
`,
		Testbench: `module tb;
  reg [7:0] a, b;
  wire eq, gt, lt;
  integer i, errors;
  comparator_8bit dut(.a(a), .b(b), .eq(eq), .gt(gt), .lt(lt));
  initial begin
    errors = 0;
    for (i = 0; i < 80; i = i + 1) begin
      a = $random; b = $random;
      if (i < 10) b = a; // cover equality
      #1;
      if (eq !== (a == b) || gt !== (a > b) || lt !== (a < b)) errors = errors + 1;
    end
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
	{
		ID: "rtllm/alu_8bit", Suite: "RTLLM", Module: "alu_8bit",
		Prompt: "Please act as a professional Verilog designer. Implement an 8-bit ALU module named alu_8bit. Inputs: op (2-bit), a (8-bit), b (8-bit). Output: y (8-bit, registered combinationally). Operation: op 00 adds, 01 subtracts, 10 bitwise ands, 11 bitwise ors a and b.",
		Ref: `module alu_8bit (
    input [1:0] op,
    input [7:0] a,
    input [7:0] b,
    output reg [7:0] y
);
    always @(*) begin
        case (op)
            2'b00: y = a + b;
            2'b01: y = a - b;
            2'b10: y = a & b;
            default: y = a | b;
        endcase
    end
endmodule
`,
		Testbench: `module tb;
  reg [1:0] op;
  reg [7:0] a, b;
  wire [7:0] y;
  integer i, errors;
  reg [7:0] want;
  alu_8bit dut(.op(op), .a(a), .b(b), .y(y));
  initial begin
    errors = 0;
    for (i = 0; i < 80; i = i + 1) begin
      op = i[1:0]; a = $random; b = $random;
      #1;
      case (op)
        2'b00: want = a + b;
        2'b01: want = a - b;
        2'b10: want = a & b;
        default: want = a | b;
      endcase
      if (y !== want) errors = errors + 1;
    end
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
	{
		ID: "rtllm/mux2to1_8bit", Suite: "RTLLM", Module: "mux2to1_8bit",
		Prompt: "Please act as a professional Verilog designer. Implement an 8-bit 2-to-1 multiplexer module named mux2to1_8bit. Inputs: a (8-bit), b (8-bit), sel. Output: y (8-bit). When sel is high y equals b, otherwise a.",
		Ref: `module mux2to1_8bit (
    input [7:0] a,
    input [7:0] b,
    input sel,
    output [7:0] y
);
    assign y = sel ? b : a;
endmodule
`,
		Testbench: `module tb;
  reg [7:0] a, b;
  reg sel;
  wire [7:0] y;
  integer i, errors;
  mux2to1_8bit dut(.a(a), .b(b), .sel(sel), .y(y));
  initial begin
    errors = 0;
    for (i = 0; i < 40; i = i + 1) begin
      a = $random; b = $random; sel = i[0];
      #1;
      if (y !== (sel ? b : a)) errors = errors + 1;
    end
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
	{
		ID: "rtllm/mux4to1_8bit", Suite: "RTLLM", Module: "mux4to1_8bit",
		Prompt: "Please act as a professional Verilog designer. Implement an 8-bit 4-to-1 multiplexer module named mux4to1_8bit. Inputs: d0, d1, d2, d3 (all 8-bit), sel (2-bit). Output: y (8-bit) selecting d0..d3 by sel.",
		Ref: `module mux4to1_8bit (
    input [7:0] d0,
    input [7:0] d1,
    input [7:0] d2,
    input [7:0] d3,
    input [1:0] sel,
    output reg [7:0] y
);
    always @(*) begin
        case (sel)
            2'b00: y = d0;
            2'b01: y = d1;
            2'b10: y = d2;
            default: y = d3;
        endcase
    end
endmodule
`,
		Testbench: `module tb;
  reg [7:0] d0, d1, d2, d3;
  reg [1:0] sel;
  wire [7:0] y;
  integer i, errors;
  reg [7:0] want;
  mux4to1_8bit dut(.d0(d0), .d1(d1), .d2(d2), .d3(d3), .sel(sel), .y(y));
  initial begin
    errors = 0;
    for (i = 0; i < 40; i = i + 1) begin
      d0 = $random; d1 = $random; d2 = $random; d3 = $random; sel = i[1:0];
      #1;
      case (sel)
        2'b00: want = d0;
        2'b01: want = d1;
        2'b10: want = d2;
        default: want = d3;
      endcase
      if (y !== want) errors = errors + 1;
    end
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
	{
		ID: "rtllm/decoder_3to8", Suite: "RTLLM", Module: "decoder_3to8",
		Prompt: "Please act as a professional Verilog designer. Implement a 3-to-8 one-hot decoder module named decoder_3to8. Inputs: sel (3-bit), en. Output: y (8-bit). When en is high, output bit sel of y is 1 and all others 0; when en is low y is all zeros.",
		Ref: `module decoder_3to8 (
    input [2:0] sel,
    input en,
    output reg [7:0] y
);
    always @(*) begin
        if (!en) y = 8'd0;
        else y = 8'd1 << sel;
    end
endmodule
`,
		Testbench: `module tb;
  reg [2:0] sel;
  reg en;
  wire [7:0] y;
  integer i, errors;
  reg [7:0] want;
  decoder_3to8 dut(.sel(sel), .en(en), .y(y));
  initial begin
    errors = 0;
    for (i = 0; i < 16; i = i + 1) begin
      sel = i[2:0]; en = i[3];
      #1;
      if (en) want = 8'd1 << sel; else want = 8'd0;
      if (y !== want) errors = errors + 1;
    end
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
	{
		ID: "rtllm/priority_encoder_4bit", Suite: "RTLLM", Module: "priority_encoder_4bit",
		Prompt: "Please act as a professional Verilog designer. Implement a 4-bit priority encoder module named priority_encoder_4bit. Input: req (4-bit). Outputs: grant (2-bit) encoding the highest set request bit, and valid indicating that any request bit is set.",
		Ref: `module priority_encoder_4bit (
    input [3:0] req,
    output reg [1:0] grant,
    output reg valid
);
    always @(*) begin
        valid = 1'b1;
        casez (req)
            4'b1zzz: grant = 2'd3;
            4'b01zz: grant = 2'd2;
            4'b001z: grant = 2'd1;
            4'b0001: grant = 2'd0;
            default: begin grant = 2'd0; valid = 1'b0; end
        endcase
    end
endmodule
`,
		Testbench: `module tb;
  reg [3:0] req;
  wire [1:0] grant;
  wire valid;
  integer i, errors;
  reg [1:0] want;
  reg wantv;
  priority_encoder_4bit dut(.req(req), .grant(grant), .valid(valid));
  initial begin
    errors = 0;
    for (i = 0; i < 16; i = i + 1) begin
      req = i[3:0];
      #1;
      wantv = (req != 4'd0);
      if (req[3]) want = 2'd3;
      else if (req[2]) want = 2'd2;
      else if (req[1]) want = 2'd1;
      else want = 2'd0;
      if (valid !== wantv) errors = errors + 1;
      else if (wantv && grant !== want) errors = errors + 1;
    end
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
	{
		ID: "rtllm/parity_8bit", Suite: "RTLLM", Module: "parity_8bit",
		Prompt: "Please act as a professional Verilog designer. Implement an 8-bit even parity generator module named parity_8bit. Input: data (8-bit). Output: parity equal to the xor-reduction of data.",
		Ref: `module parity_8bit (
    input [7:0] data,
    output parity
);
    assign parity = ^data;
endmodule
`,
		Testbench: `module tb;
  reg [7:0] data;
  wire parity;
  integer i, errors;
  parity_8bit dut(.data(data), .parity(parity));
  initial begin
    errors = 0;
    for (i = 0; i < 60; i = i + 1) begin
      data = $random;
      #1;
      if (parity !== (^data)) errors = errors + 1;
    end
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
	{
		ID: "rtllm/bin2gray_8bit", Suite: "RTLLM", Module: "bin2gray_8bit",
		Prompt: "Please act as a professional Verilog designer. Implement an 8-bit binary to Gray code converter module named bin2gray_8bit. Input: bin (8-bit). Output: gray (8-bit) equal to bin xor (bin shifted right by one).",
		Ref: `module bin2gray_8bit (
    input [7:0] bin,
    output [7:0] gray
);
    assign gray = bin ^ (bin >> 1);
endmodule
`,
		Testbench: `module tb;
  reg [7:0] bin;
  wire [7:0] gray;
  integer i, errors;
  bin2gray_8bit dut(.bin(bin), .gray(gray));
  initial begin
    errors = 0;
    for (i = 0; i < 60; i = i + 1) begin
      bin = $random;
      #1;
      if (gray !== (bin ^ (bin >> 1))) errors = errors + 1;
    end
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
	{
		ID: "rtllm/counter_8bit", Suite: "RTLLM", Module: "counter_8bit",
		Prompt: "Please act as a professional Verilog designer. Implement an 8-bit up-counter module named counter_8bit. Inputs: clk, rst. Output: q (8-bit register). On each rising edge of clk, q resets to 0 when rst is high, otherwise increments by one.",
		Ref: `module counter_8bit (
    input clk,
    input rst,
    output reg [7:0] q
);
    always @(posedge clk) begin
        if (rst) q <= 8'd0;
        else q <= q + 8'd1;
    end
endmodule
`,
		Testbench: `module tb;
  reg clk, rst;
  wire [7:0] q;
  reg [7:0] golden;
  integer i, errors;
  counter_8bit dut(.clk(clk), .rst(rst), .q(q));
  always #5 clk = ~clk;
  initial begin
    clk = 0; rst = 1; errors = 0; golden = 8'd0;
    @(posedge clk); #1;
    rst = 0;
    for (i = 0; i < 40; i = i + 1) begin
      @(posedge clk); #1;
      golden = golden + 8'd1;
      if (q !== golden) errors = errors + 1;
    end
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
	{
		ID: "rtllm/updown_counter_4bit", Suite: "RTLLM", Module: "updown_counter_4bit",
		Prompt: "Please act as a professional Verilog designer. Implement a 4-bit up/down counter module named updown_counter_4bit. Inputs: clk, rst, up. Output: q (4-bit register). On each rising clock edge q resets to 0 when rst is high, increments when up is high, otherwise decrements.",
		Ref: `module updown_counter_4bit (
    input clk,
    input rst,
    input up,
    output reg [3:0] q
);
    always @(posedge clk) begin
        if (rst) q <= 4'd0;
        else if (up) q <= q + 4'd1;
        else q <= q - 4'd1;
    end
endmodule
`,
		Testbench: `module tb;
  reg clk, rst, up;
  wire [3:0] q;
  reg [3:0] golden;
  integer i, errors;
  updown_counter_4bit dut(.clk(clk), .rst(rst), .up(up), .q(q));
  always #5 clk = ~clk;
  initial begin
    clk = 0; rst = 1; up = 1; errors = 0; golden = 4'd0;
    @(posedge clk); #1;
    rst = 0;
    for (i = 0; i < 40; i = i + 1) begin
      @(negedge clk);
      up = (i < 20) || (i[0]);
      @(posedge clk); #1;
      if (up) golden = golden + 4'd1; else golden = golden - 4'd1;
      if (q !== golden) errors = errors + 1;
    end
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
	{
		ID: "rtllm/ring_counter_4bit", Suite: "RTLLM", Module: "ring_counter_4bit",
		Prompt: "Please act as a professional Verilog designer. Implement a 4-bit ring counter module named ring_counter_4bit. Inputs: clk, rst. Output: q (4-bit register). On reset q becomes 4'b0001; afterwards the single hot bit rotates left each rising clock edge, wrapping from bit 3 back to bit 0.",
		Ref: `module ring_counter_4bit (
    input clk,
    input rst,
    output reg [3:0] q
);
    always @(posedge clk) begin
        if (rst) q <= 4'b0001;
        else q <= {q[2:0], q[3]};
    end
endmodule
`,
		Testbench: `module tb;
  reg clk, rst;
  wire [3:0] q;
  reg [3:0] golden;
  integer i, errors;
  ring_counter_4bit dut(.clk(clk), .rst(rst), .q(q));
  always #5 clk = ~clk;
  initial begin
    clk = 0; rst = 1; errors = 0; golden = 4'b0001;
    @(posedge clk); #1;
    rst = 0;
    if (q !== golden) errors = errors + 1;
    for (i = 0; i < 20; i = i + 1) begin
      @(posedge clk); #1;
      golden = {golden[2:0], golden[3]};
      if (q !== golden) errors = errors + 1;
    end
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
	{
		ID: "rtllm/counter_mod10", Suite: "RTLLM", Module: "counter_mod10",
		Prompt: "Please act as a professional Verilog designer. Implement a BCD (modulo-10) counter module named counter_mod10. Inputs: clk, rst. Output: q (4-bit register). The counter resets to 0, increments each rising clock edge and wraps from 9 back to 0.",
		Ref: `module counter_mod10 (
    input clk,
    input rst,
    output reg [3:0] q
);
    always @(posedge clk) begin
        if (rst) q <= 4'd0;
        else if (q == 4'd9) q <= 4'd0;
        else q <= q + 4'd1;
    end
endmodule
`,
		Testbench: `module tb;
  reg clk, rst;
  wire [3:0] q;
  reg [3:0] golden;
  integer i, errors;
  counter_mod10 dut(.clk(clk), .rst(rst), .q(q));
  always #5 clk = ~clk;
  initial begin
    clk = 0; rst = 1; errors = 0; golden = 4'd0;
    @(posedge clk); #1;
    rst = 0;
    for (i = 0; i < 35; i = i + 1) begin
      @(posedge clk); #1;
      if (golden == 4'd9) golden = 4'd0; else golden = golden + 4'd1;
      if (q !== golden) errors = errors + 1;
    end
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
	{
		ID: "rtllm/shift_reg_8bit", Suite: "RTLLM", Module: "shift_reg_8bit",
		Prompt: "Please act as a professional Verilog designer. Implement an 8-bit left-shifting serial shift register module named shift_reg_8bit. Inputs: clk, din. Output: q (8-bit register). On each rising clock edge the register shifts left by one and din enters at bit 0.",
		Ref: `module shift_reg_8bit (
    input clk,
    input din,
    output reg [7:0] q
);
    always @(posedge clk) q <= {q[6:0], din};
endmodule
`,
		Testbench: `module tb;
  reg clk, din;
  wire [7:0] q;
  reg [7:0] golden;
  integer i, errors;
  reg [31:0] r;
  shift_reg_8bit dut(.clk(clk), .din(din), .q(q));
  always #5 clk = ~clk;
  initial begin
    clk = 0; din = 0; errors = 0;
    // Flush unknown state with 8 known shifts first.
    for (i = 0; i < 8; i = i + 1) begin
      @(negedge clk); din = 1'b0;
      @(posedge clk); #1;
    end
    golden = 8'd0;
    for (i = 0; i < 40; i = i + 1) begin
      @(negedge clk);
      r = $random;
      din = r[0];
      @(posedge clk); #1;
      golden = {golden[6:0], din};
      if (q !== golden) errors = errors + 1;
    end
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
	{
		ID: "rtllm/barrel_shifter_8bit", Suite: "RTLLM", Module: "barrel_shifter_8bit",
		Prompt: "Please act as a professional Verilog designer. Implement an 8-bit right barrel shifter module named barrel_shifter_8bit. Inputs: data (8-bit), amount (3-bit). Output: result (8-bit) equal to data logically shifted right by amount.",
		Ref: `module barrel_shifter_8bit (
    input [7:0] data,
    input [2:0] amount,
    output [7:0] result
);
    assign result = data >> amount;
endmodule
`,
		Testbench: `module tb;
  reg [7:0] data;
  reg [2:0] amount;
  wire [7:0] result;
  integer i, errors;
  barrel_shifter_8bit dut(.data(data), .amount(amount), .result(result));
  initial begin
    errors = 0;
    for (i = 0; i < 64; i = i + 1) begin
      data = $random; amount = i[2:0];
      #1;
      if (result !== (data >> amount)) errors = errors + 1;
    end
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
	{
		ID: "rtllm/edge_detector", Suite: "RTLLM", Module: "edge_detector",
		Prompt: "Please act as a professional Verilog designer. Implement a rising-edge detector module named edge_detector. Inputs: clk, sig. Output: pulse, high for exactly one clock cycle whenever sig transitions from 0 to 1. Use a single flip-flop holding the previous value of sig.",
		Ref: `module edge_detector (
    input clk,
    input sig,
    output pulse
);
    reg sig_d;
    always @(posedge clk) sig_d <= sig;
    assign pulse = sig & ~sig_d;
endmodule
`,
		Testbench: `module tb;
  reg clk, sig;
  wire pulse;
  reg prev;
  integer i, errors;
  reg [31:0] r;
  edge_detector dut(.clk(clk), .sig(sig), .pulse(pulse));
  initial begin
    clk = 0; sig = 0; errors = 0;
    // settle one cycle so sig_d is known
    @(negedge clk); sig = 0;
    @(posedge clk); #1;
    prev = 0;
    for (i = 0; i < 40; i = i + 1) begin
      @(negedge clk);
      r = $random;
      sig = r[0];
      #1;
      if (pulse !== (sig & ~prev)) errors = errors + 1;
      @(posedge clk); #1;
      prev = sig;
    end
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
  always #5 clk = ~clk;
endmodule
`,
	},
	{
		ID: "rtllm/clk_div4", Suite: "RTLLM", Module: "clk_div4",
		Prompt: "Please act as a professional Verilog designer. Implement a divide-by-4 clock divider module named clk_div4. Inputs: clk, rst. Output: clk_out. Use a 2-bit counter with synchronous reset; clk_out is the counter's most significant bit, giving a quarter-rate square wave.",
		Ref: `module clk_div4 (
    input clk,
    input rst,
    output clk_out
);
    reg [1:0] cnt;
    always @(posedge clk) begin
        if (rst) cnt <= 2'd0;
        else cnt <= cnt + 2'd1;
    end
    assign clk_out = cnt[1];
endmodule
`,
		Testbench: `module tb;
  reg clk, rst;
  wire clk_out;
  reg [1:0] golden;
  integer i, errors;
  clk_div4 dut(.clk(clk), .rst(rst), .clk_out(clk_out));
  always #5 clk = ~clk;
  initial begin
    clk = 0; rst = 1; errors = 0; golden = 2'd0;
    @(posedge clk); #1;
    rst = 0;
    if (clk_out !== golden[1]) errors = errors + 1;
    for (i = 0; i < 24; i = i + 1) begin
      @(posedge clk); #1;
      golden = golden + 2'd1;
      if (clk_out !== golden[1]) errors = errors + 1;
    end
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
	{
		ID: "rtllm/pwm_8bit", Suite: "RTLLM", Module: "pwm_8bit",
		Prompt: "Please act as a professional Verilog designer. Implement an 8-bit PWM generator module named pwm_8bit. Inputs: clk, rst, duty (8-bit). Output: pwm_out. A free-running 8-bit counter increments each clock (reset by rst); pwm_out is high while the counter is less than duty.",
		Ref: `module pwm_8bit (
    input clk,
    input rst,
    input [7:0] duty,
    output pwm_out
);
    reg [7:0] cnt;
    always @(posedge clk) begin
        if (rst) cnt <= 8'd0;
        else cnt <= cnt + 8'd1;
    end
    assign pwm_out = (cnt < duty);
endmodule
`,
		Testbench: `module tb;
  reg clk, rst;
  reg [7:0] duty;
  wire pwm_out;
  reg [7:0] golden;
  integer i, errors;
  pwm_8bit dut(.clk(clk), .rst(rst), .duty(duty), .pwm_out(pwm_out));
  always #5 clk = ~clk;
  initial begin
    clk = 0; rst = 1; duty = 8'd100; errors = 0; golden = 8'd0;
    @(posedge clk); #1;
    rst = 0;
    if (pwm_out !== (golden < duty)) errors = errors + 1;
    for (i = 0; i < 60; i = i + 1) begin
      @(posedge clk); #1;
      golden = golden + 8'd1;
      if (pwm_out !== (golden < duty)) errors = errors + 1;
    end
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
	{
		ID: "rtllm/seq_det_101", Suite: "RTLLM", Module: "seq_det_101",
		Prompt: "Please act as a professional Verilog designer. Implement a Moore sequence detector module named seq_det_101 that detects the overlapping bit pattern 101. Inputs: clk, rst, din. Output: seen, high for one cycle after the pattern 101 has been observed on din. Use a state register with synchronous reset rst.",
		Ref: `module seq_det_101 (
    input clk,
    input rst,
    input din,
    output seen
);
    reg [1:0] state;
    localparam S0 = 2'd0, S1 = 2'd1, S2 = 2'd2, S3 = 2'd3;
    always @(posedge clk) begin
        if (rst) state <= S0;
        else begin
            case (state)
                S0: state <= din ? S1 : S0;
                S1: state <= din ? S1 : S2;
                S2: state <= din ? S3 : S0;
                S3: state <= din ? S1 : S2;
            endcase
        end
    end
    assign seen = (state == S3);
endmodule
`,
		Testbench: `module tb;
  reg clk, rst, din;
  wire seen;
  reg [2:0] window;
  integer i, errors;
  reg [31:0] r;
  seq_det_101 dut(.clk(clk), .rst(rst), .din(din), .seen(seen));
  always #5 clk = ~clk;
  initial begin
    clk = 0; rst = 1; din = 0; errors = 0; window = 3'b000;
    @(posedge clk); #1;
    rst = 0;
    for (i = 0; i < 60; i = i + 1) begin
      @(negedge clk);
      r = $random;
      din = r[0];
      @(posedge clk); #1;
      window = {window[1:0], din};
      if (seen !== (window == 3'b101)) errors = errors + 1;
    end
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
	{
		ID: "rtllm/register_8bit_en", Suite: "RTLLM", Module: "register_8bit_en",
		Prompt: "Please act as a professional Verilog designer. Implement an 8-bit register with enable named register_8bit_en. Inputs: clk, en, d (8-bit). Output: q (8-bit register). On each rising clock edge, q captures d only when en is high; otherwise it holds its value.",
		Ref: `module register_8bit_en (
    input clk,
    input en,
    input [7:0] d,
    output reg [7:0] q
);
    always @(posedge clk) begin
        if (en) q <= d;
    end
endmodule
`,
		Testbench: `module tb;
  reg clk, en;
  reg [7:0] d;
  wire [7:0] q;
  reg [7:0] golden;
  integer i, errors;
  register_8bit_en dut(.clk(clk), .en(en), .d(d), .q(q));
  always #5 clk = ~clk;
  initial begin
    clk = 0; errors = 0;
    @(negedge clk); en = 1; d = 8'd55;
    @(posedge clk); #1;
    golden = 8'd55;
    for (i = 0; i < 40; i = i + 1) begin
      @(negedge clk);
      d = $random; en = i[0];
      @(posedge clk); #1;
      if (en) golden = d;
      if (q !== golden) errors = errors + 1;
    end
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
	{
		ID: "rtllm/accumulator_16bit", Suite: "RTLLM", Module: "accumulator_16bit",
		Prompt: "Please act as a professional Verilog designer. Implement a 16-bit accumulator module named accumulator_16bit. Inputs: clk, rst, en, din (16-bit). Output: acc (16-bit register). On each rising clock edge: reset clears acc to 0; otherwise when en is high, acc adds din.",
		Ref: `module accumulator_16bit (
    input clk,
    input rst,
    input en,
    input [15:0] din,
    output reg [15:0] acc
);
    always @(posedge clk) begin
        if (rst) acc <= 16'd0;
        else if (en) acc <= acc + din;
    end
endmodule
`,
		Testbench: `module tb;
  reg clk, rst, en;
  reg [15:0] din;
  wire [15:0] acc;
  reg [15:0] golden;
  integer i, errors;
  accumulator_16bit dut(.clk(clk), .rst(rst), .en(en), .din(din), .acc(acc));
  always #5 clk = ~clk;
  initial begin
    clk = 0; rst = 1; en = 0; din = 16'd0; errors = 0; golden = 16'd0;
    @(posedge clk); #1;
    rst = 0;
    for (i = 0; i < 40; i = i + 1) begin
      @(negedge clk);
      din = $random; en = (i % 3 != 0);
      @(posedge clk); #1;
      if (en) golden = golden + din;
      if (acc !== golden) errors = errors + 1;
    end
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
	{
		ID: "rtllm/regfile_16x8", Suite: "RTLLM", Module: "regfile_16x8",
		Prompt: "Please act as a professional Verilog designer. Implement a 16-entry by 8-bit register file module named regfile_16x8. Inputs: clk, we, waddr (4-bit), raddr (4-bit), wdata (8-bit). Output: rdata (8-bit). Writes are clocked (on the rising edge when we is high); the read port is combinational: rdata always shows the word at raddr.",
		Ref: `module regfile_16x8 (
    input clk,
    input we,
    input [3:0] waddr,
    input [3:0] raddr,
    input [7:0] wdata,
    output [7:0] rdata
);
    reg [7:0] mem [0:15];
    always @(posedge clk) begin
        if (we) mem[waddr] <= wdata;
    end
    assign rdata = mem[raddr];
endmodule
`,
		Testbench: `module tb;
  reg clk, we;
  reg [3:0] waddr, raddr;
  reg [7:0] wdata;
  wire [7:0] rdata;
  integer i, errors;
  regfile_16x8 dut(.clk(clk), .we(we), .waddr(waddr), .raddr(raddr), .wdata(wdata), .rdata(rdata));
  always #5 clk = ~clk;
  initial begin
    clk = 0; we = 1; errors = 0;
    for (i = 0; i < 16; i = i + 1) begin
      @(negedge clk);
      waddr = i[3:0]; wdata = i[7:0] * 8'd7 + 8'd3;
      @(posedge clk); #1;
    end
    we = 0;
    for (i = 0; i < 16; i = i + 1) begin
      raddr = i[3:0];
      #1;
      if (rdata !== (i[7:0] * 8'd7 + 8'd3)) errors = errors + 1;
    end
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
	{
		ID: "rtllm/fifo_8x8", Suite: "RTLLM", Module: "fifo_8x8",
		Prompt: "Please act as a professional Verilog designer. Implement an 8-deep, 8-bit synchronous FIFO module named fifo_8x8. Inputs: clk, rst, push, pop, din (8-bit). Outputs: dout (8-bit, the word at the read pointer), empty, full. Use an internal memory with read and write pointers and an element counter; pushes are ignored when full, pops when empty.",
		Ref: `module fifo_8x8 (
    input clk,
    input rst,
    input push,
    input pop,
    input [7:0] din,
    output [7:0] dout,
    output empty,
    output full
);
    reg [7:0] mem [0:7];
    reg [3:0] count;
    reg [2:0] rptr, wptr;
    always @(posedge clk) begin
        if (rst) begin
            count <= 4'd0;
            rptr <= 3'd0;
            wptr <= 3'd0;
        end else begin
            if (push && !full) begin
                mem[wptr] <= din;
                wptr <= wptr + 3'd1;
                if (!(pop && !empty)) count <= count + 4'd1;
            end
            if (pop && !empty) begin
                rptr <= rptr + 3'd1;
                if (!(push && !full)) count <= count - 4'd1;
            end
        end
    end
    assign dout = mem[rptr];
    assign empty = (count == 4'd0);
    assign full = (count == 4'd8);
endmodule
`,
		Testbench: `module tb;
  reg clk, rst, push, pop;
  reg [7:0] din;
  wire [7:0] dout;
  wire empty, full;
  integer i, errors;
  reg [7:0] expect0, expect1, expect2;
  fifo_8x8 dut(.clk(clk), .rst(rst), .push(push), .pop(pop), .din(din), .dout(dout), .empty(empty), .full(full));
  always #5 clk = ~clk;
  initial begin
    clk = 0; rst = 1; push = 0; pop = 0; din = 8'd0; errors = 0;
    @(posedge clk); #1;
    rst = 0;
    if (empty !== 1'b1 || full !== 1'b0) errors = errors + 1;
    // push three known values
    expect0 = 8'd17; expect1 = 8'd34; expect2 = 8'd51;
    @(negedge clk); push = 1; din = expect0;
    @(posedge clk); #1;
    @(negedge clk); din = expect1;
    @(posedge clk); #1;
    @(negedge clk); din = expect2;
    @(posedge clk); #1;
    @(negedge clk); push = 0;
    #1;
    if (empty !== 1'b0) errors = errors + 1;
    if (dout !== expect0) errors = errors + 1;
    // pop them in order
    @(negedge clk); pop = 1;
    @(posedge clk); #1;
    if (dout !== expect1) errors = errors + 1;
    @(posedge clk); #1;
    if (dout !== expect2) errors = errors + 1;
    @(posedge clk); #1;
    @(negedge clk); pop = 0;
    #1;
    if (empty !== 1'b1) errors = errors + 1;
    // fill to full
    @(negedge clk); push = 1;
    for (i = 0; i < 8; i = i + 1) begin
      din = i[7:0];
      @(posedge clk); #1;
    end
    @(negedge clk); push = 0;
    #1;
    if (full !== 1'b1) errors = errors + 1;
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
	{
		ID: "rtllm/sat_counter_3bit", Suite: "RTLLM", Module: "sat_counter_3bit",
		Prompt: "Please act as a professional Verilog designer. Implement a 3-bit saturating up/down counter module named sat_counter_3bit. Inputs: clk, rst, inc, dec. Output: cnt (3-bit register). inc increments up to 7 and saturates; dec decrements down to 0 and saturates; simultaneous inc and dec hold the value; rst clears synchronously.",
		Ref: `module sat_counter_3bit (
    input clk,
    input rst,
    input inc,
    input dec,
    output reg [2:0] cnt
);
    always @(posedge clk) begin
        if (rst) cnt <= 3'd0;
        else if (inc && !dec && cnt != 3'd7) cnt <= cnt + 3'd1;
        else if (dec && !inc && cnt != 3'd0) cnt <= cnt - 3'd1;
    end
endmodule
`,
		Testbench: `module tb;
  reg clk, rst, inc, dec;
  wire [2:0] cnt;
  reg [2:0] golden;
  integer i, errors;
  reg [31:0] r;
  sat_counter_3bit dut(.clk(clk), .rst(rst), .inc(inc), .dec(dec), .cnt(cnt));
  always #5 clk = ~clk;
  initial begin
    clk = 0; rst = 1; inc = 0; dec = 0; errors = 0; golden = 3'd0;
    @(posedge clk); #1;
    rst = 0;
    for (i = 0; i < 60; i = i + 1) begin
      @(negedge clk);
      r = $random;
      inc = r[0]; dec = r[1];
      @(posedge clk); #1;
      if (inc && !dec && golden != 3'd7) golden = golden + 3'd1;
      else if (dec && !inc && golden != 3'd0) golden = golden - 3'd1;
      if (cnt !== golden) errors = errors + 1;
    end
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
	{
		ID: "rtllm/abs_8bit", Suite: "RTLLM", Module: "abs_8bit",
		Prompt: "Please act as a professional Verilog designer. Implement an absolute-value module named abs_8bit for signed numbers. Input: x (signed 8-bit). Output: y (8-bit) equal to the magnitude of x (negative inputs are negated).",
		Ref: `module abs_8bit (
    input signed [7:0] x,
    output [7:0] y
);
    assign y = (x < 0) ? -x : x;
endmodule
`,
		Testbench: `module tb;
  reg signed [7:0] x;
  wire [7:0] y;
  integer i, errors;
  reg [7:0] want;
  abs_8bit dut(.x(x), .y(y));
  initial begin
    errors = 0;
    for (i = -100; i < 100; i = i + 7) begin
      x = i[7:0];
      #1;
      if (i < 0) want = (-i); else want = i[7:0];
      if (y !== want) errors = errors + 1;
    end
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
	{
		ID: "rtllm/minmax_8bit", Suite: "RTLLM", Module: "minmax_8bit",
		Prompt: "Please act as a professional Verilog designer. Implement an 8-bit min/max module named minmax_8bit. Inputs: a (8-bit), b (8-bit). Outputs: min_o (8-bit, the smaller of a and b) and max_o (8-bit, the larger).",
		Ref: `module minmax_8bit (
    input [7:0] a,
    input [7:0] b,
    output [7:0] min_o,
    output [7:0] max_o
);
    assign min_o = (a < b) ? a : b;
    assign max_o = (a > b) ? a : b;
endmodule
`,
		Testbench: `module tb;
  reg [7:0] a, b;
  wire [7:0] min_o, max_o;
  integer i, errors;
  minmax_8bit dut(.a(a), .b(b), .min_o(min_o), .max_o(max_o));
  initial begin
    errors = 0;
    for (i = 0; i < 60; i = i + 1) begin
      a = $random; b = $random;
      #1;
      if (min_o !== ((a < b) ? a : b)) errors = errors + 1;
      if (max_o !== ((a > b) ? a : b)) errors = errors + 1;
    end
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
}
