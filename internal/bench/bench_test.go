package bench

import (
	"strings"
	"testing"

	"repro/internal/verilog"
)

func TestSuiteSizesMatchPaper(t *testing.T) {
	if n := len(RTLLM()); n != 29 {
		t.Fatalf("RTLLM-like suite has %d problems, want 29", n)
	}
	if n := len(VGen()); n != 17 {
		t.Fatalf("VGen-like suite has %d problems, want 17", n)
	}
	if n := len(All()); n != 46 {
		t.Fatalf("All() has %d problems, want 46", n)
	}
}

func TestProblemFieldsComplete(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range All() {
		if p.ID == "" || p.Prompt == "" || p.Module == "" || p.Ref == "" || p.Testbench == "" {
			t.Fatalf("problem %+v has empty fields", p.ID)
		}
		if seen[p.ID] {
			t.Fatalf("duplicate problem id %q", p.ID)
		}
		seen[p.ID] = true
		if !strings.Contains(p.Ref, "module "+p.Module) {
			t.Errorf("%s: reference does not declare module %q", p.ID, p.Module)
		}
		if !strings.Contains(p.Testbench, p.Module+" dut") {
			t.Errorf("%s: testbench does not instantiate %q", p.ID, p.Module)
		}
		if !strings.Contains(p.Prompt, p.Module) {
			t.Errorf("%s: prompt does not mention module name %q", p.ID, p.Module)
		}
	}
}

func TestAllReferencesParse(t *testing.T) {
	for _, p := range All() {
		if err := verilog.Check(p.Ref); err != nil {
			t.Errorf("%s: reference does not parse: %v", p.ID, err)
		}
		if err := verilog.Check(p.Testbench); err != nil {
			t.Errorf("%s: testbench does not parse: %v", p.ID, err)
		}
	}
}

// TestAllReferencesPassTheirTestbenches is the validity keystone of the
// whole evaluation: if a reference fails its own bench, the benchmark
// measures noise.
func TestAllReferencesPassTheirTestbenches(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.ID, func(t *testing.T) {
			if !CheckSyntax(p.Ref) {
				t.Fatal("reference fails syntax check")
			}
			if !CheckFunction(p.Ref, p) {
				t.Fatal("reference fails its own testbench")
			}
		})
	}
}

func TestBrokenDesignsFail(t *testing.T) {
	for _, p := range All()[:6] {
		// An empty module with the right name must fail function
		// (x outputs) but pass syntax.
		stub := "module " + p.Module + "();\nendmodule\n"
		if !CheckSyntax(stub) {
			t.Errorf("%s: stub should be syntactically fine", p.ID)
		}
		if CheckFunction(stub, p) {
			t.Errorf("%s: stub module must not pass the testbench", p.ID)
		}
		if CheckSyntax("module ( broken") {
			t.Error("garbage should fail syntax")
		}
		if CheckFunction("module ( broken", p) {
			t.Errorf("%s: garbage must not pass function", p.ID)
		}
	}
}

func TestWrongPolarityFails(t *testing.T) {
	// A subtly wrong adder (ignores cin) must fail functionally.
	wrong := `module adder_8bit (
    input [7:0] a,
    input [7:0] b,
    input cin,
    output [7:0] sum,
    output cout
);
    assign {cout, sum} = a + b;
endmodule
`
	p := RTLLM()[0]
	if !CheckSyntax(wrong) {
		t.Fatal("wrong adder should parse")
	}
	if CheckFunction(wrong, p) {
		t.Fatal("adder that ignores cin must fail the bench")
	}
}

func TestExtractFirstModule(t *testing.T) {
	text := "some preamble\nmodule a(); endmodule\nmodule b(); endmodule"
	got := ExtractFirstModule(text)
	if !strings.HasPrefix(got, "module a") || !strings.HasSuffix(got, "endmodule") || strings.Contains(got, "module b") {
		t.Fatalf("extract = %q", got)
	}
	if got := ExtractFirstModule("nothing to extract"); got != "nothing to extract" {
		t.Fatalf("no-module extract = %q", got)
	}
	if got := ExtractFirstModule("module unterminated ("); got != "module unterminated (" {
		t.Fatalf("unterminated extract = %q", got)
	}
}
