// Package bench defines the evaluation benchmarks: an RTLLM-like suite
// of 29 design problems and a VGen-like suite of 17 low-level prompts,
// matching the sizes (and therefore the pass-rate granularity) of the
// benchmarks used in the paper. Each problem carries a prompt, a
// reference implementation and a self-checking testbench; a generated
// design is syntactically correct when it parses (iverilog-compile
// analogue) and functionally correct when its testbench simulation
// prints TEST PASSED (iverilog-run analogue).
package bench

import (
	"strings"

	"repro/internal/verilog"
	"repro/internal/verilog/sim"
)

// Problem is one benchmark entry.
type Problem struct {
	// ID is "suite/name", e.g. "rtllm/adder_8bit".
	ID string
	// Suite is "RTLLM" or "VGen".
	Suite string
	// Prompt is the natural-language task given to the model.
	Prompt string
	// Module is the required DUT module name (the testbench
	// instantiates it by this name).
	Module string
	// Ref is a reference implementation; the test suite asserts that
	// every reference passes its own testbench.
	Ref string
	// Testbench is a self-checking bench printing TEST PASSED/FAILED.
	Testbench string
}

// ExtractFirstModule trims generated text to its first complete
// module...endmodule block (models often keep generating after the
// design; the paper's pipeline performs the same cleanup).
func ExtractFirstModule(text string) string {
	start := strings.Index(text, "module")
	if start < 0 {
		return text
	}
	end := strings.Index(text[start:], "endmodule")
	if end < 0 {
		return text[start:]
	}
	return text[start : start+end+len("endmodule")]
}

// CheckSyntax reports whether the generated design parses — the
// paper's syntactic-correctness criterion (design compiles).
func CheckSyntax(design string) bool {
	return verilog.Check(ExtractFirstModule(design)) == nil
}

// CheckFunction reports whether the generated design passes the
// problem's testbench — the paper's functional-correctness criterion.
func CheckFunction(design string, p Problem) bool {
	src := ExtractFirstModule(design) + "\n" + p.Testbench
	f, err := verilog.Parse(src)
	if err != nil {
		return false
	}
	r, err := sim.Run([]*verilog.SourceFile{f}, "tb", sim.Options{
		MaxTime:  2_000_000,
		MaxSteps: 2_000_000,
	})
	if err != nil {
		return false
	}
	return r.Passed()
}

// All returns both suites concatenated (RTLLM first).
func All() []Problem {
	return append(append([]Problem{}, RTLLM()...), VGen()...)
}
