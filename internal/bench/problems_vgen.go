package bench

// VGen returns the VGen-like suite: 17 problems with low-level prompts
// that state the module's function and spell out its header (module
// name, input and output types) — the paper notes these are the most
// challenging prompt style and matches VGen's 17-problem size (Pass
// Rate granularity 1/17 = 5.88%).
func VGen() []Problem { return vgenProblems }

var vgenProblems = []Problem{
	{
		ID: "vgen/simple_wire", Suite: "VGen", Module: "simple_wire",
		Prompt: "Complete the Verilog module below. It is a simple wire that connects input in_a to output out_a.\nmodule simple_wire(input in_a, output out_a);",
		Ref: `module simple_wire(input in_a, output out_a);
    assign out_a = in_a;
endmodule
`,
		Testbench: `module tb;
  reg in_a;
  wire out_a;
  integer i, errors;
  simple_wire dut(.in_a(in_a), .out_a(out_a));
  initial begin
    errors = 0;
    for (i = 0; i < 8; i = i + 1) begin
      in_a = i[0];
      #1;
      if (out_a !== in_a) errors = errors + 1;
    end
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
	{
		ID: "vgen/and_gate", Suite: "VGen", Module: "and_gate",
		Prompt: "Complete the Verilog module below. It is a 2-input and gate driving out from inputs a and b.\nmodule and_gate(input a, input b, output out);",
		Ref: `module and_gate(input a, input b, output out);
    assign out = a & b;
endmodule
`,
		Testbench: `module tb;
  reg a, b;
  wire out;
  integer i, errors;
  and_gate dut(.a(a), .b(b), .out(out));
  initial begin
    errors = 0;
    for (i = 0; i < 4; i = i + 1) begin
      a = i[0]; b = i[1];
      #1;
      if (out !== (a & b)) errors = errors + 1;
    end
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
	{
		ID: "vgen/or_gate", Suite: "VGen", Module: "or_gate",
		Prompt: "Complete the Verilog module below. It is a 2-input or gate driving out from inputs a and b.\nmodule or_gate(input a, input b, output out);",
		Ref: `module or_gate(input a, input b, output out);
    assign out = a | b;
endmodule
`,
		Testbench: `module tb;
  reg a, b;
  wire out;
  integer i, errors;
  or_gate dut(.a(a), .b(b), .out(out));
  initial begin
    errors = 0;
    for (i = 0; i < 4; i = i + 1) begin
      a = i[0]; b = i[1];
      #1;
      if (out !== (a | b)) errors = errors + 1;
    end
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
	{
		ID: "vgen/xor_gate", Suite: "VGen", Module: "xor_gate",
		Prompt: "Complete the Verilog module below. It is a 2-input xor gate driving out from inputs a and b.\nmodule xor_gate(input a, input b, output out);",
		Ref: `module xor_gate(input a, input b, output out);
    assign out = a ^ b;
endmodule
`,
		Testbench: `module tb;
  reg a, b;
  wire out;
  integer i, errors;
  xor_gate dut(.a(a), .b(b), .out(out));
  initial begin
    errors = 0;
    for (i = 0; i < 4; i = i + 1) begin
      a = i[0]; b = i[1];
      #1;
      if (out !== (a ^ b)) errors = errors + 1;
    end
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
	{
		ID: "vgen/not_gate", Suite: "VGen", Module: "not_gate",
		Prompt: "Complete the Verilog module below. It is an inverter: output out is the logical complement of input in_a.\nmodule not_gate(input in_a, output out);",
		Ref: `module not_gate(input in_a, output out);
    assign out = ~in_a;
endmodule
`,
		Testbench: `module tb;
  reg in_a;
  wire out;
  integer errors;
  not_gate dut(.in_a(in_a), .out(out));
  initial begin
    errors = 0;
    in_a = 0; #1;
    if (out !== 1'b1) errors = errors + 1;
    in_a = 1; #1;
    if (out !== 1'b0) errors = errors + 1;
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
	{
		ID: "vgen/nand_gate", Suite: "VGen", Module: "nand_gate",
		Prompt: "Complete the Verilog module below. It is a 2-input nand gate driving out from inputs a and b.\nmodule nand_gate(input a, input b, output out);",
		Ref: `module nand_gate(input a, input b, output out);
    assign out = ~(a & b);
endmodule
`,
		Testbench: `module tb;
  reg a, b;
  wire out;
  integer i, errors;
  nand_gate dut(.a(a), .b(b), .out(out));
  initial begin
    errors = 0;
    for (i = 0; i < 4; i = i + 1) begin
      a = i[0]; b = i[1];
      #1;
      if (out !== ~(a & b)) errors = errors + 1;
    end
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
	{
		ID: "vgen/half_adder", Suite: "VGen", Module: "half_adder",
		Prompt: "Complete the Verilog module below. It is a half adder: sum s is a xor b and carry c is a and b.\nmodule half_adder(input a, input b, output s, output c);",
		Ref: `module half_adder(input a, input b, output s, output c);
    assign s = a ^ b;
    assign c = a & b;
endmodule
`,
		Testbench: `module tb;
  reg a, b;
  wire s, c;
  integer i, errors;
  half_adder dut(.a(a), .b(b), .s(s), .c(c));
  initial begin
    errors = 0;
    for (i = 0; i < 4; i = i + 1) begin
      a = i[0]; b = i[1];
      #1;
      if (s !== (a ^ b) || c !== (a & b)) errors = errors + 1;
    end
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
	{
		ID: "vgen/full_adder", Suite: "VGen", Module: "full_adder",
		Prompt: "Complete the Verilog module below. It is a full adder with inputs a, b, cin and outputs s (sum bit) and cout (carry out).\nmodule full_adder(input a, input b, input cin, output s, output cout);",
		Ref: `module full_adder(input a, input b, input cin, output s, output cout);
    assign s = a ^ b ^ cin;
    assign cout = (a & b) | (a & cin) | (b & cin);
endmodule
`,
		Testbench: `module tb;
  reg a, b, cin;
  wire s, cout;
  integer i, errors;
  reg [1:0] want;
  full_adder dut(.a(a), .b(b), .cin(cin), .s(s), .cout(cout));
  initial begin
    errors = 0;
    for (i = 0; i < 8; i = i + 1) begin
      a = i[0]; b = i[1]; cin = i[2];
      #1;
      want = {1'b0, a} + {1'b0, b} + {1'b0, cin};
      if ({cout, s} !== want) errors = errors + 1;
    end
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
	{
		ID: "vgen/mux_1bit", Suite: "VGen", Module: "mux_1bit",
		Prompt: "Complete the Verilog module below. It is a 1-bit 2-to-1 mux: out is b when sel is high, else a.\nmodule mux_1bit(input a, input b, input sel, output out);",
		Ref: `module mux_1bit(input a, input b, input sel, output out);
    assign out = sel ? b : a;
endmodule
`,
		Testbench: `module tb;
  reg a, b, sel;
  wire out;
  integer i, errors;
  mux_1bit dut(.a(a), .b(b), .sel(sel), .out(out));
  initial begin
    errors = 0;
    for (i = 0; i < 8; i = i + 1) begin
      a = i[0]; b = i[1]; sel = i[2];
      #1;
      if (out !== (sel ? b : a)) errors = errors + 1;
    end
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
	{
		ID: "vgen/d_latch", Suite: "VGen", Module: "d_latch",
		Prompt: "Complete the Verilog module below. It is a level-sensitive D latch: while en is high, q follows d; when en is low, q holds its value.\nmodule d_latch(input d, input en, output reg q);",
		Ref: `module d_latch(input d, input en, output reg q);
    always @(*) begin
        if (en) q = d;
    end
endmodule
`,
		Testbench: `module tb;
  reg d, en;
  wire q;
  integer errors;
  d_latch dut(.d(d), .en(en), .q(q));
  initial begin
    errors = 0;
    en = 1; d = 1; #1;
    if (q !== 1'b1) errors = errors + 1;
    d = 0; #1;
    if (q !== 1'b0) errors = errors + 1;
    en = 0; d = 1; #1;
    if (q !== 1'b0) errors = errors + 1; // held
    d = 0; en = 1; #1;
    if (q !== 1'b0) errors = errors + 1;
    d = 1; #1;
    if (q !== 1'b1) errors = errors + 1;
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
	{
		ID: "vgen/dff", Suite: "VGen", Module: "dff",
		Prompt: "Complete the Verilog module below. It is a D flip-flop capturing d into q on the rising edge of clk.\nmodule dff(input clk, input d, output reg q);",
		Ref: `module dff(input clk, input d, output reg q);
    always @(posedge clk) q <= d;
endmodule
`,
		Testbench: `module tb;
  reg clk, d;
  wire q;
  integer i, errors;
  reg golden;
  reg [31:0] r;
  dff dut(.clk(clk), .d(d), .q(q));
  always #5 clk = ~clk;
  initial begin
    clk = 0; errors = 0;
    @(negedge clk); d = 1'b1;
    @(posedge clk); #1;
    golden = 1'b1;
    for (i = 0; i < 20; i = i + 1) begin
      @(negedge clk);
      r = $random;
      d = r[0];
      @(posedge clk); #1;
      golden = d;
      if (q !== golden) errors = errors + 1;
    end
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
	{
		ID: "vgen/dff_rst", Suite: "VGen", Module: "dff_rst",
		Prompt: "Complete the Verilog module below. It is a D flip-flop with synchronous active-high reset: on the rising edge of clk, q clears to 0 when rst is high, otherwise captures d.\nmodule dff_rst(input clk, input rst, input d, output reg q);",
		Ref: `module dff_rst(input clk, input rst, input d, output reg q);
    always @(posedge clk) begin
        if (rst) q <= 1'b0;
        else q <= d;
    end
endmodule
`,
		Testbench: `module tb;
  reg clk, rst, d;
  wire q;
  integer i, errors;
  reg golden;
  reg [31:0] r;
  dff_rst dut(.clk(clk), .rst(rst), .d(d), .q(q));
  always #5 clk = ~clk;
  initial begin
    clk = 0; rst = 1; d = 1; errors = 0;
    @(posedge clk); #1;
    golden = 1'b0;
    if (q !== golden) errors = errors + 1;
    rst = 0;
    for (i = 0; i < 20; i = i + 1) begin
      @(negedge clk);
      r = $random;
      d = r[0]; rst = (i % 5 == 4);
      @(posedge clk); #1;
      if (rst) golden = 1'b0; else golden = d;
      if (q !== golden) errors = errors + 1;
    end
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
	{
		ID: "vgen/t_ff", Suite: "VGen", Module: "t_ff",
		Prompt: "Complete the Verilog module below. It is a T flip-flop with synchronous reset: on each rising edge of clk, q clears when rst is high, toggles when t is high, and otherwise holds.\nmodule t_ff(input clk, input rst, input t, output reg q);",
		Ref: `module t_ff(input clk, input rst, input t, output reg q);
    always @(posedge clk) begin
        if (rst) q <= 1'b0;
        else if (t) q <= ~q;
    end
endmodule
`,
		Testbench: `module tb;
  reg clk, rst, t;
  wire q;
  integer i, errors;
  reg golden;
  reg [31:0] r;
  t_ff dut(.clk(clk), .rst(rst), .t(t), .q(q));
  always #5 clk = ~clk;
  initial begin
    clk = 0; rst = 1; t = 0; errors = 0;
    @(posedge clk); #1;
    golden = 1'b0;
    rst = 0;
    for (i = 0; i < 24; i = i + 1) begin
      @(negedge clk);
      r = $random;
      t = r[0];
      @(posedge clk); #1;
      if (t) golden = ~golden;
      if (q !== golden) errors = errors + 1;
    end
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
	{
		ID: "vgen/counter_3bit", Suite: "VGen", Module: "counter_3bit",
		Prompt: "Complete the Verilog module below. It is a 3-bit counter with synchronous reset: q increments on each rising edge of clk and wraps naturally.\nmodule counter_3bit(input clk, input rst, output reg [2:0] q);",
		Ref: `module counter_3bit(input clk, input rst, output reg [2:0] q);
    always @(posedge clk) begin
        if (rst) q <= 3'd0;
        else q <= q + 3'd1;
    end
endmodule
`,
		Testbench: `module tb;
  reg clk, rst;
  wire [2:0] q;
  reg [2:0] golden;
  integer i, errors;
  counter_3bit dut(.clk(clk), .rst(rst), .q(q));
  always #5 clk = ~clk;
  initial begin
    clk = 0; rst = 1; errors = 0; golden = 3'd0;
    @(posedge clk); #1;
    rst = 0;
    for (i = 0; i < 20; i = i + 1) begin
      @(posedge clk); #1;
      golden = golden + 3'd1;
      if (q !== golden) errors = errors + 1;
    end
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
	{
		ID: "vgen/shift_4bit", Suite: "VGen", Module: "shift_4bit",
		Prompt: "Complete the Verilog module below. It is a 4-bit left shift register: on each rising edge of clk the register shifts left and serial input sin enters at bit 0; the state drives q.\nmodule shift_4bit(input clk, input sin, output reg [3:0] q);",
		Ref: `module shift_4bit(input clk, input sin, output reg [3:0] q);
    always @(posedge clk) q <= {q[2:0], sin};
endmodule
`,
		Testbench: `module tb;
  reg clk, sin;
  wire [3:0] q;
  reg [3:0] golden;
  integer i, errors;
  reg [31:0] r;
  shift_4bit dut(.clk(clk), .sin(sin), .q(q));
  always #5 clk = ~clk;
  initial begin
    clk = 0; sin = 0; errors = 0;
    for (i = 0; i < 4; i = i + 1) begin
      @(negedge clk); sin = 1'b0;
      @(posedge clk); #1;
    end
    golden = 4'd0;
    for (i = 0; i < 20; i = i + 1) begin
      @(negedge clk);
      r = $random;
      sin = r[0];
      @(posedge clk); #1;
      golden = {golden[2:0], sin};
      if (q !== golden) errors = errors + 1;
    end
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
	{
		ID: "vgen/mux4_case", Suite: "VGen", Module: "mux4_case",
		Prompt: "Complete the Verilog module below. It is a 1-bit 4-to-1 mux implemented with a case statement over the 2-bit select sel choosing among a, b, c, d.\nmodule mux4_case(input a, input b, input c, input d, input [1:0] sel, output reg out);",
		Ref: `module mux4_case(input a, input b, input c, input d, input [1:0] sel, output reg out);
    always @(*) begin
        case (sel)
            2'b00: out = a;
            2'b01: out = b;
            2'b10: out = c;
            default: out = d;
        endcase
    end
endmodule
`,
		Testbench: `module tb;
  reg a, b, c, d;
  reg [1:0] sel;
  wire out;
  integer i, errors;
  reg want;
  reg [31:0] r;
  mux4_case dut(.a(a), .b(b), .c(c), .d(d), .sel(sel), .out(out));
  initial begin
    errors = 0;
    for (i = 0; i < 32; i = i + 1) begin
      r = $random;
      a = r[0]; b = r[1]; c = r[2]; d = r[3]; sel = i[1:0];
      #1;
      case (sel)
        2'b00: want = a;
        2'b01: want = b;
        2'b10: want = c;
        default: want = d;
      endcase
      if (out !== want) errors = errors + 1;
    end
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
	{
		ID: "vgen/fsm_toggle", Suite: "VGen", Module: "fsm_toggle",
		Prompt: "Complete the Verilog module below. It is a two-state FSM with synchronous reset: the single state bit flips on each rising edge of clk when go is high and holds otherwise; output state_out shows the state.\nmodule fsm_toggle(input clk, input rst, input go, output state_out);",
		Ref: `module fsm_toggle(input clk, input rst, input go, output state_out);
    reg state;
    always @(posedge clk) begin
        if (rst) state <= 1'b0;
        else if (go) state <= ~state;
    end
    assign state_out = state;
endmodule
`,
		Testbench: `module tb;
  reg clk, rst, go;
  wire state_out;
  reg golden;
  integer i, errors;
  reg [31:0] r;
  fsm_toggle dut(.clk(clk), .rst(rst), .go(go), .state_out(state_out));
  always #5 clk = ~clk;
  initial begin
    clk = 0; rst = 1; go = 0; errors = 0;
    @(posedge clk); #1;
    golden = 1'b0;
    rst = 0;
    for (i = 0; i < 24; i = i + 1) begin
      @(negedge clk);
      r = $random;
      go = r[0];
      @(posedge clk); #1;
      if (go) golden = ~golden;
      if (state_out !== golden) errors = errors + 1;
    end
    if (errors == 0) $display("TEST PASSED"); else $display("TEST FAILED %0d", errors);
    $finish;
  end
endmodule
`,
	},
}
