package experiments

import "testing"

// TestGrammarBenchGrammarBeatsOursTree pins the tentpole's acceptance
// criterion: on the eval suite's prompt schedule, grammar-constrained
// tree drafting achieves strictly higher mean accepted length than
// plain ours-tree on the same trained model, with the oracle
// demonstrably engaged (nonzero pruning and construct drafting), and
// the lookup pair never regresses. Decodes are deterministic per seed,
// so this is a stable gate, not a flaky benchmark.
func TestGrammarBenchGrammarBeatsOursTree(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	r := NewRunner(quickSetup())
	rows := r.RunGrammarBench()
	if len(rows) != len(GrammarPairs) {
		t.Fatalf("rows = %d, want %d (one model in Quick setup)", len(rows), len(GrammarPairs))
	}
	byGrammar := map[string]GrammarBenchRow{}
	for _, row := range rows {
		byGrammar[row.Grammar] = row
		t.Logf("%-12s vs %-20s accepted %.3f -> %.3f (gain %.3f)  speed %.1f -> %.1f  pruned/step %.2f  gtok/step %.2f",
			row.Base, row.Grammar, row.BaseAccepted, row.GrammarAccepted, row.AcceptedGain,
			row.BaseTokensPerSec, row.GrammarTokensPerSec, row.PrunedPerStep, row.GrammarTokensPerStep)
	}
	gt := byGrammar["GrammarTree"]
	if gt.GrammarAccepted <= gt.BaseAccepted {
		t.Errorf("grammar-tree mean accepted %.4f not strictly above ours-tree's %.4f",
			gt.GrammarAccepted, gt.BaseAccepted)
	}
	for _, row := range rows {
		if row.GrammarAccepted < row.BaseAccepted {
			t.Errorf("%s mean accepted %.4f regressed below %s's %.4f",
				row.Grammar, row.GrammarAccepted, row.Base, row.BaseAccepted)
		}
		if row.PrunedPerStep <= 0 && row.GrammarTokensPerStep <= 0 {
			t.Errorf("%s: oracle never engaged (no pruning, no construct tokens)", row.Grammar)
		}
		if row.GrammarWallMSPerToken <= 0 || row.BaseWallMSPerToken <= 0 {
			t.Errorf("%s: wall-clock accounting missing: %+v", row.Grammar, row)
		}
	}
}
