package experiments

import (
	"context"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/serve"
)

// quickSetup is small enough for CI but large enough that the trained
// models behave (the corpus still covers every family).
func quickSetup() Setup {
	s := Quick()
	s.CorpusItems = 900
	s.Samples = 2
	s.Temps = []float64{0.4}
	s.SpeedPrompts = 10
	return s
}

func TestRunnerBuildsCorpus(t *testing.T) {
	r := NewRunner(quickSetup())
	if len(r.Examples()) == 0 {
		t.Fatal("no examples after refinement")
	}
	if r.Stats().SyntaxClean != len(r.Examples()) {
		t.Fatalf("stats inconsistent: %+v vs %d", r.Stats(), len(r.Examples()))
	}
	if r.Tokenizer(model.CodeLlamaSim()) == nil {
		t.Fatal("tokenizer missing")
	}
}

func TestTable2SpeedOrderingAndCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	r := NewRunner(quickSetup())
	rows := r.RunTable2()
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 (one model in Quick setup)", len(rows))
	}
	byMethod := map[string]SpeedRow{}
	for _, row := range rows {
		byMethod[row.Method] = row
	}
	// NTP must sit at its calibrated baseline (eq. 3 with the
	// CodeLlama cost model: 1000/12.03 ≈ 83 tok/s).
	ntp := byMethod["NTP"].TokensPerSec
	if ntp < 80 || ntp > 86 {
		t.Fatalf("NTP speed %f outside calibration band", ntp)
	}
	// Both speculative methods must beat NTP (Table II's headline).
	if byMethod["Ours"].Speedup <= 1.5 {
		t.Fatalf("Ours speedup %f, want > 1.5", byMethod["Ours"].Speedup)
	}
	if byMethod["Medusa"].Speedup <= 1.5 {
		t.Fatalf("Medusa speedup %f, want > 1.5", byMethod["Medusa"].Speedup)
	}
}

func TestStrategyMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	r := NewRunner(quickSetup())
	rows := r.RunStrategyMatrix()
	if len(rows) != len(StrategyMatrix) {
		t.Fatalf("rows = %d, want %d (one model in Quick setup)", len(rows), len(StrategyMatrix))
	}
	byStrategy := map[string]StrategyRow{}
	for _, row := range rows {
		byStrategy[row.Strategy] = row
	}
	ntp := byStrategy["NTP"]
	if ntp.TokensPerSec < 80 || ntp.TokensPerSec > 86 {
		t.Fatalf("NTP speed %f outside calibration band", ntp.TokensPerSec)
	}
	// The headline of the new axis: self-speculative prompt lookup
	// accelerates the plain NTP backbone — no heads required.
	pl := byStrategy["PromptLookup"]
	if pl.TokensPerSec <= ntp.TokensPerSec {
		t.Fatalf("PromptLookup %f tok/s not faster than NTP %f", pl.TokensPerSec, ntp.TokensPerSec)
	}
	if pl.Speedup <= 1 {
		t.Fatalf("PromptLookup speedup %f, want > 1", pl.Speedup)
	}
	if pl.MeanAccepted <= 1 || ntp.MeanAccepted != 1 {
		t.Fatalf("mean accepted: pl=%f ntp=%f", pl.MeanAccepted, ntp.MeanAccepted)
	}
	if byStrategy["Ours"].Speedup <= 1.5 || byStrategy["Medusa"].Speedup <= 1.5 {
		t.Fatalf("legacy speculative rows regressed: %+v", rows)
	}
	// The honest-accounting column: every row carries a measured
	// wall-clock cost per token alongside its simulated speedup.
	for _, row := range rows {
		if row.WallMSPerToken <= 0 {
			t.Errorf("%s: wall ms/token missing: %+v", row.Strategy, row)
		}
	}
}

// TestPromptLookupPassRateUnchanged pins the quality side of the new
// strategy: greedy prompt-lookup decoding is lossless, so its pass
// rates on the benchmark suites equal greedy NTP's exactly.
func TestPromptLookupPassRateUnchanged(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	r := NewRunner(quickSetup())
	cfg := r.setup.Models[0]
	m := model.Train(r.Tokenizer(cfg), cfg, model.SchemeNTP, r.Examples())
	eng := r.newEngine(m)
	defer eng.Close()

	suite := bench.All()
	mk := func(strategy string) []serve.Request {
		reqs := make([]serve.Request, len(suite))
		for i := range suite {
			reqs[i] = serve.Request{Prompt: suite[i].Prompt, Options: core.Options{Strategy: strategy}}
		}
		return reqs
	}
	ntp := eng.GenerateBatch(context.Background(), mk("ntp"))
	pl := eng.GenerateBatch(context.Background(), mk("prompt-lookup"))
	ntpPass, plPass := 0, 0
	for i := range suite {
		if ntp[i].Err != nil || pl[i].Err != nil {
			t.Fatalf("prompt %d failed: %v / %v", i, ntp[i].Err, pl[i].Err)
		}
		if pl[i].Result.Text != ntp[i].Result.Text {
			t.Fatalf("prompt %d: greedy prompt-lookup diverged from NTP", i)
		}
		if bench.CheckSyntax(ntp[i].Result.Text) {
			ntpPass++
		}
		if bench.CheckSyntax(pl[i].Result.Text) {
			plPass++
		}
		if pl[i].Result.SimulatedMS > ntp[i].Result.SimulatedMS {
			t.Fatalf("prompt %d: prompt-lookup simulated slower than NTP", i)
		}
	}
	if ntpPass != plPass {
		t.Fatalf("pass rate changed: ntp=%d pl=%d", ntpPass, plPass)
	}
}

func TestFig5StepOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	r := NewRunner(quickSetup())
	rows := r.RunFig5()
	steps := map[string]int{}
	for _, row := range rows {
		steps[row.Method] = row.Steps
	}
	// The paper's Fig. 5 ordering: both speculative methods need far
	// fewer decoding steps than NTP.
	if steps["Ours"] >= steps["NTP"] || steps["Medusa"] >= steps["NTP"] {
		t.Fatalf("step ordering violated: %v", steps)
	}
}

func TestTable1SmokeAndFig6(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	s := quickSetup()
	s.SizeNumerators = []int{4}
	r := NewRunner(s)
	cells := r.RunTable1()
	// 1 model × 1 size × 3 methods × 2 benchmarks.
	if len(cells) != 6 {
		t.Fatalf("cells = %d, want 6", len(cells))
	}
	for _, c := range cells {
		if c.SynPass1 < 0 || c.SynPass1 > 100 || c.FuncPass10 < c.FuncPass1 {
			t.Fatalf("implausible cell: %+v", c)
		}
	}
	slice := Fig6(cells, model.CodeLlamaSim().Name)
	if len(slice) != 6 {
		t.Fatalf("Fig6 slice = %d", len(slice))
	}
}

func TestSizeLabel(t *testing.T) {
	cases := map[int]string{500: "500", 3400: "3.4K", 34000: "34K", 136000: "136K"}
	for n, want := range cases {
		if got := SizeLabel(n); got != want {
			t.Errorf("SizeLabel(%d) = %q, want %q", n, got, want)
		}
	}
}
