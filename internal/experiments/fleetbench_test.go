package experiments

import (
	"testing"
)

// TestFleetBenchAffinityWinsCacheHits is the fleet-bench acceptance
// gate: on a shared-prefix workload, prefix-affinity routing beats
// random routing on fleet cache-hit rate, and the measured wall-clock
// columns are populated (throughput, latency percentiles ordered).
func TestFleetBenchAffinityWinsCacheHits(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	r := NewRunner(quickSetup())
	rows, err := r.RunFleetBench(FleetBenchConfig{
		Replicas: 4,
		Clients:  6,
		Rounds:   8,
		Prompts:  6,
		Routers:  []string{"prefix-affinity", "random"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	byRouter := map[string]FleetBenchRow{}
	for _, row := range rows {
		byRouter[row.Router] = row
		if row.Requests != 48 {
			t.Errorf("%s: requests=%d, want 48", row.Router, row.Requests)
		}
		if row.ThroughputRPS <= 0 || row.MeanWallMS <= 0 {
			t.Errorf("%s: unmeasured wall-clock: %+v", row.Router, row)
		}
		if row.P50WallMS > row.P95WallMS || row.P95WallMS > row.P99WallMS {
			t.Errorf("%s: percentiles out of order: %+v", row.Router, row)
		}
	}
	affinity, random := byRouter["prefix-affinity"], byRouter["random"]
	if affinity.CacheHitRate <= random.CacheHitRate {
		t.Errorf("affinity cache-hit rate %.3f not better than random %.3f",
			affinity.CacheHitRate, random.CacheHitRate)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{{0.25, 3}, {0.5, 5}, {0.9, 9}, {0.99, 10}, {1.0, 10}}
	for _, tc := range cases {
		if got := percentile(sorted, tc.p); got != tc.want {
			t.Errorf("percentile(%.2f) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
}
