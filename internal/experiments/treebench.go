// TreeBench measures what token-tree drafting exists to change: mean
// accepted length — tokens surviving verification per forward pass,
// the quantity the whole speedup rests on ("A Theoretical Perspective
// for Speculative Decoding Algorithm": expected accepted length drives
// the wall-clock gain; "Speculative Decoding: Performance or
// Illusion?": report it honestly or the speedup is an artifact). Each
// row pairs a linear strategy with its tree lift on the same trained
// model and the same prompt schedule, so the only difference is the
// drafting shape; the tree side also reports how much of its node
// budget the drafters actually filled.
package experiments

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/serve"
)

// TreePair names a linear strategy and its tree-drafting lift on the
// scheme both decode naturally.
type TreePair struct {
	Scheme model.Scheme
	// Linear and Tree are registry strategy names.
	Linear, Tree string
}

// TreePairs is the linear-vs-tree comparison axis: every tree strategy
// against its exact linear counterpart.
var TreePairs = []TreePair{
	{Scheme: model.SchemeMedusa, Linear: "medusa", Tree: "medusa-tree"},
	{Scheme: model.SchemeOurs, Linear: "ours", Tree: "ours-tree"},
	{Scheme: model.SchemeNTP, Linear: "prompt-lookup", Tree: "lookup-tree"},
}

// TreeBenchRow is one (model, pair) comparison.
type TreeBenchRow struct {
	Model, Scheme string
	// Linear/Tree are the pair's display names.
	Linear, Tree string
	// LinearAccepted/TreeAccepted are mean tokens emitted per decoding
	// step; AcceptedGain is their ratio (> 1 means the tree drafts
	// survive verification longer).
	LinearAccepted, TreeAccepted, AcceptedGain float64
	// LinearTokensPerSec/TreeTokensPerSec are the eq. 3 simulated
	// speeds over the prompt set.
	LinearTokensPerSec, TreeTokensPerSec float64
	// LinearWallMSPerToken/TreeWallMSPerToken are measured wall-clock
	// decoder milliseconds per clean token — the honest-accounting
	// column: tree verification walks more nodes per step, and this is
	// where that CPU cost shows.
	LinearWallMSPerToken, TreeWallMSPerToken float64
	// TreeNodesPerStep is mean draft nodes proposed per tree step;
	// BudgetUtilization is nodes proposed over budget available.
	TreeNodesPerStep, BudgetUtilization float64
}

// treeBenchSide aggregates one strategy's half of a comparison row.
type treeBenchSide struct {
	accepted, tokensPerSec, wallMSPerToken float64
	nodesPerStep, utilization              float64
}

// RunTreeBench decodes the Table II prompt schedule (greedy + T=0.8
// per prompt, dispatched through the shared worker pool) with both
// sides of every TreePair, one trained model per scheme reused across
// pairs.
func (r *Runner) RunTreeBench() []TreeBenchRow {
	var rows []TreeBenchRow
	prompts := r.speedPrompts()
	for _, cfg := range r.setup.Models {
		tk := r.toks[cfg.Name]
		trained := map[model.Scheme]*model.Model{}
		for _, pair := range TreePairs {
			m := trained[pair.Scheme]
			if m == nil {
				m = model.Train(tk, cfg, pair.Scheme, r.examples)
				trained[pair.Scheme] = m
			}
			lin := r.treeBenchSide(m, prompts, pair.Linear)
			tr := r.treeBenchSide(m, prompts, pair.Tree)
			row := TreeBenchRow{
				Model: cfg.Name, Scheme: pair.Scheme.String(),
				Linear: displayName(pair.Linear), Tree: displayName(pair.Tree),
				LinearAccepted: lin.accepted, TreeAccepted: tr.accepted,
				LinearTokensPerSec: lin.tokensPerSec, TreeTokensPerSec: tr.tokensPerSec,
				LinearWallMSPerToken: lin.wallMSPerToken, TreeWallMSPerToken: tr.wallMSPerToken,
				TreeNodesPerStep: tr.nodesPerStep, BudgetUtilization: tr.utilization,
			}
			if lin.accepted > 0 {
				row.AcceptedGain = tr.accepted / lin.accepted
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// treeBenchSide runs one strategy over the prompt schedule and folds
// the result metrics.
func (r *Runner) treeBenchSide(m *model.Model, prompts []string, strategy string) treeBenchSide {
	reqs := make([]serve.Request, 0, 2*len(prompts))
	for i, prompt := range prompts {
		reqs = append(reqs,
			serve.Request{Prompt: prompt, Options: core.Options{Strategy: strategy}},
			serve.Request{Prompt: prompt, Options: core.Options{Strategy: strategy, Temperature: 0.8, Seed: int64(i)}})
	}
	eng := r.newEngine(m)
	resps := eng.GenerateBatch(context.Background(), reqs)
	eng.Close()
	tokens := make([]int, len(resps))
	secs := make([]float64, len(resps))
	var rawTokens, steps, cleanTokens, wallMS, nodes, budget float64
	for i, resp := range resps {
		if resp.Err != nil {
			panic(resp.Err)
		}
		res := resp.Result
		tokens[i] = len(res.CleanTokens)
		secs[i] = res.SimulatedMS / 1000
		rawTokens += float64(len(res.Tokens))
		steps += float64(res.Steps)
		cleanTokens += float64(len(res.CleanTokens))
		wallMS += float64(resp.Wall) / float64(time.Millisecond)
		nodes += float64(res.TreeNodes)
		budget += float64(res.TreeBudget)
	}
	side := treeBenchSide{tokensPerSec: metrics.Speed(tokens, secs)}
	if steps > 0 {
		side.accepted = rawTokens / steps
		side.nodesPerStep = nodes / steps
	}
	if cleanTokens > 0 {
		side.wallMSPerToken = wallMS / cleanTokens
	}
	if budget > 0 {
		side.utilization = nodes / budget
	}
	return side
}

// displayName resolves a registry name to its display spelling,
// passing unknown names through.
func displayName(strategy string) string {
	if s, err := core.ResolveStrategy(strategy, false); err == nil {
		return s.Name
	}
	return strategy
}
