package experiments

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/serve"
)

// LoadBench measures the quantity the continuous scheduler exists to
// protect: short-request latency while a long decode shares the engine.
// Each scheduler mode runs the same two phases on one engine —
// unloaded (sequential short decodes, nothing else in flight) and
// loaded (the same shorts while a background client keeps exactly one
// long decode in flight throughout) — and the row reports the loaded /
// unloaded p95 ratio. Under the micro-batch worker pool a short behind
// a long waits for the long's entire remainder, so the ratio explodes;
// the continuous scheduler preempts the long at the next sweep
// boundary and the ratio stays near 1. CI pins that contrast.

// LoadBenchConfig sizes the latency-under-load scenario.
type LoadBenchConfig struct {
	// Schedulers are the engine modes to compare (default both).
	Schedulers []string
	// Shorts is the measured short-request count per phase (default 60).
	Shorts int
	// ShortTokens/LongTokens bound the two decode lengths (defaults
	// 12 / 192). Shorts use the paper's speculative strategy; the long
	// decode is plain NTP — one token per forward pass, the worst case
	// to sit behind.
	ShortTokens, LongTokens int
	// ThinkTime is the client pause between shorts (default 2ms): the
	// arrival gap that lets the long decode accumulate residency, as
	// interactive traffic does.
	ThinkTime time.Duration
	// PreemptQuantum is the continuous scheduler's residency bound in
	// sweeps (default 4 — above the typical short decode's step count,
	// so shorts run to completion once admitted, but small enough that
	// a resumed long decode yields within about a millisecond of a
	// short arriving).
	PreemptQuantum int
}

// loadBenchSeedBase seeds the measured shorts; both phases reuse it so
// they decode the identical request set.
const loadBenchSeedBase = 1000

func (c LoadBenchConfig) withDefaults() LoadBenchConfig {
	if len(c.Schedulers) == 0 {
		c.Schedulers = []string{serve.SchedContinuous, serve.SchedMicroBatch}
	}
	if c.Shorts <= 0 {
		c.Shorts = 60
	}
	if c.ShortTokens <= 0 {
		c.ShortTokens = 12
	}
	if c.LongTokens <= 0 {
		c.LongTokens = 192
	}
	if c.ThinkTime <= 0 {
		c.ThinkTime = 2 * time.Millisecond
	}
	if c.PreemptQuantum <= 0 {
		c.PreemptQuantum = 4
	}
	return c
}

// LoadBenchRow is one scheduler mode's measured outcome. Latencies are
// wall-clock at the client, in milliseconds.
type LoadBenchRow struct {
	Scheduler string
	Shorts    int
	// Unloaded/Loaded short-request latency.
	UnloadedMeanMS, UnloadedP95MS float64
	LoadedMeanMS, LoadedP95MS     float64
	// LatencyRatio is LoadedP95MS / UnloadedP95MS — the gated number.
	LatencyRatio float64
	// LongDecodes counts background long decodes completed during the
	// loaded phase; Preemptions/Resumes are the scheduler's counters
	// after it (zero under micro-batch, which cannot preempt).
	LongDecodes          int
	Preemptions, Resumes uint64
}

// LoadBench runs the two-phase scenario once per scheduler mode. Both
// engines are configured identically — one worker, one batch slot —
// so the only difference is the dispatch architecture: can a decode
// yield the engine mid-flight, or does admission mean running to
// completion?
func LoadBench(m *model.Model, prompts []string, cfg LoadBenchConfig) ([]LoadBenchRow, error) {
	cfg = cfg.withDefaults()
	if len(prompts) < 2 {
		return nil, fmt.Errorf("load bench needs at least 2 prompts, got %d", len(prompts))
	}
	// The gate measures scheduler-induced latency, not collector-induced
	// latency: the background decode allocates on every step, and on a
	// single-core CI runner the resulting GC assists land in the loaded
	// phase's short-request tail, swamping the millisecond-scale
	// scheduling effect under test. Collect now, then hold GC off for
	// the measurement (the phases run on a bounded heap for about a
	// second each) and restore the collector on the way out.
	gcPct := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(gcPct)
	runtime.GC()
	longPrompt, shortPrompts := prompts[0], prompts[1:]
	var rows []LoadBenchRow
	for _, sched := range cfg.Schedulers {
		eng := serve.NewEngine(m, serve.Config{
			Scheduler: sched, Workers: 1, MaxBatch: 1,
			PreemptQuantum: cfg.PreemptQuantum,
			QueueSize:      4 * cfg.Shorts, CacheSize: -1, NoDedup: true,
		})
		row, err := driveLoad(eng, sched, longPrompt, shortPrompts, cfg)
		eng.Close()
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// driveLoad measures one engine through both phases.
func driveLoad(eng *serve.Engine, sched, longPrompt string, shortPrompts []string, cfg LoadBenchConfig) (LoadBenchRow, error) {
	ctx := context.Background()
	shortReq := func(i int, seed int64) serve.Request {
		return serve.Request{
			Prompt: shortPrompts[i%len(shortPrompts)],
			Options: core.Options{
				Mode: core.ModeOurs, Temperature: 0.6,
				MaxNewTokens: cfg.ShortTokens, Seed: seed,
			},
		}
	}
	// Warm the session cache over the whole prompt set so neither phase
	// pays first-touch prompt preparation the other skipped.
	for i := range shortPrompts {
		if resp, err := eng.Generate(ctx, shortReq(i, -1)); err != nil || resp.Err != nil {
			return LoadBenchRow{}, fmt.Errorf("%s warmup %d: %v / %v", sched, i, err, resp.Err)
		}
	}

	// Both phases measure the identical request set — same prompts,
	// same seeds — so the loaded/unloaded ratio isolates scheduling:
	// per-request decode work (which varies with the sampled draft
	// trees) cancels instead of adding workload noise to the tail.
	//
	// Each phase discards a short ramp before measuring: the loaded
	// phase only reaches steady state once the background decode's
	// session path is cached (its first passes grow the trie and the
	// heap), and the gate pins the steady-state contrast, not the ramp.
	// Both phases discard identically so neither gets a head start.
	const rampShorts = 16
	measure := func(seedBase int64) ([]float64, error) {
		lat := make([]float64, 0, cfg.Shorts)
		for i := 0; i < rampShorts+cfg.Shorts; i++ {
			time.Sleep(cfg.ThinkTime)
			t0 := time.Now()
			resp, err := eng.Generate(ctx, shortReq(i, seedBase+int64(i)))
			if err != nil || resp.Err != nil {
				return nil, fmt.Errorf("%s short %d: %v / %v", sched, i, err, resp.Err)
			}
			if i >= rampShorts {
				lat = append(lat, float64(time.Since(t0))/float64(time.Millisecond))
			}
		}
		return lat, nil
	}

	unloaded, err := measure(loadBenchSeedBase)
	if err != nil {
		return LoadBenchRow{}, err
	}

	// Loaded phase: a background client keeps exactly one long NTP
	// decode in flight (re-issuing as each completes) until the last
	// short is answered.
	preBefore := eng.Metrics().Preemptions
	var stop atomic.Bool
	longStarted := make(chan struct{})
	var startOnce sync.Once
	longDone := make(chan int, 1)
	longErr := make(chan error, 1)
	go func() {
		n := 0
		for !stop.Load() {
			req := serve.Request{
				Prompt: longPrompt,
				Options: core.Options{
					Strategy: "ntp", MaxNewTokens: cfg.LongTokens, Seed: int64(n),
				},
				// The first step of the first long decode opens the gate:
				// shorts are only measured against a genuinely loaded engine.
				OnStep: func(core.StepEvent) { startOnce.Do(func() { close(longStarted) }) },
			}
			resp, err := eng.Generate(ctx, req)
			if err != nil || resp.Err != nil {
				longErr <- fmt.Errorf("%s long decode %d: %v / %v", sched, n, err, resp.Err)
				longDone <- n
				return
			}
			n++
		}
		longDone <- n
	}()
	select {
	case <-longStarted:
	case err := <-longErr:
		<-longDone
		return LoadBenchRow{}, err
	}
	loaded, err := measure(loadBenchSeedBase)
	stop.Store(true)
	longDecodes := <-longDone
	select {
	case lerr := <-longErr:
		return LoadBenchRow{}, lerr
	default:
	}
	if err != nil {
		return LoadBenchRow{}, err
	}

	mt := eng.Metrics()
	row := LoadBenchRow{
		Scheduler:   sched,
		Shorts:      cfg.Shorts,
		LongDecodes: longDecodes,
		Preemptions: mt.Preemptions - preBefore,
		Resumes:     mt.Resumes,
	}
	row.UnloadedMeanMS, row.UnloadedP95MS = meanAndP95(unloaded)
	row.LoadedMeanMS, row.LoadedP95MS = meanAndP95(loaded)
	if row.UnloadedP95MS > 0 {
		row.LatencyRatio = row.LoadedP95MS / row.UnloadedP95MS
	}
	return row, nil
}

func meanAndP95(lat []float64) (mean, p95 float64) {
	var sum float64
	for _, l := range lat {
		sum += l
	}
	sorted := append([]float64(nil), lat...)
	sort.Float64s(sorted)
	return sum / float64(len(lat)), percentile(sorted, 0.95)
}

// RunLoadBench trains one model and runs the latency-under-load
// scenario over the benchmark prompt set.
func (r *Runner) RunLoadBench(cfg LoadBenchConfig) ([]LoadBenchRow, error) {
	mcfg := r.setup.Models[0]
	m := model.Train(r.toks[mcfg.Name], mcfg, model.SchemeOurs, r.examples)
	return LoadBench(m, r.speedPrompts(), cfg)
}
