package experiments

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/serve"
)

// FleetBenchConfig sizes a fleet load scenario: a shared-prefix
// workload (a small prompt set with repeated seeds, the retry/n-sample
// pattern production traffic shows) fired by concurrent clients at a
// multi-replica fleet, once per routing policy.
type FleetBenchConfig struct {
	// Replicas is the fleet size (default 4).
	Replicas int
	// Clients is the number of concurrent load generators (default 8).
	Clients int
	// Rounds is requests per client (default 12).
	Rounds int
	// Prompts is the distinct-prompt count of the shared-prefix
	// workload (default 8).
	Prompts int
	// Routers are the routing policies to compare (default: all four).
	Routers []string
	// Workers/CacheSize size each replica engine (defaults 2 / 256).
	Workers   int
	CacheSize int
}

func (c FleetBenchConfig) withDefaults() FleetBenchConfig {
	if c.Replicas <= 0 {
		c.Replicas = 4
	}
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.Rounds <= 0 {
		c.Rounds = 12
	}
	if c.Prompts <= 0 {
		c.Prompts = 8
	}
	if len(c.Routers) == 0 {
		c.Routers = []string{"prefix-affinity", "least-loaded", "round-robin", "random"}
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	return c
}

// FleetBenchRow is one routing policy's measured outcome. Every
// latency column is measured wall-clock at the client — the honest
// quantity "Speculative Decoding: Performance or Illusion?" insists
// on — not the simulated cost model.
type FleetBenchRow struct {
	Router   string
	Replicas int
	Requests int
	// CacheHitRate / PrefixHitRate / DedupHits aggregate over the
	// fleet's engines: the quantities affinity routing exists to raise.
	CacheHitRate  float64
	PrefixHitRate float64
	DedupHits     uint64
	// ThroughputRPS is completed requests per wall-clock second.
	ThroughputRPS float64
	// Wall-clock latency per request, measured at the client.
	MeanWallMS float64
	P50WallMS  float64
	P95WallMS  float64
	P99WallMS  float64
}

// FleetBench runs the load scenario against fleets built over one
// trained model, one fleet per routing policy. The workload schedule
// is identical across policies (client c's k-th request is always the
// same prompt and seed), so rows differ only by routing.
func FleetBench(m *model.Model, prompts []string, cfg FleetBenchConfig) ([]FleetBenchRow, error) {
	cfg = cfg.withDefaults()
	if len(prompts) < cfg.Prompts {
		return nil, fmt.Errorf("fleet bench needs %d prompts, got %d", cfg.Prompts, len(prompts))
	}
	prompts = prompts[:cfg.Prompts]
	var rows []FleetBenchRow
	for _, routerName := range cfg.Routers {
		router, err := cluster.NewRouter(routerName)
		if err != nil {
			return nil, err
		}
		specs := make([]cluster.ReplicaSpec, cfg.Replicas)
		for i := range specs {
			specs[i] = cluster.ReplicaSpec{
				Model:  m,
				Engine: serve.Config{Workers: cfg.Workers, CacheSize: cfg.CacheSize},
			}
		}
		fleet, err := cluster.New(specs, cluster.Config{Router: router})
		if err != nil {
			return nil, err
		}
		row, err := driveFleet(fleet, prompts, cfg)
		fleet.Close()
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// driveFleet fires the workload and measures.
func driveFleet(fleet *cluster.Fleet, prompts []string, cfg FleetBenchConfig) (FleetBenchRow, error) {
	total := cfg.Clients * cfg.Rounds
	latencies := make([]float64, total)
	errs := make([]error, cfg.Clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < cfg.Rounds; k++ {
				req := serve.Request{
					Prompt: prompts[(c+k)%len(prompts)],
					// Seeds repeat every three rounds, so identical
					// (prompt, seed) pairs recur across clients and
					// rounds — the cache- and dedup-hittable share of
					// the workload.
					Options: benchOptions(int64(k % 3)),
				}
				t0 := time.Now()
				resp, err := fleet.Generate(context.Background(), req)
				if err != nil {
					errs[c] = fmt.Errorf("client %d round %d: %w", c, k, err)
					return
				}
				_ = resp
				latencies[c*cfg.Rounds+k] = float64(time.Since(t0)) / float64(time.Millisecond)
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return FleetBenchRow{}, err
		}
	}

	var sum float64
	for _, l := range latencies {
		sum += l
	}
	sort.Float64s(latencies)
	fm := fleet.Metrics()
	engine := fm.Fleet
	row := FleetBenchRow{
		Router:        fm.Router,
		Replicas:      fm.Replicas,
		Requests:      total,
		CacheHitRate:  engine.CacheHitRate,
		DedupHits:     engine.DedupHits,
		ThroughputRPS: float64(total) / elapsed.Seconds(),
		MeanWallMS:    sum / float64(total),
		P50WallMS:     percentile(latencies, 0.50),
		P95WallMS:     percentile(latencies, 0.95),
		P99WallMS:     percentile(latencies, 0.99),
	}
	// Partial hits count as reuse: with the trie cache, shared-prefix
	// traffic mostly forks mid-prompt sessions rather than matching
	// whole prompts.
	row.PrefixHitRate = engine.PrefixCacheHitRate
	return row, nil
}

// benchOptions is the fleet-bench decode option set: sampled (so
// decodes cost real work) but bounded, with the round's seed.
func benchOptions(seed int64) core.Options {
	return core.Options{Temperature: 0.6, MaxNewTokens: 48, Seed: seed}
}

// percentile reads the p-quantile from sorted values (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// RunFleetBench trains one model on the full corpus and runs the fleet
// load scenario over the benchmark prompt set — the measured-wall-clock
// counterpart to the simulated tables: throughput and latency
// percentiles per routing policy, plus the cache-hit rates that
// prefix-affinity routing exists to raise.
func (r *Runner) RunFleetBench(cfg FleetBenchConfig) ([]FleetBenchRow, error) {
	mcfg := r.setup.Models[0]
	m := model.Train(r.toks[mcfg.Name], mcfg, model.SchemeOurs, r.examples)
	return FleetBench(m, r.speedPrompts(), cfg)
}
