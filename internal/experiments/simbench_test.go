package experiments

import "testing"

// TestSimBenchPassRateFloor pins the sim-eval tier: greedy decodes of
// the benchmark problems, elaborated and run against their
// self-checking testbenches, must clear a sim-pass-rate floor on the
// speculative strategies — and the grammar-constrained drafter must
// not trade quality for speed: its sim pass rate stays at or above
// plain ours-tree's. Greedy decoding is deterministic, so the rates
// are stable.
func TestSimBenchPassRateFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	r := NewRunner(quickSetup())
	rows := r.RunSimBench()
	if len(rows) != len(SimStrategies) {
		t.Fatalf("rows = %d, want %d (one model in Quick setup)", len(rows), len(SimStrategies))
	}
	byStrategy := map[string]SimBenchRow{}
	for _, row := range rows {
		byStrategy[row.Strategy] = row
		t.Logf("%-20s syntax %3d/%d (%.1f%%)  sim-pass %3d/%d (%.1f%%)",
			row.Strategy, row.SyntaxOK, row.Problems, row.SyntaxRate,
			row.SimPassed, row.Problems, row.SimPassRate)
		if row.SimPassed > row.SyntaxOK {
			t.Errorf("%s: more sim passes (%d) than parsable designs (%d)",
				row.Strategy, row.SimPassed, row.SyntaxOK)
		}
	}
	gt, ot := byStrategy["GrammarTree"], byStrategy["OursTree"]
	if gt.SimPassRate < ot.SimPassRate {
		t.Errorf("grammar-tree sim pass rate %.1f%% below ours-tree's %.1f%% — quality traded for speed",
			gt.SimPassRate, ot.SimPassRate)
	}
	// The quick-scale model passes ~a quarter of benches under NTP and
	// ~an eighth under speculative fine-tuning; the floors sit below
	// those deterministic rates with a couple problems of headroom.
	for _, name := range []string{"OursTree", "GrammarTree"} {
		if row := byStrategy[name]; row.SimPassRate < 10 {
			t.Errorf("%s sim pass rate %.1f%% below the 10%% floor", name, row.SimPassRate)
		}
	}
	if row := byStrategy["NTP"]; row.SimPassRate < 20 {
		t.Errorf("NTP sim pass rate %.1f%% below the 20%% floor", row.SimPassRate)
	}
	if lt, ntp := byStrategy["GrammarLookupTree"], byStrategy["NTP"]; lt.SimPassed != ntp.SimPassed {
		t.Errorf("lossless grammar-lookup-tree sim passes (%d) diverged from ntp's (%d)",
			lt.SimPassed, ntp.SimPassed)
	}
}
