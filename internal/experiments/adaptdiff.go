// The adapt differential is the losslessness contract of the
// self-tuning speculation controller: the controller may only change
// WHICH lossless configuration a request decodes under — never the
// bytes a given (prompt, strategy, seed, budget) produces. RunAdaptDiff
// decodes the full strategy matrix through three serve.Engines per
// entry — controller off, shadowing, and applied — with every request
// fully pinned (explicit strategy, explicit tree budget, fixed seed),
// and requires byte-identical results across all three, while the
// shadow and applied controllers must each have recorded a decision
// for every submission and the applied controller must have rerouted
// nothing (there was no hole to fill). CI runs it inside the
// differential job next to the cache-admissibility gate.
package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/serve"
)

// AdaptDiffReport summarizes a clean adapt-mode differential run.
type AdaptDiffReport struct {
	// Cases is the number of (prompt, strategy, seed) decodes compared
	// (each decoded three times, once per adapt mode).
	Cases int
	// Decisions totals the controller decisions recorded by the shadow
	// and applied engines — proof the controller was actually consulted
	// rather than bypassed.
	Decisions uint64
	// Shadowed counts shadow-mode decisions (recorded, not applied).
	Shadowed uint64
	// Reroutes counts applied-mode strategy substitutions; a clean run
	// reports zero, because every request pinned its own strategy.
	Reroutes uint64
}

// adaptDiffModes labels the three controller configurations under test.
var adaptDiffModes = []string{serve.AdaptOff, serve.AdaptShadow, serve.AdaptOn}

// RunAdaptDiff decodes every StrategyMatrix entry over a shared-stem
// workload through engines in all three adapt modes and returns an
// error on the first output divergence. Session caching and dedup are
// disabled so every decode runs end to end — the comparison is about
// the controller's influence on the decode itself, not cache keying.
func (r *Runner) RunAdaptDiff(cfg DiffConfig) (AdaptDiffReport, error) {
	cfg = cfg.withDefaults()
	prompts := SharedStemPrompts(cfg.Families, cfg.Variants)
	prompts = append(prompts, prompts[0]+" Add an active-high enable input en.")
	var report AdaptDiffReport
	ctx := context.Background()
	for _, mcfg := range r.setup.Models {
		tk := r.toks[mcfg.Name]
		trained := map[model.Scheme]*model.Model{}
		for _, entry := range StrategyMatrix {
			m := trained[entry.Scheme]
			if m == nil {
				m = model.Train(tk, mcfg, entry.Scheme, r.examples)
				trained[entry.Scheme] = m
			}
			// Every request is fully pinned: explicit strategy, explicit
			// tree budget (inert for linear drafters, but identical across
			// engines), fixed seed. The applied controller has no hole to
			// fill, so any byte it changes is a violation.
			var optsSet []core.Options
			optsSet = append(optsSet, core.Options{
				Strategy: entry.Strategy, TreeBudget: 48, MaxNewTokens: cfg.MaxNewTokens,
			})
			for _, seed := range cfg.Seeds {
				optsSet = append(optsSet, core.Options{
					Strategy: entry.Strategy, TreeBudget: 48,
					Temperature: 0.8, Seed: seed, MaxNewTokens: cfg.MaxNewTokens,
				})
			}
			engs := make(map[string]*serve.Engine, len(adaptDiffModes))
			for _, mode := range adaptDiffModes {
				engs[mode] = serve.NewEngine(m, serve.Config{
					Workers: 2, CacheSize: -1, NoDedup: true, Adapt: mode,
				})
			}
			var submissions uint64
			for pi, prompt := range prompts {
				for _, opts := range optsSet {
					var ref *serve.Response
					for _, mode := range adaptDiffModes {
						resp, err := engs[mode].Generate(ctx, serve.Request{Prompt: prompt, Options: opts})
						if err == nil && resp.Err != nil {
							err = resp.Err
						}
						if err != nil {
							closeEngines(engs)
							return report, fmt.Errorf("%s/%s: adapt mode %q failed on prompt %d: %w",
								mcfg.Name, entry.Strategy, mode, pi, err)
						}
						if mode == serve.AdaptOff {
							ref = resp
							report.Cases++
							continue
						}
						if err := sameResult(ref.Result, resp.Result); err != nil {
							closeEngines(engs)
							return report, fmt.Errorf(
								"%s/%s: adapt mode %q diverged from off on prompt %d (temp=%g seed=%d budget=%d): %w",
								mcfg.Name, entry.Strategy, mode, pi, opts.Temperature, opts.Seed, opts.TreeBudget, err)
						}
						if resp.Strategy != ref.Strategy {
							closeEngines(engs)
							return report, fmt.Errorf(
								"%s/%s: adapt mode %q decoded prompt %d under %q, off under %q — a pinned strategy was substituted",
								mcfg.Name, entry.Strategy, mode, pi, resp.Strategy, ref.Strategy)
						}
					}
					submissions++
				}
			}
			for _, mode := range []string{serve.AdaptShadow, serve.AdaptOn} {
				ms := engs[mode].Metrics()
				if ms.AdaptDecisions != submissions {
					closeEngines(engs)
					return report, fmt.Errorf("%s/%s: adapt mode %q recorded %d decisions for %d submissions — the controller was bypassed",
						mcfg.Name, entry.Strategy, mode, ms.AdaptDecisions, submissions)
				}
				report.Decisions += ms.AdaptDecisions
				report.Shadowed += ms.AdaptShadowed
				report.Reroutes += ms.AdaptReroutes
			}
			closeEngines(engs)
		}
	}
	if report.Reroutes != 0 {
		return report, fmt.Errorf("applied controller rerouted %d fully-pinned requests", report.Reroutes)
	}
	return report, nil
}

func closeEngines(engs map[string]*serve.Engine) {
	for _, e := range engs {
		e.Close()
	}
}
