package experiments

import (
	"fmt"
	"testing"

	"repro/internal/model"
	"repro/internal/serve"
)

// maxLoadedRatio is the CI latency-under-load gate: with one long
// decode perpetually in flight, short-request p95 must stay within
// 1.5x of the unloaded p95 under the continuous scheduler. The
// micro-batch pool must FAIL the same bound — if it ever passes, the
// scenario stopped exercising head-of-line blocking and the gate
// proves nothing about the scheduler.
const maxLoadedRatio = 1.5

func loadBenchModel(tb testing.TB) (*model.Model, []string) {
	tb.Helper()
	r := NewRunner(quickSetup())
	mcfg := r.setup.Models[0]
	return model.Train(r.toks[mcfg.Name], mcfg, model.SchemeOurs, r.examples), r.speedPrompts()
}

// TestLoadBenchLatencyGate pins the tentpole's whole point as a CI
// bench: continuous scheduling holds short-request p95 under load,
// micro-batch dispatch does not. Wall-clock measurement on shared CI
// runners is noisy, so the contrast gets up to three attempts; the
// bound itself sits well clear of both sides (continuous lands near
// 1.1x, micro-batch far above 2x).
func TestLoadBenchLatencyGate(t *testing.T) {
	m, prompts := loadBenchModel(t)
	var lastErr error
	for attempt := 1; attempt <= 3; attempt++ {
		rows, err := LoadBench(m, prompts, LoadBenchConfig{})
		if err != nil {
			t.Fatal(err)
		}
		bySched := map[string]LoadBenchRow{}
		for _, row := range rows {
			bySched[row.Scheduler] = row
			t.Logf("attempt %d: %-10s unloaded p95=%.3fms loaded p95=%.3fms ratio=%.2f preemptions=%d long_decodes=%d",
				attempt, row.Scheduler, row.UnloadedP95MS, row.LoadedP95MS, row.LatencyRatio, row.Preemptions, row.LongDecodes)
		}
		cont, micro := bySched[serve.SchedContinuous], bySched[serve.SchedMicroBatch]
		switch {
		case cont.LatencyRatio > maxLoadedRatio:
			lastErr = fmt.Errorf("continuous loaded/unloaded p95 ratio %.2f exceeds %.1f", cont.LatencyRatio, maxLoadedRatio)
		case cont.Preemptions < 1:
			lastErr = fmt.Errorf("continuous loaded phase never preempted; the bench did not exercise the scheduler")
		case micro.LatencyRatio <= maxLoadedRatio:
			lastErr = fmt.Errorf("micro-batch ratio %.2f within %.1f; the scenario lost its head-of-line blocking", micro.LatencyRatio, maxLoadedRatio)
		default:
			return
		}
		t.Logf("attempt %d failed: %v", attempt, lastErr)
	}
	t.Fatal(lastErr)
}

// BenchmarkLoadBench reports the gated latencies as benchmark metrics
// so the CI bench-smoke artifact carries them per run.
func BenchmarkLoadBench(b *testing.B) {
	m, prompts := loadBenchModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := LoadBench(m, prompts, LoadBenchConfig{})
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			prefix := row.Scheduler
			b.ReportMetric(row.UnloadedP95MS, prefix+"_unloaded_p95_ms")
			b.ReportMetric(row.LoadedP95MS, prefix+"_loaded_p95_ms")
			b.ReportMetric(row.LatencyRatio, prefix+"_p95_ratio")
		}
	}
}
