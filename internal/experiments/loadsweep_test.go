package experiments

import (
	"math"
	"testing"
)

// TestLoadSweepControllerDominates is the adapt-gate: across the swept
// load points the self-tuning controller must sit on the
// throughput/latency frontier the static (strategy, budget) grid
// spans. Concretely, at EVERY load point the adaptive row must be
// within tolerance of the best static configuration on both measured
// throughput and short-request p95, and at the low-load and high-load
// extremes it must strictly beat at least one static pair on both
// axes — one engine, no hand tuning, no configuration it is allowed
// to lose to. The simulation and the controller are deterministic, so
// a regression in either the control law or the decode strategies
// moves these rows reproducibly.
func TestLoadSweepControllerDominates(t *testing.T) {
	r := NewRunner(quickSetup())
	rows, profiles, err := r.RunLoadSweep(LoadSweepConfig{})
	if err != nil {
		t.Fatal(err)
	}

	// Profile sanity: the grid must preserve the contrasts the sweep
	// exists to measure — trees propose nodes and monopolize slots,
	// linear Ours accepts multiple tokens per slot-cheap step, NTP is
	// the one-token-one-slot baseline.
	byName := map[string]*SweepProfile{}
	for _, p := range profiles {
		byName[p.Name()] = p
	}
	tree, ours, ntp := byName["OursTree:96"], byName["Ours"], byName["NTP"]
	if tree == nil || ours == nil || ntp == nil {
		t.Fatalf("profile grid incomplete: %v", profiles)
	}
	if tree.NodesPerStep <= 1 || tree.SlotsPerStep <= ours.SlotsPerStep {
		t.Fatalf("tree profile lost its width: %+v", tree)
	}
	if ours.TokPerStep <= 1.5 {
		t.Fatalf("Ours profile lost multi-token acceptance: %+v", ours)
	}
	if ntp.TokPerStep > 1 || ntp.SlotsPerStep != 1 {
		t.Fatalf("NTP profile is not the one-slot baseline: %+v", ntp)
	}

	// Group rows per load point, keeping sweep order.
	var fracs []float64
	static := map[float64][]LoadSweepRow{}
	adaptive := map[float64]LoadSweepRow{}
	for _, row := range rows {
		if _, seen := static[row.LoadFrac]; !seen && !row.Adaptive {
			fracs = append(fracs, row.LoadFrac)
		}
		if row.Adaptive {
			adaptive[row.LoadFrac] = row
		} else {
			static[row.LoadFrac] = append(static[row.LoadFrac], row)
		}
	}
	if len(fracs) < 3 {
		t.Fatalf("sweep covered %d load points, want >= 3", len(fracs))
	}

	const (
		thrTol = 0.93 // adaptive throughput >= 93% of best static
		p95Tol = 1.25 // adaptive p95 <= 125% of best static
	)
	for i, frac := range fracs {
		ad, ok := adaptive[frac]
		if !ok {
			t.Fatalf("load %.2f: no adaptive row", frac)
		}
		if ad.Decisions == 0 || ad.Requests == 0 {
			t.Fatalf("load %.2f: controller made no decisions: %+v", frac, ad)
		}
		bestThr, bestP95 := 0.0, math.Inf(1)
		for _, s := range static[frac] {
			if s.ThroughputRPS > bestThr {
				bestThr = s.ThroughputRPS
			}
			if s.P95MS < bestP95 {
				bestP95 = s.P95MS
			}
		}
		if ad.ThroughputRPS < thrTol*bestThr {
			t.Errorf("load %.2f: adaptive throughput %.2f rps below %.0f%% of best static %.2f",
				frac, ad.ThroughputRPS, thrTol*100, bestThr)
		}
		if ad.P95MS > p95Tol*bestP95 {
			t.Errorf("load %.2f: adaptive p95 %.1f ms above %.0f%% of best static %.1f",
				frac, ad.P95MS, p95Tol*100, bestP95)
		}
		// At the extremes the controller must strictly dominate at
		// least one static pair on BOTH axes: a trivial controller
		// that always picks one fixed configuration ties that
		// configuration everywhere and fails this at one end or the
		// other (the statics' own rows show no single pair wins both
		// extremes' frontier corners against the whole grid).
		if i == 0 || i == len(fracs)-1 {
			dominated := false
			for _, s := range static[frac] {
				if ad.ThroughputRPS > s.ThroughputRPS && ad.P95MS < s.P95MS {
					dominated = true
					break
				}
			}
			if !dominated {
				t.Errorf("load %.2f: adaptive row %+v strictly dominates no static pair", frac, ad)
			}
		}
	}

	// The ladder must actually engage under load: the top point runs
	// near saturation, where holding full tree drafting for every
	// decision would monopolize verification sweeps.
	top := adaptive[fracs[len(fracs)-1]]
	if top.Downgrades == 0 {
		t.Errorf("near saturation the controller never downgraded: %+v", top)
	}
	// And stay quiet when idle: no downgrades at the low point.
	if low := adaptive[fracs[0]]; low.Downgrades != 0 {
		t.Errorf("idle engine saw %d downgrades", low.Downgrades)
	}
}

// TestLoadSweepDeterministic pins that the whole sweep — profiling,
// simulation, controller — replays identically, which is what lets CI
// assert on its rows at all.
func TestLoadSweepDeterministic(t *testing.T) {
	r := NewRunner(quickSetup())
	cfg := LoadSweepConfig{LoadFracs: []float64{0.5}, Requests: 48, Ramp: 16}
	a, _, err := r.RunLoadSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := r.RunLoadSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs across replays:\n  %+v\n  %+v", i, a[i], b[i])
		}
	}
}
