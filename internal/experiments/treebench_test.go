package experiments

import "testing"

// TestTreeBenchTreeBeatsLinearMedusa pins the subsystem's acceptance
// criterion: on the eval suite's prompt schedule, tree-structured
// Medusa drafting achieves strictly higher mean accepted length than
// linear Medusa on the same trained model — and the remaining pairs
// never regress. Decodes are deterministic per seed, so this is a
// stable gate, not a flaky benchmark.
func TestTreeBenchTreeBeatsLinearMedusa(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	r := NewRunner(quickSetup())
	rows := r.RunTreeBench()
	if len(rows) != len(TreePairs) {
		t.Fatalf("rows = %d, want %d (one model in Quick setup)", len(rows), len(TreePairs))
	}
	byTree := map[string]TreeBenchRow{}
	for _, row := range rows {
		byTree[row.Tree] = row
		t.Logf("%-12s vs %-12s accepted %.3f -> %.3f (gain %.3f)  speed %.1f -> %.1f  nodes/step %.1f  util %.2f",
			row.Linear, row.Tree, row.LinearAccepted, row.TreeAccepted, row.AcceptedGain,
			row.LinearTokensPerSec, row.TreeTokensPerSec, row.TreeNodesPerStep, row.BudgetUtilization)
	}
	mt := byTree["MedusaTree"]
	if mt.TreeAccepted <= mt.LinearAccepted {
		t.Fatalf("medusa-tree mean accepted %.4f not strictly above linear medusa's %.4f",
			mt.TreeAccepted, mt.LinearAccepted)
	}
	for _, row := range rows {
		if row.TreeAccepted < row.LinearAccepted {
			t.Errorf("%s mean accepted %.4f regressed below linear %s's %.4f",
				row.Tree, row.TreeAccepted, row.Linear, row.LinearAccepted)
		}
		if row.TreeNodesPerStep <= 0 {
			t.Errorf("%s proposed no tree nodes", row.Tree)
		}
		if row.BudgetUtilization <= 0 || row.BudgetUtilization > 1 {
			t.Errorf("%s budget utilization %.4f outside (0, 1]", row.Tree, row.BudgetUtilization)
		}
		if row.TreeWallMSPerToken <= 0 || row.LinearWallMSPerToken <= 0 {
			t.Errorf("%s: wall-clock accounting missing: %+v", row.Tree, row)
		}
	}
}

// TestTreeLosslessGate runs the differential losslessness proof CI
// pins next to the cache-mode gate: greedy lookup-tree byte streams
// equal linear prompt-lookup's (and NTP's) on every model, in no more
// steps than linear, with drafting demonstrably engaged.
func TestTreeLosslessGate(t *testing.T) {
	r := NewRunner(quickSetup())
	report, err := r.RunTreeLossless()
	if err != nil {
		t.Fatal(err)
	}
	if report.Cases == 0 {
		t.Fatal("no cases compared")
	}
	t.Logf("lossless: %d cases byte-identical; steps ntp=%d linear=%d tree=%d",
		report.Cases, report.StepsNTP, report.StepsLinear, report.StepsTree)
}
