// SimBench is the simulation-in-the-loop quality tier: instead of
// stopping at "does it parse", every generated design is elaborated
// and run against the benchmark problem's self-checking testbench via
// the event-driven simulator, and the row reports what fraction of
// designs actually print TEST PASSED. The axis compares decoding
// strategies on the same trained backbones, so the column answers the
// paper's "speed and quality, all in one" claim directly: a drafting
// strategy that accelerated decoding by accepting sloppier tokens
// would show up here as a sim-pass-rate drop even when syntax rates
// stay flat.
package experiments

import (
	"context"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/serve"
)

// SimEntry pairs a training scheme with a decoding strategy for the
// sim-pass-rate comparison.
type SimEntry struct {
	Scheme   model.Scheme
	Strategy string
}

// SimStrategies is the sim-bench comparison axis: the plain NTP
// baseline, the paper's tree drafter, and its grammar-constrained
// lift — the pair the quality claim is about — plus the lossless
// grammar lookup variant on the NTP backbone.
var SimStrategies = []SimEntry{
	{Scheme: model.SchemeNTP, Strategy: "ntp"},
	{Scheme: model.SchemeOurs, Strategy: "ours-tree"},
	{Scheme: model.SchemeOurs, Strategy: "grammar-tree"},
	{Scheme: model.SchemeNTP, Strategy: "grammar-lookup-tree"},
}

// SimBenchRow is one (model, strategy) slice of the sim-pass grid.
type SimBenchRow struct {
	Model, Scheme, Strategy string
	// Problems is the benchmark problem count (both suites).
	Problems int
	// SyntaxOK counts designs that parse (the old quality ceiling);
	// SimPassed counts designs whose testbench simulation printed TEST
	// PASSED (the new, stricter floor).
	SyntaxOK, SimPassed int
	// SyntaxRate/SimPassRate are the corresponding percentages.
	SyntaxRate, SimPassRate float64
}

// RunSimBench decodes every benchmark problem greedily with each
// SimStrategies entry (one trained model per scheme, reused across
// strategies) and scores the outputs by parse and by testbench
// simulation. Greedy decoding keeps the tier deterministic, so the
// rates are stable gates rather than samples.
func (r *Runner) RunSimBench() []SimBenchRow {
	problems := bench.All()
	var rows []SimBenchRow
	for _, cfg := range r.setup.Models {
		tk := r.toks[cfg.Name]
		trained := map[model.Scheme]*model.Model{}
		for _, entry := range SimStrategies {
			m := trained[entry.Scheme]
			if m == nil {
				m = model.Train(tk, cfg, entry.Scheme, r.examples)
				trained[entry.Scheme] = m
			}
			reqs := make([]serve.Request, 0, len(problems))
			for _, p := range problems {
				reqs = append(reqs, serve.Request{
					Prompt:  p.Prompt,
					Options: core.Options{Strategy: entry.Strategy},
				})
			}
			eng := r.newEngine(m)
			resps := eng.GenerateBatch(context.Background(), reqs)
			eng.Close()
			row := SimBenchRow{
				Model: cfg.Name, Scheme: entry.Scheme.String(),
				Strategy: displayName(entry.Strategy), Problems: len(problems),
			}
			for i, resp := range resps {
				if resp.Err != nil {
					panic(resp.Err)
				}
				design := resp.Result.Text
				if bench.CheckSyntax(design) {
					row.SyntaxOK++
				}
				if bench.CheckFunction(design, problems[i]) {
					row.SimPassed++
				}
			}
			if row.Problems > 0 {
				row.SyntaxRate = 100 * float64(row.SyntaxOK) / float64(row.Problems)
				row.SimPassRate = 100 * float64(row.SimPassed) / float64(row.Problems)
			}
			rows = append(rows, row)
		}
	}
	return rows
}
