// The differential harness is the quality half of the prefix-cache
// story: "Speculative Decoding: Performance or Illusion?" shows serving
// optimizations earn their speedups only if measured — and trusted —
// honestly, and a session cache is only admissible if it provably
// changes nothing about outputs. RunDiffTest decodes the full strategy
// matrix four times — no session cache, whole-prompt LRU, token-prefix
// trie, and a trie-backed step-wise decode preempted (parked, sometimes
// dropped, resumed) at randomized step boundaries — over a workload
// built to stress every reuse path (shared stems, prefix extensions and
// truncations, exact repeats) and requires byte-identical results per
// (prompt, strategy, seed). The fourth mode is the continuous
// scheduler's admissibility proof: checkpoint/resume at any sweep
// boundary, with or without the session pages surviving the park, must
// never change bytes. CI runs it as a dedicated job next to the golden
// determinism gate.
package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/model"
)

// DiffConfig sizes the differential run.
type DiffConfig struct {
	// Families/Variants size the shared-stem workload (defaults 2 × 3).
	Families, Variants int
	// Seeds are the sampled-decode seeds per prompt; a greedy decode is
	// always included (default: one seed).
	Seeds []int64
	// MaxNewTokens bounds each decode (default 48).
	MaxNewTokens int
}

func (c DiffConfig) withDefaults() DiffConfig {
	if c.Families <= 0 {
		c.Families = 2
	}
	if c.Variants <= 0 {
		c.Variants = 3
	}
	if len(c.Seeds) == 0 {
		c.Seeds = []int64{7}
	}
	if c.MaxNewTokens <= 0 {
		c.MaxNewTokens = 48
	}
	return c
}

// DiffReport summarizes a clean differential run.
type DiffReport struct {
	// Cases is the number of (prompt, strategy, seed) decodes compared
	// (each decoded three times, once per cache mode).
	Cases int
	// PartialHits is the trie's partial-hit count across the run —
	// proof the comparison actually exercised mid-prompt forks rather
	// than trivially re-deriving every session.
	PartialHits uint64
	// Preemptions counts park/resume interruptions injected into the
	// step-wise decodes (Drops of those additionally discarded the
	// decode's session pages mid-flight) — proof the preemption mode
	// actually checkpointed rather than decoding straight through.
	Preemptions, Drops uint64
}

// diffModes labels the four session-cache configurations under test.
var diffModes = []string{"off", "whole", "trie", "preempt"}

// RunDiffTest decodes every StrategyMatrix entry over the workload with
// all three cache modes and returns an error on the first output
// divergence. Caches persist across the whole workload within one
// (model, scheme) pairing, so later prompts hit sessions forked from
// earlier ones — the trie is compared in its working state, not cold.
func (r *Runner) RunDiffTest(cfg DiffConfig) (DiffReport, error) {
	cfg = cfg.withDefaults()
	prompts := SharedStemPrompts(cfg.Families, cfg.Variants)
	// Reuse-path stressors: an exact repeat, a prefix truncation and an
	// extension of the first stem prompt.
	prompts = append(prompts,
		prompts[0],
		prompts[0][:len(prompts[0])/2],
		prompts[0]+" Add an active-high enable input en.",
	)
	var report DiffReport
	for _, mcfg := range r.setup.Models {
		tk := r.toks[mcfg.Name]
		trained := map[model.Scheme]*model.Model{}
		for _, entry := range StrategyMatrix {
			m := trained[entry.Scheme]
			if m == nil {
				m = model.Train(tk, mcfg, entry.Scheme, r.examples)
				trained[entry.Scheme] = m
			}
			trie := model.NewTrieCache(0)
			decs := map[string]*core.Decoder{
				"off":     core.NewDecoder(m),
				"whole":   core.NewDecoder(m).WithSessionCache(model.NewGenCache(256)),
				"trie":    core.NewDecoder(m).WithSessionCache(trie),
				"preempt": core.NewDecoder(m).WithSessionCache(model.NewTrieCache(0)),
			}
			// Deterministic preemption schedule, fixed per matrix entry
			// so a failure replays identically.
			rng := rand.New(rand.NewSource(42))
			var optsSet []core.Options
			optsSet = append(optsSet, core.Options{Strategy: entry.Strategy, MaxNewTokens: cfg.MaxNewTokens})
			for _, seed := range cfg.Seeds {
				optsSet = append(optsSet, core.Options{
					Strategy: entry.Strategy, Temperature: 0.8, Seed: seed, MaxNewTokens: cfg.MaxNewTokens,
				})
			}
			for pi, prompt := range prompts {
				for _, opts := range optsSet {
					var ref *core.Result
					for _, mode := range diffModes {
						var res *core.Result
						if mode == "preempt" {
							var err error
							if res, err = preemptedDecode(decs[mode], m, prompt, opts, rng, &report); err != nil {
								return report, fmt.Errorf("%s/%s: preempted decode failed on prompt %d: %w",
									mcfg.Name, entry.Strategy, pi, err)
							}
						} else {
							res = decs[mode].Generate(prompt, opts)
						}
						if mode == "off" {
							ref = res
							report.Cases++
							continue
						}
						if err := sameResult(ref, res); err != nil {
							return report, fmt.Errorf(
								"%s/%s: cache mode %q diverged from cache-off on prompt %d (temp=%g seed=%d): %w",
								mcfg.Name, entry.Strategy, mode, pi, opts.Temperature, opts.Seed, err)
						}
					}
				}
			}
			report.PartialHits += trie.SessionStats().PartialHits
		}
	}
	if report.PartialHits == 0 {
		return report, fmt.Errorf("differential run never forked a mid-prompt session; the trie went untested")
	}
	if report.Preemptions == 0 || report.Drops == 0 {
		return report, fmt.Errorf("differential run injected %d preemptions (%d page drops); the checkpoint/resume path went untested",
			report.Preemptions, report.Drops)
	}
	return report, nil
}

// preemptedDecode runs one decode through the step-wise API, parking it
// at randomized step boundaries the way the continuous scheduler does —
// sometimes additionally dropping its session pages, as happens when a
// parked decode's pinned prefix is released under memory pressure —
// then resuming. The returned Result must be byte-identical to the
// uninterrupted decode; RunDiffTest enforces that against the cache-off
// reference.
func preemptedDecode(dec *core.Decoder, m *model.Model, prompt string, opts core.Options, rng *rand.Rand, report *DiffReport) (*core.Result, error) {
	st, err := dec.BeginDecode(context.Background(), model.CanonicalPromptIDs(m.Tokenizer(), prompt), opts, nil)
	if err != nil {
		return nil, err
	}
	for !st.Step() {
		if rng.Intn(3) != 0 {
			continue
		}
		st.Park()
		report.Preemptions++
		if rng.Intn(2) == 0 {
			st.Drop()
			report.Drops++
		}
		st.Resume()
	}
	return st.Finish()
}

// TreeLosslessReport summarizes a clean lossless run.
type TreeLosslessReport struct {
	// Cases is the number of (model, prompt) greedy decodes compared.
	Cases int
	// StepsNTP/StepsLinear/StepsTree total the forward passes each
	// strategy spent emitting the SAME byte streams — the proof that
	// the tree only changes cost, never content.
	StepsNTP, StepsLinear, StepsTree int
}

// RunTreeLossless is the losslessness half of the tree differential
// gate: greedy decoding through lookup-tree (greedy-exact screening of
// a multi-branch lookup tree) must emit byte streams identical to
// linear prompt-lookup's — and to plain NTP's — on every model. Step
// counts are deliberately NOT compared (fewer steps is the point);
// instead the tree must never spend MORE steps than the linear
// drafter, and the run must show drafting actually engaged (strictly
// fewer steps than NTP overall), or the gate proved nothing.
func (r *Runner) RunTreeLossless() (TreeLosslessReport, error) {
	prompts := SharedStemPrompts(2, 3)
	prompts = append(prompts, prompts[0]+" Add an active-high enable input en.")
	var report TreeLosslessReport
	for _, mcfg := range r.setup.Models {
		m := model.Train(r.toks[mcfg.Name], mcfg, model.SchemeNTP, r.examples)
		dec := core.NewDecoder(m)
		for pi, prompt := range prompts {
			ntp := dec.Generate(prompt, core.Options{Strategy: "ntp"})
			lin := dec.Generate(prompt, core.Options{Strategy: "prompt-lookup"})
			tree := dec.Generate(prompt, core.Options{Strategy: "lookup-tree"})
			report.Cases++
			report.StepsNTP += ntp.Steps
			report.StepsLinear += lin.Steps
			report.StepsTree += tree.Steps
			if err := sameBytes(ntp, lin); err != nil {
				return report, fmt.Errorf("%s: prompt-lookup diverged from ntp on prompt %d: %w", mcfg.Name, pi, err)
			}
			if err := sameBytes(ntp, tree); err != nil {
				return report, fmt.Errorf("%s: lookup-tree diverged from ntp on prompt %d: %w", mcfg.Name, pi, err)
			}
			if tree.Steps > lin.Steps {
				return report, fmt.Errorf("%s: lookup-tree spent %d steps on prompt %d, linear prompt-lookup %d",
					mcfg.Name, tree.Steps, pi, lin.Steps)
			}
		}
	}
	if report.StepsTree >= report.StepsNTP {
		return report, fmt.Errorf("lookup-tree spent %d steps to NTP's %d; drafting never engaged, the gate proved nothing",
			report.StepsTree, report.StepsNTP)
	}
	return report, nil
}

// sameBytes compares two decodes on emitted content only — raw tokens
// and text — ignoring step counts and simulated cost, which lossless
// speculative decoding exists to change.
func sameBytes(want, got *core.Result) error {
	if got.Text != want.Text {
		return fmt.Errorf("text diverged\n got: %q\nwant: %q", got.Text, want.Text)
	}
	if len(got.Tokens) != len(want.Tokens) {
		return fmt.Errorf("token count %d, want %d", len(got.Tokens), len(want.Tokens))
	}
	for i := range want.Tokens {
		if got.Tokens[i] != want.Tokens[i] {
			return fmt.Errorf("token %d is %d, want %d", i, got.Tokens[i], want.Tokens[i])
		}
	}
	return nil
}

// sameResult compares two decodes for byte identity — tokens, steps,
// truncation accounting and the simulated cost model must all agree.
func sameResult(want, got *core.Result) error {
	if got.Text != want.Text {
		return fmt.Errorf("text diverged\n got: %q\nwant: %q", got.Text, want.Text)
	}
	if len(got.Tokens) != len(want.Tokens) {
		return fmt.Errorf("token count %d, want %d", len(got.Tokens), len(want.Tokens))
	}
	for i := range want.Tokens {
		if got.Tokens[i] != want.Tokens[i] {
			return fmt.Errorf("token %d is %d, want %d", i, got.Tokens[i], want.Tokens[i])
		}
	}
	if got.Steps != want.Steps || got.TruncatedTokens != want.TruncatedTokens {
		return fmt.Errorf("steps=%d truncated=%d, want steps=%d truncated=%d",
			got.Steps, got.TruncatedTokens, want.Steps, want.TruncatedTokens)
	}
	if got.SimulatedMS != want.SimulatedMS {
		return fmt.Errorf("simulated ms %v, want %v", got.SimulatedMS, want.SimulatedMS)
	}
	return nil
}
