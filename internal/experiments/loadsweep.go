// The load sweep is the adaptive-speculation controller's report card:
// it asks whether one self-tuning engine can sit on the
// throughput/latency frontier that a fleet operator would otherwise
// have to find by hand-picking a (strategy, budget) pair per traffic
// level. Wall-clock measurement cannot answer that on a shared CI
// runner — the contrast under test is sub-millisecond scheduling
// arithmetic — so the sweep runs a deterministic discrete-event
// simulation of a batched accelerator over decode profiles MEASURED
// from real decodes: each configuration's clean tokens per
// verification sweep, verification slots consumed per sweep (1 + draft
// tokens that must be checked), and cost-model time all come from
// decoding the benchmark prompts through the actual strategies. The
// simulator then offers the same deterministic arrival schedule to
// every static configuration and to the real adapt.Controller, and
// compares throughput and short-request p95 per offered-load point.
// Identical inputs produce identical rows on every run, so CI can pin
// the dominance claim exactly.
package experiments

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/core/spec/adapt"
	"repro/internal/model"
)

// LoadSweepConfig sizes the simulated load sweep.
type LoadSweepConfig struct {
	// LoadFracs are the offered-load points as fractions of the best
	// static configuration's short-request capacity (default
	// 0.15 / 0.50 / 0.85 — an idle engine, mid load, near saturation).
	LoadFracs []float64
	// Requests is the measured arrival count per point and Ramp the
	// warmup arrivals excluded from latency/throughput stats while the
	// controller converges and the queue transient its cold-start
	// measurements cause drains back out (defaults 160 / 384; statics
	// ramp identically so neither side gets a head start). The ramp is
	// sized for the worst case: near saturation the drain margin is
	// thin, so a few tree-monopoly measurement decodes early on leave a
	// backlog that takes hundreds of sweeps to clear.
	Requests, Ramp int
	// ShortTokens/LongTokens are the two decode lengths; every
	// LongEvery-th arrival is long, adding the batch lumpiness that
	// makes admission contend (defaults 32 / 96 / 7). Latency
	// percentiles are over shorts only.
	ShortTokens, LongTokens, LongEvery int
	// TokenBudget is the verification slots one sweep can spend across
	// the batch and MaxBatch the admission slots (defaults 16 / 8):
	// the regime where a wide draft tree buys latency by monopolizing
	// sweeps and linear drafting buys throughput by sharing them.
	TokenBudget, MaxBatch int
	// QueueCap scales the controller's queue-pressure signal
	// (default 64). SweepMS is simulated wall time per sweep
	// (default 5).
	QueueCap int
	SweepMS  float64
	// ProfilePrompts caps the real decodes per configuration during
	// profiling (default 6).
	ProfilePrompts int
}

func (c LoadSweepConfig) withDefaults() LoadSweepConfig {
	if len(c.LoadFracs) == 0 {
		c.LoadFracs = []float64{0.15, 0.50, 0.85}
	}
	if c.Requests <= 0 {
		c.Requests = 160
	}
	if c.Ramp <= 0 {
		c.Ramp = 384
	}
	if c.ShortTokens <= 0 {
		c.ShortTokens = 32
	}
	if c.LongTokens <= 0 {
		c.LongTokens = 96
	}
	if c.LongEvery <= 0 {
		c.LongEvery = 7
	}
	if c.TokenBudget <= 0 {
		c.TokenBudget = 16
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.SweepMS <= 0 {
		c.SweepMS = 5
	}
	if c.ProfilePrompts <= 0 {
		c.ProfilePrompts = 6
	}
	return c
}

// SweepProfile is one configuration's measured decode behavior, the
// simulator's unit of work. Slots per sweep model the batched
// verification pass: the base token plus every draft token proposed
// for that step must be verified, so a wide tree spends the whole
// sweep budget on one request while NTP spends one slot.
type SweepProfile struct {
	Strategy     string  `json:"strategy"`
	Budget       int     `json:"budget,omitempty"`
	TokPerStep   float64 `json:"tok_per_step"`
	SlotsPerStep float64 `json:"slots_per_step"`
	MSPerTok     float64 `json:"ms_per_tok"`
	NodesPerStep float64 `json:"nodes_per_step,omitempty"`
	// accepted is a representative per-step accepted-length trace from
	// profiling, replayed into the controller on simulated completions.
	accepted []int
}

// Name labels the configuration ("OursTree:96", "Ours", ...).
func (p SweepProfile) Name() string {
	if p.Budget > 0 {
		return fmt.Sprintf("%s:%d", p.Strategy, p.Budget)
	}
	return p.Strategy
}

// capacity estimates the configuration's request service rate
// (requests per sweep) against the swept arrival mix: concurrent
// decodes under the slot budget, times per-request progress over the
// MEAN decode length (shorts and longs both arrive, so sizing load
// against shorts alone would push the top load point past saturation
// for every configuration and the sweep would only compare backlogs).
func (p SweepProfile) capacity(cfg LoadSweepConfig) float64 {
	conc := int(float64(cfg.TokenBudget) / p.SlotsPerStep)
	if conc < 1 {
		conc = 1
	}
	if conc > cfg.MaxBatch {
		conc = cfg.MaxBatch
	}
	mean := float64((cfg.LongEvery-1)*cfg.ShortTokens+cfg.LongTokens) / float64(cfg.LongEvery)
	return float64(conc) * p.TokPerStep / mean
}

// LoadSweepRow is one (offered load, configuration) outcome.
type LoadSweepRow struct {
	// LoadFrac is the offered load as a fraction of best static
	// capacity; LoadRPS the resulting arrival rate in requests/second
	// of simulated time.
	LoadFrac float64 `json:"load_frac"`
	LoadRPS  float64 `json:"load_rps"`
	// Config is the static configuration name, or "adaptive".
	Config   string `json:"config"`
	Adaptive bool   `json:"adaptive"`
	Requests int    `json:"requests"`
	// ThroughputRPS is measured completions per simulated second;
	// P50MS/P95MS are short-request latencies in simulated ms.
	ThroughputRPS float64 `json:"throughput_rps"`
	P50MS         float64 `json:"p50_ms"`
	P95MS         float64 `json:"p95_ms"`
	// MeanAccepted is clean tokens per verification sweep across the
	// measured requests' profiles.
	MeanAccepted float64 `json:"mean_accepted"`
	// Controller counters (adaptive rows only).
	Decisions    uint64 `json:"decisions,omitempty"`
	Reroutes     uint64 `json:"reroutes,omitempty"`
	Downgrades   uint64 `json:"downgrades,omitempty"`
	LevelChanges uint64 `json:"level_changes,omitempty"`
	FinalLevel   string `json:"final_level,omitempty"`
}

// simRequest is one decode moving through the simulator.
type simRequest struct {
	arrival  int
	tokens   int
	long     bool
	measured bool
	feat     adapt.Features
	profile  *SweepProfile
	progress float64
	doneAt   int
}

// profileConfigs decodes the benchmark prompts through every swept
// configuration and measures the per-step behavior the simulator (and
// the controller's feedback loop) runs on. Greedy decodes, so the
// profiles are deterministic.
func profileConfigs(m *model.Model, prompts []string, cfg LoadSweepConfig) ([]*SweepProfile, error) {
	grid := []struct {
		strategy string
		budget   int
	}{
		{"OursTree", 96},
		{"OursTree", 16},
		{"Ours", 0},
		{"PromptLookup", 0},
		{"NTP", 0},
	}
	if len(prompts) > cfg.ProfilePrompts {
		prompts = prompts[:cfg.ProfilePrompts]
	}
	dec := core.NewDecoder(m)
	var out []*SweepProfile
	for _, g := range grid {
		var steps, clean, nodes int
		var simMS float64
		var accepted []int
		// Sampled decodes with pinned seeds: deterministic, and the
		// regime where a draft tree's breadth pays (under greedy
		// decoding a linear draft already walks the argmax path, so
		// profiling greedily would erase the tree/linear contrast the
		// sweep exists to measure).
		for pi, prompt := range prompts {
			res := dec.Generate(prompt, core.Options{
				Strategy: g.strategy, TreeBudget: g.budget,
				Temperature: 0.8, Seed: int64(pi + 1), MaxNewTokens: 48,
			})
			steps += res.Steps
			clean += len(res.CleanTokens)
			nodes += res.TreeNodes
			simMS += res.SimulatedMS
			if len(accepted) < 48 {
				accepted = append(accepted, res.AcceptedPerStep...)
			}
		}
		if steps == 0 || clean == 0 {
			return nil, fmt.Errorf("profiling %s:%d produced no output", g.strategy, g.budget)
		}
		p := &SweepProfile{
			Strategy:     g.strategy,
			Budget:       g.budget,
			TokPerStep:   float64(clean) / float64(steps),
			SlotsPerStep: 1,
			MSPerTok:     simMS / float64(clean),
			NodesPerStep: float64(nodes) / float64(steps),
			accepted:     accepted,
		}
		if nodes > 0 {
			p.SlotsPerStep = 1 + p.NodesPerStep
		} else if p.TokPerStep > 1 {
			// Linear drafting: every accepted token beyond the base one
			// was a verified draft slot.
			p.SlotsPerStep = p.TokPerStep
		}
		out = append(out, p)
	}
	return out, nil
}

// snapProfile maps a controller decision onto the profiled grid: same
// strategy, nearest profiled budget.
func snapProfile(profiles []*SweepProfile, d adapt.Decision) *SweepProfile {
	var best *SweepProfile
	for _, p := range profiles {
		if p.Strategy != d.Strategy {
			continue
		}
		if best == nil ||
			math.Abs(float64(p.Budget-d.TreeBudget)) < math.Abs(float64(best.Budget-d.TreeBudget)) {
			best = p
		}
	}
	if best == nil {
		best = profiles[len(profiles)-1]
	}
	return best
}

// buildArrivals lays out one load point's deterministic schedule:
// uniform spacing at the offered rate, every LongEvery-th arrival
// long, the first Ramp arrivals unmeasured.
func buildArrivals(lambda float64, cfg LoadSweepConfig) []*simRequest {
	n := cfg.Ramp + cfg.Requests
	reqs := make([]*simRequest, n)
	for i := 0; i < n; i++ {
		r := &simRequest{
			arrival:  int(float64(i) / lambda),
			tokens:   cfg.ShortTokens,
			measured: i >= cfg.Ramp,
			doneAt:   -1,
		}
		if (i+1)%cfg.LongEvery == 0 {
			r.long = true
			r.tokens = cfg.LongTokens
		}
		r.feat = adapt.Features{PromptTokens: 24, MaxNewTokens: r.tokens, Construct: "seq"}
		reqs[i] = r
	}
	return reqs
}

// simulate runs one configuration (static when ctrl is nil, else the
// live controller) through one load point and reports the row.
// The sweep loop models the batched accelerator: admission fills batch
// slots FCFS while the verification budget lasts (an oversized draft
// tree still runs — alone), every running decode advances one step
// per sweep, and the controller sees exactly what the serving engine
// would show it: occupancy and queue pressure each sweep, queue wait
// at admission, a decode outcome at retirement.
func simulate(profiles []*SweepProfile, static *SweepProfile, ctrl *adapt.Controller, lambda float64, cfg LoadSweepConfig) LoadSweepRow {
	reqs := buildArrivals(lambda, cfg)
	for _, r := range reqs {
		r.profile = static
	}
	var queue, running []*simRequest
	next, done := 0, 0
	maxSweeps := 500000
	var sweep int
	for sweep = 0; done < len(reqs) && sweep < maxSweeps; sweep++ {
		for next < len(reqs) && reqs[next].arrival <= sweep {
			r := reqs[next]
			if ctrl != nil {
				// The decision happens at submission, as in the engine;
				// the grid snap stands in for the budget clamp. The
				// request default mirrors the engine's: a non-explicit
				// request under the paper's scheme decodes linear Ours
				// when the controller stands aside.
				r.profile = snapProfile(profiles, ctrl.Decide(r.feat, adapt.Request{Strategy: "Ours"}))
			}
			queue = append(queue, r)
			next++
		}
		used := 0.0
		for _, r := range running {
			used += r.profile.SlotsPerStep
		}
		for len(queue) > 0 && len(running) < cfg.MaxBatch {
			r := queue[0]
			if len(running) > 0 && used+r.profile.SlotsPerStep > float64(cfg.TokenBudget) {
				break
			}
			queue = queue[1:]
			if ctrl != nil {
				ctrl.ObserveQueueWait(float64(sweep-r.arrival) * cfg.SweepMS)
			}
			used += r.profile.SlotsPerStep
			running = append(running, r)
		}
		if ctrl != nil && len(running) > 0 {
			qf := float64(len(queue)) / float64(cfg.QueueCap)
			if qf > 1 {
				qf = 1
			}
			ctrl.ObserveSweep(float64(len(running))/float64(cfg.MaxBatch), qf)
		}
		keep := running[:0]
		for _, r := range running {
			r.progress += r.profile.TokPerStep
			if r.progress >= float64(r.tokens) {
				r.doneAt = sweep + 1
				done++
				if ctrl != nil {
					p := r.profile
					steps := int(math.Ceil(float64(r.tokens) / p.TokPerStep))
					ctrl.Observe(adapt.Outcome{
						Strategy:        p.Strategy,
						Class:           adapt.ClassOf(r.feat),
						AcceptedPerStep: p.accepted,
						TreeNodes:       int(p.NodesPerStep * float64(steps)),
						TreeBudget:      p.Budget * steps,
						CleanTokens:     r.tokens,
						// The sim's cost model is verification slots, so
						// that is what the score signal charges: a wide
						// tree that accepts no more than its linear
						// counterpart must score worse, not tie.
						SimulatedMS: float64(steps) * p.SlotsPerStep * cfg.SweepMS,
					})
				}
			} else {
				keep = append(keep, r)
			}
		}
		running = keep
	}

	row := LoadSweepRow{Adaptive: ctrl != nil, Config: "adaptive"}
	if static != nil {
		row.Config = static.Name()
	}
	var lat []float64
	var tokens, sweeps float64
	firstArrival, lastDone := -1, 0
	completed := 0
	for _, r := range reqs {
		if !r.measured {
			continue
		}
		row.Requests++
		if firstArrival < 0 {
			firstArrival = r.arrival
		}
		if r.doneAt < 0 {
			continue
		}
		completed++
		if r.doneAt > lastDone {
			lastDone = r.doneAt
		}
		tokens += float64(r.tokens)
		sweeps += math.Ceil(float64(r.tokens) / r.profile.TokPerStep)
		if !r.long {
			lat = append(lat, float64(r.doneAt-r.arrival)*cfg.SweepMS)
		}
	}
	if span := lastDone - firstArrival; span > 0 {
		row.ThroughputRPS = float64(completed) / (float64(span) * cfg.SweepMS / 1000)
	}
	if sweeps > 0 {
		row.MeanAccepted = tokens / sweeps
	}
	sort.Float64s(lat)
	row.P50MS = percentile(lat, 0.50)
	row.P95MS = percentile(lat, 0.95)
	if ctrl != nil {
		s := ctrl.Snapshot()
		row.Decisions, row.Reroutes = s.Decisions, s.Reroutes
		row.Downgrades, row.LevelChanges = s.Downgrades, s.LevelChanges
		row.FinalLevel = s.LevelName
	}
	return row
}

// LoadSweep profiles the configuration grid with real decodes, then
// sweeps offered load over every static configuration and over the
// live controller. Rows are grouped per load point, statics first.
func LoadSweep(m *model.Model, prompts []string, cfg LoadSweepConfig) ([]LoadSweepRow, []*SweepProfile, error) {
	cfg = cfg.withDefaults()
	profiles, err := profileConfigs(m, prompts, cfg)
	if err != nil {
		return nil, nil, err
	}
	var capacity float64
	for _, p := range profiles {
		if c := p.capacity(cfg); c > capacity {
			capacity = c
		}
	}
	var rows []LoadSweepRow
	for _, frac := range cfg.LoadFracs {
		lambda := frac * capacity
		loadRPS := lambda / (cfg.SweepMS / 1000)
		for _, p := range profiles {
			row := simulate(profiles, p, nil, lambda, cfg)
			row.LoadFrac, row.LoadRPS = frac, loadRPS
			rows = append(rows, row)
		}
		// A fresh controller per point: each must converge from cold
		// within the ramp, the same discipline a deployed engine faces
		// after a restart. Exploration is thinned to one slot in 64 so
		// the deliberately-slow arms it samples stay under the p95
		// index of the measured shorts.
		ctrl, err := adapt.New(adapt.Config{ExploreEvery: 64})
		if err != nil {
			return rows, profiles, err
		}
		row := simulate(profiles, nil, ctrl, lambda, cfg)
		row.LoadFrac, row.LoadRPS = frac, loadRPS
		rows = append(rows, row)
	}
	return rows, profiles, nil
}

// RunLoadSweep trains the paper's scheme and sweeps offered load over
// the benchmark prompt set.
func (r *Runner) RunLoadSweep(cfg LoadSweepConfig) ([]LoadSweepRow, []*SweepProfile, error) {
	mcfg := r.setup.Models[0]
	m := model.Train(r.toks[mcfg.Name], mcfg, model.SchemeOurs, r.examples)
	return LoadSweep(m, r.speedPrompts(), cfg)
}
