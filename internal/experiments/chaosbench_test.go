package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
)

// chaosRecoveryRatio is the CI recovery gate: once the fault is healed
// and the breaker has cooled, the after-phase p99 must sit within 1.5x
// of the unfaulted run's after-phase p99 — same bound the
// latency-under-load gate uses, so "recovered" means the same thing
// across tiers.
const chaosRecoveryRatio = 1.5

// requireAvailable fails the run on the non-negotiable half of the
// gate: every phase of every scenario must answer every request within
// protocol — zero client-visible errors beyond documented shedding.
// This is a hard failure, never retried: availability is not timing
// noise.
func requireAvailable(t *testing.T, label string, res *ChaosResult) {
	t.Helper()
	for _, p := range []ChaosPhase{res.Before, res.During, res.After} {
		if p.Faults != 0 {
			t.Fatalf("%s %s phase: %d non-shed client errors (first: %s)", label, p.Name, p.Faults, p.FirstFault)
		}
		if p.Availability() != 1.0 {
			t.Fatalf("%s %s phase: availability %.3f, want 1.0", label, p.Name, p.Availability())
		}
	}
}

// TestChaosRecoveryGate is `make chaos-gate`: with a replica killed
// (and, separately, wedged) mid-run, the fleet must answer every
// request within protocol — recovery via failover and hedging, faults
// absorbed by the breaker — and once healed, short-request p99 must
// recover to within 1.5x of an unfaulted run. The latency half gets
// three attempts (wall-clock on shared runners is noisy); the
// availability half never does.
func TestChaosRecoveryGate(t *testing.T) {
	m, prompts := loadBenchModel(t)
	for _, tc := range []struct {
		fault FaultKind
		// check asserts the fault actually exercised the machinery it
		// was designed to exercise.
		check func(res *ChaosResult) error
	}{
		{FaultKill, func(res *ChaosResult) error {
			if res.Failovers < 1 {
				return fmt.Errorf("killed replica never triggered a failover")
			}
			if res.BreakerOpens < 1 {
				return fmt.Errorf("killed replica never tripped its breaker")
			}
			return nil
		}},
		{FaultWedge, func(res *ChaosResult) error {
			if res.Hedges < 1 || res.HedgeWins < 1 {
				return fmt.Errorf("wedged replica: hedges=%d wins=%d, want both >= 1 (nothing else unblocks a wedge)",
					res.Hedges, res.HedgeWins)
			}
			if res.BreakerOpens < 1 {
				return fmt.Errorf("wedge-timeout signal never tripped the breaker")
			}
			return nil
		}},
	} {
		t.Run(tc.fault.String(), func(t *testing.T) {
			var lastErr error
			for attempt := 1; attempt <= 3; attempt++ {
				base, err := ChaosBench(m, prompts, ChaosBenchConfig{Fault: FaultNone})
				if err != nil {
					t.Fatal(err)
				}
				requireAvailable(t, "baseline", base)
				res, err := ChaosBench(m, prompts, ChaosBenchConfig{Fault: tc.fault})
				if err != nil {
					t.Fatal(err)
				}
				requireAvailable(t, tc.fault.String(), res)
				ratio := res.After.P99WallMS / base.After.P99WallMS
				t.Logf("attempt %d: fault=%s target=%s before/during/after p99 = %.2f/%.2f/%.2f ms, baseline after p99 = %.2f ms, recovery ratio = %.2f, hedges=%d wins=%d failovers=%d opens=%d",
					attempt, res.Fault, res.Target,
					res.Before.P99WallMS, res.During.P99WallMS, res.After.P99WallMS,
					base.After.P99WallMS, ratio,
					res.Hedges, res.HedgeWins, res.Failovers, res.BreakerOpens)
				switch {
				case tc.check(res) != nil:
					lastErr = tc.check(res)
				case ratio > chaosRecoveryRatio:
					lastErr = fmt.Errorf("after-phase p99 %.2fms is %.2fx the unfaulted %.2fms (gate %.1fx): fleet did not recover",
						res.After.P99WallMS, ratio, base.After.P99WallMS, chaosRecoveryRatio)
				default:
					return
				}
				t.Logf("attempt %d failed: %v", attempt, lastErr)
			}
			t.Fatal(lastErr)
		})
	}
}

// TestFaultPlaneKinds pins the plane's per-kind contract: kill fails
// fast, wedge blocks until the context dies or the fault heals, slow
// stalls then succeeds, error-rate fails deterministically on its
// modulus, and Heal restores every kind to healthy.
func TestFaultPlaneKinds(t *testing.T) {
	p := NewFaultPlane(2)
	hook := p.Hook(0)

	if err := hook(context.Background()); err != nil {
		t.Fatalf("healthy hook: %v", err)
	}

	p.Inject(0, FaultKill)
	if err := hook(context.Background()); !errors.Is(err, ErrInjected) {
		t.Fatalf("kill: %v, want ErrInjected", err)
	}

	p.Inject(0, FaultWedge)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- hook(ctx) }()
	select {
	case err := <-done:
		t.Fatalf("wedge returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("wedge after cancel: %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("wedge did not honour ctx cancellation")
	}

	// Heal must release parked wedges too: a decode with no deadline of
	// its own would otherwise stay parked past the fault epoch, and
	// enough epochs would park every scheduler in the fleet.
	p.Inject(0, FaultWedge)
	done = make(chan error, 1)
	go func() { done <- hook(context.Background()) }()
	select {
	case err := <-done:
		t.Fatalf("wedge returned before heal: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	p.Heal(0)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("healed wedge: %v, want nil (decode resumes)", err)
		}
	case <-time.After(time.Second):
		t.Fatal("heal did not release the parked wedge")
	}

	p.InjectSlow(0, 10*time.Millisecond)
	t0 := time.Now()
	if err := hook(context.Background()); err != nil {
		t.Fatalf("slow: %v", err)
	}
	if d := time.Since(t0); d < 10*time.Millisecond {
		t.Fatalf("slow stalled only %v, want >= 10ms", d)
	}

	p.InjectErrRate(0, 3)
	var errs int
	for i := 0; i < 9; i++ {
		if err := hook(context.Background()); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("error-rate: %v", err)
			}
			errs++
		}
	}
	if errs != 3 {
		t.Fatalf("error-rate every 3rd over 9 consults: %d errors, want 3", errs)
	}

	p.Heal(0)
	if err := hook(context.Background()); err != nil {
		t.Fatalf("healed hook: %v", err)
	}
	if got := p.Kind(1); got != FaultNone {
		t.Fatalf("untouched slot kind = %v, want none", got)
	}
}

// TestChaosChurnSoak is the chaos-soak tier (`make chaos-soak`, run
// under -race -shuffle=on in CI): while clients hammer a hedging,
// stealing, breaker-guarded fleet, the fault plane cycles every fault
// kind across the replicas — at most one replica faulted at a time, so
// protocol-level recovery is always possible — and every single
// request must still be answered within protocol.
func TestChaosChurnSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	m, prompts := loadBenchModel(t)
	const replicas = 3
	plane := NewFaultPlane(replicas)
	specs := make([]cluster.ReplicaSpec, replicas)
	for i := range specs {
		specs[i] = cluster.ReplicaSpec{
			Model: m,
			Engine: serve.Config{
				Workers:   1,
				CacheSize: -1,
				StepFault: plane.Hook(i),
			},
		}
	}
	fleet, err := cluster.New(specs, cluster.Config{
		HedgeAfter:       20 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  100 * time.Millisecond,
		Steal:            true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		kinds := []FaultKind{FaultKill, FaultWedge, FaultSlow, FaultErrRate}
		for j := 0; ; j++ {
			target := j % replicas
			switch kinds[j%len(kinds)] {
			case FaultSlow:
				plane.InjectSlow(target, 3*time.Millisecond)
			case FaultErrRate:
				plane.InjectErrRate(target, 2)
			default:
				plane.Inject(target, kinds[j%len(kinds)])
			}
			select {
			case <-stop:
				plane.Heal(target)
				return
			case <-time.After(40 * time.Millisecond):
			}
			plane.Heal(target)
		}
	}()

	const clients, rounds = 6, 10
	errCh := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < rounds; k++ {
				req := serve.Request{
					Prompt:  prompts[(c+k)%len(prompts)],
					Options: chaosOptions(int64(c*1000 + k)),
				}
				_, err := fleet.Generate(context.Background(), req)
				var shed *serve.ShedError
				if err != nil && !errors.As(err, &shed) {
					errCh <- fmt.Errorf("client %d round %d: %w", c, k, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	churn.Wait()
	close(errCh)
	for err := range errCh {
		t.Errorf("non-shed client error under churn: %v", err)
	}
	fm := fleet.Metrics()
	t.Logf("churn counters: hedges=%d wins=%d failovers=%d steals=%d", fm.Hedges, fm.HedgeWins, fm.Failovers, fm.Steals)
}
