// GrammarBench measures what grammar-constrained drafting exists to
// change: how much of the draft-tree budget survives verification once
// syntactically doomed branches are pruned before the verifier pays
// for them and idiomatic Verilog constructs are drafted as whole
// chains. Each row compares a baseline tree strategy with its
// grammar-constrained lift on the same trained model and the same
// prompt schedule, so the only difference is the oracle; the grammar
// side also reports how hard the oracle worked (pruned nodes and
// construct tokens per step).
package experiments

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/serve"
)

// GrammarPair names a baseline tree strategy and its grammar-
// constrained counterpart on the scheme both decode naturally.
type GrammarPair struct {
	Scheme model.Scheme
	// Base and Grammar are registry strategy names.
	Base, Grammar string
}

// GrammarPairs is the grammar comparison axis: each grammar strategy
// against the ungated tree drafter it extends.
var GrammarPairs = []GrammarPair{
	{Scheme: model.SchemeOurs, Base: "ours-tree", Grammar: "grammar-tree"},
	{Scheme: model.SchemeNTP, Base: "lookup-tree", Grammar: "grammar-lookup-tree"},
}

// GrammarBenchRow is one (model, pair) comparison.
type GrammarBenchRow struct {
	Model, Scheme string
	// Base/Grammar are the pair's display names.
	Base, Grammar string
	// BaseAccepted/GrammarAccepted are mean tokens emitted per decoding
	// step; AcceptedGain is their ratio (> 1 means the oracle-shaped
	// trees survive verification longer).
	BaseAccepted, GrammarAccepted, AcceptedGain float64
	// BaseTokensPerSec/GrammarTokensPerSec are the eq. 3 simulated
	// speeds over the prompt set.
	BaseTokensPerSec, GrammarTokensPerSec float64
	// BaseWallMSPerToken/GrammarWallMSPerToken are measured wall-clock
	// decoder milliseconds per clean token — the oracle re-lexes the
	// draft tail on every candidate, and this is where that cost shows.
	BaseWallMSPerToken, GrammarWallMSPerToken float64
	// PrunedPerStep is mean draft nodes the oracle rejected per step;
	// GrammarTokensPerStep is mean construct-chain tokens drafted per
	// step. Both zero on the base side by construction.
	PrunedPerStep, GrammarTokensPerStep float64
}

// grammarBenchSide aggregates one strategy's half of a comparison row.
type grammarBenchSide struct {
	accepted, tokensPerSec, wallMSPerToken float64
	prunedPerStep, grammarPerStep          float64
}

// RunGrammarBench decodes the Table II prompt schedule (greedy + T=0.8
// per prompt, dispatched through the shared worker pool) with both
// sides of every GrammarPair, one trained model per scheme reused
// across pairs.
func (r *Runner) RunGrammarBench() []GrammarBenchRow {
	var rows []GrammarBenchRow
	prompts := r.speedPrompts()
	for _, cfg := range r.setup.Models {
		tk := r.toks[cfg.Name]
		trained := map[model.Scheme]*model.Model{}
		for _, pair := range GrammarPairs {
			m := trained[pair.Scheme]
			if m == nil {
				m = model.Train(tk, cfg, pair.Scheme, r.examples)
				trained[pair.Scheme] = m
			}
			base := r.grammarBenchSide(m, prompts, pair.Base)
			gr := r.grammarBenchSide(m, prompts, pair.Grammar)
			row := GrammarBenchRow{
				Model: cfg.Name, Scheme: pair.Scheme.String(),
				Base: displayName(pair.Base), Grammar: displayName(pair.Grammar),
				BaseAccepted: base.accepted, GrammarAccepted: gr.accepted,
				BaseTokensPerSec: base.tokensPerSec, GrammarTokensPerSec: gr.tokensPerSec,
				BaseWallMSPerToken: base.wallMSPerToken, GrammarWallMSPerToken: gr.wallMSPerToken,
				PrunedPerStep: gr.prunedPerStep, GrammarTokensPerStep: gr.grammarPerStep,
			}
			if base.accepted > 0 {
				row.AcceptedGain = gr.accepted / base.accepted
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// grammarBenchSide runs one strategy over the prompt schedule and folds
// the result metrics.
func (r *Runner) grammarBenchSide(m *model.Model, prompts []string, strategy string) grammarBenchSide {
	reqs := make([]serve.Request, 0, 2*len(prompts))
	for i, prompt := range prompts {
		reqs = append(reqs,
			serve.Request{Prompt: prompt, Options: core.Options{Strategy: strategy}},
			serve.Request{Prompt: prompt, Options: core.Options{Strategy: strategy, Temperature: 0.8, Seed: int64(i)}})
	}
	eng := r.newEngine(m)
	resps := eng.GenerateBatch(context.Background(), reqs)
	eng.Close()
	tokens := make([]int, len(resps))
	secs := make([]float64, len(resps))
	var rawTokens, steps, cleanTokens, wallMS, pruned, grammar float64
	for i, resp := range resps {
		if resp.Err != nil {
			panic(resp.Err)
		}
		res := resp.Result
		tokens[i] = len(res.CleanTokens)
		secs[i] = res.SimulatedMS / 1000
		rawTokens += float64(len(res.Tokens))
		steps += float64(res.Steps)
		cleanTokens += float64(len(res.CleanTokens))
		wallMS += float64(resp.Wall) / float64(time.Millisecond)
		pruned += float64(res.GrammarPruned)
		grammar += float64(res.GrammarDraftTokens)
	}
	side := grammarBenchSide{tokensPerSec: metrics.Speed(tokens, secs)}
	if steps > 0 {
		side.accepted = rawTokens / steps
		side.prunedPerStep = pruned / steps
		side.grammarPerStep = grammar / steps
	}
	if cleanTokens > 0 {
		side.wallMSPerToken = wallMS / cleanTokens
	}
	return side
}
