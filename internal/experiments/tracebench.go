package experiments

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/trace"
)

// TraceBench prices the observability tier: the same decode workload
// is driven twice through one engine architecture — once with no trace
// in the request context (every tracing call is a nil check) and once
// with a live tracer assembling the full span tree per request — and
// the rows report the throughput of each. CI gates the on/off overhead
// at a few percent: tracing that taxes the decode path does not get to
// stay on by default. The bench also proves output invariance: both
// modes must produce byte-identical generations, because a tracer that
// changes decode behavior is observing a different system.

// TraceBenchConfig sizes the overhead measurement.
type TraceBenchConfig struct {
	// Requests per timed pass (default 24).
	Requests int
	// Tokens bounds each decode (default 32).
	Tokens int
	// Repeats is the number of timed passes per mode; the row keeps the
	// fastest (default 5). Min-of-N is the standard defense against
	// scheduler and GC noise in a wall-clock gate.
	Repeats int
}

func (c TraceBenchConfig) withDefaults() TraceBenchConfig {
	if c.Requests <= 0 {
		c.Requests = 24
	}
	if c.Tokens <= 0 {
		c.Tokens = 32
	}
	if c.Repeats <= 0 {
		c.Repeats = 5
	}
	return c
}

// TraceBenchRow is one tracing mode's measured outcome.
type TraceBenchRow struct {
	Tracing  string `json:"tracing"` // "off" or "on"
	Requests int    `json:"requests"`
	Repeats  int    `json:"repeats"`
	// BestWallMS is the fastest timed pass; TokensPerSec derives from it.
	BestWallMS   float64 `json:"best_wall_ms"`
	TokensPerSec float64 `json:"tokens_per_sec"`
	Tokens       int     `json:"tokens"`
	// Spans/Dropped aggregate over the "on" pass's recorded traces
	// (zero for "off"): evidence the tracer actually traced.
	Spans   int   `json:"spans,omitempty"`
	Dropped int64 `json:"dropped,omitempty"`
}

// TraceBench measures both modes and returns their rows ("off" first)
// plus the generated texts per mode for the byte-identity differential.
func TraceBench(m *model.Model, prompts []string, cfg TraceBenchConfig) ([]TraceBenchRow, [][]string, error) {
	cfg = cfg.withDefaults()
	if len(prompts) == 0 {
		return nil, nil, fmt.Errorf("trace bench needs prompts")
	}
	var rows []TraceBenchRow
	var texts [][]string
	for _, mode := range []string{"off", "on"} {
		row, modeTexts, err := driveTraceMode(m, prompts, cfg, mode == "on")
		if err != nil {
			return rows, texts, err
		}
		rows = append(rows, row)
		texts = append(texts, modeTexts)
	}
	return rows, texts, nil
}

// driveTraceMode runs all repeats of one mode on a fresh engine.
func driveTraceMode(m *model.Model, prompts []string, cfg TraceBenchConfig, traced bool) (TraceBenchRow, []string, error) {
	eng := serve.NewEngine(m, serve.Config{
		Workers: 1, CacheSize: -1, NoDedup: true,
		QueueSize: cfg.Requests + 4,
	})
	defer eng.Close()
	var tracer *trace.Tracer
	if traced {
		tracer = trace.New(trace.Config{RingSize: cfg.Requests * (cfg.Repeats + 1)})
	}
	mode := "off"
	if traced {
		mode = "on"
	}

	req := func(i int) serve.Request {
		return serve.Request{
			Prompt: prompts[i%len(prompts)],
			Options: core.Options{
				Mode: core.ModeOurs, Temperature: 0.6,
				MaxNewTokens: cfg.Tokens, Seed: int64(i),
			},
		}
	}
	runPass := func(pass int, record []string) (time.Duration, int, error) {
		tokens := 0
		t0 := time.Now()
		for i := 0; i < cfg.Requests; i++ {
			ctx := context.Background()
			var tr *trace.Trace
			if tracer != nil {
				tr = tracer.StartTrace(fmt.Sprintf("tracebench-%d-%d", pass, i))
				root := tr.Start(nil, trace.KindRequest, "tracebench")
				ctx = trace.ContextWithSpan(trace.NewContext(ctx, tr), root)
			}
			resp, err := eng.Generate(ctx, req(i))
			if tr != nil {
				tr.Finish("200")
			}
			if err != nil || resp.Err != nil {
				return 0, 0, fmt.Errorf("trace bench %s request %d: %v / %v", mode, i, err, resp.Err)
			}
			tokens += len(resp.Result.CleanTokens)
			if record != nil {
				record[i] = resp.Result.Text
			}
		}
		return time.Since(t0), tokens, nil
	}

	// Warmup pass: session preparation and trie growth happen here, so
	// the timed passes of both modes start from the same cache state.
	texts := make([]string, cfg.Requests)
	if _, _, err := runPass(-1, texts); err != nil {
		return TraceBenchRow{}, nil, err
	}

	// Same rationale as the load gate: measure tracing overhead, not
	// collector scheduling. The GC-off window is scoped per mode with a
	// forced collection first — letting one mode's garbage pile into the
	// other's timed passes skews the comparison far more than tracing
	// itself does.
	runtime.GC()
	gcPct := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(gcPct)

	row := TraceBenchRow{Tracing: mode, Requests: cfg.Requests, Repeats: cfg.Repeats}
	best := time.Duration(0)
	for pass := 0; pass < cfg.Repeats; pass++ {
		d, tokens, err := runPass(pass, nil)
		if err != nil {
			return TraceBenchRow{}, nil, err
		}
		if best == 0 || d < best {
			best = d
			row.Tokens = tokens
		}
	}
	row.BestWallMS = float64(best) / float64(time.Millisecond)
	if best > 0 {
		row.TokensPerSec = float64(row.Tokens) / best.Seconds()
	}
	if tracer != nil {
		for _, snap := range tracer.Completed() {
			row.Spans += len(snap.Spans)
			row.Dropped += snap.Dropped
		}
	}
	return row, texts, nil
}

// RunTraceBench trains one model and runs the tracing overhead bench
// over the benchmark prompt set.
func (r *Runner) RunTraceBench(cfg TraceBenchConfig) ([]TraceBenchRow, [][]string, error) {
	mcfg := r.setup.Models[0]
	m := model.Train(r.toks[mcfg.Name], mcfg, model.SchemeOurs, r.examples)
	return TraceBench(m, r.speedPrompts(), cfg)
}
