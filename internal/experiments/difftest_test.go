package experiments

import "testing"

// TestDifferentialCacheModes is the cache-admissibility gate CI runs
// next to the golden determinism job: across the full strategy matrix,
// decoding with the token-prefix trie cache, with the whole-prompt
// LRU, and through the step-wise API under randomized preemption
// (park / drop pages / resume at step boundaries) must all be
// byte-identical to decoding with no session cache at all, per
// (prompt, strategy, seed) — and the run must actually have forked
// mid-prompt sessions and injected preemptions, or it proved nothing.
func TestDifferentialCacheModes(t *testing.T) {
	r := NewRunner(quickSetup())
	report, err := r.RunDiffTest(DiffConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// 2 families × 3 variants + 3 stressors = 9 prompts; each decoded
	// greedily plus once per seed, per strategy-matrix entry.
	wantCases := len(StrategyMatrix) * 9 * 2
	if report.Cases != wantCases {
		t.Fatalf("compared %d cases, want %d", report.Cases, wantCases)
	}
	if report.PartialHits == 0 {
		t.Fatal("differential run exercised no mid-prompt forks")
	}
	if report.Preemptions == 0 || report.Drops == 0 {
		t.Fatalf("differential run exercised no preemption (%d parks, %d drops)", report.Preemptions, report.Drops)
	}
	t.Logf("differential run clean: %d cases byte-identical across {off, whole, trie, preempt}, %d mid-prompt forks, %d preemptions (%d page drops)",
		report.Cases, report.PartialHits, report.Preemptions, report.Drops)
}

// TestDifferentialAdaptModes is the controller half of the
// admissibility story: with every request fully pinned (explicit
// strategy, tree budget and seed), engines running the speculation
// controller off, in shadow, and applied must produce byte-identical
// results across the strategy matrix — the controller may only choose
// WHICH lossless configuration runs, never change the output of a
// given one. The run must also prove the controller was live: one
// recorded decision per submission in shadow and on modes, every
// shadow decision left unapplied, and zero reroutes of pinned
// requests.
func TestDifferentialAdaptModes(t *testing.T) {
	r := NewRunner(quickSetup())
	report, err := r.RunAdaptDiff(DiffConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// 2 families × 3 variants + 1 extension stressor = 7 prompts; each
	// decoded greedily plus once per seed, per strategy-matrix entry.
	wantCases := len(StrategyMatrix) * 7 * 2
	if report.Cases != wantCases {
		t.Fatalf("compared %d cases, want %d", report.Cases, wantCases)
	}
	// Shadow and on each decided once per submission.
	if want := uint64(2 * wantCases); report.Decisions != want {
		t.Fatalf("controllers recorded %d decisions, want %d", report.Decisions, want)
	}
	if want := uint64(wantCases); report.Shadowed != want {
		t.Fatalf("shadowed %d decisions, want %d (every shadow decision)", report.Shadowed, want)
	}
	if report.Reroutes != 0 {
		t.Fatalf("applied controller rerouted %d pinned requests, want 0", report.Reroutes)
	}
	t.Logf("adapt differential clean: %d cases byte-identical across {off, shadow, on}, %d decisions recorded, 0 reroutes",
		report.Cases, report.Decisions)
}

// TestPrefixBenchTrieRecomputesFewer pins the performance half of the
// acceptance criteria: on the shared-stem workload the trie cache must
// recompute strictly fewer prompt tokens than the whole-prompt LRU
// (which in turn must beat no cache at all), because only the trie can
// reuse the stems that dominate the workload.
func TestPrefixBenchTrieRecomputesFewer(t *testing.T) {
	r := NewRunner(quickSetup())
	rows := r.RunPrefixBench(PrefixBenchConfig{})
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 (off, whole, trie)", len(rows))
	}
	byMode := map[string]PrefixBenchRow{}
	for _, row := range rows {
		byMode[row.Mode] = row
		t.Logf("%-6s requests=%d prompt_tokens=%d recomputed=%d saved=%d hits=%d partial=%d hit_rate=%.2f",
			row.Mode, row.Requests, row.PromptTokens, row.TokensRecomputed,
			row.TokensSaved, row.Hits, row.PartialHits, row.HitRate)
	}
	off, whole, trie := byMode["off"], byMode["whole"], byMode["trie"]
	if off.TokensSaved != 0 || off.TokensRecomputed != off.PromptTokens {
		t.Fatalf("cache-off saved tokens: %+v", off)
	}
	if whole.TokensRecomputed >= off.TokensRecomputed {
		t.Fatalf("whole-prompt cache saved nothing: whole=%d off=%d",
			whole.TokensRecomputed, off.TokensRecomputed)
	}
	if trie.TokensRecomputed >= whole.TokensRecomputed {
		t.Fatalf("trie recomputed %d tokens, want fewer than whole-prompt's %d",
			trie.TokensRecomputed, whole.TokensRecomputed)
	}
	if trie.PartialHits == 0 {
		t.Fatal("trie saw no partial hits on a shared-stem workload")
	}
	if whole.PartialHits != 0 {
		t.Fatalf("whole-prompt cache reported partial hits: %+v", whole)
	}
}
