// Package experiments reproduces every table and figure of the paper's
// evaluation section on the simulated substrate:
//
//	Table I  — quality grid: pass@{1,5,10} + Pass Rate, Function and
//	           Syntax, for {Ours, Medusa, NTP} × {CodeLlama-sim,
//	           CodeT5p-sim} × four data sizes × {RTLLM, VGen}.
//	Table II — generation speed (tokens/s) and speedup per method.
//	Fig. 1   — speed vs pass@10(RTLLM) scatter points.
//	Fig. 5   — decoding step counts for the data_register example.
//	Fig. 6   — the CodeT5p pass@5 slice of Table I.
//
// Beyond the paper, RunStrategyMatrix compares every registered
// decoding strategy — the legacy three plus self-speculative prompt
// lookup — under the Table II protocol in one harness.
//
// Scale knobs let the same code run as a quick smoke test (CI) or as the
// full harness (cmd/evalbench).
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/tokenizer"
)

// Setup parameterizes an experiment run.
type Setup struct {
	// CorpusItems is the synthetic corpus size before refinement
	// (paper: 136,134 scraped items; default 13,600 — a 1/10-scale
	// corpus, documented in DESIGN.md).
	CorpusItems int
	// Seed drives corpus generation and sampling.
	Seed int64
	// Models are the backbone configurations to evaluate.
	Models []model.Config
	// SizeNumerators are data-subset numerators over 4 (paper: 1..4).
	SizeNumerators []int
	// Samples is n per prompt per temperature (paper: 20).
	Samples int
	// Temps are the sampling temperatures (paper: 0.2,0.4,0.6,0.8).
	Temps []float64
	// SpeedPrompts is the prompt count for Table II (paper: 575).
	SpeedPrompts int
	// Workers caps evaluation parallelism (0 = GOMAXPROCS).
	Workers int
}

// Default returns the full-scale setup used by cmd/evalbench.
func Default() Setup {
	return Setup{
		CorpusItems:    13600,
		Seed:           1,
		Models:         []model.Config{model.CodeLlamaSim(), model.CodeT5pSim()},
		SizeNumerators: []int{1, 2, 3, 4},
		Samples:        20,
		Temps:          []float64{0.2, 0.4, 0.6, 0.8},
		SpeedPrompts:   575,
	}
}

// Quick returns a scaled-down setup for tests and smoke runs.
func Quick() Setup {
	return Setup{
		CorpusItems:    1200,
		Seed:           1,
		Models:         []model.Config{model.CodeLlamaSim()},
		SizeNumerators: []int{4},
		Samples:        4,
		Temps:          []float64{0.4},
		SpeedPrompts:   24,
	}
}

func (s Setup) workers() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Schemes compared everywhere, in the paper's column order.
var Schemes = []model.Scheme{model.SchemeOurs, model.SchemeMedusa, model.SchemeNTP}

// SizeLabel renders a subset size the way the paper does (items/1000,
// e.g. "34K" at full scale, "3.4K" at 1/10 scale).
func SizeLabel(n int) string {
	if n >= 1000 {
		if n%1000 == 0 {
			return fmt.Sprintf("%dK", n/1000)
		}
		return fmt.Sprintf("%.1fK", float64(n)/1000)
	}
	return fmt.Sprintf("%d", n)
}

// QualityCell is one Table I cell group (one model × size × benchmark ×
// method, both criteria).
type QualityCell struct {
	Model     string
	DataSize  int
	Benchmark string // "RTLLM" or "VGen"
	Method    string
	// Function metrics (percent).
	FuncPass1, FuncPass5, FuncPass10, FuncRate float64
	// Syntax metrics (percent).
	SynPass1, SynPass5, SynPass10, SynRate float64
}

// SpeedRow is one Table II row half (per model).
type SpeedRow struct {
	Model        string
	Method       string
	TokensPerSec float64
	Speedup      float64
}

// Fig5Row reports decoding steps for the worked example (Fig. 5).
type Fig5Row struct {
	Method string
	Steps  int
	Tokens int
}

// Results bundles everything a full run produces.
type Results struct {
	Setup   Setup
	Stats   dataset.Stats
	Table1  []QualityCell
	Table2  []SpeedRow
	Fig5    []Fig5Row
	Corpora int // refined corpus size
}

// trainedSet holds the per-scheme models for one backbone config at one
// data size.
type trainedSet struct {
	byScheme map[model.Scheme]*model.Model
}

// Runner caches the corpus and incrementally trained models across
// experiments.
type Runner struct {
	setup    Setup
	examples []model.Example
	stats    dataset.Stats
	// tokenizers per model config name.
	toks map[string]*tokenizer.Tokenizer
}

// NewRunner builds the corpus (running the full refinement pipeline)
// and trains tokenizers.
func NewRunner(setup Setup) *Runner {
	examples, stats := dataset.BuildCorpus(dataset.CorpusOptions{
		Seed:  setup.Seed,
		Items: setup.CorpusItems,
	})
	r := &Runner{setup: setup, examples: examples, stats: stats, toks: map[string]*tokenizer.Tokenizer{}}
	for _, cfg := range setup.Models {
		var corpus []string
		// Tokenizers train on a bounded sample of the corpus text for
		// speed; BPE merges converge long before the full corpus.
		limit := len(examples)
		if limit > 1500 {
			limit = 1500
		}
		for _, ex := range examples[:limit] {
			corpus = append(corpus, model.FormatPrompt(ex.Prompt)+ex.Code)
		}
		r.toks[cfg.Name] = tokenizer.Train(corpus, cfg.VocabSize)
	}
	return r
}

// Examples exposes the refined corpus (tools use it).
func (r *Runner) Examples() []model.Example { return r.examples }

// Stats exposes the refinement stats.
func (r *Runner) Stats() dataset.Stats { return r.stats }

// Tokenizer returns the tokenizer for a model config.
func (r *Runner) Tokenizer(cfg model.Config) *tokenizer.Tokenizer { return r.toks[cfg.Name] }

// promptOutcome is the per-prompt sample tally for one criterion.
type promptOutcome struct {
	fn  metrics.PromptResult
	syn metrics.PromptResult
}

// newEngine sizes a serve.Engine for one trained model by the Setup's
// workers knob. The harness and the vgend daemon share this dispatch
// path, so benchmark-table concurrency is the serving concurrency. The
// LRU is disabled: every decode must pay its simulated cost, and the
// seed schedule never repeats a (prompt, options) pair anyway.
func (r *Runner) newEngine(m *model.Model) *serve.Engine {
	return serve.NewEngine(m, serve.Config{Workers: r.setup.workers(), CacheSize: -1})
}

// evalSuite evaluates one model on one benchmark suite: every (prompt,
// temperature, sample) generation dispatches through the worker pool,
// then the tally keeps the best per-temperature accuracy per prompt
// (the paper picks the highest accuracy across temperatures). Seeds
// are assigned per (prompt, temperature, sample), so the outcome is
// identical at any worker count.
func (r *Runner) evalSuite(m *model.Model, suite []bench.Problem, seedBase int64) []promptOutcome {
	eng := r.newEngine(m)
	defer eng.Close()
	mode := core.ModeForScheme(m.Scheme())
	n := r.setup.Samples
	nTemps := len(r.setup.Temps)

	reqs := make([]serve.Request, 0, len(suite)*nTemps*n)
	for i := range suite {
		promptSeed := seedBase + int64(i)*77
		for ti, temp := range r.setup.Temps {
			for s := 0; s < n; s++ {
				reqs = append(reqs, serve.Request{
					Prompt: suite[i].Prompt,
					Options: core.Options{
						Mode:        mode,
						Temperature: temp,
						Seed:        promptSeed + int64(ti*1000+s),
					},
				})
			}
		}
	}
	resps := eng.GenerateBatch(context.Background(), reqs)

	out := make([]promptOutcome, len(suite))
	for i := range suite {
		bestFn, bestSyn := 0, 0
		for ti := 0; ti < nTemps; ti++ {
			cFn, cSyn := 0, 0
			for s := 0; s < n; s++ {
				resp := resps[(i*nTemps+ti)*n+s]
				if resp.Err != nil {
					// Background context, drained engine: unreachable
					// outside programmer error.
					panic(resp.Err)
				}
				if bench.CheckSyntax(resp.Result.Text) {
					cSyn++
					if bench.CheckFunction(resp.Result.Text, suite[i]) {
						cFn++
					}
				}
			}
			if cFn > bestFn {
				bestFn = cFn
			}
			if cSyn > bestSyn {
				bestSyn = cSyn
			}
		}
		out[i] = promptOutcome{
			fn:  metrics.PromptResult{N: n, C: bestFn},
			syn: metrics.PromptResult{N: n, C: bestSyn},
		}
	}
	return out
}

// cellFrom aggregates suite outcomes into a Table I cell.
func cellFrom(modelName string, size int, benchmark, method string, outcomes []promptOutcome) QualityCell {
	var fn, syn []metrics.PromptResult
	for _, o := range outcomes {
		fn = append(fn, o.fn)
		syn = append(syn, o.syn)
	}
	pct := func(x float64) float64 { return 100 * x }
	return QualityCell{
		Model: modelName, DataSize: size, Benchmark: benchmark, Method: method,
		FuncPass1:  pct(metrics.MeanPassAtK(fn, 1)),
		FuncPass5:  pct(metrics.MeanPassAtK(fn, 5)),
		FuncPass10: pct(metrics.MeanPassAtK(fn, 10)),
		FuncRate:   pct(metrics.PassRate(fn)),
		SynPass1:   pct(metrics.MeanPassAtK(syn, 1)),
		SynPass5:   pct(metrics.MeanPassAtK(syn, 5)),
		SynPass10:  pct(metrics.MeanPassAtK(syn, 10)),
		SynRate:    pct(metrics.PassRate(syn)),
	}
}

// RunTable1 trains each scheme incrementally through the data-size
// sweep and evaluates the quality grid at each boundary.
func (r *Runner) RunTable1() []QualityCell {
	var cells []QualityCell
	rtllm := bench.RTLLM()
	vgen := bench.VGen()
	for _, cfg := range r.setup.Models {
		tk := r.toks[cfg.Name]
		for _, scheme := range Schemes {
			m := model.New(tk, cfg, scheme)
			prev := 0
			for _, num := range r.setup.SizeNumerators {
				sub := dataset.Subset(r.examples, num, 4)
				m.TrainMore(sub[prev:])
				prev = len(sub)
				for _, suite := range []struct {
					name  string
					probs []bench.Problem
				}{{"RTLLM", rtllm}, {"VGen", vgen}} {
					outcomes := r.evalSuite(m, suite.probs, r.setup.Seed*1000+int64(num))
					cells = append(cells, cellFrom(cfg.Name, len(sub), suite.name, scheme.String(), outcomes))
				}
			}
		}
	}
	return cells
}

// speedPrompts assembles the Table II prompt set: the two suites'
// prompts plus generated extras (the paper pads with GPT-4-generated
// prompts to 575; we pad with corpus descriptions, which have the same
// provenance as our benchmark prompts).
func (r *Runner) speedPrompts() []string {
	var out []string
	for _, p := range bench.All() {
		out = append(out, p.Prompt)
	}
	for i := 0; len(out) < r.setup.SpeedPrompts && i < len(r.examples); i++ {
		out = append(out, r.examples[i].Prompt)
	}
	if len(out) > r.setup.SpeedPrompts {
		out = out[:r.setup.SpeedPrompts]
	}
	return out
}

// RunTable2 measures simulated generation speed per method on models
// trained with the full corpus (paper protocol: each prompt decoded
// greedily and with sampling at T=0.8; speed is eq. 3 over all outputs;
// speedup is vs the same backbone trained with NTP).
func (r *Runner) RunTable2() []SpeedRow {
	var rows []SpeedRow
	prompts := r.speedPrompts()
	for _, cfg := range r.setup.Models {
		tk := r.toks[cfg.Name]
		speeds := map[model.Scheme]float64{}
		for _, scheme := range Schemes {
			m := model.Train(tk, cfg, scheme, r.examples)
			mode := core.ModeForScheme(scheme)

			// Each prompt decodes greedily and sampled at T=0.8; the
			// pairs dispatch through the shared worker pool and land
			// back in submission order.
			reqs := make([]serve.Request, 0, 2*len(prompts))
			for i, prompt := range prompts {
				reqs = append(reqs,
					serve.Request{Prompt: prompt, Options: core.Options{Mode: mode}},
					serve.Request{Prompt: prompt, Options: core.Options{Mode: mode, Temperature: 0.8, Seed: int64(i)}})
			}
			eng := r.newEngine(m)
			resps := eng.GenerateBatch(context.Background(), reqs)
			eng.Close()
			tokens := make([]int, len(resps))
			secs := make([]float64, len(resps))
			for i, resp := range resps {
				if resp.Err != nil {
					panic(resp.Err)
				}
				tokens[i] = len(resp.Result.CleanTokens)
				secs[i] = resp.Result.SimulatedMS / 1000
			}
			speeds[scheme] = metrics.Speed(tokens, secs)
		}
		ntp := speeds[model.SchemeNTP]
		for _, scheme := range Schemes {
			rows = append(rows, SpeedRow{
				Model:        cfg.Name,
				Method:       scheme.String(),
				TokensPerSec: speeds[scheme],
				Speedup:      metrics.Speedup(speeds[scheme], ntp),
			})
		}
	}
	return rows
}

// MatrixEntry pairs a training scheme with a decoding strategy — one
// axis point of the strategy matrix.
type MatrixEntry struct {
	// Scheme trains the backbone (and heads, if any).
	Scheme model.Scheme
	// Strategy names the decoding strategy (core.ResolveStrategy).
	Strategy string
}

// StrategyMatrix is the Table-2-style strategy axis: the three legacy
// modes on their natural schemes, self-speculative prompt lookup on
// the plain NTP backbone — the drafter that needs no trained heads at
// all, so it accelerates exactly the model Medusa cannot — and the
// three tree-drafting lifts on the same schemes as their linear
// counterparts, so every tree row isolates the drafting shape.
var StrategyMatrix = []MatrixEntry{
	{Scheme: model.SchemeOurs, Strategy: "ours"},
	{Scheme: model.SchemeOurs, Strategy: "ours-tree"},
	{Scheme: model.SchemeOurs, Strategy: "grammar-tree"},
	{Scheme: model.SchemeMedusa, Strategy: "medusa"},
	{Scheme: model.SchemeMedusa, Strategy: "medusa-tree"},
	{Scheme: model.SchemeNTP, Strategy: "ntp"},
	{Scheme: model.SchemeNTP, Strategy: "prompt-lookup"},
	{Scheme: model.SchemeNTP, Strategy: "lookup-tree"},
	{Scheme: model.SchemeNTP, Strategy: "grammar-lookup-tree"},
}

// StrategyRow is one strategy-matrix result row.
type StrategyRow struct {
	Model    string
	Scheme   string
	Strategy string
	// TokensPerSec is the eq. 3 simulated speed over the prompt set.
	TokensPerSec float64
	// Speedup is versus the ntp row of the same model.
	Speedup float64
	// MeanAccepted is raw tokens emitted per decoding step.
	MeanAccepted float64
	// WallMSPerToken is measured wall-clock decoder milliseconds per
	// clean token — real CPU cost next to the simulated speedup, the
	// honest accounting "Speculative Decoding: Performance or
	// Illusion?" calls for. On this substrate drafting is nearly free,
	// so strategies that cut step counts also cut wall-clock; on a GPU
	// the two columns can diverge, which is exactly why both are shown.
	WallMSPerToken float64
}

// RunStrategyMatrix measures simulated generation speed for every
// (scheme, strategy) pairing of StrategyMatrix under the Table II
// protocol (greedy + T=0.8 per prompt, dispatch through the shared
// worker pool). Models are trained once per scheme and reused across
// strategies, so the matrix isolates the decoding strategy.
func (r *Runner) RunStrategyMatrix() []StrategyRow {
	var rows []StrategyRow
	prompts := r.speedPrompts()
	for _, cfg := range r.setup.Models {
		tk := r.toks[cfg.Name]
		trained := map[model.Scheme]*model.Model{}
		speeds := map[string]float64{}
		accepted := map[string]float64{}
		wallPerToken := map[string]float64{}
		for _, entry := range StrategyMatrix {
			m := trained[entry.Scheme]
			if m == nil {
				m = model.Train(tk, cfg, entry.Scheme, r.examples)
				trained[entry.Scheme] = m
			}
			reqs := make([]serve.Request, 0, 2*len(prompts))
			for i, prompt := range prompts {
				reqs = append(reqs,
					serve.Request{Prompt: prompt, Options: core.Options{Strategy: entry.Strategy}},
					serve.Request{Prompt: prompt, Options: core.Options{Strategy: entry.Strategy, Temperature: 0.8, Seed: int64(i)}})
			}
			eng := r.newEngine(m)
			resps := eng.GenerateBatch(context.Background(), reqs)
			eng.Close()
			tokens := make([]int, len(resps))
			secs := make([]float64, len(resps))
			var rawTokens, steps, cleanTokens, wallMS float64
			for i, resp := range resps {
				if resp.Err != nil {
					panic(resp.Err)
				}
				tokens[i] = len(resp.Result.CleanTokens)
				secs[i] = resp.Result.SimulatedMS / 1000
				rawTokens += float64(len(resp.Result.Tokens))
				steps += float64(resp.Result.Steps)
				cleanTokens += float64(len(resp.Result.CleanTokens))
				wallMS += float64(resp.Wall) / float64(time.Millisecond)
			}
			speeds[entry.Strategy] = metrics.Speed(tokens, secs)
			if steps > 0 {
				accepted[entry.Strategy] = rawTokens / steps
			}
			if cleanTokens > 0 {
				wallPerToken[entry.Strategy] = wallMS / cleanTokens
			}
		}
		for _, entry := range StrategyMatrix {
			label := entry.Strategy
			if s, err := core.ResolveStrategy(entry.Strategy, false); err == nil {
				label = s.Name
			}
			rows = append(rows, StrategyRow{
				Model:          cfg.Name,
				Scheme:         entry.Scheme.String(),
				Strategy:       label,
				TokensPerSec:   speeds[entry.Strategy],
				Speedup:        metrics.Speedup(speeds[entry.Strategy], speeds["ntp"]),
				MeanAccepted:   accepted[entry.Strategy],
				WallMSPerToken: wallPerToken[entry.Strategy],
			})
		}
	}
	return rows
}

// Fig5Prompt is the paper's worked example (Fig. 5).
const Fig5Prompt = `Please act as a professional Verilog designer. Create a simple Verilog module named "data_register" that takes a 4-bit input data_in and assigns it to a 4-bit output data_out using a non-blocking assignment on the positive edge of the clock clk.`

// RunFig5 decodes the data_register example greedily with each method
// and reports step counts (paper: Ours 14, Medusa 24, NTP 77 — the
// ordering and rough ratios are the reproduction target).
func (r *Runner) RunFig5() []Fig5Row {
	cfg := r.setup.Models[0]
	tk := r.toks[cfg.Name]
	var rows []Fig5Row
	for _, scheme := range Schemes {
		m := model.Train(tk, cfg, scheme, r.examples)
		dec := core.NewDecoder(m)
		res := dec.Generate(Fig5Prompt, core.Options{Mode: core.ModeForScheme(scheme)})
		rows = append(rows, Fig5Row{Method: scheme.String(), Steps: res.Steps, Tokens: len(res.CleanTokens)})
	}
	return rows
}

// Fig1Point pairs Table II speed with Table I pass@10 on RTLLM for the
// scatter of Fig. 1.
type Fig1Point struct {
	Method       string
	TokensPerSec float64
	FuncPass10   float64
}

// Fig1 derives the scatter points from computed tables (largest data
// size, first model, RTLLM benchmark).
func Fig1(t1 []QualityCell, t2 []SpeedRow, modelName string) []Fig1Point {
	maxSize := 0
	for _, c := range t1 {
		if c.Model == modelName && c.DataSize > maxSize {
			maxSize = c.DataSize
		}
	}
	var pts []Fig1Point
	for _, row := range t2 {
		if row.Model != modelName {
			continue
		}
		for _, c := range t1 {
			if c.Model == modelName && c.Benchmark == "RTLLM" && c.DataSize == maxSize && c.Method == row.Method {
				pts = append(pts, Fig1Point{Method: row.Method, TokensPerSec: row.TokensPerSec, FuncPass10: c.FuncPass10})
			}
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].Method < pts[j].Method })
	return pts
}

// Fig6 extracts the CodeT5p pass@5 slice of Table I (Function and
// Syntax × RTLLM/VGen × data sizes).
func Fig6(t1 []QualityCell, modelName string) []QualityCell {
	var out []QualityCell
	for _, c := range t1 {
		if c.Model == modelName {
			out = append(out, c)
		}
	}
	return out
}
