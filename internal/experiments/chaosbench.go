package experiments

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/serve"
)

// This file is the chaos/fault-injection tier: a deterministic fault
// plane wired into replica engines through serve.Config.StepFault, and
// a bench that kills or wedges a replica mid-run and measures what
// clients actually see — availability, non-shed errors, and p99 —
// before, during, and after the fault. The CI gate
// (TestChaosRecoveryGate, `make chaos-gate`) pins the elasticity
// claim: a faulted fleet must answer every request through hedges,
// failover and breakers, and recover its latency once healed.

// ErrInjected is the error every injected fault surfaces inside the
// engine. It is NOT a protocol error (not shed, not backpressure), so
// the dispatch layer treats it exactly like a real replica fault:
// retryable, breaker-charging.
var ErrInjected = errors.New("chaos: injected replica fault")

// FaultKind enumerates the injectable replica faults.
type FaultKind int32

const (
	// FaultNone: healthy replica.
	FaultNone FaultKind = iota
	// FaultKill fails every decode fast — the crashed-process shape.
	FaultKill
	// FaultWedge blocks every decode until its context dies or the
	// fault is healed — the hung-accelerator shape. While the fault is
	// armed, only hedge timeouts and cancellation get a request off a
	// wedged replica; Heal (the operator restart) releases parked
	// decodes to complete normally.
	FaultWedge
	// FaultSlow stalls each fault-plane consult by a fixed delay. The
	// continuous scheduler consults once per verification sweep, so the
	// stall multiplies decode wall time — the degraded-replica shape.
	FaultSlow
	// FaultErrRate fails every Nth decode deterministically — the
	// flaky-replica shape.
	FaultErrRate
)

// String names the fault for reports.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultKill:
		return "kill"
	case FaultWedge:
		return "wedge"
	case FaultSlow:
		return "slow"
	case FaultErrRate:
		return "error-rate"
	default:
		return fmt.Sprintf("fault(%d)", int32(k))
	}
}

// faultSlot is one replica's injected state. All fields are atomics:
// the bench flips faults from the driver goroutine while engine
// workers consult concurrently.
type faultSlot struct {
	kind     atomic.Int32
	delay    atomic.Int64  // FaultSlow: stall per consult, nanoseconds
	everyN   atomic.Uint64 // FaultErrRate: fail every Nth consult
	consults atomic.Uint64
	// unwedge is armed (a fresh channel) per wedge epoch and closed by
	// Heal, releasing decodes parked in the wedge hook. Without it a
	// parked hook outlives the fault, and enough wedge epochs park every
	// scheduler in the fleet — a deadline-less client fleet would then
	// deadlock: no dispatch can conclude, so no attempt context ever
	// dies, so nothing unparks.
	unwedge atomic.Pointer[chan struct{}]
}

// FaultPlane is a deterministic fault-injection plane for a fleet:
// one slot per replica index, flipped at runtime with Inject/Heal,
// delivered into the engines as StepFault hooks. No randomness —
// FaultErrRate fails on a fixed modulus — so chaos runs replay.
type FaultPlane struct {
	slots []faultSlot
}

// NewFaultPlane returns a plane for n replicas, all healthy.
func NewFaultPlane(n int) *FaultPlane {
	return &FaultPlane{slots: make([]faultSlot, n)}
}

// Inject arms replica i with a fault. FaultSlow and FaultErrRate take
// their parameter via InjectSlow / InjectErrRate.
func (p *FaultPlane) Inject(i int, k FaultKind) {
	s := &p.slots[i]
	if k == FaultWedge {
		// Arm the release channel before the kind becomes visible: any
		// hook that observes the wedge observes its channel too.
		ch := make(chan struct{})
		s.unwedge.Store(&ch)
	}
	s.kind.Store(int32(k))
}

// InjectSlow arms replica i to stall every consult by d.
func (p *FaultPlane) InjectSlow(i int, d time.Duration) {
	p.slots[i].delay.Store(int64(d))
	p.slots[i].kind.Store(int32(FaultSlow))
}

// InjectErrRate arms replica i to fail every nth decode.
func (p *FaultPlane) InjectErrRate(i int, n uint64) {
	if n < 1 {
		n = 1
	}
	p.slots[i].everyN.Store(n)
	p.slots[i].kind.Store(int32(FaultErrRate))
}

// Heal returns replica i to healthy and releases any decodes parked in
// its wedge hook.
func (p *FaultPlane) Heal(i int) {
	s := &p.slots[i]
	s.kind.Store(int32(FaultNone))
	if ch := s.unwedge.Swap(nil); ch != nil {
		close(*ch)
	}
}

// Kind reports replica i's current fault.
func (p *FaultPlane) Kind(i int) FaultKind {
	return FaultKind(p.slots[i].kind.Load())
}

// Hook builds replica i's serve.Config.StepFault hook. The hook
// honours ctx (a wedged decode unblocks the moment its context dies —
// hedge cancellation, client hangup, or engine Close) and Heal (a
// healed wedge releases its parked decodes to complete normally).
func (p *FaultPlane) Hook(i int) func(ctx context.Context) error {
	s := &p.slots[i]
	return func(ctx context.Context) error {
		switch FaultKind(s.kind.Load()) {
		case FaultKill:
			return ErrInjected
		case FaultWedge:
			ch := s.unwedge.Load()
			if ch == nil {
				return nil // healed between the kind check and here
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-*ch:
				return nil
			}
		case FaultSlow:
			select {
			case <-time.After(time.Duration(s.delay.Load())):
			case <-ctx.Done():
				return ctx.Err()
			}
		case FaultErrRate:
			if n := s.everyN.Load(); n > 0 && s.consults.Add(1)%n == 0 {
				return ErrInjected
			}
		}
		return nil
	}
}

// ChaosBenchConfig sizes one chaos scenario: a three-phase workload
// (before / during / after) against a hedging, breaker-guarded fleet,
// with cfg.Fault injected into the hottest replica for the middle
// phase.
type ChaosBenchConfig struct {
	// Replicas is the fleet size (default 3).
	Replicas int
	// Clients is the concurrent load-generator count (default 6).
	Clients int
	// Rounds is requests per client per phase (default 6).
	Rounds int
	// Prompts is the distinct-prompt count (default 6).
	Prompts int
	// Workers sizes each replica engine (default 1 — a single wedged
	// decode stalls the whole replica, the worst case).
	Workers int
	// Fault is the kind injected for the during phase (FaultNone runs
	// the unfaulted baseline the gate compares against).
	Fault FaultKind
	// SlowBy parameterizes FaultSlow (default 5ms per sweep).
	SlowBy time.Duration
	// ErrEvery parameterizes FaultErrRate (default 2: every 2nd decode).
	ErrEvery uint64
	// HedgeAfter is the fleet hedge timer (default 25ms) — the only
	// thing that gets a request off a wedged replica.
	HedgeAfter time.Duration
	// BreakerThreshold / BreakerCooldown configure the per-replica
	// circuit breakers (defaults 2 / 150ms).
	BreakerThreshold int
	BreakerCooldown  time.Duration
}

func (c ChaosBenchConfig) withDefaults() ChaosBenchConfig {
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.Clients <= 0 {
		c.Clients = 6
	}
	if c.Rounds <= 0 {
		c.Rounds = 6
	}
	if c.Prompts <= 0 {
		c.Prompts = 6
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.SlowBy <= 0 {
		c.SlowBy = 5 * time.Millisecond
	}
	if c.ErrEvery < 1 {
		c.ErrEvery = 2
	}
	if c.HedgeAfter <= 0 {
		c.HedgeAfter = 25 * time.Millisecond
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 2
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 150 * time.Millisecond
	}
	return c
}

// ChaosPhase is one phase's client-side measurement.
type ChaosPhase struct {
	Name     string
	Requests int
	// OK / Shed / Faults partition the outcomes: successful responses,
	// documented shed-protocol refusals, and everything else — the
	// client-visible errors the elasticity machinery exists to prevent.
	OK     int
	Shed   int
	Faults int
	// FirstFault is the first non-shed error, for the report.
	FirstFault string
	P99WallMS  float64
}

// Availability is the fraction of requests answered within protocol
// (success or documented shed) — 1.0 means zero client-visible errors
// beyond the shed protocol.
func (p ChaosPhase) Availability() float64 {
	if p.Requests == 0 {
		return 1
	}
	return float64(p.OK+p.Shed) / float64(p.Requests)
}

// ChaosResult is one scenario's full measurement.
type ChaosResult struct {
	Fault  string
	Target string // replica the fault was injected into
	Before ChaosPhase
	During ChaosPhase
	After  ChaosPhase
	// Resilience counters accumulated across the run.
	Hedges       uint64
	HedgeWins    uint64
	Failovers    uint64
	BreakerOpens uint64
}

// ChaosBench runs one chaos scenario: a before phase to find the
// hottest (most-serving) replica, the fault injected there for the
// during phase, then heal, a breaker-cooldown pause, and an after
// phase. Every phase reuses the same client/prompt schedule with
// phase-distinct seeds, so decodes are real work (no cache or dedup
// short-circuits) and the three phases are comparable.
func ChaosBench(m *model.Model, prompts []string, cfg ChaosBenchConfig) (*ChaosResult, error) {
	cfg = cfg.withDefaults()
	if len(prompts) < cfg.Prompts {
		return nil, fmt.Errorf("chaos bench needs %d prompts, got %d", cfg.Prompts, len(prompts))
	}
	prompts = prompts[:cfg.Prompts]

	plane := NewFaultPlane(cfg.Replicas)
	specs := make([]cluster.ReplicaSpec, cfg.Replicas)
	for i := range specs {
		specs[i] = cluster.ReplicaSpec{
			Model: m,
			Engine: serve.Config{
				Workers:   cfg.Workers,
				CacheSize: -1, // real decodes only: a cache hit skips the fault plane
				StepFault: plane.Hook(i),
			},
		}
	}
	fleet, err := cluster.New(specs, cluster.Config{
		HedgeAfter:       cfg.HedgeAfter,
		BreakerThreshold: cfg.BreakerThreshold,
		BreakerCooldown:  cfg.BreakerCooldown,
	})
	if err != nil {
		return nil, err
	}
	defer fleet.Close()

	res := &ChaosResult{Fault: cfg.Fault.String()}

	before, served := runChaosPhase(fleet, prompts, cfg, "before", 0)
	res.Before = before

	// Fault the replica that served the most before-phase traffic: the
	// affinity hotspot, where the fault hurts most.
	target := hottestReplica(fleet, served)
	res.Target = fleet.Replicas()[target].Name()
	switch cfg.Fault {
	case FaultSlow:
		plane.InjectSlow(target, cfg.SlowBy)
	case FaultErrRate:
		plane.InjectErrRate(target, cfg.ErrEvery)
	default:
		plane.Inject(target, cfg.Fault)
	}

	res.During, _ = runChaosPhase(fleet, prompts, cfg, "during", 1)

	plane.Heal(target)
	// Let the breaker cool down and re-admit the healed replica before
	// measuring recovery.
	time.Sleep(cfg.BreakerCooldown + 50*time.Millisecond)

	res.After, _ = runChaosPhase(fleet, prompts, cfg, "after", 2)

	fm := fleet.Metrics()
	res.Hedges = fm.Hedges
	res.HedgeWins = fm.HedgeWins
	res.Failovers = fm.Failovers
	for _, rm := range fm.PerReplica {
		res.BreakerOpens += rm.BreakerOpens
	}
	return res, nil
}

// runChaosPhase fires one phase of the workload and classifies every
// outcome. The returned map counts responses per serving replica.
func runChaosPhase(fleet *cluster.Fleet, prompts []string, cfg ChaosBenchConfig, name string, phase int) (ChaosPhase, map[string]int) {
	total := cfg.Clients * cfg.Rounds
	latencies := make([]float64, 0, total)
	served := map[string]int{}
	out := ChaosPhase{Name: name, Requests: total}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < cfg.Rounds; k++ {
				req := serve.Request{
					Prompt: prompts[(c+k)%len(prompts)],
					// Phase-and-request-distinct seeds: no two requests
					// in the run share a cache or dedup key.
					Options: chaosOptions(int64(phase*10_000 + c*100 + k)),
				}
				t0 := time.Now()
				resp, err := fleet.Generate(context.Background(), req)
				wall := float64(time.Since(t0)) / float64(time.Millisecond)
				mu.Lock()
				var shed *serve.ShedError
				switch {
				case err == nil:
					out.OK++
					served[resp.Replica]++
					latencies = append(latencies, wall)
				case errors.As(err, &shed):
					out.Shed++
				default:
					out.Faults++
					if out.FirstFault == "" {
						out.FirstFault = fmt.Sprintf("client %d round %d: %v", c, k, err)
					}
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	sort.Float64s(latencies)
	out.P99WallMS = percentile(latencies, 0.99)
	return out, served
}

// hottestReplica maps the busiest serving replica back to its spec
// index (fleet construction order).
func hottestReplica(fleet *cluster.Fleet, served map[string]int) int {
	target, best := 0, -1
	for i, r := range fleet.Replicas() {
		if n := served[r.Name()]; n > best {
			target, best = i, n
		}
	}
	return target
}

// chaosOptions is the chaos-bench decode option set: sampled, short,
// seeded per request.
func chaosOptions(seed int64) core.Options {
	return core.Options{Temperature: 0.6, MaxNewTokens: 32, Seed: seed}
}
