// PrefixBench measures what the token-prefix trie cache exists to
// change: how many prompt tokens of session preparation each
// prefix-cache mode recomputes on a shared-stem workload — the traffic
// shape the fleet's affinity router deliberately concentrates onto one
// replica. The whole-prompt LRU only reuses exact repeats; the trie
// additionally forks the shared stems, so its tokens-recomputed column
// drops well below the LRU's (pinned by TestPrefixBenchTrieRecomputesFewer).
package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/serve"
)

// SharedStemPrompts builds a workload of prompt families: each family
// shares one long instruction stem (the "Please act as a professional
// Verilog designer..." boilerplate plus a module description) and
// diverges only in a short trailing requirement. This is the
// n-variants-per-task shape of benchmark sweeps and retry traffic.
func SharedStemPrompts(families, variants int) []string {
	stems := []string{
		"Please act as a professional Verilog designer. Create a synchronous FIFO named fifo_unit with clock clk, reset rst, write enable wen and read enable ren",
		"Please act as a professional Verilog designer. Create a module named alu_unit that takes two 8-bit operands a and b and an opcode op",
		"Please act as a professional Verilog designer. Create a finite state machine named fsm_unit with clock clk and an asynchronous active-low reset rst_n",
		"Please act as a professional Verilog designer. Create a parameterizable shift register named shift_unit with clock clk and serial input sin",
		"Please act as a professional Verilog designer. Create a priority encoder named enc_unit over an 8-bit one-hot input req",
		"Please act as a professional Verilog designer. Create an up-down counter named cnt_unit with clock clk, reset rst and direction input dir",
	}
	tails := []string{
		"and a %d-bit data path.",
		"with a depth of %d entries.",
		"raising a flag after %d cycles.",
		"with an output width of %d bits.",
	}
	var out []string
	for f := 0; f < families; f++ {
		stem := stems[f%len(stems)]
		for v := 0; v < variants; v++ {
			out = append(out, fmt.Sprintf("%s %s", stem, fmt.Sprintf(tails[v%len(tails)], 2+v)))
		}
	}
	return out
}

// PrefixBenchConfig sizes the shared-stem workload.
type PrefixBenchConfig struct {
	// Families is the number of distinct stems; Variants the prompts
	// per stem (defaults 4 × 4).
	Families, Variants int
	// Repeats re-submits the whole workload with fresh seeds, modelling
	// retry/n-sample traffic (default 2; the first pass is always cold).
	Repeats int
	// MaxNewTokens bounds each decode (default 32 — session preparation
	// is what is being measured, not generation length).
	MaxNewTokens int
	// Workers sizes each engine (default 2).
	Workers int
}

func (c PrefixBenchConfig) withDefaults() PrefixBenchConfig {
	if c.Families <= 0 {
		c.Families = 4
	}
	if c.Variants <= 0 {
		c.Variants = 4
	}
	if c.Repeats <= 0 {
		c.Repeats = 2
	}
	if c.MaxNewTokens <= 0 {
		c.MaxNewTokens = 32
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	return c
}

// PrefixBenchRow is one cache mode's measured outcome.
type PrefixBenchRow struct {
	Mode     string
	Requests int
	// PromptTokens is the total session-preparation work submitted
	// (canonical prompt tokens across all decoded requests); TokensSaved
	// is how much of it the cache skipped; TokensRecomputed is what was
	// actually paid. Off recomputes everything, whole-prompt saves exact
	// repeats, the trie also saves the shared stems.
	PromptTokens     uint64
	TokensSaved      uint64
	TokensRecomputed uint64
	// Hits/PartialHits/Misses/HitRate are the session-cache counters
	// (serve metrics prefix_cache_*).
	Hits, PartialHits, Misses uint64
	HitRate                   float64
}

// PrefixBench drives the shared-stem workload through one engine per
// prefix-cache mode. The workload and seed schedule are identical
// across modes — decodes are deterministic per seed, so rows differ
// only in session reuse (the differential harness pins the outputs as
// byte-identical; this bench quantifies the recompute gap).
func PrefixBench(m *model.Model, cfg PrefixBenchConfig) []PrefixBenchRow {
	cfg = cfg.withDefaults()
	prompts := SharedStemPrompts(cfg.Families, cfg.Variants)
	tk := m.Tokenizer()
	var promptTokens uint64
	for r := 0; r < cfg.Repeats; r++ {
		for _, p := range prompts {
			promptTokens += uint64(len(model.CanonicalPromptIDs(tk, p)))
		}
	}

	var rows []PrefixBenchRow
	for _, mode := range []string{serve.PrefixCacheOff, serve.PrefixCacheWhole, serve.PrefixCacheTrie} {
		eng := serve.NewEngine(m, serve.Config{
			Workers:         cfg.Workers,
			CacheSize:       -1, // every request must decode (and look up its session)
			PrefixCacheMode: mode,
		})
		reqs := make([]serve.Request, 0, cfg.Repeats*len(prompts))
		for r := 0; r < cfg.Repeats; r++ {
			for i, p := range prompts {
				reqs = append(reqs, serve.Request{
					Prompt:  p,
					Options: benchPrefixOptions(int64(r*1000+i), cfg.MaxNewTokens),
				})
			}
		}
		resps := eng.GenerateBatch(context.Background(), reqs)
		mt := eng.Metrics()
		eng.Close()
		for i, resp := range resps {
			if resp.Err != nil {
				panic(fmt.Sprintf("prefix bench request %d: %v", i, resp.Err))
			}
		}
		rows = append(rows, PrefixBenchRow{
			Mode:             mode,
			Requests:         len(reqs),
			PromptTokens:     promptTokens,
			TokensSaved:      mt.PrefixCacheTokensSaved,
			TokensRecomputed: promptTokens - mt.PrefixCacheTokensSaved,
			Hits:             mt.PrefixCacheHits,
			PartialHits:      mt.PrefixCachePartialHits,
			Misses:           mt.PrefixCacheMisses,
			HitRate:          mt.PrefixCacheHitRate,
		})
	}
	return rows
}

// benchPrefixOptions is the PrefixBench decode option set: sampled so
// decodes cost real work, tightly bounded so the measurement stays on
// session preparation.
func benchPrefixOptions(seed int64, maxNew int) core.Options {
	return core.Options{Temperature: 0.6, MaxNewTokens: maxNew, Seed: seed}
}

// RunPrefixBench trains one model on the full corpus and runs the
// shared-stem workload across all three prefix-cache modes.
func (r *Runner) RunPrefixBench(cfg PrefixBenchConfig) []PrefixBenchRow {
	mcfg := r.setup.Models[0]
	m := model.Train(r.toks[mcfg.Name], mcfg, model.SchemeOurs, r.examples)
	return PrefixBench(m, cfg)
}
