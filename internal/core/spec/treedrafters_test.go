package spec

import (
	"testing"

	"repro/internal/core/spec/tree"
	"repro/internal/model"
	"repro/internal/tokenizer"
)

func TestTreeStrategiesRegistered(t *testing.T) {
	for name, display := range map[string]string{
		"medusa-tree": "MedusaTree", "mt": "MedusaTree",
		"lookup-tree": "LookupTree", "lt": "LookupTree", "LookupTree": "LookupTree",
		"ours-tree": "OursTree", "tree": "OursTree",
	} {
		s, ok := Named(name)
		if !ok {
			t.Fatalf("Named(%q) not found", name)
		}
		if s.Name != display {
			t.Errorf("Named(%q).Name = %q, want %q", name, s.Name, display)
		}
		if _, isTree := s.Drafter.(TreeDrafter); !isTree {
			t.Errorf("Named(%q) drafter %T is not a TreeDrafter", name, s.Drafter)
		}
		if src := s.Drafter.BeginStep(DraftCtx{}); src != nil {
			t.Errorf("Named(%q) tree drafter proposed linear candidates", name)
		}
	}
	// ours-tree composes with the integrity ablation like ours does.
	s, _ := Named("ours-tree")
	if _, wrapped := s.Verifier.(Integrity); !wrapped {
		t.Fatal("ours-tree verifier not integrity-wrapped")
	}
	if _, wrapped := WithoutIntegrity(s).Verifier.(Integrity); wrapped {
		t.Fatal("WithoutIntegrity left ours-tree wrapped")
	}
}

func TestRegisteredInfo(t *testing.T) {
	infos := Registered()
	if len(infos) != len(Names()) {
		t.Fatalf("Registered() has %d entries, Names() %d", len(infos), len(Names()))
	}
	byName := map[string]Info{}
	for i := 1; i < len(infos); i++ {
		if infos[i-1].Canonical >= infos[i].Canonical {
			t.Fatalf("Registered() not sorted: %q before %q", infos[i-1].Canonical, infos[i].Canonical)
		}
	}
	for _, in := range infos {
		byName[in.Canonical] = in
	}
	lt := byName["lookup-tree"]
	if !lt.Tree || lt.NeedsHeads || lt.Display != "LookupTree" || lt.Verifier != "greedy-exact" {
		t.Fatalf("lookup-tree info = %+v", lt)
	}
	if mt := byName["medusa-tree"]; !mt.Tree || !mt.NeedsHeads {
		t.Fatalf("medusa-tree info = %+v", mt)
	}
	if ntp := byName["ntp"]; ntp.Tree {
		t.Fatalf("ntp info claims a tree drafter: %+v", ntp)
	}
	if pl := byName["prompt-lookup"]; len(pl.Aliases) == 0 {
		t.Fatalf("prompt-lookup info lost its aliases: %+v", pl)
	}
}

func TestMedusaTreeBuild(t *testing.T) {
	fw := model.Forward{Heads: []model.Dist{
		dist(map[int]float64{10: 0.5, 11: 0.3, 12: 0.2}),
		dist(map[int]float64{20: 0.6, 21: 0.4}),
		dist(map[int]float64{30: 1.0}),
	}}
	tr := (MedusaTree{}).BuildTree(DraftCtx{Forward: fw, TopK: 3}, DefaultTreeBudget)
	if tr == nil {
		t.Fatal("no tree built")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Two full-width static levels: depth 1 carries head 0's top-k,
	// depth 2 head 1's (only two tokens in its support here); deeper
	// positions belong to the chain tail, not the static tree.
	kids := tr.Children(tree.Root, nil)
	if len(kids) != 3 {
		t.Fatalf("root has %d children, want 3", len(kids))
	}
	for _, k := range kids {
		sub := tr.Children(k, nil)
		if len(sub) != 2 {
			t.Fatalf("depth-1 node has %d children, want 2", len(sub))
		}
		for _, s := range sub {
			if chain := tr.Children(s, nil); len(chain) != 0 {
				t.Fatalf("depth-2 node has %d static children, want 0 (chain tail is adaptive)", len(chain))
			}
		}
	}
	// 3 + 3·2 draft nodes.
	if tr.DraftNodes() != 9 {
		t.Fatalf("draft nodes = %d, want 9", tr.DraftNodes())
	}
	// The chain tail reads the remaining heads position by position.
	ext := (MedusaTree{}).Extend(DraftCtx{Forward: fw, TopK: 3}, 2)
	if len(ext) != 1 || ext[0] != 30 {
		t.Fatalf("Extend(2) = %v, want [30]", ext)
	}
	if ext := (MedusaTree{}).Extend(DraftCtx{Forward: fw, TopK: 3}, 3); ext != nil {
		t.Fatalf("Extend past the last head = %v", ext)
	}
	// A tight budget truncates instead of overflowing.
	small := (MedusaTree{}).BuildTree(DraftCtx{Forward: fw, TopK: 3}, 4)
	if small.DraftNodes() != 4 {
		t.Fatalf("budget-4 tree has %d draft nodes", small.DraftNodes())
	}
	if err := small.Validate(); err != nil {
		t.Fatal(err)
	}
	// No heads, no tree (the NTP-backbone fast path).
	if tr := (MedusaTree{}).BuildTree(DraftCtx{TopK: 3}, 8); tr != nil {
		t.Fatal("MedusaTree drafted without heads")
	}
}

func TestMedusaTreeStopsAtEos(t *testing.T) {
	fw := model.Forward{Heads: []model.Dist{
		dist(map[int]float64{tokenizer.EosID: 1.0}),
		dist(map[int]float64{20: 1.0}),
	}}
	tr := (MedusaTree{}).BuildTree(DraftCtx{Forward: fw, TopK: 1}, DefaultTreeBudget)
	if tr.DraftNodes() != 1 {
		t.Fatalf("draft nodes = %d, want 1 (nothing extends past <eos>)", tr.DraftNodes())
	}
}

func TestLookupRunsLeadsWithLinearRun(t *testing.T) {
	// Sequence with the suffix [7 8 9] occurring twice earlier with
	// different continuations: most recent first, then the older one.
	seq := []int{7, 8, 9, 50, 51, 99, 7, 8, 9, 60, 61, 99, 7, 8, 9}
	linear := lookupRun(seq, 3, 10)
	runs := lookupRuns(seq, 3, 10, 4)
	if len(runs) < 2 {
		t.Fatalf("runs = %v, want at least the two distinct continuations", runs)
	}
	if len(linear) == 0 {
		t.Fatal("linear lookup found nothing")
	}
	for i, id := range linear {
		if runs[0][i] != id {
			t.Fatalf("runs[0] = %v, want the linear run %v", runs[0], linear)
		}
	}
	// The older occurrence's continuation must appear as another branch.
	found := false
	for _, r := range runs[1:] {
		if len(r) > 0 && r[0] == 50 {
			found = true
		}
	}
	if !found {
		t.Fatalf("older match continuation missing from %v", runs)
	}
}

func TestLookupTreeBuildsSharedPrefixBranches(t *testing.T) {
	seq := []int{7, 8, 9, 40, 41, 99, 7, 8, 9, 40, 55, 99, 7, 8, 9}
	tr := (LookupTree{}).BuildTree(DraftCtx{Seq: seq}, DefaultTreeBudget)
	if tr == nil {
		t.Fatal("no tree built")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Both continuations start with 40: one shared depth-1 node, two
	// children below it (55-first — most recent — then 41).
	kids := tr.Children(tree.Root, nil)
	if len(kids) != 1 || tr.Node(kids[0]).Token != 40 {
		t.Fatalf("root children = %v (tokens %v)", kids, rootTokens(tr))
	}
	sub := tr.Children(kids[0], nil)
	if len(sub) != 2 {
		t.Fatalf("shared-prefix node has %d children, want 2", len(sub))
	}
	if tr.Node(sub[0]).Token != 55 || tr.Node(sub[1]).Token != 41 {
		t.Fatalf("branch tokens = [%d %d], want [55 41] (most recent first)",
			tr.Node(sub[0]).Token, tr.Node(sub[1]).Token)
	}
}

func TestHybridTreeUnionsBranches(t *testing.T) {
	seq := []int{7, 8, 9, 40, 41, 99, 7, 8, 9}
	fw := model.Forward{Heads: []model.Dist{
		dist(map[int]float64{40: 0.6, 90: 0.4}), // 40 dedups into the lookup chain
		dist(map[int]float64{91: 1.0}),
	}}
	tr := (HybridTree{}).BuildTree(DraftCtx{Seq: seq, Forward: fw, TopK: 2}, DefaultTreeBudget)
	if tr == nil {
		t.Fatal("no tree built")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	kids := tr.Children(tree.Root, nil)
	if len(kids) != 2 {
		t.Fatalf("root children tokens = %v, want lookup 40 + head 90", rootTokens(tr))
	}
	if tr.Node(kids[0]).Token != 40 || tr.Node(kids[0]).Origin != tree.OriginLookup {
		t.Fatalf("first branch = token %d origin %v, want lookup 40",
			tr.Node(kids[0]).Token, tr.Node(kids[0]).Origin)
	}
	if tr.Node(kids[1]).Token != 90 || tr.Node(kids[1]).Origin != tree.OriginHead {
		t.Fatalf("second branch = token %d origin %v, want head 90",
			tr.Node(kids[1]).Token, tr.Node(kids[1]).Origin)
	}
}

func rootTokens(tr *tree.Tree) []int {
	var out []int
	for _, k := range tr.Children(tree.Root, nil) {
		out = append(out, tr.Node(k).Token)
	}
	return out
}
