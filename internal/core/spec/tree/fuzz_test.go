package tree

import "testing"

// FuzzDraftTree interprets the input as a batch of (parent, token)
// insertions — parent selectors wrap over the live arena, so the corpus
// freely spells chains, wide fans, duplicate paths and budget overflow
// — and checks the arena's invariants after every batch:
//
//   - insert: dedup per (parent, token), stable ids, budget respected
//     (Validate covers structure: parent-before-child, depth, sibling
//     consistency);
//   - walk: every draft node visited exactly once, parents first;
//   - longest accepted path: the BFS descent the verifier uses (accept
//     a node iff its token passes a predicate and its whole ancestry
//     passed) must agree with a brute-force scan over all root paths.
func FuzzDraftTree(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{0, 10, 1, 11, 2, 12}, uint8(1))                // chain
	f.Add([]byte{0, 10, 0, 11, 0, 12, 0, 10}, uint8(2))         // fan + duplicate
	f.Add([]byte{0, 10, 1, 20, 1, 21, 0, 11, 4, 20}, uint8(3))  // two branches sharing a token
	f.Add([]byte{0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 0, 6}, uint8(0)) // budget overflow
	f.Fuzz(func(t *testing.T, data []byte, acceptMod uint8) {
		budget := 0
		if len(data) > 0 {
			budget = int(data[0]%8) + 1 // small budgets keep overflow in play
		}
		tr := New(budget)
		for i := 0; i+1 < len(data); i += 2 {
			parent := int(data[i]) % tr.Len()
			token := int(data[i+1])
			id, added := tr.Add(parent, token, OriginHead)
			if added {
				n := tr.Node(id)
				if int(n.Parent) != parent || n.Token != token {
					t.Fatalf("inserted node %d = %+v, want parent %d token %d", id, n, parent, token)
				}
			} else if id >= 0 {
				// Dedup: the returned node must really be parent's child
				// with this token.
				n := tr.Node(id)
				if int(n.Parent) != parent || n.Token != token {
					t.Fatalf("dedup returned node %d = %+v, want parent %d token %d", id, n, parent, token)
				}
			} else if !tr.Full() {
				t.Fatalf("Add refused (parent %d token %d) with budget headroom (%d/%d)",
					parent, token, tr.DraftNodes(), budget)
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
		}

		// Walk: every draft node once, parents before children.
		visited := map[int]bool{Root: true}
		count := 0
		tr.Walk(func(id int, n Node) {
			count++
			if visited[id] {
				t.Fatalf("walk revisited node %d", id)
			}
			if !visited[int(n.Parent)] {
				t.Fatalf("walk reached node %d before its parent %d", id, n.Parent)
			}
			visited[id] = true
		})
		if count != tr.DraftNodes() {
			t.Fatalf("walk visited %d nodes, want %d", count, tr.DraftNodes())
		}

		// Longest accepted path: BFS descent vs brute force.
		mod := int(acceptMod%3) + 2
		accept := func(tok int) bool { return tok%mod != 0 }
		bfsBest, bfsDepth := deepestAcceptedBFS(tr, accept)
		bruteDepth := 0
		tr.Walk(func(id int, n Node) {
			ok := true
			for c := id; c != Root; c = int(tr.Node(c).Parent) {
				if !accept(tr.Node(c).Token) {
					ok = false
					break
				}
			}
			if ok && tr.Depth(id) > bruteDepth {
				bruteDepth = tr.Depth(id)
			}
		})
		if bfsDepth != bruteDepth {
			t.Fatalf("BFS deepest accepted depth %d, brute force %d", bfsDepth, bruteDepth)
		}
		path := tr.PathTokens(bfsBest, nil)
		if len(path) != bfsDepth {
			t.Fatalf("accepted path %v has length %d, want depth %d", path, len(path), bfsDepth)
		}
		for _, tok := range path {
			if !accept(tok) {
				t.Fatalf("accepted path %v contains rejected token %d", path, tok)
			}
		}
	})
}

// deepestAcceptedBFS mirrors the verifier's descent: children of
// accepted nodes are screened in insertion order, and the first node
// reaching each new maximum depth wins.
func deepestAcceptedBFS(tr *Tree, accept func(tok int) bool) (best, depth int) {
	best, depth = Root, 0
	queue := []int{Root}
	var kids []int
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		kids = tr.Children(n, kids[:0])
		for _, c := range kids {
			if !accept(tr.Node(c).Token) {
				continue
			}
			queue = append(queue, c)
			if tr.Depth(c) > depth {
				best, depth = c, tr.Depth(c)
			}
		}
	}
	return best, depth
}
