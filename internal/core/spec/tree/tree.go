// Package tree provides the draft-tree arena of token-tree speculative
// drafting: a compact, parent-indexed node store a TreeDrafter fills
// with branching candidate continuations and a tree verifier walks in
// one pass.
//
// Linear speculative drafting proposes ONE continuation run per step;
// the first verifier rejection kills the whole tail, wasting the rest
// of the verification batch. A draft tree instead branches top-k
// candidates per position (per Medusa head, per prompt-lookup match),
// so a rejection only prunes one subtree — the verifier accepts the
// deepest surviving root path, raising mean accepted length without
// changing output quality ("A Theoretical Perspective for Speculative
// Decoding Algorithm": multi-candidate verification strictly dominates
// single-draft at equal acceptance rates).
//
// The arena is deliberately minimal: nodes are append-only, identified
// by dense indices (parents always precede children), with sibling
// links preserving best-first insertion order and per-parent dedup so
// drafters composing branches (the hybrid drafter unions Medusa heads
// with lookup matches) cannot propose the same path twice. It has no
// model or strategy dependencies — drafting policy lives in
// internal/core/spec, verification in internal/core.
package tree

import "fmt"

// Origin records which drafting mechanism proposed a node — branch
// provenance for diagnostics, tree dumps and the bench harness.
type Origin uint8

// Node provenance values.
const (
	// OriginRoot marks the root sentinel only.
	OriginRoot Origin = iota
	// OriginLinear marks nodes inserted by the width-1 lift of a linear
	// drafter (the chain special case of the tree walk).
	OriginLinear
	// OriginHead marks nodes drafted from a Medusa head's top-k.
	OriginHead
	// OriginLookup marks nodes drafted from a prompt-lookup n-gram match.
	OriginLookup
	// OriginGrammar marks nodes drafted from a synthesized grammar
	// construct (sensitivity list, closer chain, ...).
	OriginGrammar
)

// String names the provenance.
func (o Origin) String() string {
	switch o {
	case OriginRoot:
		return "root"
	case OriginLinear:
		return "linear"
	case OriginHead:
		return "head"
	case OriginLookup:
		return "lookup"
	case OriginGrammar:
		return "grammar"
	}
	return "?"
}

// none is the nil node index for child/sibling links.
const none = int32(-1)

// Root is the index of the root sentinel every tree is created with.
// The root carries no token: its children propose draft position 0.
const Root = 0

// Node is one draft proposal: the token, its parent, its depth (root =
// 0, so depth d proposes the token at draft offset d-1) and its branch
// provenance. Child links are arena-internal.
type Node struct {
	Token  int
	Parent int32
	Depth  int32
	Origin Origin

	firstChild  int32
	lastChild   int32
	nextSibling int32
}

// Tree is a compact parent-indexed draft-tree arena. The zero value is
// not usable; create trees with New.
type Tree struct {
	nodes  []Node
	budget int
}

// New returns an empty tree (root only). budget caps the number of
// draft nodes (root excluded): Add refuses insertions past it. A
// budget <= 0 is unbounded — the width-1 linear lift uses that, since
// its chain is already bounded by the drafter's own run length.
func New(budget int) *Tree {
	t := &Tree{budget: budget}
	t.nodes = append(t.nodes, Node{Token: -1, Parent: none, Origin: OriginRoot, firstChild: none, lastChild: none, nextSibling: none})
	return t
}

// Len returns the node count including the root sentinel.
func (t *Tree) Len() int { return len(t.nodes) }

// DraftNodes returns the number of draft proposals (root excluded) —
// the node-budget numerator the serving metrics report.
func (t *Tree) DraftNodes() int { return len(t.nodes) - 1 }

// Budget returns the node budget the tree was created with (<= 0
// unbounded).
func (t *Tree) Budget() int { return t.budget }

// Full reports whether the node budget is exhausted.
func (t *Tree) Full() bool { return t.budget > 0 && t.DraftNodes() >= t.budget }

// Node returns node id by value. It panics on an out-of-range id, like
// a slice index — ids only come from Add and the walk helpers.
func (t *Tree) Node(id int) Node { return t.nodes[id] }

// Add inserts token as a child of parent with the given provenance and
// returns the child's id. Children dedup per (parent, token): a
// duplicate insertion returns the existing child (added=false) with
// its original provenance and sibling position intact, so composed
// drafters converge on shared paths instead of forking them. When the
// tree is at budget and the child does not already exist, Add returns
// (-1, false).
func (t *Tree) Add(parent, token int, origin Origin) (id int, added bool) {
	if parent < 0 || parent >= len(t.nodes) {
		panic(fmt.Sprintf("tree: Add to invalid parent %d (len %d)", parent, len(t.nodes)))
	}
	for c := t.nodes[parent].firstChild; c != none; c = t.nodes[c].nextSibling {
		if t.nodes[c].Token == token {
			return int(c), false
		}
	}
	if t.Full() {
		return -1, false
	}
	id = len(t.nodes)
	t.nodes = append(t.nodes, Node{
		Token:  token,
		Parent: int32(parent),
		Depth:  t.nodes[parent].Depth + 1,
		Origin: origin,

		firstChild:  none,
		lastChild:   none,
		nextSibling: none,
	})
	p := &t.nodes[parent]
	if p.firstChild == none {
		p.firstChild = int32(id)
	} else {
		t.nodes[p.lastChild].nextSibling = int32(id)
	}
	p.lastChild = int32(id)
	return id, true
}

// Children appends node id's children to buf in insertion (best-first)
// order and returns it.
func (t *Tree) Children(id int, buf []int) []int {
	for c := t.nodes[id].firstChild; c != none; c = t.nodes[c].nextSibling {
		buf = append(buf, int(c))
	}
	return buf
}

// Depth returns node id's depth (root = 0).
func (t *Tree) Depth(id int) int { return int(t.nodes[id].Depth) }

// PathTokens appends the tokens along the root→id path (root's
// tokenless sentinel excluded) to buf and returns it — the draft run a
// verifier accepts when id is the deepest surviving node.
func (t *Tree) PathTokens(id int, buf []int) []int {
	start := len(buf)
	for n := int32(id); n != Root; n = t.nodes[n].Parent {
		buf = append(buf, t.nodes[n].Token)
	}
	for l, r := start, len(buf)-1; l < r; l, r = l+1, r-1 {
		buf[l], buf[r] = buf[r], buf[l]
	}
	return buf
}

// Walk visits every node except the root in index order (parents before
// children, insertion order within a level's parent). It exists for
// audits, dumps and the fuzz harness.
func (t *Tree) Walk(fn func(id int, n Node)) {
	for i := 1; i < len(t.nodes); i++ {
		fn(i, t.nodes[i])
	}
}

// Validate checks the arena invariants — parent precedes child, depth
// increments, sibling lists are consistent and duplicate-free, budget
// respected — and returns the first violation. Tests and the fuzz
// harness call it after every mutation batch.
func (t *Tree) Validate() error {
	if len(t.nodes) == 0 || t.nodes[Root].Parent != none || t.nodes[Root].Depth != 0 {
		return fmt.Errorf("tree: malformed root")
	}
	if t.budget > 0 && t.DraftNodes() > t.budget {
		return fmt.Errorf("tree: %d draft nodes exceed budget %d", t.DraftNodes(), t.budget)
	}
	for i := 1; i < len(t.nodes); i++ {
		n := t.nodes[i]
		if n.Parent < 0 || int(n.Parent) >= i {
			return fmt.Errorf("tree: node %d parent %d not an earlier node", i, n.Parent)
		}
		if n.Depth != t.nodes[n.Parent].Depth+1 {
			return fmt.Errorf("tree: node %d depth %d under parent depth %d", i, n.Depth, t.nodes[n.Parent].Depth)
		}
		if n.Origin == OriginRoot {
			return fmt.Errorf("tree: node %d carries the root origin", i)
		}
	}
	for i := 0; i < len(t.nodes); i++ {
		seen := map[int]bool{}
		count := 0
		last := none
		for c := t.nodes[i].firstChild; c != none; c = t.nodes[c].nextSibling {
			if int(t.nodes[c].Parent) != i {
				return fmt.Errorf("tree: node %d in node %d's child list but parented to %d", c, i, t.nodes[c].Parent)
			}
			if seen[t.nodes[c].Token] {
				return fmt.Errorf("tree: node %d has duplicate child token %d", i, t.nodes[c].Token)
			}
			seen[t.nodes[c].Token] = true
			last = c
			if count++; count > len(t.nodes) {
				return fmt.Errorf("tree: node %d sibling list cycles", i)
			}
		}
		if t.nodes[i].lastChild != last {
			return fmt.Errorf("tree: node %d lastChild %d, want %d", i, t.nodes[i].lastChild, last)
		}
	}
	return nil
}
