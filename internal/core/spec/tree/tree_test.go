package tree

import "testing"

func TestAddDedupAndOrder(t *testing.T) {
	tr := New(0)
	a, added := tr.Add(Root, 10, OriginHead)
	if !added || a != 1 {
		t.Fatalf("first Add = (%d, %v)", a, added)
	}
	b, added := tr.Add(Root, 11, OriginHead)
	if !added || b != 2 {
		t.Fatalf("second Add = (%d, %v)", b, added)
	}
	// Duplicate child keeps its original id, provenance and position.
	again, added := tr.Add(Root, 10, OriginLookup)
	if added || again != a {
		t.Fatalf("duplicate Add = (%d, %v), want (%d, false)", again, added, a)
	}
	if tr.Node(a).Origin != OriginHead {
		t.Fatalf("duplicate insertion rewrote provenance: %v", tr.Node(a).Origin)
	}
	kids := tr.Children(Root, nil)
	if len(kids) != 2 || kids[0] != a || kids[1] != b {
		t.Fatalf("children = %v, want [%d %d] (insertion order)", kids, a, b)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBudgetRefusesPastCap(t *testing.T) {
	tr := New(2)
	tr.Add(Root, 1, OriginHead)
	tr.Add(Root, 2, OriginHead)
	if !tr.Full() {
		t.Fatal("tree not full at budget")
	}
	id, added := tr.Add(Root, 3, OriginHead)
	if id != -1 || added {
		t.Fatalf("Add past budget = (%d, %v), want (-1, false)", id, added)
	}
	// A duplicate of an existing child is still answerable at budget.
	id, added = tr.Add(Root, 2, OriginHead)
	if id != 2 || added {
		t.Fatalf("duplicate at budget = (%d, %v), want (2, false)", id, added)
	}
	if tr.DraftNodes() != 2 {
		t.Fatalf("draft nodes = %d, want 2", tr.DraftNodes())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPathTokensAndDepth(t *testing.T) {
	tr := New(0)
	a, _ := tr.Add(Root, 5, OriginLookup)
	b, _ := tr.Add(a, 6, OriginLookup)
	c, _ := tr.Add(b, 7, OriginLookup)
	tr.Add(a, 9, OriginHead) // sibling branch must not disturb the path
	if d := tr.Depth(c); d != 3 {
		t.Fatalf("depth = %d, want 3", d)
	}
	got := tr.PathTokens(c, nil)
	want := []int{5, 6, 7}
	if len(got) != len(want) {
		t.Fatalf("path = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("path = %v, want %v", got, want)
		}
	}
	if p := tr.PathTokens(Root, nil); len(p) != 0 {
		t.Fatalf("root path = %v, want empty", p)
	}
	// Appending to a non-empty buf must not reverse the prefix.
	buf := tr.PathTokens(c, []int{99})
	if buf[0] != 99 || buf[1] != 5 || buf[3] != 7 {
		t.Fatalf("append path = %v", buf)
	}
}

func TestWalkVisitsEveryDraftNode(t *testing.T) {
	tr := New(0)
	a, _ := tr.Add(Root, 1, OriginHead)
	tr.Add(a, 2, OriginHead)
	tr.Add(Root, 3, OriginLookup)
	seen := 0
	tr.Walk(func(id int, n Node) {
		seen++
		if n.Origin == OriginRoot {
			t.Fatalf("walk visited the root (id %d)", id)
		}
	})
	if seen != tr.DraftNodes() {
		t.Fatalf("walk visited %d nodes, want %d", seen, tr.DraftNodes())
	}
}

func TestOriginStrings(t *testing.T) {
	for o, want := range map[Origin]string{
		OriginRoot: "root", OriginLinear: "linear", OriginHead: "head",
		OriginLookup: "lookup", Origin(200): "?",
	} {
		if got := o.String(); got != want {
			t.Errorf("Origin(%d).String() = %q, want %q", o, got, want)
		}
	}
}
