// Package spec decomposes speculative decoding into two orthogonal,
// composable pieces:
//
//   - a Drafter proposes candidate continuations for the positions after
//     the base model's own next token (Medusa heads, self-speculative
//     prompt lookup, or nothing at all for conventional decoding);
//   - a Verifier screens those proposals against the base model's
//     posterior (typical acceptance, greedy-exact) and finalizes the
//     accepted run (optionally truncating it at the last [FRAG] marker —
//     the paper's integrity check).
//
// A Strategy is one named (Drafter, Verifier) pairing. The paper's three
// decoding modes are canned pairings (see Named): NTP = NoDraft, Medusa
// = MedusaHeads × TypicalAcceptance, Ours = MedusaHeads ×
// Integrity(TypicalAcceptance). New strategies compose without touching
// the decoding loop in internal/core — PromptLookup is the first:
// a drafter that needs no trained heads at all.
//
// Drafters may also propose a branching, multi-candidate draft TREE
// (TreeDrafter; MedusaTree, LookupTree, HybridTree over the arena in
// internal/core/spec/tree): top-k candidates per position fan out, one
// verification sweep screens every branch, and the longest surviving
// root path is accepted — a rejection prunes a subtree instead of
// killing the step. Every verifier composes unchanged; linear
// strategies run as the width-1 special case of the same tree walk.
//
// Implementations must be stateless and safe for concurrent use: one
// Strategy value is shared by every decoder worker in a serving pool.
// Per-step state lives in the CandidateSource a Drafter returns.
package spec

import (
	"sort"
	"strings"

	"repro/internal/model"
)

// DraftCtx is the read-only per-step context handed to a Drafter: the
// generation session, the sequence so far, the tokens already accepted
// this step (base token first), and the decoding knobs proposals may
// honour. Drafters must not mutate any slice reachable from it.
type DraftCtx struct {
	// Gen is the generation session (prompt conditioning state).
	Gen *model.Gen
	// Seq is prompt + generated tokens, before this step's emissions.
	Seq []int
	// Prefix holds the tokens accepted so far this step — the sampled
	// base token, at minimum. Draft position i proposes the token at
	// sequence offset len(Seq)+len(Prefix)+i.
	Prefix []int
	// Forward is this step's forward pass. Heads is populated only when
	// the strategy's Drafter reports NeedsHeads. (Prompt metadata such
	// as the prompt length is available through Gen.)
	Forward model.Forward
	// TopK bounds candidates per draft position (Options.TopK).
	TopK int
}

// CandidateSource supplies the draft proposals of one decoding step.
type CandidateSource interface {
	// Candidates returns the proposals for draft position i (0-based),
	// best first. An empty slice ends drafting for the step; positions
	// are consulted strictly in order, each at most once.
	Candidates(i int) []int
}

// Drafter proposes candidate continuations after the base token.
type Drafter interface {
	// Name identifies the drafter in docs and diagnostics.
	Name() string
	// NeedsHeads reports whether the drafter consumes head
	// distributions: when false the decoder skips computing them —
	// a forward pass is base-only.
	NeedsHeads() bool
	// ExtraCostMS is the drafter's addition to the simulated cost of
	// one forward pass (the cost model of core: a backbone pass costs
	// cfg.StepLatencyMS; Medusa heads add numHeads·cfg.HeadLatencyMS;
	// self-speculative lookup adds nothing).
	ExtraCostMS(cfg model.Config, numHeads int) float64
	// BeginStep prepares this step's proposals. It may return nil to
	// propose nothing.
	BeginStep(dc DraftCtx) CandidateSource
}

// VerifyParams carries the acceptance hyper-parameters (Options.Epsilon
// and Options.Delta, already defaulted).
type VerifyParams struct {
	Epsilon, Delta float64
}

// Verifier is an acceptance policy: it screens draft candidates against
// the base model's verification distribution, and finalizes the
// accepted run once the step's screening is over.
type Verifier interface {
	// Name identifies the policy in docs and diagnostics.
	Name() string
	// Accept picks the accepted token among cands (tried best-first)
	// given the base model's posterior at the draft position, or
	// returns -1 to reject the position and end the step's drafting.
	Accept(ver model.Dist, cands []int, p VerifyParams) int
	// Finalize post-processes the whole accepted run of one step (base
	// token first, may be empty): it returns the tokens to keep and the
	// count it truncated. The identity policy returns (accepted, 0).
	Finalize(accepted []int) (kept []int, truncated int)
}

// Strategy is one named drafter/verifier pairing — everything the core
// decoding loop needs to know about how a decode speculates.
type Strategy struct {
	// Name is the canonical display name ("NTP", "Medusa", "Ours",
	// "PromptLookup") used in tables, metrics labels and the API.
	Name     string
	Drafter  Drafter
	Verifier Verifier
}

// WithoutIntegrity strips the [FRAG] integrity wrapper from the
// strategy's verifier, if present — the ablation switch behind
// core.Options.DisableIntegrity.
func WithoutIntegrity(s Strategy) Strategy {
	if w, ok := s.Verifier.(Integrity); ok {
		s.Verifier = w.Inner
	}
	return s
}

// NTP is conventional next-token-prediction decoding: no drafts, one
// token per forward pass. The verifier is never consulted.
func NTP() Strategy {
	return Strategy{Name: "NTP", Drafter: NoDraft{}, Verifier: AcceptNone{}}
}

// Medusa is vanilla Medusa speculative decoding: trained heads draft,
// typical acceptance screens, no fragment alignment.
func Medusa() Strategy {
	return Strategy{Name: "Medusa", Drafter: MedusaHeads{}, Verifier: TypicalAcceptance{}}
}

// Ours is the paper's method: Medusa heads screened by typical
// acceptance, with the accepted run truncated at the last [FRAG] marker
// so every decoding step ends on a complete syntactic fragment.
func Ours() Strategy {
	return Strategy{Name: "Ours", Drafter: MedusaHeads{}, Verifier: Integrity{Inner: TypicalAcceptance{}}}
}

// PromptLookupStrategy is self-speculative decoding without extra
// heads: n-gram matches against the prompt and the generated suffix
// draft the continuation, screened greedy-exact so greedy decodes stay
// lossless versus NTP. It works on any trained model — including plain
// NTP backbones that cannot run Medusa.
//
// At temperature > 0 only the non-drafted (base) positions sample;
// accepted draft positions carry the argmax, so sampled outputs skew
// greedier than NTP sampling at the same temperature. The strategy
// matrix reports its sampled rows under that caveat; a sampling-aware
// acceptance rule is a ROADMAP item.
func PromptLookupStrategy() Strategy {
	return Strategy{Name: "PromptLookup", Drafter: PromptLookup{}, Verifier: GreedyExact{}}
}

// registry is the single source of truth for named strategies: one
// entry per strategy with its canonical lookup name and any aliases.
// The display name (Strategy.Name) is accepted automatically, since
// lookups lowercase their input.
var registry = []struct {
	canonical string
	aliases   []string
	make      func() Strategy
}{
	{"ntp", nil, NTP},
	{"medusa", nil, Medusa},
	{"ours", nil, Ours},
	{"prompt-lookup", []string{"promptlookup", "pl"}, PromptLookupStrategy},
	{"medusa-tree", []string{"medusatree", "mt"}, MedusaTreeStrategy},
	{"lookup-tree", []string{"lookuptree", "lt"}, LookupTreeStrategy},
	{"ours-tree", []string{"ourstree", "tree"}, OursTreeStrategy},
	{"grammar-tree", []string{"grammartree", "gt", "grammar"}, GrammarTreeStrategy},
	{"grammar-lookup-tree", []string{"grammarlookuptree", "glt"}, GrammarLookupTreeStrategy},
}

// named maps normalized strategy names (and aliases) to constructors,
// derived from registry.
var named = func() map[string]func() Strategy {
	out := map[string]func() Strategy{}
	for _, e := range registry {
		out[e.canonical] = e.make
		out[strings.ToLower(e.make().Name)] = e.make
		for _, a := range e.aliases {
			out[a] = e.make
		}
	}
	return out
}()

// Named resolves a strategy by name, case-insensitively. Canonical
// names are listed by Names; display names ("Ours", "PromptLookup")
// and registered aliases ("pl") are accepted too.
func Named(name string) (Strategy, bool) {
	f, ok := named[strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		return Strategy{}, false
	}
	return f(), true
}

// Names returns the canonical strategy names, sorted — the vocabulary
// accepted by Named (aliases excluded). Derived from the registry, so
// new strategies appear here (and in error messages) automatically.
func Names() []string {
	out := make([]string, 0, len(registry))
	for _, e := range registry {
		out = append(out, e.canonical)
	}
	sort.Strings(out)
	return out
}

// Info describes one registered strategy — the discoverability record
// behind the CLIs' -list-strategies flag.
type Info struct {
	// Canonical is the registry lookup name ("lookup-tree").
	Canonical string
	// Display is the strategy's display name ("LookupTree"), also
	// accepted by Named.
	Display string
	// Aliases are the extra registered spellings ("lt").
	Aliases []string
	// Drafter and Verifier name the pairing's halves.
	Drafter, Verifier string
	// Tree reports a tree drafter (branching multi-candidate drafts).
	Tree bool
	// NeedsHeads reports whether the drafter consumes trained heads.
	NeedsHeads bool
}

// Registered returns every strategy's Info, sorted by canonical name.
func Registered() []Info {
	out := make([]Info, 0, len(registry))
	for _, e := range registry {
		s := e.make()
		_, isTree := s.Drafter.(TreeDrafter)
		out = append(out, Info{
			Canonical:  e.canonical,
			Display:    s.Name,
			Aliases:    append([]string(nil), e.aliases...),
			Drafter:    s.Drafter.Name(),
			Verifier:   s.Verifier.Name(),
			Tree:       isTree,
			NeedsHeads: s.Drafter.NeedsHeads(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Canonical < out[j].Canonical })
	return out
}
