package spec

import (
	"strings"

	"repro/internal/core/spec/grammar"
	"repro/internal/core/spec/tree"
	"repro/internal/model"
	"repro/internal/tokenizer"
	"repro/internal/verilog"
)

// DraftStats reports what grammar constraint did to one step's draft
// tree — the numerators behind the serve/cluster grammar metrics.
type DraftStats struct {
	// PrunedNodes counts draft tokens withheld because the syntax
	// oracle classified their path as a doomed continuation (the
	// verification budget they would have burned).
	PrunedNodes int
	// GrammarTokens counts draft nodes contributed by synthesized
	// construct chains (origin grammar, dedup-adjusted).
	GrammarTokens int
}

// StatsTreeDrafter is a TreeDrafter that also reports per-step draft
// statistics. The decoding loop prefers BuildTreeStats when available;
// BuildTree must behave identically with the stats discarded. Drafters
// stay stateless — stats are returned per call, never accumulated.
type StatsTreeDrafter interface {
	TreeDrafter
	BuildTreeStats(dc DraftCtx, budget int) (*tree.Tree, DraftStats)
}

// Grammar drafting deepens the lookup half beyond the plain hybrid's
// defaults: pruning doomed branches pays for deeper speculation, so
// each surviving match run may extend further and more matches branch.
const (
	grammarMaxSpan     = 16
	grammarMaxBranches = 6
)

// GrammarTree is the grammar-constrained hybrid drafter: prompt-lookup
// match runs and Medusa head fan-out, exactly like HybridTree, but
// every branch is screened by the incremental Verilog syntax oracle
// (internal/core/spec/grammar) before it spends verification budget —
// a path that cannot lex/parse as a continuation of the generated text
// is withheld — and synthesized whole-construct chains (sensitivity
// lists, begin/closer skeletons, port-list continuations) join the
// tree from the root. The freed budget funds a deeper lookup half
// (span 16, 6 branches vs the hybrid's 10/4).
//
// The oracle is a pure function of the decoded generated text, so the
// drafter is deterministic given (Seq, Prefix) — byte identity across
// cache modes and scheduler preemption holds exactly as for the other
// tree drafters. When the generated text cannot be classified (the
// model emitted unlexable bytes), the oracle disables itself and the
// drafter degrades to a plain deepened hybrid.
type GrammarTree struct {
	// Lookup configures the lookup half (zero values = the deepened
	// grammar defaults, not LookupTree's).
	Lookup LookupTree
}

// Name identifies the drafter.
func (GrammarTree) Name() string { return "grammar-tree" }

// NeedsHeads reports that head distributions are required (the Medusa
// half consumes them).
func (GrammarTree) NeedsHeads() bool { return true }

// ExtraCostMS charges the heads, like the hybrid; the oracle runs on
// the CPU beside the model and adds nothing to the simulated cost.
func (GrammarTree) ExtraCostMS(cfg model.Config, numHeads int) float64 {
	return float64(numHeads) * cfg.HeadLatencyMS
}

// BeginStep proposes nothing — tree drafters draft through BuildTree.
func (GrammarTree) BeginStep(DraftCtx) CandidateSource { return nil }

// BuildTree builds the step's tree, discarding the statistics.
func (g GrammarTree) BuildTree(dc DraftCtx, budget int) *tree.Tree {
	t, _ := g.BuildTreeStats(dc, budget)
	return t
}

// BuildTreeStats builds the grammar-constrained draft tree and reports
// what the oracle pruned and contributed.
func (g GrammarTree) BuildTreeStats(dc DraftCtx, budget int) (*tree.Tree, DraftStats) {
	return buildGrammarTree(dc, budget, g.lookup(), true)
}

func (g GrammarTree) lookup() LookupTree {
	lk := g.Lookup
	if lk.MaxSpan <= 0 {
		lk.MaxSpan = grammarMaxSpan
	}
	if lk.MaxBranches <= 0 {
		lk.MaxBranches = grammarMaxBranches
	}
	return lk
}

// Extend serves head depth's full top-k, like the hybrid — surviving
// branches get head-guided chain tails past their span.
func (GrammarTree) Extend(dc DraftCtx, depth int) []int {
	return MedusaTree{}.Extend(dc, depth)
}

// GrammarLookupTree is the grammar+lookup hybrid for headless models:
// the deepened lookup-tree drafter with oracle pruning and construct
// chains, screened greedy-exact — every accepted token is the base
// argmax, so greedy decodes stay byte-identical to NTP and to linear
// prompt lookup no matter what the oracle proposes or withholds.
type GrammarLookupTree struct {
	// Lookup configures the lookup half (zero values = the deepened
	// grammar defaults).
	Lookup LookupTree
}

// Name identifies the drafter.
func (GrammarLookupTree) Name() string { return "grammar-lookup-tree" }

// NeedsHeads reports that no head distributions are consumed.
func (GrammarLookupTree) NeedsHeads() bool { return false }

// ExtraCostMS adds nothing, like prompt lookup.
func (GrammarLookupTree) ExtraCostMS(model.Config, int) float64 { return 0 }

// BeginStep proposes nothing — tree drafters draft through BuildTree.
func (GrammarLookupTree) BeginStep(DraftCtx) CandidateSource { return nil }

// BuildTree builds the step's tree, discarding the statistics.
func (g GrammarLookupTree) BuildTree(dc DraftCtx, budget int) *tree.Tree {
	t, _ := g.BuildTreeStats(dc, budget)
	return t
}

// BuildTreeStats builds the pruned lookup tree plus construct chains.
func (g GrammarLookupTree) BuildTreeStats(dc DraftCtx, budget int) (*tree.Tree, DraftStats) {
	lk := g.Lookup
	if lk.MaxSpan <= 0 {
		lk.MaxSpan = grammarMaxSpan
	}
	if lk.MaxBranches <= 0 {
		lk.MaxBranches = grammarMaxBranches
	}
	return buildGrammarTree(dc, budget, lk, false)
}

// beginOracle decodes the generated region (everything after the
// prompt, plus the tokens already accepted this step) back into text
// and opens the syntax oracle over it. Returns nil when the context
// carries no session or tokenizer (pure-drafter unit tests).
func beginOracle(dc DraftCtx) *grammar.Step {
	if dc.Gen == nil {
		return nil
	}
	tok := dc.Gen.Tokenizer()
	if tok == nil {
		return nil
	}
	start := dc.Gen.PromptLen()
	if start > len(dc.Seq) {
		start = len(dc.Seq)
	}
	var sb strings.Builder
	for _, id := range dc.Seq[start:] {
		sb.WriteString(tokenText(tok, id))
	}
	for _, id := range dc.Prefix {
		sb.WriteString(tokenText(tok, id))
	}
	return grammar.Begin(sb.String())
}

// tokenText renders one token id's surface text; specials ([FRAG],
// <eos>, ...) render empty — they carry no bytes the oracle sees.
func tokenText(tok *tokenizer.Tokenizer, id int) string {
	if tokenizer.IsSpecial(id) {
		return ""
	}
	return tok.Token(id)
}

// buildGrammarTree lays oracle-screened lookup runs, synthesized
// construct chains, and (optionally) oracle-screened head fan-out into
// one budgeted tree. Insertion order mirrors HybridTree — lookup runs
// first, then constructs, then head levels — so shared paths dedup the
// same way.
func buildGrammarTree(dc DraftCtx, budget int, lk LookupTree, withHeads bool) (*tree.Tree, DraftStats) {
	var st DraftStats
	runs := lk.runs(dc)
	if len(runs) == 0 && !withHeads && dc.Gen == nil {
		return nil, st
	}
	oracle := beginOracle(dc)
	var tok *tokenizer.Tokenizer
	if dc.Gen != nil {
		tok = dc.Gen.Tokenizer()
	}
	t := tree.New(budget)

	// Lookup runs, each truncated at the first token whose path the
	// oracle condemns (the rest of the run could only be verified
	// against a continuation that cannot parse).
	for _, run := range runs {
		parent := tree.Root
		ext := ""
		for i, id := range run {
			if oracle != nil && tok != nil {
				next := ext + tokenText(tok, id)
				if oracle.Check(next) == verilog.PrefixInvalid {
					st.PrunedNodes += len(run) - i
					break
				}
				ext = next
			}
			node, _ := t.Add(parent, id, tree.OriginLookup)
			if node < 0 {
				return doneGrammarTree(t), st
			}
			parent = node
			if id == tokenizer.EosID {
				break
			}
		}
	}

	// Synthesized construct chains from the root — whole idiomatic
	// continuations the verifier screens like any other branch.
	if oracle != nil && tok != nil {
		for _, text := range oracle.Constructs() {
			parent := tree.Root
			for _, id := range tok.Encode(text) {
				node, added := t.Add(parent, id, tree.OriginGrammar)
				if node < 0 {
					return doneGrammarTree(t), st
				}
				if added {
					st.GrammarTokens++
				}
				parent = node
			}
		}
	}

	if withHeads {
		growHeadTreePruned(t, dc, oracle, tok, &st)
	}
	return doneGrammarTree(t), st
}

// doneGrammarTree normalizes an empty tree to nil (propose nothing).
func doneGrammarTree(t *tree.Tree) *tree.Tree {
	if t.DraftNodes() == 0 {
		return nil
	}
	return t
}

// growHeadTreePruned is growHeadTree with the oracle screening each
// candidate's path text before insertion: same levels, same top-k,
// same budget behaviour, minus branches that cannot parse.
func growHeadTreePruned(t *tree.Tree, dc DraftCtx, oracle *grammar.Step, tok *tokenizer.Tokenizer, st *DraftStats) {
	type extNode struct {
		id  int
		ext string
	}
	frontier := []extNode{{tree.Root, ""}}
	for d, head := range dc.Forward.Heads {
		if d >= staticHeadLevels {
			return
		}
		cands := head.TopK(dc.TopK)
		if len(cands) == 0 {
			return
		}
		var next []extNode
		for _, p := range frontier {
			if p.id != tree.Root && t.Node(p.id).Token == tokenizer.EosID {
				continue
			}
			for _, c := range cands {
				ext := p.ext
				if oracle != nil && tok != nil {
					ext += tokenText(tok, c)
					if oracle.Check(ext) == verilog.PrefixInvalid {
						st.PrunedNodes++
						continue
					}
				}
				id, added := t.Add(p.id, c, tree.OriginHead)
				if id < 0 {
					return // budget exhausted
				}
				if added {
					next = append(next, extNode{id, ext})
				}
			}
		}
		if len(next) == 0 {
			return
		}
		frontier = next
	}
}

// GrammarTreeStrategy is grammar-constrained tree drafting over the
// paper's method: the hybrid tree with syntax-doomed branches pruned,
// construct chains added, screened by typical acceptance with the
// [FRAG] integrity stop — directly comparable to ours-tree.
func GrammarTreeStrategy() Strategy {
	return Strategy{Name: "GrammarTree", Drafter: GrammarTree{}, Verifier: Integrity{Inner: TypicalAcceptance{}}}
}

// GrammarLookupTreeStrategy is the headless grammar hybrid: pruned
// deepened lookup plus construct chains, screened greedy-exact so
// greedy decodes stay lossless versus NTP.
func GrammarLookupTreeStrategy() Strategy {
	return Strategy{Name: "GrammarLookupTree", Drafter: GrammarLookupTree{}, Verifier: GreedyExact{}}
}
