// Package grammar is the incremental Verilog syntax oracle behind
// grammar-constrained drafting: per decoding step it classifies draft
// continuations of the generated-so-far text as viable or doomed
// (verilog.CheckPrefix semantics) without re-lexing the whole base on
// every probe, and synthesizes whole idiomatic constructs — sensitivity
// lists, always-block skeletons, end/endmodule closer chains, port-list
// continuations — conditioned on the partial parse context.
//
// A Step is created once per decoding step from the text decoded so
// far (prompt excluded). Begin lexes that base once and freezes the
// stable token stream: every complete token except a final one that
// touches the end of the text and could still grow ("alw" → "always").
// Check(ext) then re-lexes only the unstable tail plus the probe
// extension — O(|ext|) per probe instead of O(|base|+|ext|) — and runs
// the prefix-parsability check over stable tokens + tail tokens. The
// result is memoized per extension, since tree drafters probe the same
// path prefixes repeatedly.
//
// The oracle only ever prunes on PrefixInvalid, inheriting the prefix
// layer's leniency guarantee: a branch the model is entitled to take is
// never condemned. When the base itself cannot be classified (the model
// emitted something unlexable, or the stream is already doomed), the
// Step disables itself and Check passes everything — grammar drafting
// degrades to plain drafting rather than fighting the decode.
//
// A Step is NOT safe for concurrent use; it is per-step, per-request
// scratch state.
package grammar

import "repro/internal/verilog"

// Step is one decoding step's oracle state over a fixed base text.
type Step struct {
	base      string
	tailStart int // byte offset the unstable tail begins at
	stable    []verilog.Token
	enabled   bool
	ctx       Context
	memo      map[string]verilog.PrefixStatus
	scratch   []verilog.Token
}

// Begin builds the oracle for one decoding step. base is the generated
// text so far — everything after the prompt, including tokens already
// accepted this step — as decoded cleaned code.
func Begin(base string) *Step {
	s := &Step{base: base, memo: map[string]verilog.PrefixStatus{}}
	pl := verilog.LexPrefix(base)
	if pl.Err != nil {
		return s // unlexable beyond repair: disabled, passes everything
	}
	toks, ends := pl.Toks, pl.Ends
	if !pl.Pending {
		// A final complete token touching the end of the base may still
		// grow when the extension's first bytes arrive — keep it in the
		// re-lexed tail, not the frozen stream.
		if n := len(toks); n > 0 && ends[n-1] == len(base) && verilog.ExtendableKind(toks[n-1].Kind) {
			toks, ends = toks[:n-1], ends[:n-1]
		}
	}
	s.stable = toks
	if n := len(ends); n > 0 {
		// Resume from the last stable token's end, not len(base): a
		// trailing comment or unfinished token re-lexes with the probe.
		s.tailStart = ends[n-1]
	}
	if verilog.CheckTokenPrefix(s.stable, true) == verilog.PrefixInvalid {
		return s // base already doomed: disabled
	}
	s.enabled = true
	// Constructs condition on every complete token — including a final
	// extendable one the Check seam keeps out of the frozen stream (a
	// base ending exactly at "always" should still draft its
	// sensitivity list; Check re-validates each proposal through the
	// seam anyway).
	s.ctx = scanContext(pl.Toks)
	return s
}

// Enabled reports whether the oracle classified its base as a viable
// prefix. When false, Check passes everything and Constructs proposes
// nothing.
func (s *Step) Enabled() bool { return s.enabled }

// Base returns the base text the step was created over.
func (s *Step) Base() string { return s.base }

// Context returns the partial-parse context scanned from the stable
// token stream (nesting, ports, clock/reset nets, header position).
func (s *Step) Context() Context { return s.ctx }

// Check classifies base+ext as a prefix of a parsable source file,
// re-lexing only the unstable tail plus ext. Results are memoized per
// extension. A disabled Step reports every extension Valid.
func (s *Step) Check(ext string) verilog.PrefixStatus {
	if !s.enabled {
		return verilog.PrefixValid
	}
	if st, ok := s.memo[ext]; ok {
		return st
	}
	st := s.check(ext)
	s.memo[ext] = st
	return st
}

func (s *Step) check(ext string) verilog.PrefixStatus {
	tail := s.base[s.tailStart:] + ext
	pl := verilog.LexPrefix(tail)
	if pl.Err != nil {
		return verilog.PrefixInvalid
	}
	toks := append(s.scratch[:0], s.stable...)
	toks = append(toks, pl.Toks...)
	s.scratch = toks
	st := verilog.CheckTokenPrefix(toks, pl.Pending)
	if st == verilog.PrefixInvalid && !pl.Pending {
		// Mirror CheckPrefix's seam rule: drop an extendable final token
		// that touches the end before condemning the stream.
		if n := len(pl.Toks); n > 0 && pl.Ends[n-1] == len(tail) && verilog.ExtendableKind(pl.Toks[n-1].Kind) {
			st = verilog.CheckTokenPrefix(toks[:len(toks)-1], true)
		}
	}
	return st
}
