package grammar

import (
	"strings"

	"repro/internal/verilog"
)

// frame is one open construct on the nesting stack.
type frame struct {
	// kw is the opening keyword: module, begin, case/casez/casex, fork,
	// function, task, generate.
	kw string
	// indent is the leading-whitespace width of the line the construct
	// opened on — the column its closer conventionally sits at.
	indent int
}

// Context is the partial-parse context scanned from a stable token
// stream: enough structure to condition construct drafting on, without
// a real incremental AST.
type Context struct {
	// Ports are the declared port names, in declaration order.
	Ports []string
	// Clock and Reset are the first input ports whose names look like a
	// clock ("clk"/"clock") or a reset ("rst"/"reset"); empty when none.
	Clock, Reset string
	// InHeader reports that the scan ended inside the parenthesized
	// module header (port or parameter list, before the closing ';').
	InHeader bool
	// LastKind/LastText describe the final stable token (TokEOF zero
	// value when the stream is empty).
	LastKind verilog.TokenKind
	LastText string

	stack          []frame
	lastClosedCtrl string // "if"/"for"/"while"/"repeat"/"@" when the last token closed that group's '('
}

// Depth returns the number of open constructs.
func (c Context) Depth() int { return len(c.stack) }

// opens maps opening keywords to their closers.
var opens = map[string]string{
	"module":   "endmodule",
	"begin":    "end",
	"case":     "endcase",
	"casez":    "endcase",
	"casex":    "endcase",
	"fork":     "join",
	"function": "endfunction",
	"task":     "endtask",
	"generate": "endgenerate",
}

// closes maps closing keywords to the opener they pop.
var closes = map[string]string{
	"endmodule":   "module",
	"end":         "begin",
	"endcase":     "case",
	"join":        "fork",
	"endfunction": "function",
	"endtask":     "task",
	"endgenerate": "generate",
}

// ctrlKeywords are the statement keywords whose parenthesized group is
// conventionally followed by "begin".
var ctrlKeywords = map[string]bool{"if": true, "for": true, "while": true, "repeat": true}

// scanContext runs one linear pass over the stable token stream,
// tracking the construct nesting stack, the module header position,
// declared ports (with clock/reset detection), and whether the final
// token closed a control group. It is deliberately tolerant: tokens
// that do not fit the expected shape are skipped, never faulted — the
// prefix check, not this scan, decides viability.
func scanContext(toks []verilog.Token) Context {
	var c Context
	var (
		parenDepth   int
		bracketDepth int
		armCtrl      string // ctrl keyword (or "@") awaiting its '('
		ctrl         []struct {
			kw    string
			depth int
		}
		pendingDir  string // "input"/"output"/"inout" while collecting port names
		awaitName   bool   // just saw "module", expecting its name
		headerArmed bool   // inside "module name ... ;" — parens here are the header
		curLine     = -1
		lineIndent  int
	)
	for _, t := range toks {
		if t.Line != curLine {
			curLine, lineIndent = t.Line, t.Col-1
		}
		justClosed := ""
		newArm := "" // the arm survives exactly one token: kw then '('
		switch {
		case t.Kind == verilog.TokKeyword:
			switch {
			case t.Text == "module":
				awaitName = true
				c.stack = append(c.stack, frame{kw: "module", indent: lineIndent})
			case opens[t.Text] != "":
				c.stack = append(c.stack, frame{kw: t.Text, indent: lineIndent})
			case closes[t.Text] != "":
				if n := len(c.stack); n > 0 && closeMatches(c.stack[n-1].kw, t.Text) {
					c.stack = c.stack[:n-1]
				}
			case t.Text == "input" || t.Text == "output" || t.Text == "inout":
				pendingDir = t.Text
			case ctrlKeywords[t.Text]:
				newArm = t.Text
			}
		case t.Kind == verilog.TokIdent:
			if awaitName {
				awaitName = false
				headerArmed = true
			} else if pendingDir != "" && bracketDepth == 0 {
				c.Ports = append(c.Ports, t.Text)
				low := strings.ToLower(t.Text)
				if pendingDir == "input" {
					if c.Clock == "" && (strings.Contains(low, "clk") || strings.Contains(low, "clock")) {
						c.Clock = t.Text
					}
					if c.Reset == "" && (strings.Contains(low, "rst") || strings.Contains(low, "reset")) {
						c.Reset = t.Text
					}
				}
			}
		case t.Kind == verilog.TokPunct:
			switch t.Text {
			case "(":
				parenDepth++
				if armCtrl != "" {
					ctrl = append(ctrl, struct {
						kw    string
						depth int
					}{armCtrl, parenDepth})
				}
			case ")":
				if n := len(ctrl); n > 0 && ctrl[n-1].depth == parenDepth {
					justClosed = ctrl[n-1].kw
					ctrl = ctrl[:n-1]
				}
				if parenDepth > 0 {
					parenDepth--
				}
				if headerArmed && parenDepth == 0 {
					pendingDir = ""
				}
			case "[":
				bracketDepth++
			case "]":
				if bracketDepth > 0 {
					bracketDepth--
				}
			case ";":
				pendingDir = ""
				headerArmed = false
			case "@":
				newArm = "@"
			}
		}
		armCtrl = newArm
		c.lastClosedCtrl = justClosed
		c.LastKind, c.LastText = t.Kind, t.Text
	}
	c.InHeader = headerArmed && parenDepth > 0
	return c
}

// closeMatches reports whether closer pops an open kw frame (all three
// case variants share endcase).
func closeMatches(kw, closer string) bool { return opens[kw] == closer }

// maxCloseIndent caps the synthesized closer indentation.
const maxCloseIndent = 16

// Constructs synthesizes whole idiomatic continuations of the base
// text, conditioned on the scanned context: sensitivity-list skeletons
// after "always", "begin" after a control group, port-direction and
// header-close continuations inside the module header, and closer
// chains (end/endcase/.../endmodule, indentation matched to the
// opening lines) at statement boundaries. Every candidate is validated
// through Check before it is returned, so a proposal can never be a
// doomed continuation. A disabled Step proposes nothing.
func (s *Step) Constructs() []string {
	if !s.enabled {
		return nil
	}
	c := &s.ctx
	var out []string
	add := func(text string) {
		if s.Check(text) != verilog.PrefixInvalid {
			out = append(out, text)
		}
	}
	switch {
	case c.LastKind == verilog.TokKeyword && c.LastText == "always":
		if c.Clock != "" {
			if c.Reset != "" {
				add(" @(posedge " + c.Clock + " or posedge " + c.Reset + ") begin")
			}
			add(" @(posedge " + c.Clock + ") begin")
		}
		add(" @(*) begin")
	case c.lastClosedCtrl != "":
		add(" begin")
	case c.InHeader && c.LastText == "," && c.LastKind == verilog.TokPunct:
		add(" input ")
		add(" output ")
	case c.InHeader && c.LastKind == verilog.TokIdent:
		add(");")
	case atBoundary(c) && len(c.stack) > 0:
		top := c.stack[len(c.stack)-1]
		add("\n" + indentOf(top) + opens[top.kw])
		if len(c.stack) > 1 {
			var sb strings.Builder
			for i := len(c.stack) - 1; i >= 0; i-- {
				sb.WriteString("\n")
				sb.WriteString(indentOf(c.stack[i]))
				sb.WriteString(opens[c.stack[i].kw])
			}
			add(sb.String())
		}
	}
	return out
}

// atBoundary reports that the final token ends a statement or block —
// the places a closer chain can legally begin.
func atBoundary(c *Context) bool {
	if c.LastKind == verilog.TokPunct && c.LastText == ";" {
		return true
	}
	return c.LastKind == verilog.TokKeyword && (c.LastText == "end" || c.LastText == "endcase")
}

func indentOf(f frame) string {
	n := f.indent
	if n < 0 {
		n = 0
	}
	if n > maxCloseIndent {
		n = maxCloseIndent
	}
	return strings.Repeat(" ", n)
}
