package grammar

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/verilog"
)

// TestCheckMatchesCheckPrefix pins the incremental oracle to the
// reference implementation: for cuts of real bench sources and a set
// of probe extensions (viable, doomed, mid-token), Step.Check must
// agree with verilog.CheckPrefix over the concatenated text.
func TestCheckMatchesCheckPrefix(t *testing.T) {
	probes := []string{
		"", " ", "\n", ";", ";;", " begin", " end", "\nendmodule",
		" alw", "ays", " @(", "posedge", " 4'b", "1010", " \"str", "\" ,",
		" input x", ")", "(", " assign y = a;", " /* c */", " // c",
	}
	sources := 0
	for _, p := range bench.All() {
		src := p.Ref
		if verilog.Check(src) != nil {
			continue
		}
		sources++
		if sources > 8 {
			break // agreement is text-local; a handful of designs covers the shapes
		}
		for cut := 0; cut <= len(src); cut += 7 {
			s := Begin(src[:cut])
			for _, ext := range probes {
				got := s.Check(ext)
				want := verilog.CheckPrefix(src[:cut] + ext)
				if s.Enabled() && got != want {
					t.Fatalf("%s cut %d ext %q: Step.Check=%v CheckPrefix=%v\nbase tail: %q",
						p.ID, cut, ext, got, want, tail(src[:cut], 40))
				}
				if !s.Enabled() && got != verilog.PrefixValid {
					t.Fatalf("%s cut %d: disabled oracle pruned %q", p.ID, cut, ext)
				}
			}
			// The true continuation must never be prunable.
			if rest := src[cut:]; len(rest) > 0 {
				if n := 24; len(rest) > n {
					rest = rest[:n]
				}
				if s.Check(rest) == verilog.PrefixInvalid {
					t.Fatalf("%s cut %d: oracle pruned the source's own continuation %q", p.ID, cut, rest)
				}
			}
		}
	}
	if sources == 0 {
		t.Fatal("no parsable bench sources")
	}
}

// TestBeginDisables pins the safety valve: an unlexable or doomed base
// disables the oracle, which then passes everything and proposes
// nothing.
func TestBeginDisables(t *testing.T) {
	for _, base := range []string{
		"module m; wire w = 4'q",  // hard lexing error
		"module m;; ",             // doomed token stream
		"wire w; ",                // no module can follow
		"module m; assign = a; x", // interior parse error
	} {
		s := Begin(base)
		if s.Enabled() {
			t.Errorf("Begin(%q): oracle enabled on a doomed base", base)
		}
		if st := s.Check(" anything"); st != verilog.PrefixValid {
			t.Errorf("Begin(%q): disabled Check = %v, want valid pass-through", base, st)
		}
		if cs := s.Constructs(); cs != nil {
			t.Errorf("Begin(%q): disabled Constructs = %q, want none", base, cs)
		}
	}
	for _, base := range []string{"", "module", "module m; alw", "module m; /* note"} {
		if s := Begin(base); !s.Enabled() {
			t.Errorf("Begin(%q): oracle disabled on a viable base", base)
		}
	}
}

func TestScanContext(t *testing.T) {
	base := "module counter(input clk, input rst_n, output reg [3:0] q);\n" +
		"    always @(posedge clk) begin\n        if (rst_n) q <= 4'd0;\n"
	s := Begin(base)
	if !s.Enabled() {
		t.Fatal("oracle disabled on a viable base")
	}
	c := s.Context()
	if c.Clock != "clk" || c.Reset != "rst_n" {
		t.Errorf("clock/reset = %q/%q, want clk/rst_n", c.Clock, c.Reset)
	}
	if want := []string{"clk", "rst_n", "q"}; strings.Join(c.Ports, ",") != strings.Join(want, ",") {
		t.Errorf("ports = %v, want %v", c.Ports, want)
	}
	if c.Depth() != 2 { // module + begin
		t.Errorf("depth = %d, want 2", c.Depth())
	}
	if c.InHeader {
		t.Error("InHeader after the header closed")
	}

	h := Begin("module m(input a, ")
	if hc := h.Context(); !hc.InHeader {
		t.Error("InHeader not detected inside the port list")
	}

	// The range expression's identifiers must not be captured as ports.
	pl := verilog.LexPrefix("module m(input [WIDTH-1:0] data_in, ")
	if rc := scanContext(pl.Toks); strings.Join(rc.Ports, ",") != "data_in" {
		t.Errorf("ports = %v, want [data_in]", rc.Ports)
	}
}

// TestConstructs exercises the synthesis rules; every proposal must
// also survive the full reference prefix check over base+construct.
func TestConstructs(t *testing.T) {
	cases := []struct {
		name string
		base string
		want string // substring some construct must contain; "" = none required
	}{
		{"always-clocked", "module m(input clk, output reg q);\n    always", "@(posedge clk) begin"},
		{"always-comb", "module m(input a, output reg y);\n    always", "@(*) begin"},
		{"ctrl-begin", "module m(input a, output reg y);\n    always @(*) begin\n        if (a)", " begin"},
		{"header-comma", "module m(input a,", "input"},
		{"header-close", "module m(input a, output y", ");"},
		{"close-one", "module m(input clk, output reg q);\n    always @(posedge clk) begin\n        q <= 1'b1;", "end"},
		{"close-all", "module m(input clk, output reg q);\n    always @(posedge clk) begin\n        q <= 1'b1;", "endmodule"},
	}
	for _, tc := range cases {
		s := Begin(tc.base)
		if !s.Enabled() {
			t.Fatalf("%s: oracle disabled", tc.name)
		}
		cs := s.Constructs()
		found := tc.want == ""
		for _, text := range cs {
			if verilog.CheckPrefix(tc.base+text) == verilog.PrefixInvalid {
				t.Errorf("%s: construct %q is a doomed continuation", tc.name, text)
			}
			if strings.Contains(text, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no construct contains %q in %q", tc.name, tc.want, cs)
		}
	}

	// The close-all chain must close every open frame with matched
	// indentation: "\n    end\nendmodule" for the standard corpus style.
	base := "module m(input clk, output reg q);\n    always @(posedge clk) begin\n        q <= 1'b1;"
	var chain string
	for _, text := range Begin(base).Constructs() {
		if strings.Contains(text, "endmodule") {
			chain = text
		}
	}
	if want := "\n    end\nendmodule"; chain != want {
		t.Errorf("close-all chain = %q, want %q", chain, want)
	}
	if verilog.CheckPrefix(base+chain) != verilog.PrefixComplete {
		t.Errorf("close-all chain does not complete the module")
	}
}

func tail(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return "…" + s[len(s)-n:]
}
