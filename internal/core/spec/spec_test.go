package spec

import (
	"testing"

	"repro/internal/model"
	"repro/internal/tokenizer"
)

func dist(pairs map[int]float64) model.Dist { return model.Dist{P: pairs} }

func TestIntegrityTruncate(t *testing.T) {
	F := tokenizer.FragID
	cases := []struct {
		name     string
		in, want []int
	}{
		{"empty run", []int{}, []int{}},
		{"lone base token, no FRAG", []int{42}, []int{42}},
		{"no FRAG keeps base only", []int{42, 43, 44}, []int{42}},
		{"FRAG first", []int{F, 42, 43}, []int{F}},
		{"keep through last FRAG", []int{42, F, 43, F, 44}, []int{42, F, 43, F}},
		{"run ending exactly on FRAG", []int{42, 43, F}, []int{42, 43, F}},
	}
	for _, c := range cases {
		got := IntegrityTruncate(append([]int(nil), c.in...))
		if len(got) != len(c.want) {
			t.Errorf("%s: truncate(%v) = %v, want %v", c.name, c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%s: truncate(%v) = %v, want %v", c.name, c.in, got, c.want)
				break
			}
		}
	}
}

func TestIntegrityFinalizeAccounting(t *testing.T) {
	F := tokenizer.FragID
	v := Integrity{Inner: TypicalAcceptance{}}
	kept, truncated := v.Finalize([]int{42, F, 43, 44})
	if len(kept) != 2 || truncated != 2 {
		t.Fatalf("kept=%v truncated=%d, want 2 kept / 2 truncated", kept, truncated)
	}
	// Empty accepted run (every draft rejected AND no base token — the
	// degenerate floor): nothing kept, nothing counted.
	kept, truncated = v.Finalize(nil)
	if len(kept) != 0 || truncated != 0 {
		t.Fatalf("empty run: kept=%v truncated=%d", kept, truncated)
	}
	// Run ending exactly on [FRAG] loses nothing.
	kept, truncated = v.Finalize([]int{42, 43, F})
	if len(kept) != 3 || truncated != 0 {
		t.Fatalf("FRAG-terminal run: kept=%v truncated=%d", kept, truncated)
	}
	if v.Name() != "typical+frag" {
		t.Fatalf("Integrity name = %q", v.Name())
	}
}

func TestTypicalAcceptanceEdges(t *testing.T) {
	v := TypicalAcceptance{}
	p := VerifyParams{Epsilon: 0.3, Delta: 1.2}

	// Near-deterministic posterior: entropy ~ 0, threshold = ε = 0.3;
	// the dominant token passes, the rare one fails.
	sharp := dist(map[int]float64{7: 0.95, 8: 0.05})
	if got := v.Accept(sharp, []int{7}, p); got != 7 {
		t.Fatalf("dominant candidate rejected: %d", got)
	}
	if got := v.Accept(sharp, []int{8}, p); got != -1 {
		t.Fatalf("rare candidate accepted: %d", got)
	}
	// Best-first: the first passing candidate wins even if a later one
	// is more probable.
	if got := v.Accept(sharp, []int{8, 7}, p); got != 7 {
		t.Fatalf("want first passing candidate 7, got %d", got)
	}
	// All candidates rejected → -1 (ends the step's drafting).
	if got := v.Accept(sharp, []int{8, 9, 10}, p); got != -1 {
		t.Fatalf("all-rejected drafts: got %d, want -1", got)
	}
	// No candidates at all → -1.
	if got := v.Accept(sharp, nil, p); got != -1 {
		t.Fatalf("empty candidates: got %d, want -1", got)
	}
	// High entropy engages the δ·exp(−H) branch. A uniform posterior
	// has p = exp(−H) exactly, so with δ > 1 every candidate fails (the
	// calibration note on Options.Delta: δ=1.2 refuses to rubber-stamp
	// flat contexts)…
	u := map[int]float64{}
	for i := 0; i < 64; i++ {
		u[i] = 1.0 / 64
	}
	if got := v.Accept(dist(u), []int{5}, p); got != -1 {
		t.Fatalf("uniform posterior rubber-stamped candidate %d under δ>1", got)
	}
	// …while δ < 1 lowers the entropy threshold below uniform mass and
	// accepts.
	if got := v.Accept(dist(u), []int{5}, VerifyParams{Epsilon: 0.9, Delta: 0.5}); got != 5 {
		t.Fatalf("high-entropy candidate rejected under δ<1: %d", got)
	}
}

func TestGreedyExact(t *testing.T) {
	v := GreedyExact{}
	p := VerifyParams{Epsilon: 0.3, Delta: 1.2}
	d := dist(map[int]float64{3: 0.5, 4: 0.3, 5: 0.2})
	if got := v.Accept(d, []int{3}, p); got != 3 {
		t.Fatalf("argmax candidate rejected: %d", got)
	}
	if got := v.Accept(d, []int{4, 5}, p); got != -1 {
		t.Fatalf("non-argmax accepted: %d", got)
	}
	if got := v.Accept(d, []int{5, 3}, p); got != 3 {
		t.Fatalf("argmax among candidates not found: %d", got)
	}
	// Empty posterior (cold context) rejects everything.
	if got := v.Accept(dist(map[int]float64{}), []int{3}, p); got != -1 {
		t.Fatalf("empty posterior accepted: %d", got)
	}
	kept, truncated := v.Finalize([]int{1, 2, 3})
	if len(kept) != 3 || truncated != 0 {
		t.Fatalf("GreedyExact.Finalize mutated the run: %v/%d", kept, truncated)
	}
}

func TestPromptLookupRun(t *testing.T) {
	// seq: a b c d | a b c — suffix (a b c) re-occurs at the start, so
	// the draft is the continuation (d) plus whatever follows.
	seq := []int{10, 11, 12, 13, 10, 11, 12}
	run := lookupRun(seq, 3, 10)
	if len(run) != 4 || run[0] != 13 {
		t.Fatalf("run = %v, want continuation starting at 13", run)
	}
	// MaxSpan caps the proposal.
	run = lookupRun(seq, 3, 2)
	if len(run) != 2 || run[0] != 13 || run[1] != 10 {
		t.Fatalf("capped run = %v, want [13 10]", run)
	}
	// No re-occurrence → no draft.
	if run := lookupRun([]int{1, 2, 3, 4, 5, 6}, 3, 10); run != nil {
		t.Fatalf("unmatched sequence drafted %v", run)
	}
	// Too short for the minimum match → no draft.
	if run := lookupRun([]int{1, 2, 1, 2}, 3, 10); run != nil {
		t.Fatalf("short sequence drafted %v", run)
	}
	// Most recent occurrence is preferred: with the pattern at both the
	// start and the middle, the draft copies what followed the LATER one.
	seq = []int{10, 11, 12, 77, 5, 10, 11, 12, 88, 6, 10, 11, 12}
	run = lookupRun(seq, 3, 1)
	if len(run) != 1 || run[0] != 88 {
		t.Fatalf("run = %v, want the most recent continuation [88]", run)
	}
	// A historical <bos> ends the proposal.
	seq = []int{10, 11, 12, tokenizer.BosID, 9, 9, 9, 9, 10, 11, 12}
	if run := lookupRun(seq, 3, 10); run != nil {
		t.Fatalf("draft crossed <bos>: %v", run)
	}
}

func TestPromptLookupBeginStepUsesPrefix(t *testing.T) {
	// The just-sampled base token participates in the suffix: Seq ends
	// with (a b), Prefix holds (c); suffix (a b c) matches history.
	pl := PromptLookup{}
	dc := DraftCtx{
		Seq:    []int{10, 11, 12, 13, 10, 11},
		Prefix: []int{12},
	}
	src := pl.BeginStep(dc)
	if src == nil {
		t.Fatal("no draft despite a suffix match through the prefix")
	}
	if cands := src.Candidates(0); len(cands) != 1 || cands[0] != 13 {
		t.Fatalf("candidates(0) = %v, want [13]", cands)
	}
	// Positions past the run are empty.
	for i := 0; ; i++ {
		if len(src.Candidates(i)) == 0 {
			break
		}
		if i > 16 {
			t.Fatal("candidate run unbounded")
		}
	}
}

func TestNamedRegistry(t *testing.T) {
	for _, name := range []string{"ntp", "NTP", "medusa", "Ours", "prompt-lookup", "PromptLookup", "pl"} {
		if _, ok := Named(name); !ok {
			t.Errorf("Named(%q) not found", name)
		}
	}
	if _, ok := Named("warp"); ok {
		t.Error("Named accepted an unknown strategy")
	}
	s, _ := Named("ours")
	if s.Name != "Ours" || !s.Drafter.NeedsHeads() {
		t.Fatalf("ours resolved to %+v", s)
	}
	if _, isWrapped := s.Verifier.(Integrity); !isWrapped {
		t.Fatal("ours verifier not integrity-wrapped")
	}
	plain := WithoutIntegrity(s)
	if _, isWrapped := plain.Verifier.(Integrity); isWrapped {
		t.Fatal("WithoutIntegrity left the wrapper on")
	}
	// WithoutIntegrity on an unwrapped strategy is a no-op.
	ntp, _ := Named("ntp")
	if got := WithoutIntegrity(ntp); got.Verifier != ntp.Verifier {
		t.Fatal("WithoutIntegrity mutated an unwrapped strategy")
	}
	if len(Names()) != 9 {
		t.Fatalf("Names() = %v", Names())
	}
	pl, _ := Named("prompt-lookup")
	if pl.Drafter.NeedsHeads() {
		t.Fatal("prompt-lookup should not need heads")
	}
	if pl.Drafter.ExtraCostMS(model.CodeLlamaSim(), 10) != 0 {
		t.Fatal("prompt-lookup drafting must be free in the cost model")
	}
}

func TestNoDraftAndAcceptNone(t *testing.T) {
	if src := (NoDraft{}).BeginStep(DraftCtx{}); src != nil {
		t.Fatal("NoDraft proposed candidates")
	}
	if got := (AcceptNone{}).Accept(dist(map[int]float64{1: 1}), []int{1}, VerifyParams{}); got != -1 {
		t.Fatalf("AcceptNone accepted %d", got)
	}
	// A heads drafter on a headless model proposes nothing (the NTP
	// backbone fast path).
	if src := (MedusaHeads{}).BeginStep(DraftCtx{TopK: 3}); src != nil {
		t.Fatal("MedusaHeads drafted without heads")
	}
}

func TestMedusaHeadsSource(t *testing.T) {
	fw := model.Forward{Heads: []model.Dist{
		dist(map[int]float64{1: 0.6, 2: 0.4}),
		dist(map[int]float64{3: 1.0}),
	}}
	src := (MedusaHeads{}).BeginStep(DraftCtx{Forward: fw, TopK: 2})
	if got := src.Candidates(0); len(got) != 2 || got[0] != 1 {
		t.Fatalf("head 0 candidates = %v", got)
	}
	if got := src.Candidates(1); len(got) != 1 || got[0] != 3 {
		t.Fatalf("head 1 candidates = %v", got)
	}
	if got := src.Candidates(2); got != nil {
		t.Fatalf("past-last head proposed %v", got)
	}
}
