package spec

import (
	"math"

	"repro/internal/model"
	"repro/internal/tokenizer"
)

// AcceptNone rejects every draft — the verifier of the NTP strategy,
// where drafting never happens and screening is vacuous.
type AcceptNone struct{}

// Name identifies the policy.
func (AcceptNone) Name() string { return "accept-none" }

// Accept rejects unconditionally.
func (AcceptNone) Accept(model.Dist, []int, VerifyParams) int { return -1 }

// Finalize keeps the run unchanged.
func (AcceptNone) Finalize(accepted []int) ([]int, int) { return accepted, 0 }

// TypicalAcceptance screens candidates with the paper's eq. 1: a
// candidate is accepted when its probability under the base model's
// posterior exceeds min(ε, δ·exp(−H)). Candidates are tried best-first
// and the first pass wins — Medusa's "longest accepted prefix among all
// candidates".
type TypicalAcceptance struct{}

// Name identifies the policy.
func (TypicalAcceptance) Name() string { return "typical" }

// Accept returns the first candidate passing the typical-acceptance
// threshold, or -1 when every candidate fails.
func (TypicalAcceptance) Accept(ver model.Dist, cands []int, p VerifyParams) int {
	threshold := math.Min(p.Epsilon, p.Delta*math.Exp(-ver.Entropy()))
	for _, c := range cands {
		if ver.Prob(c) > threshold {
			return c
		}
	}
	return -1
}

// Finalize keeps the run unchanged.
func (TypicalAcceptance) Finalize(accepted []int) ([]int, int) { return accepted, 0 }

// GreedyExact accepts a candidate only when it is exactly the base
// model's argmax at the draft position — classic lossless speculative
// verification: a greedy decode through this policy emits the same
// token sequence conventional greedy decoding would, only in fewer
// forward passes.
type GreedyExact struct{}

// Name identifies the policy.
func (GreedyExact) Name() string { return "greedy-exact" }

// Accept returns the candidate matching the verification argmax, or -1.
func (GreedyExact) Accept(ver model.Dist, cands []int, _ VerifyParams) int {
	best := ver.Argmax()
	if best < 0 {
		return -1
	}
	for _, c := range cands {
		if c == best {
			return c
		}
	}
	return -1
}

// Finalize keeps the run unchanged.
func (GreedyExact) Finalize(accepted []int) ([]int, int) { return accepted, 0 }

// Integrity wraps an acceptance policy with the paper's §III-B
// integrity check: screening delegates to Inner, and Finalize truncates
// the accepted run at the last [FRAG] marker so every decoding step
// leaves the sequence on a complete syntactic fragment (or extends by
// the minimal lossless amount — the base token alone).
type Integrity struct {
	Inner Verifier
}

// Name identifies the policy as its inner policy plus the check.
func (v Integrity) Name() string { return v.Inner.Name() + "+frag" }

// Accept delegates screening to the wrapped policy.
func (v Integrity) Accept(ver model.Dist, cands []int, p VerifyParams) int {
	return v.Inner.Accept(ver, cands, p)
}

// Finalize truncates at the last [FRAG] marker.
func (v Integrity) Finalize(accepted []int) ([]int, int) {
	kept := IntegrityTruncate(accepted)
	return kept, len(accepted) - len(kept)
}

// IntegrityTruncate keeps the accepted run through its last [FRAG]
// marker; with no marker in the run only the base token survives. An
// empty run stays empty.
func IntegrityTruncate(accepted []int) []int {
	if len(accepted) == 0 {
		return accepted
	}
	last := -1
	for i, id := range accepted {
		if id == tokenizer.FragID {
			last = i
		}
	}
	if last == -1 {
		return accepted[:1]
	}
	return accepted[:last+1]
}
