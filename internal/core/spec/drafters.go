package spec

import (
	"repro/internal/model"
	"repro/internal/tokenizer"
)

// NoDraft proposes nothing: the strategy decodes one token per forward
// pass (conventional NTP decoding).
type NoDraft struct{}

// Name identifies the drafter.
func (NoDraft) Name() string { return "no-draft" }

// NeedsHeads reports that no head distributions are consumed.
func (NoDraft) NeedsHeads() bool { return false }

// ExtraCostMS adds nothing to the backbone pass.
func (NoDraft) ExtraCostMS(model.Config, int) float64 { return 0 }

// BeginStep proposes nothing.
func (NoDraft) BeginStep(DraftCtx) CandidateSource { return nil }

// MedusaHeads drafts from the model's trained decoding heads: draft
// position i proposes the top-k candidates of head i, exactly Medusa's
// candidate tree restricted to the longest accepted prefix.
type MedusaHeads struct{}

// Name identifies the drafter.
func (MedusaHeads) Name() string { return "medusa-heads" }

// NeedsHeads reports that head distributions are required.
func (MedusaHeads) NeedsHeads() bool { return true }

// ExtraCostMS charges every head's forward cost, the Medusa latency
// model of core's cost model.
func (MedusaHeads) ExtraCostMS(cfg model.Config, numHeads int) float64 {
	return float64(numHeads) * cfg.HeadLatencyMS
}

// BeginStep exposes the step's head distributions as candidate
// columns; a model with no trained heads (an NTP backbone asked to
// decode medusa-style) proposes nothing at all.
func (MedusaHeads) BeginStep(dc DraftCtx) CandidateSource {
	if len(dc.Forward.Heads) == 0 {
		return nil
	}
	return headSource{heads: dc.Forward.Heads, topK: dc.TopK}
}

// headSource serves top-k candidates per head position.
type headSource struct {
	heads []model.Dist
	topK  int
}

// Candidates returns head i's top-k proposals.
func (h headSource) Candidates(i int) []int {
	if i >= len(h.heads) {
		return nil
	}
	return h.heads[i].TopK(h.topK)
}

// Prompt-lookup defaults: matches shorter than defaultMinMatch fire on
// purely structural patterns (a lone "input" keyword) and derail
// drafting into noise; spans longer than defaultMaxSpan stop paying off
// because the verifier rejects the tail anyway.
const (
	defaultMinMatch  = 3
	defaultMaxSpan   = 10
	maxLookupSuffix  = 8
	minLookupHistory = 2
)

// PromptLookup is a self-speculative drafter (prompt-lookup / n-gram
// suffix matching, per "Speculative Decoding: Exploiting Speculative
// Execution for Accelerating Seq2seq Generation"): the current suffix —
// including the just-sampled base token — is matched against the prompt
// plus everything generated so far, and the tokens that followed the
// most recent previous occurrence are proposed as the draft. RTL is
// extremely template-heavy (port lists, sensitivity lists, case arms),
// so lookup hits are frequent; no trained heads are needed, and the
// drafting cost is zero forward passes.
type PromptLookup struct {
	// MinMatch is the shortest suffix worth matching (default 3).
	MinMatch int
	// MaxSpan caps draft tokens proposed per step (default 10).
	MaxSpan int
}

// Name identifies the drafter.
func (PromptLookup) Name() string { return "prompt-lookup" }

// NeedsHeads reports that no head distributions are consumed.
func (PromptLookup) NeedsHeads() bool { return false }

// ExtraCostMS adds nothing: an n-gram scan is free next to a forward
// pass, which is the whole appeal of self-speculative drafting.
func (PromptLookup) ExtraCostMS(model.Config, int) float64 { return 0 }

// BeginStep matches the current suffix against the full sequence and
// proposes the continuation of its most recent previous occurrence.
func (p PromptLookup) BeginStep(dc DraftCtx) CandidateSource {
	minMatch := p.MinMatch
	if minMatch <= 0 {
		minMatch = defaultMinMatch
	}
	maxSpan := p.MaxSpan
	if maxSpan <= 0 {
		maxSpan = defaultMaxSpan
	}
	seq := make([]int, 0, len(dc.Seq)+len(dc.Prefix))
	seq = append(seq, dc.Seq...)
	seq = append(seq, dc.Prefix...)
	run := lookupRun(seq, minMatch, maxSpan)
	if len(run) == 0 {
		return nil
	}
	return runSource{run: run}
}

// lookupRun finds the longest suffix of seq (capped at maxLookupSuffix)
// that re-occurs earlier in seq, preferring the most recent occurrence,
// and returns up to maxSpan historical tokens that followed it.
func lookupRun(seq []int, minMatch, maxSpan int) []int {
	n := len(seq)
	if n < minMatch+minLookupHistory {
		return nil
	}
	maxK := maxLookupSuffix
	if maxK > n-1 {
		maxK = n - 1
	}
	for k := maxK; k >= minMatch; k-- {
		suffix := seq[n-k:]
		// j is the match end; j <= n-2 keeps at least one continuation
		// token of history, and scanning downward prefers recency.
		for j := n - 2; j >= k-1; j-- {
			match := true
			for x := 0; x < k; x++ {
				if seq[j-k+1+x] != suffix[x] {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			end := j + 1 + maxSpan
			if end > n {
				end = n
			}
			run := make([]int, 0, end-j-1)
			for _, id := range seq[j+1 : end] {
				// Never re-propose sequence machinery: a historical
				// <bos> marks a boundary lookahead must not cross.
				if id == tokenizer.BosID {
					break
				}
				run = append(run, id)
			}
			if len(run) == 0 {
				return nil
			}
			return run
		}
	}
	return nil
}

// runSource serves one precomputed draft run, a single candidate per
// position.
type runSource struct {
	run []int
}

// Candidates returns the run's token at position i.
func (r runSource) Candidates(i int) []int {
	if i >= len(r.run) {
		return nil
	}
	return r.run[i : i+1]
}
