package adapt

import (
	"strings"

	"repro/internal/verilog"
)

// Features are the cheap per-request signals routing classifies on.
// They must be computable in microseconds at submission time: a token
// count the engine already has, a read-only prefix-trie probe, and one
// lexer pass over the prompt text.
type Features struct {
	// PromptTokens is the prompt's canonical token count.
	PromptTokens int
	// CachedTokens is the deepest prefix-trie hit for the prompt (0
	// when nothing is cached): a deep hit means session preparation is
	// nearly free and the decode's cost is all drafting/verification.
	CachedTokens int
	// MaxNewTokens is the requested generation length (0 = model
	// default) — long decodes hold batch slots longer, which routing
	// may learn to price differently.
	MaxNewTokens int
	// Construct is the detected Verilog construct class (see Classify).
	Construct string
}

// Class is the discrete prompt class routing learns over. Buckets are
// deliberately coarse: a class must see repeated traffic for its
// scores to mean anything.
type Class struct {
	// Size buckets PromptTokens: 0 short (<32), 1 medium (<96), 2 long.
	Size int
	// Long marks a generation request past 64 tokens.
	Long bool
	// Cached buckets trie reuse: 0 cold, 1 partial (<half the prompt),
	// 2 mostly cached.
	Cached int
	// Construct is Features.Construct verbatim.
	Construct string
}

// ClassOf buckets features into a Class.
func ClassOf(f Features) Class {
	cl := Class{Construct: f.Construct}
	switch {
	case f.PromptTokens >= 96:
		cl.Size = 2
	case f.PromptTokens >= 32:
		cl.Size = 1
	}
	cl.Long = f.MaxNewTokens >= 64
	if f.CachedTokens > 0 && f.PromptTokens > 0 {
		if 2*f.CachedTokens >= f.PromptTokens {
			cl.Cached = 2
		} else {
			cl.Cached = 1
		}
	}
	return cl
}

// constructClass maps a lexed keyword or identifier to the construct
// family it suggests. Keyword entries come straight from the Verilog
// lexer's keyword table; the identifier entries catch the English
// prompt phrasings the eval corpus uses ("build an FSM", "4-to-1
// mux").
var constructClass = map[string]string{
	// Sequential logic: clocked processes and state elements.
	"always": "seq", "posedge": "seq", "negedge": "seq", "reg": "seq",
	"clk": "seq", "clock": "seq", "flop": "seq", "counter": "seq",
	"register": "seq", "shift": "seq",
	// State machines.
	"case": "fsm", "casez": "fsm", "casex": "fsm", "state": "fsm",
	"fsm": "fsm", "states": "fsm", "machine": "fsm", "moore": "fsm",
	"mealy": "fsm",
	// Combinational logic.
	"assign": "comb", "wire": "comb", "mux": "comb", "adder": "comb",
	"decoder": "comb", "encoder": "comb", "xor": "comb", "nand": "comb",
	"nor": "comb", "multiplexer": "comb", "alu": "comb", "parity": "comb",
	// Memories and buffering.
	"memory": "mem", "ram": "mem", "rom": "mem", "fifo": "mem",
	"buffer": "mem", "queue": "mem",
}

// constructOrder fixes the tie-break order so classification is
// deterministic regardless of map iteration.
var constructOrder = []string{"seq", "fsm", "comb", "mem"}

// Classify detects the dominant Verilog construct a prompt asks for by
// running the existing Verilog lexer over it and voting lexed keywords
// and identifiers into construct families. Prompts are mostly English,
// so the lexer will usually stop at the first character it cannot
// tokenize — everything scanned up to that point still votes, and a
// prompt with no recognizable votes classifies as "generic".
func Classify(prompt string) string {
	counts := map[string]int{}
	vote := func(word string) {
		if fam, ok := constructClass[strings.ToLower(word)]; ok {
			counts[fam]++
		}
	}
	lx := verilog.NewLexer(prompt)
	for {
		t, err := lx.Next()
		if err != nil || t.Kind == verilog.TokEOF {
			break
		}
		if t.Kind == verilog.TokKeyword || t.Kind == verilog.TokIdent {
			vote(t.Text)
		}
	}
	if len(counts) == 0 {
		// The lexer choked before reaching anything recognizable
		// (punctuation-heavy English): fall back to whitespace words so
		// classification still sees something.
		for _, w := range strings.Fields(prompt) {
			vote(strings.Trim(w, ".,;:!?()\"'"))
		}
	}
	best, bestN := "generic", 0
	for _, fam := range constructOrder {
		if counts[fam] > bestN {
			best, bestN = fam, counts[fam]
		}
	}
	return best
}
