package adapt

import (
	"testing"
)

func mustNew(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestNewRejectsUnknownCandidates(t *testing.T) {
	if _, err := New(Config{Candidates: []string{"NoSuchStrategy"}}); err == nil {
		t.Fatal("New accepted an unknown candidate strategy")
	}
	if _, err := New(Config{NoDraftStrategy: "bogus"}); err == nil {
		t.Fatal("New accepted an unknown no-draft strategy")
	}
}

// TestBudgetSizing: the sized budget tracks the measured accept-depth
// quantile times the surviving width, clamped — deep wide acceptance
// earns a big tree, shallow acceptance a small one.
func TestBudgetSizing(t *testing.T) {
	c := mustNew(t, Config{MinBudget: 8, MaxBudget: 256, DepthQuantile: 0.9})
	// Shallow: every step accepts 2 tokens, trees propose 6 nodes/step.
	for i := 0; i < 50; i++ {
		c.Observe(Outcome{
			Strategy:        "OursTree",
			AcceptedPerStep: []int{2, 2, 2, 2},
			TreeNodes:       24, TreeBudget: 96 * 4,
			CleanTokens: 8, SimulatedMS: 4,
		})
	}
	d := c.Decide(Features{}, Request{Strategy: "OursTree", Explicit: true})
	if !d.Resized || d.TreeBudget <= 0 {
		t.Fatalf("expected a sized budget, got %+v", d)
	}
	// Quantile depth 2, width 6/2 = 3 → budget ≈ 6, clamped to 8.
	if d.TreeBudget > 16 {
		t.Fatalf("shallow acceptance sized budget %d, want small (<=16)", d.TreeBudget)
	}
	shallow := d.TreeBudget

	// Deep: steps accept 8, trees propose 40 nodes/step.
	c2 := mustNew(t, Config{MinBudget: 8, MaxBudget: 256, DepthQuantile: 0.9})
	for i := 0; i < 50; i++ {
		c2.Observe(Outcome{
			Strategy:        "OursTree",
			AcceptedPerStep: []int{8, 8, 8},
			TreeNodes:       120, TreeBudget: 96 * 3,
			CleanTokens: 24, SimulatedMS: 4,
		})
	}
	d2 := c2.Decide(Features{}, Request{Strategy: "OursTree", Explicit: true})
	if d2.TreeBudget <= shallow {
		t.Fatalf("deep acceptance budget %d not larger than shallow %d", d2.TreeBudget, shallow)
	}
}

// TestBudgetRespectsExplicitRequest: a request naming its own budget is
// never resized, and explicit strategies are never rerouted.
func TestBudgetRespectsExplicitRequest(t *testing.T) {
	c := mustNew(t, Config{})
	d := c.Decide(Features{}, Request{Strategy: "OursTree", Explicit: true, TreeBudget: 40})
	if d.Resized || d.TreeBudget != 0 {
		t.Fatalf("explicit budget was resized: %+v", d)
	}
	if d.Rerouted || d.Strategy != "OursTree" {
		t.Fatalf("explicit strategy was rerouted: %+v", d)
	}
}

// TestLoadLadderHysteresis: sustained high load steps the rung up
// (after RaisePatience sweeps), sustained low load steps it back down
// (after the much longer LowerPatience), and load inside the
// hysteresis band moves nothing.
func TestLoadLadderHysteresis(t *testing.T) {
	c := mustNew(t, Config{
		LoadAlpha: 1, // undamped: the test drives the raw signal
		OccHigh:   0.8, OccLow: 0.4,
		RaisePatience: 3, LowerPatience: 10,
	})
	if got := c.CurrentLevel(); got != LevelTree {
		t.Fatalf("initial level = %v, want tree", got)
	}
	// Two high sweeps: not enough patience.
	c.ObserveSweep(1.0, 0)
	c.ObserveSweep(1.0, 0)
	if got := c.CurrentLevel(); got != LevelTree {
		t.Fatalf("level moved after %d sweeps (patience 3): %v", 2, got)
	}
	c.ObserveSweep(1.0, 0)
	if got := c.CurrentLevel(); got != LevelLinear {
		t.Fatalf("level after 3 high sweeps = %v, want linear", got)
	}
	// Mid-band load holds the rung indefinitely.
	for i := 0; i < 50; i++ {
		c.ObserveSweep(0.6, 0)
	}
	if got := c.CurrentLevel(); got != LevelLinear {
		t.Fatalf("mid-band load moved the rung: %v", got)
	}
	// Low load needs LowerPatience consecutive sweeps.
	for i := 0; i < 9; i++ {
		c.ObserveSweep(0.1, 0)
	}
	if got := c.CurrentLevel(); got != LevelLinear {
		t.Fatalf("level dropped before patience: %v", got)
	}
	c.ObserveSweep(0.1, 0)
	if got := c.CurrentLevel(); got != LevelTree {
		t.Fatalf("level after sustained low load = %v, want tree", got)
	}
	if s := c.Snapshot(); s.LevelChanges != 2 {
		t.Fatalf("LevelChanges = %d, want 2", s.LevelChanges)
	}
}

// TestLadderEscalatesToNoDraft: saturation walks all the way to
// NoDraft and routing then refuses to draft at all.
func TestLadderEscalatesToNoDraft(t *testing.T) {
	c := mustNew(t, Config{LoadAlpha: 1, RaisePatience: 1})
	for i := 0; i < 4; i++ {
		c.ObserveSweep(1.0, 1.0)
	}
	if got := c.CurrentLevel(); got != LevelNoDraft {
		t.Fatalf("level under saturation = %v, want nodraft", got)
	}
	d := c.Decide(Features{}, Request{Strategy: "OursTree"})
	if d.Strategy != "NTP" || !d.Rerouted || !d.Downgraded {
		t.Fatalf("saturated routing = %+v, want NTP reroute + downgrade", d)
	}
}

// TestLinearLevelSubstitutesCounterparts: at LevelLinear, tree
// candidates route to their linear counterparts.
func TestLinearLevelSubstitutesCounterparts(t *testing.T) {
	c := mustNew(t, Config{
		Candidates: []string{"OursTree", "PromptLookup", "NTP"},
		LoadAlpha:  1, RaisePatience: 1,
	})
	c.ObserveSweep(1.0, 0) // tree → linear
	d := c.Decide(Features{}, Request{Strategy: "OursTree"})
	if d.Strategy != "Ours" {
		t.Fatalf("linear-level route = %q, want Ours (OursTree's counterpart)", d.Strategy)
	}
	if d.TreeBudget != 0 {
		t.Fatalf("linear strategy got a tree budget: %+v", d)
	}
}

// TestGrammarStrategiesClassified: the grammar strategies carry the
// routing metadata the controller's arms rely on — both classify as
// tree drafters, and each degrades to the right linear counterpart at
// LevelLinear (grammar constraint has no linear form, so the hybrid
// falls back to Ours and the lookup hybrid to PromptLookup).
func TestGrammarStrategiesClassified(t *testing.T) {
	for _, name := range []string{"GrammarTree", "GrammarLookupTree"} {
		if !isTree(name) {
			t.Errorf("%s not classified as a tree strategy", name)
		}
	}
	wants := map[string]string{"GrammarTree": "Ours", "GrammarLookupTree": "PromptLookup"}
	for treeName, want := range wants {
		c := mustNew(t, Config{
			Candidates: []string{treeName, want, "NTP"},
			LoadAlpha:  1, RaisePatience: 1,
		})
		c.ObserveSweep(1.0, 0) // tree → linear
		d := c.Decide(Features{}, Request{Strategy: treeName})
		if d.Strategy != want {
			t.Errorf("linear-level route for %s = %q, want %q", treeName, d.Strategy, want)
		}
		if d.TreeBudget != 0 {
			t.Errorf("%s counterpart got a tree budget: %+v", treeName, d)
		}
	}
}

// TestRoutingLearnsBestStrategy: with per-class scores observed,
// routing picks the historically best arm for that class, and a class
// with different history routes differently.
func TestRoutingLearnsBestStrategy(t *testing.T) {
	c := mustNew(t, Config{
		Candidates:   []string{"OursTree", "Ours", "PromptLookup", "NTP"},
		ExploreEvery: -1, // pure exploitation for the assertion
	})
	seq := Class{Construct: "seq"}
	comb := Class{Construct: "comb"}
	for i := 0; i < 20; i++ {
		c.Observe(Outcome{Strategy: "OursTree", Class: seq, AcceptedPerStep: []int{6}, TreeNodes: 20, CleanTokens: 6, SimulatedMS: 1})
		c.Observe(Outcome{Strategy: "PromptLookup", Class: seq, AcceptedPerStep: []int{2}, CleanTokens: 2, SimulatedMS: 1})
		c.Observe(Outcome{Strategy: "OursTree", Class: comb, AcceptedPerStep: []int{2}, TreeNodes: 20, CleanTokens: 2, SimulatedMS: 2})
		c.Observe(Outcome{Strategy: "PromptLookup", Class: comb, AcceptedPerStep: []int{5}, CleanTokens: 5, SimulatedMS: 1})
	}
	dSeq := c.Decide(Features{Construct: "seq"}, Request{Strategy: "NTP"})
	if dSeq.Strategy != "OursTree" {
		t.Fatalf("seq class routed to %q, want OursTree", dSeq.Strategy)
	}
	dComb := c.Decide(Features{Construct: "comb"}, Request{Strategy: "NTP"})
	if dComb.Strategy != "PromptLookup" {
		t.Fatalf("comb class routed to %q, want PromptLookup", dComb.Strategy)
	}
}

// TestExplorationIsDeterministicAndBounded: every Nth decision per
// class explores the least-observed arm; replaying the same sequence
// reproduces the same decisions.
func TestExplorationIsDeterministicAndBounded(t *testing.T) {
	run := func() ([]string, int) {
		c := mustNew(t, Config{
			Candidates:   []string{"OursTree", "Ours", "NTP"},
			ExploreEvery: 4,
		})
		var picks []string
		explored := 0
		for i := 0; i < 40; i++ {
			d := c.Decide(Features{Construct: "seq"}, Request{Strategy: "NTP"})
			picks = append(picks, d.Strategy)
			if d.Explored {
				explored++
			}
			c.Observe(Outcome{Strategy: d.Strategy, Class: Class{Construct: "seq"}, AcceptedPerStep: []int{3}, CleanTokens: 3, SimulatedMS: 1})
		}
		return picks, explored
	}
	a, na := run()
	b, nb := run()
	if na != nb {
		t.Fatalf("exploration count differs across identical replays: %d vs %d", na, nb)
	}
	// 3 cold-start forced tries (one per arm, none observed yet) plus
	// every 4th of the 40 decisions on the scheduled cadence.
	if na != 13 {
		t.Fatalf("explored %d of 40 decisions with ExploreEvery=4, want 13", na)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identical replays: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestSnapshotCounters(t *testing.T) {
	c := mustNew(t, Config{ExploreEvery: -1})
	c.Observe(Outcome{Strategy: "OursTree", AcceptedPerStep: []int{4, 4}, TreeNodes: 30, CleanTokens: 8, SimulatedMS: 2})
	c.Decide(Features{}, Request{Strategy: "NTP"})
	c.Decide(Features{}, Request{Strategy: "OursTree", Explicit: true})
	s := c.Snapshot()
	if s.Decisions != 2 {
		t.Fatalf("Decisions = %d, want 2", s.Decisions)
	}
	if s.Reroutes != 1 {
		t.Fatalf("Reroutes = %d, want 1 (the non-explicit NTP request)", s.Reroutes)
	}
	if s.BudgetResizes != 2 {
		t.Fatalf("BudgetResizes = %d, want 2 (both decodes run a tree with unset budget)", s.BudgetResizes)
	}
	sl, ok := s.PerStrategy["OursTree"]
	if !ok || sl.Observations != 1 || sl.Budget <= 0 {
		t.Fatalf("PerStrategy[OursTree] = %+v ok=%v, want 1 observation and a sized budget", sl, ok)
	}
}

func TestQueueWaitEscalates(t *testing.T) {
	c := mustNew(t, Config{LoadAlpha: 1, RaisePatience: 2, QueueWaitHighMS: 100})
	c.ObserveQueueWait(5000)
	c.ObserveSweep(0.1, 0)
	c.ObserveSweep(0.1, 0)
	if got := c.CurrentLevel(); got != LevelLinear {
		t.Fatalf("level with huge queue wait = %v, want linear", got)
	}
}

// TestColdStartTriesEveryArmBeforeExploiting: the first arm to report
// a score must not win every exploit comparison against arms that
// merely have no data yet. With a (poor) NTP observation already in
// the class, routing must still measure each remaining candidate once
// before settling — and then settle on the best, not the first.
func TestColdStartTriesEveryArmBeforeExploiting(t *testing.T) {
	c := mustNew(t, Config{
		Candidates:   []string{"OursTree", "Ours", "PromptLookup", "NTP"},
		ExploreEvery: 1000, // scheduled cadence effectively off
	})
	cl := Class{Construct: "seq"}
	c.Observe(Outcome{Strategy: "NTP", Class: cl, AcceptedPerStep: []int{1}, CleanTokens: 8, SimulatedMS: 10})
	scores := map[string]float64{"OursTree": 4, "Ours": 4, "PromptLookup": 1.5}
	var tried []string
	for i := 0; i < 6; i++ {
		d := c.Decide(Features{Construct: "seq"}, Request{Strategy: "NTP"})
		tried = append(tried, d.Strategy)
		ms := 1.0
		if s := scores[d.Strategy]; s > 0 {
			ms = 8 / s
		}
		c.Observe(Outcome{Strategy: d.Strategy, Class: cl, AcceptedPerStep: []int{3}, CleanTokens: 8, SimulatedMS: ms})
	}
	// Decisions 1-3 are the forced tries in preference order; after
	// that every arm has data and exploitation picks the best score
	// (OursTree and Ours tie at 4; preference order breaks the tie).
	want := []string{"OursTree", "Ours", "PromptLookup", "OursTree", "OursTree", "OursTree"}
	for i := range want {
		if tried[i] != want[i] {
			t.Fatalf("decision sequence %v, want %v", tried, want)
		}
	}
}

// TestLadderHoldsWhileBacklogDrains: after load forces a step down to
// the linear rung, the backlog built under the tree rung keeps queue
// pressure and queue waits high for the whole drain — but the queue is
// SHRINKING, so the ladder must hold at linear instead of overshooting
// to nodraft (where it would then be too slow to ever drain).
func TestLadderHoldsWhileBacklogDrains(t *testing.T) {
	c := mustNew(t, Config{LoadAlpha: 0.5, RaisePatience: 2, LowerPatience: 100})
	// Overload: queue grows sweep over sweep until the ladder steps to
	// linear.
	qf := 0.0
	for i := 0; i < 20 && c.CurrentLevel() == LevelTree; i++ {
		qf += 0.05
		c.ObserveSweep(0.2, qf)
	}
	if got := c.CurrentLevel(); got != LevelLinear {
		t.Fatalf("growing queue left level at %v, want linear", got)
	}
	// Drain: pressure still far above the high watermark, waits rising
	// (deepest-queued requests admitted last), but the queue shrinks
	// every sweep.
	for i := 0; i < 60 && qf > 0.05; i++ {
		qf -= 0.01
		c.ObserveQueueWait(1000)
		c.ObserveSweep(0.2, qf)
		if got := c.CurrentLevel(); got != LevelLinear {
			t.Fatalf("ladder moved to %v during the drain (sweep %d, qf=%.2f)", got, i, qf)
		}
	}
}

func TestClassify(t *testing.T) {
	cases := []struct{ prompt, want string }{
		{"Design a module with an always block triggered on posedge clk", "seq"},
		{"Implement a Moore FSM with four states using a case statement", "fsm"},
		{"Build a 4-to-1 mux with assign statements over wire inputs", "comb"},
		{"A synchronous FIFO buffer with configurable depth", "mem"},
		{"Write something nice", "generic"},
		{"", "generic"},
	}
	for _, tc := range cases {
		if got := Classify(tc.prompt); got != tc.want {
			t.Errorf("Classify(%q) = %q, want %q", tc.prompt, got, tc.want)
		}
	}
}

func TestClassOf(t *testing.T) {
	cl := ClassOf(Features{PromptTokens: 100, CachedTokens: 80, MaxNewTokens: 96, Construct: "fsm"})
	want := Class{Size: 2, Long: true, Cached: 2, Construct: "fsm"}
	if cl != want {
		t.Fatalf("ClassOf = %+v, want %+v", cl, want)
	}
	cold := ClassOf(Features{PromptTokens: 10})
	if cold != (Class{Construct: ""}) {
		t.Fatalf("cold ClassOf = %+v, want zero-ish", cold)
	}
}

// TestEscalationRefusedWhenCheaperRungScoresWorse: the ladder's
// premise — that a cheaper rung clears more useful tokens per unit
// cost under load — is measured, not assumed. Once the no-draft
// strategy has reported a strictly worse score than the linear rung's
// best arm, sustained pressure must NOT push the ladder onto it:
// degrading cannot relieve a genuine capacity shortage.
func TestEscalationRefusedWhenCheaperRungScoresWorse(t *testing.T) {
	c := mustNew(t, Config{LoadAlpha: 1, RaisePatience: 1})
	c.Observe(Outcome{Strategy: "Ours", CleanTokens: 100, SimulatedMS: 100}) // 1.0 tok/ms
	c.Observe(Outcome{Strategy: "NTP", CleanTokens: 10, SimulatedMS: 1000})  // 0.01 tok/ms
	for i := 0; i < 20; i++ {
		c.ObserveSweep(1.0, 0)
	}
	// tree → linear is allowed (linear still routes Ours, the best
	// arm); linear → nodraft is refused for as long as the pressure
	// lasts, because NTP measurably underperforms.
	if got := c.CurrentLevel(); got != LevelLinear {
		t.Fatalf("level under saturation with a slow no-draft arm = %v, want linear", got)
	}
}

// TestFailedDegradeUndone: a rung entered blind (no scores yet) that
// then measures strictly worse than the rung below must be undone
// while pressure persists. Without the undo the slow rung is an
// absorbing state: its own slowness keeps occupancy and queue
// pressure high, so the low watermark that normally walks the ladder
// back down is never reached.
func TestFailedDegradeUndone(t *testing.T) {
	c := mustNew(t, Config{LoadAlpha: 1, RaisePatience: 1})
	// Saturation before any measurement: the ladder walks to nodraft
	// on the designed cost ordering.
	for i := 0; i < 4; i++ {
		c.ObserveSweep(1.0, 1.0)
	}
	if got := c.CurrentLevel(); got != LevelNoDraft {
		t.Fatalf("unmeasured saturation = %v, want nodraft", got)
	}
	// Measurements land: the no-draft arm is far slower than linear.
	c.Observe(Outcome{Strategy: "NTP", CleanTokens: 10, SimulatedMS: 1000})
	c.Observe(Outcome{Strategy: "Ours", CleanTokens: 100, SimulatedMS: 100})
	for i := 0; i < 4; i++ {
		c.ObserveSweep(1.0, 1.0)
	}
	if got := c.CurrentLevel(); got != LevelLinear {
		t.Fatalf("level after the degrade measured worse = %v, want linear (undone)", got)
	}
	// It settles there: nodraft stays refused, and tree measures no
	// better than linear (both route Ours), so there is nothing to
	// undo further.
	for i := 0; i < 20; i++ {
		c.ObserveSweep(1.0, 1.0)
	}
	if got := c.CurrentLevel(); got != LevelLinear {
		t.Fatalf("level drifted to %v under sustained pressure, want linear", got)
	}
}

// TestColdStartHoldsDefaultWhileMeasuring: after the one forced try
// per arm, decisions hold the request's own default until EVERY arm
// has reported — exploiting a half-measured ranking would stampede
// traffic onto whichever arm happened to finish first.
func TestColdStartHoldsDefaultWhileMeasuring(t *testing.T) {
	c := mustNew(t, Config{ExploreEvery: 1000})
	cl := ClassOf(Features{})
	for _, want := range []string{"OursTree", "Ours", "PromptLookup", "NTP"} {
		d := c.Decide(Features{}, Request{Strategy: "Ours"})
		if d.Strategy != want || !d.Explored {
			t.Fatalf("forced try = %+v, want explored %s", d, want)
		}
	}
	// All four measurements in flight: hold the default.
	for i := 0; i < 5; i++ {
		d := c.Decide(Features{}, Request{Strategy: "Ours"})
		if d.Strategy != "Ours" || d.Rerouted || d.Explored {
			t.Fatalf("jury-out decision = %+v, want the request default held", d)
		}
	}
	// Three of four reported — still out.
	c.Observe(Outcome{Strategy: "NTP", Class: cl, CleanTokens: 10, SimulatedMS: 1000})
	c.Observe(Outcome{Strategy: "PromptLookup", Class: cl, CleanTokens: 10, SimulatedMS: 500})
	c.Observe(Outcome{Strategy: "OursTree", Class: cl, AcceptedPerStep: []int{4}, TreeNodes: 12, CleanTokens: 90, SimulatedMS: 100})
	if d := c.Decide(Features{}, Request{Strategy: "Ours"}); d.Strategy != "Ours" || d.Rerouted {
		t.Fatalf("decision with one arm unmeasured = %+v, want default held", d)
	}
	// Last report lands; exploitation picks the best score.
	c.Observe(Outcome{Strategy: "Ours", Class: cl, CleanTokens: 50, SimulatedMS: 100})
	d := c.Decide(Features{}, Request{Strategy: "Ours"})
	if d.Strategy != "OursTree" || !d.Rerouted {
		t.Fatalf("post-measurement decision = %+v, want OursTree exploit", d)
	}
}

// TestExplorationRespectsLoadAndClass: scheduled exploration only
// spends capacity where there is slack to spend — never for
// long-generation classes (a probe's cost is its decode length) and
// never while the load ladder is elevated.
func TestExplorationRespectsLoadAndClass(t *testing.T) {
	c := mustNew(t, Config{ExploreEvery: 2, LoadAlpha: 1, RaisePatience: 1})
	short := Features{MaxNewTokens: 10}
	long := Features{MaxNewTokens: 100}
	for _, s := range []string{"OursTree", "Ours", "PromptLookup", "NTP"} {
		c.Observe(Outcome{Strategy: s, Class: ClassOf(short), CleanTokens: 10, SimulatedMS: 100})
		c.Observe(Outcome{Strategy: s, Class: ClassOf(long), CleanTokens: 10, SimulatedMS: 100})
	}
	for i := 0; i < 8; i++ {
		if d := c.Decide(long, Request{Strategy: "Ours"}); d.Explored {
			t.Fatalf("long-generation class explored (decision %d): %+v", i, d)
		}
	}
	sawExplore := false
	for i := 0; i < 8; i++ {
		if c.Decide(short, Request{Strategy: "Ours"}).Explored {
			sawExplore = true
		}
	}
	if !sawExplore {
		t.Fatal("short class at tree level never explored (ExploreEvery 2)")
	}
	c.ObserveSweep(1.0, 0) // tree → linear
	for i := 0; i < 8; i++ {
		if d := c.Decide(short, Request{Strategy: "Ours"}); d.Explored {
			t.Fatalf("elevated ladder still explored (decision %d): %+v", i, d)
		}
	}
}
