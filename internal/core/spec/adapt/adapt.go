// Package adapt is the load-aware speculation controller: the feedback
// loop that closes ROADMAP item 1. The serving engine exports every
// signal speculative decoding needs to tune itself — per-strategy
// accept-depth histograms, draft-tree budget utilization, batch
// occupancy, queue wait — and this package turns them into decisions:
//
//   - budget sizing: each strategy's draft-tree node budget is derived
//     from an EWMA of its measured accept-depth distribution
//     (budget ≈ depth quantile × surviving width, clamped), so trees
//     are as deep as acceptance actually reaches and no deeper;
//   - load degradation: as scheduler occupancy and queue wait rise,
//     drafting steps down tree → linear → NoDraft and back up, with
//     hysteresis (split thresholds + patience) so the ladder does not
//     flap — the answer to "Speculative Decoding: Performance or
//     Illusion?", where draft compute competes with real work at high
//     batch occupancy;
//   - strategy routing: requests that named no strategy are routed by
//     prompt class (token-count bucket, prefix-trie hit depth,
//     detected Verilog construct) to the historically best drafter by
//     accepted-tokens-per-draft-cost, with a deterministic round-robin
//     exploration slot so cold arms keep getting measured.
//
// The controller is advisory and lossless by construction: it only
// chooses WHICH configuration a request decodes under — it never
// touches requests that named an explicit strategy, never overrides an
// explicitly requested tree budget, and decoding stays deterministic
// per (prompt, seed, strategy, budget) regardless of what it picks.
// The serving layer applies decisions before cache canonicalization,
// so adapted requests share cache entries and single-flights exactly
// like explicitly-spelled ones.
//
// All methods are safe for concurrent use; every decision is a pure
// function of the observation history, so a run that replays the same
// observations in the same order makes the same decisions (the load-
// sweep gate in internal/experiments depends on this).
package adapt

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/core/spec"
)

// DepthBuckets sizes the accept-depth distribution the controller
// smooths: bucket i holds steps that emitted i+1 tokens, the last
// bucket everything at or past DepthBuckets. It matches the serving
// layer's histogram resolution (serve.AcceptDepthBuckets).
const DepthBuckets = 16

// Level is a rung on the load-degradation ladder.
type Level int

const (
	// LevelTree allows full tree drafting (low load: latency rules).
	LevelTree Level = iota
	// LevelLinear restricts routing to linear drafters and halves
	// sized budgets for explicit tree requests (rising load: draft
	// slots are getting expensive).
	LevelLinear
	// LevelNoDraft routes to plain next-token prediction and floors
	// budgets (saturation: every verification slot should carry a real
	// token).
	LevelNoDraft
)

// String names the rung for metrics and logs.
func (l Level) String() string {
	switch l {
	case LevelLinear:
		return "linear"
	case LevelNoDraft:
		return "nodraft"
	}
	return "tree"
}

// Config tunes a Controller. Zero values select defaults.
type Config struct {
	// Candidates is the routing candidate set in preference order
	// (strategy display names, e.g. "OursTree", "Ours", "PromptLookup",
	// "NTP"). Before a class has observations, preference order breaks
	// the tie — put the low-load favourite first. Every name must
	// resolve via spec.Named. Default: OursTree, Ours, PromptLookup,
	// NTP.
	Candidates []string
	// NoDraftStrategy is the LevelNoDraft routing target (default
	// "NTP").
	NoDraftStrategy string
	// DepthQuantile is the accept-depth quantile a sized budget covers
	// (default 0.9: the tree reaches as deep as 90% of steps accept).
	DepthQuantile float64
	// MinBudget/MaxBudget clamp sized budgets (defaults 16 / 192).
	MinBudget, MaxBudget int
	// DefaultBudget is the sized budget before a strategy has any
	// observations (default spec.DefaultTreeBudget).
	DefaultBudget int
	// Alpha is the per-decode EWMA weight for accept-depth, width and
	// score estimates (default 0.15).
	Alpha float64
	// LoadAlpha is the per-sweep EWMA weight for occupancy and queue
	// signals (default 0.08: load is judged over tens of sweeps, not
	// one).
	LoadAlpha float64
	// OccHigh/OccLow are the occupancy watermarks: the smoothed
	// occupancy must exceed OccHigh to escalate a rung and fall below
	// OccLow to de-escalate (defaults 0.80 / 0.40). The gap is the
	// hysteresis band.
	OccHigh, OccLow float64
	// QueueHigh/QueueLow are the same watermarks for queue pressure
	// (queued + parked over queue capacity; defaults 0.25 / 0.02).
	QueueHigh, QueueLow float64
	// QueueWaitHighMS/QueueWaitLowMS are watermarks on the smoothed
	// per-request queue wait (defaults 200ms / 20ms).
	QueueWaitHighMS, QueueWaitLowMS float64
	// RaisePatience/LowerPatience are how many consecutive sweeps the
	// signals must sit beyond a watermark before the rung moves
	// (defaults 4 / 64: escalate fast when load arrives, come back
	// slowly so the ladder cannot flap on a noisy boundary).
	RaisePatience, LowerPatience int
	// ExploreEvery routes every Nth non-explicit decision per prompt
	// class to the least-observed allowed candidate instead of the
	// best-scoring one (default 32; <0 disables exploration).
	ExploreEvery int
}

func (c Config) withDefaults() Config {
	if len(c.Candidates) == 0 {
		c.Candidates = []string{"OursTree", "Ours", "PromptLookup", "NTP"}
	}
	if c.NoDraftStrategy == "" {
		c.NoDraftStrategy = "NTP"
	}
	if c.DepthQuantile <= 0 || c.DepthQuantile > 1 {
		c.DepthQuantile = 0.9
	}
	if c.MinBudget <= 0 {
		c.MinBudget = 16
	}
	if c.MaxBudget <= 0 {
		c.MaxBudget = 192
	}
	if c.MaxBudget < c.MinBudget {
		c.MaxBudget = c.MinBudget
	}
	if c.DefaultBudget <= 0 {
		c.DefaultBudget = spec.DefaultTreeBudget
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.15
	}
	if c.LoadAlpha <= 0 || c.LoadAlpha > 1 {
		c.LoadAlpha = 0.08
	}
	if c.OccHigh <= 0 {
		c.OccHigh = 0.80
	}
	if c.OccLow <= 0 {
		c.OccLow = 0.40
	}
	if c.QueueHigh <= 0 {
		c.QueueHigh = 0.25
	}
	if c.QueueLow <= 0 {
		c.QueueLow = 0.02
	}
	if c.QueueWaitHighMS <= 0 {
		c.QueueWaitHighMS = 200
	}
	if c.QueueWaitLowMS <= 0 {
		c.QueueWaitLowMS = 20
	}
	if c.RaisePatience <= 0 {
		c.RaisePatience = 4
	}
	if c.LowerPatience <= 0 {
		c.LowerPatience = 64
	}
	if c.ExploreEvery == 0 {
		c.ExploreEvery = 32
	}
	return c
}

// linearCounterpart maps each tree strategy to the linear strategy
// sharing its drafter family — the LevelLinear substitution.
var linearCounterpart = map[string]string{
	"OursTree":          "Ours",
	"MedusaTree":        "Medusa",
	"LookupTree":        "PromptLookup",
	"GrammarTree":       "Ours",
	"GrammarLookupTree": "PromptLookup",
}

// Request is the controller's view of one submission, after strategy
// canonicalization but before engine defaults fill in.
type Request struct {
	// Strategy is the canonical display name the request would decode
	// under if the controller did nothing.
	Strategy string
	// Explicit marks a request that named its own mode or strategy —
	// the controller never reroutes those.
	Explicit bool
	// TreeBudget is the request's own draft-tree budget (0 = unset;
	// the controller only sizes unset budgets).
	TreeBudget int
}

// Decision is what the controller chose for one request. The caller
// applies it (or, in shadow mode, only records it).
type Decision struct {
	// Strategy is the display name the request should decode under
	// (equal to the request's own when no reroute happened).
	Strategy string
	// TreeBudget is the sized draft-tree budget, or 0 to leave the
	// request's budget handling untouched.
	TreeBudget int
	// Level is the load rung the decision was made under.
	Level Level
	// Rerouted/Resized/Explored describe what changed: a strategy
	// substitution, a sized budget, an exploration slot.
	Rerouted, Resized, Explored bool
	// Downgraded marks a decision made above LevelTree — load forced a
	// cheaper configuration than the unloaded choice.
	Downgraded bool
}

// Outcome is one finished decode fed back into the controller.
type Outcome struct {
	// Strategy is the display name the decode actually ran under.
	Strategy string
	// Class is the prompt class the routing decision used (ClassOf of
	// the same features; the zero Class is fine for unclassified
	// traffic).
	Class Class
	// AcceptedPerStep is the decode's per-step accepted-token counts
	// (core.Result.AcceptedPerStep).
	AcceptedPerStep []int
	// TreeNodes/TreeBudget are the decode's draft-tree totals (zero
	// for linear strategies).
	TreeNodes, TreeBudget int
	// CleanTokens counts the decode's useful output tokens and
	// SimulatedMS its cost-model inference time; their ratio is the
	// routing score (accepted tokens per unit draft+verify cost).
	CleanTokens int
	SimulatedMS float64
}

// strategyState is the controller's learned model of one strategy.
type strategyState struct {
	// hist is the EWMA accept-depth distribution: each observation
	// contributes its normalized per-decode histogram.
	hist [DepthBuckets]float64
	// nodesPerStep is the EWMA of draft-tree nodes proposed per step.
	nodesPerStep float64
	// score is the global EWMA of clean tokens per simulated
	// millisecond — the routing fallback when a class has no data.
	score        float64
	observations uint64
}

// classState is the per-prompt-class routing memory.
type classState struct {
	score     map[string]float64 // strategy → EWMA tokens/ms within this class
	observed  map[string]uint64  // strategy → decodes observed
	tried     map[string]uint64  // strategy → cold-start forced tries issued
	decisions uint64             // routing decisions made for this class
}

func newClassState() *classState {
	return &classState{
		score:    map[string]float64{},
		observed: map[string]uint64{},
		tried:    map[string]uint64{},
	}
}

// Controller is the feedback controller. Create with New; the zero
// value is not usable.
type Controller struct {
	cfg Config

	mu sync.Mutex
	// Smoothed load signals and the ladder state machine.
	occ, queueFrac, queueWaitMS float64
	// queueGrowth is the smoothed per-sweep change in RAW queue
	// pressure and shrinkFor the consecutive sweeps it fell — the
	// ladder's trend signals (see ObserveSweep).
	queueGrowth, prevRawQueue float64
	shrinkFor                 int
	level                     Level
	aboveFor, belowFor        int // consecutive sweeps beyond a watermark
	sweeps                    uint64

	strategies map[string]*strategyState
	classes    map[Class]*classState

	// Decision counters (Snapshot exposes them; the serving layer
	// mirrors them into /metrics).
	decisions, reroutes, resizes     uint64
	downgrades, explores, levelMoves uint64
}

// New validates cfg and builds a controller at LevelTree.
func New(cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults()
	for _, name := range cfg.Candidates {
		if _, ok := spec.Named(name); !ok {
			return nil, fmt.Errorf("adapt: unknown candidate strategy %q", name)
		}
	}
	if _, ok := spec.Named(cfg.NoDraftStrategy); !ok {
		return nil, fmt.Errorf("adapt: unknown no-draft strategy %q", cfg.NoDraftStrategy)
	}
	return &Controller{
		cfg:        cfg,
		strategies: map[string]*strategyState{},
		classes:    map[Class]*classState{},
	}, nil
}

// isTree reports whether a display name is a tree-drafting strategy.
func isTree(name string) bool {
	s, ok := spec.Named(name)
	if !ok {
		return false
	}
	_, tree := s.Drafter.(spec.TreeDrafter)
	return tree
}

// queuePegged is the raw queue fraction treated as saturation: a queue
// pinned this close to capacity escalates even when it has stopped
// growing (it cannot grow — admission control is about to shed).
const queuePegged = 0.9

// ObserveSweep feeds one scheduler sweep's load signals: batch
// occupancy (running decodes over batch slots) and queue pressure
// (queued + parked requests over queue capacity), both in [0, 1]. It
// advances the degradation ladder.
//
// Escalation requires load that is high AND not improving. The second
// condition is what keeps the ladder from overshooting: after a step
// down to a cheaper rung, the backlog accumulated under the old rung
// still reads as high queue pressure — and as rising queue WAITS,
// since the deepest-queued requests are admitted last — for the whole
// drain, even though the new rung has already restored stability.
// Queue LENGTH trend is the one signal that turns immediately, so the
// raw per-sweep queue delta gates the pressure signals: queue pressure
// escalates only while the queue is growing (or pegged at capacity),
// and queue wait only while the queue is not shrinking. The trend is
// read two ways — a smoothed growth EWMA for slow, interleaved drains,
// and a consecutive-shrink counter that flips the verdict within two
// sweeps of a turn, before the EWMA has caught up. High occupancy
// needs no gate — it is batch-slot saturation, not backlog, and drains
// by itself.
//
// Rung moves are additionally score-gated. Stepping down the ladder is
// only worth anything if the cheaper rung actually clears more useful
// tokens per unit cost — the premise is that draft compute is being
// wasted, and the controller MEASURES that premise through the same
// per-strategy scores routing exploits. So escalation to a rung whose
// best observed strategy scores strictly worse than the current rung's
// is refused (degrading cannot help; the pressure is genuine capacity
// shortage), and a rung held under sustained pressure while scoring
// strictly worse than the rung below it is undone. The undo is what
// makes a mistaken degrade recoverable: a slow rung keeps occupancy
// high by itself, so the low watermark alone would never release it.
// Unobserved rungs escalate freely — until measured, the designed
// cost ordering (tree > linear > no-draft) is assumed.
func (c *Controller) ObserveSweep(occupancy, queueFrac float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	a := c.cfg.LoadAlpha
	c.occ += a * (occupancy - c.occ)
	c.queueFrac += a * (queueFrac - c.queueFrac)
	const growthEps = 1e-9
	delta := queueFrac - c.prevRawQueue
	c.prevRawQueue = queueFrac
	c.queueGrowth += a * (delta - c.queueGrowth)
	if delta < -growthEps {
		c.shrinkFor++
	} else {
		c.shrinkFor = 0
	}
	// Queue wait decays toward zero between requests so a stale spike
	// cannot pin the ladder up after the queue has drained.
	c.queueWaitMS *= 1 - a/4
	c.sweeps++

	shrinking := c.queueGrowth < -growthEps || c.shrinkFor >= 2
	growing := c.queueGrowth > growthEps && !shrinking
	high := c.occ >= c.cfg.OccHigh ||
		(c.queueFrac >= c.cfg.QueueHigh && (growing || queueFrac >= queuePegged)) ||
		(c.queueWaitMS >= c.cfg.QueueWaitHighMS && !shrinking)
	low := c.occ <= c.cfg.OccLow && c.queueFrac <= c.cfg.QueueLow && c.queueWaitMS <= c.cfg.QueueWaitLowMS
	switch {
	case high:
		c.belowFor = 0
		c.aboveFor++
		if c.aboveFor >= c.cfg.RaisePatience {
			c.aboveFor = 0
			cur, curKnown := c.bestKnownScoreLocked(c.level)
			moved := false
			if c.level < LevelNoDraft {
				next, nextKnown := c.bestKnownScoreLocked(c.level + 1)
				if !(curKnown && nextKnown && next < cur) {
					c.level++
					c.levelMoves++
					moved = true
				}
			}
			// Escalation refused or exhausted while pressure persists:
			// if the rung below measures strictly better, this degrade
			// is hurting, not helping — undo it.
			if !moved && c.level > LevelTree {
				below, belowKnown := c.bestKnownScoreLocked(c.level - 1)
				if curKnown && belowKnown && below > cur {
					c.level--
					c.levelMoves++
				}
			}
		}
	case low:
		c.aboveFor = 0
		c.belowFor++
		if c.belowFor >= c.cfg.LowerPatience && c.level > LevelTree {
			c.level--
			c.levelMoves++
			c.belowFor = 0
		}
	default:
		// Inside the hysteresis band: hold the rung, reset patience.
		c.aboveFor, c.belowFor = 0, 0
	}
}

// ObserveQueueWait feeds one request's measured queue wait.
func (c *Controller) ObserveQueueWait(ms float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.queueWaitMS += c.cfg.LoadAlpha * (ms - c.queueWaitMS)
}

// Observe feeds one finished decode back into the per-strategy and
// per-class estimates.
func (c *Controller) Observe(o Outcome) {
	if o.Strategy == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ss := c.strategies[o.Strategy]
	if ss == nil {
		ss = &strategyState{}
		c.strategies[o.Strategy] = ss
	}
	a := c.cfg.Alpha
	if steps := len(o.AcceptedPerStep); steps > 0 {
		var obs [DepthBuckets]float64
		for _, n := range o.AcceptedPerStep {
			if n < 1 {
				n = 1
			}
			if n > DepthBuckets {
				n = DepthBuckets
			}
			obs[n-1] += 1 / float64(steps)
		}
		if ss.observations == 0 {
			ss.hist = obs
		} else {
			for i := range ss.hist {
				ss.hist[i] += a * (obs[i] - ss.hist[i])
			}
		}
		nps := float64(o.TreeNodes) / float64(steps)
		if ss.observations == 0 {
			ss.nodesPerStep = nps
		} else {
			ss.nodesPerStep += a * (nps - ss.nodesPerStep)
		}
	}
	score := 0.0
	if o.SimulatedMS > 0 {
		score = float64(o.CleanTokens) / o.SimulatedMS
	}
	if ss.observations == 0 {
		ss.score = score
	} else {
		ss.score += a * (score - ss.score)
	}
	ss.observations++

	cs := c.classes[o.Class]
	if cs == nil {
		cs = newClassState()
		c.classes[o.Class] = cs
	}
	if prev, seen := cs.score[o.Strategy]; seen {
		cs.score[o.Strategy] = prev + a*(score-prev)
	} else {
		cs.score[o.Strategy] = score
	}
	cs.observed[o.Strategy]++
}

// Decide picks the configuration one request should decode under. It
// must be called for every submission (shadow mode included): the
// decision counters and the per-class exploration clock advance here.
func (c *Controller) Decide(f Features, req Request) Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	d := Decision{Strategy: req.Strategy, Level: c.level}
	c.decisions++
	if !req.Explicit {
		class := ClassOf(f)
		chosen, explored := c.routeLocked(class, c.level)
		if chosen != "" && chosen != req.Strategy {
			d.Strategy = chosen
			d.Rerouted = true
		}
		d.Explored = explored
	}
	// Size the budget only where it can matter: a tree strategy whose
	// request left the budget unset.
	if req.TreeBudget <= 0 && isTree(d.Strategy) {
		b := c.budgetLocked(d.Strategy)
		switch c.level {
		case LevelLinear:
			b /= 2
		case LevelNoDraft:
			b = c.cfg.MinBudget
		}
		if b < c.cfg.MinBudget {
			b = c.cfg.MinBudget
		}
		d.TreeBudget = b
		d.Resized = true
	}
	if c.level > LevelTree {
		d.Downgraded = true
		c.downgrades++
	}
	if d.Rerouted {
		c.reroutes++
	}
	if d.Resized {
		c.resizes++
	}
	if d.Explored {
		c.explores++
	}
	return d
}

// routeLocked picks the strategy for one non-explicit request of the
// given class at the given rung. Returns the display name ("" keeps
// the request's own) and whether this was an exploration slot.
func (c *Controller) routeLocked(class Class, level Level) (string, bool) {
	allowed := c.allowedLocked(level)
	if len(allowed) == 0 {
		return "", false
	}
	cs := c.classes[class]
	if cs == nil {
		cs = newClassState()
		c.classes[class] = cs
	}
	cs.decisions++
	// Deterministic exploration: every Nth decision for this class
	// measures the least-observed allowed arm so scores stay honest.
	// Only at LevelTree — exploration spends capacity on deliberately
	// slow configurations, and near saturation that spare capacity is
	// exactly what the backlog needs to drain (one slow exploration
	// decode can pin a verification slot for its whole service time).
	// An elevated ladder is the controller's own signal that there is
	// no slack to spend. Long-generation classes never explore: a
	// probe's cost is its decode length, and a long decode on a
	// batch-monopolizing arm stalls admission for everything behind it
	// — the exploited arm's scores stay fresh from regular completions
	// either way.
	if n := uint64(c.cfg.ExploreEvery); c.cfg.ExploreEvery > 0 && level == LevelTree && !class.Long && cs.decisions%n == 0 && len(allowed) > 1 {
		pick, best := "", uint64(math.MaxUint64)
		for _, name := range allowed {
			if o := cs.observed[name]; o < best {
				pick, best = name, o
			}
		}
		return pick, true
	}
	// Forced first try: an arm this class has never seen complete is
	// measured before any exploitation. Without this the first arm to
	// report a score — however poor — wins every exploit comparison
	// against the unobserved rest and sticks forever (scheduled
	// exploration alone is far too sparse to recover). ONE try per
	// arm, marked at decision time, not completion: a slow arm's first
	// decode can span many arrival windows, and re-forcing it for every
	// decision until it reports back would stampede a burst of traffic
	// onto the slowest candidate exactly when load is highest. A try
	// that never completes is re-measured by scheduled exploration
	// (least-observed wins that slot). Preference order, so the cold
	// start walks the candidates front to back. Disabled with scheduled
	// exploration (ExploreEvery <= 0): both are ways of spending
	// requests on measurement.
	if c.cfg.ExploreEvery > 0 {
		for _, name := range allowed {
			if cs.observed[name] == 0 && cs.tried[name] == 0 {
				cs.tried[name]++
				return name, true
			}
		}
		// Jury still out: some arm's first measurement is in flight.
		// Hold the request's own default rather than exploiting a
		// half-measured ranking — the arm that happens to finish first
		// (often the one that monopolizes the batch) would otherwise
		// soak up every decision until the slower measurements land.
		for _, name := range allowed {
			if cs.observed[name] == 0 {
				return "", false
			}
		}
	}
	// Exploit: best class score; fall back to the global strategy
	// score, then to preference order (allowed is already in order).
	pick, bestScore, scored := "", 0.0, false
	for _, name := range allowed {
		score, ok := cs.score[name]
		if !ok {
			if ss := c.strategies[name]; ss != nil && ss.observations > 0 {
				score, ok = ss.score, true
			}
		}
		if ok && (!scored || score > bestScore) {
			pick, bestScore, scored = name, score, true
		}
	}
	if !scored {
		return allowed[0], false
	}
	return pick, false
}

// allowedLocked is the candidate set at a rung, preference order kept:
// LevelTree allows everything, LevelLinear substitutes each tree
// candidate's linear counterpart, LevelNoDraft allows only the
// no-draft strategy.
func (c *Controller) allowedLocked(level Level) []string {
	switch level {
	case LevelNoDraft:
		return []string{c.cfg.NoDraftStrategy}
	case LevelLinear:
		var out []string
		seen := map[string]bool{}
		for _, name := range c.cfg.Candidates {
			if lin, ok := linearCounterpart[name]; ok {
				name = lin
			}
			if !seen[name] {
				seen[name] = true
				out = append(out, name)
			}
		}
		return out
	}
	return c.cfg.Candidates
}

// bestKnownScoreLocked is the best observed global score among the
// rung's allowed strategies, and whether any of them has been observed
// at all — the ladder's measurement of what a rung is worth.
func (c *Controller) bestKnownScoreLocked(level Level) (float64, bool) {
	best, known := 0.0, false
	for _, name := range c.allowedLocked(level) {
		if ss := c.strategies[name]; ss != nil && ss.observations > 0 {
			if !known || ss.score > best {
				best, known = ss.score, true
			}
		}
	}
	return best, known
}

// budgetLocked sizes a tree strategy's node budget from its learned
// accept-depth distribution: the depth quantile (how deep acceptance
// actually reaches) times the surviving width (proposed nodes per
// accepted depth level), clamped to [MinBudget, MaxBudget].
func (c *Controller) budgetLocked(strategy string) int {
	ss := c.strategies[strategy]
	if ss == nil || ss.observations == 0 {
		return clamp(c.cfg.DefaultBudget, c.cfg.MinBudget, c.cfg.MaxBudget)
	}
	var total, mean float64
	for i, v := range ss.hist {
		total += v
		mean += float64(i+1) * v
	}
	if total <= 0 {
		return clamp(c.cfg.DefaultBudget, c.cfg.MinBudget, c.cfg.MaxBudget)
	}
	mean /= total
	// Depth quantile: smallest depth d with CDF(d) >= DepthQuantile.
	qd, cum := DepthBuckets, 0.0
	for i, v := range ss.hist {
		cum += v / total
		if cum >= c.cfg.DepthQuantile {
			qd = i + 1
			break
		}
	}
	// Surviving width: nodes proposed per accepted depth level. A
	// linear-looking tree (width 1) still budgets one node per level.
	width := 1.0
	if mean > 0 && ss.nodesPerStep > 0 {
		width = ss.nodesPerStep / mean
		if width < 1 {
			width = 1
		}
	}
	return clamp(int(math.Round(float64(qd)*width)), c.cfg.MinBudget, c.cfg.MaxBudget)
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// StrategyLearned is one strategy's learned state in a Snapshot.
type StrategyLearned struct {
	// Observations counts decodes folded into the estimates.
	Observations uint64 `json:"observations"`
	// QuantileDepth is the current accept-depth quantile (tokens) and
	// Width the surviving nodes per depth level; Budget is the sized
	// tree budget they produce (after clamping, before load shrink).
	QuantileDepth int     `json:"quantile_depth"`
	Width         float64 `json:"width"`
	Budget        int     `json:"budget"`
	// Score is the global EWMA of clean tokens per simulated
	// millisecond.
	Score float64 `json:"score"`
}

// Snapshot is a point-in-time view of the controller for metrics.
type Snapshot struct {
	Level     Level  `json:"level"`
	LevelName string `json:"level_name"`
	// Occupancy/QueueFrac/QueueWaitMS are the smoothed load signals
	// the ladder runs on.
	Occupancy   float64 `json:"occupancy"`
	QueueFrac   float64 `json:"queue_frac"`
	QueueWaitMS float64 `json:"queue_wait_ms"`
	Sweeps      uint64  `json:"sweeps"`
	// Decision counters.
	Decisions     uint64 `json:"decisions"`
	Reroutes      uint64 `json:"reroutes"`
	BudgetResizes uint64 `json:"budget_resizes"`
	Downgrades    uint64 `json:"downgrades"`
	Explorations  uint64 `json:"explorations"`
	LevelChanges  uint64 `json:"level_changes"`
	// Classes counts distinct prompt classes seen by routing.
	Classes int `json:"classes"`
	// PerStrategy is the learned per-strategy state, keyed by display
	// name.
	PerStrategy map[string]StrategyLearned `json:"per_strategy"`
}

// Snapshot captures the controller's current state.
func (c *Controller) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Snapshot{
		Level:         c.level,
		LevelName:     c.level.String(),
		Occupancy:     c.occ,
		QueueFrac:     c.queueFrac,
		QueueWaitMS:   c.queueWaitMS,
		Sweeps:        c.sweeps,
		Decisions:     c.decisions,
		Reroutes:      c.reroutes,
		BudgetResizes: c.resizes,
		Downgrades:    c.downgrades,
		Explorations:  c.explores,
		LevelChanges:  c.levelMoves,
		Classes:       len(c.classes),
		PerStrategy:   map[string]StrategyLearned{},
	}
	names := make([]string, 0, len(c.strategies))
	for name := range c.strategies {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ss := c.strategies[name]
		sl := StrategyLearned{Observations: ss.observations, Score: ss.score}
		if isTree(name) {
			sl.Budget = c.budgetLocked(name)
			var total, mean, cum float64
			for i, v := range ss.hist {
				total += v
				mean += float64(i+1) * v
			}
			if total > 0 {
				mean /= total
				for i, v := range ss.hist {
					cum += v / total
					if cum >= c.cfg.DepthQuantile {
						sl.QuantileDepth = i + 1
						break
					}
				}
				if sl.QuantileDepth == 0 {
					sl.QuantileDepth = DepthBuckets
				}
				if mean > 0 && ss.nodesPerStep > 0 {
					sl.Width = ss.nodesPerStep / mean
					if sl.Width < 1 {
						sl.Width = 1
					}
				}
			}
		}
		s.PerStrategy[name] = sl
	}
	return s
}

// CurrentLevel reports the current load rung.
func (c *Controller) CurrentLevel() Level {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.level
}
