package spec

import (
	"repro/internal/core/spec/tree"
	"repro/internal/model"
	"repro/internal/tokenizer"
)

// DefaultTreeBudget is the default per-step draft-tree node cap
// (core.Options.TreeBudget when unset). Sized so the Medusa tree's
// default shape — two full top-k levels (k + k² static nodes) plus a
// chain tail below every surviving branch — fits without clipping at
// k=3 with 10 heads: 12 static + 9·8 tail = 84 nodes.
const DefaultTreeBudget = 96

// TreeDrafter is a Drafter that proposes a branching draft tree
// instead of one linear run: top-k candidates per position fan out so
// a verifier rejection prunes one subtree rather than killing the whole
// tail. The embedded Drafter contract still holds (Name, NeedsHeads,
// ExtraCostMS); BeginStep is unused — the decoding loop consults
// BuildTree for strategies whose drafter implements this interface.
type TreeDrafter interface {
	Drafter
	// BuildTree proposes this step's draft tree under a node budget
	// (>= 1; DefaultTreeBudget when the caller left it unset). It may
	// return nil, or a tree with no draft nodes, to propose nothing.
	// Nodes must never extend past an <eos> token.
	BuildTree(dc DraftCtx, budget int) *tree.Tree
}

// staticHeadLevels is how many draft positions the Medusa tree
// branches at full top-k width before handing over to the adaptive
// chain tail (ChainExtender). Two levels keep the static tree a
// superset of every path the linear walk can take through its first
// two positions — the containment that makes tree acceptance never
// shorter than linear acceptance — at k + k² nodes.
const staticHeadLevels = 2

// ChainExtender is implemented by tree drafters whose candidates are
// position-conditioned rather than path-conditioned (Medusa heads:
// head i proposes for draft position i whatever the path). After the
// tree walk screens the static levels, every surviving branch
// continues chain-style with Extend's full per-position candidate
// lists — the same adaptive longest-prefix walk linear Medusa runs,
// one per survivor instead of one total. Path-conditioned drafters
// (prompt lookup) cannot extend: their continuations are already laid
// into the tree in full.
type ChainExtender interface {
	// Extend returns the candidates for draft position depth, best
	// first; empty ends the extension.
	Extend(dc DraftCtx, depth int) []int
}

// MedusaTree lifts MedusaHeads into branching form: draft position i
// still proposes from head i's distribution, but instead of one chain
// screened candidate-by-candidate, the first staticHeadLevels
// positions fan out at full top-k width and every surviving branch
// grows its own chain tail (ChainExtender). Identical token sets per
// position — the heads are position-conditioned, not path-conditioned
// — but each tree path is verified against its own path-conditioned
// posterior, which is where the extra accepted length comes from: the
// static levels contain every prefix the linear walk could accept, so
// the deepest surviving path is never shorter than linear Medusa's,
// and branches the linear walk would have abandoned get to run their
// own tails.
type MedusaTree struct{}

// Name identifies the drafter.
func (MedusaTree) Name() string { return "medusa-tree" }

// NeedsHeads reports that head distributions are required.
func (MedusaTree) NeedsHeads() bool { return true }

// ExtraCostMS charges every head's forward cost, exactly like linear
// Medusa drafting: the tree is built from the same single forward pass.
func (MedusaTree) ExtraCostMS(cfg model.Config, numHeads int) float64 {
	return float64(numHeads) * cfg.HeadLatencyMS
}

// BeginStep proposes nothing — tree drafters draft through BuildTree.
func (MedusaTree) BeginStep(DraftCtx) CandidateSource { return nil }

// BuildTree fans the heads' top candidates into a draft tree.
func (MedusaTree) BuildTree(dc DraftCtx, budget int) *tree.Tree {
	if len(dc.Forward.Heads) == 0 {
		return nil
	}
	t := tree.New(budget)
	growHeadTree(t, []int{tree.Root}, dc)
	return t
}

// growHeadTree expands frontier through the first staticHeadLevels
// head distributions at full top-k width, honouring the budget and
// never extending past <eos>. Deeper positions belong to the adaptive
// chain tail (ChainExtender). Shared with the hybrid drafter, which
// seeds a different frontier into the same expansion.
func growHeadTree(t *tree.Tree, frontier []int, dc DraftCtx) {
	for d, head := range dc.Forward.Heads {
		if d >= staticHeadLevels {
			return
		}
		cands := head.TopK(dc.TopK)
		if len(cands) == 0 {
			return
		}
		var next []int
		for _, p := range frontier {
			if p != tree.Root && t.Node(p).Token == tokenizer.EosID {
				continue
			}
			for _, c := range cands {
				id, added := t.Add(p, c, tree.OriginHead)
				if id < 0 {
					return // budget exhausted
				}
				if added {
					next = append(next, id)
				}
			}
		}
		if len(next) == 0 {
			return
		}
		frontier = next
	}
}

// Extend serves head depth's full top-k — the chain tail's candidates,
// identical to what the linear walk would consult at that position.
func (MedusaTree) Extend(dc DraftCtx, depth int) []int {
	if depth >= len(dc.Forward.Heads) {
		return nil
	}
	return dc.Forward.Heads[depth].TopK(dc.TopK)
}

// Lookup-tree defaults: defaultMaxBranches caps how many distinct
// n-gram match continuations branch from the root; more just spends
// budget on stale history, since matches are collected newest-first.
const defaultMaxBranches = 4

// LookupTree lifts PromptLookup into branching form: instead of only
// the most recent previous occurrence of the current suffix, every
// sufficiently long re-occurrence proposes its continuation run, and
// the distinct runs branch from the root (shared prefixes dedup into
// shared nodes). Whenever the linear drafter proposes at all, its run
// leads the branches (longest match, most recent occurrence — the
// same scan order), so the tree's candidate set contains the linear
// one; where linear aborts on a newest occurrence with an empty
// continuation (a <bos> boundary), the tree keeps scanning older
// occurrences — strictly more drafting, never less. Screened
// greedy-exact (the lookup-tree strategy), greedy decodes stay
// lossless either way: every accepted token is the base argmax, so
// the emitted byte stream equals linear prompt-lookup's — and NTP's —
// regardless of how the branches fare.
type LookupTree struct {
	// MinMatch is the shortest suffix worth matching (default 3).
	MinMatch int
	// MaxSpan caps draft tokens per branch (default 10).
	MaxSpan int
	// MaxBranches caps distinct match continuations (default 4).
	MaxBranches int
}

// Name identifies the drafter.
func (LookupTree) Name() string { return "lookup-tree" }

// NeedsHeads reports that no head distributions are consumed.
func (LookupTree) NeedsHeads() bool { return false }

// ExtraCostMS adds nothing, like linear prompt lookup.
func (LookupTree) ExtraCostMS(model.Config, int) float64 { return 0 }

// BeginStep proposes nothing — tree drafters draft through BuildTree.
func (LookupTree) BeginStep(DraftCtx) CandidateSource { return nil }

// BuildTree branches every distinct match continuation from the root.
func (p LookupTree) BuildTree(dc DraftCtx, budget int) *tree.Tree {
	runs := p.runs(dc)
	if len(runs) == 0 {
		return nil
	}
	t := tree.New(budget)
	insertRuns(t, runs)
	return t
}

// runs collects the distinct lookup continuations for this step,
// best-first (longest match, most recent occurrence leads — the linear
// drafter's run). Shared with the hybrid drafter.
func (p LookupTree) runs(dc DraftCtx) [][]int {
	minMatch := p.MinMatch
	if minMatch <= 0 {
		minMatch = defaultMinMatch
	}
	maxSpan := p.MaxSpan
	if maxSpan <= 0 {
		maxSpan = defaultMaxSpan
	}
	maxBranches := p.MaxBranches
	if maxBranches <= 0 {
		maxBranches = defaultMaxBranches
	}
	seq := make([]int, 0, len(dc.Seq)+len(dc.Prefix))
	seq = append(seq, dc.Seq...)
	seq = append(seq, dc.Prefix...)
	return lookupRuns(seq, minMatch, maxSpan, maxBranches)
}

// insertRuns lays the runs into the tree as root chains, sharing
// prefixes through Add's per-parent dedup, stopping at the budget.
func insertRuns(t *tree.Tree, runs [][]int) {
	for _, run := range runs {
		parent := tree.Root
		for _, id := range run {
			node, _ := t.Add(parent, id, tree.OriginLookup)
			if node < 0 {
				return // budget exhausted
			}
			parent = node
			if id == tokenizer.EosID {
				break
			}
		}
	}
}

// lookupRuns is the multi-match generalization of lookupRun: it scans
// suffix lengths longest-first and, within a length, occurrences
// newest-first — the order of the linear scan, so whenever lookupRun
// returns a run, that run is runs[0] — collecting up to maxBranches
// distinct continuation runs. The one divergence is deliberate: an
// occurrence with an empty continuation (its history is all <bos>
// boundary) makes lookupRun abort the whole search, while this scan
// skips it and keeps looking — the tree may draft where linear gives
// up, never the reverse.
func lookupRuns(seq []int, minMatch, maxSpan, maxBranches int) [][]int {
	n := len(seq)
	if n < minMatch+minLookupHistory {
		return nil
	}
	maxK := maxLookupSuffix
	if maxK > n-1 {
		maxK = n - 1
	}
	var runs [][]int
	seen := map[string]bool{}
	for k := maxK; k >= minMatch && len(runs) < maxBranches; k-- {
		suffix := seq[n-k:]
		for j := n - 2; j >= k-1 && len(runs) < maxBranches; j-- {
			match := true
			for x := 0; x < k; x++ {
				if seq[j-k+1+x] != suffix[x] {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			end := j + 1 + maxSpan
			if end > n {
				end = n
			}
			run := make([]int, 0, end-j-1)
			for _, id := range seq[j+1 : end] {
				if id == tokenizer.BosID {
					break
				}
				run = append(run, id)
			}
			if len(run) == 0 {
				continue
			}
			key := runKey(run)
			if seen[key] {
				continue
			}
			seen[key] = true
			runs = append(runs, run)
		}
	}
	return runs
}

// runKey spells a run for dedup (token ids are small; a byte-ish string
// key beats hashing maps of slices).
func runKey(run []int) string {
	b := make([]byte, 0, len(run)*3)
	for _, id := range run {
		b = append(b, byte(id), byte(id>>8), byte(id>>16))
	}
	return string(b)
}

// HybridTree unions both drafting mechanisms under one node budget:
// lookup match continuations first (deep, high-confidence template
// echoes — RTL is template-heavy, so when a match exists it usually
// survives deepest), then Medusa head branches fill the remaining
// budget from the root. Shared paths dedup into shared nodes.
type HybridTree struct {
	// Lookup configures the lookup half (zero values = defaults).
	Lookup LookupTree
}

// Name identifies the drafter.
func (HybridTree) Name() string { return "hybrid-tree" }

// NeedsHeads reports that head distributions are required (the Medusa
// half consumes them; the lookup half is free either way).
func (HybridTree) NeedsHeads() bool { return true }

// ExtraCostMS charges the heads, like Medusa drafting; the lookup half
// adds nothing.
func (HybridTree) ExtraCostMS(cfg model.Config, numHeads int) float64 {
	return float64(numHeads) * cfg.HeadLatencyMS
}

// BeginStep proposes nothing — tree drafters draft through BuildTree.
func (HybridTree) BeginStep(DraftCtx) CandidateSource { return nil }

// BuildTree inserts the lookup chains, then grows head branches from
// the root into whatever budget remains.
func (h HybridTree) BuildTree(dc DraftCtx, budget int) *tree.Tree {
	runs := h.Lookup.runs(dc)
	if len(runs) == 0 && len(dc.Forward.Heads) == 0 {
		return nil
	}
	t := tree.New(budget)
	insertRuns(t, runs)
	growHeadTree(t, []int{tree.Root}, dc)
	return t
}

// Extend serves head depth's full top-k, like MedusaTree — surviving
// lookup chains get head-guided tails past their match span too.
func (h HybridTree) Extend(dc DraftCtx, depth int) []int {
	return MedusaTree{}.Extend(dc, depth)
}

// MedusaTreeStrategy is tree-structured Medusa: head candidates fan
// into a draft tree, typical acceptance screens every branch, the
// deepest surviving root path wins.
func MedusaTreeStrategy() Strategy {
	return Strategy{Name: "MedusaTree", Drafter: MedusaTree{}, Verifier: TypicalAcceptance{}}
}

// LookupTreeStrategy is tree-structured self-speculative lookup:
// every n-gram match branches, greedy-exact screening keeps greedy
// decodes byte-identical to linear prompt lookup (and to NTP).
func LookupTreeStrategy() Strategy {
	return Strategy{Name: "LookupTree", Drafter: LookupTree{}, Verifier: GreedyExact{}}
}

// OursTreeStrategy is the paper's method in tree form: Medusa head
// branches unioned with lookup matches, screened by typical acceptance
// and truncated at the last [FRAG] marker — fragment-aligned stops
// compose with tree drafting unchanged, since the integrity check acts
// on the accepted path after the tree walk picks it.
func OursTreeStrategy() Strategy {
	return Strategy{Name: "OursTree", Drafter: HybridTree{}, Verifier: Integrity{Inner: TypicalAcceptance{}}}
}
