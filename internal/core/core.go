// Package core implements the paper's primary contribution: a
// Medusa-style speculative decoder for Verilog whose decoding stops are
// aligned with syntactically significant tokens.
//
// One decoding step is one simulated forward pass (base model + heads).
// The base model's next token is always kept (lossless floor); head
// proposals for offsets t+2..t+n+1 are screened by the typical
// acceptance rule (paper eq. 1)
//
//	p_base(x) > min(ε, δ·exp(−H(p_base)))
//
// evaluated against the base model's distribution with all previously
// accepted tokens in context — the analogue of Medusa's verification
// pass. In "Ours" mode an integrity check then truncates the accepted
// run at the last [FRAG] marker so every decoding step ends on a
// complete syntactic fragment (paper §III-B).
//
// The decoding loop itself is strategy-agnostic: drafting and
// acceptance live behind the Drafter/Verifier interfaces of
// internal/core/spec, and the paper's three modes are canned pairings
// (StrategyForMode). Options.Strategy selects any registered pairing by
// name — including self-speculative prompt lookup, which needs no
// trained heads at all, and the tree-drafting lifts (medusa-tree,
// lookup-tree, ours-tree), whose branching draft trees are verified in
// one pass per step with the deepest surviving root path accepted
// (acceptTree); linear drafting is the width-1 special case of the
// same walk (acceptDrafts).
//
// A latency cost model (per-forward-pass milliseconds, calibrated so
// the NTP baselines match the paper's tokens/s) converts step counts
// into the simulated generation speeds reported by the benchmark
// harness; wall-clock throughput of the engine itself is measured
// separately by testing.B benchmarks.
package core

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core/spec"
	"repro/internal/core/spec/tree"
	"repro/internal/model"
	"repro/internal/tokenizer"
)

// Mode selects the decoding strategy.
type Mode int

// Decoding modes compared in the paper.
const (
	// ModeNTP decodes one token per step (conventional decoding).
	ModeNTP Mode = iota
	// ModeMedusa is vanilla Medusa speculative decoding: heads draft,
	// typical acceptance screens, no fragment alignment.
	ModeMedusa
	// ModeOurs is Medusa plus the paper's integrity check: accepted
	// runs are truncated at the last [FRAG] so decoding stops align
	// with syntactically significant tokens.
	ModeOurs
)

// String names the mode as in the paper's tables.
func (m Mode) String() string {
	switch m {
	case ModeNTP:
		return "NTP"
	case ModeMedusa:
		return "Medusa"
	case ModeOurs:
		return "Ours"
	}
	return "?"
}

// ModeForScheme returns the natural decoding mode for a training scheme.
func ModeForScheme(s model.Scheme) Mode {
	switch s {
	case model.SchemeNTP:
		return ModeNTP
	case model.SchemeMedusa:
		return ModeMedusa
	default:
		return ModeOurs
	}
}

// StrategyForMode re-expresses a legacy decoding mode as its canned
// drafter/verifier pairing. disableIntegrity ablates the [FRAG]
// integrity wrapper of ModeOurs (Options.DisableIntegrity).
func StrategyForMode(m Mode, disableIntegrity bool) spec.Strategy {
	switch m {
	case ModeNTP:
		return spec.NTP()
	case ModeMedusa:
		return spec.Medusa()
	default:
		s := spec.Ours()
		if disableIntegrity {
			s = spec.WithoutIntegrity(s)
		}
		return s
	}
}

// ResolveStrategy resolves a strategy name ("ntp", "medusa", "ours",
// "prompt-lookup" or an alias — see spec.Named) to its pairing,
// honouring the integrity ablation for strategies that carry the check.
func ResolveStrategy(name string, disableIntegrity bool) (spec.Strategy, error) {
	s, ok := spec.Named(name)
	if !ok {
		return spec.Strategy{}, fmt.Errorf("unknown strategy %q (want one of %v)", name, spec.Names())
	}
	if disableIntegrity {
		s = spec.WithoutIntegrity(s)
	}
	return s, nil
}

// StrategyListing renders the registered decoding strategies as a
// human-readable table — the output behind the CLIs' -list-strategies
// flag, derived from the spec registry so it can never drift from what
// ResolveStrategy accepts.
func StrategyListing() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-14s %-13s %-18s %-5s %-6s %s\n",
		"name", "display", "drafter", "verifier", "tree", "heads", "aliases")
	for _, in := range spec.Registered() {
		fmt.Fprintf(&b, "%-14s %-14s %-13s %-18s %-5v %-6v %s\n",
			in.Canonical, in.Display, in.Drafter, in.Verifier, in.Tree, in.NeedsHeads,
			strings.Join(in.Aliases, ", "))
	}
	return b.String()
}

// Options controls one decode call. Zero values select defaults.
type Options struct {
	// Mode selects NTP / Medusa / Ours decoding. Ignored when Strategy
	// is set.
	Mode Mode
	// Strategy selects the decoding strategy by name ("ntp", "medusa",
	// "ours", "prompt-lookup"; see spec.Named). Empty derives the
	// strategy from Mode — full backward compatibility with the legacy
	// three-way switch.
	Strategy string
	// Temperature 0 decodes greedily; >0 samples the base token.
	Temperature float64
	// MaxNewTokens bounds generated tokens (default: model MaxTokens).
	MaxNewTokens int
	// TopK is the number of candidate tokens considered per head
	// position (the paper "maintains several candidates comprising the
	// top-k predictions"). Default 3.
	TopK int
	// Epsilon and Delta are the typical-acceptance hyper-parameters of
	// eq. 1 (threshold = min(ε, δ·exp(−H))). Defaults ε=0.3, δ=1.2 are
	// calibrated for the statistical backbone: δ well above Medusa's
	// GPU value keeps the entropy-dependent branch from rubber-stamping
	// drafts in mid-entropy contexts, where an n-gram's backoff mass
	// (unlike an LLM's posterior) inflates junk-token probabilities.
	Epsilon, Delta float64
	// TreeBudget caps draft-tree nodes per decoding step for
	// tree-drafting strategies (medusa-tree, lookup-tree, ours-tree);
	// <= 0 selects spec.DefaultTreeBudget. Linear strategies ignore it.
	TreeBudget int
	// DisableIntegrity ablates the [FRAG] integrity check in ModeOurs
	// (used by the ablation benchmarks).
	DisableIntegrity bool
	// Seed drives the sampling RNG; decodes are fully deterministic
	// given (model, prompt, options).
	Seed int64
}

func (o Options) withDefaults(m *model.Model) Options {
	if o.MaxNewTokens == 0 {
		o.MaxNewTokens = m.Config().MaxTokens
	}
	if o.TopK == 0 {
		o.TopK = 3
	}
	if o.Epsilon == 0 {
		o.Epsilon = 0.3
	}
	if o.Delta == 0 {
		o.Delta = 1.2
	}
	if o.TreeBudget <= 0 {
		o.TreeBudget = spec.DefaultTreeBudget
	}
	return o
}

// strategy resolves the options' decoding strategy: the named one when
// Strategy is set, otherwise the legacy mode's canned pairing.
func (o Options) strategy() (spec.Strategy, error) {
	if o.Strategy != "" {
		return ResolveStrategy(o.Strategy, o.DisableIntegrity)
	}
	return StrategyForMode(o.Mode, o.DisableIntegrity), nil
}

// StrategyLabel returns the canonical display name of the strategy
// these options select ("NTP", "Medusa", "Ours", "PromptLookup") —
// the key serving metrics and benchmark tables group by. An unknown
// Strategy name is returned verbatim so the error stays visible.
func (o Options) StrategyLabel() string {
	if o.Strategy != "" {
		if s, ok := spec.Named(o.Strategy); ok {
			return s.Name
		}
		return o.Strategy
	}
	return o.Mode.String()
}

// Canonical rewrites the options so equivalent decodes compare equal:
// the strategy is expressed by its canonical display name (aliases and
// the legacy Mode spelling collapse onto it) and Mode is zeroed, since
// strategy() ignores it once Strategy is set. Decoding behaviour is
// unchanged — the serving layer canonicalizes before using Options as
// a cache or single-flight key so "pl", "prompt-lookup" and
// "PromptLookup" (or mode "ours" vs strategy "ours") share one entry.
// Unknown strategy names pass through untouched and fail at decode
// time as before.
func (o Options) Canonical() Options {
	name := o.Strategy
	if name == "" {
		name = o.Mode.String()
	}
	if s, ok := spec.Named(name); ok {
		o.Strategy = s.Name
		o.Mode = 0
		// TreeBudget canonicalizes too, so requests that decode
		// identically share one cache entry and one flight: linear
		// strategies ignore the field entirely (zeroed), and for tree
		// strategies an unset budget means exactly the decoder default
		// (see withDefaults).
		if _, isTree := s.Drafter.(spec.TreeDrafter); isTree {
			if o.TreeBudget <= 0 {
				o.TreeBudget = spec.DefaultTreeBudget
			}
		} else {
			o.TreeBudget = 0
		}
	}
	return o
}

// Result describes one completed generation.
type Result struct {
	// Tokens is the raw generated sequence (may contain [FRAG]).
	Tokens []int
	// CleanTokens is Tokens with special markers removed — the paper's
	// "cleaned code", and the length used in the speed formula (eq. 3).
	CleanTokens []int
	// Text is the decoded cleaned code.
	Text string
	// Steps is the number of forward passes (decoding steps).
	Steps int
	// SimulatedMS is the cost-model inference time.
	SimulatedMS float64
	// AcceptedPerStep records how many tokens each step emitted
	// (including the base token), before integrity truncation is
	// reported separately via TruncatedTokens.
	AcceptedPerStep []int
	// TruncatedTokens counts draft tokens discarded by the integrity
	// check over the whole decode.
	TruncatedTokens int
	// TreeNodes totals the draft-tree nodes proposed across all steps
	// (zero for linear strategies). With TreeBudget it yields the
	// node-budget utilization serving metrics report.
	TreeNodes int
	// TreeBudget totals the per-step node budget across the steps of a
	// tree-drafting decode (steps × Options.TreeBudget; zero for linear
	// strategies) — the utilization denominator.
	TreeBudget int
	// GrammarPruned totals the draft nodes the grammar oracle withheld
	// across the decode (zero for non-grammar strategies).
	GrammarPruned int
	// GrammarDraftTokens totals the draft nodes contributed by
	// synthesized grammar constructs across the decode.
	GrammarDraftTokens int
}

// TokensPerSecond returns the simulated generation speed for this
// result (eq. 3 numerator/denominator for a single output).
func (r *Result) TokensPerSecond() float64 {
	if r.SimulatedMS <= 0 {
		return 0
	}
	return float64(len(r.CleanTokens)) / (r.SimulatedMS / 1000)
}

// MeanAccepted returns the average tokens emitted per decoding step.
func (r *Result) MeanAccepted() float64 {
	if r.Steps == 0 {
		return 0
	}
	return float64(len(r.Tokens)) / float64(r.Steps)
}

// TreeUtilization returns the fraction of the draft-tree node budget
// actually proposed across the decode (0 for linear strategies).
func (r *Result) TreeUtilization() float64 {
	if r.TreeBudget == 0 {
		return 0
	}
	return float64(r.TreeNodes) / float64(r.TreeBudget)
}

// noRepeatN is the no-repeat-ngram window (in clean tokens): a token
// that would complete a clean n-gram already present in the generated
// region is demoted. RTL legitimately repeats long runs (case arms,
// port lists), so the window is wide; it exists to break exact line
// cycles, the canonical degeneracy of footgun samplers.
const noRepeatN = 10

// StepEvent describes one completed decoding step as it happens —
// the unit of streaming for the serving layer. Tokens are the ids
// actually appended to the sequence this step (after acceptance
// screening, integrity truncation and budget clipping); Text is their
// cleaned decoding (special markers stripped), which for ModeOurs is a
// run of complete syntactic fragments.
type StepEvent struct {
	// Step is the 1-based forward-pass index.
	Step int
	// Tokens are the raw ids emitted this step (may include [FRAG]).
	Tokens []int
	// Text is the cleaned text of this step's tokens.
	Text string
}

// StepFn observes decoding steps. It is called synchronously from the
// decoding loop, so a slow callback slows generation (the serving layer
// relies on this for flow control).
type StepFn func(StepEvent)

// Decoder generates Verilog from a trained model.
//
// A Decoder is stateless: all per-decode state (RNG, generation
// session, repetition tracker) lives on the stack of each call, so a
// single Decoder — or many Decoders sharing one Model — may decode
// concurrently, provided the Model is no longer being trained. An
// optional model.SessionCache (WithSessionCache) shares prompt-derived
// session state across decodes: the whole-prompt LRU reuses identical
// prompts, the prefix trie additionally forks mid-prompt sessions for
// prompts sharing a token prefix. Gen values are immutable after
// construction and a forked session equals a fresh build, so the cache
// changes nothing about outputs.
type Decoder struct {
	m        *model.Model
	genCache model.SessionCache
}

// repState tracks generated clean-token n-grams for the no-repeat rule.
type repState struct {
	clean []int
	seen  map[uint64]bool
}

func (r *repState) key(last []int) uint64 {
	h := uint64(14695981039346656037)
	for _, id := range last {
		h ^= uint64(id)
		h *= 1099511628211
	}
	return h
}

// wouldRepeat reports whether appending id creates a duplicate n-gram.
func (r *repState) wouldRepeat(id int) bool {
	if len(r.clean) < noRepeatN-1 {
		return false
	}
	gram := append(append([]int{}, r.clean[len(r.clean)-(noRepeatN-1):]...), id)
	return r.seen[r.key(gram)]
}

// push records a clean token.
func (r *repState) push(id int) {
	r.clean = append(r.clean, id)
	if len(r.clean) >= noRepeatN {
		r.seen[r.key(r.clean[len(r.clean)-noRepeatN:])] = true
	}
}

// NewDecoder wraps a model for decoding.
func NewDecoder(m *model.Model) *Decoder { return &Decoder{m: m} }

// WithGenCache attaches a whole-prompt session cache (legacy spelling
// of WithSessionCache, kept for embedders).
func (d *Decoder) WithGenCache(c *model.GenCache) *Decoder {
	if c == nil {
		return d.WithSessionCache(nil)
	}
	return d.WithSessionCache(c)
}

// WithSessionCache attaches a shared prompt-state cache: decodes of a
// prompt already seen (by any decoder sharing the cache) reuse its
// prepared generation session instead of re-deriving keyword seeds,
// copy sets and code-line marks — and with a model.TrieCache, decodes
// of a prompt sharing a token prefix with an earlier one fork the
// cached prefix session and prepare only the suffix. Returns the
// decoder for chaining.
func (d *Decoder) WithSessionCache(c model.SessionCache) *Decoder {
	d.genCache = c
	return d
}

// newGen prepares (or fetches from the shared cache) the generation
// session for a prompt.
func (d *Decoder) newGen(promptIDs []int) *model.Gen {
	if d.genCache != nil {
		return d.genCache.Gen(d.m, promptIDs)
	}
	return d.m.NewGen(promptIDs)
}

// Generate produces a completion for a natural-language description.
// The prompt is wrapped in the same Alpaca-style template used in
// training. It panics on an unknown Options.Strategy name — the only
// error the background context can produce — so the error-less
// convenience API cannot silently return an empty Result; use
// GenerateCtx to receive the error instead.
func (d *Decoder) Generate(desc string, opts Options) *Result {
	res, err := d.GenerateCtx(context.Background(), desc, opts)
	if err != nil {
		panic(err)
	}
	return res
}

// GenerateCtx is Generate with cancellation: if ctx is cancelled
// mid-decode the partial Result generated so far is returned together
// with the context's error.
func (d *Decoder) GenerateCtx(ctx context.Context, desc string, opts Options) (*Result, error) {
	return d.GenerateStream(ctx, desc, opts, nil)
}

// GenerateStream is GenerateCtx with per-step observation: onStep (if
// non-nil) is invoked after every decoding step with the tokens that
// step emitted. Serving-layer NDJSON streaming is built on this.
func (d *Decoder) GenerateStream(ctx context.Context, desc string, opts Options, onStep StepFn) (*Result, error) {
	promptIDs := model.CanonicalPromptIDs(d.m.Tokenizer(), desc)
	return d.generate(ctx, promptIDs, opts, onStep)
}

// GenerateFrom decodes starting from explicit prompt token ids. Like
// Generate it panics on an unknown Options.Strategy name; use
// GenerateFromCtx to receive the error instead.
func (d *Decoder) GenerateFrom(promptIDs []int, opts Options) *Result {
	res, err := d.generate(context.Background(), promptIDs, opts, nil)
	if err != nil {
		panic(err)
	}
	return res
}

// GenerateFromCtx is GenerateFrom with cancellation (see GenerateCtx).
func (d *Decoder) GenerateFromCtx(ctx context.Context, promptIDs []int, opts Options) (*Result, error) {
	return d.generate(ctx, promptIDs, opts, nil)
}

// GenerateStreamFrom is GenerateStream starting from explicit prompt
// token ids. The serving layer tokenizes each prompt once — for its
// canonical cache/single-flight key — and hands the ids straight to
// the decode, so the hot path never re-encodes the same text.
func (d *Decoder) GenerateStreamFrom(ctx context.Context, promptIDs []int, opts Options, onStep StepFn) (*Result, error) {
	return d.generate(ctx, promptIDs, opts, onStep)
}

// generate is the decoding loop shared by all entry points, expressed
// through the step-wise API: BeginDecode, Step to completion, Finish.
// The loop itself — strategy-agnostic drafting, acceptance screening,
// repetition guard, budget and stop conditions, streaming — lives in
// DecodeState.Step (stepwise.go), so the monolithic path and a
// scheduler driving steps one at a time are the same code and produce
// byte-identical output by construction. The context is polled once
// per forward pass: cancellation surfaces after at most one simulated
// step, with the partial Result intact.
func (d *Decoder) generate(ctx context.Context, promptIDs []int, opts Options, onStep StepFn) (*Result, error) {
	st, err := d.BeginDecode(ctx, promptIDs, opts, onStep)
	if err != nil {
		return &Result{}, err
	}
	for !st.Step() {
	}
	return st.Finish()
}

// sampleBase draws the base token (greedy at temperature 0), demoting
// candidates that would complete a repeated n-gram.
func (d *Decoder) sampleBase(dist model.Dist, opts Options, rng *rand.Rand, rep *repState) int {
	pick := func() int {
		if opts.Temperature <= 0 {
			return dist.Argmax()
		}
		return dist.Sample(opts.Temperature, rng.Float64())
	}
	id := pick()
	if tokenizer.IsSpecial(id) || !rep.wouldRepeat(id) {
		return id
	}
	// Walk the top candidates for the best non-repeating choice.
	for _, c := range dist.TopK(8) {
		if c == id {
			continue
		}
		if tokenizer.IsSpecial(c) || !rep.wouldRepeat(c) {
			return c
		}
	}
	return id // everything repeats: let it through rather than deadlock
}

// acceptDrafts runs a linear strategy's draft/verify exchange for one
// step as the width-1 special case of the tree walk: each draft
// position's candidates become the children of the single frontier
// node, the verifier picks at most one of them against the base
// model's posterior with all previously accepted tokens in context —
// the analogue of Medusa's verification pass — and the accepted chain
// is the (trivially deepest) root path. The walk ends at the first
// position the verifier rejects outright (the "longest accepted prefix
// among all candidates"). Returned tokens exclude the base token.
func (d *Decoder) acceptDrafts(gen *model.Gen, seq, prefix []int, fw model.Forward, strat spec.Strategy, opts Options) []int {
	src := strat.Drafter.BeginStep(spec.DraftCtx{
		Gen:     gen,
		Seq:     seq,
		Prefix:  prefix,
		Forward: fw,
		TopK:    opts.TopK,
	})
	if src == nil {
		return nil
	}
	params := spec.VerifyParams{Epsilon: opts.Epsilon, Delta: opts.Delta}
	// The accepted chain is the whole tree here: candidates the
	// verifier rejects never become nodes (they would be dead weight on
	// the serving hot path), so each position contributes at most one
	// Add — the width-1 frontier.
	t := tree.New(0) // the chain's length is bounded by the drafter's run
	cur := tree.Root
	// ctx is the hypothetical sequence including accepted tokens.
	ctx := append(append([]int(nil), seq...), prefix...)
	for i := 0; ; i++ {
		cands := src.Candidates(i)
		if len(cands) == 0 {
			break
		}
		// Verification distribution: the base model's posterior at
		// this position given everything accepted so far.
		ver := gen.BaseDist(ctx)
		choice := strat.Verifier.Accept(ver, cands, params)
		if choice < 0 {
			break
		}
		cur, _ = t.Add(cur, choice, tree.OriginLinear)
		ctx = append(ctx, choice)
		if choice == tokenizer.EosID {
			break
		}
	}
	return t.PathTokens(cur, nil)
}

// acceptTree runs a tree strategy's draft/verify exchange for one
// step: the drafter proposes a branching candidate tree, and one
// verification sweep scores it — for every node whose ancestry
// survived, the children are screened (best-first, each on its own)
// against the base model's posterior conditioned on the root-to-parent
// path, exactly the path each candidate claims to extend. A rejection
// prunes one subtree instead of killing the step, which is the whole
// point of drafting a tree. Drafters with position-conditioned
// candidates (spec.ChainExtender: Medusa heads) then grow a chain tail
// below every surviving leaf — the same adaptive longest-prefix walk
// linear drafting runs once, here run once per survivor, so the walk
// the linear loop would have taken is always among the tree's paths.
//
// The winning path maximizes the verifier's POST-Finalize kept length
// (first-discovered on ties): for plain verifiers that is simply the
// deepest accepted root path; under the [FRAG] integrity wrapper a
// deep path ending mid-fragment loses to a shallower one ending on a
// fragment boundary, so tree search composes with the paper's §III-B
// check instead of fighting it.
//
// On real hardware this is one batched forward pass over all tree
// positions (tree attention); here rejected subtrees short-circuit,
// which changes nothing about outputs — their scores could only be
// discarded. The simulated cost model charges the step exactly like
// its linear counterpart. Also returns the number of draft nodes
// proposed, for the budget-utilization metrics, and the grammar draft
// stats when the drafter reports them (spec.StatsTreeDrafter).
func (d *Decoder) acceptTree(gen *model.Gen, seq, prefix []int, fw model.Forward, strat spec.Strategy, td spec.TreeDrafter, opts Options) ([]int, int, spec.DraftStats) {
	dc := spec.DraftCtx{
		Gen:     gen,
		Seq:     seq,
		Prefix:  prefix,
		Forward: fw,
		TopK:    opts.TopK,
	}
	var gs spec.DraftStats
	var t *tree.Tree
	if std, ok := td.(spec.StatsTreeDrafter); ok {
		t, gs = std.BuildTreeStats(dc, opts.TreeBudget)
	} else {
		t = td.BuildTree(dc, opts.TreeBudget)
	}
	if t == nil || t.DraftNodes() == 0 {
		return nil, 0, gs
	}
	params := spec.VerifyParams{Epsilon: opts.Epsilon, Delta: opts.Delta}
	ctx := append(append([]int(nil), seq...), prefix...)

	// Sweep the static tree: accepted nodes in discovery order, leaves
	// (accepted nodes with no accepted children) remembered for the
	// chain tails.
	accepted := []int{}
	var leaves []int
	queue := []int{tree.Root}
	var kids, path []int
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		kept := 0
		if n == tree.Root || t.Node(n).Token != tokenizer.EosID {
			kids = t.Children(n, kids[:0])
		} else {
			kids = kids[:0] // nothing extends past <eos>
		}
		if len(kids) > 0 {
			// One verification distribution per surviving parent: the
			// base posterior after the path its children would extend.
			path = t.PathTokens(n, path[:0])
			ver := gen.BaseDist(append(ctx, path...))
			for _, c := range kids {
				tok := t.Node(c).Token
				if strat.Verifier.Accept(ver, []int{tok}, params) < 0 {
					continue
				}
				kept++
				accepted = append(accepted, c)
				queue = append(queue, c)
			}
		}
		if n != tree.Root && kept == 0 {
			leaves = append(leaves, n)
		}
	}

	// Grow the adaptive chain tails below every surviving leaf.
	if ext, ok := td.(spec.ChainExtender); ok {
		for _, leaf := range leaves {
			accepted = append(accepted, d.extendChain(gen, t, leaf, ctx, ext, dc, strat, params)...)
		}
	}

	// Pick the path whose finalized run keeps the most tokens.
	best := tree.Root
	bestKept := finalizedLen(strat.Verifier, prefix, nil)
	for _, n := range accepted {
		path = t.PathTokens(n, path[:0])
		if kept := finalizedLen(strat.Verifier, prefix, path); kept > bestKept {
			best, bestKept = n, kept
		}
	}
	return t.PathTokens(best, nil), t.DraftNodes(), gs
}

// extendChain continues drafting below an accepted tree leaf with the
// extender's position-conditioned candidates — the width-1 adaptive
// walk of the linear loop, rooted at the leaf's path. New nodes land
// in the tree (budget permitting) so the node accounting stays honest;
// the accepted chain node ids are returned for path selection.
func (d *Decoder) extendChain(gen *model.Gen, t *tree.Tree, leaf int, ctx []int, ext spec.ChainExtender, dc spec.DraftCtx, strat spec.Strategy, params spec.VerifyParams) []int {
	if t.Node(leaf).Token == tokenizer.EosID {
		return nil
	}
	cur := leaf
	walk := append([]int(nil), ctx...)
	walk = t.PathTokens(cur, walk)
	var out []int
	for depth := t.Depth(cur); ; depth++ {
		cands := ext.Extend(dc, depth)
		if len(cands) == 0 {
			return out
		}
		ver := gen.BaseDist(walk)
		choice := strat.Verifier.Accept(ver, cands, params)
		if choice < 0 {
			return out
		}
		id, _ := t.Add(cur, choice, tree.OriginHead)
		if id < 0 {
			return out // budget exhausted
		}
		cur = id
		out = append(out, id)
		walk = append(walk, choice)
		if choice == tokenizer.EosID {
			return out
		}
	}
}

// finalizedLen probes how many tokens the verifier's Finalize keeps of
// prefix+path — the tree walk's path-selection score.
func finalizedLen(v spec.Verifier, prefix, path []int) int {
	run := make([]int, 0, len(prefix)+len(path))
	run = append(run, prefix...)
	run = append(run, path...)
	kept, _ := v.Finalize(run)
	return len(kept)
}

// stepCostMS is the simulated cost of one forward pass under the given
// strategy: the backbone plus the drafter's extra cost (all heads for
// Medusa-style drafting, nothing for NTP or self-speculative lookup).
// Exposed for the cost-model tests.
func (d *Decoder) stepCostMS(strat spec.Strategy) float64 {
	cfg := d.m.Config()
	return cfg.StepLatencyMS + strat.Drafter.ExtraCostMS(cfg, d.m.NumHeads())
}

// stripSpecials removes all reserved special tokens from ids.
func stripSpecials(ids []int) []int {
	out := make([]int, 0, len(ids))
	for _, id := range ids {
		if tokenizer.IsSpecial(id) {
			continue
		}
		out = append(out, id)
	}
	return out
}
