package core

import (
	"strings"
	"testing"

	"repro/internal/core/spec"
	"repro/internal/model"
)

// TestStrategyListing pins the -list-strategies surface: every
// registered canonical name appears, so the table can never drift from
// what ResolveStrategy accepts.
func TestStrategyListing(t *testing.T) {
	out := StrategyListing()
	for _, name := range spec.Names() {
		if !strings.Contains(out, name) {
			t.Errorf("listing missing strategy %q:\n%s", name, out)
		}
	}
	for _, alias := range []string{"lt", "mt", "pl"} {
		if !strings.Contains(out, alias) {
			t.Errorf("listing missing alias %q", alias)
		}
	}
}

// TestTreeStrategiesDecode smoke-tests every registered tree strategy
// end to end through the decoding loop: decodes complete, the
// node-budget accounting is populated and consistent, and linear
// strategies report no tree work at all.
func TestTreeStrategiesDecode(t *testing.T) {
	schemes := map[string]model.Scheme{
		"medusa-tree":         model.SchemeMedusa,
		"lookup-tree":         model.SchemeNTP,
		"ours-tree":           model.SchemeOurs,
		"grammar-tree":        model.SchemeOurs,
		"grammar-lookup-tree": model.SchemeNTP,
	}
	for strategy, scheme := range schemes {
		m := trained(t, scheme)
		d := NewDecoder(m)
		res := d.Generate(trainExamples[0].Prompt, Options{Strategy: strategy})
		if len(res.CleanTokens) == 0 {
			t.Fatalf("%s: empty decode", strategy)
		}
		if res.TreeBudget != res.Steps*spec.DefaultTreeBudget {
			t.Fatalf("%s: tree budget %d over %d steps, want %d",
				strategy, res.TreeBudget, res.Steps, res.Steps*spec.DefaultTreeBudget)
		}
		if res.TreeNodes <= 0 || res.TreeNodes > res.TreeBudget {
			t.Fatalf("%s: tree nodes %d outside (0, %d]", strategy, res.TreeNodes, res.TreeBudget)
		}
		if u := res.TreeUtilization(); u <= 0 || u > 1 {
			t.Fatalf("%s: utilization %f outside (0, 1]", strategy, u)
		}
		// A tighter budget must be honoured per step.
		tight := d.Generate(trainExamples[0].Prompt, Options{Strategy: strategy, TreeBudget: 3})
		if tight.TreeNodes > 3*tight.Steps {
			t.Fatalf("%s: budget 3 decode proposed %d nodes over %d steps",
				strategy, tight.TreeNodes, tight.Steps)
		}
	}
	// Linear strategies report no tree accounting.
	m := trained(t, model.SchemeOurs)
	res := NewDecoder(m).Generate(trainExamples[0].Prompt, Options{Strategy: "ours"})
	if res.TreeNodes != 0 || res.TreeBudget != 0 || res.TreeUtilization() != 0 {
		t.Fatalf("linear decode reported tree work: nodes=%d budget=%d", res.TreeNodes, res.TreeBudget)
	}
}

// TestLookupTreeGreedyLossless pins the subsystem's quality claim at
// the unit level: greedy decodes through lookup-tree emit the same
// byte stream as linear prompt-lookup and as plain NTP — the tree only
// changes how many forward passes the stream costs. (The experiments
// harness proves the same over the full differential workload.)
func TestLookupTreeGreedyLossless(t *testing.T) {
	m := trained(t, model.SchemeNTP)
	d := NewDecoder(m)
	for pi, ex := range trainExamples {
		ntp := d.Generate(ex.Prompt, Options{Strategy: "ntp"})
		pl := d.Generate(ex.Prompt, Options{Strategy: "prompt-lookup"})
		lt := d.Generate(ex.Prompt, Options{Strategy: "lookup-tree"})
		if lt.Text != ntp.Text || pl.Text != ntp.Text {
			t.Fatalf("prompt %d: greedy byte streams diverged\n  ntp: %q\n   pl: %q\n   lt: %q",
				pi, ntp.Text, pl.Text, lt.Text)
		}
		if len(lt.Tokens) != len(ntp.Tokens) {
			t.Fatalf("prompt %d: lookup-tree emitted %d raw tokens, ntp %d",
				pi, len(lt.Tokens), len(ntp.Tokens))
		}
		for i := range ntp.Tokens {
			if lt.Tokens[i] != ntp.Tokens[i] {
				t.Fatalf("prompt %d: raw token %d is %d, want %d", pi, i, lt.Tokens[i], ntp.Tokens[i])
			}
		}
		if lt.Steps > pl.Steps {
			t.Fatalf("prompt %d: lookup-tree took %d steps, linear lookup %d — the tree may never cost steps",
				pi, lt.Steps, pl.Steps)
		}
	}
}

// TestGrammarLookupTreeGreedyLossless extends the losslessness pin to
// the grammar hybrid: oracle pruning and construct chains change what
// gets drafted, never what greedy-exact screening emits — the byte
// stream stays identical to NTP's.
func TestGrammarLookupTreeGreedyLossless(t *testing.T) {
	m := trained(t, model.SchemeNTP)
	d := NewDecoder(m)
	for pi, ex := range trainExamples {
		ntp := d.Generate(ex.Prompt, Options{Strategy: "ntp"})
		gl := d.Generate(ex.Prompt, Options{Strategy: "grammar-lookup-tree"})
		if gl.Text != ntp.Text {
			t.Fatalf("prompt %d: greedy byte streams diverged\n  ntp: %q\n  glt: %q", pi, ntp.Text, gl.Text)
		}
		if len(gl.Tokens) != len(ntp.Tokens) {
			t.Fatalf("prompt %d: grammar-lookup-tree emitted %d raw tokens, ntp %d",
				pi, len(gl.Tokens), len(ntp.Tokens))
		}
	}
}

// TestGrammarDecodeStatsAndDeterminism pins the grammar accounting and
// the property the differential gate relies on: the oracle is a pure
// function of the decoded text, so repeated decodes are byte-identical
// and report identical stats; non-grammar strategies report none.
func TestGrammarDecodeStatsAndDeterminism(t *testing.T) {
	m := trained(t, model.SchemeOurs)
	d := NewDecoder(m)
	a := d.Generate(trainExamples[0].Prompt, Options{Strategy: "grammar-tree"})
	b := d.Generate(trainExamples[0].Prompt, Options{Strategy: "grammar-tree"})
	if a.Text != b.Text {
		t.Fatalf("grammar-tree decode not deterministic:\n a: %q\n b: %q", a.Text, b.Text)
	}
	if a.GrammarPruned != b.GrammarPruned || a.GrammarDraftTokens != b.GrammarDraftTokens {
		t.Fatalf("grammar stats not deterministic: (%d,%d) vs (%d,%d)",
			a.GrammarPruned, a.GrammarDraftTokens, b.GrammarPruned, b.GrammarDraftTokens)
	}
	if a.GrammarPruned < 0 || a.GrammarDraftTokens < 0 {
		t.Fatalf("negative grammar stats: pruned=%d constructs=%d", a.GrammarPruned, a.GrammarDraftTokens)
	}
	t.Logf("grammar-tree: pruned=%d construct-tokens=%d over %d steps",
		a.GrammarPruned, a.GrammarDraftTokens, a.Steps)
	ours := d.Generate(trainExamples[0].Prompt, Options{Strategy: "ours-tree"})
	if ours.GrammarPruned != 0 || ours.GrammarDraftTokens != 0 {
		t.Fatalf("ours-tree reported grammar stats: pruned=%d constructs=%d",
			ours.GrammarPruned, ours.GrammarDraftTokens)
	}
}

// TestGrammarAcceptsAtLeastOursTree pins the headline mechanism at the
// unit level: grammar constraint (pruning + deeper lookup + construct
// chains) must not lower mean accepted length versus the plain hybrid
// tree on the shared fixtures. (The strict improvement on the bench
// corpus is pinned by experiments.TestGrammarBench.)
func TestGrammarAcceptsAtLeastOursTree(t *testing.T) {
	m := trained(t, model.SchemeOurs)
	d := NewDecoder(m)
	var oursSteps, oursTokens, gSteps, gTokens int
	for _, ex := range trainExamples {
		ours := d.Generate(ex.Prompt, Options{Strategy: "ours-tree"})
		g := d.Generate(ex.Prompt, Options{Strategy: "grammar-tree"})
		oursSteps += ours.Steps
		oursTokens += len(ours.Tokens)
		gSteps += g.Steps
		gTokens += len(g.Tokens)
	}
	oursMean := float64(oursTokens) / float64(oursSteps)
	gMean := float64(gTokens) / float64(gSteps)
	if gMean < oursMean {
		t.Fatalf("grammar-tree mean accepted %.3f below ours-tree %.3f", gMean, oursMean)
	}
	t.Logf("mean accepted: ours-tree %.3f, grammar-tree %.3f", oursMean, gMean)
}

// TestTreeAcceptsAtLeastLinear pins the mechanism at the unit level:
// over the shared fixtures, tree-structured Medusa drafting accepts at
// least as many tokens per step as linear Medusa with the same heads,
// verifier and seeds — the deepest accepted root path can never be
// shorter than the greedy chain when the tree contains it, and extra
// branches only add opportunities. (The strict improvement on the eval
// suite is pinned by experiments.TestTreeBench.)
func TestTreeAcceptsAtLeastLinear(t *testing.T) {
	m := trained(t, model.SchemeMedusa)
	d := NewDecoder(m)
	var linSteps, linTokens, treeSteps, treeTokens int
	for _, ex := range trainExamples {
		lin := d.Generate(ex.Prompt, Options{Strategy: "medusa"})
		tr := d.Generate(ex.Prompt, Options{Strategy: "medusa-tree"})
		linSteps += lin.Steps
		linTokens += len(lin.Tokens)
		treeSteps += tr.Steps
		treeTokens += len(tr.Tokens)
	}
	linMean := float64(linTokens) / float64(linSteps)
	treeMean := float64(treeTokens) / float64(treeSteps)
	if treeMean < linMean {
		t.Fatalf("medusa-tree mean accepted %.3f below linear %.3f", treeMean, linMean)
	}
	t.Logf("mean accepted: linear %.3f, tree %.3f", linMean, treeMean)
}
