package core

import (
	"context"
	"math/rand"
	"strings"
	"time"

	"repro/internal/core/spec"
	"repro/internal/model"
	"repro/internal/tokenizer"
	"repro/internal/trace"
)

// This file is the step-wise decode API: the same loop generate() runs
// internally, exposed one verification sweep at a time so an external
// scheduler can interleave many decodes — step every in-flight request
// once, retire the finished, preempt the over-quantum — instead of
// dedicating a goroutine to each from start to finish. All loop state
// lives in the DecodeState, so a decode can be checkpointed after any
// Step, parked indefinitely, and resumed later with byte-identical
// output: the sequence of (Forward, sample, accept, finalize)
// operations is exactly the one the monolithic loop would have run,
// regardless of where the checkpoints fall. generate() itself is just
// BeginDecode + Step-to-completion + Finish, which makes that identity
// true by construction rather than by test alone (the preemption
// differential gate in internal/experiments pins it anyway).

// DecodeState is one resumable in-flight decode. Create with
// Decoder.BeginDecode, advance with Step until it reports completion,
// collect with Finish. Between steps the state may be parked (Park),
// its session pages dropped (Drop) and re-acquired (Resume) — none of
// which changes the tokens it will produce. A DecodeState is not safe
// for concurrent use; the scheduler steps each state from one
// goroutine at a time.
type DecodeState struct {
	d      *Decoder
	ctx    context.Context
	opts   Options
	strat  spec.Strategy
	onStep StepFn
	rng    *rand.Rand

	promptIDs []int
	gen       *model.Gen
	lease     *model.SessionLease

	seq      []int
	res      *Result
	stepCost float64
	maxLen   int
	tail     string
	rep      *repState

	done     bool
	finished bool
	parked   bool
	err      error

	// Tracing state: nil when the request context carries no trace, in
	// which case every use below is a single nil check. Draft/verify
	// time is accumulated locally per sweep and folded into the
	// tracer's phase sums once, at Finish.
	tr       *trace.Trace
	span     *trace.Span
	draftDur time.Duration
	verifDur time.Duration
}

// BeginDecode prepares a resumable decode from explicit prompt token
// ids. The only error is an unknown Options.Strategy name — the same
// contract as generate. The prompt session is acquired immediately
// (leased, when the session cache supports page pinning), so the first
// Step pays no preparation cost.
func (d *Decoder) BeginDecode(ctx context.Context, promptIDs []int, opts Options, onStep StepFn) (*DecodeState, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.withDefaults(d.m)
	strat, err := opts.strategy()
	if err != nil {
		return nil, err
	}
	s := &DecodeState{
		d:         d,
		ctx:       ctx,
		opts:      opts,
		strat:     strat,
		onStep:    onStep,
		rng:       rand.New(rand.NewSource(opts.Seed)),
		promptIDs: promptIDs,
		seq:       append([]int(nil), promptIDs...),
		res:       &Result{},
		stepCost:  d.stepCostMS(strat),
		rep:       &repState{seen: map[uint64]bool{}},
	}
	if tr := trace.FromContext(ctx); tr != nil {
		s.tr = tr
		s.span = tr.Start(trace.SpanFromContext(ctx), trace.KindDecode, opts.Strategy)
		prep := tr.Start(s.span, trace.KindSessionPrep, "")
		s.gen, s.lease = d.acquireGen(promptIDs)
		prep.SetAttrInt("prompt_tokens", int64(len(promptIDs)))
		if pc, ok := d.genCache.(interface{ CachedPrefixLen([]int) int }); ok {
			prep.SetAttrInt("trie_hit_depth", int64(pc.CachedPrefixLen(promptIDs)))
		}
		prep.End()
	} else {
		s.gen, s.lease = d.acquireGen(promptIDs)
	}
	s.maxLen = len(promptIDs) + opts.MaxNewTokens
	if cfgMax := d.m.Config().MaxTokens; s.maxLen > cfgMax+len(promptIDs) {
		s.maxLen = cfgMax + len(promptIDs)
	}
	return s, nil
}

// budgetLeft reports whether the decode may emit more tokens.
func (s *DecodeState) budgetLeft() bool {
	return len(s.seq) < s.maxLen && len(s.res.Tokens) < s.opts.MaxNewTokens
}

// Step runs one verification sweep — one simulated forward pass with
// drafting, acceptance screening and finalization — and reports
// whether the decode is complete (end token, budget exhausted, or
// context cancelled). After Step returns true, Finish collects the
// Result; further Steps are no-ops.
func (s *DecodeState) Step() bool {
	if s.done || s.finished || !s.budgetLeft() {
		return true
	}
	if err := s.ctx.Err(); err != nil {
		s.err = err
		s.done = true
		return true
	}
	if s.gen == nil {
		// Dropped pages and stepped without an explicit Resume:
		// re-acquire here so the call order cannot corrupt a decode.
		s.gen, s.lease = s.d.acquireGen(s.promptIDs)
	}
	d, gen, opts, res, tk := s.d, s.gen, s.opts, s.res, s.d.m.Tokenizer()

	var sweep *trace.Span
	var phaseT0 time.Time
	if s.tr != nil {
		sweep = s.tr.Start(s.span, trace.KindSweep, "")
		phaseT0 = time.Now()
	}

	// Head distributions cost work to build; strategies that do not
	// draft from them (NTP, prompt lookup) get a base-only pass.
	var fw model.Forward
	if s.strat.Drafter.NeedsHeads() {
		fw = gen.Forward(s.seq)
	} else {
		fw = model.Forward{Base: gen.BaseDist(s.seq)}
	}
	res.Steps++
	res.SimulatedMS += s.stepCost

	var verif time.Duration
	if sweep != nil {
		verif = time.Since(phaseT0)
		s.verifDur += verif
		phaseT0 = time.Now()
	}

	// The base model's own prediction is always kept.
	base := d.sampleBase(fw.Base, opts, s.rng, s.rep)
	accepted := []int{base}

	prunedBefore := res.GrammarPruned
	if base != tokenizer.EosID {
		if td, ok := s.strat.Drafter.(spec.TreeDrafter); ok {
			drafts, nodes, gs := d.acceptTree(gen, s.seq, accepted, fw, s.strat, td, opts)
			res.TreeNodes += nodes
			res.TreeBudget += opts.TreeBudget
			res.GrammarPruned += gs.PrunedNodes
			res.GrammarDraftTokens += gs.GrammarTokens
			accepted = append(accepted, drafts...)
		} else {
			accepted = append(accepted, d.acceptDrafts(gen, s.seq, accepted, fw, s.strat, opts)...)
		}
	}
	if sweep != nil {
		draft := time.Since(phaseT0)
		s.draftDur += draft
		sweep.SetAttrInt("verify_us", verif.Microseconds())
		sweep.SetAttrInt("draft_us", draft.Microseconds())
		if pruned := res.GrammarPruned - prunedBefore; pruned > 0 {
			sweep.SetAttrInt("grammar_pruned", int64(pruned))
		}
	}
	// Drafts that would extend a repeated n-gram are cut too.
	cleanProbe := append([]int(nil), s.rep.clean...)
	for i, id := range accepted {
		if tokenizer.IsSpecial(id) {
			continue
		}
		probe := &repState{clean: cleanProbe, seen: s.rep.seen}
		if i > 0 && probe.wouldRepeat(id) {
			accepted = accepted[:i]
			break
		}
		cleanProbe = append(cleanProbe, id)
	}

	// Finalize the accepted run (the [FRAG] integrity truncation of
	// paper §III-B, when the verifier carries it).
	kept, truncated := s.strat.Verifier.Finalize(accepted)
	res.TruncatedTokens += truncated
	accepted = kept

	emittedAt := len(res.Tokens)
	for _, id := range accepted {
		if id == tokenizer.EosID {
			s.done = true
			break
		}
		s.seq = append(s.seq, id)
		res.Tokens = append(res.Tokens, id)
		if !tokenizer.IsSpecial(id) {
			s.rep.push(id)
			s.tail += tk.Token(id)
			if len(s.tail) > 32 {
				s.tail = s.tail[len(s.tail)-32:]
			}
			// Generation is one module per prompt: stop after
			// endmodule (the trained <eos> usually follows, but a
			// derailed tail must not burn the token budget).
			if strings.Contains(s.tail, "endmodule") {
				s.done = true
				break
			}
		}
		if len(res.Tokens) >= opts.MaxNewTokens {
			break
		}
	}
	res.AcceptedPerStep = append(res.AcceptedPerStep, len(accepted))
	if sweep != nil {
		sweep.SetAttrInt("accepted", int64(len(accepted)))
		sweep.End()
	}
	if s.onStep != nil {
		step := res.Tokens[emittedAt:]
		s.onStep(StepEvent{Step: res.Steps, Tokens: step, Text: tk.DecodeClean(step)})
	}
	return s.done || !s.budgetLeft()
}

// Finish seals the decode and returns its Result — partial, with the
// context's error, when a Step observed cancellation. The session
// lease is released; Finish is idempotent.
func (s *DecodeState) Finish() (*Result, error) {
	if !s.finished {
		s.finished = true
		s.res.CleanTokens = stripSpecials(s.res.Tokens)
		s.res.Text = s.d.m.Tokenizer().DecodeClean(s.res.Tokens)
		s.lease.Release()
		s.lease = nil
		if s.span != nil {
			s.span.SetAttrInt("sweeps", int64(s.res.Steps))
			s.span.SetAttrInt("tokens", int64(len(s.res.Tokens)))
			if s.res.GrammarPruned > 0 {
				s.span.SetAttrInt("grammar_pruned", int64(s.res.GrammarPruned))
			}
			if s.err != nil {
				s.span.SetAttr("error", s.err.Error())
			}
			s.span.End()
			s.tr.AddPhase(trace.KindDraft, s.draftDur)
			s.tr.AddPhase(trace.KindVerify, s.verifDur)
		}
	}
	return s.res, s.err
}

// Park checkpoints the decode between sweeps: the scheduler's
// preemption. The session pages stay leased (pinned in the trie) so a
// later Resume is free — preempt = park the page set.
func (s *DecodeState) Park() { s.parked = true }

// Parked reports whether the decode is currently parked.
func (s *DecodeState) Parked() bool { return s.parked }

// Drop releases a parked decode's session pages — the deep form of
// preemption, for memory pressure. The decode remains resumable: the
// next Resume (or Step) re-acquires an equivalent session from the
// cache, rebuilding at most the evicted suffix. Outputs are unchanged
// either way, because cached, forked and fresh sessions are
// interchangeable by construction.
func (s *DecodeState) Drop() {
	s.lease.Release()
	s.lease = nil
	s.gen = nil
}

// Resume returns a parked decode to runnable, re-acquiring session
// pages if they were dropped.
func (s *DecodeState) Resume() {
	s.parked = false
	if s.gen == nil && !s.finished {
		s.gen, s.lease = s.d.acquireGen(s.promptIDs)
	}
}

// TraceSpan exposes the decode's span (nil when untraced) so the
// scheduler can nest park/resume spans under it.
func (s *DecodeState) TraceSpan() *trace.Span { return s.span }

// Steps reports the forward passes taken so far (scheduler quantum
// accounting).
func (s *DecodeState) Steps() int { return s.res.Steps }

// Tokens reports the raw tokens emitted so far.
func (s *DecodeState) Tokens() int { return len(s.res.Tokens) }

// LeasedPages reports how many session pages the decode currently
// holds pinned (zero on non-leasing caches).
func (s *DecodeState) LeasedPages() int { return s.lease.Pages() }

// acquireGen fetches the prompt session, holding a page lease when the
// session cache supports pinning (the trie). Non-leasing caches and
// the cacheless path return a nil lease — safe to Release regardless.
func (d *Decoder) acquireGen(promptIDs []int) (*model.Gen, *model.SessionLease) {
	if lc, ok := d.genCache.(model.LeasingCache); ok {
		l := lc.Acquire(d.m, promptIDs)
		return l.Gen(), l
	}
	return d.newGen(promptIDs), nil
}
