package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/model"
)

// stepwiseDecode drives the step API to completion, optionally parking
// (and sometimes dropping pages) at rng-chosen step boundaries — the
// exact call sequence the continuous scheduler issues around a
// preemption.
func stepwiseDecode(t *testing.T, d *Decoder, promptIDs []int, opts Options, rng *rand.Rand) *Result {
	t.Helper()
	st, err := d.BeginDecode(context.Background(), promptIDs, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	for !st.Step() {
		if rng != nil && rng.Intn(3) == 0 {
			st.Park()
			if !st.Parked() {
				t.Fatal("Park did not park")
			}
			if rng.Intn(2) == 0 {
				st.Drop()
			}
			st.Resume()
		}
	}
	res, err := st.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestStepwiseMatchesGenerate: driving the step API one sweep at a
// time — with preemptions, page drops and resumes scattered at random
// boundaries — must be byte-identical to the monolithic generate path,
// for every strategy, on a shared trie cache.
func TestStepwiseMatchesGenerate(t *testing.T) {
	m := trained(t, model.SchemeOurs)
	cache := model.NewTrieCache(0)
	d := NewDecoder(m).WithSessionCache(cache)
	rng := rand.New(rand.NewSource(99))
	for _, strat := range []string{"ntp", "medusa", "ours", "prompt-lookup", "ours-tree"} {
		for seed := int64(0); seed < 3; seed++ {
			opts := Options{Strategy: strat, MaxNewTokens: 48, Seed: seed}
			want, err := d.GenerateCtx(context.Background(), trainExamples[1].Prompt, opts)
			if err != nil {
				t.Fatal(err)
			}
			ids := model.CanonicalPromptIDs(m.Tokenizer(), trainExamples[1].Prompt)
			got := stepwiseDecode(t, d, ids, opts, rng)
			if !reflect.DeepEqual(got.Tokens, want.Tokens) || got.Text != want.Text || got.Steps != want.Steps {
				t.Fatalf("%s seed %d: step-wise decode diverged from generate", strat, seed)
			}
		}
	}
	if st := cache.SessionStats(); st.PinnedPages != 0 || st.PinnedBytes != 0 {
		t.Fatalf("leases leaked after Finish: %+v", st)
	}
}

// TestStepwiseCancellation: a cancelled context must surface on the
// next Step with the partial result intact — the contract the
// scheduler's retire path relies on.
func TestStepwiseCancellation(t *testing.T) {
	m := trained(t, model.SchemeNTP)
	d := NewDecoder(m)
	ids := model.CanonicalPromptIDs(m.Tokenizer(), trainExamples[0].Prompt)
	ctx, cancel := context.WithCancel(context.Background())
	st, err := d.BeginDecode(ctx, ids, Options{Strategy: "ntp", MaxNewTokens: 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	st.Step()
	st.Step()
	cancel()
	if !st.Step() {
		t.Fatal("Step after cancellation did not report completion")
	}
	res, err := st.Finish()
	if err != context.Canceled {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if res.Steps != 2 || len(res.Tokens) == 0 || res.Text == "" {
		t.Fatalf("partial result not preserved: steps=%d tokens=%d", res.Steps, len(res.Tokens))
	}
}

// TestStepwiseUnknownStrategy: BeginDecode owns the only error.
func TestStepwiseUnknownStrategy(t *testing.T) {
	m := trained(t, model.SchemeNTP)
	d := NewDecoder(m)
	if _, err := d.BeginDecode(context.Background(), []int{1}, Options{Strategy: "nope"}, nil); err == nil {
		t.Fatal("unknown strategy did not error")
	}
}

// TestStepwiseLeasesPages: on a leasing cache a decode holds its pages
// pinned across a park, frees them on Drop, and re-pins on Resume.
func TestStepwiseLeasesPages(t *testing.T) {
	m := trained(t, model.SchemeOurs)
	cache := model.NewTrieCache(0)
	d := NewDecoder(m).WithSessionCache(cache)
	ids := model.CanonicalPromptIDs(m.Tokenizer(), trainExamples[2].Prompt)
	st, err := d.BeginDecode(context.Background(), ids, Options{Strategy: "ours", MaxNewTokens: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.LeasedPages() < 1 {
		t.Fatal("decode holds no page lease on a trie cache")
	}
	st.Park()
	if cache.SessionStats().PinnedPages < 1 {
		t.Fatal("parked decode dropped its pins")
	}
	st.Drop()
	if got := cache.SessionStats().PinnedPages; got != 0 {
		t.Fatalf("pinned pages after Drop = %d, want 0", got)
	}
	st.Resume()
	if st.LeasedPages() < 1 {
		t.Fatal("Resume did not re-acquire pages")
	}
	for !st.Step() {
	}
	if _, err := st.Finish(); err != nil {
		t.Fatal(err)
	}
	if got := cache.SessionStats().PinnedPages; got != 0 {
		t.Fatalf("pinned pages after Finish = %d, want 0", got)
	}
}
