package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/tokenizer"
	"repro/internal/verilog"
)

var trainExamples = []model.Example{
	{
		Prompt: "Create a 4-bit data register with clock clk.",
		Code: `module data_register (
    input clk,
    input [3:0] data_in,
    output reg [3:0] data_out
);
    always @(posedge clk) begin
        data_out <= data_in;
    end
endmodule
`,
	},
	{
		Prompt: "Create an 8-bit counter with synchronous reset.",
		Code: `module counter (
    input clk,
    input rst,
    output reg [7:0] q
);
    always @(posedge clk) begin
        if (rst) q <= 8'd0;
        else q <= q + 8'd1;
    end
endmodule
`,
	},
	{
		Prompt: "Create a 2-to-1 multiplexer.",
		Code: `module mux2to1 (
    input a,
    input b,
    input sel,
    output y
);
    assign y = sel ? b : a;
endmodule
`,
	},
}

func corpusText() []string {
	var out []string
	for _, ex := range trainExamples {
		out = append(out, model.FormatPrompt(ex.Prompt)+ex.Code)
	}
	return out
}

func smallCfg() model.Config {
	cfg := model.CodeLlamaSim()
	cfg.VocabSize = 500
	return cfg
}

func trained(t *testing.T, scheme model.Scheme) *model.Model {
	t.Helper()
	tk := tokenizer.Train(corpusText(), 500)
	return model.Train(tk, smallCfg(), scheme, trainExamples)
}

func TestNTPOneTokenPerStep(t *testing.T) {
	m := trained(t, model.SchemeNTP)
	d := NewDecoder(m)
	res := d.Generate(trainExamples[0].Prompt, Options{Mode: ModeNTP})
	if res.Steps != len(res.Tokens) && res.Steps != len(res.Tokens)+1 {
		// +1 allows the final step that produced only <eos>.
		t.Fatalf("NTP steps=%d tokens=%d", res.Steps, len(res.Tokens))
	}
	for _, n := range res.AcceptedPerStep {
		if n != 1 {
			t.Fatalf("NTP accepted %d tokens in one step", n)
		}
	}
}

func TestGreedyReproducesMemorizedExample(t *testing.T) {
	// A model trained to saturation on one mapping should reproduce it
	// greedily — the sanity floor for all three schemes.
	for _, scheme := range []model.Scheme{model.SchemeNTP, model.SchemeMedusa, model.SchemeOurs} {
		m := trained(t, scheme)
		d := NewDecoder(m)
		res := d.Generate(trainExamples[0].Prompt, Options{Mode: ModeForScheme(scheme)})
		if !strings.Contains(res.Text, "module data_register") {
			t.Errorf("%v: output does not start the right module:\n%s", scheme, res.Text)
		}
		if err := verilog.Check(res.Text); err != nil {
			t.Errorf("%v: greedy output does not parse: %v\n%s", scheme, err, res.Text)
		}
	}
}

func TestSpeculativeFewerSteps(t *testing.T) {
	ntp := NewDecoder(trained(t, model.SchemeNTP))
	ours := NewDecoder(trained(t, model.SchemeOurs))
	medusa := NewDecoder(trained(t, model.SchemeMedusa))

	prompt := trainExamples[1].Prompt
	rNTP := ntp.Generate(prompt, Options{Mode: ModeNTP})
	rOurs := ours.Generate(prompt, Options{Mode: ModeOurs})
	rMedusa := medusa.Generate(prompt, Options{Mode: ModeMedusa})

	if rOurs.Steps >= rNTP.Steps {
		t.Fatalf("Ours should need fewer steps: ours=%d ntp=%d", rOurs.Steps, rNTP.Steps)
	}
	if rMedusa.Steps >= rNTP.Steps {
		t.Fatalf("Medusa should need fewer steps: medusa=%d ntp=%d", rMedusa.Steps, rNTP.Steps)
	}
	if rOurs.MeanAccepted() <= 1.0 {
		t.Fatalf("Ours mean accepted = %f, want > 1", rOurs.MeanAccepted())
	}
}

func TestSpeculativeModesBeatNTPSpeed(t *testing.T) {
	// Both speculative modes must beat conventional decoding on the
	// simulated-latency speed metric. (The full Table II ordering —
	// Ours > Medusa > NTP — emerges on the diverse synthetic corpus
	// where Medusa's unmasked heads degrade; on a tiny memorized corpus
	// all heads are perfect, so only the NTP floor is asserted here.
	// The corpus-level ordering is asserted in internal/experiments.)
	ntp := NewDecoder(trained(t, model.SchemeNTP))
	ours := NewDecoder(trained(t, model.SchemeOurs))
	medusa := NewDecoder(trained(t, model.SchemeMedusa))

	speed := func(d *Decoder, mode Mode) float64 {
		total, ms := 0, 0.0
		for _, ex := range trainExamples {
			r := d.Generate(ex.Prompt, Options{Mode: mode})
			total += len(r.CleanTokens)
			ms += r.SimulatedMS
		}
		return float64(total) / (ms / 1000)
	}
	sNTP := speed(ntp, ModeNTP)
	sMedusa := speed(medusa, ModeMedusa)
	sOurs := speed(ours, ModeOurs)
	if sOurs <= sNTP {
		t.Fatalf("Ours not faster than NTP: %.1f vs %.1f tok/s", sOurs, sNTP)
	}
	if sMedusa <= sNTP {
		t.Fatalf("Medusa not faster than NTP: %.1f vs %.1f tok/s", sMedusa, sNTP)
	}
}

func TestIntegrityKeepsFragmentsComplete(t *testing.T) {
	// In ModeOurs every step's emission either ends at a [FRAG] marker
	// or is the single lossless base token.
	m := trained(t, model.SchemeOurs)
	d := NewDecoder(m)
	res := d.Generate(trainExamples[2].Prompt, Options{Mode: ModeOurs})
	pos := 0
	for _, n := range res.AcceptedPerStep {
		if n > 1 {
			endIdx := pos + n - 1
			if endIdx < len(res.Tokens) && res.Tokens[endIdx] != tokenizer.FragID {
				// The final step may have been cut by <eos>; allow it.
				if endIdx != len(res.Tokens)-1 {
					t.Fatalf("multi-token step does not end on FRAG at %d", endIdx)
				}
			}
		}
		pos += n
	}
}

func TestDeterminism(t *testing.T) {
	m := trained(t, model.SchemeOurs)
	d := NewDecoder(m)
	opts := Options{Mode: ModeOurs, Temperature: 0.8, Seed: 42}
	a := d.Generate(trainExamples[0].Prompt, opts)
	b := d.Generate(trainExamples[0].Prompt, opts)
	if a.Text != b.Text || a.Steps != b.Steps {
		t.Fatal("same seed produced different generations")
	}
	c := d.Generate(trainExamples[0].Prompt, Options{Mode: ModeOurs, Temperature: 0.8, Seed: 43})
	_ = c // different seed may or may not differ; just ensure no panic
}

func TestMaxNewTokensRespected(t *testing.T) {
	m := trained(t, model.SchemeOurs)
	d := NewDecoder(m)
	res := d.Generate(trainExamples[0].Prompt, Options{Mode: ModeOurs, MaxNewTokens: 7})
	if len(res.Tokens) > 7 {
		t.Fatalf("generated %d tokens, cap 7", len(res.Tokens))
	}
}

func TestCleanTokensHaveNoSpecials(t *testing.T) {
	m := trained(t, model.SchemeOurs)
	d := NewDecoder(m)
	res := d.Generate(trainExamples[1].Prompt, Options{Mode: ModeOurs})
	for _, id := range res.CleanTokens {
		if tokenizer.IsSpecial(id) {
			t.Fatalf("special token %d in CleanTokens", id)
		}
	}
	if strings.Contains(res.Text, "[FRAG]") {
		t.Fatal("FRAG marker leaked into text")
	}
}

func TestAblationDisableIntegrity(t *testing.T) {
	m := trained(t, model.SchemeOurs)
	d := NewDecoder(m)
	with := d.Generate(trainExamples[0].Prompt, Options{Mode: ModeOurs})
	without := d.Generate(trainExamples[0].Prompt, Options{Mode: ModeOurs, DisableIntegrity: true})
	if without.TruncatedTokens != 0 {
		t.Fatalf("integrity disabled but truncated %d tokens", without.TruncatedTokens)
	}
	if with.Steps > without.Steps+5 {
		t.Fatalf("integrity check should not slow decoding drastically: %d vs %d", with.Steps, without.Steps)
	}
}

func TestStepCostModel(t *testing.T) {
	m := trained(t, model.SchemeOurs)
	d := NewDecoder(m)
	cfg := m.Config()
	wantNTP := cfg.StepLatencyMS
	wantSpec := cfg.StepLatencyMS + float64(m.NumHeads())*cfg.HeadLatencyMS
	if got := d.stepCostMS(StrategyForMode(ModeNTP, false)); got != wantNTP {
		t.Fatalf("NTP step cost = %f, want %f", got, wantNTP)
	}
	if got := d.stepCostMS(StrategyForMode(ModeOurs, false)); got != wantSpec {
		t.Fatalf("Ours step cost = %f, want %f", got, wantSpec)
	}
	// Self-speculative lookup drafts without heads: backbone cost only.
	pl, err := ResolveStrategy("prompt-lookup", false)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.stepCostMS(pl); got != wantNTP {
		t.Fatalf("PromptLookup step cost = %f, want %f", got, wantNTP)
	}
}

func TestModeStrings(t *testing.T) {
	if ModeNTP.String() != "NTP" || ModeMedusa.String() != "Medusa" || ModeOurs.String() != "Ours" {
		t.Fatal("mode names wrong")
	}
	if ModeForScheme(model.SchemeOurs) != ModeOurs || ModeForScheme(model.SchemeNTP) != ModeNTP {
		t.Fatal("ModeForScheme mapping wrong")
	}
}

func TestNoRepeatGuardBreaksCycles(t *testing.T) {
	// Even at temperature 0 the decoder must not emit unbounded exact
	// line cycles (the canonical n-gram degeneracy): every generation
	// over the training prompts terminates within the token budget
	// with far fewer tokens than the cap.
	m := trained(t, model.SchemeOurs)
	d := NewDecoder(m)
	for i, ex := range trainExamples {
		res := d.Generate(ex.Prompt, Options{Mode: ModeOurs, MaxNewTokens: 600, Seed: int64(i)})
		if len(res.Tokens) >= 600 {
			t.Fatalf("prompt %d: generation hit the cap (%d tokens) — repetition guard failed", i, len(res.Tokens))
		}
	}
}

func TestGenerateFromMatchesGenerate(t *testing.T) {
	m := trained(t, model.SchemeNTP)
	d := NewDecoder(m)
	tk := m.Tokenizer()
	desc := trainExamples[2].Prompt
	a := d.Generate(desc, Options{Mode: ModeNTP})
	ids := append([]int{tokenizer.BosID}, tk.Encode(model.FormatPrompt(desc))...)
	b := d.GenerateFrom(ids, Options{Mode: ModeNTP})
	if a.Text != b.Text {
		t.Fatal("Generate and GenerateFrom disagree")
	}
}

func TestGenerateCtxCancelledBeforeStart(t *testing.T) {
	m := trained(t, model.SchemeOurs)
	d := NewDecoder(m)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := d.GenerateCtx(ctx, trainExamples[0].Prompt, Options{Mode: ModeOurs})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if res == nil || len(res.Tokens) != 0 || res.Steps != 0 {
		t.Fatalf("pre-cancelled decode produced work: %+v", res)
	}
}

func TestGenerateCtxCancelMidDecodeReturnsPartial(t *testing.T) {
	m := trained(t, model.SchemeNTP) // one token per step: many steps
	d := NewDecoder(m)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	steps := 0
	res, err := d.GenerateStream(ctx, trainExamples[0].Prompt, Options{Mode: ModeNTP}, func(StepEvent) {
		steps++
		if steps == 3 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	// Cancellation is polled once per forward pass: exactly the three
	// completed steps survive, and the partial result is coherent.
	if res.Steps != 3 {
		t.Fatalf("steps=%d, want 3", res.Steps)
	}
	if len(res.Tokens) == 0 || res.Text == "" {
		t.Fatal("partial result empty")
	}
	if res.Text != m.Tokenizer().DecodeClean(res.Tokens) {
		t.Fatal("partial result text inconsistent with tokens")
	}
}

func TestGenerateStreamEventsMatchResult(t *testing.T) {
	m := trained(t, model.SchemeOurs)
	d := NewDecoder(m)
	var events []StepEvent
	res, err := d.GenerateStream(context.Background(), trainExamples[1].Prompt, Options{Mode: ModeOurs},
		func(ev StepEvent) { events = append(events, ev) })
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != res.Steps {
		t.Fatalf("events=%d, steps=%d", len(events), res.Steps)
	}
	var tokens []int
	var text strings.Builder
	for i, ev := range events {
		if ev.Step != i+1 {
			t.Fatalf("event %d has step %d", i, ev.Step)
		}
		tokens = append(tokens, ev.Tokens...)
		text.WriteString(ev.Text)
	}
	if len(tokens) != len(res.Tokens) {
		t.Fatalf("streamed %d tokens, result has %d", len(tokens), len(res.Tokens))
	}
	if text.String() != res.Text {
		t.Fatal("streamed text does not reassemble result text")
	}
}

func TestGenerateCtxBackgroundMatchesGenerate(t *testing.T) {
	m := trained(t, model.SchemeOurs)
	d := NewDecoder(m)
	opts := Options{Mode: ModeOurs, Temperature: 0.5, Seed: 11}
	plain := d.Generate(trainExamples[2].Prompt, opts)
	ctxed, err := d.GenerateCtx(context.Background(), trainExamples[2].Prompt, opts)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Text != ctxed.Text || plain.Steps != ctxed.Steps {
		t.Fatal("GenerateCtx diverges from Generate")
	}
}

func TestPromptLookupGreedyLossless(t *testing.T) {
	// Greedy-exact verification makes PromptLookup lossless at
	// temperature 0: the emitted token sequence is exactly the NTP
	// greedy sequence, in fewer forward passes — so simulated tokens/s
	// rises with pass rate untouched.
	m := trained(t, model.SchemeNTP)
	d := NewDecoder(m)
	sawSpeedup := false
	for _, ex := range trainExamples {
		ntp := d.Generate(ex.Prompt, Options{Mode: ModeNTP})
		pl := d.Generate(ex.Prompt, Options{Strategy: "prompt-lookup"})
		if pl.Text != ntp.Text {
			t.Fatalf("prompt-lookup diverged from greedy NTP\n  pl: %q\n ntp: %q", pl.Text, ntp.Text)
		}
		if pl.Steps > ntp.Steps {
			t.Fatalf("prompt-lookup used more steps than NTP: %d vs %d", pl.Steps, ntp.Steps)
		}
		if pl.SimulatedMS > ntp.SimulatedMS {
			t.Fatalf("prompt-lookup simulated slower than NTP: %v vs %v ms", pl.SimulatedMS, ntp.SimulatedMS)
		}
		if pl.Steps < ntp.Steps {
			sawSpeedup = true
		}
	}
	if !sawSpeedup {
		t.Fatal("prompt-lookup never accepted a draft on template-heavy RTL")
	}
}

func TestStrategyNamesMatchModes(t *testing.T) {
	// Named strategies reproduce their legacy modes exactly.
	for _, c := range []struct {
		scheme   model.Scheme
		mode     Mode
		strategy string
	}{
		{model.SchemeNTP, ModeNTP, "ntp"},
		{model.SchemeMedusa, ModeMedusa, "medusa"},
		{model.SchemeOurs, ModeOurs, "ours"},
	} {
		m := trained(t, c.scheme)
		d := NewDecoder(m)
		for _, temp := range []float64{0, 0.8} {
			byMode := d.Generate(trainExamples[1].Prompt, Options{Mode: c.mode, Temperature: temp, Seed: 9})
			byName := d.Generate(trainExamples[1].Prompt, Options{Strategy: c.strategy, Temperature: temp, Seed: 9})
			if byMode.Text != byName.Text || byMode.Steps != byName.Steps {
				t.Fatalf("strategy %q diverges from mode %v at temp %g", c.strategy, c.mode, temp)
			}
		}
	}
}

func TestUnknownStrategyErrors(t *testing.T) {
	m := trained(t, model.SchemeOurs)
	d := NewDecoder(m)
	res, err := d.GenerateCtx(context.Background(), trainExamples[0].Prompt, Options{Strategy: "warp"})
	if err == nil {
		t.Fatal("unknown strategy accepted")
	}
	if res == nil || len(res.Tokens) != 0 {
		t.Fatalf("unknown strategy produced work: %+v", res)
	}
	// The error-less convenience API must fail loudly, not return an
	// empty Result that poisons downstream math.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Generate with unknown strategy did not panic")
			}
		}()
		d.Generate(trainExamples[0].Prompt, Options{Strategy: "warp"})
	}()
	if got := (Options{Strategy: "prompt-lookup"}).StrategyLabel(); got != "PromptLookup" {
		t.Fatalf("StrategyLabel = %q", got)
	}
	if got := (Options{Mode: ModeOurs}).StrategyLabel(); got != "Ours" {
		t.Fatalf("mode StrategyLabel = %q", got)
	}
}

func TestOptionsCanonical(t *testing.T) {
	// Every spelling of one strategy collapses onto one value…
	spellings := []Options{
		{Strategy: "pl", Seed: 3},
		{Strategy: "prompt-lookup", Seed: 3},
		{Strategy: "PromptLookup", Seed: 3},
		{Mode: ModeMedusa, Strategy: "pl", Seed: 3}, // Mode ignored once Strategy set
	}
	want := spellings[0].Canonical()
	for i, o := range spellings {
		if got := o.Canonical(); got != want {
			t.Errorf("spelling %d canonicalized to %+v, want %+v", i, got, want)
		}
	}
	// …and the legacy Mode spelling collapses onto the named one.
	if (Options{Mode: ModeOurs}).Canonical() != (Options{Strategy: "ours"}).Canonical() {
		t.Error("mode and strategy spellings of Ours diverge")
	}
	// Canonicalization never changes the decode.
	m := trained(t, model.SchemeOurs)
	d := NewDecoder(m)
	opts := Options{Mode: ModeOurs, Temperature: 0.6, Seed: 4}
	a := d.Generate(trainExamples[0].Prompt, opts)
	b := d.Generate(trainExamples[0].Prompt, opts.Canonical())
	if a.Text != b.Text || a.Steps != b.Steps {
		t.Error("canonical options decode differently")
	}
	// Unknown names pass through for decode-time failure.
	if got := (Options{Strategy: "warp"}).Canonical().Strategy; got != "warp" {
		t.Errorf("unknown strategy rewritten to %q", got)
	}
}

func TestGenCacheDoesNotChangeOutputs(t *testing.T) {
	m := trained(t, model.SchemeOurs)
	plain := NewDecoder(m)
	cache := model.NewGenCache(8)
	cached := NewDecoder(m).WithGenCache(cache)
	for i, ex := range trainExamples {
		opts := Options{Mode: ModeOurs, Temperature: 0.6, Seed: int64(i)}
		a := plain.Generate(ex.Prompt, opts)
		b := cached.Generate(ex.Prompt, opts)
		c := cached.Generate(ex.Prompt, opts) // second decode hits the cache
		if a.Text != b.Text || a.Text != c.Text {
			t.Fatalf("prompt %d: cached session changed the decode", i)
		}
	}
	hits, misses := cache.Stats()
	if hits < uint64(len(trainExamples)) || misses != uint64(len(trainExamples)) {
		t.Fatalf("gen cache hits=%d misses=%d, want >=%d / %d", hits, misses, len(trainExamples), len(trainExamples))
	}
}

func TestConcurrentDecodesShareModel(t *testing.T) {
	// The serving layer's premise: a frozen model decodes concurrently
	// without coordination, and scheduling cannot change outputs.
	m := trained(t, model.SchemeOurs)
	d := NewDecoder(m)
	want := make([]string, len(trainExamples))
	for i, ex := range trainExamples {
		want[i] = d.Generate(ex.Prompt, Options{Mode: ModeOurs, Temperature: 0.4, Seed: int64(i)}).Text
	}
	var wg sync.WaitGroup
	got := make([]string, len(trainExamples)*8)
	for r := 0; r < 8; r++ {
		for i, ex := range trainExamples {
			wg.Add(1)
			go func(slot, i int, prompt string) {
				defer wg.Done()
				got[slot] = d.Generate(prompt, Options{Mode: ModeOurs, Temperature: 0.4, Seed: int64(i)}).Text
			}(r*len(trainExamples)+i, i, ex.Prompt)
		}
	}
	wg.Wait()
	for r := 0; r < 8; r++ {
		for i := range trainExamples {
			if got[r*len(trainExamples)+i] != want[i] {
				t.Fatalf("concurrent decode diverged (round %d, example %d)", r, i)
			}
		}
	}
}
