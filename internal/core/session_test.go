package core

import (
	"fmt"
	"testing"

	"repro/internal/model"
)

// TestForkedSessionByteIdenticalAcrossStrategies pins the property the
// prefix-trie cache rests on at the decode level: every registered
// strategy — drafters and verifiers included — must produce
// byte-identical output whether its session was built fresh, reused
// whole, or forked from a cached mid-prompt prefix. The trie is
// pre-warmed with truncated prompts so the decode under test really
// does run on a Fork()ed session (asserted via the partial-hit
// counter), exercising prompt-lookup's prompt/generated boundary and
// the induction-copy machinery on forked state.
func TestForkedSessionByteIdenticalAcrossStrategies(t *testing.T) {
	schemes := map[string]model.Scheme{
		"ntp":           model.SchemeNTP,
		"medusa":        model.SchemeMedusa,
		"ours":          model.SchemeOurs,
		"prompt-lookup": model.SchemeNTP,
		"medusa-tree":   model.SchemeMedusa,
		"lookup-tree":   model.SchemeNTP,
		"ours-tree":     model.SchemeOurs,
	}
	for strategy, scheme := range schemes {
		m := trained(t, scheme)
		tk := m.Tokenizer()
		fresh := NewDecoder(m)
		for pi, ex := range trainExamples {
			ids := model.CanonicalPromptIDs(tk, ex.Prompt)
			for _, cut := range []int{1, len(ids) / 3, len(ids) - 1} {
				trie := model.NewTrieCache(0)
				trie.Gen(m, ids[:cut]) // warm a strict prefix
				forked := NewDecoder(m).WithSessionCache(trie)
				for _, opts := range []Options{
					{Strategy: strategy},
					{Strategy: strategy, Temperature: 0.8, Seed: int64(7*pi + cut)},
				} {
					id := fmt.Sprintf("%s/prompt=%d/cut=%d/temp=%g", strategy, pi, cut, opts.Temperature)
					want := fresh.Generate(ex.Prompt, opts)
					got := forked.Generate(ex.Prompt, opts)
					if got.Text != want.Text || got.Steps != want.Steps ||
						got.SimulatedMS != want.SimulatedMS || got.TruncatedTokens != want.TruncatedTokens {
						t.Fatalf("%s: forked-session decode diverged\n got: %q (steps %d)\nwant: %q (steps %d)",
							id, got.Text, got.Steps, want.Text, want.Steps)
					}
					for j := range want.Tokens {
						if got.Tokens[j] != want.Tokens[j] {
							t.Fatalf("%s: token %d is %d, want %d", id, j, got.Tokens[j], want.Tokens[j])
						}
					}
				}
				st := trie.SessionStats()
				if st.PartialHits == 0 {
					t.Fatalf("%s/prompt=%d/cut=%d: decode never forked (stats %+v)", strategy, pi, cut, st)
				}
			}
		}
	}
}
