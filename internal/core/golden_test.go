package core

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/model"
)

// -update regenerates testdata/golden.json from the current decoder.
// The committed file was captured from the pre-refactor monolithic
// decoding loop; TestGoldenDeterminism therefore pins the refactored
// drafter/verifier pipeline to byte-identical legacy behaviour.
var updateGolden = flag.Bool("update", false, "rewrite golden decode fixtures")

// goldenCase is one decode of the fixed matrix.
type goldenCase struct {
	Scheme string  `json:"scheme"`
	Mode   string  `json:"mode"`
	Prompt int     `json:"prompt"` // index into trainExamples
	Temp   float64 `json:"temp"`
	Seed   int64   `json:"seed"`

	// Captured result. Tokens is the raw sequence (specials included):
	// byte-identical output implies identical Tokens, Steps and
	// truncation accounting.
	Tokens    []int   `json:"tokens"`
	Steps     int     `json:"steps"`
	Truncated int     `json:"truncated"`
	SimMS     float64 `json:"sim_ms"`
	Text      string  `json:"text"`
}

const goldenPath = "testdata/golden.json"

// goldenMatrix runs the fixed decode matrix: every legacy mode on its
// natural scheme, three prompts, greedy and sampled, two seeds.
func goldenMatrix(t *testing.T) []goldenCase {
	t.Helper()
	var out []goldenCase
	for _, scheme := range []model.Scheme{model.SchemeNTP, model.SchemeMedusa, model.SchemeOurs} {
		m := trained(t, scheme)
		d := NewDecoder(m)
		mode := ModeForScheme(scheme)
		for pi := range trainExamples {
			for _, temp := range []float64{0, 0.8} {
				for _, seed := range []int64{1, 42} {
					res := d.Generate(trainExamples[pi].Prompt, Options{
						Mode:        mode,
						Temperature: temp,
						Seed:        seed,
					})
					out = append(out, goldenCase{
						Scheme: scheme.String(), Mode: mode.String(),
						Prompt: pi, Temp: temp, Seed: seed,
						Tokens: append([]int{}, res.Tokens...), Steps: res.Steps,
						Truncated: res.TruncatedTokens, SimMS: res.SimulatedMS,
						Text: res.Text,
					})
				}
			}
		}
	}
	return out
}

// TestGoldenDeterminism is the refactor gate: all three legacy modes
// must reproduce the committed pre-refactor outputs bit for bit.
func TestGoldenDeterminism(t *testing.T) {
	got := goldenMatrix(t)
	if *updateGolden {
		raw, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d cases", goldenPath, len(got))
		return
	}
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden fixtures (run with -update to create): %v", err)
	}
	var want []goldenCase
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("matrix size %d, golden has %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		id := fmt.Sprintf("%s/prompt=%d/temp=%g/seed=%d", w.Mode, w.Prompt, w.Temp, w.Seed)
		if g.Text != w.Text {
			t.Errorf("%s: text diverged\n got: %q\nwant: %q", id, g.Text, w.Text)
			continue
		}
		if g.Steps != w.Steps || g.Truncated != w.Truncated {
			t.Errorf("%s: steps=%d truncated=%d, want steps=%d truncated=%d",
				id, g.Steps, g.Truncated, w.Steps, w.Truncated)
		}
		if g.SimMS != w.SimMS {
			t.Errorf("%s: simulated ms %v, want %v", id, g.SimMS, w.SimMS)
		}
		if len(g.Tokens) != len(w.Tokens) {
			t.Errorf("%s: %d tokens, want %d", id, len(g.Tokens), len(w.Tokens))
			continue
		}
		for j := range w.Tokens {
			if g.Tokens[j] != w.Tokens[j] {
				t.Errorf("%s: token %d is %d, want %d", id, j, g.Tokens[j], w.Tokens[j])
				break
			}
		}
	}
}
