package core

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/model"
)

// -update regenerates testdata/golden.json from the current decoder.
// The committed file was captured from the pre-refactor monolithic
// decoding loop; TestGoldenDeterminism therefore pins the refactored
// drafter/verifier pipeline to byte-identical legacy behaviour.
var updateGolden = flag.Bool("update", false, "rewrite golden decode fixtures")

// goldenCase is one decode of the fixed matrix.
type goldenCase struct {
	Scheme string `json:"scheme"`
	Mode   string `json:"mode"`
	// Strategy names a registry strategy for the post-legacy cases
	// (tree drafting); empty for the legacy-mode block, whose cases
	// must stay byte-for-byte as captured pre-refactor.
	Strategy string  `json:"strategy,omitempty"`
	Prompt   int     `json:"prompt"` // index into trainExamples
	Temp     float64 `json:"temp"`
	Seed     int64   `json:"seed"`

	// Captured result. Tokens is the raw sequence (specials included):
	// byte-identical output implies identical Tokens, Steps and
	// truncation accounting.
	Tokens    []int   `json:"tokens"`
	Steps     int     `json:"steps"`
	Truncated int     `json:"truncated"`
	SimMS     float64 `json:"sim_ms"`
	Text      string  `json:"text"`
}

const goldenPath = "testdata/golden.json"

// goldenMatrix runs the fixed decode matrix: every legacy mode on its
// natural scheme, three prompts, greedy and sampled, two seeds — then
// the tree strategies on the same schemes, appended AFTER the legacy
// block so the legacy cases keep their committed positions (and bytes)
// forever.
func goldenMatrix(t *testing.T) []goldenCase {
	t.Helper()
	var out []goldenCase
	// One trained model per scheme, shared by the legacy and tree
	// blocks (training dominates the gate's runtime).
	models := map[model.Scheme]*model.Model{}
	decode := func(scheme model.Scheme, modeLabel, strategy string, opts Options) {
		m := models[scheme]
		if m == nil {
			m = trained(t, scheme)
			models[scheme] = m
		}
		d := NewDecoder(m)
		for pi := range trainExamples {
			for _, temp := range []float64{0, 0.8} {
				for _, seed := range []int64{1, 42} {
					opts.Temperature, opts.Seed = temp, seed
					res := d.Generate(trainExamples[pi].Prompt, opts)
					out = append(out, goldenCase{
						Scheme: scheme.String(), Mode: modeLabel, Strategy: strategy,
						Prompt: pi, Temp: temp, Seed: seed,
						Tokens: append([]int{}, res.Tokens...), Steps: res.Steps,
						Truncated: res.TruncatedTokens, SimMS: res.SimulatedMS,
						Text: res.Text,
					})
				}
			}
		}
	}
	for _, scheme := range []model.Scheme{model.SchemeNTP, model.SchemeMedusa, model.SchemeOurs} {
		mode := ModeForScheme(scheme)
		decode(scheme, mode.String(), "", Options{Mode: mode})
	}
	for _, sc := range []struct {
		scheme   model.Scheme
		strategy string
	}{
		{model.SchemeMedusa, "medusa-tree"},
		{model.SchemeNTP, "lookup-tree"},
		{model.SchemeOurs, "ours-tree"},
	} {
		decode(sc.scheme, "", sc.strategy, Options{Strategy: sc.strategy})
	}
	return out
}

// TestGoldenDeterminism is the refactor gate: all three legacy modes
// must reproduce the committed pre-refactor outputs bit for bit.
func TestGoldenDeterminism(t *testing.T) {
	got := goldenMatrix(t)
	if *updateGolden {
		raw, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d cases", goldenPath, len(got))
		return
	}
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden fixtures (run with -update to create): %v", err)
	}
	var want []goldenCase
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("matrix size %d, golden has %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		label := w.Mode
		if w.Strategy != "" {
			label = w.Strategy
		}
		id := fmt.Sprintf("%s/prompt=%d/temp=%g/seed=%d", label, w.Prompt, w.Temp, w.Seed)
		if g.Text != w.Text {
			t.Errorf("%s: text diverged\n got: %q\nwant: %q", id, g.Text, w.Text)
			continue
		}
		if g.Steps != w.Steps || g.Truncated != w.Truncated {
			t.Errorf("%s: steps=%d truncated=%d, want steps=%d truncated=%d",
				id, g.Steps, g.Truncated, w.Steps, w.Truncated)
		}
		if g.SimMS != w.SimMS {
			t.Errorf("%s: simulated ms %v, want %v", id, g.SimMS, w.SimMS)
		}
		if len(g.Tokens) != len(w.Tokens) {
			t.Errorf("%s: %d tokens, want %d", id, len(g.Tokens), len(w.Tokens))
			continue
		}
		for j := range w.Tokens {
			if g.Tokens[j] != w.Tokens[j] {
				t.Errorf("%s: token %d is %d, want %d", id, j, g.Tokens[j], w.Tokens[j])
				break
			}
		}
	}
}
