package frag

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/tokenizer"
)

const dataRegisterSrc = `module data_register (
    input clk,
    input [3:0] data_in,
    output reg [3:0] data_out
);
    always @(posedge clk) begin
        data_out <= data_in;
    end
endmodule
`

func TestSignificantTokens(t *testing.T) {
	set, err := SignificantTokens(dataRegisterSrc)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"data_register", "clk", "data_in", "data_out", // AST identifiers
		"module", "endmodule", "reg", "posedge", "begin", "end", // extra keywords
		"<=", "(", ")", ";", // operators/punct
	} {
		if !set[want] {
			t.Errorf("significant set missing %q", want)
		}
	}
	if set[","] || set["["] || set["@"] {
		t.Error("',', '[' and '@' should not be significant (Fig. 3)")
	}
}

func TestInsertFragsShape(t *testing.T) {
	out, err := InsertFrags(dataRegisterSrc)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"[FRAG]module[FRAG]",
		"[FRAG]data_register[FRAG]",
		"[FRAG]([FRAG]",
		"[FRAG]posedge[FRAG]",
		"[FRAG]<=[FRAG]",
		"[FRAG]endmodule[FRAG]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("InsertFrags output missing %q\n%s", want, out)
		}
	}
	// Removing markers must reproduce the original source.
	if got := strings.ReplaceAll(out, "[FRAG]", ""); got != dataRegisterSrc {
		t.Errorf("stripping [FRAG] does not reproduce source:\n%q", got)
	}
}

func TestSegmentReconstructs(t *testing.T) {
	sig, err := SignificantTokens(dataRegisterSrc)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, p := range Segment(dataRegisterSrc, sig) {
		sb.WriteString(p.Text)
	}
	if sb.String() != dataRegisterSrc {
		t.Fatal("segment concatenation differs from source")
	}
}

func TestSegmentReconstructsProperty(t *testing.T) {
	sig := ExtraKeywords()
	f := func(s string) bool {
		var sb strings.Builder
		for _, p := range Segment(s, sig) {
			sb.WriteString(p.Text)
		}
		return sb.String() == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeWithFragsRoundtrip(t *testing.T) {
	tk := tokenizer.Train([]string{dataRegisterSrc}, 400)
	ids, err := EncodeWithFrags(tk, dataRegisterSrc)
	if err != nil {
		t.Fatal(err)
	}
	nFrags := 0
	for _, id := range ids {
		if id == tokenizer.FragID {
			nFrags++
		}
	}
	if nFrags == 0 || nFrags%2 != 0 {
		t.Fatalf("expected an even, positive number of FRAG markers, got %d", nFrags)
	}
	if got := tk.DecodeClean(ids); got != dataRegisterSrc {
		t.Fatalf("DecodeClean mismatch:\n%q", got)
	}
	if got := tk.Decode(StripFrags(ids)); got != dataRegisterSrc {
		t.Fatalf("StripFrags mismatch:\n%q", got)
	}
}

func TestBuildLabelsShiftAndPad(t *testing.T) {
	l0 := []int{10, 11, 12, 13, 14}
	labels := BuildLabels(l0, 3)
	if len(labels) != 4 {
		t.Fatalf("rows = %d, want 4", len(labels))
	}
	if !reflect.DeepEqual(labels[0], l0) {
		t.Fatalf("base row changed: %v", labels[0])
	}
	wantRow2 := []int{12, 13, 14, tokenizer.PadID, tokenizer.PadID}
	if !reflect.DeepEqual(labels[2], wantRow2) {
		t.Fatalf("row 2 = %v, want %v", labels[2], wantRow2)
	}
	// Input slice must not be aliased.
	labels[0][0] = 99
	if l0[0] != 10 {
		t.Fatal("BuildLabels aliases its input")
	}
}

func TestMaskLabelsKnownExample(t *testing.T) {
	F := tokenizer.FragID
	// Sequence: F a b F c  (token ids 100,101,102 arbitrary)
	l0 := []int{F, 100, 101, F, 102}
	labels := BuildLabels(l0, 3)
	MaskLabelsSequential(labels)
	// Column 0: head rows were [100,101,F] -> last FRAG at head 3: keep all.
	if labels[3][0] != F {
		t.Errorf("col0 head3 = %d, want FRAG", labels[3][0])
	}
	// Column 2: head rows were [F,102,PAD] -> last FRAG at head 1; heads 2,3 masked.
	if labels[1][2] != F {
		t.Errorf("col2 head1 = %d, want FRAG", labels[1][2])
	}
	if labels[2][2] != tokenizer.IgnoreID || labels[3][2] != tokenizer.IgnoreID {
		t.Errorf("col2 heads 2,3 = %d,%d, want IGNORE", labels[2][2], labels[3][2])
	}
	// Column 4 (last): head rows were [PAD,PAD,PAD] -> no FRAG: untouched.
	if labels[1][4] != tokenizer.PadID {
		t.Errorf("col4 head1 = %d, want PAD", labels[1][4])
	}
}

func cloneMatrix(m [][]int) [][]int {
	out := make([][]int, len(m))
	for i, r := range m {
		out[i] = append([]int(nil), r...)
	}
	return out
}

func TestParallelMatchesSequentialProperty(t *testing.T) {
	// The paper's vectorized algorithm must agree with the obvious
	// per-column reference on random sequences with random FRAGs.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		s := 1 + rng.Intn(120)
		heads := 1 + rng.Intn(12)
		l0 := make([]int, s)
		for i := range l0 {
			if rng.Float64() < 0.25 {
				l0[i] = tokenizer.FragID
			} else {
				l0[i] = tokenizer.NumSpecial + rng.Intn(100)
			}
		}
		a := BuildLabels(l0, heads)
		b := cloneMatrix(a)
		MaskLabelsSequential(a)
		MaskLabelsParallel(b)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("trial %d: sequential and parallel disagree\nseq: %v\npar: %v\nl0: %v heads=%d",
				trial, a, b, l0, heads)
		}
	}
}

func TestIgnoredFractionMonotone(t *testing.T) {
	tk := tokenizer.Train([]string{dataRegisterSrc}, 400)
	ids, err := EncodeWithFrags(tk, dataRegisterSrc)
	if err != nil {
		t.Fatal(err)
	}
	labels := BuildSyntaxEnrichedLabels(ids, 10)
	fr := IgnoredFraction(labels)
	if fr[0] != 0 {
		t.Fatalf("base row must never be masked, got %f", fr[0])
	}
	for i := 2; i < len(fr); i++ {
		if fr[i] < fr[i-1] {
			t.Fatalf("ignored fraction not monotone at head %d: %v", i, fr)
		}
	}
	if fr[len(fr)-1] == 0 {
		t.Fatal("expected some masking on the last head")
	}
}

func TestMaskNoFragsNoChange(t *testing.T) {
	l0 := []int{100, 101, 102, 103}
	a := BuildLabels(l0, 4)
	b := cloneMatrix(a)
	MaskLabelsParallel(b)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("masking changed a FRAG-free matrix")
	}
}

func TestMaskEmptyAndTiny(t *testing.T) {
	MaskLabelsParallel(nil)
	MaskLabelsSequential(nil)
	labels := BuildLabels([]int{}, 3)
	MaskLabelsParallel(labels) // must not panic
	one := BuildLabels([]int{tokenizer.FragID}, 0)
	MaskLabelsParallel(one)
	if one[0][0] != tokenizer.FragID {
		t.Fatal("zero-head matrix altered")
	}
}

func TestExtraKeywordsCopied(t *testing.T) {
	a := ExtraKeywords()
	a["module"] = false
	b := ExtraKeywords()
	if !b["module"] {
		t.Fatal("ExtraKeywords returns shared state")
	}
}
