// Package frag implements the paper's syntax-enrichment pipeline
// (§III-C, Figs. 3 and 4):
//
//  1. syntactically significant tokens are identified from the Verilog
//     AST (leaf identifiers and literals) plus a fixed extra-keyword
//     list (module, endmodule, operators, ...);
//  2. a regular expression segments source code into fragments and
//     wraps each significant token with the special [FRAG] marker;
//  3. syntax-enriched label matrices are constructed for Medusa-style
//     multi-head training: head i's label row is the base row shifted
//     left by i, padded with [PAD], and positions beyond the last
//     [FRAG] along the head dimension are masked with [IGNORE].
//
// The [IGNORE] masking is provided in two equivalent implementations: a
// straightforward per-column reference and the paper's vectorized
// reverse sweep (Fig. 4, right panel), which the tests prove equivalent.
package frag

import (
	"regexp"
	"strings"

	"repro/internal/tokenizer"
	"repro/internal/verilog"
)

// extraKeywords is the supplementary significant-token list of §III-C:
// structural keywords and common constructs that must align decoding
// stops even when they do not appear as AST leaves.
var extraKeywords = []string{
	"module", "endmodule", "input", "output", "inout", "wire", "reg",
	"integer", "parameter", "localparam", "assign", "always", "initial",
	"begin", "end", "if", "else", "case", "casez", "casex", "endcase",
	"default", "for", "while", "repeat", "forever", "posedge", "negedge",
	"or", "signed",
}

// extraOperators are operator and punctuation spellings treated as
// significant tokens (Fig. 3 wraps '(', ')', ';' and '<=').
var extraOperators = []string{
	"<<<", ">>>", "===", "!==", "<<", ">>", "<=", ">=", "==", "!=",
	"&&", "||", "~&", "~|", "~^", "^~", "**",
	"+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "?", "=", "<", ">",
	"(", ")", ";",
}

// ExtraKeywords returns the fixed supplementary keyword set (a copy).
func ExtraKeywords() map[string]bool {
	out := make(map[string]bool, len(extraKeywords)+len(extraOperators))
	for _, k := range extraKeywords {
		out[k] = true
	}
	for _, k := range extraOperators {
		out[k] = true
	}
	return out
}

// SignificantTokens parses src and returns the union of AST-derived
// keywords (identifiers and literal spellings from leaf nodes) and the
// extra keyword list — the paper's Fig. 3 "Significant Tokens".
func SignificantTokens(src string) (map[string]bool, error) {
	f, err := verilog.Parse(src)
	if err != nil {
		return nil, err
	}
	set := ExtraKeywords()
	for _, m := range f.Modules {
		collectModuleTokens(m, set)
	}
	return set, nil
}

func collectModuleTokens(m *verilog.Module, set map[string]bool) {
	set[m.Name] = true
	for _, p := range m.Ports {
		set[p.Name] = true
	}
	for _, it := range m.Items {
		switch v := it.(type) {
		case *verilog.NetDecl:
			for _, dn := range v.Names {
				set[dn.Name] = true
				collectExprTokens(dn.Init, set)
			}
		case *verilog.ParamDecl:
			for _, n := range v.Names {
				set[n] = true
			}
			for _, e := range v.Values {
				collectExprTokens(e, set)
			}
		case *verilog.ContAssign:
			collectExprTokens(v.LHS, set)
			collectExprTokens(v.RHS, set)
		case *verilog.AlwaysBlock:
			collectStmtTokens(v.Body, set)
		case *verilog.InitialBlock:
			collectStmtTokens(v.Body, set)
		case *verilog.Instance:
			set[v.ModName] = true
			set[v.InstName] = true
			for _, c := range v.Conns {
				if c.Port != "" {
					set[c.Port] = true
				}
				collectExprTokens(c.Expr, set)
			}
		}
	}
}

func collectStmtTokens(s verilog.Stmt, set map[string]bool) {
	switch v := s.(type) {
	case nil:
	case *verilog.Block:
		for _, st := range v.Stmts {
			collectStmtTokens(st, set)
		}
	case *verilog.Assign:
		collectExprTokens(v.LHS, set)
		collectExprTokens(v.RHS, set)
	case *verilog.If:
		collectExprTokens(v.Cond, set)
		collectStmtTokens(v.Then, set)
		collectStmtTokens(v.Else, set)
	case *verilog.Case:
		collectExprTokens(v.Expr, set)
		for _, item := range v.Items {
			for _, e := range item.Exprs {
				collectExprTokens(e, set)
			}
			collectStmtTokens(item.Body, set)
		}
	case *verilog.For:
		collectStmtTokens(v.Init, set)
		collectExprTokens(v.Cond, set)
		collectStmtTokens(v.Step, set)
		collectStmtTokens(v.Body, set)
	case *verilog.While:
		collectExprTokens(v.Cond, set)
		collectStmtTokens(v.Body, set)
	case *verilog.Repeat:
		collectExprTokens(v.Count, set)
		collectStmtTokens(v.Body, set)
	case *verilog.Forever:
		collectStmtTokens(v.Body, set)
	case *verilog.DelayStmt:
		collectExprTokens(v.Delay, set)
		collectStmtTokens(v.Body, set)
	case *verilog.EventCtrlStmt:
		for _, it := range v.Items {
			collectExprTokens(it.Expr, set)
		}
		collectStmtTokens(v.Body, set)
	case *verilog.SysCall:
		for _, e := range v.Args {
			collectExprTokens(e, set)
		}
	}
}

func collectExprTokens(e verilog.Expr, set map[string]bool) {
	switch v := e.(type) {
	case nil:
	case *verilog.Ident:
		set[v.Name] = true
	case *verilog.Number:
		set[v.Text] = true
	case *verilog.Unary:
		collectExprTokens(v.X, set)
	case *verilog.Binary:
		collectExprTokens(v.X, set)
		collectExprTokens(v.Y, set)
	case *verilog.Ternary:
		collectExprTokens(v.Cond, set)
		collectExprTokens(v.TrueE, set)
		collectExprTokens(v.FalseE, set)
	case *verilog.Concat:
		for _, p := range v.Parts {
			collectExprTokens(p, set)
		}
	case *verilog.Repl:
		collectExprTokens(v.Count, set)
		collectExprTokens(v.X, set)
	case *verilog.Index:
		collectExprTokens(v.X, set)
		collectExprTokens(v.Idx, set)
	case *verilog.RangeSel:
		collectExprTokens(v.X, set)
		collectExprTokens(v.MSB, set)
		collectExprTokens(v.LSB, set)
	case *verilog.SysFuncCall:
		for _, a := range v.Args {
			collectExprTokens(a, set)
		}
	}
}

// tokenRE matches candidate significant tokens in source order: sized
// literals, identifiers, numbers and operators/punctuation. It is the
// regex segmenter of Fig. 3.
var tokenRE = regexp.MustCompile(
	`[0-9]*'[sS]?[bodhBODH][0-9a-fA-FxXzZ?_]+` + // based literals
		`|[A-Za-z_$][A-Za-z0-9_$]*` + // identifiers & keywords
		`|[0-9][0-9_]*` + // plain numbers
		`|<<<|>>>|===|!==|<<|>>|<=|>=|==|!=|&&|\|\||~&|~\||~\^|\^~|\*\*` +
		`|[()+\-*/%&|^~!?=<>;]`, // single-char operators, ( ) ;
)

// Piece is one segment of source text produced by Segment.
type Piece struct {
	Text        string
	Significant bool
}

// Segment splits src into pieces, marking each significant token.
// Concatenating the piece texts reproduces src exactly.
func Segment(src string, significant map[string]bool) []Piece {
	var out []Piece
	last := 0
	for _, loc := range tokenRE.FindAllStringIndex(src, -1) {
		tok := src[loc[0]:loc[1]]
		if !significant[tok] {
			continue
		}
		if loc[0] > last {
			out = append(out, Piece{Text: src[last:loc[0]]})
		}
		out = append(out, Piece{Text: tok, Significant: true})
		last = loc[1]
	}
	if last < len(src) {
		out = append(out, Piece{Text: src[last:]})
	}
	return out
}

// InsertFrags returns src with every significant token wrapped in
// [FRAG] markers — the textual form shown in Fig. 3(C).
func InsertFrags(src string) (string, error) {
	sig, err := SignificantTokens(src)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	for _, p := range Segment(src, sig) {
		if p.Significant {
			sb.WriteString("[FRAG]")
			sb.WriteString(p.Text)
			sb.WriteString("[FRAG]")
		} else {
			sb.WriteString(p.Text)
		}
	}
	return sb.String(), nil
}

// EncodeWithFrags tokenizes src into BPE ids with FragID markers around
// every significant token — the id-level form used to build training
// labels and to drive the decoder's integrity check.
func EncodeWithFrags(tk *tokenizer.Tokenizer, src string) ([]int, error) {
	sig, err := SignificantTokens(src)
	if err != nil {
		return nil, err
	}
	return EncodeSegmented(tk, Segment(src, sig)), nil
}

// EncodeSegmented encodes pre-segmented pieces, wrapping significant
// pieces with FragID.
func EncodeSegmented(tk *tokenizer.Tokenizer, pieces []Piece) []int {
	var out []int
	for _, p := range pieces {
		if p.Significant {
			out = append(out, tokenizer.FragID)
			out = append(out, tk.Encode(p.Text)...)
			out = append(out, tokenizer.FragID)
			continue
		}
		out = append(out, tk.Encode(p.Text)...)
	}
	return out
}

// StripFrags removes FragID markers from a token sequence (the cleanup
// applied to decoder output before evaluation).
func StripFrags(ids []int) []int {
	out := make([]int, 0, len(ids))
	for _, id := range ids {
		if id == tokenizer.FragID {
			continue
		}
		out = append(out, id)
	}
	return out
}
