package frag

import (
	"repro/internal/tokenizer"
)

// BuildLabels constructs the "Before" label matrix of Fig. 4: row 0 is
// the base sequence l0 (code tokens with [FRAG] markers); row i (the
// label row of decoding head i) is l0 shifted left by i and padded with
// [PAD] to the base length. The result has numHeads+1 rows.
func BuildLabels(l0 []int, numHeads int) [][]int {
	s := len(l0)
	labels := make([][]int, numHeads+1)
	labels[0] = append([]int(nil), l0...)
	for i := 1; i <= numHeads; i++ {
		row := make([]int, s)
		for p := 0; p < s; p++ {
			if p+i < s {
				row[p] = l0[p+i]
			} else {
				row[p] = tokenizer.PadID
			}
		}
		labels[i] = row
	}
	return labels
}

// MaskLabelsSequential applies the [IGNORE] masking in the obvious
// per-column way: for every sequence position, head rows beyond the
// last [FRAG] along the head dimension are replaced with [IGNORE], so
// the labels visible at that position always end on a complete
// syntactic fragment. Columns whose head rows contain no [FRAG] at all
// are left untouched (there is no fragment boundary to align to).
//
// It is the reference implementation used to validate the paper's
// vectorized algorithm (MaskLabelsParallel).
func MaskLabelsSequential(labels [][]int) {
	if len(labels) < 2 {
		return
	}
	heads := len(labels) - 1
	s := len(labels[0])
	for p := 0; p < s; p++ {
		lastFrag := 0
		for i := 1; i <= heads; i++ {
			if labels[i][p] == tokenizer.FragID {
				lastFrag = i
			}
		}
		if lastFrag == 0 {
			continue
		}
		for i := lastFrag + 1; i <= heads; i++ {
			labels[i][p] = tokenizer.IgnoreID
		}
	}
}

// MaskLabelsParallel is the paper's parallel algorithm (Fig. 4, right):
// a boolean has-frag mask is initialized from all head rows, then heads
// are swept in reverse; positions whose mask is still set when the
// sweep passes row i are masked with [IGNORE], and the mask is ANDed
// with "row i is not [FRAG]" as the sweep descends, with early
// termination once the mask empties. The mask words are packed 64
// positions per uint64, mirroring the vectorized tensor operation.
func MaskLabelsParallel(labels [][]int) {
	if len(labels) < 2 {
		return
	}
	heads := len(labels) - 1
	s := len(labels[0])
	nw := (s + 63) / 64

	// Step 1: has_frag_mask[p] = any head row has [FRAG] at p.
	maskWords := make([]uint64, nw)
	for i := 1; i <= heads; i++ {
		row := labels[i]
		for p := 0; p < s; p++ {
			if row[p] == tokenizer.FragID {
				maskWords[p/64] |= 1 << uint(p%64)
			}
		}
	}

	// Step 2: reverse sweep. At row i, positions still in the mask have
	// their last [FRAG] strictly below row i, so row i is beyond the
	// fragment boundary and becomes [IGNORE].
	for i := heads; i >= 1; i-- {
		row := labels[i]
		// temp_mask: positions where row i is not [FRAG].
		any := false
		for w := 0; w < nw; w++ {
			var temp uint64
			base := w * 64
			for b := 0; b < 64 && base+b < s; b++ {
				if row[base+b] != tokenizer.FragID {
					temp |= 1 << uint(b)
				}
			}
			maskWords[w] &= temp
			if maskWords[w] != 0 {
				any = true
			}
		}
		if !any {
			break // early termination (paper's step 3)
		}
		for p := 0; p < s; p++ {
			if maskWords[p/64]>>uint(p%64)&1 == 1 {
				row[p] = tokenizer.IgnoreID
			}
		}
	}
}

// BuildSyntaxEnrichedLabels is the full §III-C pipeline: shift + pad,
// then [IGNORE]-mask with the parallel algorithm.
func BuildSyntaxEnrichedLabels(l0 []int, numHeads int) [][]int {
	labels := BuildLabels(l0, numHeads)
	MaskLabelsParallel(labels)
	return labels
}

// IgnoredFraction reports, per head row, the fraction of positions
// masked with [IGNORE] — the paper observes this grows for later heads,
// which is what reduces their prediction difficulty.
func IgnoredFraction(labels [][]int) []float64 {
	out := make([]float64, len(labels))
	for i, row := range labels {
		if len(row) == 0 {
			continue
		}
		n := 0
		for _, v := range row {
			if v == tokenizer.IgnoreID {
				n++
			}
		}
		out[i] = float64(n) / float64(len(row))
	}
	return out
}
